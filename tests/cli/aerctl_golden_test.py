#!/usr/bin/env python3
"""Golden-output tests for aerctl.

Each case runs an aerctl subcommand with pinned flags and compares its stdout
byte-for-byte against a committed golden file — the CLI surface is part of
the determinism contract (docs/OBSERVABILITY.md): same seed, same bytes.
Every case is also run twice to catch nondeterminism directly, so a golden
mismatch means the output *format or numbers* changed, not flakiness.

Usage:
  aerctl_golden_test.py <aerctl-binary> <golden-dir>            # verify
  aerctl_golden_test.py <aerctl-binary> <golden-dir> --update   # regenerate

Regenerate the goldens (and eyeball the diff) whenever an intentional output
change lands: build, then run with --update from the repo root.
"""

from __future__ import annotations

import json
import subprocess
import sys
import tempfile
from pathlib import Path

# (golden file, aerctl argv). {trace} expands to a generated small trace.
CASES = [
    ("metrics.txt",
     ["metrics", "--incidents", "24", "--seed", "7"]),
    ("metrics.json",
     ["metrics", "--incidents", "24", "--seed", "7", "--json"]),
    ("metrics_clean.txt",
     ["metrics", "--incidents", "24", "--seed", "7", "--clean"]),
    ("trace.txt",
     ["trace", "--incidents", "6", "--seed", "7"]),
    ("trace_filtered.txt",
     ["trace", "--incidents", "12", "--seed", "7",
      "--type", "DiskError", "--top", "3"]),
    ("trace.json",
     ["trace", "--incidents", "4", "--seed", "7", "--json"]),
    # Distributed-tracing modes: the control-plane harness scenario behind
    # them is pinned (3 coordinators, node-0 crash mid-recovery), so the
    # stitched DAG, the critical-path attribution, and the Chrome export are
    # part of the byte-exact surface (docs/OBSERVABILITY.md).
    ("trace_dag.txt",
     ["trace", "--dag", "--seed", "1"]),
    ("trace_critical_path.txt",
     ["trace", "--critical-path", "--seed", "1"]),
    ("trace_chrome.json",
     ["trace", "--chrome", "--seed", "1"]),
    ("summarize.txt",
     ["summarize", "--log", "{trace}"]),
    ("timeseries.txt",
     ["timeseries", "--incidents", "24", "--seed", "7", "--window", "7200"]),
    ("timeseries.json",
     ["timeseries", "--incidents", "12", "--seed", "7", "--window", "7200",
      "--capacity", "4", "--json"]),
    # Counts-only (no --wall): a pure function of control flow, so it is as
    # byte-stable as the metric snapshots. In -DAER_PROFILING=OFF builds the
    # output is the "profiling disabled" notice and the case is skipped.
    ("profile.txt",
     ["profile", "--incidents", "24", "--seed", "7"]),
]

PROFILING_OFF_NOTICE = b"profiling disabled"


def run(binary: str, args: list[str]) -> bytes:
    proc = subprocess.run([binary] + args, capture_output=True)
    if proc.returncode != 0:
        sys.exit(f"FAIL: aerctl {' '.join(args)} exited "
                 f"{proc.returncode}\n{proc.stderr.decode(errors='replace')}")
    return proc.stdout


def main() -> int:
    if len(sys.argv) < 3:
        sys.exit(__doc__)
    binary = sys.argv[1]
    golden_dir = Path(sys.argv[2])
    update = "--update" in sys.argv[3:]

    with tempfile.TemporaryDirectory() as tmp:
        trace_path = str(Path(tmp) / "trace.log")
        run(binary, ["generate", "--out", trace_path,
                     "--scale", "small", "--seed", "7"])

        failures = []
        for golden_name, args in CASES:
            argv = [a.replace("{trace}", trace_path) for a in args]
            first = run(binary, argv)
            second = run(binary, argv)
            if first != second:
                failures.append(f"{golden_name}: two identical invocations "
                                f"produced different bytes (nondeterminism)")
                continue
            if (golden_name.startswith("profile")
                    and first.startswith(PROFILING_OFF_NOTICE)):
                print(f"  skip {golden_name} (AER_PROFILING=OFF build)")
                continue
            if golden_name == "trace_chrome.json":
                # Must be loadable Chrome trace-event JSON, not just stable
                # bytes: a top-level traceEvents list whose entries all carry
                # the mandatory ph (phase) field.
                try:
                    chrome = json.loads(first)
                except json.JSONDecodeError as err:
                    failures.append(f"{golden_name}: invalid JSON: {err}")
                    continue
                events = chrome.get("traceEvents")
                if (not isinstance(events, list) or not events
                        or any("ph" not in e for e in events)):
                    failures.append(f"{golden_name}: not Chrome trace-event "
                                    f"format (traceEvents list with ph)")
                    continue
            golden_path = golden_dir / golden_name
            if update:
                golden_path.parent.mkdir(parents=True, exist_ok=True)
                golden_path.write_bytes(first)
                print(f"  wrote {golden_path} ({len(first)} bytes)")
                continue
            if not golden_path.is_file():
                failures.append(f"{golden_name}: golden file missing — "
                                f"regenerate with --update")
                continue
            expected = golden_path.read_bytes()
            if first != expected:
                failures.append(
                    f"{golden_name}: output differs from golden "
                    f"({len(first)} vs {len(expected)} bytes); if the change "
                    f"is intentional, rerun with --update and review the "
                    f"diff")
            else:
                print(f"  ok   {golden_name}")

    if failures:
        print("aerctl_golden_test: FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(f"aerctl_golden_test: {'updated' if update else 'passed'} "
          f"{len(CASES)} cases")
    return 0


if __name__ == "__main__":
    sys.exit(main())
