// End-to-end control-plane scenarios on the deterministic sim-time harness:
// clean runs, leader crash mid-recovery with takeover-resume, symmetric and
// asymmetric partitions, fencing of stale dispatches, and a 50-seed sweep
// under probabilistic message faults — every run must terminate with all
// incidents cured and the invariant auditor clean.
#include "ctrl/harness.h"

#include <gtest/gtest.h>

#include <vector>

#include "cluster/user_policy.h"
#include "obs/metrics.h"
#include "obs/tracer.h"

namespace aer::ctrl {
namespace {

// Compressed time scale so scenarios run in a few hundred sim-seconds:
// 5s ticks, 30s leases, 15s/60s suspicion, and repair actions of 2..20s.
ControlHarnessConfig FastConfig(int cluster_size) {
  ControlHarnessConfig config;
  config.cluster_size = cluster_size;
  config.tick_interval = 5;
  config.net_latency = 1;
  config.reemit_interval = 60;
  config.action_duration = {2, 5, 10, 20};
  config.coordinator.lease.lease_duration = 30;
  config.coordinator.membership.suspect_after = 15;
  config.coordinator.membership.evict_after = 60;
  config.coordinator.election_retry = 10;
  return config;
}

RecoveryManagerConfig ManagerConfig() {
  RecoveryManagerConfig config;
  config.action_timeout = 120;
  return config;
}

std::vector<int> ExecutedOn(const ControlHarnessResult& result,
                            MachineId machine) {
  std::vector<int> actions;
  for (const ExecutedAction& e : result.executed) {
    if (e.machine == machine) actions.push_back(e.action);
  }
  return actions;
}

TEST(ControlHarnessTest, CleanRunCuresEverythingUnderOneLeader) {
  UserDefinedPolicy policy;
  ControlPlaneHarness harness(policy, ManagerConfig(), FastConfig(3),
                              NetFaultScript{});
  obs::MetricsRegistry metrics;
  obs::Tracer tracer;
  harness.SetObservers(&tracer, &metrics);

  const ControlHarnessResult result = harness.Run({
      {20, 1, "Watchdog", 0},
      {25, 2, "Watchdog", 1},
      {30, 3, "NoHeartbeat", 2},
  });

  EXPECT_TRUE(result.all_completed);
  EXPECT_EQ(result.cures, 3);
  EXPECT_TRUE(result.audit.Clean());
  EXPECT_EQ(result.audit.epochs_with_holder, 1);
  EXPECT_EQ(result.stale_rejected, 0);
  EXPECT_EQ(result.coordinators.leases_acquired, 1);
  EXPECT_EQ(result.coordinators.elections_started, 1);
  EXPECT_EQ(result.coordinators.takeovers, 0);
  EXPECT_GT(result.coordinators.lease_renewals, 0);
  // The policy escalates exactly as far as each fault requires.
  EXPECT_EQ(ExecutedOn(result, 1), (std::vector<int>{0}));
  EXPECT_EQ(ExecutedOn(result, 2), (std::vector<int>{0, 1}));
  EXPECT_EQ(ExecutedOn(result, 3), (std::vector<int>{0, 1, 1, 2}));
  // Followers saw every symptom too and were gated each time.
  EXPECT_GT(result.actions_gated, 0);
  for (const DispatchRecord& record : result.dispatch_log) {
    EXPECT_EQ(record.issuer, 0);
    EXPECT_EQ(record.epoch, 1u);
  }
  EXPECT_GE(metrics.GetCounter("aer_ctrl_leases_acquired_total").value(), 1);
  EXPECT_GT(metrics.GetCounter("aer_ctrl_heartbeats_sent_total").value(), 0);
  EXPECT_GT(metrics.GetCounter("aer_ctrl_actions_gated_total").value(), 0);
}

TEST(ControlHarnessTest, LeaderCrashMidRecoveryFollowerResumesNotRestarts) {
  UserDefinedPolicy policy;
  NetFaultScript script;
  // Node 0 dies while machine 7's first reimage is executing; its restart
  // happens between recoveries, after which it rejoins as a follower.
  script.crashes.push_back({72, 0, 300});

  ControlPlaneHarness harness(policy, ManagerConfig(), FastConfig(3),
                              script);
  const ControlHarnessResult result = harness.Run({
      {50, 7, "NoHeartbeat", 3},
      {400, 9, "Watchdog", 1},
  });

  EXPECT_TRUE(result.all_completed);
  EXPECT_EQ(result.cures, 2);
  EXPECT_TRUE(result.audit.Clean());
  EXPECT_EQ(result.audit.duplicate_leaseholders, 0);
  EXPECT_EQ(result.audit.stale_executed, 0);
  EXPECT_EQ(result.net.crashes, 1);
  EXPECT_EQ(result.net.restarts, 1);
  // The in-flight reimage's result was addressed to the dead leader.
  EXPECT_GE(result.results_lost, 1);
  // Exactly one takeover adopted exactly the one open process.
  EXPECT_EQ(result.coordinators.takeovers, 1);
  EXPECT_EQ(result.coordinators.processes_adopted, 1);
  // Resume, not restart: machine 7 sees the escalation ladder exactly once
  // — the successor continues at reimage #2 instead of starting over with
  // a second TryNop.
  EXPECT_EQ(ExecutedOn(result, 7), (std::vector<int>{0, 1, 1, 2, 2, 3}));
  EXPECT_EQ(ExecutedOn(result, 9), (std::vector<int>{0, 1}));
  // The crashed node issued nothing after its death.
  for (const DispatchRecord& record : result.dispatch_log) {
    if (record.issuer == 0) EXPECT_LT(record.time, 72);
  }
}

TEST(ControlHarnessTest, PartitionedLeaderStopsIssuingBeforeLeaseExpiry) {
  UserDefinedPolicy policy;
  NetFaultScript script;
  // Symmetric partition isolates the leader from both followers for the
  // rest of the run, mid-way through a long recovery.
  LinkPartition partition;
  partition.from = 60;
  partition.until = 100'000;
  partition.side_a = {0};
  partition.side_b = {1, 2};
  script.partitions.push_back(partition);

  ControlPlaneHarness harness(policy, ManagerConfig(), FastConfig(3),
                              script);
  const ControlHarnessResult result =
      harness.Run({{30, 3, "NoHeartbeat", 3}});

  EXPECT_TRUE(result.all_completed);
  EXPECT_EQ(result.cures, 1);
  EXPECT_TRUE(result.audit.Clean());
  EXPECT_EQ(result.audit.epochs_with_holder, 2);
  EXPECT_EQ(result.audit.duplicate_leaseholders, 0);
  // The isolated minority's lease ran out 30s (one lease) after the cut:
  // every action it ever issued predates that, and everything after the
  // cut-over came from the majority-side successor under a higher epoch.
  for (const DispatchRecord& record : result.dispatch_log) {
    if (record.issuer == 0) {
      EXPECT_LT(record.time, 90);
      EXPECT_EQ(record.epoch, 1u);
    } else {
      EXPECT_EQ(record.issuer, 1);
      EXPECT_EQ(record.epoch, 2u);
    }
  }
  EXPECT_GT(result.actions_gated, 0);
  EXPECT_EQ(result.coordinators.takeovers, 1);
  EXPECT_EQ(result.coordinators.processes_adopted, 1);
  EXPECT_GE(result.coordinators.stepdowns, 1);
  EXPECT_GT(result.net.partition_drops, 0);
  EXPECT_EQ(result.net.partitions_started, 1);
}

TEST(ControlHarnessTest, AsymmetricPartitionConvergesToMajoritySide) {
  UserDefinedPolicy policy;
  NetFaultScript script;
  // One-way link loss: the old leader can hear the majority but not reach
  // it. Its renewals die, the majority elects a successor, and the old
  // leader's futile re-bids can never assemble a quorum.
  LinkPartition partition;
  partition.from = 60;
  partition.until = 100'000;
  partition.side_a = {0};
  partition.side_b = {1, 2};
  partition.asymmetric = true;
  script.partitions.push_back(partition);

  ControlPlaneHarness harness(policy, ManagerConfig(), FastConfig(3),
                              script);
  const ControlHarnessResult result = harness.Run({
      {30, 3, "Watchdog", 1},   // cured by node 0 before the cut
      {100, 4, "Watchdog", 0},  // cured by node 1 after the cut-over
  });

  EXPECT_TRUE(result.all_completed);
  EXPECT_EQ(result.cures, 2);
  EXPECT_TRUE(result.audit.Clean());
  EXPECT_EQ(result.audit.epochs_with_holder, 2);
  EXPECT_GE(result.coordinators.stepdowns, 1);
  for (const DispatchRecord& record : result.dispatch_log) {
    if (record.machine == 3) {
      EXPECT_EQ(record.issuer, 0);
      EXPECT_EQ(record.epoch, 1u);
    } else {
      EXPECT_EQ(record.issuer, 1);
      EXPECT_EQ(record.epoch, 2u);
    }
  }
}

TEST(ControlHarnessTest, DelayedStaleDispatchIsFencedNotExecuted) {
  UserDefinedPolicy policy;
  ControlHarnessConfig config = FastConfig(3);
  // The old leader's second dispatch (machine 7's reboot, epoch 1) is held
  // in transit for 300s — long enough for the leader to die, a successor to
  // take over, and the same reboot to run again under epoch 2. When the
  // time-shifted original finally arrives, the machine's fence must refuse
  // it.
  config.dispatch_delays.push_back({1, 300});
  NetFaultScript script;
  script.crashes.push_back({60, 0, -1});

  ControlPlaneHarness harness(policy, ManagerConfig(), config, script);
  const ControlHarnessResult result =
      harness.Run({{50, 7, "Watchdog", 1}});

  EXPECT_TRUE(result.all_completed);
  EXPECT_EQ(result.cures, 1);
  EXPECT_EQ(result.stale_rejected, 1);
  EXPECT_EQ(result.audit.stale_rejected, 1);
  EXPECT_EQ(result.audit.stale_executed, 0);
  EXPECT_TRUE(result.audit.Clean());
  // The fenced epoch-1 reboot never ran: machine 7 executed TryNop under
  // epoch 1 and one reboot under epoch 2 only.
  EXPECT_EQ(ExecutedOn(result, 7), (std::vector<int>{0, 1}));
  EXPECT_EQ(result.coordinators.takeovers, 1);
}

TEST(ControlHarnessTest, SeedSweepStaysCuredAndAuditCleanUnderMessageChaos) {
  // 50 seeds of probabilistic drop/delay/duplication on the control links,
  // layered over a scripted leader crash+restart and a follower partition.
  // Dispatches and results ride the (reliable) machine network, so chaos
  // hits elections, renewals, and replication — exactly the paths the
  // invariants guard.
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    UserDefinedPolicy policy;
    ControlHarnessConfig config = FastConfig(3);
    config.net.seed = seed;
    config.net.drop_message = 0.05;
    config.net.delay_message = 0.10;
    config.net.duplicate_message = 0.05;
    config.net.max_delay = 3;
    config.max_events = 200'000;
    NetFaultScript script;
    script.crashes.push_back({100, 0, 300});
    LinkPartition partition;
    partition.from = 400;
    partition.until = 460;
    partition.side_a = {2};
    partition.side_b = {0, 1};
    script.partitions.push_back(partition);

    ControlPlaneHarness harness(policy, ManagerConfig(), config, script);
    const ControlHarnessResult result = harness.Run({
        {50, 1, "Watchdog", 0},
        {150, 2, "Watchdog", 1},
        {250, 3, "NoHeartbeat", 2},
        {450, 4, "Watchdog", 1},
    });

    EXPECT_TRUE(result.all_completed) << "seed " << seed;
    EXPECT_EQ(result.cures, 4) << "seed " << seed;
    EXPECT_TRUE(result.audit.Clean()) << "seed " << seed;
    EXPECT_EQ(result.audit.duplicate_leaseholders, 0) << "seed " << seed;
    EXPECT_EQ(result.audit.issued_without_lease, 0) << "seed " << seed;
    EXPECT_EQ(result.audit.stale_executed, 0) << "seed " << seed;
  }
}

TEST(ControlHarnessTest, SameSeedReproducesByteIdenticalRuns) {
  auto run = [] {
    UserDefinedPolicy policy;
    ControlHarnessConfig config = FastConfig(3);
    config.net.seed = 7;
    config.net.drop_message = 0.05;
    config.net.delay_message = 0.10;
    config.net.duplicate_message = 0.05;
    NetFaultScript script;
    script.crashes.push_back({100, 0, 300});
    ControlPlaneHarness harness(policy, ManagerConfig(), config, script);
    return harness.Run({{50, 1, "Watchdog", 2}, {150, 2, "Watchdog", 1}});
  };
  const ControlHarnessResult a = run();
  const ControlHarnessResult b = run();
  EXPECT_EQ(a.executed, b.executed);
  EXPECT_EQ(a.cure_times, b.cure_times);
  EXPECT_EQ(a.end_time, b.end_time);
  EXPECT_EQ(a.events_processed, b.events_processed);
}

}  // namespace
}  // namespace aer::ctrl
