#include "ctrl/membership.h"

#include <gtest/gtest.h>

namespace aer::ctrl {
namespace {

MembershipConfig FastConfig() {
  MembershipConfig config;
  config.suspect_after = 15;
  config.evict_after = 60;
  return config;
}

TEST(MembershipTest, SelfIsAlwaysAlive) {
  MembershipTable table(0, 3, FastConfig());
  EXPECT_EQ(table.StateOf(0, 0), PeerState::kAlive);
  EXPECT_EQ(table.StateOf(1'000'000, 0), PeerState::kAlive);
}

TEST(MembershipTest, FreshPeersGetOneSuspectWindowOfGrace) {
  MembershipTable table(0, 3, FastConfig());
  // Never-heard peers count as last heard at time 0.
  EXPECT_EQ(table.StateOf(14, 1), PeerState::kAlive);
  EXPECT_EQ(table.StateOf(15, 1), PeerState::kSuspect);
  EXPECT_EQ(table.StateOf(59, 1), PeerState::kSuspect);
  EXPECT_EQ(table.StateOf(60, 1), PeerState::kEvicted);
}

TEST(MembershipTest, HeartbeatsKeepPeersAliveAndSilenceDemotes) {
  MembershipTable table(0, 3, FastConfig());
  table.RecordHeartbeat(100, 1);
  EXPECT_EQ(table.StateOf(114, 1), PeerState::kAlive);
  EXPECT_EQ(table.StateOf(115, 1), PeerState::kSuspect);
  EXPECT_EQ(table.StateOf(160, 1), PeerState::kEvicted);
}

TEST(MembershipTest, HeartbeatReadmitsEvictedPeer) {
  MembershipTable table(0, 3, FastConfig());
  table.RecordHeartbeat(100, 1);
  EXPECT_EQ(table.StateOf(160, 1), PeerState::kEvicted);
  table.RecordHeartbeat(200, 1);  // a restarted node rejoins by talking
  EXPECT_EQ(table.StateOf(201, 1), PeerState::kAlive);
}

TEST(MembershipTest, AliveListsAscendingIdsIncludingSelf) {
  MembershipTable table(1, 3, FastConfig());
  table.RecordHeartbeat(100, 0);
  table.RecordHeartbeat(100, 2);
  EXPECT_EQ(table.Alive(105), (std::vector<NodeId>{0, 1, 2}));
  // Node 0 goes silent.
  table.RecordHeartbeat(130, 2);
  EXPECT_EQ(table.Alive(130), (std::vector<NodeId>{1, 2}));
}

TEST(MembershipTest, PreferredCandidateIsLowestAliveId) {
  MembershipTable table(1, 3, FastConfig());
  table.RecordHeartbeat(100, 0);
  table.RecordHeartbeat(100, 2);
  EXPECT_FALSE(table.IsPreferredCandidate(105));  // node 0 is alive
  table.RecordHeartbeat(130, 2);
  EXPECT_TRUE(table.IsPreferredCandidate(130));  // node 0 silent, 1 leads
}

TEST(MembershipTest, TransitionsCountOncePerSilenceEpisode) {
  MembershipTable table(0, 2, FastConfig());
  table.RecordHeartbeat(10, 1);
  // Repeated queries in the suspect window count one suspicion.
  table.StateOf(30, 1);
  table.StateOf(40, 1);
  EXPECT_EQ(table.suspicions(), 1);
  EXPECT_EQ(table.evictions(), 0);
  table.StateOf(80, 1);  // now evicted
  EXPECT_EQ(table.evictions(), 1);
  // Readmission then a fresh silence episode counts again.
  table.RecordHeartbeat(100, 1);
  table.StateOf(120, 1);
  EXPECT_EQ(table.suspicions(), 2);
}

TEST(MembershipTest, ResetForgetsHeartbeats) {
  MembershipTable table(0, 2, FastConfig());
  table.RecordHeartbeat(100, 1);
  table.Reset();
  // Back to the never-heard state: silent since time 0.
  EXPECT_EQ(table.StateOf(100, 1), PeerState::kEvicted);
}

}  // namespace
}  // namespace aer::ctrl
