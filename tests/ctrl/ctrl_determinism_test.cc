// Takeover determinism: with the same seed and the same fault script, the
// fleet-visible outcome — which actions ran on which machines, in what
// order, and when each incident was cured — must be byte-identical whether
// the control plane has 1, 3, or 5 coordinators. Self-votes go through the
// simulated network like any other message and no RNG is consumed while the
// probabilistic arms are off, which is what makes this hold exactly.
#include <vector>

#include <gtest/gtest.h>

#include "cluster/user_policy.h"
#include "ctrl/harness.h"

namespace aer::ctrl {
namespace {

ControlHarnessResult RunFleet(int cluster_size) {
  UserDefinedPolicy policy;
  RecoveryManagerConfig manager_config;
  manager_config.action_timeout = 120;
  ControlHarnessConfig config;
  config.cluster_size = cluster_size;
  config.tick_interval = 5;
  config.net_latency = 1;
  config.reemit_interval = 60;
  config.action_duration = {2, 5, 10, 20};
  config.coordinator.lease.lease_duration = 30;
  config.coordinator.membership.suspect_after = 15;
  config.coordinator.membership.evict_after = 60;
  config.net.seed = 20070625;
  ControlPlaneHarness harness(policy, manager_config, config,
                              NetFaultScript{});
  return harness.Run({
      {20, 1, "Watchdog", 0},
      {35, 2, "NoHeartbeat", 2},
      {40, 3, "Watchdog", 1},
      {220, 1, "Watchdog", 1},  // reopens a machine with history
      {400, 4, "NoHeartbeat", 3},
  });
}

TEST(CtrlDeterminismTest, ClusterSizeDoesNotChangeTheFleetOutcome) {
  const ControlHarnessResult one = RunFleet(1);
  const ControlHarnessResult three = RunFleet(3);
  const ControlHarnessResult five = RunFleet(5);

  ASSERT_TRUE(one.all_completed);
  ASSERT_TRUE(three.all_completed);
  ASSERT_TRUE(five.all_completed);
  EXPECT_EQ(one.cures, 5);

  // Byte-identical action sequences and cure times across cluster sizes.
  EXPECT_EQ(one.executed, three.executed);
  EXPECT_EQ(one.executed, five.executed);
  EXPECT_EQ(one.cure_times, three.cure_times);
  EXPECT_EQ(one.cure_times, five.cure_times);
  // Even the dispatch log matches: same leader (node 0), same epoch, same
  // instants — only control-plane chatter (heartbeats, grants) differs.
  EXPECT_EQ(one.dispatch_log, three.dispatch_log);
  EXPECT_EQ(one.dispatch_log, five.dispatch_log);

  for (const ControlHarnessResult* result : {&one, &three, &five}) {
    EXPECT_TRUE(result->audit.Clean());
    EXPECT_EQ(result->stale_rejected, 0);
    EXPECT_EQ(result->results_lost, 0);
  }
}

TEST(CtrlDeterminismTest, RepeatRunsAreByteIdentical) {
  const ControlHarnessResult a = RunFleet(3);
  const ControlHarnessResult b = RunFleet(3);
  EXPECT_EQ(a.executed, b.executed);
  EXPECT_EQ(a.cure_times, b.cure_times);
  EXPECT_EQ(a.dispatch_log, b.dispatch_log);
  EXPECT_EQ(a.events_processed, b.events_processed);
  EXPECT_EQ(a.end_time, b.end_time);
}

}  // namespace
}  // namespace aer::ctrl
