// End-to-end trace propagation through the control plane: the causal DAG a
// run leaves in the TraceCollector, under chaos. Pins the ISSUE-level
// claims from docs/OBSERVABILITY.md "Distributed tracing":
//   - duplicated machine hops annotate the DAG but never double-count a
//     critical-path stage;
//   - dropped dispatches / lost results leave orphan edges, and the
//     timeout chain still cures everything;
//   - over a 50-seed chaos sweep, every cured trace's stage durations sum
//     EXACTLY to its end-to-end sim-time latency and every DAG is
//     well-formed (single root, parent < index, orphans only at loss
//     events);
//   - with the arms off, the trace byte stream is identical for 1, 3, and
//     5 coordinators, and attaching the collector does not perturb the run.
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/user_policy.h"
#include "ctrl/harness.h"
#include "obs/critical_path.h"
#include "obs/trace_collector.h"
#include "obs/trace_dag.h"

namespace aer::ctrl {
namespace {

ControlHarnessConfig BaseConfig(int cluster_size, std::uint64_t seed) {
  ControlHarnessConfig config;
  config.cluster_size = cluster_size;
  config.tick_interval = 5;
  config.net_latency = 1;
  config.reemit_interval = 60;
  config.action_duration = {2, 5, 10, 20};
  config.coordinator.lease.lease_duration = 30;
  config.coordinator.membership.suspect_after = 15;
  config.coordinator.membership.evict_after = 60;
  config.coordinator.election_retry = 10;
  config.net.seed = seed;
  return config;
}

std::vector<ControlIncident> Incidents() {
  return {{50, 7, "NoHeartbeat", 3}, {150, 2, "Watchdog", 1},
          {400, 9, "Watchdog", 0}};
}

struct TracedRun {
  ControlHarnessResult result;
  std::vector<obs::TraceRecord> records;
};

TracedRun RunTraced(ControlHarnessConfig config, NetFaultScript script) {
  UserDefinedPolicy policy;
  RecoveryManagerConfig manager_config;
  manager_config.action_timeout = 120;
  obs::TraceCollector traces;
  ControlPlaneHarness harness(policy, manager_config, std::move(config),
                              std::move(script));
  harness.SetTraceCollector(&traces);
  TracedRun run;
  run.result = harness.Run(Incidents());
  run.records = traces.Snapshot();
  return run;
}

// Structural well-formedness of every process DAG: exactly one root, every
// other node's parent is an earlier node, and orphan flags appear only on
// loss events.
void ExpectWellFormed(const obs::TraceDag& dag) {
  for (const obs::TraceProcess& process : dag.processes) {
    ASSERT_FALSE(process.nodes.empty());
    EXPECT_EQ(process.nodes[0].parent, -1);
    EXPECT_EQ(process.nodes[0].record.kind, obs::TraceEventKind::kIncident);
    for (std::size_t i = 1; i < process.nodes.size(); ++i) {
      EXPECT_GE(process.nodes[i].parent, 0);
      EXPECT_LT(process.nodes[i].parent, static_cast<int>(i));
    }
    for (const obs::TraceDagNode& node : process.nodes) {
      const bool loss =
          node.record.kind == obs::TraceEventKind::kDispatchDrop ||
          node.record.kind == obs::TraceEventKind::kResultLost ||
          node.record.kind == obs::TraceEventKind::kMessageDrop;
      EXPECT_EQ(node.orphan, loss);
    }
  }
}

// The tentpole's exactness claim: for every cured path, the per-stage
// durations sum to exactly the end-to-end sim-time latency.
void ExpectExactSums(const std::vector<obs::TraceRecord>& records,
                     int expected_cured) {
  const auto paths = obs::AnalyzeCriticalPaths(records);
  int cured = 0;
  for (const obs::CriticalPath& path : paths) {
    if (!path.cured) continue;
    ++cured;
    EXPECT_EQ(path.total_seconds(), path.end - path.start)
        << "trace " << path.trace_id;
  }
  EXPECT_EQ(cured, expected_cured);
}

TEST(TracePropagationTest, FaultFreeTraceIsIdenticalAcrossClusterSizes) {
  const TracedRun one = RunTraced(BaseConfig(1, 1), NetFaultScript{});
  const TracedRun three = RunTraced(BaseConfig(3, 1), NetFaultScript{});
  const TracedRun five = RunTraced(BaseConfig(5, 1), NetFaultScript{});
  ASSERT_TRUE(one.result.all_completed);
  ASSERT_TRUE(three.result.all_completed);
  ASSERT_TRUE(five.result.all_completed);
  // The full record streams match — ids, times, hops, seq — so every
  // derived rendering is byte-identical too.
  EXPECT_EQ(one.records, three.records);
  EXPECT_EQ(one.records, five.records);
  const std::string dag_text =
      obs::FormatTraceDag(obs::BuildTraceDag(one.records));
  EXPECT_EQ(dag_text, obs::FormatTraceDag(obs::BuildTraceDag(five.records)));
  ExpectWellFormed(obs::BuildTraceDag(one.records));
  ExpectExactSums(one.records, 3);
}

TEST(TracePropagationTest, AttachingTheCollectorDoesNotPerturbTheRun) {
  UserDefinedPolicy policy;
  RecoveryManagerConfig manager_config;
  manager_config.action_timeout = 120;
  ControlPlaneHarness plain(policy, manager_config, BaseConfig(3, 1),
                            NetFaultScript{});
  const ControlHarnessResult untraced = plain.Run(Incidents());
  const TracedRun traced = RunTraced(BaseConfig(3, 1), NetFaultScript{});
  // Telemetry never feeds back: identical executed actions, cure times,
  // dispatch log, and event count with and without the collector.
  EXPECT_EQ(untraced.executed, traced.result.executed);
  EXPECT_EQ(untraced.cure_times, traced.result.cure_times);
  EXPECT_EQ(untraced.dispatch_log, traced.result.dispatch_log);
  EXPECT_EQ(untraced.events_processed, traced.result.events_processed);
}

TEST(TracePropagationTest, DuplicatedHopsAnnotateButNeverDoubleCount) {
  ControlHarnessConfig config = BaseConfig(3, 7);
  config.net.duplicate_machine_hop = 0.5;
  const TracedRun run = RunTraced(std::move(config), NetFaultScript{});
  ASSERT_TRUE(run.result.all_completed);
  ASSERT_GT(run.result.net.machine_duplicates, 0);
  // Duplicate-flagged hops are present in the stream...
  int duplicates = 0;
  for (const obs::TraceRecord& r : run.records) {
    if (r.duplicate) ++duplicates;
  }
  EXPECT_GT(duplicates, 0);
  // ...but the attribution ignores them: sums stay exact for all 3 cures
  // and the DAG stays well-formed.
  ExpectExactSums(run.records, 3);
  ExpectWellFormed(obs::BuildTraceDag(run.records));
}

TEST(TracePropagationTest, DroppedMessagesLeaveOrphanEdges) {
  ControlHarnessConfig config = BaseConfig(3, 11);
  config.net.drop_machine_hop = 0.4;
  const TracedRun run = RunTraced(std::move(config), NetFaultScript{});
  // The timeout/re-emit chain still cures everything.
  ASSERT_TRUE(run.result.all_completed);
  ASSERT_GT(run.result.net.machine_drops, 0);
  const obs::TraceDag dag = obs::BuildTraceDag(run.records);
  int orphans = 0;
  for (const obs::TraceProcess& process : dag.processes) {
    for (const obs::TraceDagNode& node : process.nodes) {
      if (node.orphan) ++orphans;
    }
  }
  EXPECT_GT(orphans, 0);
  ExpectWellFormed(dag);
  ExpectExactSums(run.records, 3);
}

TEST(TracePropagationTest, TraceIdSurvivesLeaderTakeover) {
  // Crash the initial leader while machine 7's recovery is in flight: the
  // successor adopts the replica and finishes the cure under the SAME
  // trace id, with the adoption visible in the DAG.
  NetFaultScript script;
  script.crashes.push_back({72, 0, 300});
  const TracedRun run = RunTraced(BaseConfig(3, 1), script);
  ASSERT_TRUE(run.result.all_completed);
  const obs::TraceDag dag = obs::BuildTraceDag(run.records);
  bool found_takeover_trace = false;
  for (const obs::TraceProcess& process : dag.processes) {
    if (process.machine != 7) continue;
    if (!process.cured) continue;
    std::set<int> dispatch_nodes;
    bool adopted = false;
    for (const obs::TraceDagNode& node : process.nodes) {
      if (node.record.kind == obs::TraceEventKind::kDispatch) {
        dispatch_nodes.insert(node.record.node);
      }
      if (node.record.kind == obs::TraceEventKind::kAdopt) adopted = true;
    }
    // One stitched DAG spanning both coordinators' dispatches.
    if (adopted && dispatch_nodes.size() >= 2) found_takeover_trace = true;
  }
  EXPECT_TRUE(found_takeover_trace);
  // The takeover window is attributed: some cured path carries a non-zero
  // takeover_gap or election_wait stage.
  const auto paths = obs::AnalyzeCriticalPaths(run.records);
  SimTime control_wait = 0;
  for (const obs::CriticalPath& path : paths) {
    control_wait +=
        path.stage_seconds[static_cast<int>(obs::TraceStage::kTakeoverGap)] +
        path.stage_seconds[static_cast<int>(obs::TraceStage::kElectionWait)];
  }
  EXPECT_GT(control_wait, 0);
  ExpectExactSums(run.records, 3);
}

// The acceptance sweep: 50 seeds of combined coordinator-link and
// machine-hop chaos plus a leader crash. Every run must cure everything,
// keep the auditor clean, produce well-formed DAGs, and attribute every
// cured trace's latency exactly.
TEST(TracePropagationTest, FiftySeedChaosSweepKeepsSumsExact) {
  int traced_processes = 0;
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    ControlHarnessConfig config = BaseConfig(3, seed);
    config.net.drop_message = 0.05;
    config.net.delay_message = 0.10;
    config.net.duplicate_message = 0.05;
    config.net.drop_machine_hop = 0.10;
    config.net.delay_machine_hop = 0.10;
    config.net.duplicate_machine_hop = 0.10;
    NetFaultScript script;
    script.crashes.push_back({72, 0, 300});
    const TracedRun run = RunTraced(std::move(config), script);
    ASSERT_TRUE(run.result.all_completed) << "seed " << seed;
    ASSERT_TRUE(run.result.audit.Clean()) << "seed " << seed;
    ExpectExactSums(run.records, 3);
    const obs::TraceDag dag = obs::BuildTraceDag(run.records);
    ExpectWellFormed(dag);
    traced_processes += static_cast<int>(dag.processes.size());
  }
  // Every incident of every seed produced a traced process.
  EXPECT_GE(traced_processes, 50 * 3);
}

}  // namespace
}  // namespace aer::ctrl
