// Coordinator protocol unit tests: message-level election, the lease gate
// on the recovery surface, result correlation, and takeover-resume via
// replicated snapshots — all by shuttling messages by hand, no harness.
#include "ctrl/coordinator.h"

#include <gtest/gtest.h>

#include "cluster/user_policy.h"

namespace aer::ctrl {
namespace {

RecoveryManagerConfig ManagerConfig() {
  RecoveryManagerConfig config;
  config.action_timeout = 600;
  return config;
}

// Delivers every message in `out` addressed to `node`, returning the
// node's combined output.
CoordinatorOutput DeliverAll(Coordinator& node, SimTime now,
                             const CoordinatorOutput& out) {
  CoordinatorOutput combined;
  for (const Message& message : out.messages) {
    if (message.to != node.id()) continue;
    CoordinatorOutput one = node.Deliver(now, message);
    for (Message& m : one.messages) combined.messages.push_back(std::move(m));
    for (const ActionDispatch& d : one.dispatches) {
      combined.dispatches.push_back(d);
    }
  }
  return combined;
}

TEST(CoordinatorTest, SingleNodeElectsItselfThroughTheNetwork) {
  UserDefinedPolicy policy;
  Coordinator node(0, 1, CoordinatorConfig{}, policy, ManagerConfig());

  const CoordinatorOutput tick = node.Tick(0);
  // No peers, so no heartbeats — but the self-vote still goes through the
  // message loop (that is what keeps timing identical across cluster
  // sizes).
  ASSERT_EQ(tick.messages.size(), 1u);
  EXPECT_EQ(tick.messages[0].kind, MessageKind::kVoteRequest);
  EXPECT_EQ(tick.messages[0].to, 0);
  EXPECT_EQ(tick.messages[0].epoch, 1u);
  EXPECT_FALSE(node.IsLeader(0));

  const CoordinatorOutput grant = DeliverAll(node, 1, tick);
  ASSERT_EQ(grant.messages.size(), 1u);
  EXPECT_EQ(grant.messages[0].kind, MessageKind::kVoteGrant);
  const CoordinatorOutput done = DeliverAll(node, 2, grant);
  EXPECT_TRUE(done.messages.empty());
  EXPECT_TRUE(node.IsLeader(2));
  EXPECT_EQ(node.stats().elections_started, 1);
  EXPECT_EQ(node.stats().leases_acquired, 1);
}

TEST(CoordinatorTest, LeaderDispatchesFencedCorrelatedActions) {
  UserDefinedPolicy policy;
  Coordinator node(0, 1, CoordinatorConfig{}, policy, ManagerConfig());
  DeliverAll(node, 2, DeliverAll(node, 1, node.Tick(0)));
  ASSERT_TRUE(node.IsLeader(2));

  const CoordinatorOutput out = node.OnSymptom(3, 7, "Watchdog");
  ASSERT_EQ(out.dispatches.size(), 1u);
  EXPECT_EQ(out.dispatches[0].machine, 7);
  EXPECT_EQ(out.dispatches[0].epoch, 1u);
  EXPECT_EQ(out.dispatches[0].attempt, 0);
  EXPECT_EQ(out.dispatches[0].issuer, 0);

  // A healthy result for the newest attempt closes the process.
  node.OnActionResult(10, 7, /*healthy=*/true, /*attempt=*/0);
  EXPECT_EQ(node.service().manager().open_process_count(), 0u);
}

TEST(CoordinatorTest, StaleResultEchoesAreDropped) {
  UserDefinedPolicy policy;
  Coordinator node(0, 1, CoordinatorConfig{}, policy, ManagerConfig());
  DeliverAll(node, 2, DeliverAll(node, 1, node.Tick(0)));
  node.OnSymptom(3, 7, "Watchdog");

  // Echo of some attempt that is not the newest recorded one.
  const CoordinatorOutput out = node.OnActionResult(10, 7, true, 4);
  EXPECT_TRUE(out.dispatches.empty());
  EXPECT_EQ(node.stats().stale_results_dropped, 1);
  EXPECT_EQ(node.service().manager().open_process_count(), 1u);
}

TEST(CoordinatorTest, FollowerGatesRecoveryTraffic) {
  UserDefinedPolicy policy;
  Coordinator node(1, 3, CoordinatorConfig{}, policy, ManagerConfig());
  const CoordinatorOutput out = node.OnSymptom(3, 7, "Watchdog");
  EXPECT_TRUE(out.dispatches.empty());
  EXPECT_EQ(node.service().actions_gated(), 1);
  EXPECT_EQ(node.service().manager().open_process_count(), 0u);
}

TEST(CoordinatorTest, NonPreferredNodeDoesNotBid) {
  UserDefinedPolicy policy;
  Coordinator node(1, 3, CoordinatorConfig{}, policy, ManagerConfig());
  // Node 0 is within its never-heard grace window, so node 1 defers.
  const CoordinatorOutput tick = node.Tick(0);
  for (const Message& message : tick.messages) {
    EXPECT_EQ(message.kind, MessageKind::kHeartbeat);
  }
  EXPECT_EQ(node.stats().elections_started, 0);
}

TEST(CoordinatorTest, TakeoverAdoptsReplicaAndResumesAttemptCount) {
  UserDefinedPolicy policy;
  CoordinatorConfig config;
  Coordinator node0(0, 3, config, policy, ManagerConfig());
  Coordinator node1(1, 3, config, policy, ManagerConfig());
  Coordinator node2(2, 3, config, policy, ManagerConfig());

  // Elect node 0: its bid reaches everyone, two grants are a majority.
  const CoordinatorOutput bid = node0.Tick(0);
  CoordinatorOutput grants = DeliverAll(node0, 1, bid);
  const CoordinatorOutput g1 = DeliverAll(node1, 1, bid);
  const CoordinatorOutput g2 = DeliverAll(node2, 1, bid);
  for (const auto& o : {g1, g2}) {
    for (const Message& m : o.messages) grants.messages.push_back(m);
  }
  DeliverAll(node0, 2, grants);
  ASSERT_TRUE(node0.IsLeader(2));

  // The leader opens a process and records its first action.
  ASSERT_EQ(node0.OnSymptom(3, 7, "Watchdog").dispatches.size(), 1u);
  EXPECT_EQ(node0.service().manager().ActionsTried(7), 1);

  // Its next tick replicates the open process to the followers.
  const CoordinatorOutput tick = node0.Tick(5);
  DeliverAll(node1, 6, tick);
  EXPECT_EQ(node1.service().replica_entries(), 1u);

  // Node 0 "crashes" (goes silent). Keep node 2 visible to node 1, let the
  // promises to node 0 expire, and let node 1 bid.
  Message hb;
  hb.kind = MessageKind::kHeartbeat;
  hb.from = 2;
  hb.to = 1;
  hb.sent_at = 30;
  node1.Deliver(30, hb);

  const CoordinatorOutput bid2 = node1.Tick(40);
  bool saw_request = false;
  CoordinatorOutput grants2 = DeliverAll(node1, 41, bid2);
  for (const Message& m : bid2.messages) {
    if (m.kind == MessageKind::kVoteRequest) saw_request = true;
  }
  ASSERT_TRUE(saw_request);
  const CoordinatorOutput g22 = DeliverAll(node2, 41, bid2);
  for (const Message& m : g22.messages) grants2.messages.push_back(m);
  const CoordinatorOutput takeover = DeliverAll(node1, 42, grants2);

  ASSERT_TRUE(node1.IsLeader(42));
  EXPECT_EQ(node1.stats().takeovers, 1);
  EXPECT_EQ(node1.stats().processes_adopted, 1);
  // Resume, not restart: the adopted process keeps the previous leader's
  // attempt count, and the re-drive dispatches attempt #1 under epoch 2.
  ASSERT_EQ(takeover.dispatches.size(), 1u);
  EXPECT_EQ(takeover.dispatches[0].machine, 7);
  EXPECT_EQ(takeover.dispatches[0].attempt, 1);
  EXPECT_EQ(takeover.dispatches[0].epoch, 2u);
  EXPECT_EQ(node1.service().manager().ActionsTried(7), 2);
}

TEST(CoordinatorTest, LeaderStepsDownWhenLeaseLapses) {
  UserDefinedPolicy policy;
  Coordinator node(0, 1, CoordinatorConfig{}, policy, ManagerConfig());
  DeliverAll(node, 2, DeliverAll(node, 1, node.Tick(0)));
  ASSERT_TRUE(node.IsLeader(2));

  // Far past the lease without renewal traffic: the gate refuses first,
  // the next entry point records the step-down.
  EXPECT_FALSE(node.IsLeader(1000));
  const CoordinatorOutput out = node.OnSymptom(1000, 7, "Watchdog");
  EXPECT_TRUE(out.dispatches.empty());
  EXPECT_EQ(node.stats().stepdowns, 1);
  EXPECT_EQ(node.service().actions_gated(), 1);
}

}  // namespace
}  // namespace aer::ctrl
