// LeaseTable voter/holder contracts, FenceRegistry admission, and the
// InvariantAuditor's independent recomputation of lease windows — the three
// safety pillars of docs/CONTROL_PLANE.md, each testable in isolation.
#include "ctrl/lease.h"

#include <gtest/gtest.h>

#include "ctrl/auditor.h"
#include "ctrl/fence.h"

namespace aer::ctrl {
namespace {

LeaseConfig ThirtySeconds() {
  LeaseConfig config;
  config.lease_duration = 30;
  return config;
}

TEST(LeaseVoterTest, GrantReturnsPromiseExpiry) {
  LeaseTable table(3, ThirtySeconds(), VoterRecord{});
  SimTime expiry = 0;
  EXPECT_TRUE(table.Grant(100, 1, 0, &expiry));
  EXPECT_EQ(expiry, 130);
  EXPECT_EQ(table.durable().voted_epoch, 1u);
  EXPECT_EQ(table.durable().voted_for, 0);
}

TEST(LeaseVoterTest, RefusesOtherCandidateWhilePromiseLive) {
  LeaseTable table(3, ThirtySeconds(), VoterRecord{});
  SimTime expiry = 0;
  ASSERT_TRUE(table.Grant(100, 1, 0, &expiry));
  // Higher epoch, different candidate, inside the promise window: no.
  EXPECT_FALSE(table.Grant(120, 2, 1, &expiry));
  // After the promise expires the higher epoch wins.
  EXPECT_TRUE(table.Grant(130, 2, 1, &expiry));
  EXPECT_EQ(expiry, 160);
}

TEST(LeaseVoterTest, BoundToFirstCandidateWithinAnEpochForever) {
  LeaseTable table(3, ThirtySeconds(), VoterRecord{});
  SimTime expiry = 0;
  ASSERT_TRUE(table.Grant(100, 1, 0, &expiry));
  // Same epoch, different candidate: refused even after the promise
  // expires — two holders in one epoch would break fencing.
  EXPECT_FALSE(table.Grant(500, 1, 2, &expiry));
}

TEST(LeaseVoterTest, SameCandidateRenewsAndRebids) {
  LeaseTable table(3, ThirtySeconds(), VoterRecord{});
  SimTime expiry = 0;
  ASSERT_TRUE(table.Grant(100, 1, 0, &expiry));
  // Re-granting the same (epoch, candidate) extends the promise.
  EXPECT_TRUE(table.Grant(110, 1, 0, &expiry));
  EXPECT_EQ(expiry, 140);
  // The same candidate may bid a higher epoch inside its own window.
  EXPECT_TRUE(table.Grant(120, 5, 0, &expiry));
  EXPECT_FALSE(table.Grant(121, 4, 0, &expiry));  // older epoch: fenced
}

TEST(LeaseVoterTest, DurableRecordSurvivesRestart) {
  VoterRecord durable;
  {
    LeaseTable table(3, ThirtySeconds(), VoterRecord{});
    SimTime expiry = 0;
    ASSERT_TRUE(table.Grant(100, 3, 0, &expiry));
    durable = table.durable();
  }
  // The reborn voter keeps its word: no older epoch, no second candidate
  // inside the promised window.
  LeaseTable reborn(3, ThirtySeconds(), durable);
  SimTime expiry = 0;
  EXPECT_FALSE(reborn.Grant(105, 2, 1, &expiry));
  EXPECT_FALSE(reborn.Grant(105, 3, 1, &expiry));
  EXPECT_TRUE(reborn.Grant(105, 3, 0, &expiry));
}

TEST(LeaseHolderTest, MajorityOfUnexpiredGrantsHoldsTheLease) {
  LeaseTable table(3, ThirtySeconds(), VoterRecord{});
  table.StartCandidacy(1);
  EXPECT_FALSE(table.HoldsLease(100));
  table.RecordGrant(100, 0, 1, 130);
  EXPECT_FALSE(table.HoldsLease(100));  // 1 of 3 is no majority
  table.RecordGrant(101, 1, 1, 131);
  EXPECT_TRUE(table.HoldsLease(101));
  // Expiry is the majority-th (2nd) largest per-voter expiry.
  EXPECT_EQ(table.LeaseExpiry(), 130);
  EXPECT_TRUE(table.HoldsLease(129));
  EXPECT_FALSE(table.HoldsLease(130));
  // A third grant pushes the 2nd-largest up.
  table.RecordGrant(120, 2, 1, 150);
  EXPECT_EQ(table.LeaseExpiry(), 131);
}

TEST(LeaseHolderTest, IgnoresStaleEpochsAndExpiredGrants) {
  LeaseTable table(3, ThirtySeconds(), VoterRecord{});
  table.StartCandidacy(2);
  table.RecordGrant(100, 0, 1, 130);  // old election's grant
  table.RecordGrant(100, 1, 2, 90);   // already expired on arrival
  EXPECT_FALSE(table.HoldsLease(100));
  EXPECT_EQ(table.LeaseExpiry(), 0);
}

TEST(LeaseHolderTest, NewCandidacyDropsGrantsRenewalKeepsThem) {
  LeaseTable table(3, ThirtySeconds(), VoterRecord{});
  table.StartCandidacy(1);
  table.RecordGrant(100, 0, 1, 130);
  table.RecordGrant(100, 1, 1, 130);
  ASSERT_TRUE(table.HoldsLease(100));
  table.StartCandidacy(1);  // renewal round: same epoch, grants kept
  EXPECT_TRUE(table.HoldsLease(100));
  table.StartCandidacy(2);  // new election: grants dropped
  EXPECT_FALSE(table.HoldsLease(100));
  EXPECT_EQ(table.holding_epoch(), 2u);
}

TEST(LeaseHolderTest, ClearGrantsStepsDown) {
  LeaseTable table(3, ThirtySeconds(), VoterRecord{});
  table.StartCandidacy(1);
  table.RecordGrant(100, 0, 1, 130);
  table.RecordGrant(100, 1, 1, 130);
  ASSERT_TRUE(table.HoldsLease(100));
  table.ClearGrants();
  EXPECT_FALSE(table.HoldsLease(100));
  EXPECT_EQ(table.holding_epoch(), 0u);
}

TEST(LeaseHolderTest, MaxSeenEpochTracksAllTraffic) {
  LeaseTable table(3, ThirtySeconds(), VoterRecord{});
  SimTime expiry = 0;
  table.Grant(100, 4, 1, &expiry);
  EXPECT_EQ(table.max_seen_epoch(), 4u);
  table.ObserveEpoch(9);
  EXPECT_EQ(table.max_seen_epoch(), 9u);
  table.RecordGrant(100, 0, 2, 130);
  EXPECT_EQ(table.max_seen_epoch(), 9u);
}

TEST(LeaseHolderTest, LockedAccessorsBatchUnderOneAcquisition) {
  LeaseTable table(3, ThirtySeconds(), VoterRecord{});
  table.StartCandidacy(1);
  table.RecordGrant(100, 0, 1, 130);
  table.RecordGrant(100, 1, 1, 130);
  MutexLock lock(table.mu());
  EXPECT_TRUE(table.HoldsLeaseLocked(100));
  EXPECT_EQ(table.LeaseExpiryLocked(), 130);
  EXPECT_EQ(table.holding_epoch_locked(), 1u);
}

TEST(FenceRegistryTest, RejectsOnlyStaleEpochs) {
  FenceRegistry fence;
  EXPECT_TRUE(fence.Admit(7, 1));
  EXPECT_TRUE(fence.Admit(7, 1));  // same epoch re-admits (same leader)
  EXPECT_TRUE(fence.Admit(7, 3));
  EXPECT_FALSE(fence.Admit(7, 2));  // below the floor: fenced off
  EXPECT_EQ(fence.FloorOf(7), 3u);
  EXPECT_EQ(fence.rejections(), 1);
  // Floors are per machine.
  EXPECT_TRUE(fence.Admit(8, 1));
  EXPECT_EQ(fence.FloorOf(8), 1u);
}

TEST(AuditorTest, RecomputesLeaseWindowsFromGrantTraffic) {
  InvariantAuditor auditor(3);
  auditor.OnVoteGrant(100, /*voter=*/0, /*candidate=*/0, /*epoch=*/1, 130);
  // One grant is no quorum: an action now is a violation.
  auditor.OnActionIssued(101, /*issuer=*/0, /*epoch=*/1, /*machine=*/5);
  auditor.OnVoteGrant(102, 1, 0, 1, 132);
  auditor.OnActionIssued(103, 0, 1, 5);  // quorum reached: valid
  auditor.OnActionIssued(135, 0, 1, 5);  // both promises lapsed: violation
  const InvariantAuditor::Report report = auditor.report();
  EXPECT_EQ(report.issued_without_lease, 2);
  EXPECT_EQ(report.actions_issued, 3);
  EXPECT_EQ(report.epochs_with_holder, 1);
  EXPECT_FALSE(report.Clean());
}

TEST(AuditorTest, FlagsSecondLeaseholderInOneEpoch) {
  InvariantAuditor auditor(3);
  auditor.OnVoteGrant(100, 0, 0, 1, 130);
  auditor.OnVoteGrant(100, 1, 0, 1, 130);
  // A disjoint-looking majority for another candidate in the same epoch
  // (impossible with honest voters — which is the point of auditing it).
  auditor.OnVoteGrant(105, 1, 2, 1, 135);
  auditor.OnVoteGrant(105, 2, 2, 1, 135);
  const InvariantAuditor::Report report = auditor.report();
  EXPECT_EQ(report.duplicate_leaseholders, 1);
  EXPECT_FALSE(report.Clean());
}

TEST(AuditorTest, FlagsStaleExecutionCountsCleanRejection) {
  InvariantAuditor auditor(3);
  auditor.OnActionExecuted(100, /*machine=*/5, /*epoch=*/2);
  auditor.OnStaleRejected(101, 5, 1);   // machine refused: the good path
  auditor.OnActionExecuted(102, 5, 1);  // machine executed stale: violation
  const InvariantAuditor::Report report = auditor.report();
  EXPECT_EQ(report.stale_rejected, 1);
  EXPECT_EQ(report.stale_executed, 1);
  EXPECT_FALSE(report.Clean());
}

}  // namespace
}  // namespace aer::ctrl
