// Critical-path attribution units: the exact-sum contract (stage durations
// partition [start, end) with no gaps and no double counting), duplicate
// and out-of-order robustness, the leadership/election overlay, the
// takeover-gap overlay, and metric publication.
#include <array>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/critical_path.h"
#include "obs/metrics.h"
#include "obs/trace_collector.h"
#include "obs/trace_context.h"

namespace aer::obs {
namespace {

TraceRecord Rec(TraceId id, SimTime time, TraceEventKind kind,
                std::int64_t machine, int attempt = -1, int node = -1) {
  TraceRecord r;
  r.trace_id = id;
  r.time = time;
  r.kind = kind;
  r.machine = machine;
  r.attempt = attempt;
  r.node = node;
  return r;
}

SimTime Stage(const CriticalPath& path, TraceStage stage) {
  return path.stage_seconds[static_cast<int>(stage)];
}

// The exact-sum contract plus segment-partition well-formedness.
void ExpectExact(const CriticalPath& path) {
  EXPECT_EQ(path.total_seconds(), path.end - path.start) << "trace "
      << path.trace_id;
  // Non-zero-width segments tile [start, end): contiguous, in order.
  SimTime pos = path.start;
  for (const StageSegment& segment : path.segments) {
    if (segment.from == segment.to) {
      EXPECT_EQ(segment.stage, TraceStage::kFenceAdmit);
      continue;
    }
    EXPECT_EQ(segment.from, pos);
    EXPECT_LT(segment.from, segment.to);
    pos = segment.to;
  }
  EXPECT_EQ(pos, path.end);
}

TEST(CriticalPathTest, SingleAttemptAttributesEveryInstant) {
  const TraceId id = MakeTraceId(11, 3, 1);
  const auto paths = AnalyzeCriticalPaths({
      Rec(id, 100, TraceEventKind::kIncident, 3),
      Rec(id, 102, TraceEventKind::kSymptom, 3),
      Rec(id, 105, TraceEventKind::kDispatch, 3, 0, 0),
      Rec(id, 106, TraceEventKind::kActionStart, 3, 0),
      Rec(id, 116, TraceEventKind::kActionDone, 3, 0),
      Rec(id, 116, TraceEventKind::kCure, 3),
      Rec(id, 117, TraceEventKind::kResultDeliver, 3, 0, 0),
  });
  ASSERT_EQ(paths.size(), 1u);
  const CriticalPath& path = paths[0];
  EXPECT_TRUE(path.cured);
  EXPECT_EQ(path.start, 100);
  EXPECT_EQ(path.end, 116);
  EXPECT_EQ(path.attempts, 1);
  // No leadership overlay in the stream: with no leader_elected record the
  // walker has no leaseholder, so the control-plane waits become
  // election_wait — detect [100,102) and dispatch_queue [102,105) combined.
  EXPECT_EQ(Stage(path, TraceStage::kElectionWait), 5);
  EXPECT_EQ(Stage(path, TraceStage::kDispatchTransit), 1);
  EXPECT_EQ(Stage(path, TraceStage::kActionExec), 10);
  EXPECT_EQ(Stage(path, TraceStage::kFenceAdmit), 0);
  ExpectExact(path);
  // The zero-width fence_admit marker is present in the segment list.
  bool fence_marker = false;
  for (const StageSegment& s : path.segments) {
    if (s.stage == TraceStage::kFenceAdmit) {
      fence_marker = true;
      EXPECT_EQ(s.from, s.to);
    }
  }
  EXPECT_TRUE(fence_marker);
}

// With a leader elected before the incident, the control-plane waits keep
// their own names.
TEST(CriticalPathTest, LeadershipOverlaySplitsControlWaits) {
  const TraceId id = MakeTraceId(11, 6, 1);
  TraceRecord elected = Rec(kNoTrace, 0, TraceEventKind::kLeaderElected, -1);
  elected.node = 0;
  const auto paths = AnalyzeCriticalPaths({
      elected,
      Rec(id, 100, TraceEventKind::kIncident, 6),
      Rec(id, 102, TraceEventKind::kSymptom, 6),
      Rec(id, 105, TraceEventKind::kDispatch, 6, 0, 0),
      Rec(id, 106, TraceEventKind::kActionStart, 6, 0),
      Rec(id, 116, TraceEventKind::kActionDone, 6, 0),
      Rec(id, 116, TraceEventKind::kCure, 6),
  });
  ASSERT_EQ(paths.size(), 1u);
  const CriticalPath& path = paths[0];
  EXPECT_EQ(Stage(path, TraceStage::kDetect), 2);
  EXPECT_EQ(Stage(path, TraceStage::kDispatchQueue), 3);
  EXPECT_EQ(Stage(path, TraceStage::kElectionWait), 0);
  ExpectExact(path);
}

// A leaderless window in the middle of detection becomes election_wait;
// the rest of the wait keeps its base stage. Exactness still holds.
TEST(CriticalPathTest, LeaderlessIntervalBecomesElectionWait) {
  const TraceId id = MakeTraceId(11, 8, 1);
  TraceRecord elected0 = Rec(kNoTrace, 0, TraceEventKind::kLeaderElected, -1);
  elected0.node = 0;
  TraceRecord lost = Rec(kNoTrace, 110, TraceEventKind::kLeaderLost, -1);
  lost.node = 0;
  TraceRecord elected1 = Rec(kNoTrace, 130, TraceEventKind::kLeaderElected, -1);
  elected1.node = 1;
  const auto paths = AnalyzeCriticalPaths({
      elected0,
      Rec(id, 100, TraceEventKind::kIncident, 8),
      lost,
      elected1,
      Rec(id, 140, TraceEventKind::kSymptom, 8),
      Rec(id, 142, TraceEventKind::kDispatch, 8, 0, 1),
      Rec(id, 143, TraceEventKind::kActionStart, 8, 0),
      Rec(id, 153, TraceEventKind::kActionDone, 8, 0),
      Rec(id, 153, TraceEventKind::kCure, 8),
  });
  ASSERT_EQ(paths.size(), 1u);
  const CriticalPath& path = paths[0];
  // detect = [100,110) + [130,140); election_wait = [110,130).
  EXPECT_EQ(Stage(path, TraceStage::kDetect), 20);
  EXPECT_EQ(Stage(path, TraceStage::kElectionWait), 20);
  ExpectExact(path);
}

// Duplicated hops (network duplication) and stale-attempt records never
// advance the cursor: the stage sum stays exact and attempts don't double.
TEST(CriticalPathTest, DuplicatesDoNotDoubleCount) {
  const TraceId id = MakeTraceId(11, 5, 1);
  TraceRecord elected = Rec(kNoTrace, 0, TraceEventKind::kLeaderElected, -1);
  elected.node = 0;
  TraceRecord dup_start = Rec(id, 108, TraceEventKind::kActionStart, 5, 0);
  dup_start.duplicate = true;
  TraceRecord dup_result = Rec(id, 119, TraceEventKind::kResultDeliver, 5, 0, 0);
  dup_result.duplicate = true;
  const auto paths = AnalyzeCriticalPaths({
      elected,
      Rec(id, 100, TraceEventKind::kIncident, 5),
      Rec(id, 102, TraceEventKind::kSymptom, 5),
      Rec(id, 102, TraceEventKind::kSymptom, 5),  // re-emitted symptom
      Rec(id, 105, TraceEventKind::kDispatch, 5, 0, 0),
      Rec(id, 106, TraceEventKind::kActionStart, 5, 0),
      dup_start,  // duplicated delivery arrives again mid-exec
      Rec(id, 116, TraceEventKind::kActionDone, 5, 0),
      Rec(id, 117, TraceEventKind::kResultDeliver, 5, 0, 0),
      dup_result,  // duplicated result
      Rec(id, 120, TraceEventKind::kDispatch, 5, 1, 0),
      Rec(id, 121, TraceEventKind::kActionStart, 5, 1),
      Rec(id, 131, TraceEventKind::kActionDone, 5, 1),
      Rec(id, 131, TraceEventKind::kCure, 5),
  });
  ASSERT_EQ(paths.size(), 1u);
  const CriticalPath& path = paths[0];
  EXPECT_EQ(path.attempts, 2);
  EXPECT_EQ(Stage(path, TraceStage::kActionExec), 20);
  EXPECT_EQ(Stage(path, TraceStage::kResultTransit), 1);
  EXPECT_EQ(Stage(path, TraceStage::kTimeoutWait), 3);  // [117,120)
  ExpectExact(path);
}

// A timeout record whose deadline predates the cursor (out-of-order rescue)
// changes state without moving time backward.
TEST(CriticalPathTest, OutOfOrderTimeoutKeepsSumExact) {
  const TraceId id = MakeTraceId(11, 9, 1);
  TraceRecord elected = Rec(kNoTrace, 0, TraceEventKind::kLeaderElected, -1);
  elected.node = 0;
  const auto paths = AnalyzeCriticalPaths({
      elected,
      Rec(id, 100, TraceEventKind::kIncident, 9),
      Rec(id, 102, TraceEventKind::kSymptom, 9),
      Rec(id, 105, TraceEventKind::kDispatch, 9, 0, 0),
      // The dispatch was dropped; the issuer's timeout record carries a
      // time at (not after) the next dispatch. Feed it out of order with a
      // stale time to exercise the monotonic-cursor guard.
      Rec(id, 103, TraceEventKind::kTimeout, 9, 0, 0),
      Rec(id, 150, TraceEventKind::kDispatch, 9, 1, 0),
      Rec(id, 151, TraceEventKind::kActionStart, 9, 1),
      Rec(id, 161, TraceEventKind::kActionDone, 9, 1),
      Rec(id, 161, TraceEventKind::kCure, 9),
  });
  ASSERT_EQ(paths.size(), 1u);
  const CriticalPath& path = paths[0];
  // The stale timeout moved the wait to Recovery without rewinding: the
  // whole [105,150) window lands in timeout_wait, nothing is lost or
  // counted twice.
  EXPECT_EQ(Stage(path, TraceStage::kTimeoutWait), 45);
  ExpectExact(path);
}

// Issuer crash between dispatch and the adopting leader's re-dispatch: the
// wait after the crash is the takeover gap, leaderless sub-intervals before
// the re-dispatch notwithstanding.
TEST(CriticalPathTest, TakeoverGapAttribution) {
  const TraceId id = MakeTraceId(11, 2, 1);
  TraceRecord elected0 = Rec(kNoTrace, 0, TraceEventKind::kLeaderElected, -1);
  elected0.node = 0;
  TraceRecord crash = Rec(kNoTrace, 120, TraceEventKind::kNodeCrash, -1);
  crash.node = 0;
  TraceRecord elected1 = Rec(kNoTrace, 135, TraceEventKind::kLeaderElected, -1);
  elected1.node = 1;
  const auto paths = AnalyzeCriticalPaths({
      elected0,
      Rec(id, 100, TraceEventKind::kIncident, 2),
      Rec(id, 102, TraceEventKind::kSymptom, 2),
      Rec(id, 105, TraceEventKind::kDispatch, 2, 0, 0),
      Rec(id, 106, TraceEventKind::kActionStart, 2, 0),
      Rec(id, 116, TraceEventKind::kActionDone, 2, 0),
      crash,
      Rec(id, 120, TraceEventKind::kResultLost, 2, 0, 0),
      elected1,
      Rec(id, 140, TraceEventKind::kDispatch, 2, 1, 1),
      Rec(id, 141, TraceEventKind::kActionStart, 2, 1),
      Rec(id, 151, TraceEventKind::kActionDone, 2, 1),
      Rec(id, 151, TraceEventKind::kCure, 2),
  });
  ASSERT_EQ(paths.size(), 1u);
  const CriticalPath& path = paths[0];
  // result_transit [116,120) ends at the loss; the recovery wait [120,140)
  // is entirely after the issuer's crash, so all 20 seconds are takeover
  // gap (not election_wait, though the lease was also vacant).
  EXPECT_EQ(Stage(path, TraceStage::kResultTransit), 4);
  EXPECT_EQ(Stage(path, TraceStage::kTakeoverGap), 20);
  EXPECT_EQ(Stage(path, TraceStage::kElectionWait), 0);
  ExpectExact(path);
}

TEST(CriticalPathTest, UncuredPathsAreReportedButNotPublished) {
  const TraceId id = MakeTraceId(11, 7, 1);
  const auto paths = AnalyzeCriticalPaths({
      Rec(id, 100, TraceEventKind::kIncident, 7),
      Rec(id, 110, TraceEventKind::kSymptom, 7),
  });
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_FALSE(paths[0].cured);
  EXPECT_EQ(paths[0].end, 110);
  obs::MetricsRegistry registry;
  PublishCriticalPathMetrics(registry, paths);
  // Histograms are registered unconditionally (frozen catalog), but an
  // uncured path contributes no observation.
  EXPECT_EQ(registry.GetHistogram("aer_trace_end_to_end_seconds").Snapshot().total_count(), 0);
}

TEST(CriticalPathTest, PublishObservesCuredPathsPerStage) {
  const TraceId id = MakeTraceId(11, 3, 1);
  TraceRecord elected = Rec(kNoTrace, 0, TraceEventKind::kLeaderElected, -1);
  elected.node = 0;
  const auto paths = AnalyzeCriticalPaths({
      elected,
      Rec(id, 100, TraceEventKind::kIncident, 3),
      Rec(id, 102, TraceEventKind::kSymptom, 3),
      Rec(id, 105, TraceEventKind::kDispatch, 3, 0, 0),
      Rec(id, 106, TraceEventKind::kActionStart, 3, 0),
      Rec(id, 116, TraceEventKind::kActionDone, 3, 0),
      Rec(id, 116, TraceEventKind::kCure, 3),
  });
  obs::MetricsRegistry registry;
  PublishCriticalPathMetrics(registry, paths);
  EXPECT_EQ(registry.GetHistogram("aer_trace_end_to_end_seconds").Snapshot().total_count(), 1);
  EXPECT_EQ(registry.GetHistogram("aer_trace_stage_detect_seconds").Snapshot().total_count(),
            1);
  EXPECT_EQ(
      registry.GetHistogram("aer_trace_stage_action_exec_seconds").Snapshot().total_count(), 1);
  // Stages absent from the path get no observation.
  EXPECT_EQ(
      registry.GetHistogram("aer_trace_stage_takeover_gap_seconds").Snapshot().total_count(),
      0);
  // The text rendering is deterministic and carries the exact totals.
  const std::string text = FormatCriticalPaths(paths);
  EXPECT_EQ(text, FormatCriticalPaths(paths));
  EXPECT_NE(text.find("total=16"), std::string::npos);
  EXPECT_NE(text.find("action_exec=10"), std::string::npos);
}

}  // namespace
}  // namespace aer::obs
