// Training-telemetry contract: collecting telemetry never perturbs the
// trained policy (observation only — no extra RNG draws), and the published
// aer_training_* snapshot is byte-identical whether the sweeps ran serially
// or on a ParallelTrainer at any thread count (shards merge in catalog
// order, docs/OBSERVABILITY.md).
#include "rl/telemetry.h"

#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "rl/parallel_trainer.h"
#include "rl/qlearning.h"
#include "rl/selection_tree.h"

namespace aer {
namespace {

constexpr auto Y = RepairAction::kTryNop;
constexpr auto B = RepairAction::kReboot;
constexpr auto I = RepairAction::kReimage;

RecoveryProcess MakeProcess(
    std::vector<std::pair<RepairAction, SimTime>> attempts_with_costs,
    SymptomId symptom, MachineId machine, SimTime start) {
  std::vector<SymptomEvent> symptoms = {{start, symptom}};
  std::vector<ActionAttempt> attempts;
  SimTime t = start + 50;
  for (const auto& [action, cost] : attempts_with_costs) {
    attempts.push_back({action, t, cost, false});
    t += cost;
  }
  attempts.back().cured = true;
  return RecoveryProcess(machine, std::move(symptoms), std::move(attempts),
                         t);
}

struct Fixture {
  SymptomTable symptoms;
  std::vector<RecoveryProcess> processes;
  ErrorTypeCatalog catalog;
  SimulationPlatform platform;

  static std::vector<RecoveryProcess> Build() {
    std::vector<RecoveryProcess> out;
    SimTime start = 0;
    MachineId m = 0;
    for (int i = 0; i < 40; ++i) {
      out.push_back(MakeProcess({{Y, 900}, {B, 2400}}, 0, m++, start));
      start += 10;
    }
    for (int i = 0; i < 30; ++i) {
      out.push_back(MakeProcess({{Y, 900}}, 1, m++, start));
      start += 10;
    }
    for (int i = 0; i < 20; ++i) {
      out.push_back(MakeProcess({{B, 2400}, {I, 9000}}, 2, m++, start));
      start += 10;
    }
    return out;
  }

  Fixture()
      : processes(Build()),
        catalog(processes, 30),
        platform(processes, catalog, symptoms, 20) {
    symptoms.Intern("stuck");
    symptoms.Intern("transient");
    symptoms.Intern("disk");
  }
};

TrainerConfig ConfigWithSeed(std::uint64_t seed, bool telemetry) {
  TrainerConfig config;
  config.max_sweeps = 2000;
  config.min_sweeps = 500;
  config.check_every = 100;
  config.stable_checks = 5;
  config.seed = seed;
  config.collect_telemetry = telemetry;
  return config;
}

std::string Serialize(const TrainedPolicy& policy) {
  std::ostringstream os;
  policy.Write(os);
  return os.str();
}

std::string DeterministicSnapshot(
    const std::vector<TypeTrainingResult>& per_type) {
  obs::MetricsRegistry registry;
  PublishTrainingTelemetry(registry, per_type);
  obs::MetricsRegistry::ExportOptions options;
  options.include_volatile = false;
  return registry.ExportText(options);
}

TEST(TrainingTelemetryTest, CollectionDoesNotPerturbThePolicy) {
  const Fixture fx;
  for (const std::uint64_t seed : {1, 2, 3}) {
    const QLearningTrainer plain(fx.platform, fx.processes,
                                 ConfigWithSeed(seed, false));
    const QLearningTrainer observed(fx.platform, fx.processes,
                                    ConfigWithSeed(seed, true));
    const auto plain_output = plain.TrainAll();
    const auto observed_output = observed.TrainAll();
    EXPECT_EQ(Serialize(observed_output.policy),
              Serialize(plain_output.policy))
        << "seed " << seed << ": telemetry collection changed the policy";
    // Off means off: no telemetry accumulates without the flag.
    for (const TypeTrainingResult& r : plain_output.per_type) {
      EXPECT_EQ(r.telemetry.q_updates, 0);
      EXPECT_EQ(r.telemetry.temperature.count(), 0);
    }
  }
}

TEST(TrainingTelemetryTest, TelemetryIsPopulatedAndSane) {
  const Fixture fx;
  const QLearningTrainer trainer(fx.platform, fx.processes,
                                 ConfigWithSeed(5, true));
  const auto output = trainer.TrainAll();
  ASSERT_FALSE(output.per_type.empty());
  for (const TypeTrainingResult& r : output.per_type) {
    const TypeTelemetry& t = r.telemetry;
    EXPECT_GT(t.q_updates, 0) << "type " << r.type;
    EXPECT_EQ(t.temperature.count(), r.episodes) << "type " << r.type;
    EXPECT_EQ(t.max_q_delta.count(), r.episodes) << "type " << r.type;
    // Temperature anneals downward across sweeps.
    EXPECT_GT(t.temperature.max(), t.temperature.min()) << "type " << r.type;
    EXPECT_GT(t.visited_state_actions, 0) << "type " << r.type;
    EXPECT_GE(t.explorable_state_actions, t.visited_state_actions)
        << "type " << r.type;
    EXPECT_GT(t.visit_coverage, 0.0) << "type " << r.type;
    EXPECT_LE(t.visit_coverage, 1.0) << "type " << r.type;
  }
}

TEST(TrainingTelemetryTest, ParallelSnapshotsByteIdenticalToSerial) {
  const Fixture fx;
  for (const std::uint64_t seed : {1, 4}) {
    const QLearningTrainer trainer(fx.platform, fx.processes,
                                   ConfigWithSeed(seed, true));
    const std::string serial = DeterministicSnapshot(
        trainer.TrainAll().per_type);
    EXPECT_FALSE(serial.empty());
    for (const int threads : {1, 2, 8}) {
      ThreadPool pool(threads);
      const ParallelTrainer parallel(trainer, pool);
      EXPECT_EQ(DeterministicSnapshot(parallel.TrainAll().per_type), serial)
          << "seed " << seed << ", " << threads
          << " threads: published telemetry diverged from serial";
    }
  }
}

TEST(TrainingTelemetryTest, TreeTrainerTelemetryDeterministicAcrossThreads) {
  const Fixture fx;
  const QLearningTrainer base(fx.platform, fx.processes,
                              ConfigWithSeed(9, true));
  const SelectionTreeTrainer tree(base, SelectionTreeConfig{});
  const std::string serial = DeterministicSnapshot(tree.TrainAll().per_type);
  for (const int threads : {2, 8}) {
    ThreadPool pool(threads);
    const ParallelTrainer parallel(tree, pool);
    EXPECT_EQ(DeterministicSnapshot(parallel.TrainAll().per_type), serial)
        << threads << " threads";
  }
}

// bench_training publishes type by type (so a TimeSeriesRecorder window can
// sit between types); the registry must come out byte-identical to the
// one-shot full-vector call.
TEST(TrainingTelemetryTest, IncrementalPublicationMatchesOneShot) {
  const Fixture fx;
  const QLearningTrainer trainer(fx.platform, fx.processes,
                                 ConfigWithSeed(7, true));
  const auto output = trainer.TrainAll();
  ASSERT_FALSE(output.per_type.empty());

  obs::MetricsRegistry one_shot;
  PublishTrainingTelemetry(one_shot, output.per_type);
  obs::MetricsRegistry incremental;
  for (const TypeTrainingResult& result : output.per_type) {
    PublishTypeTelemetry(incremental, result);
  }
  PublishTrainingSummary(incremental, output.per_type);

  obs::MetricsRegistry::ExportOptions options;
  options.include_volatile = false;
  EXPECT_EQ(incremental.ExportText(options), one_shot.ExportText(options));
}

TEST(TrainingTelemetryTest, ThroughputGaugeIsVolatile) {
  obs::MetricsRegistry registry;
  PublishTrainingThroughput(registry, 1234.5);
  obs::MetricsRegistry::ExportOptions deterministic;
  deterministic.include_volatile = false;
  EXPECT_EQ(registry.ExportText(deterministic), "");
  EXPECT_NE(registry.ExportText().find("aer_training_episodes_per_sec"),
            std::string::npos);
}

}  // namespace
}  // namespace aer
