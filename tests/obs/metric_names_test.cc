// Frozen metric-name contract (docs/OBSERVABILITY.md). Every aer_* metric a
// component can register is enumerated here; adding, renaming, or removing
// one must update both this list and the catalog in the doc. Like the
// DeriveStream contract, names are API: dashboards, baselines, and
// run_all.py --compare key on them.
#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/cluster_sim.h"
#include "cluster/fault_catalog.h"
#include "cluster/trace.h"
#include "cluster/user_policy.h"
#include "core/guarded_policy.h"
#include "core/recovery_manager.h"
#include "ctrl/harness.h"
#include "inject/harness.h"
#include "inject/net_perturber.h"
#include "fleet/fleet_sim.h"
#include "mining/error_type.h"
#include "obs/critical_path.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "obs/trace_collector.h"
#include "rl/telemetry.h"
#include "sim/platform.h"

namespace aer {
namespace {

std::vector<std::string> Sorted(std::vector<std::string> names) {
  std::sort(names.begin(), names.end());
  return names;
}

TEST(MetricNamesTest, RecoveryManagerRegistersFrozenSet) {
  obs::MetricsRegistry registry;
  UserDefinedPolicy policy;
  RecoveryManager manager(policy);
  manager.SetObservers(nullptr, &registry);
  const std::vector<std::string> expected = {
      "aer_recovery_actions_per_process",
      "aer_recovery_actions_total",
      "aer_recovery_downtime_seconds",
      "aer_recovery_duplicate_requests_total",
      "aer_recovery_duplicate_symptoms_total",
      "aer_recovery_flap_quarantines_total",
      "aer_recovery_history_evictions_total",
      "aer_recovery_manual_forced_total",
      "aer_recovery_out_of_order_total",
      "aer_recovery_processes_adopted_total",
      "aer_recovery_processes_total",
      "aer_recovery_stale_results_total",
      "aer_recovery_timeouts_total",
  };
  EXPECT_EQ(Sorted(registry.Names()), expected);
}

TEST(MetricNamesTest, GuardedPolicyRegistersFrozenSet) {
  obs::MetricsRegistry registry;
  UserDefinedPolicy primary;
  UserDefinedPolicy fallback;
  GuardedPolicy guard(primary, fallback);
  guard.SetObservers(nullptr, &registry);
  const std::vector<std::string> expected = {
      "aer_guard_breaker_open",
      "aer_guard_breaker_trips_total",
      "aer_guard_fallback_decisions_total",
      "aer_guard_faults_absorbed_total",
      "aer_guard_invalid_actions_total",
      "aer_guard_primary_decisions_total",
  };
  EXPECT_EQ(Sorted(registry.Names()), expected);
}

TEST(MetricNamesTest, InjectionHarnessRegistersFrozenSet) {
  obs::MetricsRegistry registry;
  UserDefinedPolicy policy;
  InjectionHarness harness(policy, RecoveryManagerConfig{}, HarnessConfig{});
  harness.SetObservers(nullptr, &registry);
  // The harness forwards to its internal RecoveryManager, so its set is the
  // aer_inject_* names plus the manager's.
  const std::vector<std::string> expected_inject = {
      "aer_inject_cures_total",
      "aer_inject_events_delayed_total",
      "aer_inject_events_dropped_total",
      "aer_inject_events_duplicated_total",
      "aer_inject_false_successes_total",
      "aer_inject_hangs_total",
      "aer_inject_incidents_total",
      "aer_inject_reorder_depth",
  };
  std::vector<std::string> inject_names;
  for (const std::string& name : registry.Names()) {
    if (name.rfind("aer_inject_", 0) == 0) inject_names.push_back(name);
    else EXPECT_EQ(name.rfind("aer_recovery_", 0), 0u) << name;
  }
  EXPECT_EQ(Sorted(inject_names), expected_inject);
  EXPECT_EQ(registry.size(), expected_inject.size() + 13);
}

TEST(MetricNamesTest, ControlPlaneHarnessRegistersFrozenSet) {
  obs::MetricsRegistry registry;
  UserDefinedPolicy policy;
  ctrl::ControlPlaneHarness harness(policy, RecoveryManagerConfig{},
                                    ctrl::ControlHarnessConfig{},
                                    NetFaultScript{});
  harness.SetObservers(nullptr, &registry);
  // The full ctrl stack: coordinators (+ their gating service and embedded
  // recovery manager), the net perturber, and the harness's fence metric.
  const std::vector<std::string> expected_ctrl = {
      "aer_ctrl_actions_gated_total",
      "aer_ctrl_current_epoch",
      "aer_ctrl_elections_started_total",
      "aer_ctrl_heartbeats_sent_total",
      "aer_ctrl_lease_renewals_total",
      "aer_ctrl_leases_acquired_total",
      "aer_ctrl_members_evicted_total",
      "aer_ctrl_members_suspected_total",
      "aer_ctrl_processes_adopted_total",
      "aer_ctrl_snapshots_installed_total",
      "aer_ctrl_stale_actions_rejected_total",
      "aer_ctrl_stale_results_dropped_total",
      "aer_ctrl_stepdowns_total",
      "aer_ctrl_takeovers_total",
      "aer_ctrl_votes_granted_total",
  };
  const std::vector<std::string> expected_net = {
      "aer_inject_coordinator_crashes_total",
      "aer_inject_coordinator_restarts_total",
      "aer_inject_net_msgs_delayed_total",
      "aer_inject_net_msgs_dropped_total",
      "aer_inject_net_msgs_duplicated_total",
      "aer_inject_net_partition_drops_total",
      "aer_inject_partitions_healed_total",
      "aer_inject_partitions_started_total",
  };
  std::vector<std::string> ctrl_names;
  std::vector<std::string> net_names;
  for (const std::string& name : registry.Names()) {
    if (name.rfind("aer_ctrl_", 0) == 0) ctrl_names.push_back(name);
    else if (name.rfind("aer_inject_", 0) == 0) net_names.push_back(name);
    else EXPECT_EQ(name.rfind("aer_recovery_", 0), 0u) << name;
  }
  EXPECT_EQ(Sorted(ctrl_names), expected_ctrl);
  EXPECT_EQ(Sorted(net_names), expected_net);
  EXPECT_EQ(registry.size(),
            expected_ctrl.size() + expected_net.size() + 13);
}

TEST(MetricNamesTest, SimulationPlatformRegistersFrozenSet) {
  TraceConfig config = TraceConfigForScale("small");
  config.sim.num_machines = 50;
  config.sim.duration = 20 * kDay;
  const TraceDataset dataset = GenerateTrace(config);
  const std::vector<RecoveryProcess> processes =
      SegmentIntoProcesses(dataset.result.log).processes;
  const ErrorTypeCatalog catalog(processes, 40);
  SimulationPlatform platform(processes, catalog,
                              dataset.result.log.symptoms());
  obs::MetricsRegistry registry;
  platform.SetMetrics(&registry);
  const std::vector<std::string> expected = {
      "aer_replay_cost_seconds",
      "aer_replay_forced_manual_total",
      "aer_replay_total",
  };
  EXPECT_EQ(Sorted(registry.Names()), expected);
}

TEST(MetricNamesTest, ClusterSimulatorRegistersFrozenSet) {
  ClusterSimConfig config;
  config.num_machines = 20;
  config.duration = 5 * kDay;
  config.machine_mtbf_days = 5.0;
  config.seed = 3;
  obs::MetricsRegistry registry;
  UserDefinedPolicy policy;
  ClusterSimulator sim(config, MakeDefaultCatalog());
  sim.SetMetrics(&registry);
  sim.Run(policy);
  const std::vector<std::string> expected = {
      "aer_sim_downtime_seconds_total",
      "aer_sim_faults_skipped_total",
      "aer_sim_processes_total",
  };
  EXPECT_EQ(Sorted(registry.Names()), expected);
}

TEST(MetricNamesTest, FleetSimulatorRegistersFrozenSet) {
  fleet::FleetSimConfig config;
  config.sim.num_machines = 50;
  config.sim.duration = 5 * kDay;
  config.sim.machine_mtbf_days = 5.0;
  config.sim.seed = 3;
  obs::MetricsRegistry registry;
  UserDefinedPolicy policy;
  fleet::FleetSimulator sim(config, MakeDefaultCatalog());
  sim.SetMetrics(&registry);
  sim.Run(policy);
  const std::vector<std::string> expected = {
      "aer_fleet_arrivals_skipped_total",
      "aer_fleet_arrivals_total",
      "aer_fleet_downtime_seconds_total",
      "aer_fleet_events_total",
      "aer_fleet_machines",
      "aer_fleet_processes_total",
      "aer_fleet_shards",
      "aer_fleet_wheel_peak_events",
  };
  EXPECT_EQ(Sorted(registry.Names()), expected);
}

TEST(MetricNamesTest, TrainingTelemetryRegistersFrozenSet) {
  obs::MetricsRegistry registry;
  PublishTrainingTelemetry(registry, {});
  PublishTrainingThroughput(registry, 100.0);
  const std::vector<std::string> expected = {
      "aer_training_episodes_per_sec",
      "aer_training_episodes_total",
      "aer_training_max_q_delta",
      "aer_training_q_updates_total",
      "aer_training_sweeps",
      "aer_training_temperature",
      "aer_training_types",
      "aer_training_types_converged",
      "aer_training_visit_coverage",
  };
  EXPECT_EQ(Sorted(registry.Names()), expected);
}

TEST(MetricNamesTest, TimeSeriesRecorderRegistersFrozenSet) {
  obs::MetricsRegistry registry;
  obs::TimeSeriesRecorder recorder(registry, {.window_width = 100});
  const std::vector<std::string> expected = {
      "aer_ts_windows_dropped_total",
      "aer_ts_windows_total",
  };
  EXPECT_EQ(Sorted(registry.Names()), expected);
}

TEST(MetricNamesTest, TraceCollectorRegistersFrozenSet) {
  obs::MetricsRegistry registry;
  obs::TraceCollector collector;
  collector.SetMetrics(&registry);
  const std::vector<std::string> expected = {
      "aer_trace_dropped_total",
      "aer_trace_sampled_total",
  };
  EXPECT_EQ(Sorted(registry.Names()), expected);
}

TEST(MetricNamesTest, CriticalPathPublisherRegistersFrozenSet) {
  obs::MetricsRegistry registry;
  obs::PublishCriticalPathMetrics(registry, {});
  const std::vector<std::string> expected = {
      "aer_trace_end_to_end_seconds",
      "aer_trace_stage_action_exec_seconds",
      "aer_trace_stage_detect_seconds",
      "aer_trace_stage_dispatch_queue_seconds",
      "aer_trace_stage_dispatch_transit_seconds",
      "aer_trace_stage_election_wait_seconds",
      "aer_trace_stage_fence_admit_seconds",
      "aer_trace_stage_result_transit_seconds",
      "aer_trace_stage_takeover_gap_seconds",
      "aer_trace_stage_timeout_wait_seconds",
  };
  EXPECT_EQ(Sorted(registry.Names()), expected);
}

TEST(MetricNamesTest, AllFrozenNamesAreValid) {
  obs::MetricsRegistry registry;
  UserDefinedPolicy primary;
  UserDefinedPolicy fallback;
  GuardedPolicy guard(primary, fallback);
  guard.SetObservers(nullptr, &registry);
  InjectionHarness harness(guard, RecoveryManagerConfig{}, HarnessConfig{});
  harness.SetObservers(nullptr, &registry);
  ctrl::ControlPlaneHarness ctrl_harness(fallback, RecoveryManagerConfig{},
                                         ctrl::ControlHarnessConfig{},
                                         NetFaultScript{});
  ctrl_harness.SetObservers(nullptr, &registry);
  PublishTrainingTelemetry(registry, {});
  obs::TraceCollector collector;
  collector.SetMetrics(&registry);
  obs::PublishCriticalPathMetrics(registry, {});
  for (const std::string& name : registry.Names()) {
    EXPECT_TRUE(obs::IsValidMetricName(name)) << name;
    EXPECT_EQ(name.rfind("aer_", 0), 0u) << name;
  }
}

}  // namespace
}  // namespace aer
