// TSan-facing stress test: MetricsRegistry::MergeFrom (now Snapshot-based)
// racing concurrent counter/histogram/stat/gauge mutation on the source
// registry. The obs label routes this binary through the tsan CI leg, which
// is where the locking discipline is actually verified; the assertions here
// pin the quiescent-state arithmetic.
#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace aer::obs {
namespace {

TEST(MetricsMergeRaceTest, MergeFromRacesConcurrentMutation) {
  MetricsRegistry shard;
  MetricsRegistry target;
  // Pre-register so the mutators race MergeFrom's snapshots, not creation.
  shard.GetCounter("aer_race_total");
  shard.GetGauge("aer_race_level");
  shard.GetHistogram("aer_race_seconds");
  shard.GetStat("aer_race_cost");

  constexpr int kMutators = 3;
  constexpr int kIters = 2000;
  std::atomic<bool> start{false};
  std::vector<std::thread> mutators;
  for (int t = 0; t < kMutators; ++t) {
    mutators.emplace_back([&shard, &start]() {
      while (!start.load(std::memory_order_acquire)) {
      }
      for (int i = 0; i < kIters; ++i) {
        shard.GetCounter("aer_race_total").Inc();
        shard.GetGauge("aer_race_level").Set(static_cast<double>(i));
        shard.GetHistogram("aer_race_seconds").Observe(100.0 + i);
        shard.GetStat("aer_race_cost").Observe(1.0);
      }
    });
  }

  start.store(true, std::memory_order_release);
  // Merge repeatedly while the mutators hammer the shard. Each merge folds
  // a consistent-per-metric snapshot into `target`; the interesting part is
  // that TSan sees no unsynchronized access between the two sides.
  for (int i = 0; i < 50; ++i) target.MergeFrom(shard);
  for (std::thread& t : mutators) t.join();

  // Quiescent check: a merge into a fresh registry now reproduces the
  // shard's final totals exactly.
  MetricsRegistry final_target;
  final_target.MergeFrom(shard);
  EXPECT_EQ(final_target.GetCounter("aer_race_total").value(),
            kMutators * kIters);
  EXPECT_EQ(final_target.GetHistogram("aer_race_seconds")
                .Snapshot()
                .total_count(),
            kMutators * kIters);
  EXPECT_EQ(final_target.GetStat("aer_race_cost").Snapshot().count(),
            kMutators * kIters);
  // And the racing merges only ever accumulated, never corrupted: the
  // racing target's counter is between 0 and 50 full shard totals.
  const std::int64_t racing = target.GetCounter("aer_race_total").value();
  EXPECT_GE(racing, 0);
  EXPECT_LE(racing, 50LL * kMutators * kIters);
}

TEST(MetricsMergeRaceTest, SnapshotRacesConcurrentMutation) {
  MetricsRegistry registry;
  registry.GetCounter("aer_race_total");
  registry.GetHistogram("aer_race_seconds");
  std::atomic<bool> stop{false};
  std::thread mutator([&registry, &stop]() {
    while (!stop.load(std::memory_order_acquire)) {
      registry.GetCounter("aer_race_total").Inc();
      registry.GetHistogram("aer_race_seconds").Observe(120.0);
    }
  });
  for (int i = 0; i < 200; ++i) {
    const MetricsSnapshot snapshot = registry.Snapshot();
    ASSERT_EQ(snapshot.counters.size(), 1u);
    ASSERT_EQ(snapshot.histograms.size(), 1u);
    EXPECT_GE(snapshot.counters[0].value, 0);
  }
  stop.store(true, std::memory_order_release);
  mutator.join();
}

}  // namespace
}  // namespace aer::obs
