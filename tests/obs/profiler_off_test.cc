// Proof that the compiled-out profiler really is zero-cost: this TU defines
// AER_PROFILING_DISABLED before including profiler.h — the same state every
// TU has in a -DAER_PROFILING=OFF build — and shows the macro vanishes.
#define AER_PROFILING_DISABLED
#include "common/profiler.h"

#include <cstdint>

#include <gtest/gtest.h>

namespace aer {
namespace {

static_assert(AER_PROFILING_IS_ON() == 0,
              "AER_PROFILING_DISABLED must turn the per-TU switch off");

// The macro must expand to *nothing*, not to a disabled object: inside a
// constexpr function any ProfileScope construction would be ill-formed, so
// this compiles only when the expansion is empty.
constexpr int ExpandsToNothing() {
  AER_PROFILE_SCOPE("compiled_out");
  return 1;
}
static_assert(ExpandsToNothing() == 1,
              "AER_PROFILE_SCOPE must compile out under "
              "AER_PROFILING_DISABLED");

TEST(ProfilerOffTest, DisabledScopesRecordNothing) {
  ProfileRegistry::Global().Reset();
  const std::int64_t before = ProfileRegistry::Global().TotalCalls();
  for (int i = 0; i < 1000; ++i) {
    AER_PROFILE_SCOPE("off_path");
  }
  EXPECT_EQ(ProfileRegistry::Global().TotalCalls(), before);
}

TEST(ProfilerOffTest, RegistryApiStaysUsableWhenDisabled) {
  // Explicit ProfileScope objects (not the macro) still work, so tools that
  // format profiles keep functioning in OFF builds — they just see only
  // what was recorded explicitly.
  ProfileRegistry::Global().Reset();
  {
    ProfileScope scope("explicit");
  }
  const auto entries = ProfileRegistry::Global().Snapshot();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].path, "explicit");
}

}  // namespace
}  // namespace aer
