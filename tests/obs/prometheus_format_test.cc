// Prometheus text exposition coverage: a byte-exact golden for a small
// registry, plus a property test that every exported sample line — registry
// and time-series exports alike — round-trips through a minimal parser
// (name, labels, value). The parser is deliberately strict: anything it
// rejects would also confuse a real scraper.
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/timeseries.h"

namespace aer::obs {
namespace {

struct ParsedLine {
  std::string name;
  std::vector<std::pair<std::string, std::string>> labels;
  std::string value;
};

// Parses `name{key="value",...} number` (labels optional). Label values are
// unescaped per the exposition format (`\\`, `\"`, `\n`); any other escape
// sequence, or a raw quote/newline inside a value, is a parse failure.
// Returns false on any deviation from that shape.
bool ParseExpositionLine(const std::string& line, ParsedLine& out) {
  out = ParsedLine{};
  std::size_t i = 0;
  while (i < line.size() &&
         ((line[i] >= 'a' && line[i] <= 'z') ||
          (line[i] >= '0' && line[i] <= '9') || line[i] == '_')) {
    ++i;
  }
  if (i == 0) return false;
  out.name = line.substr(0, i);
  if (i < line.size() && line[i] == '{') {
    ++i;
    while (i < line.size() && line[i] != '}') {
      std::size_t eq = line.find('=', i);
      if (eq == std::string::npos || eq + 1 >= line.size() ||
          line[eq + 1] != '"') {
        return false;
      }
      const std::string key = line.substr(i, eq - i);
      std::string value;
      std::size_t j = eq + 2;
      while (j < line.size() && line[j] != '"') {
        if (line[j] == '\\') {
          if (j + 1 >= line.size()) return false;
          switch (line[j + 1]) {
            case '\\': value += '\\'; break;
            case '"': value += '"'; break;
            case 'n': value += '\n'; break;
            default: return false;
          }
          j += 2;
        } else {
          value += line[j];
          ++j;
        }
      }
      if (j >= line.size()) return false;  // unterminated value
      out.labels.emplace_back(key, std::move(value));
      i = j + 1;
      if (i < line.size() && line[i] == ',') ++i;
    }
    if (i >= line.size() || line[i] != '}') return false;
    ++i;
  }
  if (i >= line.size() || line[i] != ' ') return false;
  out.value = line.substr(i + 1);
  if (out.value.empty()) return false;
  char* end = nullptr;
  std::strtod(out.value.c_str(), &end);
  return end != nullptr && *end == '\0';
}

// Re-renders a parse result, re-escaping label values; used to prove
// parsing is lossless.
std::string Render(const ParsedLine& parsed) {
  std::string out = parsed.name;
  if (!parsed.labels.empty()) {
    out += "{";
    for (std::size_t i = 0; i < parsed.labels.size(); ++i) {
      if (i > 0) out += ",";
      out += parsed.labels[i].first + "=\"" +
             EscapeLabelValue(parsed.labels[i].second) + "\"";
    }
    out += "}";
  }
  return out + " " + parsed.value;
}

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    lines.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return lines;
}

TEST(PrometheusFormatTest, GoldenExposition) {
  MetricsRegistry registry;
  registry.GetCounter("aer_golden_total").Inc(3);
  registry.GetGauge("aer_golden_ratio").Set(2.5);
  Histogram& h = registry.GetHistogram("aer_golden_seconds", 10.0, 10.0, 3);
  h.Observe(5.0);
  h.Observe(50.0);
  StatMetric& s = registry.GetStat("aer_golden_wait");
  s.Observe(1.0);
  s.Observe(3.0);

  EXPECT_EQ(registry.ExportText(),
            "# TYPE aer_golden_ratio gauge\n"
            "aer_golden_ratio 2.5\n"
            "# TYPE aer_golden_seconds histogram\n"
            "aer_golden_seconds_bucket{le=\"10\"} 1\n"
            "aer_golden_seconds_bucket{le=\"100\"} 2\n"
            "aer_golden_seconds_bucket{le=\"+Inf\"} 2\n"
            "aer_golden_seconds_count 2\n"
            "# TYPE aer_golden_total counter\n"
            "aer_golden_total 3\n"
            "# TYPE aer_golden_wait summary\n"
            "aer_golden_wait_count 2\n"
            "aer_golden_wait_sum 4\n"
            "aer_golden_wait_min 1\n"
            "aer_golden_wait_max 3\n"
            "aer_golden_wait_mean 2\n");
}

TEST(PrometheusFormatTest, EveryRegistryLineRoundTrips) {
  MetricsRegistry registry;
  registry.GetCounter("aer_prop_total").Inc(123456789);
  registry.GetGauge("aer_prop_ratio").Set(0.1);  // 17-digit decimal
  registry.GetGauge("aer_prop_negative").Set(-1234.5);
  registry.GetGauge("aer_prop_tiny").Set(4.2e-17);
  Histogram& h = registry.GetHistogram("aer_prop_seconds");
  for (int i = 0; i < 40; ++i) h.Observe(30.0 * (i + 1));
  StatMetric& s = registry.GetStat("aer_prop_cost");
  s.Observe(3.25);
  s.Observe(-7.5);

  int samples = 0;
  for (const std::string& line : SplitLines(registry.ExportText())) {
    if (line.empty() || line[0] == '#') continue;
    ParsedLine parsed;
    ASSERT_TRUE(ParseExpositionLine(line, parsed)) << line;
    EXPECT_EQ(Render(parsed), line);
    EXPECT_EQ(parsed.name.rfind("aer_prop_", 0), 0u) << line;
    for (const auto& [key, value] : parsed.labels) {
      EXPECT_EQ(key, "le");
      EXPECT_FALSE(value.empty());
    }
    ++samples;
  }
  EXPECT_GE(samples, 8);
}

TEST(PrometheusFormatTest, EveryTimeSeriesLineRoundTrips) {
  MetricsRegistry registry;
  TimeSeriesRecorder recorder(registry, {.window_width = 50});
  for (int i = 1; i <= 3; ++i) {
    registry.GetCounter("aer_prop_total").Inc(i);
    registry.GetGauge("aer_prop_level").Set(0.3 * i);
    registry.GetStat("aer_prop_cost").Observe(2.0 * i);
    recorder.AdvanceTo(50 * i);
  }

  int samples = 0;
  for (const std::string& line : SplitLines(recorder.ExportText())) {
    if (line.empty() || line[0] == '#') continue;
    ParsedLine parsed;
    ASSERT_TRUE(ParseExpositionLine(line, parsed)) << line;
    EXPECT_EQ(Render(parsed), line);
    ASSERT_EQ(parsed.labels.size(), 3u) << line;
    EXPECT_EQ(parsed.labels[0].first, "window");
    EXPECT_EQ(parsed.labels[1].first, "start");
    EXPECT_EQ(parsed.labels[2].first, "end");
    ++samples;
  }
  EXPECT_GE(samples, 9);
}

// Static labels carrying every byte the exposition format must escape —
// quotes, backslashes, newlines, and adversarial combinations like a value
// ending in a lone backslash — survive a byte round-trip: the exporter
// escapes them, the parser recovers the original bytes, and re-escaping
// reproduces the exported line exactly.
TEST(PrometheusFormatTest, HostileLabelValuesRoundTrip) {
  const std::vector<std::pair<std::string, std::string>> hostile = {
      {"job", "say \"hi\""},
      {"path", "C:\\temp\\x"},
      {"note", "line1\nline2"},
      {"tail", "ends with \\"},
      {"mix", "\\\"\n\\\\\""},
      {"brace", "a{b}=c,d"},
  };
  MetricsRegistry registry;
  TimeSeriesRecorder recorder(registry, {.window_width = 50,
                                         .labels = hostile});
  for (int i = 1; i <= 2; ++i) {
    registry.GetCounter("aer_hostile_total").Inc(i);
    registry.GetGauge("aer_hostile_level").Set(1.5 * i);
    recorder.AdvanceTo(50 * i);
  }

  int samples = 0;
  for (const std::string& line : SplitLines(recorder.ExportText())) {
    if (line.empty() || line[0] == '#') continue;
    // The raw line must never leak an unescaped quote or newline: exactly
    // the delimiting quotes remain unescaped.
    ASSERT_EQ(line.find('\n'), std::string::npos) << line;
    ParsedLine parsed;
    ASSERT_TRUE(ParseExpositionLine(line, parsed)) << line;
    EXPECT_EQ(Render(parsed), line);
    ASSERT_EQ(parsed.labels.size(), hostile.size() + 3) << line;
    // The parser recovered the original (unescaped) bytes.
    for (std::size_t i = 0; i < hostile.size(); ++i) {
      EXPECT_EQ(parsed.labels[i].first, hostile[i].first);
      EXPECT_EQ(parsed.labels[i].second, hostile[i].second);
    }
    ++samples;
  }
  EXPECT_GE(samples, 4);
}

TEST(PrometheusFormatTest, ParserRejectsMalformedLines) {
  ParsedLine parsed;
  EXPECT_FALSE(ParseExpositionLine("", parsed));
  EXPECT_FALSE(ParseExpositionLine("no_value", parsed));
  EXPECT_FALSE(ParseExpositionLine("name{unclosed=\"x\" 1", parsed));
  EXPECT_FALSE(ParseExpositionLine("name{noquote=x} 1", parsed));
  EXPECT_FALSE(ParseExpositionLine("name notanumber", parsed));
  EXPECT_FALSE(ParseExpositionLine("Name 1", parsed));
  EXPECT_FALSE(ParseExpositionLine("name{bad=\"\\t\"} 1", parsed));
  EXPECT_FALSE(ParseExpositionLine("name{cut=\"x\\", parsed));
}

}  // namespace
}  // namespace aer::obs
