// Tracer unit tests: span lifecycle, the bounded completed-span ring,
// no-op behavior for unknown ids, and the pure snapshot helpers.
#include "obs/tracer.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace aer::obs {
namespace {

TEST(TracerTest, SpanLifecycle) {
  Tracer tracer;
  const SpanId id = tracer.StartSpan("recovery", 100);
  EXPECT_EQ(id, 1);
  EXPECT_EQ(tracer.open_count(), 1u);
  tracer.SetLabel(id, "Watchdog");
  tracer.SetMachine(id, 3);
  tracer.AddEvent(id, 150, "action_issued");
  tracer.EndSpan(id, 200);
  EXPECT_EQ(tracer.open_count(), 0u);
  EXPECT_EQ(tracer.completed_count(), 1);

  const std::vector<Span> spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].id, 1);
  EXPECT_EQ(spans[0].parent, kNoSpan);
  EXPECT_EQ(spans[0].name, "recovery");
  EXPECT_EQ(spans[0].label, "Watchdog");
  EXPECT_EQ(spans[0].machine, 3);
  EXPECT_EQ(spans[0].start, 100);
  EXPECT_EQ(spans[0].end, 200);
  EXPECT_EQ(spans[0].duration(), 100);
  ASSERT_EQ(spans[0].events.size(), 1u);
  EXPECT_EQ(spans[0].events[0].time, 150);
  EXPECT_EQ(spans[0].events[0].label, "action_issued");
}

TEST(TracerTest, SequentialIdsAndParentLinks) {
  Tracer tracer;
  const SpanId process = tracer.StartSpan("recovery", 0);
  const SpanId action = tracer.StartSpan("action:REBOOT", 10, process);
  EXPECT_EQ(process, 1);
  EXPECT_EQ(action, 2);
  tracer.EndSpan(action, 20);
  tracer.EndSpan(process, 30);
  const std::vector<Span> spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  // Ring order is completion order: the action closed first.
  EXPECT_EQ(spans[0].name, "action:REBOOT");
  EXPECT_EQ(spans[0].parent, process);
  EXPECT_EQ(spans[1].name, "recovery");
}

TEST(TracerTest, UnknownIdIsNoOp) {
  Tracer tracer;
  tracer.SetLabel(99, "x");
  tracer.SetMachine(99, 1);
  tracer.AddEvent(99, 5, "e");
  tracer.EndSpan(99, 5);
  EXPECT_EQ(tracer.completed_count(), 0);
  // Closing twice completes once.
  const SpanId id = tracer.StartSpan("s", 0);
  tracer.EndSpan(id, 1);
  tracer.EndSpan(id, 2);
  EXPECT_EQ(tracer.completed_count(), 1);
}

TEST(TracerTest, ClampsOutOfOrderTimes) {
  Tracer tracer;
  const SpanId id = tracer.StartSpan("s", 100);
  tracer.AddEvent(id, 50, "early");  // before the span opened
  tracer.EndSpan(id, 40);            // closes before it opened
  const std::vector<Span> spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].events[0].time, 100);
  EXPECT_EQ(spans[0].end, 100);
  EXPECT_EQ(spans[0].duration(), 0);
}

TEST(TracerTest, InstantIsImmediatelyComplete) {
  Tracer tracer;
  const SpanId id = tracer.Instant("inject:drop", 42, "Watchdog", kNoSpan, 5);
  EXPECT_EQ(id, 1);
  EXPECT_EQ(tracer.open_count(), 0u);
  const std::vector<Span> spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "inject:drop");
  EXPECT_EQ(spans[0].label, "Watchdog");
  EXPECT_EQ(spans[0].machine, 5);
  EXPECT_EQ(spans[0].duration(), 0);
}

TEST(TracerTest, RingKeepsMostRecentAndCountsDropped) {
  Tracer tracer(/*capacity=*/3);
  for (int i = 0; i < 5; ++i) {
    tracer.Instant("s", i);
  }
  EXPECT_EQ(tracer.completed_count(), 5);
  EXPECT_EQ(tracer.dropped_count(), 2);
  const std::vector<Span> spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 3u);
  // Oldest surviving span first.
  EXPECT_EQ(spans[0].start, 2);
  EXPECT_EQ(spans[1].start, 3);
  EXPECT_EQ(spans[2].start, 4);
}

TEST(TracerTest, FormatSpansIsStable) {
  Tracer tracer;
  const SpanId id = tracer.StartSpan("recovery", 100);
  tracer.SetLabel(id, "DiskError");
  tracer.SetMachine(id, 2);
  tracer.AddEvent(id, 110, "action_issued:REPLACE");
  tracer.EndSpan(id, 160);
  const std::string text = Tracer::FormatSpans(tracer.Snapshot());
  EXPECT_EQ(text,
            "span id=1 parent=0 name=recovery label=DiskError machine=2 "
            "start=100 end=160 dur=60\n"
            "  event t=110 action_issued:REPLACE\n");
}

TEST(TracerTest, SpansToJsonShape) {
  Tracer tracer;
  tracer.Instant("inject:hang", 7, "NicDown");
  const std::string json = Tracer::SpansToJson(tracer.Snapshot()).ToString();
  EXPECT_NE(json.find("\"name\": \"inject:hang\""), std::string::npos);
  EXPECT_NE(json.find("\"label\": \"NicDown\""), std::string::npos);
  EXPECT_NE(json.find("\"duration_s\": 0"), std::string::npos);
}

TEST(TracerTest, FilterByLabelExactMatch) {
  Tracer tracer;
  tracer.Instant("recovery", 1, "Watchdog");
  tracer.Instant("recovery", 2, "DiskError");
  tracer.Instant("recovery", 3, "Watchdog");
  tracer.Instant("recovery", 4, "WatchdogX");
  const std::vector<Span> filtered =
      Tracer::FilterByLabel(tracer.Snapshot(), "Watchdog");
  ASSERT_EQ(filtered.size(), 2u);
  EXPECT_EQ(filtered[0].start, 1);
  EXPECT_EQ(filtered[1].start, 3);
}

TEST(TracerTest, TopSlowestSortsAndFilters) {
  Tracer tracer;
  SpanId a = tracer.StartSpan("recovery", 0);
  tracer.EndSpan(a, 50);
  SpanId b = tracer.StartSpan("recovery", 0);
  tracer.EndSpan(b, 200);
  SpanId c = tracer.StartSpan("action:REBOOT", 0);
  tracer.EndSpan(c, 500);
  SpanId d = tracer.StartSpan("recovery", 0);
  tracer.EndSpan(d, 200);

  const std::vector<Span> spans = tracer.Snapshot();
  const std::vector<Span> top = Tracer::TopSlowest(spans, 2, "recovery");
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].id, b);  // dur 200, lower id wins the tie with d
  EXPECT_EQ(top[1].id, d);

  const std::vector<Span> all = Tracer::TopSlowest(spans, 10);
  ASSERT_EQ(all.size(), 4u);
  EXPECT_EQ(all[0].id, c);  // the action span is the slowest overall
}

// Regression for the eviction leak: once the ring overwrites a parent, its
// surviving children used to dump a dangling parent id that could collide
// with a newer span. Snapshot now flags them and the dumps print the
// explicit "(evicted)" sentinel.
TEST(TracerTest, EvictedParentRendersSentinel) {
  Tracer tracer(/*capacity=*/3);
  const SpanId parent = tracer.StartSpan("recovery", 0);
  tracer.EndSpan(parent, 10);
  std::vector<SpanId> children;
  for (int i = 0; i < 4; ++i) {
    const SpanId child =
        tracer.StartSpan("action:REBOOT", 10 + i, parent);
    tracer.EndSpan(child, 20 + i);
    children.push_back(child);
  }
  // Four children through a 3-slot ring evicted the parent and the first
  // child; the three survivors all reference the evicted parent.
  EXPECT_EQ(tracer.dropped_count(), 2);
  const std::vector<Span> spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 3u);
  for (const Span& span : spans) {
    EXPECT_EQ(span.parent, parent);
    EXPECT_TRUE(span.parent_evicted) << "span " << span.id;
  }

  const std::string text = Tracer::FormatSpans(spans);
  EXPECT_NE(text.find("parent=(evicted)"), std::string::npos);
  EXPECT_EQ(text.find("parent=1"), std::string::npos);
  const std::string json = Tracer::SpansToJson(spans).ToString();
  EXPECT_NE(json.find("\"(evicted)\""), std::string::npos);
}

// A parent that is merely still open (or retained) must NOT be flagged.
TEST(TracerTest, LiveParentsAreNotFlaggedAsEvicted) {
  Tracer tracer(/*capacity=*/8);
  const SpanId open_parent = tracer.StartSpan("recovery", 0);
  const SpanId child = tracer.StartSpan("action:REBOOT", 1, open_parent);
  tracer.EndSpan(child, 5);
  {
    const std::vector<Span> spans = tracer.Snapshot();
    ASSERT_EQ(spans.size(), 1u);
    EXPECT_FALSE(spans[0].parent_evicted);
  }
  tracer.EndSpan(open_parent, 9);
  for (const Span& span : tracer.Snapshot()) {
    EXPECT_FALSE(span.parent_evicted) << "span " << span.id;
  }
}

}  // namespace
}  // namespace aer::obs
