// TimeSeriesRecorder: cadence semantics, windowed deltas, the bounded ring
// with its meta counters, and deterministic exports.
#include "obs/timeseries.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace aer::obs {
namespace {

TEST(TimeSeriesTest, WindowsCloseOnCadence) {
  MetricsRegistry registry;
  TimeSeriesRecorder recorder(registry, {.window_width = 100});

  registry.GetCounter("aer_test_total").Inc(3);
  recorder.AdvanceTo(50);
  EXPECT_TRUE(recorder.Windows().empty());  // still inside [0, 100)

  recorder.AdvanceTo(100);
  std::vector<TimeSeriesWindow> windows = recorder.Windows();
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_EQ(windows[0].index, 0);
  EXPECT_EQ(windows[0].start, 0);
  EXPECT_EQ(windows[0].end, 100);
  ASSERT_EQ(windows[0].counter_deltas.size(), 1u);
  EXPECT_EQ(windows[0].counter_deltas[0].first, "aer_test_total");
  EXPECT_EQ(windows[0].counter_deltas[0].second, 3);
}

TEST(TimeSeriesTest, BaselineExcludesPreexistingCounts) {
  MetricsRegistry registry;
  registry.GetCounter("aer_test_total").Inc(7);
  TimeSeriesRecorder recorder(registry, {.window_width = 10});
  recorder.AdvanceTo(10);
  const std::vector<TimeSeriesWindow> windows = recorder.Windows();
  ASSERT_EQ(windows.size(), 1u);
  // Nothing changed after construction, so the window is all-quiet.
  EXPECT_TRUE(windows[0].counter_deltas.empty());
}

TEST(TimeSeriesTest, LateWindowSpansMultipleWidths) {
  MetricsRegistry registry;
  TimeSeriesRecorder recorder(registry, {.window_width = 100});
  registry.GetCounter("aer_test_total").Inc();
  // A position jump of several widths closes one late window, not filler.
  recorder.AdvanceTo(570);
  const std::vector<TimeSeriesWindow> windows = recorder.Windows();
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_EQ(windows[0].start, 0);
  EXPECT_EQ(windows[0].end, 500);  // floor(570 / 100) * 100
}

TEST(TimeSeriesTest, FinishClosesPartialWindow) {
  MetricsRegistry registry;
  TimeSeriesRecorder recorder(registry, {.window_width = 100});
  registry.GetCounter("aer_test_total").Inc();
  recorder.AdvanceTo(100);
  registry.GetCounter("aer_test_total").Inc(4);
  recorder.Finish(130);
  const std::vector<TimeSeriesWindow> windows = recorder.Windows();
  ASSERT_EQ(windows.size(), 2u);
  EXPECT_EQ(windows[1].start, 100);
  EXPECT_EQ(windows[1].end, 130);
  // Besides aer_test_total the partial window also carries the previous
  // close's aer_ts_windows_total bump (meta counters land one window late).
  bool found = false;
  for (const auto& [name, delta] : windows[1].counter_deltas) {
    if (name == "aer_test_total") {
      found = true;
      EXPECT_EQ(delta, 4);
    }
  }
  EXPECT_TRUE(found);
  // An empty partial at an exact boundary is a no-op.
  TimeSeriesRecorder aligned(registry, {.window_width = 100});
  aligned.AdvanceTo(100);
  aligned.Finish(100);
  EXPECT_EQ(aligned.windows_closed(), 1);
}

TEST(TimeSeriesTest, GaugeValuesAndVolatileExclusion) {
  MetricsRegistry registry;
  registry.GetGauge("aer_test_level").Set(1.5);
  registry.GetGauge("aer_test_rate", /*volatile_metric=*/true).Set(99.0);
  TimeSeriesRecorder recorder(registry, {.window_width = 10});
  registry.GetGauge("aer_test_level").Set(2.5);
  recorder.AdvanceTo(10);
  const std::vector<TimeSeriesWindow> windows = recorder.Windows();
  ASSERT_EQ(windows.size(), 1u);
  ASSERT_EQ(windows[0].gauge_values.size(), 1u);  // volatile one excluded
  EXPECT_EQ(windows[0].gauge_values[0].first, "aer_test_level");
  EXPECT_DOUBLE_EQ(windows[0].gauge_values[0].second, 2.5);

  TimeSeriesRecorder with_volatile(
      registry, {.window_width = 10, .include_volatile = true});
  with_volatile.AdvanceTo(10);
  EXPECT_EQ(with_volatile.Windows()[0].gauge_values.size(), 2u);
}

TEST(TimeSeriesTest, ObservationDeltasMergeHistogramsAndStats) {
  MetricsRegistry registry;
  registry.GetHistogram("aer_test_seconds").Observe(10.0);
  registry.GetStat("aer_test_cost").Observe(1.0);
  TimeSeriesRecorder recorder(registry, {.window_width = 10});
  registry.GetHistogram("aer_test_seconds").Observe(20.0);
  registry.GetHistogram("aer_test_seconds").Observe(30.0);
  registry.GetStat("aer_test_cost").Observe(2.0);
  recorder.AdvanceTo(10);
  const std::vector<TimeSeriesWindow> windows = recorder.Windows();
  ASSERT_EQ(windows.size(), 1u);
  ASSERT_EQ(windows[0].observation_deltas.size(), 2u);  // sorted by name
  EXPECT_EQ(windows[0].observation_deltas[0].first, "aer_test_cost");
  EXPECT_EQ(windows[0].observation_deltas[0].second, 1);
  EXPECT_EQ(windows[0].observation_deltas[1].first, "aer_test_seconds");
  EXPECT_EQ(windows[0].observation_deltas[1].second, 2);
}

TEST(TimeSeriesTest, RingEvictsOldestAndCountsMeta) {
  MetricsRegistry registry;
  TimeSeriesRecorder recorder(registry, {.window_width = 10, .capacity = 2});
  for (int i = 1; i <= 4; ++i) {
    registry.GetCounter("aer_test_total").Inc();
    recorder.AdvanceTo(10 * i);
  }
  const std::vector<TimeSeriesWindow> windows = recorder.Windows();
  ASSERT_EQ(windows.size(), 2u);
  EXPECT_EQ(windows[0].index, 2);  // oldest retained
  EXPECT_EQ(windows[1].index, 3);
  EXPECT_EQ(recorder.windows_closed(), 4);
  EXPECT_EQ(recorder.windows_dropped(), 2);
  EXPECT_EQ(registry.GetCounter("aer_ts_windows_total").value(), 4);
  EXPECT_EQ(registry.GetCounter("aer_ts_windows_dropped_total").value(), 2);
  // The meta counters are bumped after the closing snapshot, so their own
  // increments surface in the *next* window's deltas.
  bool meta_delta_seen = false;
  for (const auto& [name, delta] : windows[1].counter_deltas) {
    if (name == "aer_ts_windows_total") {
      meta_delta_seen = true;
      EXPECT_EQ(delta, 1);
    }
  }
  EXPECT_TRUE(meta_delta_seen);
}

TEST(TimeSeriesTest, PositionMustBeMonotonic) {
  MetricsRegistry registry;
  TimeSeriesRecorder recorder(registry, {.window_width = 10});
  recorder.AdvanceTo(25);
  EXPECT_DEATH(recorder.AdvanceTo(24), "position went backwards");
}

// Two identical runs export byte-identical text and JSON — the determinism
// contract extended to the time-series layer.
TEST(TimeSeriesTest, ExportsAreDeterministic) {
  auto run = []() {
    MetricsRegistry registry;
    TimeSeriesRecorder recorder(registry,
                                {.window_width = 100, .capacity = 3});
    for (int i = 1; i <= 5; ++i) {
      registry.GetCounter("aer_test_total").Inc(i);
      registry.GetGauge("aer_test_level").Set(0.5 * i);
      registry.GetStat("aer_test_cost").Observe(1.0 * i);
      recorder.AdvanceTo(100 * i);
    }
    recorder.Finish(530);
    return std::make_pair(recorder.ExportText(),
                          recorder.ExportJson().ToString());
  };
  const auto [text_a, json_a] = run();
  const auto [text_b, json_b] = run();
  EXPECT_EQ(text_a, text_b);
  EXPECT_EQ(json_a, json_b);
  EXPECT_NE(text_a.find("# timeseries window_width=100"), std::string::npos);
  EXPECT_NE(
      text_a.find("aer_test_total_delta{window=\"4\",start=\"400\",end"
                  "=\"500\"} 5"),
      std::string::npos);
}

}  // namespace
}  // namespace aer::obs
