// The observability determinism contract (docs/OBSERVABILITY.md): for the
// same seed, an instrumented pipeline produces byte-identical deterministic
// metric snapshots and trace dumps, run after run. Also pins the span
// structure RecoveryManager emits: one "recovery" span per process labeled
// with the initiating symptom, child "action:<name>" spans per attempt.
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/cluster_sim.h"
#include "cluster/fault_catalog.h"
#include "cluster/user_policy.h"
#include "core/guarded_policy.h"
#include "core/recovery_manager.h"
#include "inject/harness.h"
#include "cluster/trace.h"
#include "common/profiler.h"
#include "core/policy_generator.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "obs/tracer.h"

namespace aer {
namespace {

TEST(ObsSpanStructureTest, RecoveryProcessSpansNestActions) {
  UserDefinedPolicy policy;
  RecoveryManager manager(policy);
  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  manager.SetObservers(&tracer, &metrics);

  manager.OnSymptom(100, 1, "Watchdog");
  ASSERT_TRUE(manager.OnRecoveryNeeded(150, 1).has_value());
  manager.OnActionResult(200, 1, /*healthy=*/false);
  ASSERT_TRUE(manager.OnRecoveryNeeded(250, 1).has_value());
  manager.OnActionResult(300, 1, /*healthy=*/true);

  EXPECT_EQ(tracer.open_count(), 0u);
  const std::vector<obs::Span> spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 3u);  // two actions + the enclosing process

  // The process span opened first, so it has the smallest id; it closes
  // last, so it is the final ring entry.
  const obs::Span& process = spans[2];
  EXPECT_EQ(process.id, 1);
  EXPECT_EQ(process.name, "recovery");
  EXPECT_EQ(process.label, "Watchdog");
  EXPECT_EQ(process.machine, 1);
  EXPECT_EQ(process.start, 100);
  EXPECT_EQ(process.end, 300);

  for (int i = 0; i < 2; ++i) {
    EXPECT_EQ(spans[i].parent, process.id) << "action " << i;
    EXPECT_EQ(spans[i].name.rfind("action:", 0), 0u) << spans[i].name;
    EXPECT_EQ(spans[i].machine, 1);
    ASSERT_EQ(spans[i].events.size(), 1u);
  }
  EXPECT_EQ(spans[0].events[0].label, "result:failed");
  EXPECT_EQ(spans[1].events[0].label, "result:cured");

  EXPECT_EQ(metrics.GetCounter("aer_recovery_processes_total").value(), 1);
  EXPECT_EQ(metrics.GetCounter("aer_recovery_actions_total").value(), 2);
}

// One instrumented fault-injection run: scripted incidents through a
// GuardedPolicy into an InjectionHarness with every fault class enabled.
// Mirrors the pipeline behind `aerctl metrics` / `aerctl trace`.
struct ObservedRun {
  std::string metrics_text;
  std::string trace_text;
};

ObservedRun RunObservedHarness(std::uint64_t seed) {
  std::vector<HarnessIncident> incidents;
  const char* symptoms[] = {"Watchdog", "DiskError", "EventLog", "NicDown"};
  for (int i = 0; i < 30; ++i) {
    HarnessIncident incident;
    incident.time = 100 + i * 700;
    incident.machine = i % 5;
    incident.symptom = symptoms[i % 4];
    incident.cure_strength = i % kNumActions;
    incidents.push_back(incident);
  }

  UserDefinedPolicy primary;
  UserDefinedPolicy fallback;
  GuardedPolicy guard(primary, fallback);
  RecoveryManagerConfig manager_config;
  manager_config.action_timeout = 10 * kHour;
  HarnessConfig harness_config;
  harness_config.seed = seed;
  harness_config.drop_event = 0.2;
  harness_config.duplicate_event = 0.1;
  harness_config.delay_event = 0.2;
  harness_config.hang_action = 0.1;
  harness_config.false_success = 0.1;

  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  guard.SetObservers(&tracer, &metrics);
  InjectionHarness harness(guard, manager_config, harness_config);
  harness.SetObservers(&tracer, &metrics);
  harness.Run(incidents);

  ObservedRun run;
  obs::MetricsRegistry::ExportOptions options;
  options.include_volatile = false;
  run.metrics_text = metrics.ExportText(options);
  run.trace_text = obs::Tracer::FormatSpans(tracer.Snapshot());
  return run;
}

TEST(ObsDeterminismTest, SameSeedByteIdenticalSnapshotsAndTraces) {
  const ObservedRun a = RunObservedHarness(7);
  const ObservedRun b = RunObservedHarness(7);
  EXPECT_FALSE(a.metrics_text.empty());
  EXPECT_FALSE(a.trace_text.empty());
  EXPECT_EQ(a.metrics_text, b.metrics_text);
  EXPECT_EQ(a.trace_text, b.trace_text);
}

TEST(ObsDeterminismTest, DifferentSeedsDiverge) {
  // Sanity: the byte-equality above is not vacuous — injection actually
  // depends on the seed.
  const ObservedRun a = RunObservedHarness(7);
  const ObservedRun b = RunObservedHarness(8);
  EXPECT_NE(a.trace_text, b.trace_text);
}

TEST(ObsDeterminismTest, ClusterSimMetricsDeterministic) {
  ClusterSimConfig config;
  config.num_machines = 30;
  config.duration = 10 * kDay;
  config.machine_mtbf_days = 5.0;
  config.seed = 11;
  const FaultCatalog catalog = MakeDefaultCatalog();

  std::string texts[2];
  for (std::string& text : texts) {
    obs::MetricsRegistry metrics;
    UserDefinedPolicy policy;
    ClusterSimulator sim(config, catalog);
    sim.SetMetrics(&metrics);
    sim.Run(policy);
    text = metrics.ExportText();
    EXPECT_GT(metrics.GetCounter("aer_sim_processes_total").value(), 0);
  }
  EXPECT_EQ(texts[0], texts[1]);
}

// The second half of the contract: observability must be *passive*. A
// policy trained with the flight recorder installed, a time-series recorder
// closing windows, and the wall-clock profiler recording is byte-identical
// to one trained with none of them.
TEST(ObsDeterminismTest, PolicyBytesUnaffectedByObservability) {
  TraceConfig trace_config = TraceConfigForScale("small");
  trace_config.sim.num_machines = 150;
  trace_config.sim.duration = 45 * kDay;
  const TraceDataset dataset = GenerateTrace(trace_config);
  PolicyGeneratorConfig config;
  config.trainer.max_sweeps = 15000;
  config.trainer.min_sweeps = 2500;
  const auto serialize = [](const TrainedPolicy& policy) {
    std::ostringstream os;
    policy.Write(os);
    return os.str();
  };

  const std::string plain =
      serialize(PolicyGenerator(config).Generate(dataset.result.log));

  obs::MetricsRegistry registry;
  obs::TimeSeriesRecorder recorder(registry, {.window_width = 1});
  obs::Tracer tracer;
  const std::string dump_path =
      ::testing::TempDir() + "/aer_obs_determinism_flight.json";
  obs::FlightRecorder::Install({.path = dump_path}, &tracer, &registry,
                               &recorder);
  ProfileRegistry::Global().Reset();
  std::string observed;
  {
    AER_PROFILE_SCOPE("determinism_probe");
    observed =
        serialize(PolicyGenerator(config).Generate(dataset.result.log));
    registry.GetCounter("aer_test_total").Inc();
    recorder.AdvanceTo(1);
  }
  obs::FlightRecorder::Uninstall();

  EXPECT_EQ(plain, observed);
  EXPECT_EQ(recorder.windows_closed(), 1);
}

}  // namespace
}  // namespace aer
