// ProfileRegistry: hierarchical paths, the thread-sharded deterministic
// merge, Reset semantics, and the deterministic (counts-only) formatting.
#include "common/profiler.h"

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace aer {
namespace {

static_assert(AER_PROFILING_IS_ON() == 1,
              "profiler_test.cc must build with profiling enabled; the "
              "compiled-out macro is covered by profiler_off_test.cc");

TEST(ProfilerTest, NestedScopesBuildHierarchicalPaths) {
  ProfileRegistry::Global().Reset();
  {
    AER_PROFILE_SCOPE("outer");
    {
      AER_PROFILE_SCOPE("inner");
    }
    {
      AER_PROFILE_SCOPE("inner");
    }
  }
  const std::vector<ProfileEntry> entries =
      ProfileRegistry::Global().Snapshot();
  ASSERT_EQ(entries.size(), 2u);  // sorted by path
  EXPECT_EQ(entries[0].path, "outer");
  EXPECT_EQ(entries[0].calls, 1);
  EXPECT_EQ(entries[1].path, "outer/inner");
  EXPECT_EQ(entries[1].calls, 2);
  EXPECT_GE(entries[0].total_ns, entries[1].total_ns);  // parent ⊇ children
}

TEST(ProfilerTest, SameNameUnderDifferentParentsStaysDistinct) {
  ProfileRegistry::Global().Reset();
  {
    AER_PROFILE_SCOPE("alpha");
    AER_PROFILE_SCOPE("step");
  }
  {
    AER_PROFILE_SCOPE("beta");
    AER_PROFILE_SCOPE("step");
  }
  const std::vector<ProfileEntry> entries =
      ProfileRegistry::Global().Snapshot();
  ASSERT_EQ(entries.size(), 4u);
  EXPECT_EQ(entries[0].path, "alpha");
  EXPECT_EQ(entries[1].path, "alpha/step");
  EXPECT_EQ(entries[2].path, "beta");
  EXPECT_EQ(entries[3].path, "beta/step");
}

TEST(ProfilerTest, ShardsMergeAcrossThreads) {
  ProfileRegistry::Global().Reset();
  constexpr int kThreads = 4;
  constexpr int kIters = 250;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([]() {
      for (int i = 0; i < kIters; ++i) {
        AER_PROFILE_SCOPE("worker");
        AER_PROFILE_SCOPE("task");
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const std::vector<ProfileEntry> entries =
      ProfileRegistry::Global().Snapshot();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].path, "worker");
  EXPECT_EQ(entries[0].calls, kThreads * kIters);
  EXPECT_EQ(entries[1].path, "worker/task");
  EXPECT_EQ(entries[1].calls, kThreads * kIters);
  EXPECT_EQ(ProfileRegistry::Global().TotalCalls(), 2 * kThreads * kIters);
}

TEST(ProfilerTest, ResetPreservesOpenScopes) {
  ProfileRegistry::Global().Reset();
  {
    ProfileScope scope("epoch");
    // Resetting while the scope is open must not dangle its stack entry;
    // the exit lands one call in the fresh epoch.
    ProfileRegistry::Global().Reset();
  }
  const std::vector<ProfileEntry> entries =
      ProfileRegistry::Global().Snapshot();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].path, "epoch");
  EXPECT_EQ(entries[0].calls, 1);
}

TEST(ProfilerTest, CountsOnlyFormatIsDeterministic) {
  ProfileRegistry::Global().Reset();
  {
    AER_PROFILE_SCOPE("fmt");
    AER_PROFILE_SCOPE("leaf");
  }
  const std::vector<ProfileEntry> entries =
      ProfileRegistry::Global().Snapshot();
  const std::string text =
      ProfileRegistry::FormatProfile(entries, {.include_wall = false});
  EXPECT_EQ(text, "profile fmt calls=1\nprofile fmt/leaf calls=1\n");
  const std::string json =
      ProfileRegistry::ProfileToJson(entries, {.include_wall = false})
          .ToString();
  EXPECT_NE(json.find("\"fmt/leaf\""), std::string::npos);
  EXPECT_EQ(json.find("total_ns"), std::string::npos);
  const std::string with_wall =
      ProfileRegistry::FormatProfile(entries, {.include_wall = true});
  EXPECT_NE(with_wall.find("total_ms="), std::string::npos);
}

TEST(ProfilerTest, LibraryInstrumentationIsRecorded) {
  // The instrumented hot paths (trainers, manager, simulator, pool) must
  // actually feed the registry; a representative direct check keeps the
  // macro from silently rotting into a no-op.
  ProfileRegistry::Global().Reset();
  const std::int64_t before = ProfileRegistry::Global().TotalCalls();
  {
    AER_PROFILE_SCOPE("probe");
  }
  EXPECT_EQ(ProfileRegistry::Global().TotalCalls(), before + 1);
}

}  // namespace
}  // namespace aer
