// MetricsRegistry unit tests: kinds, merge semantics, deterministic exports,
// and the volatile-metric exclusion that keeps snapshots seed-pure.
#include "obs/metrics.h"

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace aer::obs {
namespace {

TEST(MetricNameTest, Validation) {
  EXPECT_TRUE(IsValidMetricName("aer_recovery_processes_total"));
  EXPECT_TRUE(IsValidMetricName("x"));
  EXPECT_TRUE(IsValidMetricName("a_1_b_2"));
  EXPECT_FALSE(IsValidMetricName(""));
  EXPECT_FALSE(IsValidMetricName("1abc"));
  EXPECT_FALSE(IsValidMetricName("_leading"));
  EXPECT_FALSE(IsValidMetricName("UpperCase"));
  EXPECT_FALSE(IsValidMetricName("has-dash"));
  EXPECT_FALSE(IsValidMetricName("has space"));
}

TEST(MetricsRegistryTest, CounterFindOrCreate) {
  MetricsRegistry registry;
  Counter& a = registry.GetCounter("aer_test_total");
  a.Inc();
  a.Inc(4);
  EXPECT_EQ(registry.GetCounter("aer_test_total").value(), 5);
  EXPECT_EQ(&a, &registry.GetCounter("aer_test_total"));
  EXPECT_EQ(registry.size(), 1u);
}

TEST(MetricsRegistryTest, GaugeAndStat) {
  MetricsRegistry registry;
  registry.GetGauge("aer_test_gauge").Set(2.5);
  EXPECT_DOUBLE_EQ(registry.GetGauge("aer_test_gauge").value(), 2.5);
  StatMetric& stat = registry.GetStat("aer_test_stat");
  stat.Observe(1.0);
  stat.Observe(3.0);
  EXPECT_EQ(stat.Snapshot().count(), 2);
  EXPECT_DOUBLE_EQ(stat.Snapshot().mean(), 2.0);
}

TEST(MetricsRegistryTest, HistogramObserveAndSnapshot) {
  MetricsRegistry registry;
  Histogram& h = registry.GetHistogram("aer_test_seconds", 10.0, 10.0, 3);
  h.Observe(5.0);
  h.Observe(50.0);
  h.Observe(1e9);  // overflow
  const LogHistogram snapshot = h.Snapshot();
  EXPECT_EQ(snapshot.total_count(), 3);
  EXPECT_EQ(snapshot.bucket(0), 1);
  EXPECT_EQ(snapshot.bucket(1), 1);
  EXPECT_EQ(snapshot.bucket(3), 1);
}

TEST(MetricsRegistryTest, KindMismatchDies) {
  MetricsRegistry registry;
  registry.GetCounter("aer_test_total");
  EXPECT_DEATH(registry.GetGauge("aer_test_total"), "already registered");
}

TEST(MetricsRegistryTest, InvalidNameDies) {
  MetricsRegistry registry;
  EXPECT_DEATH(registry.GetCounter("Bad-Name"), "metric name");
}

TEST(MetricsRegistryTest, HistogramGeometryMismatchDies) {
  MetricsRegistry registry;
  registry.GetHistogram("aer_test_seconds", 10.0, 10.0, 3);
  EXPECT_DEATH(registry.GetHistogram("aer_test_seconds", 10.0, 2.0, 3),
               "geometry");
}

TEST(MetricsRegistryTest, MergeFromFoldsAllKinds) {
  MetricsRegistry shard;
  shard.GetCounter("aer_test_total").Inc(3);
  shard.GetGauge("aer_test_gauge").Set(7.0);
  shard.GetHistogram("aer_test_seconds", 10.0, 10.0, 3).Observe(5.0);
  shard.GetStat("aer_test_stat").Observe(4.0);

  MetricsRegistry main;
  main.GetCounter("aer_test_total").Inc(2);
  main.GetHistogram("aer_test_seconds", 10.0, 10.0, 3).Observe(50.0);
  main.MergeFrom(shard);

  EXPECT_EQ(main.GetCounter("aer_test_total").value(), 5);
  EXPECT_DOUBLE_EQ(main.GetGauge("aer_test_gauge").value(), 7.0);
  EXPECT_EQ(main.GetHistogram("aer_test_seconds", 10.0, 10.0, 3)
                .Snapshot()
                .total_count(),
            2);
  EXPECT_EQ(main.GetStat("aer_test_stat").Snapshot().count(), 1);
}

TEST(MetricsRegistryTest, MergeOrderIndependentForCommutativeKinds) {
  // Counters and histograms merge commutatively — the property parallel
  // evaluation relies on for deterministic snapshots.
  MetricsRegistry a;
  MetricsRegistry b;
  a.GetCounter("aer_test_total").Inc(3);
  b.GetCounter("aer_test_total").Inc(4);
  a.GetHistogram("aer_test_seconds").Observe(10.0);
  b.GetHistogram("aer_test_seconds").Observe(1000.0);

  MetricsRegistry ab;
  ab.MergeFrom(a);
  ab.MergeFrom(b);
  MetricsRegistry ba;
  ba.MergeFrom(b);
  ba.MergeFrom(a);
  EXPECT_EQ(ab.ExportText(), ba.ExportText());
}

TEST(MetricsRegistryTest, ExportTextFormat) {
  MetricsRegistry registry;
  registry.GetCounter("aer_b_total").Inc(2);
  registry.GetGauge("aer_a_gauge").Set(1.5);
  const std::string text = registry.ExportText();
  // Sorted by name: the gauge (aer_a...) precedes the counter (aer_b...).
  EXPECT_EQ(text,
            "# TYPE aer_a_gauge gauge\n"
            "aer_a_gauge 1.5\n"
            "# TYPE aer_b_total counter\n"
            "aer_b_total 2\n");
}

TEST(MetricsRegistryTest, ExportTextHistogramCumulativeBuckets) {
  MetricsRegistry registry;
  Histogram& h = registry.GetHistogram("aer_test_seconds", 10.0, 10.0, 2);
  h.Observe(5.0);
  h.Observe(50.0);
  h.Observe(50.0);
  h.Observe(1e9);
  const std::string text = registry.ExportText();
  EXPECT_NE(text.find("aer_test_seconds_bucket{le=\"10\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("aer_test_seconds_bucket{le=\"100\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("aer_test_seconds_bucket{le=\"+Inf\"} 4\n"),
            std::string::npos);
  EXPECT_NE(text.find("aer_test_seconds_count 4\n"), std::string::npos);
}

TEST(MetricsRegistryTest, VolatileGaugeExcludedFromDeterministicExport) {
  MetricsRegistry registry;
  registry.GetCounter("aer_test_total").Inc();
  registry.GetGauge("aer_test_eps", /*volatile_metric=*/true).Set(123.4);
  MetricsRegistry::ExportOptions deterministic;
  deterministic.include_volatile = false;
  EXPECT_EQ(registry.ExportText(deterministic).find("aer_test_eps"),
            std::string::npos);
  EXPECT_NE(registry.ExportText().find("aer_test_eps"), std::string::npos);
  const std::string json = registry.ExportJson().ToString();
  EXPECT_NE(json.find("\"volatile\": true"), std::string::npos);
}

TEST(MetricsRegistryTest, ExportJsonShape) {
  MetricsRegistry registry;
  registry.GetCounter("aer_test_total").Inc(7);
  registry.GetStat("aer_test_stat").Observe(2.0);
  registry.GetHistogram("aer_test_seconds", 10.0, 10.0, 2).Observe(50.0);
  const std::string json = registry.ExportJson().ToString();
  EXPECT_NE(json.find("\"type\": \"counter\""), std::string::npos);
  EXPECT_NE(json.find("\"value\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"type\": \"stat\""), std::string::npos);
  EXPECT_NE(json.find("\"type\": \"histogram\""), std::string::npos);
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
}

TEST(MetricsRegistryTest, CounterValuesSortedAndCountersOnly) {
  MetricsRegistry registry;
  registry.GetCounter("aer_b_total").Inc(2);
  registry.GetCounter("aer_a_total").Inc(1);
  registry.GetGauge("aer_gauge").Set(9.0);
  const auto values = registry.CounterValues();
  ASSERT_EQ(values.size(), 2u);
  EXPECT_EQ(values[0].first, "aer_a_total");
  EXPECT_EQ(values[0].second, 1);
  EXPECT_EQ(values[1].first, "aer_b_total");
  EXPECT_EQ(values[1].second, 2);
}

TEST(MetricsRegistryTest, ConcurrentIncrementsAreLossless) {
  MetricsRegistry registry;
  Counter& counter = registry.GetCounter("aer_test_total");
  Histogram& histogram = registry.GetHistogram("aer_test_seconds");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter, &histogram] {
      for (int i = 0; i < kPerThread; ++i) {
        counter.Inc();
        histogram.Observe(static_cast<double>(i));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter.value(), kThreads * kPerThread);
  EXPECT_EQ(histogram.Snapshot().total_count(), kThreads * kPerThread);
}

}  // namespace
}  // namespace aer::obs
