// TraceCollector / trace identity units: deterministic id minting, the
// hash head-sampling contract, ring bounding, counter accounting, and the
// shard-merge determinism claim (docs/OBSERVABILITY.md "Distributed
// tracing") — the merged stream must be byte-identical for any shard
// count, given shards that partition machines.
#include <cstdint>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/trace_collector.h"
#include "obs/trace_context.h"

namespace aer::obs {
namespace {

TEST(TraceContextTest, IdsAreDeterministicAndDistinct) {
  // Pure function of (seed, machine, episode): same inputs, same id.
  EXPECT_EQ(MakeTraceId(7, 3, 1), MakeTraceId(7, 3, 1));
  // Any coordinate change changes the id (splitmix64 is a bijection; a
  // collision across this small grid would be a mixing bug).
  std::set<TraceId> ids;
  for (std::uint64_t seed : {1u, 2u, 99u}) {
    for (std::int64_t machine = 0; machine < 10; ++machine) {
      for (std::uint64_t episode = 1; episode <= 5; ++episode) {
        ids.insert(MakeTraceId(seed, machine, episode));
      }
    }
  }
  EXPECT_EQ(ids.size(), 3u * 10u * 5u);
  // kNoTrace is never minted: "no trace" stays unambiguous.
  EXPECT_EQ(ids.count(kNoTrace), 0u);
}

TEST(TraceContextTest, SamplingIsSharpAtTheEndpoints) {
  for (std::uint64_t i = 1; i <= 200; ++i) {
    const TraceId id = MakeTraceId(42, static_cast<std::int64_t>(i), 1);
    EXPECT_TRUE(SampleTrace(id, 1.0));
    EXPECT_TRUE(SampleTrace(id, 1.5));
    EXPECT_FALSE(SampleTrace(id, 0.0));
    EXPECT_FALSE(SampleTrace(id, -0.5));
  }
}

TEST(TraceContextTest, SamplingIsMonotoneInProbability) {
  // A trace kept at probability p stays kept at every p' > p — the keep set
  // only grows, which is what makes sampled runs comparable across rates.
  const double rates[] = {0.1, 0.25, 0.5, 0.75, 0.9};
  int kept_any = 0;
  for (std::uint64_t i = 1; i <= 500; ++i) {
    const TraceId id = MakeTraceId(7, static_cast<std::int64_t>(i), 2);
    bool prev = false;
    for (const double p : rates) {
      const bool kept = SampleTrace(id, p);
      if (prev) EXPECT_TRUE(kept) << "id kept at lower rate dropped at " << p;
      prev = kept;
      if (kept) ++kept_any;
    }
  }
  // The hash is well mixed: at these rates a 500-id population cannot be
  // all-kept or all-dropped.
  EXPECT_GT(kept_any, 0);
  EXPECT_LT(kept_any, 500 * 5);
}

TraceRecord Rec(TraceId id, SimTime time, TraceEventKind kind,
                std::int64_t machine) {
  TraceRecord r;
  r.trace_id = id;
  r.time = time;
  r.kind = kind;
  r.machine = machine;
  return r;
}

TEST(TraceCollectorTest, RecordsInOrderWithSeq) {
  TraceCollector collector;
  const TraceId id = MakeTraceId(1, 0, 1);
  collector.Record(Rec(id, 10, TraceEventKind::kIncident, 0));
  collector.Record(Rec(id, 12, TraceEventKind::kSymptom, 0));
  const auto snapshot = collector.Snapshot();
  ASSERT_EQ(snapshot.size(), 2u);
  EXPECT_EQ(snapshot[0].kind, TraceEventKind::kIncident);
  EXPECT_EQ(snapshot[0].seq, 1u);
  EXPECT_EQ(snapshot[1].seq, 2u);
  EXPECT_EQ(collector.recorded_count(), 2);
  EXPECT_EQ(collector.dropped_count(), 0);
}

TEST(TraceCollectorTest, SamplingIsCompleteOrNothingPerTrace) {
  TraceCollector collector({.sample_probability = 0.5});
  obs::MetricsRegistry registry;
  collector.SetMetrics(&registry);
  // Feed 3 records per trace over many traces: every trace must appear
  // with all 3 records or none at all.
  const int kTraces = 200;
  for (int m = 0; m < kTraces; ++m) {
    const TraceId id = MakeTraceId(5, m, 1);
    collector.Record(Rec(id, 10 * m, TraceEventKind::kIncident, m));
    collector.Record(Rec(id, 10 * m + 2, TraceEventKind::kSymptom, m));
    collector.Record(Rec(id, 10 * m + 5, TraceEventKind::kCure, m));
  }
  std::set<TraceId> kept;
  std::size_t records = 0;
  for (const TraceRecord& r : collector.Snapshot()) {
    kept.insert(r.trace_id);
    ++records;
  }
  EXPECT_EQ(records, kept.size() * 3u);
  for (const TraceId id : kept) EXPECT_TRUE(collector.Sampled(id));
  // Roughly half kept (hash sampling, not exact), never all or none.
  EXPECT_GT(kept.size(), 0u);
  EXPECT_LT(kept.size(), static_cast<std::size_t>(kTraces));
  // Counter accounting: every record either sampled or dropped.
  EXPECT_EQ(collector.recorded_count() + collector.dropped_count(),
            3 * kTraces);
  EXPECT_EQ(registry.GetCounter("aer_trace_sampled_total").value(),
            collector.recorded_count());
  EXPECT_EQ(registry.GetCounter("aer_trace_dropped_total").value(),
            collector.dropped_count());
}

TEST(TraceCollectorTest, GlobalRecordsBypassSampling) {
  TraceCollector collector({.sample_probability = 0.0});
  collector.Record(Rec(kNoTrace, 5, TraceEventKind::kLeaderElected, -1));
  collector.Record(Rec(MakeTraceId(1, 0, 1), 6, TraceEventKind::kIncident, 0));
  const auto snapshot = collector.Snapshot();
  ASSERT_EQ(snapshot.size(), 1u);
  EXPECT_EQ(snapshot[0].kind, TraceEventKind::kLeaderElected);
  EXPECT_EQ(collector.dropped_count(), 1);
}

TEST(TraceCollectorTest, RingEvictsOldestAndCountsDrops) {
  TraceCollector collector({.capacity = 4});
  const TraceId id = MakeTraceId(1, 0, 1);
  for (int i = 0; i < 6; ++i) {
    collector.Record(Rec(id, i, TraceEventKind::kSymptom, 0));
  }
  const auto snapshot = collector.Snapshot();
  ASSERT_EQ(snapshot.size(), 4u);
  EXPECT_EQ(snapshot.front().time, 2);
  EXPECT_EQ(snapshot.back().time, 5);
  EXPECT_EQ(collector.dropped_count(), 2);
}

// Records for machines [begin, end), each machine in time order — the shape
// every shard produces (machine-local streams, disjoint machine ranges).
std::vector<TraceRecord> ShardStream(std::int64_t begin, std::int64_t end) {
  std::vector<TraceRecord> out;
  for (std::int64_t m = begin; m < end; ++m) {
    const TraceId id = MakeTraceId(3, m, 1);
    // Colliding times across machines on purpose: the merge's stable sort
    // must order ties by machine, not by shard arrival.
    out.push_back(Rec(id, 100, TraceEventKind::kIncident, m));
    out.push_back(Rec(id, 100 + m % 3, TraceEventKind::kSymptom, m));
    out.push_back(Rec(id, 110, TraceEventKind::kCure, m));
  }
  return out;
}

TEST(TraceCollectorTest, MergeShardsIsShardCountInvariant) {
  // The same 12 machines split as 1, 2, 3, and 4 shards must produce
  // byte-identical snapshots (docs/OBSERVABILITY.md determinism claim).
  std::vector<std::vector<TraceRecord>> snapshots;
  for (const int shard_count : {1, 2, 3, 4}) {
    TraceCollector collector;
    std::vector<std::vector<TraceRecord>> shards;
    const std::int64_t per = 12 / shard_count;
    for (int s = 0; s < shard_count; ++s) {
      shards.push_back(ShardStream(s * per, (s + 1) * per));
    }
    collector.MergeShards(std::move(shards));
    snapshots.push_back(collector.Snapshot());
  }
  for (std::size_t i = 1; i < snapshots.size(); ++i) {
    EXPECT_EQ(snapshots[i], snapshots[0]) << "shard split " << i;
  }
  // And the canonical order really is (time, machine)-sorted.
  const auto& merged = snapshots[0];
  ASSERT_FALSE(merged.empty());
  for (std::size_t i = 1; i < merged.size(); ++i) {
    const bool ordered =
        merged[i - 1].time < merged[i].time ||
        (merged[i - 1].time == merged[i].time &&
         merged[i - 1].machine <= merged[i].machine);
    EXPECT_TRUE(ordered) << "at " << i;
  }
}

TEST(TraceCollectorTest, MergeShardsAppliesSampling) {
  TraceCollector full;
  TraceCollector sampled({.sample_probability = 0.4});
  auto shards = [] {
    std::vector<std::vector<TraceRecord>> s;
    s.push_back(ShardStream(0, 6));
    s.push_back(ShardStream(6, 12));
    return s;
  };
  full.MergeShards(shards());
  sampled.MergeShards(shards());
  EXPECT_EQ(full.recorded_count(), 36);
  EXPECT_LT(sampled.recorded_count(), 36);
  EXPECT_EQ(sampled.recorded_count() + sampled.dropped_count(), 36);
  // The sampled snapshot is exactly the full snapshot filtered by the keep
  // decision — head sampling commutes with the merge.
  std::vector<TraceRecord> expected;
  for (TraceRecord r : full.Snapshot()) {
    if (!sampled.Sampled(r.trace_id)) continue;
    r.seq = 0;
    expected.push_back(std::move(r));
  }
  std::vector<TraceRecord> actual;
  for (TraceRecord r : sampled.Snapshot()) {
    r.seq = 0;
    actual.push_back(std::move(r));
  }
  EXPECT_EQ(actual, expected);
}

}  // namespace
}  // namespace aer::obs
