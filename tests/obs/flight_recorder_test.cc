// Flight recorder: the manual dump surface, the AER_CHECK failure path and
// the fatal-signal path. Crash paths run inside gtest death tests, so the
// dump file is written by the dying child and inspected by the parent.
// SIGABRT stands in for the fatal-signal family: unlike SIGSEGV it is not
// intercepted by ASan, so the test behaves the same under every sanitizer
// leg.
#include "obs/flight_recorder.h"

#include <csignal>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "common/check.h"
#include "common/profiler.h"

namespace aer::obs {
namespace {

std::string ReadFileOrEmpty(const std::string& path) {
  std::ifstream in(path);
  if (!in) return {};
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

class FlightRecorderTest : public ::testing::Test {
 protected:
  // Every test uninstalls, so a prior test's sources (or the CI-wide
  // recorder from test_main.cc) never leak into the next one.
  void TearDown() override { FlightRecorder::Uninstall(); }
};

TEST_F(FlightRecorderTest, ManualDumpContainsAllSections) {
  Tracer tracer;
  MetricsRegistry metrics;
  TimeSeriesRecorder timeseries(metrics, {.window_width = 100});

  const SpanId parent = tracer.StartSpan("recovery", 10);
  tracer.SetLabel(parent, "Watchdog");
  tracer.EndSpan(parent, 50);
  metrics.GetCounter("aer_test_total").Inc(5);
  timeseries.AdvanceTo(100);
  {
    ProfileScope scope("flight_probe");
  }

  const std::string path =
      ::testing::TempDir() + "/aer_flight_manual.json";
  std::remove(path.c_str());
  FlightRecorder::Install({.path = path}, &tracer, &metrics, &timeseries);
  EXPECT_TRUE(FlightRecorder::installed());
  ASSERT_TRUE(FlightRecorder::DumpNow("unit test"));

  const std::string dump = ReadFileOrEmpty(path);
  std::remove(path.c_str());
  EXPECT_NE(dump.find("\"manual\""), std::string::npos);
  EXPECT_NE(dump.find("unit test"), std::string::npos);
  EXPECT_NE(dump.find("\"recovery\""), std::string::npos);   // span
  EXPECT_NE(dump.find("aer_test_total"), std::string::npos);  // metrics
  EXPECT_NE(dump.find("last_window"), std::string::npos);     // timeseries
  EXPECT_NE(dump.find("flight_probe"), std::string::npos);    // profile
}

TEST_F(FlightRecorderTest, DumpStitchesTraceRecordsIntoADag) {
  MetricsRegistry metrics;
  TraceCollector traces;
  const TraceId id = MakeTraceId(3, 7, 1);
  TraceRecord record;
  record.trace_id = id;
  record.time = 10;
  record.kind = TraceEventKind::kIncident;
  record.machine = 7;
  traces.Record(record);
  record.time = 12;
  record.kind = TraceEventKind::kSymptom;
  traces.Record(record);
  record.time = 40;
  record.kind = TraceEventKind::kCure;
  traces.Record(record);

  const std::string path = ::testing::TempDir() + "/aer_flight_traces.json";
  std::remove(path.c_str());
  FlightRecorder::Install({.path = path}, nullptr, &metrics, nullptr,
                          &traces);
  ASSERT_TRUE(FlightRecorder::DumpNow("trace dump"));

  const std::string dump = ReadFileOrEmpty(path);
  std::remove(path.c_str());
  // The dump carries the stitched DAG, not raw records: one cured process
  // with its causal node kinds.
  EXPECT_NE(dump.find("\"trace_dag\""), std::string::npos);
  EXPECT_NE(dump.find("\"incident\""), std::string::npos);
  EXPECT_NE(dump.find("\"cure\""), std::string::npos);
  EXPECT_NE(dump.find("\"cured\": true"), std::string::npos);
}

TEST_F(FlightRecorderTest, MaxTraceRecordsKeepsOnlyTheMostRecent) {
  MetricsRegistry metrics;
  TraceCollector traces;
  for (int episode = 1; episode <= 5; ++episode) {
    TraceRecord record;
    record.trace_id = MakeTraceId(3, 1, static_cast<std::uint64_t>(episode));
    record.time = 10 * episode;
    record.kind = TraceEventKind::kIncident;
    record.machine = 1;
    record.detail = "episode_" + std::to_string(episode);
    traces.Record(record);
  }

  const std::string path = ::testing::TempDir() + "/aer_flight_trim.json";
  std::remove(path.c_str());
  FlightRecorder::Install({.path = path, .max_trace_records = 2}, nullptr,
                          &metrics, nullptr, &traces);
  ASSERT_TRUE(FlightRecorder::DumpNow("trim traces"));

  const std::string dump = ReadFileOrEmpty(path);
  std::remove(path.c_str());
  // Only the newest records survive the cap.
  EXPECT_EQ(dump.find("episode_3"), std::string::npos);
  EXPECT_NE(dump.find("episode_4"), std::string::npos);
  EXPECT_NE(dump.find("episode_5"), std::string::npos);
}

TEST_F(FlightRecorderTest, MaxSpansKeepsOnlyTheMostRecent) {
  Tracer tracer;
  for (int i = 0; i < 10; ++i) {
    tracer.Instant("span_" + std::to_string(i), i);
  }
  const std::string path =
      ::testing::TempDir() + "/aer_flight_maxspans.json";
  std::remove(path.c_str());
  FlightRecorder::Install({.path = path, .max_spans = 3}, &tracer, nullptr,
                          nullptr);
  ASSERT_TRUE(FlightRecorder::DumpNow("trim"));
  const std::string dump = ReadFileOrEmpty(path);
  std::remove(path.c_str());
  EXPECT_EQ(dump.find("span_6"), std::string::npos);
  EXPECT_NE(dump.find("span_7"), std::string::npos);
  EXPECT_NE(dump.find("span_9"), std::string::npos);
}

TEST_F(FlightRecorderTest, DumpNowWithoutInstallFails) {
  FlightRecorder::Uninstall();
  EXPECT_FALSE(FlightRecorder::installed());
  EXPECT_FALSE(FlightRecorder::DumpNow("nothing installed"));
}

TEST_F(FlightRecorderTest, CheckFailureWritesDump) {
  const std::string path =
      ::testing::TempDir() + "/aer_flight_check.json";
  std::remove(path.c_str());
  EXPECT_DEATH(
      {
        MetricsRegistry metrics;
        metrics.GetCounter("aer_test_total").Inc(9);
        FlightRecorder::Install({.path = path}, nullptr, &metrics, nullptr);
        AER_CHECK(false) << "flight recorder check probe";
      },
      "flight recorder check probe");
  const std::string dump = ReadFileOrEmpty(path);
  std::remove(path.c_str());
  EXPECT_NE(dump.find("check_failure"), std::string::npos);
  EXPECT_NE(dump.find("flight recorder check probe"), std::string::npos);
  EXPECT_NE(dump.find("aer_test_total"), std::string::npos);
}

TEST_F(FlightRecorderTest, FatalSignalWritesDumpAndRedelivers) {
  const std::string path =
      ::testing::TempDir() + "/aer_flight_signal.json";
  std::remove(path.c_str());
  EXPECT_DEATH(
      {
        FlightRecorder::Install({.path = path}, nullptr, nullptr, nullptr);
        std::raise(SIGABRT);
      },
      "");
  const std::string dump = ReadFileOrEmpty(path);
  std::remove(path.c_str());
  EXPECT_NE(dump.find("\"signal\""), std::string::npos);
  EXPECT_NE(dump.find("SIGABRT"), std::string::npos);
}

}  // namespace
}  // namespace aer::obs
