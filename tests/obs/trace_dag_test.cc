// BuildTraceDag units: the frozen positional parent rules, orphan marking
// for loss events, global-event separation, acyclicity by construction,
// and the deterministic renderings (FormatTraceDag text, TraceDagToJson,
// ChromeTraceJson) that back the aerctl golden surface.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/chrome_trace.h"
#include "obs/critical_path.h"
#include "obs/trace_collector.h"
#include "obs/trace_context.h"
#include "obs/trace_dag.h"

namespace aer::obs {
namespace {

TraceRecord Rec(TraceId id, SimTime time, TraceEventKind kind,
                std::int64_t machine, int attempt = -1) {
  TraceRecord r;
  r.trace_id = id;
  r.time = time;
  r.kind = kind;
  r.machine = machine;
  r.attempt = attempt;
  return r;
}

// A cured two-attempt process: attempt 0 is dispatched, executes, and its
// result reports failure; attempt 1 cures.
std::vector<TraceRecord> TwoAttemptProcess(TraceId id) {
  return {
      Rec(id, 100, TraceEventKind::kIncident, 4),
      Rec(id, 102, TraceEventKind::kSymptom, 4),
      Rec(id, 105, TraceEventKind::kDispatch, 4, 0),
      Rec(id, 106, TraceEventKind::kActionStart, 4, 0),
      Rec(id, 116, TraceEventKind::kActionDone, 4, 0),
      Rec(id, 117, TraceEventKind::kResultDeliver, 4, 0),
      Rec(id, 120, TraceEventKind::kDispatch, 4, 1),
      Rec(id, 121, TraceEventKind::kActionStart, 4, 1),
      Rec(id, 131, TraceEventKind::kActionDone, 4, 1),
      Rec(id, 131, TraceEventKind::kCure, 4),
      Rec(id, 132, TraceEventKind::kResultDeliver, 4, 1),
  };
}

TEST(TraceDagTest, ParentRulesFollowTheCausalChain) {
  const TraceId id = MakeTraceId(9, 4, 1);
  const TraceDag dag = BuildTraceDag(TwoAttemptProcess(id));
  ASSERT_EQ(dag.processes.size(), 1u);
  const TraceProcess& p = dag.processes[0];
  EXPECT_EQ(p.trace_id, id);
  EXPECT_EQ(p.machine, 4);
  EXPECT_TRUE(p.cured);
  EXPECT_EQ(p.start, 100);
  EXPECT_EQ(p.end, 131);
  ASSERT_EQ(p.nodes.size(), 11u);
  // [0] incident is the root.
  EXPECT_EQ(p.nodes[0].parent, -1);
  // [1] symptom hangs off the incident.
  EXPECT_EQ(p.nodes[1].parent, 0);
  // [2] dispatch 0 follows the admitted symptom.
  EXPECT_EQ(p.nodes[2].parent, 1);
  // [3] action_start follows its own attempt's dispatch.
  EXPECT_EQ(p.nodes[3].parent, 2);
  // [4] action_done follows its action_start; [5] result follows the done.
  EXPECT_EQ(p.nodes[4].parent, 3);
  EXPECT_EQ(p.nodes[5].parent, 4);
  // [6] dispatch 1 follows the previous attempt's delivered result — not
  // the symptom.
  EXPECT_EQ(p.nodes[6].parent, 5);
  // [7..8] attempt-1 execution chain.
  EXPECT_EQ(p.nodes[7].parent, 6);
  EXPECT_EQ(p.nodes[8].parent, 7);
  // [9] cure follows the latest action_done.
  EXPECT_EQ(p.nodes[9].parent, 8);
  // [10] the straggling attempt-1 result still matches its own done.
  EXPECT_EQ(p.nodes[10].parent, 8);
  // Acyclic by construction: parent < index everywhere, no orphans here.
  for (std::size_t i = 0; i < p.nodes.size(); ++i) {
    EXPECT_LT(p.nodes[i].parent, static_cast<int>(i));
    EXPECT_FALSE(p.nodes[i].orphan);
  }
}

TEST(TraceDagTest, LossEventsAreOrphansAndChainsResumeEarlier) {
  const TraceId id = MakeTraceId(9, 2, 1);
  const TraceDag dag = BuildTraceDag({
      Rec(id, 10, TraceEventKind::kIncident, 2),
      Rec(id, 12, TraceEventKind::kSymptom, 2),
      Rec(id, 15, TraceEventKind::kDispatch, 2, 0),
      Rec(id, 16, TraceEventKind::kDispatchDrop, 2, 0),  // lost on the wire
      Rec(id, 40, TraceEventKind::kTimeout, 2, 0),
      Rec(id, 42, TraceEventKind::kDispatch, 2, 1),
      Rec(id, 43, TraceEventKind::kActionStart, 2, 1),
      Rec(id, 53, TraceEventKind::kActionDone, 2, 1),
      Rec(id, 53, TraceEventKind::kCure, 2),
      Rec(id, 54, TraceEventKind::kResultLost, 2, 1),  // issuer gone
  });
  ASSERT_EQ(dag.processes.size(), 1u);
  const auto& nodes = dag.processes[0].nodes;
  ASSERT_EQ(nodes.size(), 10u);
  // The drop is an orphan hanging off its dispatch.
  EXPECT_TRUE(nodes[3].orphan);
  EXPECT_EQ(nodes[3].parent, 2);
  // The timeout also points at the dispatch, not the drop: the causal
  // chain resumes from the last non-loss node.
  EXPECT_EQ(nodes[4].parent, 2);
  // The retry follows the timeout decision.
  EXPECT_EQ(nodes[5].parent, 4);
  // The lost result is an orphan off its attempt's done.
  EXPECT_TRUE(nodes[9].orphan);
  EXPECT_EQ(nodes[9].parent, 7);
}

TEST(TraceDagTest, GlobalEventsAndMultipleTracesSeparateCleanly) {
  const TraceId a = MakeTraceId(1, 0, 1);
  const TraceId b = MakeTraceId(1, 5, 1);
  TraceRecord elected = Rec(kNoTrace, 8, TraceEventKind::kLeaderElected, -1);
  elected.node = 0;
  const TraceDag dag = BuildTraceDag({
      elected,
      Rec(a, 10, TraceEventKind::kIncident, 0),
      Rec(b, 11, TraceEventKind::kIncident, 5),
      Rec(a, 12, TraceEventKind::kSymptom, 0),
      Rec(b, 13, TraceEventKind::kSymptom, 5),
  });
  ASSERT_EQ(dag.processes.size(), 2u);
  // Processes ordered by first appearance; records routed by trace id.
  EXPECT_EQ(dag.processes[0].trace_id, a);
  EXPECT_EQ(dag.processes[1].trace_id, b);
  EXPECT_EQ(dag.processes[0].nodes.size(), 2u);
  EXPECT_EQ(dag.processes[1].nodes.size(), 2u);
  ASSERT_EQ(dag.global_events.size(), 1u);
  EXPECT_EQ(dag.global_events[0].kind, TraceEventKind::kLeaderElected);
}

TEST(TraceDagTest, RenderingsAreDeterministic) {
  const TraceId id = MakeTraceId(9, 4, 1);
  const auto records = TwoAttemptProcess(id);
  const TraceDag dag = BuildTraceDag(records);
  const auto paths = AnalyzeCriticalPaths(records);
  const std::string text = FormatTraceDag(dag);
  EXPECT_EQ(text, FormatTraceDag(BuildTraceDag(records)));
  // The text rendering names every node and marks the root.
  EXPECT_NE(text.find("incident root"), std::string::npos);
  EXPECT_NE(text.find("cured=1"), std::string::npos);
  const std::string json = TraceDagToJson(dag).ToString();
  EXPECT_EQ(json, TraceDagToJson(BuildTraceDag(records)).ToString());
  EXPECT_NE(json.find("\"processes\""), std::string::npos);
  const std::string chrome = ChromeTraceJson(dag, paths);
  EXPECT_EQ(chrome, ChromeTraceJson(dag, paths));
  // Trace Event Format essentials: the event array, complete ("X") stage
  // events, and instant ("i") record events.
  EXPECT_NE(chrome.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(chrome.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(chrome.find("\"ph\": \"i\""), std::string::npos);
}

}  // namespace
}  // namespace aer::obs
