#include "sim/cost_model.h"

#include <gtest/gtest.h>

#include "cluster/fault_catalog.h"

namespace aer {
namespace {

// Process with one symptom and the given (action, cost, cured) attempts.
RecoveryProcess MakeProcess(SymptomId symptom,
                            std::vector<ActionAttempt> attempts) {
  std::vector<SymptomEvent> symptoms = {{0, symptom}};
  SimTime end = attempts.back().start + attempts.back().cost;
  return RecoveryProcess(0, std::move(symptoms), std::move(attempts), end);
}

std::vector<RecoveryProcess> SampleProcesses() {
  std::vector<RecoveryProcess> out;
  // Type symptom 0: two processes.
  out.push_back(MakeProcess(
      0, {{RepairAction::kTryNop, 50, 100, false},
          {RepairAction::kReboot, 150, 300, true}}));
  out.push_back(MakeProcess(
      0, {{RepairAction::kTryNop, 60, 200, false},
          {RepairAction::kReboot, 260, 500, true}}));
  // Type symptom 1: one process using REIMAGE.
  out.push_back(MakeProcess(1, {{RepairAction::kReimage, 30, 900, true}}));
  return out;
}

ErrorTypeCatalog MakeCatalog(const std::vector<RecoveryProcess>& processes) {
  return ErrorTypeCatalog(processes, 40);
}

TEST(TypeCostModelTest, AccumulatesSuccessAndFailSeparately) {
  const auto processes = SampleProcesses();
  TypeCostModel model;
  model.AddProcess(processes[0]);
  model.AddProcess(processes[1]);
  EXPECT_EQ(model.process_count(), 2);
  EXPECT_EQ(model.stats(RepairAction::kTryNop).fail.count(), 2);
  EXPECT_EQ(model.stats(RepairAction::kTryNop).success.count(), 0);
  EXPECT_DOUBLE_EQ(model.stats(RepairAction::kTryNop).fail.mean(), 150.0);
  EXPECT_DOUBLE_EQ(model.stats(RepairAction::kReboot).success.mean(), 400.0);
  EXPECT_TRUE(model.Observed(RepairAction::kTryNop));
  EXPECT_FALSE(model.Observed(RepairAction::kRma));
  EXPECT_DOUBLE_EQ(model.detection_delay().mean(), 55.0);
}

TEST(CostEstimatorTest, TypeSpecificEstimates) {
  const auto processes = SampleProcesses();
  const auto catalog = MakeCatalog(processes);
  const CostEstimator estimator(processes, catalog);

  const ErrorTypeId t0 = catalog.ClassifySymptom(0);
  EXPECT_DOUBLE_EQ(
      estimator.EstimateCost(t0, RepairAction::kReboot, /*success=*/true),
      400.0);
  EXPECT_DOUBLE_EQ(
      estimator.EstimateCost(t0, RepairAction::kTryNop, /*success=*/false),
      150.0);
}

TEST(CostEstimatorTest, OutcomeFallbackWithinType) {
  // TRYNOP never succeeded for type 0; the success estimate falls back to
  // its failure average rather than jumping to the global model.
  const auto processes = SampleProcesses();
  const auto catalog = MakeCatalog(processes);
  const CostEstimator estimator(processes, catalog);
  const ErrorTypeId t0 = catalog.ClassifySymptom(0);
  EXPECT_DOUBLE_EQ(
      estimator.EstimateCost(t0, RepairAction::kTryNop, /*success=*/true),
      150.0);
}

TEST(CostEstimatorTest, GlobalFallbackAcrossTypes) {
  // REIMAGE was never observed for type 0 but was for type 1: the global
  // model supplies the estimate.
  const auto processes = SampleProcesses();
  const auto catalog = MakeCatalog(processes);
  const CostEstimator estimator(processes, catalog);
  const ErrorTypeId t0 = catalog.ClassifySymptom(0);
  EXPECT_FALSE(estimator.ObservedForType(t0, RepairAction::kReimage));
  EXPECT_DOUBLE_EQ(
      estimator.EstimateCost(t0, RepairAction::kReimage, /*success=*/true),
      900.0);
}

TEST(CostEstimatorTest, PriorFallbackWhenNeverObservedAnywhere) {
  const auto processes = SampleProcesses();
  const auto catalog = MakeCatalog(processes);
  const CostEstimator estimator(processes, catalog);
  const ErrorTypeId t0 = catalog.ClassifySymptom(0);
  // RMA appears nowhere; the estimate comes from the documented priors.
  const ActionDurationDefaults defaults;
  EXPECT_DOUBLE_EQ(
      estimator.EstimateCost(t0, RepairAction::kRma, /*success=*/true),
      defaults.rma_s);
}

TEST(CostEstimatorTest, ObservedActionsAscendingStrength) {
  const auto processes = SampleProcesses();
  const auto catalog = MakeCatalog(processes);
  const CostEstimator estimator(processes, catalog);
  const ErrorTypeId t0 = catalog.ClassifySymptom(0);
  EXPECT_EQ(estimator.ObservedActions(t0),
            (std::vector<RepairAction>{RepairAction::kTryNop,
                                       RepairAction::kReboot}));
  const ErrorTypeId t1 = catalog.ClassifySymptom(1);
  EXPECT_EQ(estimator.ObservedActions(t1),
            (std::vector<RepairAction>{RepairAction::kReimage}));
}

TEST(CostEstimatorTest, UnknownTypeProcessesFeedGlobalOnly) {
  auto processes = SampleProcesses();
  const ErrorTypeCatalog catalog(
      std::span<const RecoveryProcess>(processes.data(), 2), 40);
  // Catalog only knows symptom 0; the symptom-1 process still contributes to
  // the global model.
  const CostEstimator estimator(processes, catalog);
  EXPECT_EQ(estimator.num_types(), 1u);
  EXPECT_TRUE(estimator.global_model().Observed(RepairAction::kReimage));
  EXPECT_DOUBLE_EQ(
      estimator.EstimateCost(kInvalidErrorType, RepairAction::kReimage, true),
      900.0);
}

}  // namespace
}  // namespace aer
