#include "sim/replay.h"

#include <gtest/gtest.h>

#include "cluster/trace.h"
#include "log/recovery_process.h"

namespace aer {
namespace {

RecoveryProcess MakeProcess(std::vector<ActionAttempt> attempts,
                            SimTime detection_delay = 40) {
  std::vector<SymptomEvent> symptoms = {{0, 0}};
  // First attempt starts after the detection delay.
  attempts.front().start = detection_delay;
  const ActionAttempt& last = attempts.back();
  return RecoveryProcess(0, std::move(symptoms), std::move(attempts),
                         last.start + last.cost);
}

struct Fixture {
  std::vector<RecoveryProcess> processes;
  ErrorTypeCatalog catalog;
  CostEstimator estimator;

  explicit Fixture(std::vector<RecoveryProcess> p)
      : processes(std::move(p)),
        catalog(processes, 40),
        estimator(processes, catalog) {}
};

TEST(ProcessReplayTest, SelfReplayReproducesDowntimeExactly) {
  Fixture fx({MakeProcess({{RepairAction::kTryNop, 40, 111, false},
                           {RepairAction::kReboot, 151, 222, false},
                           {RepairAction::kReboot, 373, 333, true}})});
  const RecoveryProcess& p = fx.processes[0];
  ProcessReplay replay(p, fx.catalog.Classify(p), fx.estimator);
  EXPECT_FALSE(replay.Step(RepairAction::kTryNop).cured);
  EXPECT_FALSE(replay.Step(RepairAction::kReboot).cured);
  const auto last = replay.Step(RepairAction::kReboot);
  EXPECT_TRUE(last.cured);
  EXPECT_DOUBLE_EQ(last.cost, 333.0);
  EXPECT_DOUBLE_EQ(replay.total_cost(), static_cast<double>(p.downtime()));
}

TEST(ProcessReplayTest, StrongerActionCuresImmediately) {
  Fixture fx({MakeProcess({{RepairAction::kTryNop, 40, 100, false},
                           {RepairAction::kReboot, 140, 200, true}})});
  const RecoveryProcess& p = fx.processes[0];
  ProcessReplay replay(p, fx.catalog.Classify(p), fx.estimator);
  const auto step = replay.Step(RepairAction::kReimage);
  EXPECT_TRUE(step.cured);
  EXPECT_EQ(replay.steps(), 1);
}

TEST(ProcessReplayTest, WeakerActionsNeverCure) {
  Fixture fx({MakeProcess({{RepairAction::kTryNop, 40, 100, false},
                           {RepairAction::kReimage, 140, 900, true}})});
  const RecoveryProcess& p = fx.processes[0];
  ProcessReplay replay(p, fx.catalog.Classify(p), fx.estimator);
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(replay.Step(RepairAction::kReboot).cured);
  }
}

TEST(ProcessReplayTest, RmaIsAbsorbing) {
  Fixture fx({MakeProcess({{RepairAction::kReimage, 40, 900, true}})});
  const RecoveryProcess& p = fx.processes[0];
  ProcessReplay replay(p, fx.catalog.Classify(p), fx.estimator);
  EXPECT_TRUE(replay.Step(RepairAction::kRma).cured);
}

TEST(ProcessReplayTest, OccurrenceCostsConsumedInOrder) {
  Fixture fx({MakeProcess({{RepairAction::kReboot, 40, 111, false},
                           {RepairAction::kReboot, 151, 222, true}})});
  const RecoveryProcess& p = fx.processes[0];
  ProcessReplay replay(p, fx.catalog.Classify(p), fx.estimator);
  EXPECT_DOUBLE_EQ(replay.Step(RepairAction::kReboot).cost, 111.0);
  EXPECT_DOUBLE_EQ(replay.Step(RepairAction::kReboot).cost, 222.0);
}

TEST(ProcessReplayTest, ExhaustedOccurrencesUseAverages) {
  // Two processes of the same type give REBOOT a fail average of 150.
  Fixture fx({MakeProcess({{RepairAction::kReboot, 40, 100, false},
                           {RepairAction::kReimage, 140, 900, true}}),
              MakeProcess({{RepairAction::kReboot, 40, 200, false},
                           {RepairAction::kReimage, 240, 800, true}})});
  const RecoveryProcess& p = fx.processes[0];
  ProcessReplay replay(p, fx.catalog.Classify(p), fx.estimator);
  EXPECT_DOUBLE_EQ(replay.Step(RepairAction::kReboot).cost, 100.0);  // actual
  // Second REBOOT is not in this process: average failing cost (150).
  EXPECT_DOUBLE_EQ(replay.Step(RepairAction::kReboot).cost, 150.0);
}

TEST(ProcessReplayTest, ResetRestartsCleanly) {
  Fixture fx({MakeProcess({{RepairAction::kReboot, 40, 100, true}})});
  const RecoveryProcess& p = fx.processes[0];
  ProcessReplay replay(p, fx.catalog.Classify(p), fx.estimator);
  replay.Step(RepairAction::kReboot);
  EXPECT_TRUE(replay.cured());
  replay.Reset();
  EXPECT_FALSE(replay.cured());
  EXPECT_EQ(replay.steps(), 0);
  EXPECT_DOUBLE_EQ(replay.total_cost(),
                   static_cast<double>(p.detection_delay()));
  EXPECT_TRUE(replay.Step(RepairAction::kReboot).cured);
}

TEST(ProcessReplayTest, TotalCostIncludesDetectionDelay) {
  Fixture fx({MakeProcess({{RepairAction::kReboot, 40, 100, true}},
                          /*detection_delay=*/70)});
  const RecoveryProcess& p = fx.processes[0];
  ProcessReplay replay(p, fx.catalog.Classify(p), fx.estimator);
  EXPECT_DOUBLE_EQ(replay.total_cost(), 70.0);
  replay.Step(RepairAction::kReboot);
  EXPECT_DOUBLE_EQ(replay.total_cost(), 170.0);
}

// The key platform property on real generated data: replaying each process's
// own action sequence must reproduce its logged downtime exactly and cure at
// exactly the last step.
TEST(ProcessReplayPropertyTest, SelfReplayIdentityOnGeneratedTrace) {
  TraceConfig config = TraceConfigForScale("small");
  config.sim.num_machines = 100;
  config.sim.duration = 40 * kDay;
  const TraceDataset dataset = GenerateTrace(config);
  const auto segmented = SegmentIntoProcesses(dataset.result.log);
  const ErrorTypeCatalog catalog(segmented.processes, 1000);
  const CostEstimator estimator(segmented.processes, catalog);

  ASSERT_GT(segmented.processes.size(), 100u);
  for (const RecoveryProcess& p : segmented.processes) {
    if (p.attempts().empty()) continue;
    ProcessReplay replay(p, catalog.Classify(p), estimator);
    for (std::size_t i = 0; i < p.attempts().size(); ++i) {
      ASSERT_FALSE(replay.cured());
      const auto step = replay.Step(p.attempts()[i].action);
      ASSERT_DOUBLE_EQ(step.cost,
                       static_cast<double>(p.attempts()[i].cost));
      ASSERT_EQ(step.cured, i + 1 == p.attempts().size())
          << "self-replay must cure exactly at the final logged action";
    }
    ASSERT_DOUBLE_EQ(replay.total_cost(), static_cast<double>(p.downtime()));
  }
}

}  // namespace
}  // namespace aer
