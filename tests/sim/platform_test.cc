#include "sim/platform.h"

#include <gtest/gtest.h>

#include "cluster/trace.h"
#include "cluster/user_policy.h"
#include "mining/error_type.h"

namespace aer {
namespace {

struct Pipeline {
  TraceDataset dataset;
  std::vector<RecoveryProcess> processes;
  ErrorTypeCatalog catalog;

  explicit Pipeline(TraceConfig config)
      : dataset(GenerateTrace(config)),
        processes(SegmentIntoProcesses(dataset.result.log).processes),
        catalog(processes, 40) {}
};

TraceConfig SmallTrace() {
  TraceConfig config = TraceConfigForScale("small");
  config.sim.num_machines = 200;
  config.sim.duration = 60 * kDay;
  return config;
}

TEST(PlatformTest, ExactValidationWithoutHiddenState) {
  // With the recurring-failure shortcut disabled, the offline replay of the
  // user-defined policy replays the log's exact action sequences, so the
  // estimated cost equals the actual downtime for every process.
  TraceConfig config = SmallTrace();
  config.escalation.recurring_failure_window = 0;  // no hidden machine state
  Pipeline pipe(config);
  const SimulationPlatform platform(pipe.processes, pipe.catalog,
                                    pipe.dataset.result.log.symptoms());
  UserDefinedPolicy policy(config.escalation);
  for (const auto& row :
       platform.ValidateAgainstLog(pipe.processes, policy)) {
    if (row.process_count == 0) continue;
    EXPECT_NEAR(row.ratio, 1.0, 1e-9) << "type " << row.type;
  }
}

TEST(PlatformTest, ValidationWithHiddenStateIsConservativeAndTight) {
  // Figure 7: with the online policy's hidden machine history, the offline
  // replay deviates, but stays small and errs on the conservative side.
  Pipeline pipe(SmallTrace());
  const SimulationPlatform platform(pipe.processes, pipe.catalog,
                                    pipe.dataset.result.log.symptoms());
  UserDefinedPolicy policy;
  double worst = 0.0;
  for (const auto& row :
       platform.ValidateAgainstLog(pipe.processes, policy)) {
    if (row.process_count < 20) continue;  // skip tiny-sample types
    EXPECT_GE(row.ratio, 0.97) << "type " << row.type;
    worst = std::max(worst, std::abs(row.ratio - 1.0));
  }
  EXPECT_LT(worst, 0.08);
}

TEST(PlatformTest, ReplayPolicyEnforcesNCap) {
  Pipeline pipe(SmallTrace());
  const int cap = 4;
  const SimulationPlatform platform(pipe.processes, pipe.catalog,
                                    pipe.dataset.result.log.symptoms(), cap);

  // A policy that insists on a useless action forever.
  class StubbornPolicy final : public RecoveryPolicy {
   public:
    RepairAction ChooseAction(const RecoveryContext&) override {
      return RepairAction::kTryNop;
    }
    std::string_view name() const override { return "stubborn"; }
  } stubborn;

  // Find a process TRYNOP cannot cure.
  for (const RecoveryProcess& p : pipe.processes) {
    if (p.attempts().empty()) continue;
    if (pipe.catalog.Classify(p) == kInvalidErrorType) continue;
    if (p.final_action() == RepairAction::kTryNop) continue;
    const auto outcome = platform.ReplayPolicy(p, stubborn);
    EXPECT_EQ(outcome.steps, cap);
    EXPECT_TRUE(outcome.forced_manual);
    return;  // one is enough
  }
  FAIL() << "no suitable process found";
}

TEST(PlatformTest, ReplayCostsArePositiveAndFinite) {
  Pipeline pipe(SmallTrace());
  const SimulationPlatform platform(pipe.processes, pipe.catalog,
                                    pipe.dataset.result.log.symptoms());
  UserDefinedPolicy policy;
  int checked = 0;
  for (const RecoveryProcess& p : pipe.processes) {
    if (pipe.catalog.Classify(p) == kInvalidErrorType) continue;
    const auto outcome = platform.ReplayPolicy(p, policy);
    ASSERT_GT(outcome.cost, 0.0);
    ASSERT_GE(outcome.steps, 1);
    if (++checked >= 500) break;
  }
  EXPECT_GE(checked, 100);
}

TEST(PlatformTest, ValidationRowsCoverAllCatalogTypes) {
  Pipeline pipe(SmallTrace());
  const SimulationPlatform platform(pipe.processes, pipe.catalog,
                                    pipe.dataset.result.log.symptoms());
  UserDefinedPolicy policy;
  const auto rows = platform.ValidateAgainstLog(pipe.processes, policy);
  EXPECT_EQ(rows.size(), pipe.catalog.num_types());
  std::int64_t total = 0;
  for (const auto& row : rows) total += row.process_count;
  // All classified processes are accounted for.
  std::int64_t classified = 0;
  for (const RecoveryProcess& p : pipe.processes) {
    if (pipe.catalog.Classify(p) != kInvalidErrorType) ++classified;
  }
  EXPECT_EQ(total, classified);
}

}  // namespace
}  // namespace aer
