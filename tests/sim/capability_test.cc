#include "sim/capability.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "sim/hypotheses.h"

namespace aer {
namespace {

constexpr auto Y = RepairAction::kTryNop;
constexpr auto B = RepairAction::kReboot;
constexpr auto I = RepairAction::kReimage;
constexpr auto A = RepairAction::kRma;

TEST(CapabilityModelTest, TotalOrderMatchesStrength) {
  const CapabilityModel& model = CapabilityModel::TotalOrder();
  for (RepairAction e : kAllActions) {
    for (RepairAction r : kAllActions) {
      EXPECT_EQ(model.Covers(e, r), AtLeastAsStrong(e, r));
    }
  }
}

TEST(CapabilityModelTest, IdentityOnlyCoversSelfAndRmaCoversAll) {
  const CapabilityModel& model = CapabilityModel::IdentityOnly();
  EXPECT_TRUE(model.Covers(B, B));
  EXPECT_FALSE(model.Covers(I, B));
  EXPECT_FALSE(model.Covers(B, Y));
  for (RepairAction r : kAllActions) {
    EXPECT_TRUE(model.Covers(A, r));
  }
}

TEST(CapabilityModelTest, FromMatrixCustomRelation) {
  // REIMAGE covers REBOOT's effects but REBOOT does not cover TRYNOP's
  // observation role in this (contrived) relation.
  std::array<std::array<bool, kNumActions>, kNumActions> covers = {};
  for (int a = 0; a < kNumActions; ++a) {
    covers[static_cast<std::size_t>(a)][static_cast<std::size_t>(a)] = true;
    covers[static_cast<std::size_t>(ActionIndex(A))]
          [static_cast<std::size_t>(a)] = true;
  }
  covers[static_cast<std::size_t>(ActionIndex(I))]
        [static_cast<std::size_t>(ActionIndex(B))] = true;
  const CapabilityModel model = CapabilityModel::FromMatrix(covers);
  EXPECT_TRUE(model.Covers(I, B));
  EXPECT_FALSE(model.Covers(B, Y));
}

TEST(CapabilityModelDeathTest, NonReflexiveAborts) {
  std::array<std::array<bool, kNumActions>, kNumActions> covers = {};
  for (int a = 0; a < kNumActions; ++a) {
    covers[static_cast<std::size_t>(ActionIndex(A))]
          [static_cast<std::size_t>(a)] = true;
  }
  // TRYNOP does not cover itself.
  covers[0][0] = false;
  covers[1][1] = covers[2][2] = true;
  EXPECT_DEATH(CapabilityModel::FromMatrix(covers), "AER_CHECK");
}

TEST(CapabilityModelDeathTest, RmaMustCoverEverything) {
  std::array<std::array<bool, kNumActions>, kNumActions> covers = {};
  for (int a = 0; a < kNumActions; ++a) {
    covers[static_cast<std::size_t>(a)][static_cast<std::size_t>(a)] = true;
  }
  // RMA not covering REIMAGE.
  covers[3][0] = covers[3][1] = true;
  EXPECT_DEATH(CapabilityModel::FromMatrix(covers), "AER_CHECK");
}

TEST(CoversRequirementsUnderTest, AgreesWithTotalOrderFastPath) {
  Rng rng(17);
  const CapabilityModel& model = CapabilityModel::TotalOrder();
  for (int trial = 0; trial < 3000; ++trial) {
    std::vector<RepairAction> exec(rng.NextBounded(5));
    std::vector<RepairAction> req(rng.NextBounded(4));
    for (auto& a : exec) {
      a = ActionFromIndex(static_cast<int>(rng.NextBounded(kNumActions)));
    }
    for (auto& a : req) {
      a = ActionFromIndex(static_cast<int>(rng.NextBounded(kNumActions)));
    }
    ASSERT_EQ(CoversRequirementsUnder(exec, req, model),
              CoversRequirements(exec, req))
        << "trial " << trial;
  }
}

TEST(CoversRequirementsUnderTest, MatchingNeedsDistinctExecutions) {
  const CapabilityModel& model = CapabilityModel::IdentityOnly();
  const RepairAction req[] = {B, B};
  const RepairAction one[] = {B, I};  // I does not substitute under identity
  const RepairAction two[] = {B, B};
  EXPECT_FALSE(CoversRequirementsUnder(one, req, model));
  EXPECT_TRUE(CoversRequirementsUnder(two, req, model));
}

TEST(CoversRequirementsUnderTest, AugmentingPathsFindNonGreedyMatching) {
  // Relation: I covers {I, B}; B covers {B}; A covers all; Y covers {Y}.
  // Requirements {I, B} with executions {I, B}: the naive "match strongest
  // first to strongest" works, but {B, I} vs requirements {B, B}... build a
  // case where a greedy assignment fails and augmentation is needed:
  // exec {I, B}, req {B, B}: I->B, B->B works (both covered).
  std::array<std::array<bool, kNumActions>, kNumActions> covers = {};
  for (int a = 0; a < kNumActions; ++a) {
    covers[static_cast<std::size_t>(a)][static_cast<std::size_t>(a)] = true;
    covers[3][static_cast<std::size_t>(a)] = true;
  }
  covers[2][1] = true;  // I covers B
  const CapabilityModel model = CapabilityModel::FromMatrix(covers);
  const RepairAction exec[] = {I, B};
  const RepairAction req_bb[] = {B, B};
  EXPECT_TRUE(CoversRequirementsUnder(exec, req_bb, model));
  const RepairAction req_ib[] = {I, B};
  EXPECT_TRUE(CoversRequirementsUnder(exec, req_ib, model));
  const RepairAction req_ii[] = {I, I};
  EXPECT_FALSE(CoversRequirementsUnder(exec, req_ii, model));
}

// Property: against arbitrary random relations, the matcher agrees with
// brute-force permutation search.
TEST(CoversRequirementsUnderPropertyTest, AgreesWithBruteForce) {
  Rng rng(23);
  for (int trial = 0; trial < 1500; ++trial) {
    // Random valid relation.
    std::array<std::array<bool, kNumActions>, kNumActions> covers = {};
    for (int e = 0; e < kNumActions; ++e) {
      for (int r = 0; r < kNumActions; ++r) {
        covers[static_cast<std::size_t>(e)][static_cast<std::size_t>(r)] =
            rng.NextBool(0.4);
      }
      covers[static_cast<std::size_t>(e)][static_cast<std::size_t>(e)] = true;
    }
    // Force the RMA row last so the random fill cannot clobber it.
    for (int r = 0; r < kNumActions; ++r) {
      covers[3][static_cast<std::size_t>(r)] = true;
    }
    const CapabilityModel model = CapabilityModel::FromMatrix(covers);

    std::vector<RepairAction> exec(rng.NextBounded(5));
    std::vector<RepairAction> req(rng.NextBounded(4));
    for (auto& a : exec) {
      a = ActionFromIndex(static_cast<int>(rng.NextBounded(kNumActions)));
    }
    for (auto& a : req) {
      a = ActionFromIndex(static_cast<int>(rng.NextBounded(kNumActions)));
    }

    bool expected = false;
    if (req.empty()) {
      expected = true;
    } else if (req.size() <= exec.size()) {
      std::vector<std::size_t> idx(exec.size());
      for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
      do {
        bool ok = true;
        for (std::size_t i = 0; i < req.size(); ++i) {
          if (!model.Covers(exec[idx[i]], req[i])) {
            ok = false;
            break;
          }
        }
        if (ok) {
          expected = true;
          break;
        }
      } while (std::next_permutation(idx.begin(), idx.end()));
    }
    ASSERT_EQ(CoversRequirementsUnder(exec, req, model), expected)
        << "trial " << trial;
  }
}

}  // namespace
}  // namespace aer
