#include "sim/hypotheses.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace aer {
namespace {

RecoveryProcess MakeProcess(std::vector<RepairAction> actions) {
  std::vector<SymptomEvent> symptoms = {{0, 0}};
  std::vector<ActionAttempt> attempts;
  SimTime t = 100;
  for (RepairAction a : actions) {
    attempts.push_back({a, t, 100, false});
    t += 100;
  }
  attempts.back().cured = true;
  return RecoveryProcess(0, std::move(symptoms), std::move(attempts), t);
}

TEST(CorrectActionsTest, SingleActionProcess) {
  const auto required = CorrectActions(MakeProcess({RepairAction::kReboot}));
  EXPECT_EQ(required, (std::vector<RepairAction>{RepairAction::kReboot}));
}

TEST(CorrectActionsTest, EscalationKeepsOnlyFinalStrength) {
  const auto required = CorrectActions(MakeProcess(
      {RepairAction::kTryNop, RepairAction::kReboot, RepairAction::kReimage}));
  EXPECT_EQ(required, (std::vector<RepairAction>{RepairAction::kReimage}));
}

TEST(CorrectActionsTest, RepeatedFinalStrengthIsMultiset) {
  const auto required = CorrectActions(MakeProcess(
      {RepairAction::kTryNop, RepairAction::kReboot, RepairAction::kReboot}));
  EXPECT_EQ(required, (std::vector<RepairAction>{RepairAction::kReboot,
                                                 RepairAction::kReboot}));
}

TEST(CorrectActionsTest, StrongerThanLastIsIncluded) {
  // Non-monotone log: REIMAGE failed, then a REBOOT cured. Both count.
  const auto required = CorrectActions(
      MakeProcess({RepairAction::kReimage, RepairAction::kReboot}));
  EXPECT_EQ(required, (std::vector<RepairAction>{RepairAction::kReimage,
                                                 RepairAction::kReboot}));
}

TEST(CoversRequirementsTest, ExactMatch) {
  const RepairAction req[] = {RepairAction::kReboot};
  const RepairAction exec[] = {RepairAction::kReboot};
  EXPECT_TRUE(CoversRequirements(exec, req));
}

TEST(CoversRequirementsTest, StrongerReplacesWeaker) {
  const RepairAction req[] = {RepairAction::kReboot};
  const RepairAction exec[] = {RepairAction::kReimage};
  EXPECT_TRUE(CoversRequirements(exec, req));
}

TEST(CoversRequirementsTest, WeakerDoesNotReplace) {
  const RepairAction req[] = {RepairAction::kReimage};
  const RepairAction exec[] = {RepairAction::kReboot, RepairAction::kReboot,
                               RepairAction::kTryNop};
  EXPECT_FALSE(CoversRequirements(exec, req));
}

TEST(CoversRequirementsTest, MultisetNeedsDistinctExecutions) {
  const RepairAction req[] = {RepairAction::kReboot, RepairAction::kReboot};
  const RepairAction one[] = {RepairAction::kReboot};
  const RepairAction two[] = {RepairAction::kReboot, RepairAction::kReboot};
  const RepairAction mixed[] = {RepairAction::kReimage,
                                RepairAction::kReboot};
  EXPECT_FALSE(CoversRequirements(one, req));
  EXPECT_TRUE(CoversRequirements(two, req));
  EXPECT_TRUE(CoversRequirements(mixed, req));
}

TEST(CoversRequirementsTest, EmptyRequirementsAlwaysCovered) {
  EXPECT_TRUE(CoversRequirements({}, {}));
  const RepairAction exec[] = {RepairAction::kTryNop};
  EXPECT_TRUE(CoversRequirements(exec, {}));
}

TEST(CoversRequirementsTest, EmptyExecutionCoversNothing) {
  const RepairAction req[] = {RepairAction::kTryNop};
  EXPECT_FALSE(CoversRequirements({}, req));
}

// Property: the greedy matcher agrees with brute-force bipartite matching on
// random small instances.
TEST(CoversRequirementsPropertyTest, AgreesWithBruteForce) {
  Rng rng(99);
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<RepairAction> exec(rng.NextBounded(5));
    std::vector<RepairAction> req(rng.NextBounded(4));
    for (auto& a : exec) {
      a = ActionFromIndex(static_cast<int>(rng.NextBounded(kNumActions)));
    }
    for (auto& a : req) {
      a = ActionFromIndex(static_cast<int>(rng.NextBounded(kNumActions)));
    }

    // Brute force: try all assignments of requirements to distinct executed
    // actions (sizes <= 4, so permutations are cheap).
    bool expected = false;
    if (req.empty()) {
      expected = true;
    } else if (req.size() <= exec.size()) {
      std::vector<std::size_t> idx(exec.size());
      for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
      std::sort(idx.begin(), idx.end());
      do {
        bool ok = true;
        for (std::size_t i = 0; i < req.size(); ++i) {
          if (!AtLeastAsStrong(exec[idx[i]], req[i])) {
            ok = false;
            break;
          }
        }
        if (ok) {
          expected = true;
          break;
        }
      } while (std::next_permutation(idx.begin(), idx.end()));
    }

    EXPECT_EQ(CoversRequirements(exec, req), expected)
        << "trial " << trial << " exec=" << exec.size()
        << " req=" << req.size();
  }
}

}  // namespace
}  // namespace aer
