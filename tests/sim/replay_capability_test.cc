// ProcessReplay and the evaluation pipeline under non-default capability
// models (hypothesis 2 off): the substitution rule changes which rollouts
// cure, end to end.
#include <gtest/gtest.h>

#include "eval/evaluator.h"
#include "sim/platform.h"

namespace aer {
namespace {

constexpr auto Y = RepairAction::kTryNop;
constexpr auto B = RepairAction::kReboot;
constexpr auto I = RepairAction::kReimage;
constexpr auto A = RepairAction::kRma;

RecoveryProcess MakeProcess(std::vector<std::pair<RepairAction, SimTime>>
                                attempts_with_costs,
                            SymptomId symptom, SimTime start) {
  std::vector<SymptomEvent> symptoms = {{start, symptom}};
  std::vector<ActionAttempt> attempts;
  SimTime t = start + 50;
  for (const auto& [action, cost] : attempts_with_costs) {
    attempts.push_back({action, t, cost, false});
    t += cost;
  }
  attempts.back().cured = true;
  return RecoveryProcess(0, std::move(symptoms), std::move(attempts), t);
}

struct Fixture {
  SymptomTable symptoms;
  std::vector<RecoveryProcess> processes;
  ErrorTypeCatalog catalog;
  CostEstimator estimator;

  Fixture()
      : processes({MakeProcess({{Y, 900}, {B, 2400}}, 0, 0),
                   MakeProcess({{Y, 900}, {B, 2400}}, 0, 100)}),
        catalog(processes, 40),
        estimator(processes, catalog) {
    symptoms.Intern("stuck");
  }
};

TEST(ReplayCapabilityTest, IdentityModelDisablesSubstitution) {
  Fixture fx;
  const RecoveryProcess& p = fx.processes[0];

  // Under the paper's total order, REIMAGE covers the {REBOOT} requirement.
  {
    ProcessReplay replay(p, 0, fx.estimator, CapabilityModel::TotalOrder());
    EXPECT_TRUE(replay.Step(I).cured);
  }
  // Under identity-only it does not: only REBOOT itself (or manual repair).
  {
    ProcessReplay replay(p, 0, fx.estimator,
                         CapabilityModel::IdentityOnly());
    EXPECT_FALSE(replay.Step(I).cured);
    EXPECT_TRUE(replay.Step(B).cured);
  }
  // Manual repair stays absorbing under every model.
  {
    ProcessReplay replay(p, 0, fx.estimator,
                         CapabilityModel::IdentityOnly());
    EXPECT_TRUE(replay.Step(A).cured);
  }
}

TEST(ReplayCapabilityTest, SelfReplayIdentityHoldsUnderAnyModel) {
  Fixture fx;
  for (const CapabilityModel* model :
       {&CapabilityModel::TotalOrder(), &CapabilityModel::IdentityOnly()}) {
    const RecoveryProcess& p = fx.processes[0];
    ProcessReplay replay(p, 0, fx.estimator, *model);
    EXPECT_FALSE(replay.Step(Y).cured);
    EXPECT_TRUE(replay.Step(B).cured);
    EXPECT_DOUBLE_EQ(replay.total_cost(), static_cast<double>(p.downtime()));
  }
}

TEST(ReplayCapabilityTest, EvaluatorHonoursThePlatformModel) {
  Fixture fx;
  TrainedPolicy policy;
  policy.AddType({"stuck", {I}});

  // Total order: the REIMAGE-first rule handles everything.
  {
    const SimulationPlatform platform(fx.processes, fx.catalog, fx.symptoms,
                                      20, CapabilityModel::TotalOrder());
    const PolicyEvaluator evaluator(platform);
    const EvalSummary summary =
        evaluator.EvaluateTrained(policy, fx.processes);
    EXPECT_EQ(summary.total_handled, 2);
  }
  // Identity-only: [I] cannot cure a {REBOOT}-requirement incident, so the
  // rule covers nothing.
  {
    const SimulationPlatform platform(fx.processes, fx.catalog, fx.symptoms,
                                      20, CapabilityModel::IdentityOnly());
    const PolicyEvaluator evaluator(platform);
    const EvalSummary summary =
        evaluator.EvaluateTrained(policy, fx.processes);
    EXPECT_EQ(summary.total_handled, 0);
    EXPECT_EQ(summary.total_processes, 2);
  }
}

}  // namespace
}  // namespace aer
