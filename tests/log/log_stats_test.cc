#include "log/log_stats.h"

#include <gtest/gtest.h>

namespace aer {
namespace {

// Builds a process with the given initial symptom, start and downtime.
RecoveryProcess MakeProcess(SymptomId symptom, SimTime start,
                            SimTime downtime, MachineId machine = 0) {
  std::vector<SymptomEvent> symptoms = {{start, symptom}};
  std::vector<ActionAttempt> attempts = {
      {RepairAction::kReboot, start + 10, downtime - 10, true}};
  return RecoveryProcess(machine, std::move(symptoms), std::move(attempts),
                         start + downtime);
}

std::vector<RecoveryProcess> SampleProcesses() {
  std::vector<RecoveryProcess> out;
  // Type 7: three processes, total downtime 600.
  out.push_back(MakeProcess(7, 0, 100));
  out.push_back(MakeProcess(7, 10, 200));
  out.push_back(MakeProcess(7, 20, 300));
  // Type 3: two processes, total downtime 1000.
  out.push_back(MakeProcess(3, 30, 400));
  out.push_back(MakeProcess(3, 40, 600));
  // Type 9: one process.
  out.push_back(MakeProcess(9, 50, 50));
  return out;
}

TEST(GroupByErrorTypeTest, GroupsIndices) {
  const auto processes = SampleProcesses();
  const auto groups = GroupByErrorType(processes);
  ASSERT_EQ(groups.size(), 3u);
  EXPECT_EQ(groups.at(7).size(), 3u);
  EXPECT_EQ(groups.at(3).size(), 2u);
  EXPECT_EQ(groups.at(9).size(), 1u);
}

TEST(RankErrorTypesTest, SortsByCountThenId) {
  const auto ranked = RankErrorTypes(SampleProcesses());
  ASSERT_EQ(ranked.size(), 3u);
  EXPECT_EQ(ranked[0].type, 7);
  EXPECT_EQ(ranked[0].process_count, 3);
  EXPECT_EQ(ranked[0].total_downtime, 600);
  EXPECT_EQ(ranked[1].type, 3);
  EXPECT_EQ(ranked[1].total_downtime, 1000);
  EXPECT_EQ(ranked[2].type, 9);
}

TEST(RankErrorTypesTest, TieBrokenBySymptomId) {
  std::vector<RecoveryProcess> processes;
  processes.push_back(MakeProcess(5, 0, 10));
  processes.push_back(MakeProcess(2, 5, 10));
  const auto ranked = RankErrorTypes(processes);
  ASSERT_EQ(ranked.size(), 2u);
  EXPECT_EQ(ranked[0].type, 2);
  EXPECT_EQ(ranked[1].type, 5);
}

TEST(SelectTopTypesTest, CoverageFraction) {
  const auto sel = SelectTopTypes(SampleProcesses(), 2);
  ASSERT_EQ(sel.types.size(), 2u);
  EXPECT_EQ(sel.types[0], 7);
  EXPECT_EQ(sel.types[1], 3);
  EXPECT_NEAR(sel.process_coverage, 5.0 / 6.0, 1e-12);
}

TEST(SelectTopTypesTest, KLargerThanTypesKeepsAll) {
  const auto sel = SelectTopTypes(SampleProcesses(), 100);
  EXPECT_EQ(sel.types.size(), 3u);
  EXPECT_DOUBLE_EQ(sel.process_coverage, 1.0);
}

TEST(SelectTopTypesTest, EmptyInput) {
  const auto sel = SelectTopTypes({}, 5);
  EXPECT_TRUE(sel.types.empty());
  EXPECT_EQ(sel.process_coverage, 0.0);
}

TEST(TotalDowntimeTest, Sums) {
  EXPECT_EQ(TotalDowntime(SampleProcesses()), 1650);
  EXPECT_EQ(TotalDowntime({}), 0);
}

}  // namespace
}  // namespace aer
