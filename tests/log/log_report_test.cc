#include "log/log_report.h"

#include <gtest/gtest.h>

namespace aer {
namespace {

RecoveryLog SampleLog() {
  RecoveryLog log;
  const SymptomId watchdog = log.symptoms().Intern("Watchdog");
  const SymptomId disk = log.symptoms().Intern("DiskIO");
  // Machine 1: two processes of type Watchdog.
  log.Append(LogEntry::Symptom(0, 1, watchdog));
  log.Append(LogEntry::Action(10, 1, RepairAction::kReboot));
  log.Append(LogEntry::Success(100, 1));
  log.Append(LogEntry::Symptom(1000, 1, watchdog));
  log.Append(LogEntry::Action(1010, 1, RepairAction::kReboot));
  log.Append(LogEntry::Success(1200, 1));
  // Machine 2: one DiskIO process.
  log.Append(LogEntry::Symptom(50, 2, disk));
  log.Append(LogEntry::Action(60, 2, RepairAction::kReimage));
  log.Append(LogEntry::Success(500, 2));
  // Machine 3: open (incomplete) process.
  log.Append(LogEntry::Symptom(2000, 3, disk));
  return log;
}

TEST(LogReportTest, CountsAndDowntime) {
  const RecoveryLog log = SampleLog();
  const LogReport report = BuildLogReport(log);
  EXPECT_EQ(report.entries, 10u);
  EXPECT_EQ(report.processes, 3u);
  EXPECT_EQ(report.incomplete, 1);
  EXPECT_EQ(report.orphan_entries, 0);
  EXPECT_EQ(report.total_downtime, 100 + 200 + 450);
  EXPECT_NEAR(report.mean_downtime_s, 750.0 / 3.0, 1e-9);
  EXPECT_EQ(report.error_types, 2u);
  ASSERT_EQ(report.top_types.size(), 2u);
  EXPECT_EQ(report.top_types[0].process_count, 2);  // Watchdog
}

TEST(LogReportTest, TopKTruncates) {
  const RecoveryLog log = SampleLog();
  const LogReport report = BuildLogReport(log, 1);
  ASSERT_EQ(report.top_types.size(), 1u);
  EXPECT_EQ(report.error_types, 2u);  // total count is unaffected
}

TEST(LogReportTest, FormatContainsKeyFacts) {
  const RecoveryLog log = SampleLog();
  const LogReport report = BuildLogReport(log);
  const std::string text = FormatLogReport(report, log.symptoms());
  EXPECT_NE(text.find("recovery processes:  3"), std::string::npos);
  EXPECT_NE(text.find("Watchdog"), std::string::npos);
  EXPECT_NE(text.find("DiskIO"), std::string::npos);
  EXPECT_NE(text.find("1 incomplete"), std::string::npos);
}

TEST(LogReportTest, EmptyLog) {
  RecoveryLog log;
  const LogReport report = BuildLogReport(log);
  EXPECT_EQ(report.processes, 0u);
  EXPECT_EQ(report.mean_downtime_s, 0.0);
  EXPECT_TRUE(report.top_types.empty());
}

}  // namespace
}  // namespace aer
