// Lenient log ingestion: damaged lines cost one entry each, never the file,
// and the damage is counted all the way up into the operator report.
#include <gtest/gtest.h>

#include <sstream>

#include "inject/file_corruptor.h"
#include "log/log_report.h"
#include "log/recovery_log.h"

namespace aer {
namespace {

const char kCleanLog[] =
    "100\tm1\terror:Watchdog\n"
    "160\tm1\tREBOOT\n"
    "900\tm1\tSuccess\n"
    "1000\tm2\terror:DiskError\n"
    "1100\tm2\tREIMAGE\n"
    "5000\tm2\tSuccess\n";

TEST(LenientParseTest, CleanInputParsesIdenticallyInBothModes) {
  std::istringstream strict_in(kCleanLog);
  std::istringstream lenient_in(kCleanLog);
  RecoveryLog strict_log;
  RecoveryLog lenient_log;
  const LogParseResult strict =
      RecoveryLog::Read(strict_in, strict_log, LogParseMode::kStrict);
  const LogParseResult lenient =
      RecoveryLog::Read(lenient_in, lenient_log, LogParseMode::kLenient);
  EXPECT_TRUE(strict.ok);
  EXPECT_TRUE(lenient.ok);
  EXPECT_EQ(strict.parsed, 6u);
  EXPECT_EQ(lenient.parsed, 6u);
  EXPECT_EQ(lenient.repaired, 0u);
  EXPECT_EQ(lenient.skipped, 0u);
  EXPECT_EQ(strict_log.entries(), lenient_log.entries());
}

TEST(LenientParseTest, StrictStopsAtFirstBadLineLenientSkipsIt) {
  const std::string dirty =
      "100\tm1\terror:Watchdog\n"
      "garbage that is not a log line\n"
      "900\tm1\tSuccess\n";

  std::istringstream strict_in(dirty);
  RecoveryLog strict_log;
  const LogParseResult strict =
      RecoveryLog::Read(strict_in, strict_log, LogParseMode::kStrict);
  EXPECT_FALSE(strict.ok);
  EXPECT_EQ(strict.first_error_line, 2u);

  std::istringstream lenient_in(dirty);
  RecoveryLog lenient_log;
  const LogParseResult lenient =
      RecoveryLog::Read(lenient_in, lenient_log, LogParseMode::kLenient);
  EXPECT_TRUE(lenient.ok);
  EXPECT_EQ(lenient.parsed, 2u);
  EXPECT_EQ(lenient.skipped, 1u);
  EXPECT_EQ(lenient.first_error_line, 2u);  // still reported for operators
}

TEST(LenientParseTest, RepairsSpaceSeparatedAndCrDamagedLines) {
  const std::string dirty =
      "100 m1 error:Watchdog\n"       // space-separated export
      "160\tm1\tREBOOT\r\n"           // CRLF: strict already tolerates this
      "900\t\tm1\t\tSuccess\n";       // doubled separators
  std::istringstream is(dirty);
  RecoveryLog log;
  const LogParseResult result =
      RecoveryLog::Read(is, log, LogParseMode::kLenient);
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.parsed, 3u);
  EXPECT_EQ(result.repaired, 2u);
  EXPECT_EQ(result.skipped, 0u);
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log.entries()[1].kind, EntryKind::kAction);
}

TEST(LenientParseTest, MissingFileFailsInBothModes) {
  RecoveryLog log;
  const LogParseResult result = RecoveryLog::ReadFile(
      "/nonexistent/recovery.log", log, LogParseMode::kLenient);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.first_error.find("cannot open"), std::string::npos);
}

TEST(LenientParseTest, CorruptedLogNeverKillsTheParse) {
  // Property check against the corruptor itself: whatever CorruptLines does
  // to a clean log, a lenient parse returns (no crash) and every line is
  // either parsed or counted as skipped.
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed);
    const std::string dirty = CorruptLines(kCleanLog, 0.7, rng);
    std::istringstream is(dirty);
    RecoveryLog log;
    const LogParseResult result =
        RecoveryLog::Read(is, log, LogParseMode::kLenient);
    EXPECT_TRUE(result.ok) << "seed " << seed;
    EXPECT_EQ(result.parsed, log.size()) << "seed " << seed;
    EXPECT_LE(result.parsed + result.skipped, 6u) << "seed " << seed;
  }
}

TEST(LenientParseTest, IngestionCountsSurfaceInLogReport) {
  const std::string dirty =
      "100 m1 error:Watchdog\n"
      "not a line at all\n"
      "160\tm1\tREBOOT\n"
      "900\tm1\tSuccess\n";
  std::istringstream is(dirty);
  RecoveryLog log;
  const LogParseResult parse =
      RecoveryLog::Read(is, log, LogParseMode::kLenient);
  const LogReport report = BuildLogReport(log, parse);
  EXPECT_EQ(report.ingest_skipped, 1u);
  EXPECT_EQ(report.ingest_repaired, 1u);

  const std::string text = FormatLogReport(report, log.symptoms());
  EXPECT_NE(text.find("skipped"), std::string::npos);
  EXPECT_NE(text.find("repaired"), std::string::npos);

  // A clean parse keeps the report free of ingestion noise.
  const LogReport clean = BuildLogReport(log);
  EXPECT_EQ(clean.ingest_skipped, 0u);
  const std::string clean_text = FormatLogReport(clean, log.symptoms());
  EXPECT_EQ(clean_text.find("skipped"), std::string::npos);
}

}  // namespace
}  // namespace aer
