#include "log/action.h"

#include <gtest/gtest.h>

namespace aer {
namespace {

TEST(ActionTest, StrengthIsTotalOrder) {
  EXPECT_LT(ActionStrength(RepairAction::kTryNop),
            ActionStrength(RepairAction::kReboot));
  EXPECT_LT(ActionStrength(RepairAction::kReboot),
            ActionStrength(RepairAction::kReimage));
  EXPECT_LT(ActionStrength(RepairAction::kReimage),
            ActionStrength(RepairAction::kRma));
}

TEST(ActionTest, AtLeastAsStrongIsReflexive) {
  for (RepairAction a : kAllActions) {
    EXPECT_TRUE(AtLeastAsStrong(a, a));
  }
}

TEST(ActionTest, AtLeastAsStrongIsAntisymmetricOffDiagonal) {
  for (RepairAction a : kAllActions) {
    for (RepairAction b : kAllActions) {
      if (a == b) continue;
      EXPECT_NE(AtLeastAsStrong(a, b), AtLeastAsStrong(b, a));
    }
  }
}

TEST(ActionTest, NameRoundTrip) {
  for (RepairAction a : kAllActions) {
    const auto parsed = ParseAction(ActionName(a));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, a);
  }
}

TEST(ActionTest, IndexRoundTrip) {
  for (int i = 0; i < kNumActions; ++i) {
    EXPECT_EQ(ActionIndex(ActionFromIndex(i)), i);
  }
}

TEST(ActionTest, NamesMatchPaper) {
  EXPECT_EQ(ActionName(RepairAction::kTryNop), "TRYNOP");
  EXPECT_EQ(ActionName(RepairAction::kReboot), "REBOOT");
  EXPECT_EQ(ActionName(RepairAction::kReimage), "REIMAGE");
  EXPECT_EQ(ActionName(RepairAction::kRma), "RMA");
}

TEST(ActionTest, ParseRejectsUnknown) {
  EXPECT_FALSE(ParseAction("").has_value());
  EXPECT_FALSE(ParseAction("reboot").has_value());  // case-sensitive
  EXPECT_FALSE(ParseAction("REBOOTX").has_value());
  EXPECT_FALSE(ParseAction("Success").has_value());
}

}  // namespace
}  // namespace aer
