#include "log/symptom.h"

#include <gtest/gtest.h>

namespace aer {
namespace {

TEST(SymptomTableTest, InternAssignsDenseIds) {
  SymptomTable table;
  EXPECT_EQ(table.Intern("a"), 0);
  EXPECT_EQ(table.Intern("b"), 1);
  EXPECT_EQ(table.Intern("c"), 2);
  EXPECT_EQ(table.size(), 3u);
}

TEST(SymptomTableTest, InternIsIdempotent) {
  SymptomTable table;
  const SymptomId id = table.Intern("x");
  EXPECT_EQ(table.Intern("x"), id);
  EXPECT_EQ(table.size(), 1u);
}

TEST(SymptomTableTest, NameLookup) {
  SymptomTable table;
  const SymptomId id = table.Intern("error:Watchdog");
  EXPECT_EQ(table.Name(id), "error:Watchdog");
}

TEST(SymptomTableTest, FindReturnsInvalidForUnknown) {
  SymptomTable table;
  table.Intern("known");
  EXPECT_EQ(table.Find("unknown"), kInvalidSymptom);
  EXPECT_EQ(table.Find("known"), 0);
}

TEST(SymptomTableTest, ManySymptomsStayConsistent) {
  SymptomTable table;
  for (int i = 0; i < 500; ++i) {
    table.Intern("sym" + std::to_string(i));
  }
  EXPECT_EQ(table.size(), 500u);
  for (int i = 0; i < 500; ++i) {
    const std::string name = "sym" + std::to_string(i);
    const SymptomId id = table.Find(name);
    ASSERT_NE(id, kInvalidSymptom);
    EXPECT_EQ(table.Name(id), name);
  }
}

}  // namespace
}  // namespace aer
