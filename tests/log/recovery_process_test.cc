#include "log/recovery_process.h"

#include <gtest/gtest.h>

#include "cluster/trace.h"

namespace aer {
namespace {

// One machine, one clean process mirroring the paper's Table 1.
RecoveryLog Table1Log() {
  RecoveryLog log;
  const SymptomId watchdog = log.symptoms().Intern("IFM-ISNWatchdog");
  const SymptomId hw = log.symptoms().Intern("Hardware:EventLog");
  log.Append(LogEntry::Symptom(11232, 0, watchdog));   // 3:07:12
  log.Append(LogEntry::Symptom(11458, 0, hw));         // 3:10:58
  log.Append(LogEntry::Action(12206, 0, RepairAction::kTryNop));   // 3:23:26
  log.Append(LogEntry::Symptom(12337, 0, hw));         // 3:25:37
  log.Append(LogEntry::Symptom(12454, 0, hw));         // 3:27:34
  log.Append(LogEntry::Action(13330, 0, RepairAction::kReboot));   // 3:42:10
  log.Append(LogEntry::Success(15187, 0));             // 4:13:07
  return log;
}

TEST(SegmentationTest, Table1Example) {
  const SegmentationResult result = SegmentIntoProcesses(Table1Log());
  ASSERT_EQ(result.processes.size(), 1u);
  EXPECT_EQ(result.incomplete, 0);
  EXPECT_EQ(result.orphan_entries, 0);

  const RecoveryProcess& p = result.processes[0];
  EXPECT_EQ(p.machine(), 0);
  EXPECT_EQ(p.start_time(), 11232);
  EXPECT_EQ(p.success_time(), 15187);
  EXPECT_EQ(p.downtime(), 15187 - 11232);
  EXPECT_EQ(p.symptoms().size(), 4u);
  EXPECT_EQ(p.initial_symptom(), 0);  // IFM-ISNWatchdog interned first
  EXPECT_EQ(p.detection_delay(), 12206 - 11232);

  ASSERT_EQ(p.attempts().size(), 2u);
  EXPECT_EQ(p.attempts()[0].action, RepairAction::kTryNop);
  EXPECT_EQ(p.attempts()[0].cost, 13330 - 12206);
  EXPECT_FALSE(p.attempts()[0].cured);
  EXPECT_EQ(p.attempts()[1].action, RepairAction::kReboot);
  EXPECT_EQ(p.attempts()[1].cost, 15187 - 13330);
  EXPECT_TRUE(p.attempts()[1].cured);
  EXPECT_EQ(p.final_action(), RepairAction::kReboot);
}

TEST(SegmentationTest, DistinctSymptomsSortedUnique) {
  const SegmentationResult result = SegmentIntoProcesses(Table1Log());
  const std::vector<SymptomId> distinct =
      result.processes[0].DistinctSymptoms();
  ASSERT_EQ(distinct.size(), 2u);
  EXPECT_EQ(distinct[0], 0);
  EXPECT_EQ(distinct[1], 1);
}

TEST(SegmentationTest, InterleavedMachinesSeparateCleanly) {
  RecoveryLog log;
  const SymptomId a = log.symptoms().Intern("a");
  const SymptomId b = log.symptoms().Intern("b");
  log.Append(LogEntry::Symptom(10, 1, a));
  log.Append(LogEntry::Symptom(20, 2, b));
  log.Append(LogEntry::Action(30, 1, RepairAction::kReboot));
  log.Append(LogEntry::Action(40, 2, RepairAction::kTryNop));
  log.Append(LogEntry::Success(50, 2));
  log.Append(LogEntry::Success(60, 1));

  const SegmentationResult result = SegmentIntoProcesses(log);
  ASSERT_EQ(result.processes.size(), 2u);
  // Ordered by start time.
  EXPECT_EQ(result.processes[0].machine(), 1);
  EXPECT_EQ(result.processes[1].machine(), 2);
  EXPECT_EQ(result.processes[0].downtime(), 50);
  EXPECT_EQ(result.processes[1].downtime(), 30);
}

TEST(SegmentationTest, ConsecutiveProcessesOnOneMachine) {
  RecoveryLog log;
  const SymptomId s = log.symptoms().Intern("s");
  log.Append(LogEntry::Symptom(10, 1, s));
  log.Append(LogEntry::Action(20, 1, RepairAction::kReboot));
  log.Append(LogEntry::Success(30, 1));
  log.Append(LogEntry::Symptom(100, 1, s));
  log.Append(LogEntry::Action(110, 1, RepairAction::kReimage));
  log.Append(LogEntry::Success(120, 1));

  const SegmentationResult result = SegmentIntoProcesses(log);
  ASSERT_EQ(result.processes.size(), 2u);
  EXPECT_EQ(result.processes[0].final_action(), RepairAction::kReboot);
  EXPECT_EQ(result.processes[1].final_action(), RepairAction::kReimage);
}

TEST(SegmentationTest, OrphanEntriesAreCountedAndDropped) {
  RecoveryLog log;
  const SymptomId s = log.symptoms().Intern("s");
  log.Append(LogEntry::Action(5, 1, RepairAction::kReboot));  // orphan
  log.Append(LogEntry::Success(6, 1));                        // orphan
  log.Append(LogEntry::Symptom(10, 1, s));
  log.Append(LogEntry::Action(20, 1, RepairAction::kTryNop));
  log.Append(LogEntry::Success(30, 1));

  const SegmentationResult result = SegmentIntoProcesses(log);
  EXPECT_EQ(result.processes.size(), 1u);
  EXPECT_EQ(result.orphan_entries, 2);
}

TEST(SegmentationTest, OpenProcessAtLogEndIsIncomplete) {
  RecoveryLog log;
  const SymptomId s = log.symptoms().Intern("s");
  log.Append(LogEntry::Symptom(10, 1, s));
  log.Append(LogEntry::Action(20, 1, RepairAction::kReboot));
  // no Success

  const SegmentationResult result = SegmentIntoProcesses(log);
  EXPECT_EQ(result.processes.size(), 0u);
  EXPECT_EQ(result.incomplete, 1);
}

TEST(SegmentationTest, ProcessWithNoActions) {
  // Success without any repair action (self-healed): still a process.
  RecoveryLog log;
  const SymptomId s = log.symptoms().Intern("s");
  log.Append(LogEntry::Symptom(10, 1, s));
  log.Append(LogEntry::Success(30, 1));

  const SegmentationResult result = SegmentIntoProcesses(log);
  ASSERT_EQ(result.processes.size(), 1u);
  EXPECT_TRUE(result.processes[0].attempts().empty());
  EXPECT_EQ(result.processes[0].downtime(), 20);
  EXPECT_EQ(result.processes[0].detection_delay(), 20);
}

TEST(SegmentationTest, UnsortedInputIsHandled) {
  RecoveryLog log;
  const SymptomId s = log.symptoms().Intern("s");
  // Deliberately append out of order.
  log.Append(LogEntry::Success(30, 1));
  log.Append(LogEntry::Symptom(10, 1, s));
  log.Append(LogEntry::Action(20, 1, RepairAction::kReboot));

  const SegmentationResult result = SegmentIntoProcesses(log);
  ASSERT_EQ(result.processes.size(), 1u);
  EXPECT_EQ(result.processes[0].downtime(), 20);
}

// Property test against the full generator: segmentation must reproduce the
// simulator's own accounting exactly.
TEST(SegmentationPropertyTest, MatchesGroundTruthOnGeneratedTrace) {
  TraceConfig config = TraceConfigForScale("small");
  config.sim.num_machines = 100;
  config.sim.duration = 30 * kDay;
  const TraceDataset dataset = GenerateTrace(config);

  const SegmentationResult result = SegmentIntoProcesses(dataset.result.log);
  ASSERT_EQ(result.processes.size(), dataset.result.ground_truth.size());
  EXPECT_EQ(result.orphan_entries, 0);
  EXPECT_EQ(result.incomplete, 0);

  SimTime total_downtime = 0;
  for (std::size_t i = 0; i < result.processes.size(); ++i) {
    const RecoveryProcess& p = result.processes[i];
    const ProcessGroundTruth& gt = dataset.result.ground_truth[i];
    ASSERT_EQ(p.machine(), gt.machine) << "process " << i;
    ASSERT_EQ(p.start_time(), gt.start) << "process " << i;
    ASSERT_EQ(p.success_time(), gt.end) << "process " << i;
    // The initial symptom is the fault's primary symptom.
    const auto& fault =
        dataset.catalog.faults[static_cast<std::size_t>(gt.fault_index)];
    EXPECT_EQ(dataset.result.log.symptoms().Name(p.initial_symptom()),
              fault.primary_symptom);
    total_downtime += p.downtime();
  }
  EXPECT_EQ(total_downtime, dataset.result.total_downtime);
}

TEST(SegmentationPropertyTest, AttemptCostsSumToDowntimeMinusDetection) {
  TraceConfig config = TraceConfigForScale("small");
  config.sim.num_machines = 50;
  config.sim.duration = 20 * kDay;
  const TraceDataset dataset = GenerateTrace(config);
  const SegmentationResult result = SegmentIntoProcesses(dataset.result.log);
  ASSERT_GT(result.processes.size(), 10u);
  for (const RecoveryProcess& p : result.processes) {
    SimTime action_total = 0;
    for (const ActionAttempt& a : p.attempts()) action_total += a.cost;
    EXPECT_EQ(p.detection_delay() + action_total, p.downtime());
    // Only the final attempt is marked cured.
    for (std::size_t i = 0; i + 1 < p.attempts().size(); ++i) {
      EXPECT_FALSE(p.attempts()[i].cured);
    }
    EXPECT_TRUE(p.attempts().back().cured);
  }
}

}  // namespace
}  // namespace aer
