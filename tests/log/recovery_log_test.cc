#include "log/recovery_log.h"

#include <sstream>

#include <gtest/gtest.h>

namespace aer {
namespace {

RecoveryLog MakeSampleLog() {
  RecoveryLog log;
  const SymptomId watchdog = log.symptoms().Intern("IFM-ISNWatchdog");
  const SymptomId hw = log.symptoms().Intern("Hardware:EventLog");
  log.Append(LogEntry::Symptom(11232, 3, watchdog));
  log.Append(LogEntry::Symptom(11458, 3, hw));
  log.Append(LogEntry::Action(12206, 3, RepairAction::kTryNop));
  log.Append(LogEntry::Symptom(12337, 3, hw));
  log.Append(LogEntry::Action(13330, 3, RepairAction::kReboot));
  log.Append(LogEntry::Success(15187, 3));
  return log;
}

TEST(DescribeEntryTest, MatchesTable1Format) {
  const RecoveryLog log = MakeSampleLog();
  EXPECT_EQ(DescribeEntry(log.entries()[0], log.symptoms()),
            "error:IFM-ISNWatchdog");
  EXPECT_EQ(DescribeEntry(log.entries()[2], log.symptoms()), "TRYNOP");
  EXPECT_EQ(DescribeEntry(log.entries()[5], log.symptoms()), "Success");
}

TEST(RecoveryLogTest, WriteReadRoundTrip) {
  const RecoveryLog log = MakeSampleLog();
  std::stringstream ss;
  log.Write(ss);

  RecoveryLog parsed;
  ASSERT_TRUE(RecoveryLog::Read(ss, parsed));
  ASSERT_EQ(parsed.size(), log.size());
  for (std::size_t i = 0; i < log.size(); ++i) {
    EXPECT_EQ(parsed.entries()[i], log.entries()[i]) << "entry " << i;
  }
  EXPECT_EQ(parsed.symptoms().size(), log.symptoms().size());
}

TEST(RecoveryLogTest, WriteFormatIsTabSeparated) {
  RecoveryLog log;
  log.Append(LogEntry::Action(42, 7, RepairAction::kReimage));
  std::stringstream ss;
  log.Write(ss);
  EXPECT_EQ(ss.str(), "42\tm7\tREIMAGE\n");
}

TEST(RecoveryLogTest, ReadSkipsBlankLines) {
  std::stringstream ss("\n42\tm1\tSuccess\n\n  \n");
  RecoveryLog parsed;
  ASSERT_TRUE(RecoveryLog::Read(ss, parsed));
  EXPECT_EQ(parsed.size(), 1u);
}

TEST(RecoveryLogTest, ReadRejectsMalformedLines) {
  const char* bad_lines[] = {
      "notanumber\tm1\tSuccess",  // bad time
      "42\t1\tSuccess",           // machine missing 'm' prefix
      "42\tmX\tSuccess",          // bad machine id
      "42\tm1\tUNKNOWNACTION",    // unknown description
      "42\tm1",                   // too few fields
      "42\tm1\tSuccess\textra",   // too many fields
  };
  for (const char* line : bad_lines) {
    std::stringstream ss(line);
    RecoveryLog parsed;
    EXPECT_FALSE(RecoveryLog::Read(ss, parsed)) << line;
  }
}

TEST(RecoveryLogTest, ReadEmptyStreamYieldsEmptyLog) {
  std::stringstream ss("");
  RecoveryLog parsed;
  ASSERT_TRUE(RecoveryLog::Read(ss, parsed));
  EXPECT_TRUE(parsed.empty());
}

TEST(RecoveryLogTest, SortByTimeIsStablePerMachine) {
  RecoveryLog log;
  const SymptomId s = log.symptoms().Intern("s");
  // Same timestamp on one machine: symptom inserted before action must stay
  // first.
  log.Append(LogEntry::Symptom(100, 1, s));
  log.Append(LogEntry::Action(100, 1, RepairAction::kTryNop));
  log.Append(LogEntry::Symptom(50, 2, s));
  log.SortByTime();
  EXPECT_EQ(log.entries()[0].time, 50);
  EXPECT_EQ(log.entries()[1].kind, EntryKind::kSymptom);
  EXPECT_EQ(log.entries()[2].kind, EntryKind::kAction);
}

TEST(RecoveryLogTest, FileRoundTrip) {
  const RecoveryLog log = MakeSampleLog();
  const std::string path = ::testing::TempDir() + "/aer_log_roundtrip.log";
  log.WriteFile(path);
  RecoveryLog parsed;
  ASSERT_TRUE(RecoveryLog::ReadFile(path, parsed));
  EXPECT_EQ(parsed.size(), log.size());
  std::remove(path.c_str());
}

TEST(RecoveryLogTest, ReadFileMissingReturnsFalse) {
  RecoveryLog parsed;
  EXPECT_FALSE(RecoveryLog::ReadFile("/nonexistent/path.log", parsed));
}

}  // namespace
}  // namespace aer
