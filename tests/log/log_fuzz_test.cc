// Fuzz-style robustness of the log parser and the segmenter: randomly
// generated well-formed logs must round-trip and segment cleanly; random
// corruptions of valid lines must be rejected without crashing.
#include <sstream>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "log/recovery_process.h"

namespace aer {
namespace {

// Generates a random but structurally valid log: per machine, alternating
// open-process symptom/action runs closed by Success.
RecoveryLog RandomValidLog(Rng& rng) {
  RecoveryLog log;
  std::vector<SymptomId> symptoms;
  for (int s = 0; s < 12; ++s) {
    symptoms.push_back(
        log.symptoms().Intern("Sym" + std::to_string(s)));
  }
  const int machines = 1 + static_cast<int>(rng.NextBounded(6));
  for (MachineId m = 0; m < machines; ++m) {
    SimTime t = static_cast<SimTime>(rng.NextBounded(1000));
    const int processes = 1 + static_cast<int>(rng.NextBounded(7));
    for (int p = 0; p < processes; ++p) {
      const int syms = 1 + static_cast<int>(rng.NextBounded(4));
      for (int s = 0; s < syms; ++s) {
        log.Append(LogEntry::Symptom(
            t, m, symptoms[rng.NextBounded(symptoms.size())]));
        t += 1 + static_cast<SimTime>(rng.NextBounded(100));
      }
      const int actions = 1 + static_cast<int>(rng.NextBounded(5));
      for (int a = 0; a < actions; ++a) {
        log.Append(LogEntry::Action(
            t, m,
            ActionFromIndex(static_cast<int>(rng.NextBounded(kNumActions)))));
        t += 1 + static_cast<SimTime>(rng.NextBounded(3000));
      }
      log.Append(LogEntry::Success(t, m));
      t += 1 + static_cast<SimTime>(rng.NextBounded(100000));
    }
  }
  log.SortByTime();
  return log;
}

TEST(LogFuzzTest, RandomValidLogsRoundTripAndSegment) {
  Rng rng(101);
  for (int trial = 0; trial < 50; ++trial) {
    const RecoveryLog log = RandomValidLog(rng);
    std::stringstream ss;
    log.Write(ss);
    RecoveryLog reread;
    ASSERT_TRUE(RecoveryLog::Read(ss, reread)) << "trial " << trial;
    ASSERT_EQ(reread.size(), log.size());

    const auto a = SegmentIntoProcesses(log);
    const auto b = SegmentIntoProcesses(reread);
    ASSERT_EQ(a.processes.size(), b.processes.size());
    ASSERT_EQ(a.incomplete, b.incomplete);
    ASSERT_EQ(a.orphan_entries, b.orphan_entries);
    for (std::size_t i = 0; i < a.processes.size(); ++i) {
      ASSERT_EQ(a.processes[i].downtime(), b.processes[i].downtime());
      ASSERT_EQ(a.processes[i].attempts().size(),
                b.processes[i].attempts().size());
    }
  }
}

TEST(LogFuzzTest, CorruptedLinesAreRejectedNotCrashed) {
  Rng rng(202);
  const RecoveryLog log = RandomValidLog(rng);
  std::stringstream ss;
  log.Write(ss);
  const std::string text = ss.str();
  ASSERT_GT(text.size(), 100u);

  int rejected = 0;
  int accepted = 0;
  for (int trial = 0; trial < 300; ++trial) {
    std::string corrupted = text;
    // Mutate 1-3 random bytes to random printable garbage.
    const int mutations = 1 + static_cast<int>(rng.NextBounded(3));
    for (int k = 0; k < mutations; ++k) {
      const std::size_t pos = rng.NextBounded(corrupted.size());
      corrupted[pos] =
          static_cast<char>('!' + rng.NextBounded(90));
    }
    std::stringstream cs(corrupted);
    RecoveryLog parsed;
    // Either cleanly rejected or parsed as a (different but valid) log;
    // never a crash or a CHECK failure.
    if (RecoveryLog::Read(cs, parsed)) {
      ++accepted;
      // If accepted, the parsed log must itself round-trip.
      std::stringstream rs;
      parsed.Write(rs);
      RecoveryLog again;
      ASSERT_TRUE(RecoveryLog::Read(rs, again));
      // And segmentation must not crash on it.
      SegmentIntoProcesses(parsed);
    } else {
      ++rejected;
    }
  }
  // Most random mutations corrupt the framing and must be rejected.
  EXPECT_GT(rejected, 100);
  // Some mutations only touch symptom-name bytes and stay valid.
  EXPECT_GT(accepted, 0);
}

TEST(LogFuzzTest, TruncatedLogsParseToPrefix) {
  Rng rng(303);
  const RecoveryLog log = RandomValidLog(rng);
  std::stringstream ss;
  log.Write(ss);
  const std::string text = ss.str();

  // Truncate at a line boundary: always parses to the prefix.
  std::size_t newline = text.find('\n');
  int checked = 0;
  while (newline != std::string::npos && checked < 10) {
    std::stringstream ts(text.substr(0, newline + 1));
    RecoveryLog parsed;
    ASSERT_TRUE(RecoveryLog::Read(ts, parsed));
    SegmentIntoProcesses(parsed);  // tolerates incomplete tails
    newline = text.find('\n', newline + 1 + text.size() / 12);
    ++checked;
  }
  EXPECT_GE(checked, 5);
}

}  // namespace
}  // namespace aer
