#include "eval/experiment.h"

#include <gtest/gtest.h>

#include "cluster/trace.h"
#include "mining/symptom_clusters.h"

namespace aer {
namespace {

// Shared small dataset (built once; the experiment runner is the expensive
// part under test).
class ExperimentTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new TraceDataset(GenerateTrace(TraceConfigForScale("small")));
    const auto segmented = SegmentIntoProcesses(dataset_->result.log);
    MPatternConfig mining;
    const SymptomClustering clustering(segmented.processes, mining);
    const NoiseFilterResult filtered =
        FilterNoisyProcesses(segmented.processes, clustering);
    clean_ = new std::vector<RecoveryProcess>();
    for (std::size_t i : filtered.clean) {
      clean_->push_back(segmented.processes[i]);
    }
  }
  static void TearDownTestSuite() {
    delete clean_;
    delete dataset_;
    clean_ = nullptr;
    dataset_ = nullptr;
  }

  static ExperimentConfig FastConfig() {
    ExperimentConfig config;
    config.trainer.max_sweeps = 12000;
    config.trainer.min_sweeps = 2000;
    config.use_selection_tree = true;
    return config;
  }

  static TraceDataset* dataset_;
  static std::vector<RecoveryProcess>* clean_;
};

TraceDataset* ExperimentTest::dataset_ = nullptr;
std::vector<RecoveryProcess>* ExperimentTest::clean_ = nullptr;

TEST_F(ExperimentTest, TrainedPolicySavesDowntime) {
  const ExperimentRunner runner(*clean_, dataset_->result.log.symptoms(),
                                FastConfig());
  const ExperimentResult result = runner.RunOne(0.4);
  // The paper's headline: >10% savings; allow a generous band for the small
  // test-scale trace.
  EXPECT_LT(result.trained.overall_relative_cost, 0.97);
  EXPECT_GT(result.trained.overall_relative_cost, 0.5);
  EXPECT_GT(result.trained.overall_coverage, 0.85);
}

TEST_F(ExperimentTest, HybridCoversEverythingAndStillSaves) {
  const ExperimentRunner runner(*clean_, dataset_->result.log.symptoms(),
                                FastConfig());
  const ExperimentResult result = runner.RunOne(0.4);
  EXPECT_DOUBLE_EQ(result.hybrid.overall_coverage, 1.0);
  EXPECT_LT(result.hybrid.overall_relative_cost, 0.97);
  // Hybrid covers the unhandled remainder with the user policy, so its
  // relative cost is close to the trained policy's.
  EXPECT_NEAR(result.hybrid.overall_relative_cost,
              result.trained.overall_relative_cost, 0.08);
}

TEST_F(ExperimentTest, CoverageGrowsWithTrainingData) {
  const ExperimentRunner runner(*clean_, dataset_->result.log.symptoms(),
                                FastConfig());
  const ExperimentResult r20 = runner.RunOne(0.2);
  const ExperimentResult r80 = runner.RunOne(0.8);
  EXPECT_GE(r80.trained.overall_coverage,
            r20.trained.overall_coverage - 0.02);
}

TEST_F(ExperimentTest, TypeCatalogSharedAcrossTests) {
  const ExperimentRunner runner(*clean_, dataset_->result.log.symptoms(),
                                FastConfig());
  EXPECT_LE(runner.types().num_types(), 40u);
  const ExperimentResult r20 = runner.RunOne(0.2);
  const ExperimentResult r60 = runner.RunOne(0.6);
  // Rows are indexed by the same shared catalog in every test.
  EXPECT_EQ(r20.trained.rows.size(), runner.types().num_types());
  EXPECT_EQ(r60.trained.rows.size(), runner.types().num_types());
}

TEST_F(ExperimentTest, RunAllCoversConfiguredFractions) {
  ExperimentConfig config = FastConfig();
  config.train_fractions = {0.3, 0.7};
  const ExperimentRunner runner(*clean_, dataset_->result.log.symptoms(),
                                config);
  const auto results = runner.RunAll();
  ASSERT_EQ(results.size(), 2u);
  EXPECT_DOUBLE_EQ(results[0].train_fraction, 0.3);
  EXPECT_DOUBLE_EQ(results[1].train_fraction, 0.7);
  EXPECT_GT(results[0].train_processes, 0);
  EXPECT_GT(results[0].test_processes, results[1].test_processes);
}

TEST_F(ExperimentTest, MostTypesNearOriginalSomeImproved) {
  // Figure 8's shape: most error types stay around 1.0, a few drop well
  // below (the stronger-action-first types).
  const ExperimentRunner runner(*clean_, dataset_->result.log.symptoms(),
                                FastConfig());
  const ExperimentResult result = runner.RunOne(0.6);
  int near_one = 0;
  int improved = 0;
  int populated = 0;
  for (const TypeEvalRow& row : result.trained.rows) {
    if (row.handled < 5) continue;
    ++populated;
    if (row.relative_cost < 0.85) ++improved;
    if (row.relative_cost > 0.9 && row.relative_cost < 1.15) ++near_one;
  }
  EXPECT_GT(populated, 10);
  EXPECT_GT(improved, 0) << "at least one strongly-improved type";
  EXPECT_GT(near_one, populated / 2) << "most types track the original";
}

TEST_F(ExperimentTest, DeterministicAcrossRuns) {
  const ExperimentRunner runner(*clean_, dataset_->result.log.symptoms(),
                                FastConfig());
  const ExperimentResult a = runner.RunOne(0.4);
  const ExperimentResult b = runner.RunOne(0.4);
  EXPECT_DOUBLE_EQ(a.trained.overall_relative_cost,
                   b.trained.overall_relative_cost);
  EXPECT_EQ(a.trained.total_handled, b.trained.total_handled);
}

}  // namespace
}  // namespace aer
