#include "eval/bootstrap.h"

#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace aer {
namespace {

TEST(BootstrapRatioCITest, EmptyInput) {
  const BootstrapInterval ci = BootstrapRatioCI({});
  EXPECT_EQ(ci.point, 0.0);
  EXPECT_EQ(ci.low, 0.0);
  EXPECT_EQ(ci.high, 0.0);
}

TEST(BootstrapRatioCITest, ConstantRatioHasZeroWidth) {
  // Every pair has ratio exactly 0.8: resampling cannot change it.
  std::vector<std::pair<double, double>> pairs;
  for (int i = 1; i <= 50; ++i) {
    pairs.push_back({0.8 * i, static_cast<double>(i)});
  }
  const BootstrapInterval ci = BootstrapRatioCI(pairs, 500);
  EXPECT_NEAR(ci.point, 0.8, 1e-12);
  EXPECT_NEAR(ci.low, 0.8, 1e-9);
  EXPECT_NEAR(ci.high, 0.8, 1e-9);
}

TEST(BootstrapRatioCITest, IntervalCoversTruthAndOrdersCorrectly) {
  Rng rng(3);
  std::vector<std::pair<double, double>> pairs;
  for (int i = 0; i < 400; ++i) {
    const double actual = rng.NextExponential(3000.0) + 100.0;
    // Policy saves ~15% with noise.
    const double policy = actual * (0.85 + 0.2 * (rng.NextDouble() - 0.5));
    pairs.push_back({policy, actual});
  }
  const BootstrapInterval ci = BootstrapRatioCI(pairs, 2000, 0.95);
  EXPECT_LT(ci.low, ci.point);
  EXPECT_GT(ci.high, ci.point);
  EXPECT_GT(ci.low, 0.80);
  EXPECT_LT(ci.high, 0.90);
  EXPECT_NEAR(ci.point, 0.85, 0.02);
}

TEST(BootstrapRatioCITest, MoreDataNarrowsTheInterval) {
  Rng rng(4);
  const auto make_pairs = [&](int n) {
    std::vector<std::pair<double, double>> pairs;
    for (int i = 0; i < n; ++i) {
      const double actual = rng.NextExponential(1000.0) + 50.0;
      const double policy = actual * (0.9 + 0.3 * (rng.NextDouble() - 0.5));
      pairs.push_back({policy, actual});
    }
    return pairs;
  };
  const auto small = BootstrapRatioCI(make_pairs(50), 1000, 0.95, 7);
  const auto large = BootstrapRatioCI(make_pairs(5000), 1000, 0.95, 7);
  EXPECT_LT(large.high - large.low, small.high - small.low);
}

TEST(BootstrapRatioCITest, DeterministicForSeed) {
  std::vector<std::pair<double, double>> pairs;
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    pairs.push_back({rng.NextDouble() * 100, rng.NextDouble() * 100 + 1});
  }
  const auto a = BootstrapRatioCI(pairs, 500, 0.9, 42);
  const auto b = BootstrapRatioCI(pairs, 500, 0.9, 42);
  EXPECT_DOUBLE_EQ(a.low, b.low);
  EXPECT_DOUBLE_EQ(a.high, b.high);
}

TEST(BootstrapRatioCITest, WiderConfidenceWidensInterval) {
  std::vector<std::pair<double, double>> pairs;
  Rng rng(6);
  for (int i = 0; i < 200; ++i) {
    const double actual = rng.NextExponential(500.0) + 10.0;
    pairs.push_back({actual * (0.8 + 0.4 * rng.NextDouble()), actual});
  }
  const auto narrow = BootstrapRatioCI(pairs, 1500, 0.5, 9);
  const auto wide = BootstrapRatioCI(pairs, 1500, 0.99, 9);
  EXPECT_LT(narrow.high - narrow.low, wide.high - wide.low);
}

}  // namespace
}  // namespace aer
