// Pooled evaluation must be bit-identical to serial evaluation
// (docs/PARALLELISM.md): bootstrap resamples draw from per-resample derived
// streams and experiment training shards per error type, so handing either
// a ThreadPool changes wall time only — never a single output bit.
#include <sstream>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/trace.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "eval/bootstrap.h"
#include "eval/experiment.h"
#include "mining/symptom_clusters.h"

namespace aer {
namespace {

TEST(ParallelBootstrapTest, PooledIntervalBitIdenticalToSerial) {
  Rng rng(77);
  std::vector<std::pair<double, double>> pairs;
  pairs.reserve(400);
  for (int i = 0; i < 400; ++i) {
    const double actual = 500.0 + rng.NextDouble() * 5000.0;
    const double policy = actual * (0.5 + rng.NextDouble());
    pairs.emplace_back(policy, actual);
  }
  const BootstrapInterval serial = BootstrapRatioCI(pairs, 500, 0.9, 42);
  for (const int threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    const BootstrapInterval pooled =
        BootstrapRatioCI(pairs, 500, 0.9, 42, &pool);
    EXPECT_EQ(pooled.point, serial.point) << threads << " threads";
    EXPECT_EQ(pooled.low, serial.low) << threads << " threads";
    EXPECT_EQ(pooled.high, serial.high) << threads << " threads";
    EXPECT_EQ(pooled.resamples, serial.resamples);
    EXPECT_EQ(pooled.confidence, serial.confidence);
  }
}

TEST(ParallelBootstrapTest, ResampleStreamsIndependentOfResampleCount) {
  // Resample r draws from DeriveStream(seed, r): adding more resamples must
  // not change what the first ones drew, so the interval endpoints can only
  // move because the percentile set grew — the point estimate is over the
  // full sample and stays fixed.
  Rng rng(88);
  std::vector<std::pair<double, double>> pairs;
  for (int i = 0; i < 200; ++i) {
    const double actual = 1000.0 + rng.NextDouble() * 2000.0;
    pairs.emplace_back(actual * 0.8, actual);
  }
  const BootstrapInterval small = BootstrapRatioCI(pairs, 200, 0.9, 7);
  const BootstrapInterval large = BootstrapRatioCI(pairs, 800, 0.9, 7);
  EXPECT_EQ(small.point, large.point);
}

// Shared small dataset, as in experiment_test.cc: the runner is the
// expensive part, so build the log once for both equivalence cases.
class ParallelExperimentTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new TraceDataset(GenerateTrace(TraceConfigForScale("small")));
    const auto segmented = SegmentIntoProcesses(dataset_->result.log);
    MPatternConfig mining;
    const SymptomClustering clustering(segmented.processes, mining);
    const NoiseFilterResult filtered =
        FilterNoisyProcesses(segmented.processes, clustering);
    clean_ = new std::vector<RecoveryProcess>();
    for (std::size_t i : filtered.clean) {
      clean_->push_back(segmented.processes[i]);
    }
  }
  static void TearDownTestSuite() {
    delete clean_;
    delete dataset_;
    clean_ = nullptr;
    dataset_ = nullptr;
  }

  static ExperimentConfig FastConfig(bool use_selection_tree) {
    ExperimentConfig config;
    config.trainer.max_sweeps = 6000;
    config.trainer.min_sweeps = 1000;
    config.use_selection_tree = use_selection_tree;
    return config;
  }

  static void ExpectSameResult(const ExperimentResult& a,
                               const ExperimentResult& b) {
    std::ostringstream bytes_a;
    a.policy.Write(bytes_a);
    std::ostringstream bytes_b;
    b.policy.Write(bytes_b);
    EXPECT_EQ(bytes_a.str(), bytes_b.str());
    EXPECT_EQ(a.trained.overall_relative_cost,
              b.trained.overall_relative_cost);
    EXPECT_EQ(a.trained.overall_coverage, b.trained.overall_coverage);
    EXPECT_EQ(a.hybrid.overall_relative_cost, b.hybrid.overall_relative_cost);
    ASSERT_EQ(a.training.size(), b.training.size());
    for (std::size_t i = 0; i < a.training.size(); ++i) {
      EXPECT_EQ(a.training[i].sweeps, b.training[i].sweeps);
      EXPECT_EQ(a.training[i].episodes, b.training[i].episodes);
      EXPECT_EQ(a.training[i].sequence, b.training[i].sequence);
    }
  }

  static TraceDataset* dataset_;
  static std::vector<RecoveryProcess>* clean_;
};

TraceDataset* ParallelExperimentTest::dataset_ = nullptr;
std::vector<RecoveryProcess>* ParallelExperimentTest::clean_ = nullptr;

TEST_F(ParallelExperimentTest, PooledRunOneMatchesSerialWithTree) {
  const ExperimentRunner runner(*clean_, dataset_->result.log.symptoms(),
                                FastConfig(true));
  const ExperimentResult serial = runner.RunOne(0.4);
  ThreadPool pool(4);
  ExpectSameResult(runner.RunOne(0.4, &pool), serial);
}

TEST_F(ParallelExperimentTest, PooledRunOneMatchesSerialPlainTrainer) {
  const ExperimentRunner runner(*clean_, dataset_->result.log.symptoms(),
                                FastConfig(false));
  const ExperimentResult serial = runner.RunOne(0.4);
  ThreadPool pool(4);
  ExpectSameResult(runner.RunOne(0.4, &pool), serial);
}

}  // namespace
}  // namespace aer
