#include "eval/evaluator.h"

#include <gtest/gtest.h>

#include "cluster/user_policy.h"

namespace aer {
namespace {

constexpr auto Y = RepairAction::kTryNop;
constexpr auto B = RepairAction::kReboot;
constexpr auto I = RepairAction::kReimage;

RecoveryProcess MakeProcess(std::vector<std::pair<RepairAction, SimTime>>
                                attempts_with_costs,
                            SymptomId symptom, SimTime start) {
  std::vector<SymptomEvent> symptoms = {{start, symptom}};
  std::vector<ActionAttempt> attempts;
  SimTime t = start + 50;
  for (const auto& [action, cost] : attempts_with_costs) {
    attempts.push_back({action, t, cost, false});
    t += cost;
  }
  attempts.back().cured = true;
  return RecoveryProcess(0, std::move(symptoms), std::move(attempts), t);
}

struct Fixture {
  SymptomTable symptoms;
  std::vector<RecoveryProcess> test;
  ErrorTypeCatalog catalog;
  SimulationPlatform platform;
  PolicyEvaluator evaluator;

  static std::vector<RecoveryProcess> Build() {
    std::vector<RecoveryProcess> out;
    SimTime start = 0;
    // Type "stuck" (symptom 0): 10x [Y fail, B cure].
    for (int i = 0; i < 10; ++i) {
      out.push_back(MakeProcess({{Y, 900}, {B, 2400}}, 0, start));
      start += 10;
    }
    // One incident needed REIMAGE: [Y, B, B, I].
    out.push_back(
        MakeProcess({{Y, 900}, {B, 2400}, {B, 2400}, {I, 9000}}, 0, start));
    return out;
  }

  Fixture()
      : test(Build()),
        catalog(test, 40),
        platform(test, catalog, symptoms, 20),
        evaluator(platform) {
    symptoms.Intern("stuck");
  }
};

TEST(PolicyEvaluatorTest, TrainedPolicyHandledAccounting) {
  Fixture fx;
  TrainedPolicy policy;
  policy.AddType({"stuck", {B}});  // cures the 10 simple incidents only

  const EvalSummary summary = fx.evaluator.EvaluateTrained(policy, fx.test);
  EXPECT_EQ(summary.total_processes, 11);
  EXPECT_EQ(summary.total_handled, 10);
  ASSERT_EQ(summary.rows.size(), 1u);
  const TypeEvalRow& row = summary.rows[0];
  EXPECT_NEAR(row.coverage, 10.0 / 11.0, 1e-12);
  // Handled incidents: actual = 50+900+2400 each; policy = 50+2400 each.
  EXPECT_DOUBLE_EQ(row.actual_cost, 10 * 3350.0);
  EXPECT_DOUBLE_EQ(row.policy_cost, 10 * 2450.0);
  EXPECT_NEAR(row.relative_cost, 2450.0 / 3350.0, 1e-12);
  EXPECT_NEAR(summary.overall_relative_cost, 2450.0 / 3350.0, 1e-12);
}

TEST(PolicyEvaluatorTest, UnknownTypeIsUnhandled) {
  Fixture fx;
  TrainedPolicy policy;
  policy.AddType({"other", {B}});
  const EvalSummary summary = fx.evaluator.EvaluateTrained(policy, fx.test);
  EXPECT_EQ(summary.total_handled, 0);
  EXPECT_EQ(summary.overall_coverage, 0.0);
}

TEST(PolicyEvaluatorTest, SequenceEndingInRmaHandlesEverything) {
  Fixture fx;
  TrainedPolicy policy;
  policy.AddType({"stuck", {B, RepairAction::kRma}});
  const EvalSummary summary = fx.evaluator.EvaluateTrained(policy, fx.test);
  EXPECT_EQ(summary.total_handled, 11);
  EXPECT_DOUBLE_EQ(summary.overall_coverage, 1.0);
}

TEST(PolicyEvaluatorTest, FullPolicyCountsEverything) {
  Fixture fx;
  UserDefinedPolicy user;
  const EvalSummary summary = fx.evaluator.EvaluateFull(user, fx.test);
  EXPECT_EQ(summary.total_processes, 11);
  EXPECT_EQ(summary.total_handled, 11);
  EXPECT_DOUBLE_EQ(summary.overall_coverage, 1.0);
  // The user-defined policy replays its own log: ratio exactly 1.
  EXPECT_NEAR(summary.overall_relative_cost, 1.0, 1e-12);
}

TEST(PolicyEvaluatorTest, HybridCoversAllAndBeatsUser) {
  Fixture fx;
  TrainedPolicy trained;
  trained.AddType({"stuck", {B}});
  UserDefinedPolicy user;
  HybridPolicy hybrid(trained, user);
  const EvalSummary summary = fx.evaluator.EvaluateFull(hybrid, fx.test);
  EXPECT_EQ(summary.total_handled, 11);
  EXPECT_LT(summary.overall_relative_cost, 1.0)
      << "jumping to REBOOT saves the wasted TRYNOP on 10 of 11 incidents";
}

TEST(PolicyEvaluatorTest, EmptyTestSetIsAllZero) {
  Fixture fx;
  TrainedPolicy policy;
  const EvalSummary summary = fx.evaluator.EvaluateTrained(policy, {});
  EXPECT_EQ(summary.total_processes, 0);
  EXPECT_EQ(summary.overall_relative_cost, 0.0);
  EXPECT_EQ(summary.overall_coverage, 0.0);
}

}  // namespace
}  // namespace aer
