#include "eval/split.h"

#include <gtest/gtest.h>

namespace aer {
namespace {

RecoveryProcess MakeProcess(SimTime start, MachineId machine = 0) {
  std::vector<SymptomEvent> symptoms = {{start, 0}};
  std::vector<ActionAttempt> attempts = {
      {RepairAction::kReboot, start + 10, 100, true}};
  return RecoveryProcess(machine, std::move(symptoms), std::move(attempts),
                         start + 110);
}

std::vector<RecoveryProcess> TenProcesses() {
  std::vector<RecoveryProcess> out;
  for (int i = 0; i < 10; ++i) out.push_back(MakeProcess(i * 100));
  return out;
}

TEST(SplitByTimeTest, FractionsMatchPaperTests) {
  const auto processes = TenProcesses();
  for (const auto& [fraction, train_size] :
       std::vector<std::pair<double, std::size_t>>{
           {0.2, 2}, {0.4, 4}, {0.6, 6}, {0.8, 8}}) {
    const TrainTestSplit split = SplitByTime(processes, fraction);
    EXPECT_EQ(split.train.size(), train_size) << fraction;
    EXPECT_EQ(split.test.size(), 10 - train_size) << fraction;
  }
}

TEST(SplitByTimeTest, TrainPrecedesTestInTime) {
  const auto processes = TenProcesses();
  const TrainTestSplit split = SplitByTime(processes, 0.4);
  ASSERT_FALSE(split.train.empty());
  ASSERT_FALSE(split.test.empty());
  EXPECT_LE(split.train.back().start_time(),
            split.test.front().start_time());
}

TEST(SplitByTimeTest, ContentsArePreservedInOrder) {
  const auto processes = TenProcesses();
  const TrainTestSplit split = SplitByTime(processes, 0.3);
  for (std::size_t i = 0; i < split.train.size(); ++i) {
    EXPECT_EQ(split.train[i].start_time(), processes[i].start_time());
  }
  for (std::size_t i = 0; i < split.test.size(); ++i) {
    EXPECT_EQ(split.test[i].start_time(),
              processes[split.train.size() + i].start_time());
  }
}

TEST(SplitByTimeDeathTest, RejectsUnsortedInput) {
  std::vector<RecoveryProcess> processes;
  processes.push_back(MakeProcess(100));
  processes.push_back(MakeProcess(50));
  EXPECT_DEATH(SplitByTime(processes, 0.5), "AER_CHECK");
}

TEST(SplitByTimeDeathTest, RejectsDegenerateFractions) {
  const auto processes = TenProcesses();
  EXPECT_DEATH(SplitByTime(processes, 0.0), "AER_CHECK");
  EXPECT_DEATH(SplitByTime(processes, 1.0), "AER_CHECK");
}

}  // namespace
}  // namespace aer
