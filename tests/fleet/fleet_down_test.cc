// Regression coverage for whole-fleet-down handling.
//
// The seed engine's fleet-down branch now runs off a live O(1) down-counter
// (cluster_sim.cc) instead of inspecting the healthy-pool container; this
// suite pins the observable behavior — fault_arrivals_skipped — under a
// workload that saturates the fleet: arrivals far faster than repairs, so
// every machine spends most of its time down.
#include <gtest/gtest.h>

#include "cluster/cluster_sim.h"
#include "cluster/fault_catalog.h"
#include "cluster/user_policy.h"
#include "common/thread_pool.h"
#include "fleet/fleet_sim.h"

namespace aer::fleet {
namespace {

// Golden skip count for SaturatedConfig() under the seed engine, recorded
// from the bit-exact run (stable across platforms: aer::Rng is xoshiro with
// fixed integer paths).
constexpr std::int64_t kSeedGoldenSkipped = 1538;

// Two machines, a fault every ~35 simulated minutes per machine, repairs
// taking hours: the fleet is fully down for most of the run.
ClusterSimConfig SaturatedConfig() {
  ClusterSimConfig config;
  config.num_machines = 2;
  config.duration = 30 * kDay;
  config.machine_mtbf_days = 0.025;
  config.seed = 17;
  return config;
}

TEST(FleetDownTest, SeedEngineSkipsArrivalsWhenFleetDown) {
  UserDefinedPolicy policy;
  const SimulationResult result =
      ClusterSimulator(SaturatedConfig(), MakeDefaultCatalog()).Run(policy);
  // Golden value: pins the O(1) down-counter rewrite to the original
  // pool-empty behavior (bit-exact RNG makes this stable across platforms).
  EXPECT_EQ(result.fault_arrivals_skipped, kSeedGoldenSkipped);
  EXPECT_GT(result.processes_completed, 0);
}

TEST(FleetDownTest, CompatEngineMatchesSeedSkipCount) {
  UserDefinedPolicy policy;
  const SimulationResult result =
      FleetSimulator(FleetSimConfig{.sim = SaturatedConfig()},
                     MakeDefaultCatalog())
          .RunSeedCompat(policy);
  EXPECT_EQ(result.fault_arrivals_skipped, kSeedGoldenSkipped);
}

// The sharded engine has per-machine skip semantics (a fault on a down
// machine is lost rather than redirected), so its count is pinned
// separately — and must not depend on thread count.
TEST(FleetDownTest, ShardedEngineSkipCountThreadInvariant) {
  const FleetSimConfig config{.sim = SaturatedConfig(), .num_shards = 2};
  UserDefinedPolicy serial_policy;
  const SimulationResult serial =
      FleetSimulator(config, MakeDefaultCatalog()).Run(serial_policy);
  EXPECT_GT(serial.fault_arrivals_skipped, 0);
  EXPECT_GT(serial.processes_completed, 0);

  ThreadPool pool(2);
  UserDefinedPolicy parallel_policy;
  const SimulationResult parallel =
      FleetSimulator(config, MakeDefaultCatalog())
          .Run(parallel_policy, &pool);
  EXPECT_EQ(parallel.fault_arrivals_skipped, serial.fault_arrivals_skipped);
}

}  // namespace
}  // namespace aer::fleet
