// Randomized invariant checks for the sharded fleet engine over generated
// fault catalogs: accounting identities that must hold for every run,
// regardless of catalog shape or policy.
//
//   1. total_downtime == Σ (ground_truth.end - ground_truth.start), and the
//      same sum recomputed from the emitted log via SegmentIntoProcesses.
//   2. ground_truth[i] is aligned with SegmentIntoProcesses(log).processes[i]
//      (same machine, same start, same end).
//   3. No machine is double-booked: per machine, process intervals are
//      disjoint and ordered.
//   4. processes_completed == ground_truth.size(), and every log is
//      well-formed (Success only closes an open process — segmentation
//      reports no orphans).
//
// Runs under the robustness label, i.e. also under the ASan+UBSan and TSan
// CI legs; the 4-thread pool makes TSan actually see the shard handoff.
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/fault_catalog.h"
#include "cluster/user_policy.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "fleet/fleet_sim.h"
#include "log/recovery_process.h"

namespace aer::fleet {
namespace {

void CheckInvariants(const SimulationResult& result) {
  // Downtime identity against the ground truth.
  SimTime gt_downtime = 0;
  for (const ProcessGroundTruth& gt : result.ground_truth) {
    EXPECT_GE(gt.end, gt.start);
    gt_downtime += gt.end - gt.start;
  }
  EXPECT_EQ(result.total_downtime, gt_downtime);
  EXPECT_EQ(result.processes_completed,
            static_cast<std::int64_t>(result.ground_truth.size()));

  // Recompute from the log: segmentation must see exactly the same
  // processes, in the same (start, machine) order, with the same spans.
  const SegmentationResult seg = SegmentIntoProcesses(result.log);
  EXPECT_EQ(seg.incomplete, 0);
  EXPECT_EQ(seg.orphan_entries, 0);
  ASSERT_EQ(seg.processes.size(), result.ground_truth.size());
  SimTime log_downtime = 0;
  for (std::size_t i = 0; i < seg.processes.size(); ++i) {
    const RecoveryProcess& p = seg.processes[i];
    const ProcessGroundTruth& gt = result.ground_truth[i];
    ASSERT_EQ(p.machine(), gt.machine) << "process " << i;
    ASSERT_EQ(p.start_time(), gt.start) << "process " << i;
    ASSERT_EQ(p.success_time(), gt.end) << "process " << i;
    log_downtime += p.downtime();
  }
  EXPECT_EQ(log_downtime, result.total_downtime);

  // No machine double-booked: intervals per machine are ordered and
  // non-overlapping (a new process opens no earlier than the previous
  // Success; same-second reuse is legal in both engines).
  std::map<MachineId, SimTime> last_end;
  for (const RecoveryProcess& p : seg.processes) {
    const auto it = last_end.find(p.machine());
    if (it != last_end.end()) {
      EXPECT_GE(p.start_time(), it->second)
          << "machine " << p.machine() << " double-booked";
    }
    last_end[p.machine()] = p.success_time();
  }
}

// A randomized catalog configuration: fault-count, rate shape, noise and
// aux-determinism all drawn from the meta-seed.
CatalogConfig RandomCatalogConfig(Rng& rng) {
  CatalogConfig config;
  config.num_faults = 20 + rng.NextBounded(120);
  config.head_count = 10 + rng.NextBounded(config.num_faults - 10);
  config.head_mass = 0.8 + 0.19 * rng.NextDouble();
  config.rate_exponent = 1.1 + rng.NextDouble();
  config.deterministic_aux_fraction = rng.NextDouble();
  config.generic_symptom_probability = 0.02 * rng.NextDouble();
  config.num_generic_symptoms = 1 + static_cast<int>(rng.NextBounded(5));
  config.seed = rng.Next();
  return config;
}

TEST(FleetInvariantTest, RandomizedCatalogsShardedRun) {
  Rng meta(0xf1ee7);
  ThreadPool pool(4);
  for (int round = 0; round < 8; ++round) {
    const FaultCatalog catalog = MakeDefaultCatalog(RandomCatalogConfig(meta));
    ClusterSimConfig sim;
    sim.num_machines = 400 + static_cast<int>(meta.NextBounded(400));
    sim.duration = 20 * kDay;
    sim.machine_mtbf_days = 4.0 + 6.0 * meta.NextDouble();
    sim.machine_speed_spread = 0.3 * meta.NextDouble();
    sim.diurnal_amplitude = 0.5 * meta.NextDouble();
    sim.cross_fault_noise_probability = 0.05 * meta.NextDouble();
    sim.seed = meta.Next();
    const FleetSimConfig config{
        .sim = sim, .num_shards = 1 + static_cast<int>(meta.NextBounded(12))};

    UserDefinedPolicy policy;
    const SimulationResult result =
        FleetSimulator(config, catalog).Run(policy, &pool);
    SCOPED_TRACE(testing::Message() << "round " << round);
    EXPECT_GT(result.processes_completed, 0);
    CheckInvariants(result);
  }
}

TEST(FleetInvariantTest, RandomizedCatalogsCompatRun) {
  Rng meta(0xc0ffee);
  for (int round = 0; round < 4; ++round) {
    const FaultCatalog catalog = MakeDefaultCatalog(RandomCatalogConfig(meta));
    ClusterSimConfig sim;
    sim.num_machines = 100 + static_cast<int>(meta.NextBounded(200));
    sim.duration = 15 * kDay;
    sim.machine_mtbf_days = 3.0 + 5.0 * meta.NextDouble();
    sim.seed = meta.Next();

    UserDefinedPolicy policy;
    const SimulationResult result =
        FleetSimulator(FleetSimConfig{.sim = sim}, catalog)
            .RunSeedCompat(policy);
    SCOPED_TRACE(testing::Message() << "round " << round);
    EXPECT_GT(result.processes_completed, 0);
    CheckInvariants(result);
  }
}

}  // namespace
}  // namespace aer::fleet
