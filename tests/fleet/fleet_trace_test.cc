// Fleet-scale tracing determinism: an attached TraceCollector's contents
// must be byte-identical for any thread count and any shard count (the
// per-shard buffers are merged with MergeShards after the pool barrier,
// same discipline as the log merge), sampling must bound the collector
// without breaking complete-or-nothing, and tracing must never perturb the
// simulation itself.
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/fault_catalog.h"
#include "cluster/user_policy.h"
#include "common/thread_pool.h"
#include "fleet/fleet_sim.h"
#include "obs/trace_collector.h"
#include "obs/trace_dag.h"

namespace aer::fleet {
namespace {

ClusterSimConfig WorkloadConfig() {
  ClusterSimConfig config;
  config.num_machines = 60;
  config.duration = 10 * kDay;
  config.machine_mtbf_days = 2.0;
  config.seed = 23;
  return config;
}

std::vector<obs::TraceRecord> RunTraced(int num_shards, int num_threads,
                                        double sample_probability = 1.0) {
  UserDefinedPolicy policy;
  FleetSimConfig config;
  config.sim = WorkloadConfig();
  config.num_shards = num_shards;
  obs::TraceCollector traces({.sample_probability = sample_probability});
  FleetSimulator sim(config, MakeDefaultCatalog());
  sim.SetTraceCollector(&traces);
  if (num_threads > 1) {
    ThreadPool pool(num_threads);
    sim.Run(policy, &pool);
  } else {
    sim.Run(policy, nullptr);
  }
  return traces.Snapshot();
}

TEST(FleetTraceTest, ThreadAndShardCountInvariant) {
  // {1, 2, 8} worker threads x shard splits: every combination produces the
  // same byte stream (ISSUE acceptance surface).
  const std::vector<obs::TraceRecord> reference = RunTraced(4, 1);
  ASSERT_FALSE(reference.empty());
  EXPECT_EQ(RunTraced(4, 2), reference);
  EXPECT_EQ(RunTraced(4, 8), reference);
  // Shard-count changes don't move records either (merge is canonical).
  EXPECT_EQ(RunTraced(1, 1), reference);
  EXPECT_EQ(RunTraced(8, 8), reference);
  // And the stream stitches into a well-formed DAG set: every process
  // roots at an incident and parents point backward.
  const obs::TraceDag dag = obs::BuildTraceDag(reference);
  ASSERT_FALSE(dag.processes.empty());
  for (const obs::TraceProcess& process : dag.processes) {
    ASSERT_FALSE(process.nodes.empty());
    EXPECT_EQ(process.nodes[0].parent, -1);
    for (std::size_t i = 1; i < process.nodes.size(); ++i) {
      EXPECT_LT(process.nodes[i].parent, static_cast<int>(i));
    }
  }
}

TEST(FleetTraceTest, SamplingIsCompleteOrNothingAndDeterministic) {
  const std::vector<obs::TraceRecord> full = RunTraced(4, 2, 1.0);
  const std::vector<obs::TraceRecord> sampled = RunTraced(4, 2, 0.25);
  ASSERT_FALSE(full.empty());
  ASSERT_LT(sampled.size(), full.size());
  // The sampled stream is exactly the full stream filtered by the keep
  // decision: kept traces arrive complete, dropped traces leave nothing.
  obs::TraceCollector decider({.sample_probability = 0.25});
  std::vector<obs::TraceRecord> expected;
  for (obs::TraceRecord r : full) {
    if (!decider.Sampled(r.trace_id)) continue;
    r.seq = 0;
    expected.push_back(std::move(r));
  }
  std::vector<obs::TraceRecord> actual;
  for (obs::TraceRecord r : sampled) {
    r.seq = 0;
    actual.push_back(std::move(r));
  }
  EXPECT_EQ(actual, expected);
  // Same rate, different thread count: identical sampled stream.
  EXPECT_EQ(RunTraced(4, 8, 0.25), sampled);
}

TEST(FleetTraceTest, TracingDoesNotPerturbTheSimulation) {
  UserDefinedPolicy policy;
  FleetSimConfig config;
  config.sim = WorkloadConfig();
  config.num_shards = 4;
  FleetSimulator plain(config, MakeDefaultCatalog());
  const SimulationResult untraced = plain.Run(policy);

  UserDefinedPolicy traced_policy;
  obs::TraceCollector traces;
  FleetSimulator traced(config, MakeDefaultCatalog());
  traced.SetTraceCollector(&traces);
  const SimulationResult with_traces = traced.Run(traced_policy);

  std::ostringstream a;
  untraced.log.Write(a);
  std::ostringstream b;
  with_traces.log.Write(b);
  EXPECT_EQ(a.str(), b.str());
  EXPECT_GT(traces.recorded_count(), 0);
}

}  // namespace
}  // namespace aer::fleet
