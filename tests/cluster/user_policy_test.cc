#include "cluster/user_policy.h"

#include <gtest/gtest.h>

namespace aer {
namespace {

RecoveryContext Ctx(std::span<const RepairAction> tried,
                    SimTime last_recovery_end = -1,
                    SimTime process_start = 1000000) {
  RecoveryContext ctx;
  ctx.machine = 1;
  ctx.initial_symptom = 0;
  ctx.initial_symptom_name = "sym";
  ctx.tried = tried;
  ctx.process_start = process_start;
  ctx.now = process_start;
  ctx.last_recovery_end = last_recovery_end;
  return ctx;
}

TEST(UserDefinedPolicyTest, EscalatesThroughLevels) {
  UserDefinedPolicy policy;  // default: {1, 2, 2, unlimited}
  std::vector<RepairAction> tried;
  const RepairAction expected[] = {
      RepairAction::kTryNop,  RepairAction::kReboot, RepairAction::kReboot,
      RepairAction::kReimage, RepairAction::kReimage, RepairAction::kRma,
      RepairAction::kRma};
  for (RepairAction want : expected) {
    const RepairAction got = policy.ChooseAction(Ctx(tried));
    EXPECT_EQ(got, want);
    tried.push_back(got);
  }
}

TEST(UserDefinedPolicyTest, ChoiceDependsOnlyOnTriedMultiset) {
  UserDefinedPolicy policy;
  const std::vector<RepairAction> a = {RepairAction::kTryNop,
                                       RepairAction::kReboot};
  const std::vector<RepairAction> b = {RepairAction::kReboot,
                                       RepairAction::kTryNop};
  EXPECT_EQ(policy.ChooseAction(Ctx(a)), policy.ChooseAction(Ctx(b)));
}

TEST(UserDefinedPolicyTest, RecurringFailureSkipsTryNop) {
  UserDefinedPolicy policy;
  const SimTime start = 100 * kHour;
  // Previous recovery 1 hour ago: inside the 6h window.
  EXPECT_EQ(policy.ChooseAction(Ctx({}, start - kHour, start)),
            RepairAction::kReboot);
  // Previous recovery 10 hours ago: outside the window.
  EXPECT_EQ(policy.ChooseAction(Ctx({}, start - 10 * kHour, start)),
            RepairAction::kTryNop);
  // No history (offline replay): cheapest first.
  EXPECT_EQ(policy.ChooseAction(Ctx({}, -1, start)), RepairAction::kTryNop);
}

TEST(UserDefinedPolicyTest, CustomTryLimits) {
  EscalationConfig config;
  config.max_tries = {2, 1, 0, 1000};  // skip REIMAGE entirely
  UserDefinedPolicy policy(config);
  std::vector<RepairAction> tried;
  const RepairAction expected[] = {
      RepairAction::kTryNop, RepairAction::kTryNop, RepairAction::kReboot,
      RepairAction::kRma};
  for (RepairAction want : expected) {
    const RepairAction got = policy.ChooseAction(Ctx(tried));
    EXPECT_EQ(got, want);
    tried.push_back(got);
  }
}

TEST(UserDefinedPolicyTest, NameIsStable) {
  UserDefinedPolicy policy;
  EXPECT_EQ(policy.name(), "user-defined");
}

class EscalationLimitTest
    : public ::testing::TestWithParam<std::array<int, kNumActions>> {};

TEST_P(EscalationLimitTest, NeverExceedsPerLevelLimits) {
  EscalationConfig config;
  config.max_tries = GetParam();
  UserDefinedPolicy policy(config);
  std::vector<RepairAction> tried;
  std::array<int, kNumActions> used = {};
  for (int step = 0; step < 12; ++step) {
    const RepairAction a = policy.ChooseAction(Ctx(tried));
    ++used[static_cast<std::size_t>(ActionIndex(a))];
    tried.push_back(a);
    if (a != RepairAction::kRma) {
      EXPECT_LE(used[static_cast<std::size_t>(ActionIndex(a))],
                config.max_tries[static_cast<std::size_t>(ActionIndex(a))]);
    }
    // Escalation never weakens: every new action is >= the previous max
    // among exhausted levels... simply check monotone non-decreasing.
    if (tried.size() >= 2) {
      EXPECT_GE(ActionStrength(tried.back()),
                ActionStrength(tried[tried.size() - 2]));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Limits, EscalationLimitTest,
    ::testing::Values(std::array<int, kNumActions>{1, 2, 2, 1000},
                      std::array<int, kNumActions>{2, 2, 2, 1000},
                      std::array<int, kNumActions>{1, 1, 1, 1000},
                      std::array<int, kNumActions>{0, 3, 1, 1000},
                      std::array<int, kNumActions>{3, 0, 0, 1000}));

}  // namespace
}  // namespace aer
