#include "cluster/fault_catalog.h"

#include <set>

#include <gtest/gtest.h>

namespace aer {
namespace {

TEST(FaultCatalogTest, DefaultHasConfiguredSize) {
  const FaultCatalog catalog = MakeDefaultCatalog();
  EXPECT_EQ(catalog.faults.size(), CatalogConfig{}.num_faults);
  EXPECT_EQ(catalog.generic_symptoms.size(), 3u);
}

TEST(FaultCatalogTest, DeterministicForSeed) {
  const FaultCatalog a = MakeDefaultCatalog();
  const FaultCatalog b = MakeDefaultCatalog();
  ASSERT_EQ(a.faults.size(), b.faults.size());
  for (std::size_t i = 0; i < a.faults.size(); ++i) {
    EXPECT_EQ(a.faults[i].name, b.faults[i].name);
    EXPECT_EQ(a.faults[i].primary_symptom, b.faults[i].primary_symptom);
    EXPECT_DOUBLE_EQ(a.faults[i].relative_rate, b.faults[i].relative_rate);
    for (int ai = 0; ai < kNumActions; ++ai) {
      EXPECT_DOUBLE_EQ(
          a.faults[i].responses[static_cast<std::size_t>(ai)].mean_duration_s,
          b.faults[i].responses[static_cast<std::size_t>(ai)].mean_duration_s);
    }
  }
}

TEST(FaultCatalogTest, DifferentSeedsDiffer) {
  CatalogConfig other;
  other.seed = 12345;
  const FaultCatalog a = MakeDefaultCatalog();
  const FaultCatalog b = MakeDefaultCatalog(other);
  int differing = 0;
  for (std::size_t i = 0; i < a.faults.size(); ++i) {
    if (a.faults[i].primary_symptom != b.faults[i].primary_symptom) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 10);
}

TEST(FaultCatalogTest, PrimarySymptomsAreUnique) {
  const FaultCatalog catalog = MakeDefaultCatalog();
  std::set<std::string> primaries;
  for (const FaultType& f : catalog.faults) {
    EXPECT_TRUE(primaries.insert(f.primary_symptom).second)
        << "duplicate primary symptom " << f.primary_symptom;
  }
}

TEST(FaultCatalogTest, SecondarySymptomsDoNotCollideAcrossFaults) {
  const FaultCatalog catalog = MakeDefaultCatalog();
  std::set<std::string> names;
  for (const FaultType& f : catalog.faults) {
    for (const SecondarySymptom& s : f.secondary_symptoms) {
      EXPECT_TRUE(names.insert(s.name).second) << s.name;
    }
  }
}

TEST(FaultCatalogTest, RatesSumToOneAndDecreaseInHead) {
  const FaultCatalog catalog = MakeDefaultCatalog();
  double total = 0.0;
  for (const FaultType& f : catalog.faults) total += f.relative_rate;
  EXPECT_NEAR(total, 1.0, 1e-9);
  const CatalogConfig config;
  for (std::size_t k = 1; k < config.head_count; ++k) {
    EXPECT_GT(catalog.faults[k - 1].relative_rate,
              catalog.faults[k].relative_rate);
  }
}

TEST(FaultCatalogTest, HeadMassMatchesConfig) {
  const CatalogConfig config;
  const FaultCatalog catalog = MakeDefaultCatalog(config);
  double head = 0.0;
  for (std::size_t k = 0; k < config.head_count; ++k) {
    head += catalog.faults[k].relative_rate;
  }
  EXPECT_NEAR(head, config.head_mass, 1e-9);
}

TEST(FaultCatalogTest, PinnedImprovableRanks) {
  const FaultCatalog catalog = MakeDefaultCatalog();
  EXPECT_EQ(ArchetypeOf(catalog.faults[0]), FaultArchetype::kStuckService);
  EXPECT_EQ(ArchetypeOf(catalog.faults[34]), FaultArchetype::kOsCorruption);
  EXPECT_EQ(ArchetypeOf(catalog.faults[38]), FaultArchetype::kOsCorruption);
}

TEST(FaultCatalogTest, HeadHasNoHardwareOrOsCorruptionBesidesPins) {
  const FaultCatalog catalog = MakeDefaultCatalog();
  for (std::size_t k = 1; k < 15; ++k) {
    const FaultArchetype archetype = ArchetypeOf(catalog.faults[k]);
    EXPECT_NE(archetype, FaultArchetype::kHardware) << "rank " << k;
    EXPECT_NE(archetype, FaultArchetype::kOsCorruption) << "rank " << k;
  }
}

TEST(FaultCatalogTest, ArchetypeCurveShapes) {
  const FaultCatalog catalog = MakeDefaultCatalog();
  for (const FaultType& f : catalog.faults) {
    const auto& r = f.responses;
    switch (ArchetypeOf(f)) {
      case FaultArchetype::kTransient:
        EXPECT_GT(r[0].cure_probability, 0.5);
        break;
      case FaultArchetype::kStuckService:
      case FaultArchetype::kOsCorruption:
      case FaultArchetype::kHardware:
        EXPECT_LT(r[0].cure_probability, 0.1)
            << "weak action must be near-useless for " << f.name;
        break;
      case FaultArchetype::kSoftwareHang:
      case FaultArchetype::kFlaky:
        break;
    }
    // All catalogs: monotone cure + certain manual repair (also enforced by
    // Validate, asserted here for the default instance).
    for (int i = 1; i < kNumActions; ++i) {
      EXPECT_GE(r[static_cast<std::size_t>(i)].cure_probability,
                r[static_cast<std::size_t>(i - 1)].cure_probability);
    }
    EXPECT_DOUBLE_EQ(r[3].cure_probability, 1.0);
  }
}

TEST(FaultCatalogTest, DurationsScaleWithActionStrength) {
  const FaultCatalog catalog = MakeDefaultCatalog();
  for (const FaultType& f : catalog.faults) {
    // Jitter is bounded (0.75-1.35 plus archetype scale <= 1.3), so strength
    // order must survive: each level's duration base is ~2.6x+ the previous.
    EXPECT_LT(f.responses[0].mean_duration_s, f.responses[1].mean_duration_s);
    EXPECT_LT(f.responses[1].mean_duration_s, f.responses[2].mean_duration_s);
    EXPECT_LT(f.responses[2].mean_duration_s, f.responses[3].mean_duration_s);
  }
}

class CatalogSeedTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CatalogSeedTest, EverySeedProducesValidCatalog) {
  CatalogConfig config;
  config.seed = GetParam();
  const FaultCatalog catalog = MakeDefaultCatalog(config);
  catalog.Validate();
  EXPECT_EQ(ArchetypeOf(catalog.faults[0]), FaultArchetype::kStuckService);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CatalogSeedTest,
                         ::testing::Values(1, 2, 3, 99, 1234, 987654321));

}  // namespace
}  // namespace aer
