#include "cluster/cluster_sim.h"

#include <map>
#include <sstream>

#include <gtest/gtest.h>

#include "cluster/fault_catalog.h"
#include "cluster/trace.h"
#include "cluster/user_policy.h"
#include "log/recovery_process.h"

namespace aer {
namespace {

ClusterSimConfig SmallConfig() {
  ClusterSimConfig config;
  config.num_machines = 50;
  config.duration = 20 * kDay;
  config.machine_mtbf_days = 5.0;
  config.seed = 7;
  return config;
}

TEST(ClusterSimTest, DeterministicForSeed) {
  const FaultCatalog catalog = MakeDefaultCatalog();
  UserDefinedPolicy policy_a;
  UserDefinedPolicy policy_b;
  SimulationResult a = ClusterSimulator(SmallConfig(), catalog).Run(policy_a);
  SimulationResult b = ClusterSimulator(SmallConfig(), catalog).Run(policy_b);
  ASSERT_EQ(a.log.size(), b.log.size());
  for (std::size_t i = 0; i < a.log.size(); ++i) {
    ASSERT_EQ(a.log.entries()[i], b.log.entries()[i]) << "entry " << i;
  }
  EXPECT_EQ(a.total_downtime, b.total_downtime);
}

TEST(ClusterSimTest, DifferentSeedsDiffer) {
  const FaultCatalog catalog = MakeDefaultCatalog();
  UserDefinedPolicy policy;
  ClusterSimConfig other = SmallConfig();
  other.seed = 8;
  SimulationResult a = ClusterSimulator(SmallConfig(), catalog).Run(policy);
  SimulationResult b = ClusterSimulator(other, catalog).Run(policy);
  EXPECT_NE(a.log.size(), b.log.size());
}

TEST(ClusterSimTest, LogIsWellFormedPerMachine) {
  const FaultCatalog catalog = MakeDefaultCatalog();
  UserDefinedPolicy policy;
  const SimulationResult result =
      ClusterSimulator(SmallConfig(), catalog).Run(policy);
  ASSERT_GT(result.log.size(), 100u);

  // Per machine: Success only after >= 1 action; actions only after a
  // symptom; time non-decreasing.
  std::map<MachineId, int> actions_since_symptom;
  std::map<MachineId, bool> in_process;
  SimTime last_time = 0;
  for (const LogEntry& e : result.log.entries()) {
    EXPECT_GE(e.time, last_time);
    last_time = e.time;
    switch (e.kind) {
      case EntryKind::kSymptom:
        in_process[e.machine] = true;
        break;
      case EntryKind::kAction:
        EXPECT_TRUE(in_process[e.machine]);
        ++actions_since_symptom[e.machine];
        break;
      case EntryKind::kSuccess:
        EXPECT_TRUE(in_process[e.machine]);
        EXPECT_GE(actions_since_symptom[e.machine], 1);
        in_process[e.machine] = false;
        actions_since_symptom[e.machine] = 0;
        break;
    }
  }
}

TEST(ClusterSimTest, GroundTruthMatchesCompletedProcesses) {
  const FaultCatalog catalog = MakeDefaultCatalog();
  UserDefinedPolicy policy;
  const SimulationResult result =
      ClusterSimulator(SmallConfig(), catalog).Run(policy);
  EXPECT_EQ(result.ground_truth.size(),
            static_cast<std::size_t>(result.processes_completed));
  SimTime downtime = 0;
  for (const ProcessGroundTruth& gt : result.ground_truth) {
    EXPECT_GE(gt.fault_index, 0);
    EXPECT_LT(static_cast<std::size_t>(gt.fault_index),
              catalog.faults.size());
    EXPECT_GT(gt.end, gt.start);
    downtime += gt.end - gt.start;
  }
  EXPECT_EQ(downtime, result.total_downtime);
}

TEST(ClusterSimTest, NCapForcesManualRepair) {
  // A fault nothing cures except manual repair, with a tiny cap.
  FaultCatalog catalog;
  FaultType f;
  f.name = "F000-hardware";
  f.primary_symptom = "F000-Dead";
  f.responses = {{{0.0, 100, 0.1}, {0.0, 200, 0.1}, {0.0, 300, 0.1},
                  {1.0, 1000, 0.1}}};
  f.relative_rate = 1.0;
  catalog.faults.push_back(f);

  ClusterSimConfig config = SmallConfig();
  config.max_actions_per_process = 5;
  UserDefinedPolicy policy;  // would try T,B,B,I,I,... without the cap
  const SimulationResult result =
      ClusterSimulator(config, catalog).Run(policy);
  ASSERT_GT(result.processes_completed, 10);

  // Count actions per machine's open process: exactly 5, the last being RMA.
  std::map<MachineId, int> actions;
  for (const LogEntry& e : result.log.entries()) {
    if (e.kind == EntryKind::kAction) {
      const int n = ++actions[e.machine];
      if (n == config.max_actions_per_process) {
        EXPECT_EQ(e.action, RepairAction::kRma);
      }
      EXPECT_LE(n, config.max_actions_per_process);
    } else if (e.kind == EntryKind::kSuccess) {
      EXPECT_EQ(actions[e.machine], config.max_actions_per_process);
      actions[e.machine] = 0;
    }
  }
}

TEST(ClusterSimTest, FleetExhaustionSkipsArrivals) {
  // One machine, long repairs, rapid faults: most arrivals find no healthy
  // machine.
  FaultCatalog catalog;
  FaultType f;
  f.name = "F000-hardware";
  f.primary_symptom = "F000-Dead";
  f.responses = {{{0.0, 3600, 0.1}, {0.0, 3600, 0.1}, {0.0, 3600, 0.1},
                  {1.0, 10 * kDay, 0.1}}};
  f.relative_rate = 1.0;
  catalog.faults.push_back(f);

  ClusterSimConfig config;
  config.num_machines = 1;
  config.duration = 30 * kDay;
  config.machine_mtbf_days = 1.0;
  config.seed = 3;
  UserDefinedPolicy policy;
  const SimulationResult result =
      ClusterSimulator(config, catalog).Run(policy);
  EXPECT_GT(result.fault_arrivals_skipped, 0);
}

TEST(ClusterSimTest, SymptomsReemittedBetweenActions) {
  const FaultCatalog catalog = MakeDefaultCatalog();
  UserDefinedPolicy policy;
  const SimulationResult result =
      ClusterSimulator(SmallConfig(), catalog).Run(policy);
  // Look for the Table 1 pattern: action, symptom, action within one
  // machine's process.
  bool found = false;
  std::map<MachineId, bool> after_action;
  for (const LogEntry& e : result.log.entries()) {
    if (e.kind == EntryKind::kAction) {
      after_action[e.machine] = true;
    } else if (e.kind == EntryKind::kSymptom && after_action[e.machine]) {
      found = true;
      break;
    } else if (e.kind == EntryKind::kSuccess) {
      after_action[e.machine] = false;
    }
  }
  EXPECT_TRUE(found);
}

TEST(ClusterSimTest, CrossFaultNoiseInjectsForeignPrimaries) {
  FaultCatalog catalog = MakeDefaultCatalog();
  ClusterSimConfig config = SmallConfig();
  config.cross_fault_noise_probability = 0.5;
  UserDefinedPolicy policy;
  const SimulationResult result =
      ClusterSimulator(config, catalog).Run(policy);
  std::int64_t noisy = 0;
  for (const ProcessGroundTruth& gt : result.ground_truth) {
    if (gt.noisy) ++noisy;
  }
  // Half the processes carry cross-fault noise (minus same-fault draws and
  // generic-only noise adds some more).
  EXPECT_GT(static_cast<double>(noisy) /
                static_cast<double>(result.ground_truth.size()),
            0.3);
}

TEST(ClusterSimTest, MachineSpeedSpreadScalesDurations) {
  // A single deterministic-cure fault isolates the duration effect.
  FaultCatalog catalog;
  FaultType f;
  f.name = "F000-transient";
  f.primary_symptom = "F000-Sym";
  f.responses = {{{1.0, 3600, 0.0}, {1.0, 3600, 0.0}, {1.0, 3600, 0.0},
                  {1.0, 3600, 0.0}}};
  f.relative_rate = 1.0;
  catalog.faults.push_back(f);

  ClusterSimConfig config = SmallConfig();
  config.machine_speed_spread = 0.5;
  UserDefinedPolicy policy;
  const SimulationResult result =
      ClusterSimulator(config, catalog).Run(policy);

  // Per-machine mean action duration must vary well beyond sampling noise
  // (durations have sigma = 0, so all within-machine variation is zero).
  std::map<MachineId, std::pair<double, int>> per_machine;
  const auto segmented = SegmentIntoProcesses(result.log);
  for (const RecoveryProcess& p : segmented.processes) {
    for (const ActionAttempt& a : p.attempts()) {
      // Subtract the decision gap's contribution by using only the cured
      // (final) attempt whose cost is the pure duration.
      if (!a.cured) continue;
      auto& [sum, n] = per_machine[p.machine()];
      sum += static_cast<double>(a.cost);
      ++n;
    }
  }
  double lo = 1e18;
  double hi = 0.0;
  for (const auto& [machine, sum_n] : per_machine) {
    if (sum_n.second < 3) continue;
    const double mean = sum_n.first / sum_n.second;
    lo = std::min(lo, mean);
    hi = std::max(hi, mean);
  }
  EXPECT_GT(hi / lo, 1.3) << "speed spread must differentiate machines";

  // And spread 0 keeps every machine identical.
  ClusterSimConfig homogeneous = SmallConfig();
  UserDefinedPolicy policy2;
  const SimulationResult r2 =
      ClusterSimulator(homogeneous, catalog).Run(policy2);
  const auto seg2 = SegmentIntoProcesses(r2.log);
  for (const RecoveryProcess& p : seg2.processes) {
    for (const ActionAttempt& a : p.attempts()) {
      // sigma = 0: exp(log(3600)) truncates to 3599 or 3600 in integer time.
      if (a.cured) {
        EXPECT_NEAR(static_cast<double>(a.cost), 3600.0, 1.0);
      }
    }
  }
}

TEST(ClusterSimTest, DiurnalAmplitudeShapesArrivals) {
  const FaultCatalog catalog = MakeDefaultCatalog();
  ClusterSimConfig config = SmallConfig();
  config.num_machines = 300;
  config.machine_mtbf_days = 2.0;
  config.duration = 30 * kDay;
  config.diurnal_amplitude = 0.8;
  UserDefinedPolicy policy;
  const SimulationResult result =
      ClusterSimulator(config, catalog).Run(policy);

  // Count process starts in the peak half-day (sin > 0: hours 0-12) vs the
  // trough half-day.
  std::int64_t peak = 0;
  std::int64_t trough = 0;
  for (const ProcessGroundTruth& gt : result.ground_truth) {
    ((gt.start % kDay) < kDay / 2 ? peak : trough) += 1;
  }
  ASSERT_GT(peak + trough, 1000);
  // With amplitude 0.8 the half-day integrals are 1 ± 2*0.8/π ≈ 1.51 vs
  // 0.49: about a 3:1 ratio.
  EXPECT_GT(static_cast<double>(peak) / static_cast<double>(trough), 2.0);

  // Mean rate is preserved by thinning: total arrivals comparable to the
  // homogeneous run (within sampling noise).
  ClusterSimConfig flat = config;
  flat.diurnal_amplitude = 0.0;
  UserDefinedPolicy policy2;
  const SimulationResult flat_result =
      ClusterSimulator(flat, catalog).Run(policy2);
  const double ratio =
      static_cast<double>(result.processes_completed) /
      static_cast<double>(flat_result.processes_completed);
  EXPECT_GT(ratio, 0.9);
  EXPECT_LT(ratio, 1.1);
}

TEST(ClusterSimTest, TraceScalesAffectVolume) {
  const TraceConfig small = TraceConfigForScale("small");
  const TraceConfig def = TraceConfigForScale("default");
  const TraceConfig large = TraceConfigForScale("large");
  EXPECT_LT(small.sim.num_machines, def.sim.num_machines);
  EXPECT_LT(def.sim.num_machines, large.sim.num_machines);
  EXPECT_EQ(TraceConfigForScale("unknown").sim.num_machines,
            def.sim.num_machines);
}

TEST(ClusterSimTest, RecurringFailureShortcutAppearsInLog) {
  // The online policy starts at REBOOT for quickly-recurring failures; the
  // log must therefore contain processes whose first action is REBOOT.
  const TraceDataset dataset = GenerateTrace(TraceConfigForScale("small"));
  const auto segmented = SegmentIntoProcesses(dataset.result.log);
  std::int64_t reboot_first = 0;
  for (const RecoveryProcess& p : segmented.processes) {
    if (!p.attempts().empty() &&
        p.attempts().front().action == RepairAction::kReboot) {
      ++reboot_first;
    }
  }
  EXPECT_GT(reboot_first, 0);
  // ... but they are a small minority (the <5% divergence band that keeps
  // the Figure 7 validation tight).
  EXPECT_LT(static_cast<double>(reboot_first) /
                static_cast<double>(segmented.processes.size()),
            0.1);
}

}  // namespace
}  // namespace aer
