// Equivalence suite for the fleet simulator (docs/FLEET_SIM.md):
//
//  1. FleetSimulator::RunSeedCompat is byte-identical to the seed engine
//     (ClusterSimulator::Run) — same log serialization, same entries, same
//     SimulationResult fields — across seeds × fleet sizes × policies,
//     including the heterogeneity / diurnal / cross-fault-noise paths.
//  2. FleetSimulator::Run (sharded) is byte-identical to itself for any
//     thread count and any shard count.
//
// Together these are the wheel-vs-heap proof (compat replays the seed's
// exact draw order on the EventWheel) and the determinism proof the
// parallel engine rests on.
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/cluster_sim.h"
#include "cluster/fault_catalog.h"
#include "cluster/user_policy.h"
#include "common/thread_pool.h"
#include "core/policy_generator.h"
#include "fleet/fleet_sim.h"
#include "rl/policy.h"

namespace aer::fleet {
namespace {

std::string Serialize(const RecoveryLog& log) {
  std::ostringstream os;
  log.Write(os);
  return os.str();
}

void ExpectResultsIdentical(const SimulationResult& a,
                            const SimulationResult& b) {
  // Byte-level: the paper-format serialization (resolves symptom ids
  // through each log's own intern table).
  ASSERT_EQ(Serialize(a.log), Serialize(b.log));
  // Entry-level: ids themselves must match too (same intern order).
  ASSERT_EQ(a.log.size(), b.log.size());
  for (std::size_t i = 0; i < a.log.size(); ++i) {
    ASSERT_EQ(a.log.entries()[i], b.log.entries()[i]) << "entry " << i;
  }
  ASSERT_EQ(a.ground_truth.size(), b.ground_truth.size());
  for (std::size_t i = 0; i < a.ground_truth.size(); ++i) {
    const ProcessGroundTruth& ga = a.ground_truth[i];
    const ProcessGroundTruth& gb = b.ground_truth[i];
    ASSERT_EQ(ga.machine, gb.machine) << "ground truth " << i;
    ASSERT_EQ(ga.start, gb.start) << "ground truth " << i;
    ASSERT_EQ(ga.end, gb.end) << "ground truth " << i;
    ASSERT_EQ(ga.fault_index, gb.fault_index) << "ground truth " << i;
    ASSERT_EQ(ga.noisy, gb.noisy) << "ground truth " << i;
  }
  EXPECT_EQ(a.fault_arrivals_skipped, b.fault_arrivals_skipped);
  EXPECT_EQ(a.processes_completed, b.processes_completed);
  EXPECT_EQ(a.total_downtime, b.total_downtime);
}

// Fleet size → duration that keeps each run at a few hundred processes so
// the full matrix stays fast under the sanitizer legs.
SimTime DurationFor(int num_machines) {
  if (num_machines <= 1) return 180 * kDay;
  if (num_machines <= 7) return 90 * kDay;
  if (num_machines <= 100) return 30 * kDay;
  return 4 * kDay;
}

ClusterSimConfig MatrixConfig(std::uint64_t seed, int num_machines) {
  ClusterSimConfig config;
  config.num_machines = num_machines;
  config.duration = DurationFor(num_machines);
  config.machine_mtbf_days = 10.0;
  config.seed = seed;
  // Odd seeds exercise the optional paths: machine heterogeneity, diurnal
  // thinning, and cross-fault noise all consume extra draws, so draw-order
  // equivalence must hold with them on as well.
  if (seed % 2 == 1) {
    config.machine_speed_spread = 0.25;
    config.diurnal_amplitude = 0.4;
    config.cross_fault_noise_probability = 0.05;
  }
  return config;
}

// A trained Q policy for the second policy arm, generated once from a
// seed-engine log (the pipeline's normal path).
const TrainedPolicy& TrainedQPolicy() {
  static const TrainedPolicy* policy = [] {
    ClusterSimConfig config;
    config.num_machines = 200;
    config.duration = 60 * kDay;
    config.machine_mtbf_days = 10.0;
    config.seed = 301;
    UserDefinedPolicy user;
    const SimulationResult result =
        ClusterSimulator(config, MakeDefaultCatalog()).Run(user);
    return new TrainedPolicy(PolicyGenerator().Generate(result.log));
  }();
  return *policy;
}

class FleetEquivalenceTest : public testing::TestWithParam<bool> {};

// Seeds {1..5} × fleets {1, 7, 100, 10k} × {user policy, trained Q policy}:
// the wheel-based compat engine reproduces the seed engine byte for byte.
TEST_P(FleetEquivalenceTest, CompatByteIdenticalToSeedEngine) {
  const bool trained = GetParam();
  const FaultCatalog catalog = MakeDefaultCatalog();
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    for (const int machines : {1, 7, 100, 10000}) {
      const ClusterSimConfig config = MatrixConfig(seed, machines);

      SimulationResult seed_result;
      SimulationResult fleet_result;
      if (trained) {
        TrainedPolicy a = TrainedQPolicy();
        TrainedPolicy b = TrainedQPolicy();
        seed_result = ClusterSimulator(config, catalog).Run(a);
        fleet_result =
            FleetSimulator(FleetSimConfig{.sim = config}, catalog)
                .RunSeedCompat(b);
      } else {
        UserDefinedPolicy a;
        UserDefinedPolicy b;
        seed_result = ClusterSimulator(config, catalog).Run(a);
        fleet_result =
            FleetSimulator(FleetSimConfig{.sim = config}, catalog)
                .RunSeedCompat(b);
      }
      SCOPED_TRACE(testing::Message() << "seed=" << seed << " machines="
                                      << machines << " trained=" << trained);
      ExpectResultsIdentical(seed_result, fleet_result);
      EXPECT_GT(fleet_result.log.size(), 0u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Policies, FleetEquivalenceTest,
                         testing::Values(false, true),
                         [](const testing::TestParamInfo<bool>& info) {
                           return info.param ? "TrainedQPolicy"
                                             : "UserPolicy";
                         });

ClusterSimConfig ShardedConfig() {
  ClusterSimConfig config;
  config.num_machines = 3000;
  config.duration = 10 * kDay;
  config.machine_mtbf_days = 8.0;
  config.machine_speed_spread = 0.2;
  config.diurnal_amplitude = 0.3;
  config.seed = 99;
  return config;
}

// The sharded engine's output is a pure function of the config: 1, 2 and 8
// pool threads (and no pool at all) produce byte-identical results.
TEST(FleetShardingTest, ThreadCountInvariance) {
  const FaultCatalog catalog = MakeDefaultCatalog();
  const FleetSimConfig config{.sim = ShardedConfig(), .num_shards = 8};

  UserDefinedPolicy policy;
  const SimulationResult serial =
      FleetSimulator(config, catalog).Run(policy, nullptr);
  EXPECT_GT(serial.processes_completed, 100);
  for (const int threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    UserDefinedPolicy p;
    const SimulationResult parallel =
        FleetSimulator(config, catalog).Run(p, &pool);
    SCOPED_TRACE(testing::Message() << "threads=" << threads);
    ExpectResultsIdentical(serial, parallel);
  }
}

// Shard boundaries are not allowed to leak into the output either: the
// per-machine stream discipline makes 1, 5 and 32 shards byte-identical.
TEST(FleetShardingTest, ShardCountInvariance) {
  const FaultCatalog catalog = MakeDefaultCatalog();
  ThreadPool pool(4);

  UserDefinedPolicy policy;
  const FleetSimConfig one{.sim = ShardedConfig(), .num_shards = 1};
  const SimulationResult baseline =
      FleetSimulator(one, catalog).Run(policy, &pool);
  for (const int shards : {5, 32}) {
    const FleetSimConfig config{.sim = ShardedConfig(),
                                .num_shards = shards};
    UserDefinedPolicy p;
    const SimulationResult result =
        FleetSimulator(config, catalog).Run(p, &pool);
    SCOPED_TRACE(testing::Message() << "shards=" << shards);
    ExpectResultsIdentical(baseline, result);
  }
}

// Thread invariance holds with the trained policy in the loop too (pure
// ChooseAction invoked concurrently from shard threads).
TEST(FleetShardingTest, TrainedPolicyThreadInvariance) {
  const FaultCatalog catalog = MakeDefaultCatalog();
  const FleetSimConfig config{.sim = ShardedConfig(), .num_shards = 8};

  TrainedPolicy serial_policy = TrainedQPolicy();
  const SimulationResult serial =
      FleetSimulator(config, catalog).Run(serial_policy, nullptr);
  ThreadPool pool(8);
  TrainedPolicy parallel_policy = TrainedQPolicy();
  const SimulationResult parallel =
      FleetSimulator(config, catalog).Run(parallel_policy, &pool);
  ExpectResultsIdentical(serial, parallel);
}

// The compat mode rides the sharded engine's wheel; its repeatability is
// its own guarantee (two compat runs are bit-equal), independent of the
// seed engine being present.
TEST(FleetShardingTest, CompatIsDeterministic) {
  const FaultCatalog catalog = MakeDefaultCatalog();
  const FleetSimConfig config{.sim = MatrixConfig(3, 100)};
  UserDefinedPolicy a;
  UserDefinedPolicy b;
  const SimulationResult ra = FleetSimulator(config, catalog).RunSeedCompat(a);
  const SimulationResult rb = FleetSimulator(config, catalog).RunSeedCompat(b);
  ExpectResultsIdentical(ra, rb);
}

}  // namespace
}  // namespace aer::fleet
