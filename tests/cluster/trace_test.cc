#include "cluster/trace.h"

#include <cstdlib>

#include <gtest/gtest.h>

namespace aer {
namespace {

TEST(TraceTest, GenerateTraceIsDeterministic) {
  TraceConfig config = TraceConfigForScale("small");
  config.sim.num_machines = 120;
  config.sim.duration = 30 * kDay;
  const TraceDataset a = GenerateTrace(config);
  const TraceDataset b = GenerateTrace(config);
  ASSERT_EQ(a.result.log.size(), b.result.log.size());
  EXPECT_EQ(a.result.total_downtime, b.result.total_downtime);
  EXPECT_EQ(a.result.processes_completed, b.result.processes_completed);
  for (std::size_t i = 0; i < a.result.log.size(); ++i) {
    ASSERT_EQ(a.result.log.entries()[i], b.result.log.entries()[i]);
  }
}

TEST(TraceTest, ConfigFromEnvRespectsScale) {
  setenv("AER_SCALE", "large", 1);
  EXPECT_EQ(TraceConfigFromEnv().sim.num_machines,
            TraceConfigForScale("large").sim.num_machines);
  setenv("AER_SCALE", "small", 1);
  EXPECT_EQ(TraceConfigFromEnv().sim.num_machines,
            TraceConfigForScale("small").sim.num_machines);
  unsetenv("AER_SCALE");
  EXPECT_EQ(TraceConfigFromEnv().sim.num_machines,
            TraceConfigForScale("default").sim.num_machines);
}

TEST(TraceTest, VolumeScalesWithFleetAndHorizon) {
  TraceConfig small = TraceConfigForScale("small");
  small.sim.num_machines = 100;
  small.sim.duration = 20 * kDay;
  TraceConfig big = small;
  big.sim.num_machines = 400;
  const TraceDataset a = GenerateTrace(small);
  const TraceDataset b = GenerateTrace(big);
  // 4x machines at fixed per-machine MTBF => ~4x processes.
  const double ratio =
      static_cast<double>(b.result.processes_completed) /
      static_cast<double>(a.result.processes_completed);
  EXPECT_GT(ratio, 3.0);
  EXPECT_LT(ratio, 5.5);
}

TEST(TraceTest, EscalationConfigShapesTheLog) {
  // A baseline that never reboots produces logs with no REBOOT entries.
  TraceConfig config = TraceConfigForScale("small");
  config.sim.num_machines = 100;
  config.sim.duration = 20 * kDay;
  config.escalation.max_tries = {1, 0, 2, 1000};
  const TraceDataset dataset = GenerateTrace(config);
  for (const LogEntry& e : dataset.result.log.entries()) {
    if (e.kind == EntryKind::kAction) {
      EXPECT_NE(e.action, RepairAction::kReboot);
    }
  }
}

}  // namespace
}  // namespace aer
