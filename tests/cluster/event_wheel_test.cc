// Property/unit tests for the hierarchical timing wheel: ordering, tie-break
// determinism, multi-level cascade, cancel/reschedule semantics, and a
// randomized heap-vs-wheel differential.
#include "cluster/event_wheel.h"

#include <algorithm>
#include <functional>
#include <queue>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace aer {
namespace {

FleetEvent Ev(MachineId m) {
  FleetEvent e;
  e.machine = m;
  return e;
}

struct Popped {
  SimTime time;
  std::uint64_t tie;
  MachineId machine;
};

std::vector<Popped> DrainAll(EventWheel& wheel) {
  std::vector<Popped> out;
  ScheduledEvent e;
  while (wheel.PopNext(&e)) {
    out.push_back({e.time, e.tie, e.event.machine});
  }
  return out;
}

TEST(EventWheelTest, PopsInTimeOrder) {
  EventWheel wheel;
  const std::vector<SimTime> times = {500, 3, 70, 1, 4096, 64, 63, 65, 2};
  for (std::size_t i = 0; i < times.size(); ++i) {
    wheel.Schedule(times[i], /*tie=*/0, Ev(static_cast<MachineId>(i)));
  }
  EXPECT_EQ(wheel.size(), times.size());
  const std::vector<Popped> popped = DrainAll(wheel);
  ASSERT_EQ(popped.size(), times.size());
  std::vector<SimTime> sorted = times;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < popped.size(); ++i) {
    EXPECT_EQ(popped[i].time, sorted[i]);
  }
  EXPECT_TRUE(wheel.empty());
}

TEST(EventWheelTest, SameTimestampPopsByTie) {
  EventWheel wheel;
  wheel.Schedule(100, 5, Ev(5));
  wheel.Schedule(100, 1, Ev(1));
  wheel.Schedule(100, 3, Ev(3));
  wheel.Schedule(50, 9, Ev(9));
  const std::vector<Popped> popped = DrainAll(wheel);
  ASSERT_EQ(popped.size(), 4u);
  EXPECT_EQ(popped[0].machine, 9);
  EXPECT_EQ(popped[1].machine, 1);
  EXPECT_EQ(popped[2].machine, 3);
  EXPECT_EQ(popped[3].machine, 5);
}

// The pop sequence is a pure function of the scheduled set: scheduling the
// same (time, tie) set in any insertion order yields the same sequence.
TEST(EventWheelTest, TieBreakIndependentOfInsertionOrder) {
  std::vector<std::pair<SimTime, std::uint64_t>> events;
  for (SimTime t : {10, 4000, 10, 200, 10, 200, 70000, 4000}) {
    events.push_back({t, static_cast<std::uint64_t>(events.size() * 7 % 5)});
  }
  std::vector<std::vector<Popped>> orders;
  for (int perm = 0; perm < 2; ++perm) {
    EventWheel wheel;
    std::vector<std::pair<SimTime, std::uint64_t>> shuffled = events;
    if (perm == 1) std::reverse(shuffled.begin(), shuffled.end());
    for (std::size_t i = 0; i < shuffled.size(); ++i) {
      wheel.Schedule(shuffled[i].first, shuffled[i].second,
                     Ev(static_cast<MachineId>(shuffled[i].second)));
    }
    orders.push_back(DrainAll(wheel));
  }
  ASSERT_EQ(orders[0].size(), orders[1].size());
  for (std::size_t i = 0; i < orders[0].size(); ++i) {
    EXPECT_EQ(orders[0][i].time, orders[1][i].time) << i;
    EXPECT_EQ(orders[0][i].tie, orders[1][i].tie) << i;
  }
}

// Equal (time, tie) falls back to schedule order (the id).
TEST(EventWheelTest, EqualTiesPopInScheduleOrder) {
  EventWheel wheel;
  wheel.Schedule(9, 7, Ev(0));
  wheel.Schedule(9, 7, Ev(1));
  wheel.Schedule(9, 7, Ev(2));
  const std::vector<Popped> popped = DrainAll(wheel);
  ASSERT_EQ(popped.size(), 3u);
  EXPECT_EQ(popped[0].machine, 0);
  EXPECT_EQ(popped[1].machine, 1);
  EXPECT_EQ(popped[2].machine, 2);
}

// Events several levels up must cascade down through the wheels and still
// pop at exactly their timestamp, including ties scheduled far apart.
TEST(EventWheelTest, OverflowWheelCascade) {
  EventWheel wheel;
  // One event per level boundary region, plus same-time pairs that meet
  // only after cascading from different levels.
  const SimTime far = SimTime{64} * 64 * 64 * 64 + 17;  // level 3 territory
  wheel.Schedule(far, 2, Ev(2));
  wheel.Schedule(far, 1, Ev(1));
  wheel.Schedule(SimTime{64} * 64 * 64 - 1, 0, Ev(3));
  wheel.Schedule(SimTime{64} * 64 + 5, 0, Ev(4));
  wheel.Schedule(SimTime{64} - 1, 0, Ev(5));
  wheel.Schedule(1, 0, Ev(6));

  const std::vector<Popped> popped = DrainAll(wheel);
  ASSERT_EQ(popped.size(), 6u);
  EXPECT_EQ(popped[0].machine, 6);
  EXPECT_EQ(popped[1].machine, 5);
  EXPECT_EQ(popped[2].machine, 4);
  EXPECT_EQ(popped[3].machine, 3);
  EXPECT_EQ(popped[4].machine, 1);  // same time: tie 1 before tie 2
  EXPECT_EQ(popped[5].machine, 2);
  EXPECT_EQ(popped[4].time, far);
  EXPECT_EQ(popped[5].time, far);
}

TEST(EventWheelTest, ScheduleAtCurrentTimePopsNext) {
  EventWheel wheel;
  wheel.Schedule(10, 1, Ev(0));
  wheel.Schedule(10, 3, Ev(2));
  ScheduledEvent e;
  ASSERT_TRUE(wheel.PopNext(&e));
  EXPECT_EQ(e.event.machine, 0);
  EXPECT_EQ(wheel.now(), 10);
  // Still inside tick 10: a same-tick schedule with an intermediate tie
  // pops before the pending tie-3 event.
  wheel.Schedule(10, 2, Ev(1));
  ASSERT_TRUE(wheel.PopNext(&e));
  EXPECT_EQ(e.event.machine, 1);
  ASSERT_TRUE(wheel.PopNext(&e));
  EXPECT_EQ(e.event.machine, 2);
  EXPECT_FALSE(wheel.PopNext(&e));
}

TEST(EventWheelTest, CancelSkipsEvent) {
  EventWheel wheel;
  const EventId a = wheel.Schedule(5, 0, Ev(0));
  const EventId b = wheel.Schedule(6, 0, Ev(1));
  const EventId c = wheel.Schedule(70000, 0, Ev(2));
  (void)a;
  EXPECT_EQ(wheel.size(), 3u);
  EXPECT_TRUE(wheel.Cancel(b));
  EXPECT_EQ(wheel.size(), 2u);
  // Cancelling an event that already cascaded levels works the same.
  EXPECT_TRUE(wheel.Cancel(c));
  EXPECT_EQ(wheel.size(), 1u);
  const std::vector<Popped> popped = DrainAll(wheel);
  ASSERT_EQ(popped.size(), 1u);
  EXPECT_EQ(popped[0].machine, 0);
}

TEST(EventWheelTest, RescheduleMovesEvent) {
  EventWheel wheel;
  const EventId id = wheel.Schedule(100, 0, Ev(7));
  wheel.Schedule(50, 0, Ev(1));
  // Move the first event ahead of the other one.
  const EventId moved = wheel.Reschedule(id, 20, 0, Ev(7));
  EXPECT_NE(moved, id);
  EXPECT_EQ(wheel.size(), 2u);
  const std::vector<Popped> popped = DrainAll(wheel);
  ASSERT_EQ(popped.size(), 2u);
  EXPECT_EQ(popped[0].machine, 7);
  EXPECT_EQ(popped[0].time, 20);
  EXPECT_EQ(popped[1].machine, 1);
}

TEST(EventWheelTest, SizeAndPeakAccounting) {
  EventWheel wheel;
  EXPECT_TRUE(wheel.empty());
  std::vector<EventId> ids;
  for (int i = 0; i < 10; ++i) {
    ids.push_back(wheel.Schedule(10 + i, 0, Ev(i)));
  }
  EXPECT_EQ(wheel.size(), 10u);
  EXPECT_EQ(wheel.peak_size(), 10u);
  wheel.Cancel(ids[4]);
  ScheduledEvent e;
  ASSERT_TRUE(wheel.PopNext(&e));
  EXPECT_EQ(wheel.size(), 8u);
  EXPECT_EQ(wheel.peak_size(), 10u);  // high-water mark sticks
}

// Randomized 10^5-event differential against a reference binary heap
// ordered by (time, tie, id), with interleaved schedule/pop/cancel.
TEST(EventWheelTest, RandomizedHeapDifferential) {
  using Ref = std::tuple<SimTime, std::uint64_t, EventId>;
  std::priority_queue<Ref, std::vector<Ref>, std::greater<Ref>> heap;
  std::vector<std::uint8_t> cancelled_ref;  // by id, 1-based
  cancelled_ref.resize(1);

  EventWheel wheel;
  Rng rng(20260808);
  SimTime now = 0;
  std::vector<EventId> live;  // ids schedulable for cancellation
  std::size_t scheduled = 0;
  std::size_t popped = 0;
  std::size_t compared = 0;

  const std::size_t kEvents = 100000;
  while (scheduled < kEvents || wheel.size() > 0) {
    const std::uint64_t op = rng.NextBounded(10);
    if (scheduled < kEvents && (op < 6 || wheel.empty())) {
      // Mix of horizons: mostly near, sometimes multiple levels up; biased
      // ties force plenty of same-(time, tie) collisions.
      SimTime dt = 0;
      switch (rng.NextBounded(4)) {
        case 0: dt = static_cast<SimTime>(rng.NextBounded(4)); break;
        case 1: dt = static_cast<SimTime>(rng.NextBounded(64)); break;
        case 2: dt = static_cast<SimTime>(rng.NextBounded(64 * 64)); break;
        default:
          dt = static_cast<SimTime>(rng.NextBounded(64 * 64 * 64 * 8));
          break;
      }
      const SimTime t = now + dt;
      const std::uint64_t tie = rng.NextBounded(3);
      const EventId id = wheel.Schedule(t, tie, Ev(0));
      heap.push({t, tie, id});
      cancelled_ref.push_back(0);
      live.push_back(id);
      ++scheduled;
    } else if (op < 7 && !live.empty()) {
      // Cancel a random live event (ids may already have popped — find one
      // that is still pending in the reference before cancelling).
      const std::size_t pick = rng.NextBounded(live.size());
      const EventId id = live[pick];
      live[pick] = live.back();
      live.pop_back();
      if (cancelled_ref[id] == 0) {
        cancelled_ref[id] = 1;
        wheel.Cancel(id);
      }
    } else {
      // Pop and compare against the reference (skipping cancelled ids).
      ScheduledEvent e;
      const bool got = wheel.PopNext(&e);
      Ref expect{};
      bool ref_got = false;
      while (!heap.empty()) {
        expect = heap.top();
        heap.pop();
        if (cancelled_ref[std::get<2>(expect)] == 2) continue;  // consumed
        if (cancelled_ref[std::get<2>(expect)] == 1) continue;  // cancelled
        ref_got = true;
        break;
      }
      ASSERT_EQ(got, ref_got) << "after " << popped << " pops";
      if (!got) continue;
      ASSERT_EQ(e.time, std::get<0>(expect)) << "pop " << popped;
      ASSERT_EQ(e.tie, std::get<1>(expect)) << "pop " << popped;
      ASSERT_EQ(e.id, std::get<2>(expect)) << "pop " << popped;
      cancelled_ref[e.id] = 2;
      now = e.time;
      ++popped;
      ++compared;
    }
  }
  EXPECT_EQ(scheduled, kEvents);
  EXPECT_GT(compared, kEvents / 2);
  EXPECT_TRUE(wheel.empty());
}

}  // namespace
}  // namespace aer
