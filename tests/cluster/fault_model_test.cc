#include "cluster/fault_model.h"

#include <gtest/gtest.h>

namespace aer {
namespace {

FaultType ValidFault() {
  FaultType f;
  f.name = "F000-test";
  f.primary_symptom = "F000-Primary";
  f.secondary_symptoms = {{"F000-aux", 0.9}};
  f.responses = {{{0.5, 900, 0.3}, {0.7, 2400, 0.3}, {0.9, 9000, 0.3},
                  {1.0, 90000, 0.3}}};
  f.relative_rate = 1.0;
  return f;
}

TEST(FaultTypeTest, ValidFaultPasses) {
  ValidFault().Validate();  // must not abort
}

TEST(FaultTypeDeathTest, NonMonotoneCureAborts) {
  FaultType f = ValidFault();
  f.responses[1].cure_probability = 0.3;  // weaker than TRYNOP's 0.5
  EXPECT_DEATH(f.Validate(), "AER_CHECK");
}

TEST(FaultTypeDeathTest, RmaMustAlwaysCure) {
  FaultType f = ValidFault();
  f.responses[3].cure_probability = 0.99;
  EXPECT_DEATH(f.Validate(), "AER_CHECK");
}

TEST(FaultTypeDeathTest, NonPositiveDurationAborts) {
  FaultType f = ValidFault();
  f.responses[0].mean_duration_s = 0.0;
  EXPECT_DEATH(f.Validate(), "AER_CHECK");
}

TEST(FaultTypeDeathTest, EmptyPrimarySymptomAborts) {
  FaultType f = ValidFault();
  f.primary_symptom.clear();
  EXPECT_DEATH(f.Validate(), "AER_CHECK");
}

TEST(FaultCatalogTest, ValidCatalogPasses) {
  FaultCatalog catalog;
  catalog.faults.push_back(ValidFault());
  catalog.generic_symptoms = {{"Generic-EventLog", 0.01}};
  catalog.Validate();
}

TEST(FaultCatalogDeathTest, EmptyCatalogAborts) {
  FaultCatalog catalog;
  EXPECT_DEATH(catalog.Validate(), "AER_CHECK");
}

TEST(FaultCatalogDeathTest, BadGenericProbabilityAborts) {
  FaultCatalog catalog;
  catalog.faults.push_back(ValidFault());
  catalog.generic_symptoms = {{"g", 1.5}};
  EXPECT_DEATH(catalog.Validate(), "AER_CHECK");
}

}  // namespace
}  // namespace aer
