#include "rl/qlearning.h"

#include <gtest/gtest.h>

namespace aer {
namespace {

constexpr auto Y = RepairAction::kTryNop;
constexpr auto B = RepairAction::kReboot;
constexpr auto I = RepairAction::kReimage;
constexpr auto A = RepairAction::kRma;

RecoveryProcess MakeProcess(std::vector<std::pair<RepairAction, SimTime>>
                                attempts_with_costs,
                            SymptomId symptom, MachineId machine,
                            SimTime start) {
  std::vector<SymptomEvent> symptoms = {{start, symptom}};
  std::vector<ActionAttempt> attempts;
  SimTime t = start + 50;
  for (const auto& [action, cost] : attempts_with_costs) {
    attempts.push_back({action, t, cost, false});
    t += cost;
  }
  attempts.back().cured = true;
  return RecoveryProcess(machine, std::move(symptoms), std::move(attempts),
                         t);
}

// A training set with two error types:
//  - symptom 0 "stuck": TRYNOP useless, REBOOT cures (logged [Y,B]);
//  - symptom 1 "transient": TRYNOP cures 80% (logged [Y] or [Y. Y->B]).
struct TrainingFixture {
  SymptomTable symptoms;
  std::vector<RecoveryProcess> processes;
  ErrorTypeCatalog catalog;
  SimulationPlatform platform;

  static std::vector<RecoveryProcess> Build() {
    std::vector<RecoveryProcess> out;
    SimTime start = 0;
    MachineId m = 0;
    for (int i = 0; i < 60; ++i) {
      out.push_back(MakeProcess({{Y, 900}, {B, 2400}}, 0, m++, start));
      start += 10;
    }
    for (int i = 0; i < 48; ++i) {
      out.push_back(MakeProcess({{Y, 900}}, 1, m++, start));
      start += 10;
    }
    for (int i = 0; i < 12; ++i) {
      out.push_back(MakeProcess({{Y, 900}, {B, 2400}}, 1, m++, start));
      start += 10;
    }
    return out;
  }

  TrainingFixture()
      : processes(Build()),
        catalog(processes, 40),
        platform(processes, catalog, symptoms, 20) {
    symptoms.Intern("stuck");      // id 0
    symptoms.Intern("transient");  // id 1
  }
};

TrainerConfig FastConfig() {
  TrainerConfig config;
  config.max_sweeps = 20000;
  config.min_sweeps = 2000;
  config.check_every = 100;
  config.stable_checks = 10;
  config.seed = 42;
  return config;
}

TEST(GreedySequenceTest, FollowsMinQAndStopsAtRma) {
  QTable table;
  const ErrorTypeId type = 0;
  table.Update(EncodeState(type, {}), B, 100.0);
  table.Update(EncodeState(type, {}), Y, 200.0);
  std::vector<RepairAction> after_b = {B};
  table.Update(EncodeState(type, after_b), A, 50.0);
  const ActionSequence seq = GreedySequence(table, type, 20);
  EXPECT_EQ(seq, (ActionSequence{B, A}));
}

TEST(GreedySequenceTest, StopsAtUnexploredState) {
  QTable table;
  table.Update(EncodeState(0, {}), I, 10.0);
  const ActionSequence seq = GreedySequence(table, 0, 20);
  EXPECT_EQ(seq, (ActionSequence{I}));
}

TEST(GreedySequenceTest, RespectsMaxActions) {
  QTable table;
  // Y always best at every prefix of Ys.
  std::vector<RepairAction> tried;
  for (int i = 0; i < 10; ++i) {
    table.Update(EncodeState(0, tried), Y, 10.0);
    tried.push_back(Y);
  }
  EXPECT_EQ(GreedySequence(table, 0, 3).size(), 3u);
}

TEST(QLearningTrainerTest, LearnsRebootFirstForStuckType) {
  TrainingFixture fx;
  const QLearningTrainer trainer(fx.platform, fx.processes, FastConfig());
  const ErrorTypeId stuck = fx.catalog.ClassifySymptom(0);
  const TypeTrainingResult result = trainer.TrainType(stuck);
  ASSERT_FALSE(result.sequence.empty());
  EXPECT_EQ(result.sequence.front(), B)
      << "the trained policy should start with the stronger action";
  EXPECT_TRUE(result.converged);
  EXPECT_GT(result.states_explored, 1u);
  EXPECT_EQ(result.training_processes, 60);
}

TEST(QLearningTrainerTest, KeepsCheapestFirstForTransientType) {
  TrainingFixture fx;
  const QLearningTrainer trainer(fx.platform, fx.processes, FastConfig());
  const ErrorTypeId transient = fx.catalog.ClassifySymptom(1);
  const TypeTrainingResult result = trainer.TrainType(transient);
  ASSERT_FALSE(result.sequence.empty());
  EXPECT_EQ(result.sequence.front(), Y)
      << "80% of incidents are cured by the cheap action; keep it first";
}

TEST(QLearningTrainerTest, DeterministicForSeed) {
  TrainingFixture fx;
  const QLearningTrainer trainer(fx.platform, fx.processes, FastConfig());
  const TypeTrainingResult a = trainer.TrainType(0);
  const TypeTrainingResult b = trainer.TrainType(0);
  EXPECT_EQ(a.sequence, b.sequence);
  EXPECT_EQ(a.sweeps, b.sweeps);
  EXPECT_EQ(a.states_explored, b.states_explored);
}

TEST(QLearningTrainerTest, TrainAllProducesPolicyForEveryType) {
  TrainingFixture fx;
  const QLearningTrainer trainer(fx.platform, fx.processes, FastConfig());
  const auto output = trainer.TrainAll();
  EXPECT_EQ(output.per_type.size(), fx.catalog.num_types());
  EXPECT_EQ(output.policy.num_types(), fx.catalog.num_types());
  EXPECT_NE(output.policy.FindType("stuck"), nullptr);
  EXPECT_NE(output.policy.FindType("transient"), nullptr);
}

TEST(QLearningTrainerTest, QValuesApproximateEpisodeCosts) {
  TrainingFixture fx;
  const QLearningTrainer trainer(fx.platform, fx.processes, FastConfig());
  QTable table;
  const ErrorTypeId stuck = fx.catalog.ClassifySymptom(0);
  trainer.TrainType(stuck, &table);
  const StateKey root = EncodeState(stuck, {});
  // Q(root, B): REBOOT cures every stuck incident at its actual cost 2400.
  ASSERT_TRUE(table.Has(root, B));
  EXPECT_NEAR(table.Q(root, B), 2400.0, 120.0);
  // Q(root, Y): wasted watch (900) then optimal continuation (2400).
  ASSERT_TRUE(table.Has(root, Y));
  EXPECT_NEAR(table.Q(root, Y), 3300.0, 200.0);
}

TEST(QLearningTrainerTest, ExplorationRestrictedToObservedActions) {
  TrainingFixture fx;
  const QLearningTrainer trainer(fx.platform, fx.processes, FastConfig());
  QTable table;
  const ErrorTypeId stuck = fx.catalog.ClassifySymptom(0);
  trainer.TrainType(stuck, &table);
  // REIMAGE/RMA never appear in the stuck type's log (the N-cap's forced
  // manual repair never fires because REBOOT always cures first), so no Q
  // entry may mention them.
  for (const auto& [state, entries] : table.raw()) {
    EXPECT_EQ(entries[ActionIndex(I)].visits, 0) << FormatState(state);
    EXPECT_EQ(entries[ActionIndex(A)].visits, 0) << FormatState(state);
  }
}

TEST(QLearningTrainerTest, EmptyTypeYieldsEmptyResult) {
  TrainingFixture fx;
  // Catalog with a type that has no processes: classify symptom 2 is absent;
  // simulate by training a type id with no members — use a catalog from a
  // subset.
  const ErrorTypeCatalog catalog(
      std::span<const RecoveryProcess>(fx.processes.data(),
                                       fx.processes.size()),
      40);
  // All types have processes here, so instead check the trainer handles a
  // type whose processes all lack attempts: craft one.
  std::vector<RecoveryProcess> with_empty;
  with_empty.push_back(RecoveryProcess(
      0, {{0, 0}}, std::vector<ActionAttempt>{}, 10));  // no actions
  const ErrorTypeCatalog cat2(with_empty, 40);
  const SymptomTable symptoms;
  const SimulationPlatform platform(with_empty, cat2, symptoms, 20);
  const QLearningTrainer trainer(platform, with_empty, FastConfig());
  const TypeTrainingResult result = trainer.TrainType(0);
  EXPECT_TRUE(result.sequence.empty());
  EXPECT_FALSE(result.converged);
  EXPECT_EQ(result.training_processes, 0);
}

}  // namespace
}  // namespace aer
