#include "rl/policy_diff.h"

#include <gtest/gtest.h>

namespace aer {
namespace {

constexpr auto Y = RepairAction::kTryNop;
constexpr auto B = RepairAction::kReboot;
constexpr auto I = RepairAction::kReimage;

TrainedPolicy MakePolicy(
    std::vector<std::pair<std::string, ActionSequence>> entries) {
  TrainedPolicy policy;
  for (auto& [name, seq] : entries) {
    policy.AddType({name, seq});
  }
  return policy;
}

TEST(PolicyDiffTest, IdenticalPoliciesHaveNoEntries) {
  const TrainedPolicy a = MakePolicy({{"t1", {Y, B}}, {"t2", {B, B}}});
  const TrainedPolicy b = MakePolicy({{"t2", {B, B}}, {"t1", {Y, B}}});
  const PolicyDiff diff = DiffPolicies(a, b);
  EXPECT_TRUE(diff.entries.empty());
  EXPECT_EQ(diff.unchanged_types, 2u);
  EXPECT_NE(FormatPolicyDiff(diff).find("no rule changes"),
            std::string::npos);
}

TEST(PolicyDiffTest, DetectsAddedRemovedChanged) {
  const TrainedPolicy old_policy =
      MakePolicy({{"kept", {Y}}, {"changed", {Y, B}}, {"removed", {B}}});
  const TrainedPolicy new_policy =
      MakePolicy({{"kept", {Y}}, {"changed", {B, B}}, {"added", {I}}});
  const PolicyDiff diff = DiffPolicies(old_policy, new_policy);
  ASSERT_EQ(diff.entries.size(), 3u);
  EXPECT_EQ(diff.unchanged_types, 1u);

  int added = 0;
  int removed = 0;
  int changed = 0;
  for (const PolicyDiffEntry& e : diff.entries) {
    switch (e.kind) {
      case PolicyDiffEntry::Kind::kAdded:
        ++added;
        EXPECT_EQ(e.symptom_name, "added");
        EXPECT_TRUE(e.old_sequence.empty());
        EXPECT_EQ(e.new_sequence, (ActionSequence{I}));
        break;
      case PolicyDiffEntry::Kind::kRemoved:
        ++removed;
        EXPECT_EQ(e.symptom_name, "removed");
        EXPECT_TRUE(e.new_sequence.empty());
        break;
      case PolicyDiffEntry::Kind::kChanged:
        ++changed;
        EXPECT_EQ(e.symptom_name, "changed");
        EXPECT_EQ(e.old_sequence, (ActionSequence{Y, B}));
        EXPECT_EQ(e.new_sequence, (ActionSequence{B, B}));
        break;
    }
  }
  EXPECT_EQ(added, 1);
  EXPECT_EQ(removed, 1);
  EXPECT_EQ(changed, 1);

  const std::string text = FormatPolicyDiff(diff);
  EXPECT_NE(text.find("+ added"), std::string::npos);
  EXPECT_NE(text.find("- removed"), std::string::npos);
  EXPECT_NE(text.find("~ changed"), std::string::npos);
}

RecoveryProcess MakeProcess(std::vector<std::pair<RepairAction, SimTime>>
                                attempts_with_costs,
                            SymptomId symptom, SimTime start) {
  std::vector<SymptomEvent> symptoms = {{start, symptom}};
  std::vector<ActionAttempt> attempts;
  SimTime t = start + 50;
  for (const auto& [action, cost] : attempts_with_costs) {
    attempts.push_back({action, t, cost, false});
    t += cost;
  }
  attempts.back().cured = true;
  return RecoveryProcess(0, std::move(symptoms), std::move(attempts), t);
}

TEST(PolicyDiffTest, ImpactEstimatesPriceTheChange) {
  // Ten stuck-service incidents: [Y fail 900, B cure 2400]. Switching from
  // Y-first to B-first saves the wasted watch.
  SymptomTable symptoms;
  symptoms.Intern("stuck");
  std::vector<RecoveryProcess> processes;
  for (int i = 0; i < 10; ++i) {
    processes.push_back(MakeProcess({{Y, 900}, {B, 2400}}, 0, i * 10));
  }
  const ErrorTypeCatalog catalog(processes, 40);
  const SimulationPlatform platform(processes, catalog, symptoms, 20);

  const TrainedPolicy old_policy = MakePolicy({{"stuck", {Y, B}}});
  const TrainedPolicy new_policy = MakePolicy({{"stuck", {B}}});
  const PolicyDiff diff =
      DiffPolicies(old_policy, new_policy, platform, processes);
  ASSERT_EQ(diff.entries.size(), 1u);
  const PolicyDiffEntry& entry = diff.entries[0];
  ASSERT_TRUE(entry.old_mean_cost.has_value());
  ASSERT_TRUE(entry.new_mean_cost.has_value());
  EXPECT_DOUBLE_EQ(*entry.old_mean_cost, 50 + 900 + 2400);
  EXPECT_DOUBLE_EQ(*entry.new_mean_cost, 50 + 2400);

  const std::string text = FormatPolicyDiff(diff);
  EXPECT_NE(text.find("est. mean cost"), std::string::npos);
}

TEST(PolicyDiffTest, NoImpactForTypesAbsentFromTheLog) {
  SymptomTable symptoms;
  symptoms.Intern("present");
  std::vector<RecoveryProcess> processes = {
      MakeProcess({{B, 2400}}, 0, 0)};
  const ErrorTypeCatalog catalog(processes, 40);
  const SimulationPlatform platform(processes, catalog, symptoms, 20);

  const TrainedPolicy old_policy = MakePolicy({{"ghost", {Y}}});
  const TrainedPolicy new_policy = MakePolicy({{"ghost", {B}}});
  const PolicyDiff diff =
      DiffPolicies(old_policy, new_policy, platform, processes);
  ASSERT_EQ(diff.entries.size(), 1u);
  EXPECT_FALSE(diff.entries[0].old_mean_cost.has_value());
  EXPECT_FALSE(diff.entries[0].new_mean_cost.has_value());
}

}  // namespace
}  // namespace aer
