// Parameterized sweeps over seeds and caps: both trainers must land within
// a small factor of the exhaustive optimum on a workload with a known
// structure, for every seed — the guarantee a user relies on when they
// change nothing but the RNG.
#include <gtest/gtest.h>

#include "rl/selection_tree.h"

namespace aer {
namespace {

constexpr auto Y = RepairAction::kTryNop;
constexpr auto B = RepairAction::kReboot;
constexpr auto I = RepairAction::kReimage;

RecoveryProcess MakeProcess(std::vector<std::pair<RepairAction, SimTime>>
                                attempts_with_costs,
                            SymptomId symptom, MachineId machine,
                            SimTime start) {
  std::vector<SymptomEvent> symptoms = {{start, symptom}};
  std::vector<ActionAttempt> attempts;
  SimTime t = start + 50;
  for (const auto& [action, cost] : attempts_with_costs) {
    attempts.push_back({action, t, cost, false});
    t += cost;
  }
  attempts.back().cured = true;
  return RecoveryProcess(machine, std::move(symptoms), std::move(attempts),
                         t);
}

// A three-type workload: stuck (REBOOT-first optimal), transient (TRYNOP
// first), and reimage-bound.
struct Workload {
  SymptomTable symptoms;
  std::vector<RecoveryProcess> processes;
  ErrorTypeCatalog catalog;
  SimulationPlatform platform;

  static std::vector<RecoveryProcess> Build() {
    std::vector<RecoveryProcess> out;
    SimTime start = 0;
    MachineId m = 0;
    for (int i = 0; i < 60; ++i) {
      out.push_back(MakeProcess({{Y, 900}, {B, 2400}}, 0, m++, start));
      start += 10;
    }
    for (int i = 0; i < 45; ++i) {
      out.push_back(MakeProcess({{Y, 900}}, 1, m++, start));
      start += 10;
    }
    for (int i = 0; i < 15; ++i) {
      out.push_back(MakeProcess({{Y, 900}, {B, 2400}}, 1, m++, start));
      start += 10;
    }
    for (int i = 0; i < 30; ++i) {
      out.push_back(MakeProcess(
          {{Y, 900}, {B, 2400}, {B, 2400}, {I, 9000}}, 2, m++, start));
      start += 10;
    }
    return out;
  }

  Workload()
      : processes(Build()),
        catalog(processes, 40),
        platform(processes, catalog, symptoms, 20) {
    symptoms.Intern("stuck");
    symptoms.Intern("transient");
    symptoms.Intern("reimage");
  }
};

class TrainerSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TrainerSeedSweep, TreeTrainerWithinTwoPercentOfOptimum) {
  Workload w;
  TrainerConfig config;
  config.max_sweeps = 20000;
  config.min_sweeps = 2000;
  config.seed = GetParam();
  const QLearningTrainer base(w.platform, w.processes, config);
  const SelectionTreeTrainer trainer(base, SelectionTreeConfig{});
  for (ErrorTypeId type = 0; type < 3; ++type) {
    const TypeTrainingResult result = trainer.TrainType(type);
    ASSERT_FALSE(result.sequence.empty()) << "type " << type;
    const double got =
        EvaluateSequence(result.sequence, base.processes_of(type), type,
                         w.platform.estimator(), 20)
            .mean_cost;
    const ActionSequence exact = ExactBestSequence(
        base.processes_of(type), type, w.platform.estimator(), 20);
    const double best =
        EvaluateSequence(exact, base.processes_of(type), type,
                         w.platform.estimator(), 20)
            .mean_cost;
    EXPECT_LE(got, best * 1.02)
        << "seed " << GetParam() << " type " << type;
  }
}

TEST_P(TrainerSeedSweep, PlainTrainerNeverCrashesAndYieldsValidSequences) {
  Workload w;
  TrainerConfig config;
  config.max_sweeps = 8000;
  config.min_sweeps = 1000;
  config.seed = GetParam();
  const QLearningTrainer trainer(w.platform, w.processes, config);
  const auto output = trainer.TrainAll();
  ASSERT_EQ(output.per_type.size(), 3u);
  for (const TypeTrainingResult& r : output.per_type) {
    ASSERT_FALSE(r.sequence.empty());
    EXPECT_LE(r.sequence.size(), 20u);
    // Manual repair is absorbing: nothing may follow it in a sequence.
    for (std::size_t i = 0; i + 1 < r.sequence.size(); ++i) {
      EXPECT_NE(r.sequence[i], RepairAction::kRma);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrainerSeedSweep,
                         ::testing::Values(1, 7, 42, 1234, 99999, 31337));

class TrainerCapSweep : public ::testing::TestWithParam<int> {};

TEST_P(TrainerCapSweep, RespectsMaxActions) {
  Workload w;
  const int cap = GetParam();
  // Rebuild the platform with the matching cap.
  const SimulationPlatform platform(w.processes, w.catalog, w.symptoms, cap);
  TrainerConfig config;
  config.max_actions = cap;
  config.max_sweeps = 6000;
  config.min_sweeps = 1000;
  const QLearningTrainer base(platform, w.processes, config);
  const SelectionTreeTrainer trainer(base, SelectionTreeConfig{});
  for (ErrorTypeId type = 0; type < 3; ++type) {
    const TypeTrainingResult result = trainer.TrainType(type);
    EXPECT_LE(static_cast<int>(result.sequence.size()), cap) << type;
  }
}

INSTANTIATE_TEST_SUITE_P(Caps, TrainerCapSweep,
                         ::testing::Values(3, 5, 10, 20));

}  // namespace
}  // namespace aer
