// The ParallelTrainer equivalence contract (docs/PARALLELISM.md): for every
// seed and every thread count, sharded training must produce byte-identical
// serialized artifacts — Q-tables and deployable policy — to the serial
// QLearningTrainer / SelectionTreeTrainer. Not "statistically equivalent",
// not "same greedy policy": the same bytes. Anything weaker would let
// figure-level drift hide behind scheduling.
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "rl/parallel_trainer.h"
#include "rl/qlearning.h"
#include "rl/selection_tree.h"

namespace aer {
namespace {

constexpr auto Y = RepairAction::kTryNop;
constexpr auto B = RepairAction::kReboot;
constexpr auto I = RepairAction::kReimage;

RecoveryProcess MakeProcess(
    std::vector<std::pair<RepairAction, SimTime>> attempts_with_costs,
    SymptomId symptom, MachineId machine, SimTime start) {
  std::vector<SymptomEvent> symptoms = {{start, symptom}};
  std::vector<ActionAttempt> attempts;
  SimTime t = start + 50;
  for (const auto& [action, cost] : attempts_with_costs) {
    attempts.push_back({action, t, cost, false});
    t += cost;
  }
  attempts.back().cured = true;
  return RecoveryProcess(machine, std::move(symptoms), std::move(attempts),
                         t);
}

// Three error types with distinct optimal sequences so the merge phase has
// real per-type structure to preserve.
struct Fixture {
  SymptomTable symptoms;
  std::vector<RecoveryProcess> processes;
  ErrorTypeCatalog catalog;
  SimulationPlatform platform;

  static std::vector<RecoveryProcess> Build() {
    std::vector<RecoveryProcess> out;
    SimTime start = 0;
    MachineId m = 0;
    for (int i = 0; i < 40; ++i) {
      out.push_back(MakeProcess({{Y, 900}, {B, 2400}}, 0, m++, start));
      start += 10;
    }
    for (int i = 0; i < 30; ++i) {
      out.push_back(MakeProcess({{Y, 900}}, 1, m++, start));
      start += 10;
    }
    for (int i = 0; i < 20; ++i) {
      out.push_back(
          MakeProcess({{B, 2400}, {I, 9000}}, 2, m++, start));
      start += 10;
    }
    return out;
  }

  Fixture()
      : processes(Build()),
        catalog(processes, 30),
        platform(processes, catalog, symptoms, 20) {
    symptoms.Intern("stuck");
    symptoms.Intern("transient");
    symptoms.Intern("disk");
  }
};

TrainerConfig ConfigWithSeed(std::uint64_t seed) {
  TrainerConfig config;
  config.max_sweeps = 4000;
  config.min_sweeps = 500;
  config.check_every = 100;
  config.stable_checks = 5;
  config.seed = seed;
  return config;
}

std::string Serialize(const TrainedPolicy& policy) {
  std::ostringstream os;
  policy.Write(os);
  return os.str();
}

std::string Serialize(const QTable& table) {
  std::ostringstream os;
  table.Write(os);
  return os.str();
}

struct SerialReference {
  std::string policy_bytes;
  std::vector<std::string> table_bytes;
  std::vector<TypeTrainingResult> per_type;
};

// The serial ground truth: TrainAll() for the policy + per-type telemetry,
// TrainType(type, &table) for the table bytes.
template <typename Trainer>
SerialReference SerialRun(const Trainer& trainer, std::size_t num_types) {
  SerialReference ref;
  const QLearningTrainer::TrainingOutput output = trainer.TrainAll();
  ref.policy_bytes = Serialize(output.policy);
  ref.per_type = output.per_type;
  for (std::size_t t = 0; t < num_types; ++t) {
    QTable table;
    trainer.TrainType(static_cast<ErrorTypeId>(t), &table);
    ref.table_bytes.push_back(Serialize(table));
  }
  return ref;
}

template <typename Trainer>
void ExpectParallelMatchesSerial(const Trainer& trainer,
                                 std::size_t num_types,
                                 const SerialReference& ref, int threads,
                                 std::uint64_t seed) {
  ThreadPool pool(threads);
  const ParallelTrainer parallel(trainer, pool);
  std::vector<QTable> tables;
  const QLearningTrainer::TrainingOutput output = parallel.TrainAll(&tables);

  EXPECT_EQ(Serialize(output.policy), ref.policy_bytes)
      << "seed " << seed << ", " << threads
      << " threads: serialized policy diverged from the serial trainer";

  ASSERT_EQ(tables.size(), num_types);
  for (std::size_t t = 0; t < num_types; ++t) {
    EXPECT_EQ(Serialize(tables[t]), ref.table_bytes[t])
        << "seed " << seed << ", " << threads << " threads, type " << t
        << ": serialized Q-table diverged from the serial trainer";
  }

  ASSERT_EQ(output.per_type.size(), ref.per_type.size());
  for (std::size_t i = 0; i < ref.per_type.size(); ++i) {
    EXPECT_EQ(output.per_type[i].type, ref.per_type[i].type);
    EXPECT_EQ(output.per_type[i].sweeps, ref.per_type[i].sweeps);
    EXPECT_EQ(output.per_type[i].episodes, ref.per_type[i].episodes);
    EXPECT_EQ(output.per_type[i].converged, ref.per_type[i].converged);
    EXPECT_EQ(output.per_type[i].sequence, ref.per_type[i].sequence);
  }
}

constexpr std::uint64_t kSeeds[] = {1, 2, 3, 4, 5};
constexpr int kThreadCounts[] = {1, 2, 8};

TEST(ParallelTrainerTest, PlainTrainerByteIdenticalAcrossSeedsAndThreads) {
  const Fixture fx;
  const std::size_t num_types = fx.platform.types().num_types();
  for (const std::uint64_t seed : kSeeds) {
    const QLearningTrainer trainer(fx.platform, fx.processes,
                                   ConfigWithSeed(seed));
    const SerialReference ref = SerialRun(trainer, num_types);
    for (const int threads : kThreadCounts) {
      ExpectParallelMatchesSerial(trainer, num_types, ref, threads, seed);
    }
  }
}

TEST(ParallelTrainerTest, TreeTrainerByteIdenticalAcrossSeedsAndThreads) {
  const Fixture fx;
  const std::size_t num_types = fx.platform.types().num_types();
  for (const std::uint64_t seed : kSeeds) {
    const QLearningTrainer base(fx.platform, fx.processes,
                                ConfigWithSeed(seed));
    const SelectionTreeTrainer tree(base, SelectionTreeConfig{});
    const SerialReference ref = SerialRun(tree, num_types);
    for (const int threads : kThreadCounts) {
      ExpectParallelMatchesSerial(tree, num_types, ref, threads, seed);
    }
  }
}

TEST(ParallelTrainerTest, TotalEpisodesSumsPerTypeCounts) {
  const Fixture fx;
  const QLearningTrainer trainer(fx.platform, fx.processes,
                                 ConfigWithSeed(7));
  const QLearningTrainer::TrainingOutput output = trainer.TrainAll();
  std::int64_t expected = 0;
  for (const TypeTrainingResult& r : output.per_type) {
    EXPECT_GT(r.episodes, 0) << "type " << r.type;
    expected += r.episodes;
  }
  EXPECT_EQ(ParallelTrainer::TotalEpisodes(output), expected);
}

TEST(ParallelTrainerTest, SharedPoolAcrossConcurrentTrainAlls) {
  // Two ParallelTrainers sharing one pool (the bench layout) must not
  // interfere with each other's results.
  const Fixture fx;
  const QLearningTrainer trainer(fx.platform, fx.processes,
                                 ConfigWithSeed(11));
  const SerialReference ref =
      SerialRun(trainer, fx.platform.types().num_types());
  ThreadPool pool(4);
  const ParallelTrainer a(trainer, pool);
  const ParallelTrainer b(trainer, pool);
  std::future<std::string> fa =
      pool.Submit([&a] { return Serialize(a.TrainAll().policy); });
  std::future<std::string> fb =
      pool.Submit([&b] { return Serialize(b.TrainAll().policy); });
  EXPECT_EQ(fa.get(), ref.policy_bytes);
  EXPECT_EQ(fb.get(), ref.policy_bytes);
}

}  // namespace
}  // namespace aer
