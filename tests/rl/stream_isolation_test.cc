// Regression test for per-type RNG stream isolation (docs/PARALLELISM.md).
//
// Every type's episode stream is seeded by DeriveStream(master_seed, type),
// a pure function of the master seed and the type id — never of what other
// types did. If type seeding ever went back through shared trainer state
// (e.g. one generator advanced in log-iteration order), permuting type A's
// processes would perturb type B's draws and shard determinism would break
// silently. Here: permute A's processes among their own log positions and
// require type B's trained artifacts to stay byte-identical.
#include <algorithm>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "rl/qlearning.h"
#include "rl/qtable.h"

namespace aer {
namespace {

constexpr auto Y = RepairAction::kTryNop;
constexpr auto B = RepairAction::kReboot;
constexpr auto I = RepairAction::kReimage;

RecoveryProcess MakeProcess(
    std::vector<std::pair<RepairAction, SimTime>> attempts_with_costs,
    SymptomId symptom, MachineId machine, SimTime start) {
  std::vector<SymptomEvent> symptoms = {{start, symptom}};
  std::vector<ActionAttempt> attempts;
  SimTime t = start + 50;
  for (const auto& [action, cost] : attempts_with_costs) {
    attempts.push_back({action, t, cost, false});
    t += cost;
  }
  attempts.back().cured = true;
  return RecoveryProcess(machine, std::move(symptoms), std::move(attempts),
                         t);
}

// Type A (symptom 0): 60 processes with three distinct outcome shapes, so a
// permutation genuinely reorders different episodes. Type B (symptom 1): 40
// processes. A is more frequent than B, so the catalog's frequency-ranked
// type ids are stable under any permutation of A.
std::vector<RecoveryProcess> BuildProcesses() {
  std::vector<RecoveryProcess> out;
  SimTime start = 0;
  MachineId m = 0;
  for (int i = 0; i < 60; ++i) {
    switch (i % 3) {
      case 0:
        out.push_back(MakeProcess({{Y, 900}, {B, 2400}}, 0, m++, start));
        break;
      case 1:
        out.push_back(MakeProcess({{B, 2400}}, 0, m++, start));
        break;
      default:
        out.push_back(
            MakeProcess({{Y, 900}, {B, 2400}, {I, 9000}}, 0, m++, start));
        break;
    }
    start += 10;
  }
  for (int i = 0; i < 40; ++i) {
    out.push_back(MakeProcess({{Y, 900}, {B, 2400}}, 1, m++, start));
    start += 10;
  }
  return out;
}

// Shuffles the type-A block (the first 60 entries) among its own positions,
// leaving every type-B process where it was.
std::vector<RecoveryProcess> PermuteTypeA(std::vector<RecoveryProcess> all,
                                          std::uint64_t permutation_seed) {
  Rng rng(permutation_seed);
  for (std::size_t i = 59; i > 0; --i) {
    const std::size_t j = static_cast<std::size_t>(
        rng.NextInt(0, static_cast<std::int64_t>(i)));
    std::swap(all[i], all[j]);
  }
  return all;
}

bool SameProcess(const RecoveryProcess& a, const RecoveryProcess& b) {
  return a.machine() == b.machine() && a.symptoms() == b.symptoms() &&
         a.attempts() == b.attempts() && a.success_time() == b.success_time();
}

struct TypeBArtifacts {
  std::string table_bytes;
  ActionSequence sequence;
  std::int64_t sweeps = 0;
};

TypeBArtifacts TrainTypeB(const std::vector<RecoveryProcess>& processes) {
  SymptomTable symptoms;
  symptoms.Intern("stuck");
  symptoms.Intern("transient");
  const ErrorTypeCatalog catalog(processes, 30);
  const SimulationPlatform platform(processes, catalog, symptoms, 20);
  TrainerConfig config;
  config.max_sweeps = 3000;
  config.min_sweeps = 500;
  config.check_every = 100;
  config.stable_checks = 5;
  config.seed = 4242;
  const QLearningTrainer trainer(platform, processes, config);

  // Type ids are frequency-ranked: A (60 processes) is 0, B (40) is 1.
  const RecoveryProcess* b_process = nullptr;
  for (const RecoveryProcess& p : processes) {
    if (catalog.Classify(p) == 1) {
      b_process = &p;
      break;
    }
  }
  EXPECT_NE(b_process, nullptr);
  EXPECT_EQ(b_process->symptoms().front().symptom, 1);

  TypeBArtifacts artifacts;
  QTable table;
  const TypeTrainingResult result = trainer.TrainType(1, &table);
  std::ostringstream os;
  table.Write(os);
  artifacts.table_bytes = os.str();
  artifacts.sequence = result.sequence;
  artifacts.sweeps = result.sweeps;
  return artifacts;
}

TEST(StreamIsolationTest, TypeBUnchangedWhenTypeAProcessesArePermuted) {
  const std::vector<RecoveryProcess> original = BuildProcesses();
  const TypeBArtifacts baseline = TrainTypeB(original);
  EXPECT_FALSE(baseline.table_bytes.empty());
  for (const std::uint64_t permutation_seed : {11u, 22u, 33u}) {
    const TypeBArtifacts permuted =
        TrainTypeB(PermuteTypeA(original, permutation_seed));
    EXPECT_EQ(permuted.table_bytes, baseline.table_bytes)
        << "permutation seed " << permutation_seed
        << ": type B's Q-table changed when only type A's processes moved";
    EXPECT_EQ(permuted.sequence, baseline.sequence);
    EXPECT_EQ(permuted.sweeps, baseline.sweeps);
  }
}

TEST(StreamIsolationTest, PermutationActuallyChangesTypeA) {
  // Guard against the test above passing because the permutation is a
  // no-op: type A's own training must see a different episode order.
  // (The *converged* artifacts may coincide; the sampled process ids come
  // from positions in A's sub-list, so at least one permuted position must
  // hold a structurally different process.)
  const std::vector<RecoveryProcess> original = BuildProcesses();
  const std::vector<RecoveryProcess> permuted = PermuteTypeA(original, 11);
  int moved = 0;
  for (std::size_t i = 0; i < 60; ++i) {
    if (!SameProcess(original[i], permuted[i])) ++moved;
  }
  EXPECT_GT(moved, 10) << "permutation left type A essentially in place";
  for (std::size_t i = 60; i < original.size(); ++i) {
    ASSERT_TRUE(SameProcess(original[i], permuted[i]))
        << "type B process " << i << " moved — invalid test setup";
  }
}

}  // namespace
}  // namespace aer
