#include "rl/linear_q.h"

#include <gtest/gtest.h>

namespace aer {
namespace {

constexpr auto Y = RepairAction::kTryNop;
constexpr auto B = RepairAction::kReboot;
constexpr auto I = RepairAction::kReimage;

TEST(LinearQFeaturesTest, CountsAndBias) {
  const std::vector<RepairAction> tried = {Y, B, B, I};
  const auto x = LinearQFunction::Features(tried);
  EXPECT_DOUBLE_EQ(x[0], 1.0);                       // bias
  EXPECT_DOUBLE_EQ(x[1], 1.0);                       // TRYNOP count
  EXPECT_DOUBLE_EQ(x[2], 2.0);                       // REBOOT count
  EXPECT_DOUBLE_EQ(x[3], 1.0);                       // REIMAGE count
  EXPECT_DOUBLE_EQ(x[4], 0.0);                       // RMA count
  EXPECT_DOUBLE_EQ(x[LinearQFunction::kNumFeatures - 1], 4.0);  // steps
}

TEST(LinearQFeaturesTest, OrderInvariance) {
  const std::vector<RepairAction> ab = {Y, B};
  const std::vector<RepairAction> ba = {B, Y};
  EXPECT_EQ(LinearQFunction::Features(ab), LinearQFunction::Features(ba));
}

TEST(LinearQFunctionTest, ZeroInitializedIsZero) {
  LinearQFunction q(4);
  EXPECT_DOUBLE_EQ(q.Q(0, LinearQFunction::Features({}), Y), 0.0);
  EXPECT_EQ(q.num_parameters(),
            4u * kNumActions * LinearQFunction::kNumFeatures);
}

TEST(LinearQFunctionTest, SetBiasShiftsPrediction) {
  LinearQFunction q(1);
  q.SetBias(0, B, 2400.0);
  EXPECT_DOUBLE_EQ(q.Q(0, LinearQFunction::Features({}), B), 2400.0);
  // Bias applies regardless of the tried counts (other weights are 0).
  const std::vector<RepairAction> tried = {Y, Y};
  EXPECT_DOUBLE_EQ(q.Q(0, LinearQFunction::Features(tried), B), 2400.0);
}

TEST(LinearQFunctionTest, FitsLinearTargetExactly) {
  // Target: 100 + 50*n_Y + 10*steps. Normalized LMS must converge on it.
  LinearQFunction q(1);
  Rng rng(5);
  for (int iter = 0; iter < 20000; ++iter) {
    std::vector<RepairAction> tried(rng.NextBounded(6), Y);
    const auto x = LinearQFunction::Features(tried);
    const double target =
        100.0 + 50.0 * x[1] + 10.0 * x[LinearQFunction::kNumFeatures - 1];
    q.Update(0, x, B, target, 0.3);
  }
  for (std::size_t n = 0; n < 6; ++n) {
    std::vector<RepairAction> tried(n, Y);
    const auto x = LinearQFunction::Features(tried);
    const double expected = 100.0 + 50.0 * static_cast<double>(n) +
                            10.0 * static_cast<double>(n);
    EXPECT_NEAR(q.Q(0, x, B), expected, 1.0) << "n=" << n;
  }
  EXPECT_EQ(q.updates(), 20000);
}

TEST(LinearQFunctionTest, ActionsAndTypesIndependent) {
  LinearQFunction q(2);
  const auto x = LinearQFunction::Features({});  // [1, 0...0]: ||x||^2 = 1
  q.Update(0, x, Y, 500.0, 1.0);
  EXPECT_NEAR(q.Q(0, x, Y), 500.0, 1e-9);
  EXPECT_DOUBLE_EQ(q.Q(0, x, B), 0.0);
  EXPECT_DOUBLE_EQ(q.Q(1, x, Y), 0.0);
}

// Trainer fixture: stuck-service type (TRYNOP useless, REBOOT cures).
RecoveryProcess MakeProcess(std::vector<std::pair<RepairAction, SimTime>>
                                attempts_with_costs,
                            SymptomId symptom, MachineId machine,
                            SimTime start) {
  std::vector<SymptomEvent> symptoms = {{start, symptom}};
  std::vector<ActionAttempt> attempts;
  SimTime t = start + 50;
  for (const auto& [action, cost] : attempts_with_costs) {
    attempts.push_back({action, t, cost, false});
    t += cost;
  }
  attempts.back().cured = true;
  return RecoveryProcess(machine, std::move(symptoms), std::move(attempts),
                         t);
}

struct Fixture {
  SymptomTable symptoms;
  std::vector<RecoveryProcess> processes;
  ErrorTypeCatalog catalog;
  SimulationPlatform platform;

  static std::vector<RecoveryProcess> Build() {
    std::vector<RecoveryProcess> out;
    SimTime start = 0;
    MachineId m = 0;
    for (int i = 0; i < 50; ++i) {
      out.push_back(MakeProcess({{Y, 900}, {B, 2400}}, 0, m++, start));
      start += 10;
    }
    for (int i = 0; i < 40; ++i) {
      out.push_back(MakeProcess({{Y, 900}}, 1, m++, start));
      start += 10;
    }
    for (int i = 0; i < 10; ++i) {
      out.push_back(MakeProcess({{Y, 900}, {B, 2400}}, 1, m++, start));
      start += 10;
    }
    return out;
  }

  Fixture()
      : processes(Build()),
        catalog(processes, 40),
        platform(processes, catalog, symptoms, 20) {
    symptoms.Intern("stuck");
    symptoms.Intern("transient");
  }
};

TEST(ApproxQLearningTrainerTest, LearnsRebootFirstForStuckType) {
  Fixture fx;
  ApproxTrainerConfig config;
  config.sweeps = 8000;
  const ApproxQLearningTrainer trainer(fx.platform, fx.processes, config);
  const auto output = trainer.Train();
  const auto* stuck = output.policy.FindType("stuck");
  ASSERT_NE(stuck, nullptr);
  ASSERT_FALSE(stuck->sequence.empty());
  EXPECT_EQ(stuck->sequence.front(), B);
}

TEST(ApproxQLearningTrainerTest, KeepsCheapFirstForTransientType) {
  Fixture fx;
  ApproxTrainerConfig config;
  config.sweeps = 8000;
  const ApproxQLearningTrainer trainer(fx.platform, fx.processes, config);
  const auto output = trainer.Train();
  const auto* transient = output.policy.FindType("transient");
  ASSERT_NE(transient, nullptr);
  ASSERT_FALSE(transient->sequence.empty());
  EXPECT_EQ(transient->sequence.front(), Y);
}

TEST(ApproxQLearningTrainerTest, DeterministicForSeed) {
  Fixture fx;
  ApproxTrainerConfig config;
  config.sweeps = 4000;
  const ApproxQLearningTrainer trainer(fx.platform, fx.processes, config);
  const auto a = trainer.Train();
  const auto b = trainer.Train();
  ASSERT_EQ(a.sequences.size(), b.sequences.size());
  for (std::size_t i = 0; i < a.sequences.size(); ++i) {
    EXPECT_EQ(a.sequences[i], b.sequences[i]);
  }
}

TEST(ApproxQLearningTrainerTest, ParameterCountIsTiny) {
  // The point of generalization: parameters = O(types), not O(states).
  Fixture fx;
  ApproxTrainerConfig config;
  config.sweeps = 1000;
  const ApproxQLearningTrainer trainer(fx.platform, fx.processes, config);
  const auto output = trainer.Train();
  EXPECT_EQ(output.q.num_parameters(),
            fx.catalog.num_types() * kNumActions *
                LinearQFunction::kNumFeatures);
}

}  // namespace
}  // namespace aer
