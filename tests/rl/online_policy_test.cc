#include "rl/online_policy.h"

#include <gtest/gtest.h>

#include "core/recovery_manager.h"

namespace aer {
namespace {

constexpr auto Y = RepairAction::kTryNop;
constexpr auto B = RepairAction::kReboot;
constexpr auto A = RepairAction::kRma;

// Drives the policy through a RecoveryManager against a deterministic
// environment: TRYNOP never cures (cost 900), REBOOT always cures (cost
// 2400), REIMAGE cures (cost 9000), RMA cures (cost 90000).
struct Environment {
  RecoveryManager& manager;
  SimTime now = 0;

  // Runs one incident on `machine`; returns the number of actions taken.
  int RunIncident(MachineId machine, std::string_view symptom) {
    manager.OnSymptom(now, machine, symptom);
    int actions = 0;
    while (true) {
      const auto action = manager.OnRecoveryNeeded(now + 60, machine);
      now += 60;
      ++actions;
      SimTime cost = 0;
      bool cured = false;
      switch (*action) {
        case RepairAction::kTryNop:
          cost = 900;
          cured = false;
          break;
        case RepairAction::kReboot:
          cost = 2400;
          cured = true;
          break;
        case RepairAction::kReimage:
          cost = 9000;
          cured = true;
          break;
        case RepairAction::kRma:
          cost = 90000;
          cured = true;
          break;
      }
      now += cost;
      manager.OnActionResult(now, machine, cured);
      if (cured) break;
    }
    now += 13 * kHour;  // spread incidents out
    return actions;
  }
};

TEST(OnlineQLearningPolicyTest, ConvergesToRebootForStuckService) {
  OnlinePolicyConfig config;
  config.temperature.initial = 1000.0;
  config.temperature.decay = 0.9;  // anneal fast for the test
  OnlineQLearningPolicy policy(config);
  RecoveryManager manager(policy);
  Environment env{manager};

  for (int incident = 0; incident < 150; ++incident) {
    env.RunIncident(incident % 5, "StuckService");
  }
  EXPECT_EQ(policy.types_seen(), 1u);
  EXPECT_EQ(policy.episodes_completed(), 150);

  // After annealing, the first action must be REBOOT (cheapest cure:
  // 2400 < 900 + 2400 and < 9000 < 90000).
  int reboot_first = 0;
  const int trials = 20;
  for (int t = 0; t < trials; ++t) {
    RecoveryContext ctx;
    ctx.initial_symptom_name = "StuckService";
    ctx.tried = {};
    if (policy.ChooseAction(ctx) == B) ++reboot_first;
  }
  EXPECT_GE(reboot_first, 18);
}

TEST(OnlineQLearningPolicyTest, ExploresEarly) {
  OnlinePolicyConfig config;
  config.temperature.initial = 1e9;  // fully uniform
  OnlineQLearningPolicy policy(config);
  std::array<int, kNumActions> counts = {};
  for (int t = 0; t < 400; ++t) {
    RecoveryContext ctx;
    ctx.initial_symptom_name = "Anything";
    ctx.tried = {};
    ++counts[static_cast<std::size_t>(
        ActionIndex(policy.ChooseAction(ctx)))];
  }
  for (int c : counts) {
    EXPECT_GT(c, 50) << "all four actions must be explored at high T";
  }
}

TEST(OnlineQLearningPolicyTest, NCapForcesManualRepair) {
  OnlinePolicyConfig config;
  config.max_actions = 4;
  OnlineQLearningPolicy policy(config);
  RecoveryContext ctx;
  ctx.initial_symptom_name = "X";
  const std::vector<RepairAction> tried(3, Y);
  ctx.tried = tried;
  EXPECT_EQ(policy.ChooseAction(ctx), A);
}

TEST(OnlineQLearningPolicyTest, SeparateTypesLearnSeparately) {
  OnlinePolicyConfig config;
  config.temperature.initial = 500.0;
  config.temperature.decay = 0.9;
  OnlineQLearningPolicy policy(config);
  RecoveryManager manager(policy);
  Environment env{manager};

  for (int incident = 0; incident < 120; ++incident) {
    env.RunIncident(incident % 3, "TypeOne");
    env.RunIncident(3 + incident % 3, "TypeTwo");
  }
  EXPECT_EQ(policy.types_seen(), 2u);
  // Both types share the same environment here, so both should settle on
  // REBOOT; the point is that the Q entries are per type.
  const StateKey root_one = EncodeState(0, {});
  const StateKey root_two = EncodeState(1, {});
  EXPECT_TRUE(policy.table().Has(root_one, B));
  EXPECT_TRUE(policy.table().Has(root_two, B));
}

TEST(OnlineQLearningPolicyTest, LearningCostIsRealDowntime) {
  // The paper's Section 2.3.1 argument in miniature: while exploring, the
  // online learner pays for REIMAGE/RMA trials the offline learner only
  // simulates. Count the manual repairs it triggers during its first
  // incidents.
  OnlinePolicyConfig config;
  OnlineQLearningPolicy policy(config);
  RecoveryManager manager(policy);
  Environment env{manager};
  for (int incident = 0; incident < 60; ++incident) {
    env.RunIncident(incident % 5, "StuckService");
  }
  // With Boltzmann exploration over the priors, some early incidents chose
  // REIMAGE or RMA (exact counts are deterministic given the seed; assert
  // the qualitative fact).
  std::int64_t expensive = 0;
  for (const LogEntry& e : manager.log().entries()) {
    if (e.kind == EntryKind::kAction &&
        (e.action == RepairAction::kReimage ||
         e.action == RepairAction::kRma)) {
      ++expensive;
    }
  }
  EXPECT_GT(expensive, 0)
      << "online exploration executes expensive actions on live machines";
}

}  // namespace
}  // namespace aer
