// Tests for the TD(λ) and discount extensions of the trainer. The crafted
// environment is deterministic, so λ-return math can be checked against
// hand-computed values via the Q table (which stores the running average of
// its targets).
#include <gtest/gtest.h>

#include "rl/selection_tree.h"

namespace aer {
namespace {

constexpr auto Y = RepairAction::kTryNop;
constexpr auto B = RepairAction::kReboot;

RecoveryProcess MakeProcess(std::vector<std::pair<RepairAction, SimTime>>
                                attempts_with_costs,
                            SymptomId symptom, MachineId machine,
                            SimTime start) {
  std::vector<SymptomEvent> symptoms = {{start, symptom}};
  std::vector<ActionAttempt> attempts;
  SimTime t = start + 50;
  for (const auto& [action, cost] : attempts_with_costs) {
    attempts.push_back({action, t, cost, false});
    t += cost;
  }
  attempts.back().cured = true;
  return RecoveryProcess(machine, std::move(symptoms), std::move(attempts),
                         t);
}

// One deterministic process: [Y(900) fail, B(2400) cure]. Every episode of
// any policy replays against this single incident, so returns are exact.
struct SingleProcess {
  SymptomTable symptoms;
  std::vector<RecoveryProcess> processes;
  ErrorTypeCatalog catalog;
  SimulationPlatform platform;

  SingleProcess()
      : processes({MakeProcess({{Y, 900}, {B, 2400}}, 0, 0, 0)}),
        catalog(processes, 40),
        platform(processes, catalog, symptoms, 20) {
    symptoms.Intern("only");
  }
};

TrainerConfig Config(double lambda, double gamma = 1.0) {
  TrainerConfig config;
  config.td_lambda = lambda;
  config.gamma = gamma;
  config.max_sweeps = 4000;
  config.min_sweeps = 500;
  config.check_every = 100;
  config.stable_checks = 5;
  config.seed = 3;
  return config;
}

TEST(TdLambdaTest, MonteCarloReturnsMatchEpisodeCosts) {
  // λ = 1: an episode starting with B cures immediately with return 2400,
  // every time, so Q(root, B) — a running average of identical Monte-Carlo
  // targets — equals 2400 exactly. Episodes through Y branch into varying
  // continuations ([Y,B], [Y,Y,B], ...), so Q(root, Y) is an average of
  // returns that are each at least 900 + 2400.
  SingleProcess fx;
  const QLearningTrainer trainer(fx.platform, fx.processes, Config(1.0));
  QTable table;
  trainer.TrainType(0, &table);
  const StateKey root = EncodeState(0, {});
  ASSERT_TRUE(table.Has(root, B));
  EXPECT_NEAR(table.Q(root, B), 2400.0, 1e-6);
  ASSERT_TRUE(table.Has(root, Y));
  EXPECT_GE(table.Q(root, Y), 3300.0 - 1e-6);
}

TEST(TdLambdaTest, LambdaZeroMatchesPlainTd) {
  // λ = 0 must produce bit-identical tables to the default config (same
  // seed, same exploration).
  SingleProcess fx;
  TrainerConfig plain = Config(0.0);
  const QLearningTrainer a(fx.platform, fx.processes, plain);
  QTable ta;
  a.TrainType(0, &ta);

  TrainerConfig default_config = Config(0.0);
  default_config.td_lambda = 0.0;
  const QLearningTrainer b(fx.platform, fx.processes, default_config);
  QTable tb;
  b.TrainType(0, &tb);

  ASSERT_EQ(ta.num_states(), tb.num_states());
  for (const auto& [key, entries] : ta.raw()) {
    for (int i = 0; i < kNumActions; ++i) {
      const RepairAction action = ActionFromIndex(i);
      ASSERT_EQ(ta.Has(key, action), tb.Has(key, action));
      if (ta.Has(key, action)) {
        ASSERT_DOUBLE_EQ(ta.Q(key, action), tb.Q(key, action));
      }
    }
  }
}

TEST(TdLambdaTest, IntermediateLambdaPreservesTheGreedyPolicy) {
  // λ > 0 targets follow the *behavior* policy's continuations (the
  // SARSA-like contamination of λ-returns), so Q(root, Y) converges above
  // the optimal 3300 while exploration persists. What must survive any λ:
  // the immediate-cure value is exact and the greedy ordering is unchanged.
  SingleProcess fx;
  const QLearningTrainer trainer(fx.platform, fx.processes, Config(0.5));
  QTable table;
  trainer.TrainType(0, &table);
  const StateKey root = EncodeState(0, {});
  EXPECT_NEAR(table.Q(root, B), 2400.0, 50.0);
  EXPECT_GE(table.Q(root, Y), 3300.0 - 50.0);
  EXPECT_EQ(*table.BestAction(root), B);
}

TEST(TdLambdaTest, DiscountShrinksTailContribution) {
  // γ = 0.5 under-weights everything after the first action: the immediate
  // cure Q(root, B) stays exactly 2400, while Q(root, Y) drops strictly
  // below its undiscounted value (the REBOOT tail now counts half or less).
  SingleProcess fx;
  QTable discounted;
  QLearningTrainer(fx.platform, fx.processes, Config(1.0, 0.5))
      .TrainType(0, &discounted);
  QTable undiscounted;
  QLearningTrainer(fx.platform, fx.processes, Config(1.0, 1.0))
      .TrainType(0, &undiscounted);

  const StateKey root = EncodeState(0, {});
  EXPECT_NEAR(discounted.Q(root, B), 2400.0, 1e-6);
  EXPECT_LT(discounted.Q(root, Y), undiscounted.Q(root, Y) - 500.0);
  // Lower bound: even an infinitely procrastinating episode pays the first
  // Y in full.
  EXPECT_GE(discounted.Q(root, Y), 900.0);
}

TEST(TdLambdaTest, PolicyUnchangedAcrossLambdaOnStuckWorkload) {
  // The learned policy (not just the values) should agree across λ on a
  // workload with a clear optimum.
  std::vector<RecoveryProcess> processes;
  SimTime start = 0;
  MachineId m = 0;
  for (int i = 0; i < 50; ++i) {
    processes.push_back(MakeProcess({{Y, 900}, {B, 2400}}, 0, m++, start));
    start += 10;
  }
  SymptomTable symptoms;
  symptoms.Intern("stuck");
  const ErrorTypeCatalog catalog(processes, 40);
  const SimulationPlatform platform(processes, catalog, symptoms, 20);

  for (double lambda : {0.0, 0.5, 0.9, 1.0}) {
    const QLearningTrainer base(platform, processes, Config(lambda));
    const SelectionTreeTrainer trainer(base, SelectionTreeConfig{});
    const TypeTrainingResult result = trainer.TrainType(0);
    ASSERT_FALSE(result.sequence.empty()) << "lambda " << lambda;
    EXPECT_EQ(result.sequence.front(), B) << "lambda " << lambda;
  }
}

TEST(TdLambdaDeathTest, RejectsOutOfRangeParameters) {
  SingleProcess fx;
  TrainerConfig bad = Config(0.0);
  bad.gamma = 0.0;
  EXPECT_DEATH(QLearningTrainer(fx.platform, fx.processes, bad),
               "AER_CHECK");
  TrainerConfig bad2 = Config(0.0);
  bad2.td_lambda = 1.5;
  EXPECT_DEATH(QLearningTrainer(fx.platform, fx.processes, bad2),
               "AER_CHECK");
}

}  // namespace
}  // namespace aer
