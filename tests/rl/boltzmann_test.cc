#include "rl/boltzmann.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace aer {
namespace {

TEST(TemperatureScheduleTest, DecaysMonotonically) {
  TemperatureSchedule schedule;
  double prev = schedule.At(0);
  EXPECT_DOUBLE_EQ(prev, schedule.initial);
  for (std::int64_t sweep = 100; sweep <= 10000; sweep += 100) {
    const double t = schedule.At(sweep);
    EXPECT_LE(t, prev);
    prev = t;
  }
}

TEST(TemperatureScheduleTest, RespectsFloor) {
  TemperatureSchedule schedule;
  schedule.initial = 1000.0;
  schedule.decay = 0.5;
  schedule.floor = 10.0;
  EXPECT_DOUBLE_EQ(schedule.At(1000), 10.0);
}

TEST(SampleBoltzmannTest, LowTemperatureIsGreedy) {
  Rng rng(1);
  const std::vector<double> costs = {500.0, 100.0, 900.0};
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(SampleBoltzmann(costs, 0.1, rng), 1u);
  }
}

TEST(SampleBoltzmannTest, HighTemperatureIsNearUniform) {
  Rng rng(2);
  const std::vector<double> costs = {500.0, 100.0, 900.0};
  std::vector<int> counts(3, 0);
  const int n = 30000;
  for (int i = 0; i < n; ++i) {
    ++counts[SampleBoltzmann(costs, 1e9, rng)];
  }
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 1.0 / 3.0, 0.02);
  }
}

TEST(SampleBoltzmannTest, IntermediateTemperatureOrdersByQ) {
  Rng rng(3);
  const std::vector<double> costs = {100.0, 200.0, 400.0};
  std::vector<int> counts(3, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    ++counts[SampleBoltzmann(costs, 150.0, rng)];
  }
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[1], counts[2]);
  EXPECT_GT(counts[2], 0);  // still explores the worst action
}

TEST(SampleBoltzmannTest, ExactBoltzmannProbabilities) {
  Rng rng(4);
  const double T = 100.0;
  const std::vector<double> costs = {0.0, 100.0};
  // P(1)/P(0) = exp(-100/100) = e^-1.
  const double expected_p1 = std::exp(-1.0) / (1.0 + std::exp(-1.0));
  int ones = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    if (SampleBoltzmann(costs, T, rng) == 1) ++ones;
  }
  EXPECT_NEAR(static_cast<double>(ones) / n, expected_p1, 0.005);
}

TEST(SampleBoltzmannTest, HugeCostGapsAreNumericallySafe) {
  Rng rng(5);
  const std::vector<double> costs = {1.0, 1e12};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(SampleBoltzmann(costs, 10.0, rng), 0u);
  }
}

TEST(SampleBoltzmannTest, SingleOptionAlwaysChosen) {
  Rng rng(6);
  const std::vector<double> costs = {42.0};
  EXPECT_EQ(SampleBoltzmann(costs, 100.0, rng), 0u);
}

TEST(SampleBoltzmannTest, DeterministicGivenRngState) {
  Rng a(7);
  Rng b(7);
  const std::vector<double> costs = {10.0, 20.0, 30.0};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(SampleBoltzmann(costs, 25.0, a), SampleBoltzmann(costs, 25.0, b));
  }
}

}  // namespace
}  // namespace aer
