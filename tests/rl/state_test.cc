#include "rl/state.h"

#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace aer {
namespace {

TEST(StateTest, RootStateEncoding) {
  const StateKey key = EncodeState(5, {});
  const DecodedState state = DecodeState(key);
  EXPECT_EQ(state.type, 5);
  EXPECT_TRUE(state.tried.empty());
}

TEST(StateTest, RoundTripWithActions) {
  const std::vector<RepairAction> tried = {
      RepairAction::kTryNop, RepairAction::kRma, RepairAction::kReimage,
      RepairAction::kReboot};
  const StateKey key = EncodeState(39, tried);
  const DecodedState state = DecodeState(key);
  EXPECT_EQ(state.type, 39);
  EXPECT_EQ(state.tried, tried);
}

TEST(StateTest, RoundTripPropertyRandom) {
  Rng rng(7);
  for (int trial = 0; trial < 5000; ++trial) {
    const ErrorTypeId type =
        static_cast<ErrorTypeId>(rng.NextBounded(kMaxErrorTypes));
    std::vector<RepairAction> tried(rng.NextBounded(kMaxTriedActions + 1));
    for (auto& a : tried) {
      a = ActionFromIndex(static_cast<int>(rng.NextBounded(kNumActions)));
    }
    const DecodedState state = DecodeState(EncodeState(type, tried));
    ASSERT_EQ(state.type, type);
    ASSERT_EQ(state.tried, tried);
  }
}

TEST(StateTest, DistinctStatesDistinctKeys) {
  std::set<StateKey> keys;
  // All sequences up to length 3 for two types: must be injective.
  for (ErrorTypeId type : {0, 1}) {
    std::vector<RepairAction> tried;
    for (int a0 = -1; a0 < kNumActions; ++a0) {
      tried.clear();
      if (a0 >= 0) tried.push_back(ActionFromIndex(a0));
      for (int a1 = -1; a1 < kNumActions; ++a1) {
        if (a0 < 0 && a1 >= 0) continue;
        auto t2 = tried;
        if (a1 >= 0) t2.push_back(ActionFromIndex(a1));
        EXPECT_TRUE(keys.insert(EncodeState(type, t2)).second);
      }
    }
  }
}

TEST(StateTest, OrderMatters) {
  const std::vector<RepairAction> ab = {RepairAction::kTryNop,
                                        RepairAction::kReboot};
  const std::vector<RepairAction> ba = {RepairAction::kReboot,
                                        RepairAction::kTryNop};
  EXPECT_NE(EncodeState(0, ab), EncodeState(0, ba));
}

TEST(StateTest, FormatIsReadable) {
  const StateKey key =
      EncodeState(12, {{RepairAction::kTryNop, RepairAction::kReboot}});
  EXPECT_EQ(FormatState(key), "T12:[TRYNOP REBOOT]");
  EXPECT_EQ(FormatState(EncodeState(3, {})), "T3:[]");
}

TEST(StateDeathTest, RejectsOverlongSequences) {
  std::vector<RepairAction> tried(kMaxTriedActions + 1,
                                  RepairAction::kTryNop);
  EXPECT_DEATH(EncodeState(0, tried), "AER_CHECK");
}

TEST(StateDeathTest, RejectsOutOfRangeType) {
  EXPECT_DEATH(EncodeState(kMaxErrorTypes, {}), "AER_CHECK");
  EXPECT_DEATH(EncodeState(-1, {}), "AER_CHECK");
}

}  // namespace
}  // namespace aer
