#include "rl/selection_tree.h"

#include <gtest/gtest.h>

namespace aer {
namespace {

constexpr auto Y = RepairAction::kTryNop;
constexpr auto B = RepairAction::kReboot;
constexpr auto I = RepairAction::kReimage;
constexpr auto A = RepairAction::kRma;

TEST(BuildCandidateSequencesTest, SingleGreedyPathWithoutTies) {
  QTable table;
  table.Update(EncodeState(0, {}), Y, 100.0);
  table.Update(EncodeState(0, {}), B, 500.0);  // far from best: no branch
  std::vector<RepairAction> after = {Y};
  table.Update(EncodeState(0, after), B, 50.0);
  SelectionTreeConfig config;
  config.closeness_threshold = 0.2;
  const auto candidates = BuildCandidateSequences(table, 0, 20, config);
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0], (ActionSequence{Y, B}));
}

TEST(BuildCandidateSequencesTest, BranchesOnCloseSecondBest) {
  QTable table;
  table.Update(EncodeState(0, {}), Y, 100.0);
  table.Update(EncodeState(0, {}), B, 110.0);  // within 20%: branch
  SelectionTreeConfig config;
  config.closeness_threshold = 0.2;
  const auto candidates = BuildCandidateSequences(table, 0, 20, config);
  ASSERT_EQ(candidates.size(), 2u);
  EXPECT_EQ(candidates[0], (ActionSequence{Y}));
  EXPECT_EQ(candidates[1], (ActionSequence{B}));
}

TEST(BuildCandidateSequencesTest, PathsEndAtManualRepair) {
  QTable table;
  table.Update(EncodeState(0, {}), A, 100.0);
  // Even with entries "beyond" RMA, the path must stop at RMA.
  std::vector<RepairAction> after = {A};
  table.Update(EncodeState(0, after), Y, 5.0);
  SelectionTreeConfig config;
  const auto candidates = BuildCandidateSequences(table, 0, 20, config);
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0], (ActionSequence{A}));
}

TEST(BuildCandidateSequencesTest, RespectsCandidateCap) {
  // A deep chain of exact ties would explode 2^depth; the cap bounds it.
  QTable table;
  std::vector<RepairAction> prefix;
  for (int depth = 0; depth < 10; ++depth) {
    const StateKey s = EncodeState(0, prefix);
    table.Update(s, Y, 100.0);
    table.Update(s, B, 100.0);
    prefix.push_back(Y);
  }
  SelectionTreeConfig config;
  config.max_candidates = 8;
  const auto candidates = BuildCandidateSequences(table, 0, 20, config);
  EXPECT_LE(candidates.size(), 8u);
  EXPECT_GE(candidates.size(), 2u);
}

TEST(BuildCandidateSequencesTest, EmptyTableYieldsEmptyRoot) {
  QTable table;
  SelectionTreeConfig config;
  const auto candidates = BuildCandidateSequences(table, 0, 20, config);
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_TRUE(candidates[0].empty());
}

// End-to-end: the tree trainer must find the same optimum as exhaustive
// search, in far fewer sweeps than the plain trainer needs for stability.
RecoveryProcess MakeProcess(std::vector<std::pair<RepairAction, SimTime>>
                                attempts_with_costs,
                            SymptomId symptom, MachineId machine,
                            SimTime start) {
  std::vector<SymptomEvent> symptoms = {{start, symptom}};
  std::vector<ActionAttempt> attempts;
  SimTime t = start + 50;
  for (const auto& [action, cost] : attempts_with_costs) {
    attempts.push_back({action, t, cost, false});
    t += cost;
  }
  attempts.back().cured = true;
  return RecoveryProcess(machine, std::move(symptoms), std::move(attempts),
                         t);
}

struct Fixture {
  SymptomTable symptoms;
  std::vector<RecoveryProcess> processes;
  ErrorTypeCatalog catalog;
  SimulationPlatform platform;

  static std::vector<RecoveryProcess> Build() {
    std::vector<RecoveryProcess> out;
    SimTime start = 0;
    MachineId m = 0;
    // Near-tied costs: TRYNOP cures 70%, the rest needs REBOOT; Y-first and
    // B-first come out close, which is exactly where plain greedy extraction
    // flip-flops and the exact tree scan settles instantly.
    for (int i = 0; i < 70; ++i) {
      out.push_back(MakeProcess({{Y, 1400}}, 0, m++, start));
      start += 10;
    }
    for (int i = 0; i < 30; ++i) {
      out.push_back(MakeProcess({{Y, 1400}, {B, 2000}}, 0, m++, start));
      start += 10;
    }
    return out;
  }

  Fixture()
      : processes(Build()),
        catalog(processes, 40),
        platform(processes, catalog, symptoms, 20) {
    symptoms.Intern("neartie");
  }
};

TrainerConfig FastConfig() {
  TrainerConfig config;
  config.max_sweeps = 30000;
  config.min_sweeps = 1000;
  config.check_every = 100;
  config.stable_checks = 20;
  config.seed = 11;
  return config;
}

TEST(SelectionTreeTrainerTest, MatchesExactOptimum) {
  Fixture fx;
  const QLearningTrainer base(fx.platform, fx.processes, FastConfig());
  SelectionTreeConfig tree_config;
  const SelectionTreeTrainer trainer(base, tree_config);
  const TypeTrainingResult result = trainer.TrainType(0);
  ASSERT_TRUE(result.converged);

  const ActionSequence exact = ExactBestSequence(
      base.processes_of(0), 0, fx.platform.estimator(), 20);
  const double got =
      EvaluateSequence(result.sequence, base.processes_of(0), 0,
                       fx.platform.estimator(), 20)
          .mean_cost;
  const double best =
      EvaluateSequence(exact, base.processes_of(0), 0,
                       fx.platform.estimator(), 20)
          .mean_cost;
  EXPECT_NEAR(got, best, best * 0.01)
      << "tree-scan policy must match the exhaustive optimum";
}

TEST(SelectionTreeTrainerTest, ConvergesNoSlowerThanPlainTrainer) {
  Fixture fx;
  const QLearningTrainer base(fx.platform, fx.processes, FastConfig());
  const TypeTrainingResult plain = base.TrainType(0);
  SelectionTreeConfig tree_config;
  const SelectionTreeTrainer trainer(base, tree_config);
  const TypeTrainingResult tree = trainer.TrainType(0);
  ASSERT_TRUE(tree.converged);
  EXPECT_LE(tree.sweeps, plain.sweeps);
}

TEST(SelectionTreeTrainerTest, DeterministicForSeed) {
  Fixture fx;
  const QLearningTrainer base(fx.platform, fx.processes, FastConfig());
  const SelectionTreeTrainer trainer(base, SelectionTreeConfig{});
  const TypeTrainingResult a = trainer.TrainType(0);
  const TypeTrainingResult b = trainer.TrainType(0);
  EXPECT_EQ(a.sequence, b.sequence);
  EXPECT_EQ(a.sweeps, b.sweeps);
}

TEST(SelectionTreeTrainerTest, TrainAllCoversCatalog) {
  Fixture fx;
  const QLearningTrainer base(fx.platform, fx.processes, FastConfig());
  const SelectionTreeTrainer trainer(base, SelectionTreeConfig{});
  const auto output = trainer.TrainAll();
  EXPECT_EQ(output.per_type.size(), fx.catalog.num_types());
  EXPECT_EQ(output.policy.num_types(), 1u);
}

TEST(SelectionTreeTrainerTest, SeedingDisabledStillWorksOnWellSampledType) {
  // In this fixture Y-first and B-first are a genuine near-tie (REBOOT
  // covers the TRYNOP requirement at almost the same mean cost), so the pure
  // tree scan may legitimately settle on either — what matters is that
  // without the escalation seeds it still reaches the exact optimum's cost.
  Fixture fx;
  const QLearningTrainer base(fx.platform, fx.processes, FastConfig());
  SelectionTreeConfig config;
  config.seed_escalation_candidates = false;
  const SelectionTreeTrainer trainer(base, config);
  const TypeTrainingResult result = trainer.TrainType(0);
  ASSERT_FALSE(result.sequence.empty());
  const double got =
      EvaluateSequence(result.sequence, base.processes_of(0), 0,
                       fx.platform.estimator(), 20)
          .mean_cost;
  const ActionSequence exact = ExactBestSequence(
      base.processes_of(0), 0, fx.platform.estimator(), 20);
  const double best =
      EvaluateSequence(exact, base.processes_of(0), 0,
                       fx.platform.estimator(), 20)
          .mean_cost;
  EXPECT_NEAR(got, best, best * 0.02);
}

}  // namespace
}  // namespace aer
