#include "rl/policy.h"

#include <sstream>

#include <gtest/gtest.h>

#include "cluster/user_policy.h"

namespace aer {
namespace {

constexpr auto Y = RepairAction::kTryNop;
constexpr auto B = RepairAction::kReboot;
constexpr auto I = RepairAction::kReimage;
constexpr auto A = RepairAction::kRma;

TrainedPolicy MakePolicy() {
  TrainedPolicy policy;
  policy.AddType({"F000-MemPressure", {B, B, I}});
  policy.AddType({"F001-SmartCtl", {Y, B}});
  return policy;
}

RecoveryContext Ctx(std::string_view symptom,
                    std::span<const RepairAction> tried) {
  RecoveryContext ctx;
  ctx.initial_symptom_name = symptom;
  ctx.tried = tried;
  return ctx;
}

TEST(TrainedPolicyTest, LookupFollowsSequence) {
  const TrainedPolicy policy = MakePolicy();
  EXPECT_EQ(policy.Lookup("F000-MemPressure", {}), B);
  const RepairAction one[] = {B};
  EXPECT_EQ(policy.Lookup("F000-MemPressure", one), B);
  const RepairAction two[] = {B, B};
  EXPECT_EQ(policy.Lookup("F000-MemPressure", two), I);
}

TEST(TrainedPolicyTest, LookupExhaustedReturnsNothing) {
  const TrainedPolicy policy = MakePolicy();
  const RepairAction all[] = {B, B, I};
  EXPECT_FALSE(policy.Lookup("F000-MemPressure", all).has_value());
}

TEST(TrainedPolicyTest, LookupUnknownTypeReturnsNothing) {
  const TrainedPolicy policy = MakePolicy();
  EXPECT_FALSE(policy.Lookup("F099-Unknown", {}).has_value());
}

TEST(TrainedPolicyTest, LookupForeignPrefixReturnsNothing) {
  // Someone else already tried TRYNOP: this is not our prefix, so the
  // trained policy must not claim the state.
  const TrainedPolicy policy = MakePolicy();
  const RepairAction foreign[] = {Y};
  EXPECT_FALSE(policy.Lookup("F000-MemPressure", foreign).has_value());
}

TEST(TrainedPolicyTest, ChooseActionFallsBackToManualRepair) {
  TrainedPolicy policy = MakePolicy();
  EXPECT_EQ(policy.ChooseAction(Ctx("F099-Unknown", {})), A);
  EXPECT_EQ(policy.ChooseAction(Ctx("F001-SmartCtl", {})), Y);
}

TEST(TrainedPolicyTest, FindTypeAndAccessors) {
  const TrainedPolicy policy = MakePolicy();
  EXPECT_EQ(policy.num_types(), 2u);
  ASSERT_NE(policy.FindType("F001-SmartCtl"), nullptr);
  EXPECT_EQ(policy.FindType("F001-SmartCtl")->sequence,
            (ActionSequence{Y, B}));
  EXPECT_EQ(policy.FindType("nope"), nullptr);
}

TEST(TrainedPolicyTest, SerializationRoundTrip) {
  const TrainedPolicy policy = MakePolicy();
  std::stringstream ss;
  policy.Write(ss);

  TrainedPolicy parsed;
  ASSERT_TRUE(TrainedPolicy::Read(ss, parsed));
  ASSERT_EQ(parsed.num_types(), policy.num_types());
  for (const auto& entry : policy.entries()) {
    const auto* got = parsed.FindType(entry.symptom_name);
    ASSERT_NE(got, nullptr);
    EXPECT_EQ(got->sequence, entry.sequence);
  }
}

TEST(TrainedPolicyTest, SerializationFormat) {
  TrainedPolicy policy;
  policy.AddType({"Sym", {B, I}});
  std::stringstream ss;
  policy.Write(ss);
  EXPECT_EQ(ss.str(), "Sym\tREBOOT REIMAGE\n");
}

TEST(TrainedPolicyTest, ReadRejectsMalformed) {
  for (const char* bad : {"NoTab", "Sym\tNOTANACTION", "\tREBOOT",
                          "Dup\tREBOOT\nDup\tREBOOT"}) {
    std::stringstream ss(bad);
    TrainedPolicy parsed;
    EXPECT_FALSE(TrainedPolicy::Read(ss, parsed)) << bad;
  }
}

TEST(HybridPolicyTest, PrefersTrainedThenFallsBack) {
  const TrainedPolicy trained = MakePolicy();
  UserDefinedPolicy user;
  HybridPolicy hybrid(trained, user);

  // Known type: trained sequence.
  EXPECT_EQ(hybrid.ChooseAction(Ctx("F000-MemPressure", {})), B);
  // Unknown type: user escalation from scratch.
  EXPECT_EQ(hybrid.ChooseAction(Ctx("F099-Unknown", {})), Y);
  // Trained sequence exhausted: user policy continues, counting all tried
  // actions (here: B,B,I used; TRYNOP still available at level 0).
  const RepairAction exhausted[] = {B, B, I};
  EXPECT_EQ(hybrid.ChooseAction(Ctx("F000-MemPressure", exhausted)), Y);
}

TEST(HybridPolicyTest, StaysWithFallbackAfterDeviation) {
  // Once the user policy chose an action off the trained prefix, subsequent
  // lookups keep failing and the user policy stays in control.
  const TrainedPolicy trained = MakePolicy();
  UserDefinedPolicy user;
  HybridPolicy hybrid(trained, user);
  const RepairAction deviated[] = {B, B, I, Y};
  const RepairAction next = hybrid.ChooseAction(
      Ctx("F000-MemPressure", deviated));
  // User escalation: Y used once (its level-0 limit), B used twice, I once;
  // next is the second REIMAGE.
  EXPECT_EQ(next, I);
}

TEST(HybridPolicyTest, Name) {
  const TrainedPolicy trained = MakePolicy();
  UserDefinedPolicy user;
  HybridPolicy hybrid(trained, user);
  EXPECT_EQ(hybrid.name(), "hybrid");
}

}  // namespace
}  // namespace aer
