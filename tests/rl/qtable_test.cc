#include "rl/qtable.h"

#include <sstream>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace aer {
namespace {

constexpr StateKey kState = 12345;

TEST(QTableTest, EmptyHasNothing) {
  QTable table;
  EXPECT_FALSE(table.Has(kState, RepairAction::kTryNop));
  EXPECT_EQ(table.Visits(kState, RepairAction::kTryNop), 0);
  EXPECT_FALSE(table.MinQ(kState).has_value());
  EXPECT_FALSE(table.BestAction(kState).has_value());
  EXPECT_FALSE(table.BestTwoActions(kState).has_value());
  EXPECT_EQ(table.num_states(), 0u);
}

TEST(QTableTest, FirstUpdateAdoptsTarget) {
  QTable table;
  table.Update(kState, RepairAction::kReboot, 777.0);
  EXPECT_TRUE(table.Has(kState, RepairAction::kReboot));
  EXPECT_DOUBLE_EQ(table.Q(kState, RepairAction::kReboot), 777.0);
  EXPECT_EQ(table.Visits(kState, RepairAction::kReboot), 1);
}

TEST(QTableTest, VisitCountedAlphaIsRunningAverage) {
  // With α_n = 1/(1+visits), the Q value equals the arithmetic mean of all
  // targets seen so far — the property that makes the update a contraction.
  QTable table;
  Rng rng(3);
  double sum = 0.0;
  for (int i = 1; i <= 200; ++i) {
    const double target = rng.NextDouble() * 1000.0;
    sum += target;
    table.Update(kState, RepairAction::kTryNop, target);
    ASSERT_NEAR(table.Q(kState, RepairAction::kTryNop), sum / i, 1e-9);
  }
  EXPECT_EQ(table.Visits(kState, RepairAction::kTryNop), 200);
  EXPECT_EQ(table.total_updates(), 200);
}

TEST(QTableTest, ActionsAreIndependent) {
  QTable table;
  table.Update(kState, RepairAction::kTryNop, 100.0);
  table.Update(kState, RepairAction::kReboot, 50.0);
  EXPECT_DOUBLE_EQ(table.Q(kState, RepairAction::kTryNop), 100.0);
  EXPECT_DOUBLE_EQ(table.Q(kState, RepairAction::kReboot), 50.0);
  EXPECT_FALSE(table.Has(kState, RepairAction::kReimage));
}

TEST(QTableTest, MinQAndBestAction) {
  QTable table;
  table.Update(kState, RepairAction::kTryNop, 300.0);
  table.Update(kState, RepairAction::kReboot, 100.0);
  table.Update(kState, RepairAction::kRma, 900.0);
  EXPECT_DOUBLE_EQ(*table.MinQ(kState), 100.0);
  EXPECT_EQ(*table.BestAction(kState), RepairAction::kReboot);
}

TEST(QTableTest, BestActionTieBreaksToWeaker) {
  QTable table;
  table.Update(kState, RepairAction::kReimage, 100.0);
  table.Update(kState, RepairAction::kTryNop, 100.0);
  EXPECT_EQ(*table.BestAction(kState), RepairAction::kTryNop);
}

TEST(QTableTest, BestTwoActions) {
  QTable table;
  table.Update(kState, RepairAction::kTryNop, 300.0);
  table.Update(kState, RepairAction::kReboot, 100.0);
  table.Update(kState, RepairAction::kReimage, 200.0);
  const auto best2 = table.BestTwoActions(kState);
  ASSERT_TRUE(best2.has_value());
  EXPECT_EQ(best2->best, RepairAction::kReboot);
  EXPECT_DOUBLE_EQ(best2->best_q, 100.0);
  ASSERT_TRUE(best2->second.has_value());
  EXPECT_EQ(*best2->second, RepairAction::kReimage);
  EXPECT_DOUBLE_EQ(best2->second_q, 200.0);
}

TEST(QTableTest, BestTwoWithSingleActionHasNoSecond) {
  QTable table;
  table.Update(kState, RepairAction::kRma, 500.0);
  const auto best2 = table.BestTwoActions(kState);
  ASSERT_TRUE(best2.has_value());
  EXPECT_EQ(best2->best, RepairAction::kRma);
  EXPECT_FALSE(best2->second.has_value());
}

TEST(QTableTest, StatesAreIndependent) {
  QTable table;
  table.Update(1, RepairAction::kTryNop, 10.0);
  table.Update(2, RepairAction::kTryNop, 20.0);
  EXPECT_DOUBLE_EQ(table.Q(1, RepairAction::kTryNop), 10.0);
  EXPECT_DOUBLE_EQ(table.Q(2, RepairAction::kTryNop), 20.0);
  EXPECT_EQ(table.num_states(), 2u);
}

TEST(QTableTest, SerializationRoundTrip) {
  QTable table;
  Rng rng(9);
  for (int i = 0; i < 300; ++i) {
    table.Update(rng.NextBounded(64), ActionFromIndex(static_cast<int>(
                                          rng.NextBounded(kNumActions))),
                 rng.NextDouble() * 1e5);
  }
  std::stringstream ss;
  table.Write(ss);

  QTable reread;
  ASSERT_TRUE(QTable::Read(ss, reread));
  EXPECT_EQ(reread.num_states(), table.num_states());
  EXPECT_EQ(reread.total_updates(), table.total_updates());
  for (const auto& [key, entries] : table.raw()) {
    for (int a = 0; a < kNumActions; ++a) {
      const RepairAction action = ActionFromIndex(a);
      ASSERT_EQ(reread.Has(key, action), table.Has(key, action));
      if (!table.Has(key, action)) continue;
      ASSERT_DOUBLE_EQ(reread.Q(key, action), table.Q(key, action));
      ASSERT_EQ(reread.Visits(key, action), table.Visits(key, action));
    }
  }
}

TEST(QTableTest, SerializationIsSortedAndSkipsUnexplored) {
  QTable table;
  table.Update(0xBEEF, RepairAction::kReboot, 1.0);
  table.Update(0x0001, RepairAction::kTryNop, 2.0);
  std::stringstream ss;
  table.Write(ss);
  const std::string text = ss.str();
  EXPECT_LT(text.find("0000000000000001"), text.find("000000000000beef"));
  EXPECT_EQ(text.find("REIMAGE"), std::string::npos);
}

TEST(QTableTest, ReadRejectsMalformed) {
  for (const char* bad :
       {"nothex\tREBOOT\t1.0\t3", "1\tNOTANACTION\t1.0\t3",
        "1\tREBOOT\tx\t3", "1\tREBOOT\t1.0\t0", "1\tREBOOT\t1.0",
        "1\tREBOOT\t1.0\t3\n1\tREBOOT\t2.0\t4"}) {
    std::stringstream ss(bad);
    QTable reread;
    EXPECT_FALSE(QTable::Read(ss, reread)) << bad;
  }
}

TEST(QTableDeathTest, QOfUnexploredAborts) {
  QTable table;
  table.Update(kState, RepairAction::kTryNop, 10.0);
  EXPECT_DEATH(table.Q(kState, RepairAction::kReboot), "AER_CHECK");
  EXPECT_DEATH(table.Q(999, RepairAction::kTryNop), "AER_CHECK");
}

}  // namespace
}  // namespace aer
