// Corruption round-trips for the Q-table checkpoint format: every damaged
// input must come back as a ReadResult error with the table left empty —
// never a crash, never a silently half-loaded policy.
#include <gtest/gtest.h>

#include <sstream>

#include "inject/file_corruptor.h"
#include "rl/qtable.h"

namespace aer {
namespace {

QTable MakeTable() {
  QTable table;
  table.Update(0x1234, RepairAction::kTryNop, 10.0);
  table.Update(0x1234, RepairAction::kReboot, 250.0);
  table.Update(0x1234, RepairAction::kReboot, 200.0);
  table.Update(0xabcdef0011223344ULL, RepairAction::kReimage, 3600.0);
  table.Update(0xabcdef0011223344ULL, RepairAction::kRma, 86400.0);
  return table;
}

std::string Serialize(const QTable& table) {
  std::ostringstream os;
  table.Write(os);
  return os.str();
}

TEST(QTableCorruptionTest, CleanRoundTripRestoresExactly) {
  const QTable table = MakeTable();
  std::istringstream is(Serialize(table));
  QTable restored;
  const QTable::ReadResult result = QTable::ReadChecked(is, restored);
  EXPECT_TRUE(result.ok) << result.error;
  EXPECT_EQ(restored.num_states(), table.num_states());
  EXPECT_EQ(restored.total_updates(), table.total_updates());
  EXPECT_EQ(restored.Q(0x1234, RepairAction::kReboot),
            table.Q(0x1234, RepairAction::kReboot));
  EXPECT_EQ(restored.Visits(0x1234, RepairAction::kReboot), 2);
}

TEST(QTableCorruptionTest, EmptyInputIsAnError) {
  std::istringstream is("");
  QTable out;
  const QTable::ReadResult result = QTable::ReadChecked(is, out);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("header"), std::string::npos);
  EXPECT_EQ(out.num_states(), 0u);
}

TEST(QTableCorruptionTest, HeaderlessLegacyFileIsAnError) {
  std::istringstream is(
      "0000000000001234\tTRYNOP\t10\t1\n"
      "0000000000001234\tREBOOT\t225\t2\n");
  QTable out;
  const QTable::ReadResult result = QTable::ReadChecked(is, out);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("#aerq"), std::string::npos);
}

TEST(QTableCorruptionTest, WrongVersionIsAnError) {
  std::string text = Serialize(MakeTable());
  const std::size_t pos = text.find("v1");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 2, "v9");
  std::istringstream is(text);
  QTable out;
  const QTable::ReadResult result = QTable::ReadChecked(is, out);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("version"), std::string::npos);
}

TEST(QTableCorruptionTest, TruncationIsDetected) {
  const std::string text = Serialize(MakeTable());
  // Cut at every possible byte: whatever survives must either fail cleanly
  // (empty table, non-empty reason) or restore the exact original — the
  // only benign cut is losing the final newline.
  for (std::size_t cut = 0; cut < text.size(); ++cut) {
    std::istringstream is(text.substr(0, cut));
    QTable out;
    const QTable::ReadResult result = QTable::ReadChecked(is, out);
    if (result.ok) {
      EXPECT_EQ(Serialize(out), text) << "cut at byte " << cut;
    } else {
      EXPECT_EQ(out.num_states(), 0u) << "cut at byte " << cut;
      EXPECT_FALSE(result.error.empty()) << "cut at byte " << cut;
    }
  }
}

TEST(QTableCorruptionTest, BitFlipsAreDetectedOrHarmless) {
  const std::string clean = Serialize(MakeTable());
  QTable reference;
  {
    std::istringstream is(clean);
    ASSERT_TRUE(QTable::ReadChecked(is, reference).ok);
  }
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    Rng rng(seed);
    std::string text = clean;
    BitFlip(text, 3, rng);
    std::istringstream is(text);
    QTable out;
    const QTable::ReadResult result = QTable::ReadChecked(is, out);
    if (text == clean) continue;  // flip of a flipped bit can cancel out
    // Damage must never load silently: a clean error with an empty table.
    EXPECT_FALSE(result.ok) << "seed " << seed;
    EXPECT_EQ(out.num_states(), 0u) << "seed " << seed;
  }
}

TEST(QTableCorruptionTest, LineLevelCorruptionNeverCrashes) {
  const std::string clean = Serialize(MakeTable());
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    Rng rng(seed);
    const std::string dirty = CorruptLines(clean, 0.8, rng);
    if (dirty == clean) continue;
    std::istringstream is(dirty);
    QTable out;
    const QTable::ReadResult result = QTable::ReadChecked(is, out);
    if (result.ok) {
      // Cosmetic-only damage (e.g. a stray CR on the header, which the
      // header parser trims): the restore must be bit-exact.
      EXPECT_EQ(Serialize(out), clean) << "seed " << seed;
    } else {
      EXPECT_EQ(out.num_states(), 0u) << "seed " << seed;
    }
  }
}

TEST(QTableCorruptionTest, DuplicateEntryIsAnError) {
  // A duplicated body line passes field parsing; the duplicate detection
  // (and the checksum) must still reject it.
  QTable table;
  table.Update(0x42, RepairAction::kReboot, 100.0);
  std::string text = Serialize(table);
  const std::size_t body_start = text.find('\n') + 1;
  const std::string body = text.substr(body_start);
  text += body;  // append the body lines again
  std::istringstream is(text);
  QTable out;
  const QTable::ReadResult result = QTable::ReadChecked(is, out);
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(out.num_states(), 0u);
}

TEST(QTableCorruptionTest, ChecksumCatchesValuePreservingEdits) {
  // Swap two body lines: same bytes per line, same entry count, same parsed
  // content — only the checksum-covered byte order changed. The format
  // still flags it (sorted order is part of the contract).
  const QTable table = MakeTable();
  std::string text = Serialize(table);
  std::istringstream lines(text);
  std::string header;
  std::string l1;
  std::string l2;
  ASSERT_TRUE(std::getline(lines, header));
  ASSERT_TRUE(std::getline(lines, l1));
  ASSERT_TRUE(std::getline(lines, l2));
  std::string rest;
  std::getline(lines, rest, '\0');
  const std::string swapped = header + "\n" + l2 + "\n" + l1 + "\n" + rest;
  std::istringstream is(swapped);
  QTable out;
  const QTable::ReadResult result = QTable::ReadChecked(is, out);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("checksum"), std::string::npos);
}

}  // namespace
}  // namespace aer
