// Double Q-learning tests: the twin-table update must preserve the learned
// policy while decoupling bootstrap selection from valuation.
#include <gtest/gtest.h>

#include "rl/qlearning.h"

namespace aer {
namespace {

constexpr auto Y = RepairAction::kTryNop;
constexpr auto B = RepairAction::kReboot;

RecoveryProcess MakeProcess(std::vector<std::pair<RepairAction, SimTime>>
                                attempts_with_costs,
                            SymptomId symptom, MachineId machine,
                            SimTime start) {
  std::vector<SymptomEvent> symptoms = {{start, symptom}};
  std::vector<ActionAttempt> attempts;
  SimTime t = start + 50;
  for (const auto& [action, cost] : attempts_with_costs) {
    attempts.push_back({action, t, cost, false});
    t += cost;
  }
  attempts.back().cured = true;
  return RecoveryProcess(machine, std::move(symptoms), std::move(attempts),
                         t);
}

struct Fixture {
  SymptomTable symptoms;
  std::vector<RecoveryProcess> processes;
  ErrorTypeCatalog catalog;
  SimulationPlatform platform;

  static std::vector<RecoveryProcess> Build() {
    std::vector<RecoveryProcess> out;
    SimTime start = 0;
    MachineId m = 0;
    for (int i = 0; i < 50; ++i) {
      out.push_back(MakeProcess({{Y, 900}, {B, 2400}}, 0, m++, start));
      start += 10;
    }
    return out;
  }

  Fixture()
      : processes(Build()),
        catalog(processes, 40),
        platform(processes, catalog, symptoms, 20) {
    symptoms.Intern("stuck");
  }
};

TrainerConfig Config(bool double_q) {
  TrainerConfig config;
  config.double_q = double_q;
  config.max_sweeps = 12000;
  config.min_sweeps = 2000;
  config.check_every = 200;
  config.stable_checks = 10;
  config.seed = 5;
  return config;
}

TEST(MergeTablesByMeanTest, AveragesSharedEntriesCopiesExclusive) {
  QTable a;
  QTable b;
  a.Update(1, Y, 100.0);
  b.Update(1, Y, 300.0);
  a.Update(2, B, 50.0);   // only in a
  b.Update(3, B, 70.0);   // only in b
  const QTable merged = MergeTablesByMean(a, b);
  EXPECT_DOUBLE_EQ(merged.Q(1, Y), 200.0);
  EXPECT_DOUBLE_EQ(merged.Q(2, B), 50.0);
  EXPECT_DOUBLE_EQ(merged.Q(3, B), 70.0);
  EXPECT_EQ(merged.num_states(), 3u);
}

TEST(DoubleQTest, LearnsTheSamePolicyAsSingleQ) {
  Fixture fx;
  const QLearningTrainer single(fx.platform, fx.processes, Config(false));
  const QLearningTrainer twin(fx.platform, fx.processes, Config(true));
  const TypeTrainingResult a = single.TrainType(0);
  const TypeTrainingResult b = twin.TrainType(0);
  ASSERT_FALSE(a.sequence.empty());
  ASSERT_FALSE(b.sequence.empty());
  EXPECT_EQ(a.sequence.front(), B);
  EXPECT_EQ(b.sequence.front(), B);
}

TEST(DoubleQTest, MergedValuesApproximateTrueCosts) {
  Fixture fx;
  const QLearningTrainer twin(fx.platform, fx.processes, Config(true));
  QTable merged;
  twin.TrainType(0, &merged);
  const StateKey root = EncodeState(0, {});
  ASSERT_TRUE(merged.Has(root, B));
  EXPECT_NEAR(merged.Q(root, B), 2400.0, 150.0);
  ASSERT_TRUE(merged.Has(root, Y));
  EXPECT_NEAR(merged.Q(root, Y), 3300.0, 250.0);
}

TEST(DoubleQTest, DeterministicForSeed) {
  Fixture fx;
  const QLearningTrainer twin(fx.platform, fx.processes, Config(true));
  const TypeTrainingResult a = twin.TrainType(0);
  const TypeTrainingResult b = twin.TrainType(0);
  EXPECT_EQ(a.sequence, b.sequence);
  EXPECT_EQ(a.sweeps, b.sweeps);
}

TEST(DoubleQDeathTest, IncompatibleWithTdLambda) {
  Fixture fx;
  TrainerConfig config = Config(true);
  config.td_lambda = 0.5;
  const QLearningTrainer trainer(fx.platform, fx.processes, config);
  EXPECT_DEATH(trainer.TrainType(0), "AER_CHECK");
}

}  // namespace
}  // namespace aer
