#include "rl/sequence.h"

#include <gtest/gtest.h>

#include "cluster/fault_catalog.h"

namespace aer {
namespace {

constexpr auto Y = RepairAction::kTryNop;
constexpr auto B = RepairAction::kReboot;
constexpr auto I = RepairAction::kReimage;
constexpr auto A = RepairAction::kRma;

RecoveryProcess MakeProcess(std::vector<std::pair<RepairAction, SimTime>>
                                attempts_with_costs,
                            SymptomId symptom = 0) {
  std::vector<SymptomEvent> symptoms = {{0, symptom}};
  std::vector<ActionAttempt> attempts;
  SimTime t = 50;  // detection delay 50
  for (const auto& [action, cost] : attempts_with_costs) {
    attempts.push_back({action, t, cost, false});
    t += cost;
  }
  attempts.back().cured = true;
  return RecoveryProcess(0, std::move(symptoms), std::move(attempts), t);
}

struct Fixture {
  std::vector<RecoveryProcess> storage;
  std::vector<const RecoveryProcess*> processes;
  ErrorTypeCatalog catalog;
  CostEstimator estimator;
  ErrorTypeId type;

  explicit Fixture(std::vector<RecoveryProcess> p)
      : storage(std::move(p)),
        catalog(storage, 40),
        estimator(storage, catalog),
        type(catalog.ClassifySymptom(0)) {
    for (const auto& proc : storage) processes.push_back(&proc);
  }
};

// A "stuck service" type: TRYNOP always fails (cost 900), REBOOT cures
// (cost 2400). Log produced by cheapest-first: [Y fail, B success].
Fixture StuckServiceFixture(int n = 10) {
  std::vector<RecoveryProcess> processes;
  for (int i = 0; i < n; ++i) {
    processes.push_back(MakeProcess({{Y, 900}, {B, 2400}}));
  }
  return Fixture(std::move(processes));
}

TEST(EvaluateSequenceTest, OriginalSequenceReproducesActualMeanCost) {
  Fixture fx = StuckServiceFixture();
  const ActionSequence original = {Y, B};
  const SequenceEvaluation eval = EvaluateSequence(
      original, fx.processes, fx.type, fx.estimator, 20);
  EXPECT_EQ(eval.processes, 10);
  EXPECT_EQ(eval.cured_by_sequence, 10);
  EXPECT_EQ(eval.terminalized, 0);
  EXPECT_DOUBLE_EQ(eval.mean_cost, 50 + 900 + 2400);
}

TEST(EvaluateSequenceTest, RebootFirstSavesTheWastedWatch) {
  Fixture fx = StuckServiceFixture();
  const SequenceEvaluation eval = EvaluateSequence(
      ActionSequence{B}, fx.processes, fx.type, fx.estimator, 20);
  EXPECT_EQ(eval.cured_by_sequence, 10);
  // REBOOT's actual cost is consumed from the log occurrence.
  EXPECT_DOUBLE_EQ(eval.mean_cost, 50 + 2400);
}

TEST(EvaluateSequenceTest, ManualRepairTerminalizationChargesRma) {
  Fixture fx = StuckServiceFixture();
  const SequenceEvaluation eval = EvaluateSequence(
      ActionSequence{Y}, fx.processes, fx.type, fx.estimator, 20,
      Terminalization::kManualRepair);
  EXPECT_EQ(eval.cured_by_sequence, 0);
  EXPECT_EQ(eval.terminalized, 10);
  const ActionDurationDefaults priors;  // RMA unobserved -> prior
  EXPECT_DOUBLE_EQ(eval.mean_cost, 50 + 900 + priors.rma_s);
}

TEST(EvaluateSequenceTest, EscalateTerminalizationContinuesEscalation) {
  Fixture fx = StuckServiceFixture();
  const SequenceEvaluation eval = EvaluateSequence(
      ActionSequence{Y}, fx.processes, fx.type, fx.estimator, 20,
      Terminalization::kEscalate);
  EXPECT_EQ(eval.terminalized, 10);
  // After the exhausted [Y], escalation continues with Y (already used once
  // more... strongest is Y so it retries Y then B): Y(avg fail) then B cures.
  // Y's average failing cost is 900, B's actual 2400.
  EXPECT_DOUBLE_EQ(eval.mean_cost, 50 + 900 + 900 + 2400);
}

TEST(EvaluateSequenceTest, CapForcesManualRepair) {
  Fixture fx = StuckServiceFixture();
  // Cap of 2 actions: [Y] then forced RMA even under kEscalate.
  const SequenceEvaluation eval = EvaluateSequence(
      ActionSequence{Y}, fx.processes, fx.type, fx.estimator, 2,
      Terminalization::kEscalate);
  const ActionDurationDefaults priors;
  // Step 1 = Y (actual 900); escalation would continue but the cap says the
  // 2nd slot must be manual repair.
  EXPECT_DOUBLE_EQ(eval.mean_cost, 50 + 900 + priors.rma_s);
}

TEST(EvaluateSequenceTest, EmptyProcessListIsZero) {
  Fixture fx = StuckServiceFixture();
  const SequenceEvaluation eval = EvaluateSequence(
      ActionSequence{B}, {}, fx.type, fx.estimator, 20);
  EXPECT_EQ(eval.processes, 0);
  EXPECT_EQ(eval.mean_cost, 0.0);
}

TEST(ExactBestSequenceTest, StuckServiceOptimumIsRebootFirst) {
  Fixture fx = StuckServiceFixture();
  const ActionSequence best =
      ExactBestSequence(fx.processes, fx.type, fx.estimator, 20);
  EXPECT_EQ(best, (ActionSequence{B}));
}

TEST(ExactBestSequenceTest, TransientOptimumKeepsCheapestFirst) {
  // 8 of 10 processes cured by TRYNOP (cheap), 2 needed REBOOT.
  std::vector<RecoveryProcess> processes;
  for (int i = 0; i < 8; ++i) processes.push_back(MakeProcess({{Y, 900}}));
  for (int i = 0; i < 2; ++i) {
    processes.push_back(MakeProcess({{Y, 900}, {B, 2400}}));
  }
  Fixture fx(std::move(processes));
  const ActionSequence best =
      ExactBestSequence(fx.processes, fx.type, fx.estimator, 20);
  ASSERT_FALSE(best.empty());
  EXPECT_EQ(best.front(), Y);
}

TEST(ExactBestSequenceTest, HardwareOptimumIsStraightToManualRepair) {
  // Everything failed until RMA.
  std::vector<RecoveryProcess> processes;
  for (int i = 0; i < 6; ++i) {
    processes.push_back(MakeProcess(
        {{Y, 900}, {B, 2400}, {B, 2400}, {I, 9000}, {I, 9000}, {A, 90000}}));
  }
  Fixture fx(std::move(processes));
  const ActionSequence best =
      ExactBestSequence(fx.processes, fx.type, fx.estimator, 20);
  EXPECT_EQ(best, (ActionSequence{A}));
}

TEST(ExactBestSequenceTest, RepeatedRequirementNeedsRepeatedAction) {
  // Incidents that took two REBOOTs: the optimum repeats REBOOT rather than
  // jumping to the much costlier REIMAGE.
  std::vector<RecoveryProcess> processes;
  for (int i = 0; i < 10; ++i) {
    processes.push_back(MakeProcess({{B, 2400}, {B, 2400}}));
  }
  Fixture fx(std::move(processes));
  const ActionSequence best =
      ExactBestSequence(fx.processes, fx.type, fx.estimator, 20);
  EXPECT_EQ(best, (ActionSequence{B, B}));
}

TEST(ExactBestSequenceTest, NeverWorseThanObservedBehaviour) {
  // Property: the exact optimum must cost at most what the logged policy
  // cost (the logged sequence is in the search space, restricted to
  // observed actions).
  Fixture fx = StuckServiceFixture();
  const ActionSequence best =
      ExactBestSequence(fx.processes, fx.type, fx.estimator, 20);
  const double best_cost =
      EvaluateSequence(best, fx.processes, fx.type, fx.estimator, 20)
          .mean_cost;
  const double logged_cost =
      EvaluateSequence(
      ActionSequence{Y, B}, fx.processes, fx.type, fx.estimator, 20)
          .mean_cost;
  EXPECT_LE(best_cost, logged_cost + 1e-9);
}

TEST(ExactBestSequenceTest, RespectsObservedActionRestriction) {
  // REIMAGE/RMA never appear in this type's log, so even though the fixture
  // is "hardware-like" the search may only use TRYNOP/REBOOT.
  std::vector<RecoveryProcess> processes;
  for (int i = 0; i < 4; ++i) {
    processes.push_back(MakeProcess({{Y, 900}, {B, 2400}}));
  }
  Fixture fx(std::move(processes));
  const ActionSequence best =
      ExactBestSequence(fx.processes, fx.type, fx.estimator, 20);
  for (RepairAction a : best) {
    EXPECT_TRUE(a == Y || a == B);
  }
}

}  // namespace
}  // namespace aer
