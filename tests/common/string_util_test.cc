#include "common/string_util.h"

#include <gtest/gtest.h>

namespace aer {
namespace {

TEST(SplitTest, BasicFields) {
  const auto parts = Split("a\tb\tc", '\t');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(SplitTest, KeepsEmptyFields) {
  const auto parts = Split(",a,,b,", ',');
  ASSERT_EQ(parts.size(), 5u);
  EXPECT_EQ(parts[0], "");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[4], "");
}

TEST(SplitTest, NoDelimiterYieldsWhole) {
  const auto parts = Split("hello", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "hello");
}

TEST(SplitTest, EmptyInput) {
  const auto parts = Split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(TrimTest, RemovesSurroundingWhitespace) {
  EXPECT_EQ(Trim("  x  "), "x");
  EXPECT_EQ(Trim("\t\na b\r\n"), "a b");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("nowhitespace"), "nowhitespace");
}

TEST(JoinTest, Basic) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(ParseInt64Test, ValidInputs) {
  EXPECT_EQ(ParseInt64("0"), 0);
  EXPECT_EQ(ParseInt64("12345"), 12345);
  EXPECT_EQ(ParseInt64("-42"), -42);
  EXPECT_EQ(ParseInt64("  77  "), 77);  // trimmed
}

TEST(ParseInt64Test, InvalidInputs) {
  EXPECT_FALSE(ParseInt64("").has_value());
  EXPECT_FALSE(ParseInt64("abc").has_value());
  EXPECT_FALSE(ParseInt64("12x").has_value());
  EXPECT_FALSE(ParseInt64("1.5").has_value());
  EXPECT_FALSE(ParseInt64("1 2").has_value());
}

TEST(ParseDoubleTest, ValidInputs) {
  EXPECT_DOUBLE_EQ(*ParseDouble("1.5"), 1.5);
  EXPECT_DOUBLE_EQ(*ParseDouble("-2e3"), -2000.0);
  EXPECT_DOUBLE_EQ(*ParseDouble("0"), 0.0);
}

TEST(ParseDoubleTest, InvalidInputs) {
  EXPECT_FALSE(ParseDouble("").has_value());
  EXPECT_FALSE(ParseDouble("x").has_value());
  EXPECT_FALSE(ParseDouble("1.5z").has_value());
}

TEST(StartsWithTest, Basic) {
  EXPECT_TRUE(StartsWith("error:Foo", "error:"));
  EXPECT_FALSE(StartsWith("err", "error:"));
  EXPECT_TRUE(StartsWith("anything", ""));
}

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 3.14159), "3.14");
  EXPECT_EQ(StrFormat("plain"), "plain");
}

TEST(StrFormatTest, LongOutput) {
  const std::string s = StrFormat("%0512d", 1);
  EXPECT_EQ(s.size(), 512u);
  EXPECT_EQ(s.back(), '1');
}

}  // namespace
}  // namespace aer
