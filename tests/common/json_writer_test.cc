#include "common/json_writer.h"

#include <gtest/gtest.h>

namespace aer {
namespace {

TEST(JsonWriterTest, ScalarsRender) {
  EXPECT_EQ(JsonValue::String("hi").ToString(), "\"hi\"\n");
  EXPECT_EQ(JsonValue::Int(-42).ToString(), "-42\n");
  EXPECT_EQ(JsonValue::Bool(true).ToString(), "true\n");
  EXPECT_EQ(JsonValue::Bool(false).ToString(), "false\n");
  EXPECT_EQ(JsonValue::Number(0.5).ToString(), "0.5\n");
}

TEST(JsonWriterTest, NumberRoundTripsAtFullPrecision) {
  // %.17g: enough digits that a parser recovers the exact double.
  const double v = 0.1 + 0.2;
  const std::string rendered = JsonValue::Number(v).ToString();
  EXPECT_EQ(std::stod(rendered), v);
}

TEST(JsonWriterTest, EmptyContainersRender) {
  EXPECT_EQ(JsonValue::Object().ToString(), "{}\n");
  EXPECT_EQ(JsonValue::Array().ToString(), "[]\n");
}

TEST(JsonWriterTest, ObjectKeepsInsertionOrder) {
  JsonValue object = JsonValue::Object();
  object.Set("zebra", JsonValue::Int(1));
  object.Set("alpha", JsonValue::Int(2));
  object.Set("middle", JsonValue::Int(3));
  EXPECT_EQ(object.ToString(),
            "{\n"
            "  \"zebra\": 1,\n"
            "  \"alpha\": 2,\n"
            "  \"middle\": 3\n"
            "}\n");
}

TEST(JsonWriterTest, SetReplacesInPlaceKeepingPosition) {
  JsonValue object = JsonValue::Object();
  object.Set("first", JsonValue::Int(1));
  object.Set("second", JsonValue::Int(2));
  object.Set("first", JsonValue::String("replaced"));
  EXPECT_EQ(object.ToString(),
            "{\n"
            "  \"first\": \"replaced\",\n"
            "  \"second\": 2\n"
            "}\n");
}

TEST(JsonWriterTest, FindLocatesKeys) {
  JsonValue object = JsonValue::Object();
  object.Set("present", JsonValue::Int(5));
  EXPECT_NE(object.Find("present"), nullptr);
  EXPECT_EQ(object.Find("absent"), nullptr);
}

TEST(JsonWriterTest, NestedStructuresIndent) {
  JsonValue root = JsonValue::Object();
  JsonValue metrics = JsonValue::Object();
  metrics.Set("eps", JsonValue::Number(2.0));
  root.Set("name", JsonValue::String("bench"));
  root.Set("metrics", std::move(metrics));
  JsonValue list = JsonValue::Array();
  list.Append(JsonValue::Int(1));
  list.Append(JsonValue::Int(2));
  root.Set("values", std::move(list));
  EXPECT_EQ(root.ToString(),
            "{\n"
            "  \"name\": \"bench\",\n"
            "  \"metrics\": {\n"
            "    \"eps\": 2\n"
            "  },\n"
            "  \"values\": [\n"
            "    1,\n"
            "    2\n"
            "  ]\n"
            "}\n");
}

TEST(JsonWriterTest, StringsEscapePerRfc8259) {
  EXPECT_EQ(JsonValue::String("a\"b\\c").ToString(), "\"a\\\"b\\\\c\"\n");
  EXPECT_EQ(JsonValue::String("line\nbreak\ttab").ToString(),
            "\"line\\nbreak\\ttab\"\n");
  EXPECT_EQ(JsonValue::String(std::string("nul\x01"
                                          "byte"))
                .ToString(),
            "\"nul\\u0001byte\"\n");
}

}  // namespace
}  // namespace aer
