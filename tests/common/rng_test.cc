#include "common/rng.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace aer {
namespace {

TEST(SplitMix64Test, KnownSequenceIsDeterministic) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(SplitMix64Test, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(123);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanNearHalf) {
  Rng rng(5);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, NextBoundedStaysInRange) {
  Rng rng(9);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 1000; ++i) {
      ASSERT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(RngTest, NextBoundedOneAlwaysZero) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.NextBounded(1), 0u);
  }
}

TEST(RngTest, NextBoundedCoversAllValues) {
  Rng rng(13);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextBounded(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(17);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.NextInt(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    saw_lo = saw_lo || v == -3;
    saw_hi = saw_hi || v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextBoolProbability) {
  Rng rng(19);
  int heads = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.NextBool(0.3)) ++heads;
  }
  EXPECT_NEAR(static_cast<double>(heads) / n, 0.3, 0.01);
}

TEST(RngTest, ExponentialMeanMatches) {
  Rng rng(23);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.NextExponential(250.0);
  EXPECT_NEAR(sum / n, 250.0, 5.0);
}

TEST(RngTest, ExponentialIsPositive) {
  Rng rng(29);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_GE(rng.NextExponential(1.0), 0.0);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(31);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.NextGaussian();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.01);
  EXPECT_NEAR(sq / n, 1.0, 0.02);
}

TEST(RngTest, LogNormalMeanMatchesRequested) {
  Rng rng(37);
  for (double mean : {100.0, 2400.0, 90000.0}) {
    double sum = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) sum += rng.NextLogNormalWithMean(mean, 0.4);
    EXPECT_NEAR(sum / n / mean, 1.0, 0.02) << "mean=" << mean;
  }
}

TEST(RngTest, LogNormalZeroSigmaIsConstant) {
  Rng rng(41);
  for (int i = 0; i < 100; ++i) {
    EXPECT_NEAR(rng.NextLogNormalWithMean(500.0, 0.0), 500.0, 1e-9);
  }
}

TEST(RngTest, WeightedSamplingRespectsWeights) {
  Rng rng(43);
  const std::vector<double> weights = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) {
    ++counts[rng.NextWeighted(weights)];
  }
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.01);
}

TEST(RngTest, ForkedStreamsAreIndependentOfParentUse) {
  // The child stream's draws must not depend on how much the parent is used
  // *after* the fork.
  Rng parent1(99);
  Rng child1 = parent1.Fork();
  Rng parent2(99);
  Rng child2 = parent2.Fork();
  for (int i = 0; i < 10; ++i) parent2.Next();  // extra parent use
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(child1.Next(), child2.Next());
  }
}

TEST(RngTest, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Rng>);
  Rng rng(1);
  std::vector<int> v = {1, 2, 3, 4, 5};
  std::shuffle(v.begin(), v.end(), rng);  // compiles and runs
  EXPECT_EQ(v.size(), 5u);
}

TEST(ZipfDistributionTest, PmfSumsToOne) {
  ZipfDistribution zipf(50, 1.2);
  double total = 0.0;
  for (std::size_t k = 0; k < zipf.size(); ++k) total += zipf.Pmf(k);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfDistributionTest, PmfIsDecreasing) {
  ZipfDistribution zipf(20, 1.5);
  for (std::size_t k = 1; k < zipf.size(); ++k) {
    EXPECT_GT(zipf.Pmf(k - 1), zipf.Pmf(k));
  }
}

TEST(ZipfDistributionTest, SampleFrequenciesMatchPmf) {
  ZipfDistribution zipf(10, 1.0);
  Rng rng(47);
  std::vector<int> counts(10, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[zipf.Sample(rng)];
  for (std::size_t k = 0; k < 10; ++k) {
    EXPECT_NEAR(static_cast<double>(counts[k]) / n, zipf.Pmf(k), 0.01);
  }
}

TEST(ZipfDistributionTest, SingleRankAlwaysZero) {
  ZipfDistribution zipf(1, 2.0);
  Rng rng(53);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf.Sample(rng), 0u);
}

// Exponent sweep: heavier exponents concentrate more mass on rank 0.
class ZipfExponentTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfExponentTest, HeadMassGrowsWithExponent) {
  const double s = GetParam();
  ZipfDistribution lighter(100, s);
  ZipfDistribution heavier(100, s + 0.5);
  EXPECT_LT(lighter.Pmf(0), heavier.Pmf(0));
}

INSTANTIATE_TEST_SUITE_P(Exponents, ZipfExponentTest,
                         ::testing::Values(0.5, 0.8, 1.0, 1.3, 1.8, 2.2));

TEST(DeriveStreamTest, MappingIsFrozen) {
  // DeriveStream is the contract between master seeds and per-shard RNG
  // streams: every historical artifact (trained policy, baseline checksum)
  // assumes exactly this golden-ratio XOR. Pin a few values so an
  // "equivalent" rewrite cannot silently remap every stream.
  EXPECT_EQ(DeriveStream(0, 0), 0x9e3779b97f4a7c15ULL);
  EXPECT_EQ(DeriveStream(0, 1), 0x9e3779b97f4a7c15ULL * 2);
  EXPECT_EQ(DeriveStream(1234, 0), 1234 ^ 0x9e3779b97f4a7c15ULL);
  EXPECT_EQ(DeriveStream(1234, 7),
            1234 ^ (0x9e3779b97f4a7c15ULL * 8));
}

TEST(DeriveStreamTest, PureFunctionOfArguments) {
  EXPECT_EQ(DeriveStream(42, 3), DeriveStream(42, 3));
  // Draws from one derived stream never influence another.
  Rng a(DeriveStream(42, 0));
  for (int i = 0; i < 1000; ++i) a.Next();
  Rng b(DeriveStream(42, 1));
  Rng b_fresh(DeriveStream(42, 1));
  for (int i = 0; i < 100; ++i) EXPECT_EQ(b.Next(), b_fresh.Next());
}

TEST(DeriveStreamTest, NearbyStreamsDecorrelate) {
  // Adjacent stream ids (and adjacent master seeds) must yield unrelated
  // sequences once fed through the Rng's SplitMix64 seeding.
  Rng a(DeriveStream(1234, 0));
  Rng b(DeriveStream(1234, 1));
  Rng c(DeriveStream(1235, 0));
  int collisions = 0;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t x = a.Next();
    if (x == b.Next()) ++collisions;
    if (x == c.Next()) ++collisions;
  }
  EXPECT_EQ(collisions, 0);
}

}  // namespace
}  // namespace aer
