#include "common/sim_time.h"

#include <gtest/gtest.h>

namespace aer {
namespace {

TEST(SimTimeTest, Constants) {
  EXPECT_EQ(kMinute, 60);
  EXPECT_EQ(kHour, 3600);
  EXPECT_EQ(kDay, 86400);
}

TEST(FormatSimTimeTest, Zero) { EXPECT_EQ(FormatSimTime(0), "0:00:00:00"); }

TEST(FormatSimTimeTest, MixedComponents) {
  EXPECT_EQ(FormatSimTime(2 * kDay + 3 * kHour + 4 * kMinute + 5),
            "2:03:04:05");
}

TEST(FormatSimTimeTest, Negative) {
  EXPECT_EQ(FormatSimTime(-kHour), "-0:01:00:00");
}

TEST(FormatSimTimeTest, JustUnderADay) {
  EXPECT_EQ(FormatSimTime(kDay - 1), "0:23:59:59");
}

}  // namespace
}  // namespace aer
