#include "common/csv.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

namespace aer {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream is(path);
  std::stringstream ss;
  ss << is.rdbuf();
  return ss.str();
}

TEST(CsvWriterTest, DisabledWhenDirEmpty) {
  CsvWriter w("", "test");
  EXPECT_FALSE(w.enabled());
  w.WriteRow({"a", "b"});  // no crash
}

TEST(CsvWriterTest, WritesRows) {
  const std::string dir = ::testing::TempDir();
  {
    CsvWriter w(dir, "aer_csv_test");
    ASSERT_TRUE(w.enabled());
    w.WriteRow({"x", "y"});
    w.WriteRow({"1", "2"});
  }
  EXPECT_EQ(ReadFile(dir + "/aer_csv_test.csv"), "x,y\n1,2\n");
  std::remove((dir + "/aer_csv_test.csv").c_str());
}

TEST(CsvWriterTest, EscapesSpecialCharacters) {
  const std::string dir = ::testing::TempDir();
  {
    CsvWriter w(dir, "aer_csv_escape");
    w.WriteRow({"a,b", "he said \"hi\"", "line\nbreak", "plain"});
  }
  EXPECT_EQ(ReadFile(dir + "/aer_csv_escape.csv"),
            "\"a,b\",\"he said \"\"hi\"\"\",\"line\nbreak\",plain\n");
  std::remove((dir + "/aer_csv_escape.csv").c_str());
}

TEST(CsvDirFromEnvTest, EmptyWhenUnset) {
  unsetenv("AER_CSV_DIR");
  EXPECT_EQ(CsvDirFromEnv(), "");
  setenv("AER_CSV_DIR", "/tmp/foo", 1);
  EXPECT_EQ(CsvDirFromEnv(), "/tmp/foo");
  unsetenv("AER_CSV_DIR");
}

}  // namespace
}  // namespace aer
