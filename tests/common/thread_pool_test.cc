// ThreadPool unit and stress tests (docs/PARALLELISM.md). The stress cases
// are sized to be meaningful under TSan — the tsan CI leg runs this binary
// to verify the pool's locking discipline, and the robustness label pulls it
// into the fault-tolerance suite.
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <future>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"

namespace aer {
namespace {

TEST(ThreadPoolTest, SubmitReturnsResultThroughFuture) {
  ThreadPool pool(2);
  std::future<int> f = pool.Submit([] { return 41 + 1; });
  EXPECT_EQ(f.get(), 42);
  std::future<std::string> g =
      pool.Submit([] { return std::string("done"); });
  EXPECT_EQ(g.get(), "done");
}

TEST(ThreadPoolTest, SubmitExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  std::future<int> f = pool.Submit(
      []() -> int { throw std::runtime_error("task failed"); });
  EXPECT_THROW(f.get(), std::runtime_error);
  // The pool survives a throwing task.
  EXPECT_EQ(pool.Submit([] { return 7; }).get(), 7);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(kN, [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForResultIndependentOfThreadCount) {
  // The same deterministic per-index computation must produce identical
  // output for any worker count — the scheduling-independence half of the
  // determinism contract.
  auto run = [](int threads) {
    ThreadPool pool(threads);
    std::vector<std::uint64_t> out(257);
    pool.ParallelFor(out.size(), [&](std::size_t i) {
      std::uint64_t h = 0x9e3779b97f4a7c15ULL * (i + 1);
      for (int k = 0; k < 1000; ++k) h = h * 6364136223846793005ULL + i;
      out[i] = h;
    });
    return out;
  };
  const std::vector<std::uint64_t> serial = run(1);
  EXPECT_EQ(serial, run(2));
  EXPECT_EQ(serial, run(8));
}

TEST(ThreadPoolTest, ParallelForHandlesEdgeSizes) {
  ThreadPool pool(2);
  int calls = 0;
  pool.ParallelFor(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.ParallelFor(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, ParallelForRethrowsFirstExceptionAfterFinishing) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 500;
  std::atomic<int> completed{0};
  try {
    pool.ParallelFor(kN, [&](std::size_t i) {
      if (i == 123) throw std::runtime_error("index 123");
      ++completed;
    });
    FAIL() << "expected the index-123 exception to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "index 123");
  }
  // No cancellation: every other index still ran.
  EXPECT_EQ(completed.load(), static_cast<int>(kN) - 1);
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  // ParallelFor from inside a pool task must complete even when every
  // worker is itself blocked in an outer ParallelFor — the caller
  // participates, so progress never depends on a free worker.
  ThreadPool pool(2);
  std::atomic<int> inner_total{0};
  pool.ParallelFor(4, [&](std::size_t) {
    pool.ParallelFor(8, [&](std::size_t) { ++inner_total; });
  });
  EXPECT_EQ(inner_total.load(), 32);
}

TEST(ThreadPoolTest, SubmitFromInsideWorkerRuns) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  std::future<int> outer = pool.Submit([&] {
    // Fire-and-forget children; the destructor-drain guarantee (tested
    // below) means they run even if nobody waits on them.
    for (int i = 0; i < 16; ++i) {
      pool.Submit([&] { ++ran; });
    }
    return 1;
  });
  EXPECT_EQ(outer.get(), 1);
  // Wait for the children with a bounded spin (they are queued by now).
  for (int spin = 0; spin < 1000 && ran.load() < 16; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(ran.load(), 16);
}

TEST(ThreadPoolTest, DestructorDrainsWhileBusy) {
  // "Shutdown while busy": destroy the pool the moment tasks are queued and
  // verify every one of them still ran to completion.
  std::atomic<int> ran{0};
  constexpr int kTasks = 200;
  {
    ThreadPool pool(3);
    for (int i = 0; i < kTasks; ++i) {
      pool.Submit([&ran] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        ++ran;
      });
    }
    // No waiting: the destructor must drain the backlog.
  }
  EXPECT_EQ(ran.load(), kTasks);
}

TEST(ThreadPoolTest, ContendedCounterStress) {
  // Many tasks hammering one mutex-guarded counter plus one atomic — the
  // TSan leg verifies the pool introduces no data race around task hand-off
  // (the deque mutexes must publish the closures' captured state).
  ThreadPool pool(8);
  constexpr int kTasks = 2000;
  std::mutex mu;
  std::int64_t guarded = 0;
  std::atomic<std::int64_t> atomic_count{0};
  std::vector<std::future<void>> futures;
  futures.reserve(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    futures.push_back(pool.Submit([&] {
      ++atomic_count;
      std::lock_guard<std::mutex> lock(mu);
      ++guarded;
    }));
  }
  for (std::future<void>& f : futures) f.get();
  EXPECT_EQ(atomic_count.load(), kTasks);
  EXPECT_EQ(guarded, kTasks);
}

TEST(ThreadPoolTest, UnevenTasksAllComplete) {
  // Work stealing: one long chain submitted first, many short tasks after.
  // All must finish regardless of which deque they landed on.
  ThreadPool pool(4);
  std::atomic<std::int64_t> sum{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 64; ++i) {
    const int reps = (i % 8 == 0) ? 20000 : 10;
    futures.push_back(pool.Submit([&sum, reps] {
      std::int64_t local = 0;
      for (int k = 0; k < reps; ++k) local += k;
      sum += local;
    }));
  }
  std::int64_t expected = 0;
  for (int i = 0; i < 64; ++i) {
    const int reps = (i % 8 == 0) ? 20000 : 10;
    for (int k = 0; k < reps; ++k) expected += k;
  }
  for (std::future<void>& f : futures) f.get();
  EXPECT_EQ(sum.load(), expected);
}

TEST(ThreadPoolTest, QueuedTasksSettlesToZero) {
  ThreadPool pool(2);
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 32; ++i) {
    futures.push_back(pool.Submit([] {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }));
  }
  for (std::future<void>& f : futures) f.get();
  EXPECT_EQ(pool.QueuedTasks(), 0u);
}

TEST(ThreadPoolTest, DefaultThreadCountRespectsEnvOverride) {
  // setenv is not thread-safe against concurrent getenv, but gtest runs
  // tests sequentially in-process and the pool spawned here reads the
  // variable before this function returns.
  const char* saved = std::getenv("AER_THREADS");
  const std::string saved_value = saved != nullptr ? saved : "";
  setenv("AER_THREADS", "3", 1);
  EXPECT_EQ(ThreadPool::DefaultThreadCount(), 3);
  ThreadPool pool;  // num_threads <= 0 -> DefaultThreadCount()
  EXPECT_EQ(pool.num_threads(), 3);
  setenv("AER_THREADS", "0", 1);  // nonsense values clamp to >= 1
  EXPECT_GE(ThreadPool::DefaultThreadCount(), 1);
  if (saved != nullptr) {
    setenv("AER_THREADS", saved_value.c_str(), 1);
  } else {
    unsetenv("AER_THREADS");
  }
}

}  // namespace
}  // namespace aer
