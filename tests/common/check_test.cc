#include "common/check.h"

#include <cstdint>
#include <optional>
#include <string>

#include <gtest/gtest.h>

namespace aer {
namespace {

// An ostream-printable type is not required for the comparison macros.
enum class Opaque { kA, kB };

TEST(AerCheckTest, PassingChecksAreSilentAndEvaluateOnce) {
  int evaluations = 0;
  const auto count = [&] {
    ++evaluations;
    return 7;
  };
  AER_CHECK(count() == 7) << "never rendered";
  EXPECT_EQ(evaluations, 1);

  evaluations = 0;
  AER_CHECK_EQ(count(), 7) << "never rendered";
  EXPECT_EQ(evaluations, 1);
}

TEST(AerCheckTest, WorksUnbracedInsideIfElse) {
  // The switch/case wrapper must keep the macro a single dangling-else-proof
  // statement; this is a compile-shape test.
  if (true)
    AER_CHECK(true);
  else
    AER_CHECK(false);
  SUCCEED();
}

TEST(AerCheckDeathTest, PlainCheckPrintsConditionAndLocation) {
  EXPECT_DEATH(AER_CHECK(1 == 2), "AER_CHECK failed: 1 == 2");
  EXPECT_DEATH(AER_CHECK(false), "check_test\\.cc");
}

TEST(AerCheckDeathTest, StreamedMessageIsAppended) {
  const int machine = 17;
  EXPECT_DEATH(AER_CHECK(machine < 0) << "machine " << machine
                                      << " double-booked",
               "AER_CHECK failed: machine < 0 machine 17 double-booked");
}

TEST(AerCheckDeathTest, ComparisonPrintsBothOperandValues) {
  const int x = 3;
  const int y = 5;
  EXPECT_DEATH(AER_CHECK_EQ(x, y), "AER_CHECK_EQ failed: x == y \\(3 vs. 5\\)");
  EXPECT_DEATH(AER_CHECK_GT(x, y), "AER_CHECK_GT failed: x > y \\(3 vs. 5\\)");
  EXPECT_DEATH(AER_CHECK_LT(y, x), "AER_CHECK_LT failed: y < x \\(5 vs. 3\\)");
  EXPECT_DEATH(AER_CHECK_NE(x, 3), "\\(3 vs. 3\\)");
  EXPECT_DEATH(AER_CHECK_GE(x, y), "\\(3 vs. 5\\)");
  EXPECT_DEATH(AER_CHECK_LE(y, x), "\\(5 vs. 3\\)");
}

TEST(AerCheckDeathTest, ComparisonStreamsContextAfterValues) {
  const std::size_t index = 9;
  const std::size_t size = 4;
  EXPECT_DEATH(AER_CHECK_LT(index, size) << "while scanning tree",
               "\\(9 vs. 4\\) while scanning tree");
}

TEST(AerCheckDeathTest, PrintsStringsAndDoubles) {
  const std::string got = "REBOOT";
  const std::string want = "RMA";
  EXPECT_DEATH(AER_CHECK_EQ(got, want), "\\(REBOOT vs. RMA\\)");
  const double cost = 2.5;
  EXPECT_DEATH(AER_CHECK_GE(cost, 10.0), "\\(2.5 vs. 10\\)");
}

TEST(AerCheckDeathTest, UnprintableOperandsFallBackToIntegerOrPlaceholder) {
  // Enum classes have no operator<< but convert to integers.
  EXPECT_DEATH(AER_CHECK_EQ(Opaque::kA, Opaque::kB), "\\(0 vs. 1\\)");
  // Types with neither print a placeholder rather than failing to compile.
  struct NoPrint {
    bool operator==(const NoPrint&) const { return false; }
  };
  const NoPrint a;
  const NoPrint b;
  EXPECT_DEATH(AER_CHECK_EQ(a, b), "\\(<unprintable> vs. <unprintable>\\)");
}

TEST(AerCheckTest, DcheckMirrorsCheckWhenEnabled) {
#if AER_DCHECK_IS_ON()
  EXPECT_DEATH(AER_DCHECK_EQ(1, 2) << "dcheck ctx", "\\(1 vs. 2\\) dcheck ctx");
#else
  // Compiled out: the condition must not be evaluated at all.
  int evaluations = 0;
  const auto count = [&] {
    ++evaluations;
    return 1;
  };
  AER_DCHECK(count() == 2) << "never built";
  AER_DCHECK_EQ(count(), 2) << "never built";
  EXPECT_EQ(evaluations, 0);
#endif
}

TEST(AerCheckTest, DcheckCompilesInAllForms) {
  AER_DCHECK(true);
  AER_DCHECK_EQ(1, 1);
  AER_DCHECK_NE(1, 2);
  AER_DCHECK_LE(1, 1);
  AER_DCHECK_LT(1, 2);
  AER_DCHECK_GE(2, 2);
  AER_DCHECK_GT(2, 1);
  if (true) AER_DCHECK(true);
  SUCCEED();
}

TEST(AerCheckTest, OperandsEvaluatedExactlyOnceOnFailurePath) {
  // Death tests fork, so count side effects via the death regex instead:
  // an operand with a side effect printing its value proves single
  // evaluation (double evaluation would render "(2 vs. ...)").
  int calls = 0;
  const auto bump = [&] { return ++calls; };
  EXPECT_DEATH(AER_CHECK_EQ(bump(), 99), "\\(1 vs. 99\\)");
}

}  // namespace
}  // namespace aer
