#include "common/ascii_chart.h"

#include <gtest/gtest.h>

namespace aer {
namespace {

TEST(RenderBarChartTest, ContainsLabelsAndValues) {
  const std::string out =
      RenderBarChart({"alpha", "beta"}, {{"s", {10.0, 5.0}}}, 20);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("beta"), std::string::npos);
  EXPECT_NE(out.find("10"), std::string::npos);
  EXPECT_NE(out.find("5"), std::string::npos);
}

TEST(RenderBarChartTest, BarLengthProportional) {
  const std::string out =
      RenderBarChart({"a", "b"}, {{"s", {10.0, 5.0}}}, 10);
  // 10 -> 10 glyphs, 5 -> 5 glyphs.
  EXPECT_NE(out.find("##########"), std::string::npos);
  EXPECT_EQ(out.find("###########"), std::string::npos);
}

TEST(RenderBarChartTest, MultiSeriesHasLegend) {
  const std::string out = RenderBarChart(
      {"x"}, {{"first", {1.0}}, {"second", {2.0}}}, 10);
  EXPECT_NE(out.find("first"), std::string::npos);
  EXPECT_NE(out.find("second"), std::string::npos);
  EXPECT_NE(out.find('*'), std::string::npos);  // second series glyph
}

TEST(RenderBarChartTest, ZeroValuesRenderEmptyBars) {
  const std::string out = RenderBarChart({"z"}, {{"s", {0.0}}}, 10);
  EXPECT_EQ(out.find('#'), std::string::npos);
}

TEST(RenderLogBarChartTest, CompressesLargeRange) {
  const std::string out =
      RenderLogBarChart({"small", "huge"}, {{"s", {10.0, 1e6}}}, 60);
  // On a log scale 10 is 1/6 of 1e6, not 1/100000, so it is clearly visible.
  const auto small_line_start = out.find("small");
  const auto bar_start = out.find('#', small_line_start);
  ASSERT_NE(bar_start, std::string::npos);
  std::size_t count = 0;
  for (std::size_t i = bar_start; i < out.size() && out[i] == '#'; ++i) {
    ++count;
  }
  EXPECT_GE(count, 5u);
}

TEST(RenderTableTest, AlignsHeaderAndRows) {
  const std::string out = RenderTable(
      "type", {"t1", "t2"}, {{"cost", {1.5, 2.5}}, {"cov", {0.9, 1.0}}});
  EXPECT_NE(out.find("type"), std::string::npos);
  EXPECT_NE(out.find("cost"), std::string::npos);
  EXPECT_NE(out.find("cov"), std::string::npos);
  EXPECT_NE(out.find("1.5"), std::string::npos);
  EXPECT_NE(out.find("0.9"), std::string::npos);
}

}  // namespace
}  // namespace aer
