#include "common/stats.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace aer {
namespace {

TEST(RunningStatTest, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.sum(), 0.0);
}

TEST(RunningStatTest, SingleValue) {
  RunningStat s;
  s.Add(42.0);
  EXPECT_EQ(s.count(), 1);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
  EXPECT_DOUBLE_EQ(s.min(), 42.0);
  EXPECT_DOUBLE_EQ(s.max(), 42.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStatTest, MatchesDirectComputation) {
  const std::vector<double> xs = {3.0, 1.5, -2.0, 8.25, 0.0, 4.5};
  RunningStat s;
  double sum = 0.0;
  for (double x : xs) {
    s.Add(x);
    sum += x;
  }
  const double mean = sum / static_cast<double>(xs.size());
  double var = 0.0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= static_cast<double>(xs.size() - 1);

  EXPECT_NEAR(s.mean(), mean, 1e-12);
  EXPECT_NEAR(s.variance(), var, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(var), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), -2.0);
  EXPECT_DOUBLE_EQ(s.max(), 8.25);
  EXPECT_NEAR(s.sum(), sum, 1e-12);
}

TEST(RunningStatTest, MergeEqualsSequential) {
  Rng rng(1);
  RunningStat all;
  RunningStat left;
  RunningStat right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.NextGaussian() * 10 + 3;
    all.Add(x);
    (i < 400 ? left : right).Add(x);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(RunningStatTest, MergeWithEmptySides) {
  RunningStat a;
  RunningStat b;
  b.Add(5.0);
  b.Add(7.0);
  a.Merge(b);  // empty.Merge(full)
  EXPECT_EQ(a.count(), 2);
  EXPECT_DOUBLE_EQ(a.mean(), 6.0);
  RunningStat c;
  a.Merge(c);  // full.Merge(empty)
  EXPECT_EQ(a.count(), 2);
  EXPECT_DOUBLE_EQ(a.mean(), 6.0);
}

// Regression for the naive `sum_ += x` accumulator: adding many tiny values
// to one huge value lost every low-order bit, so sum() drifted from the true
// total by the full contribution of the tail. Kahan compensation keeps the
// running sum exact to one final rounding.
TEST(RunningStatTest, KahanSumSurvivesMagnitudeSpread) {
  RunningStat s;
  s.Add(1e16);
  for (int i = 0; i < 10000; ++i) s.Add(1.0);
  // Naive summation returns exactly 1e16 here (each +1.0 is below the ulp
  // of 1e16, i.e. entirely absorbed); the compensated sum keeps the 1e4.
  EXPECT_DOUBLE_EQ(s.sum(), 1e16 + 10000.0);
}

TEST(RunningStatTest, MergePreservesCompensatedSum) {
  RunningStat left;
  RunningStat right;
  left.Add(1e16);
  for (int i = 0; i < 5000; ++i) left.Add(1.0);
  for (int i = 0; i < 5000; ++i) right.Add(1.0);
  left.Merge(right);
  EXPECT_EQ(left.count(), 10001);
  EXPECT_DOUBLE_EQ(left.sum(), 1e16 + 10000.0);
}

TEST(LogHistogramTest, BucketBoundaries) {
  LogHistogram h(10.0, 10.0, 4);
  EXPECT_DOUBLE_EQ(h.bucket_lower(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bucket_lower(1), 10.0);
  EXPECT_DOUBLE_EQ(h.bucket_lower(2), 100.0);
  EXPECT_DOUBLE_EQ(h.bucket_lower(3), 1000.0);
}

TEST(LogHistogramTest, CountsLandInRightBuckets) {
  LogHistogram h(10.0, 10.0, 3);
  h.Add(5.0);      // [0, 10)
  h.Add(15.0);     // [10, 100)
  h.Add(99.0);     // [10, 100)
  h.Add(100.0);    // [100, 1000)
  h.Add(1e9);      // overflow
  EXPECT_EQ(h.total_count(), 5);
  EXPECT_EQ(h.bucket(0), 1);
  EXPECT_EQ(h.bucket(1), 2);
  EXPECT_EQ(h.bucket(2), 1);
  EXPECT_EQ(h.bucket(3), 1);
}

TEST(LogHistogramTest, QuantileOrderingAndBounds) {
  LogHistogram h(1.0, 2.0, 20);
  Rng rng(2);
  for (int i = 0; i < 10000; ++i) {
    h.Add(rng.NextExponential(100.0));
  }
  const double q50 = h.ApproxQuantile(0.5);
  const double q90 = h.ApproxQuantile(0.9);
  const double q99 = h.ApproxQuantile(0.99);
  EXPECT_LT(q50, q90);
  EXPECT_LT(q90, q99);
  // Exponential(100): median ~69, p90 ~230. Buckets are coarse (2x) so just
  // sanity-band the results.
  EXPECT_GT(q50, 30.0);
  EXPECT_LT(q50, 150.0);
  EXPECT_GT(q90, 120.0);
  EXPECT_LT(q90, 500.0);
}

TEST(LogHistogramTest, EmptyQuantileIsZero) {
  LogHistogram h(1.0, 2.0, 5);
  EXPECT_EQ(h.ApproxQuantile(0.5), 0.0);
  EXPECT_EQ(h.ApproxQuantile(0.0), 0.0);
  EXPECT_EQ(h.ApproxQuantile(1.0), 0.0);
}

// Pins the documented edge behavior (common/stats.h): q=0 -> lower edge of
// the first non-empty bucket, q=1 -> upper edge of the last non-empty one.
TEST(LogHistogramTest, QuantileEdgesPinned) {
  LogHistogram h(10.0, 10.0, 3);
  h.Add(15.0);   // [10, 100)
  h.Add(20.0);   // [10, 100)
  h.Add(500.0);  // [100, 1000)
  EXPECT_DOUBLE_EQ(h.ApproxQuantile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(h.ApproxQuantile(1.0), 1000.0);
}

// Samples past the last finite bound interpolate inside the synthetic
// overflow range [lower, lower*growth).
TEST(LogHistogramTest, QuantileAllOverflow) {
  LogHistogram h(10.0, 10.0, 2);  // [0,10), [10,100), overflow [100, inf)
  h.Add(1e6);
  h.Add(1e7);
  EXPECT_DOUBLE_EQ(h.ApproxQuantile(0.0), 100.0);
  EXPECT_DOUBLE_EQ(h.ApproxQuantile(0.5), 550.0);   // 100 + 0.5 * (1000-100)
  EXPECT_DOUBLE_EQ(h.ApproxQuantile(1.0), 1000.0);  // 100 * growth
}

TEST(LogHistogramTest, MergeAddsBucketwise) {
  LogHistogram a(10.0, 10.0, 3);
  LogHistogram b(10.0, 10.0, 3);
  a.Add(5.0);
  a.Add(50.0);
  b.Add(50.0);
  b.Add(1e9);  // overflow
  a.Merge(b);
  EXPECT_EQ(a.total_count(), 4);
  EXPECT_EQ(a.bucket(0), 1);
  EXPECT_EQ(a.bucket(1), 2);
  EXPECT_EQ(a.bucket(3), 1);
}

TEST(LogHistogramTest, ToStringListsNonEmptyBuckets) {
  LogHistogram h(10.0, 10.0, 3);
  h.Add(50.0);
  const std::string s = h.ToString();
  EXPECT_NE(s.find("[10, 100): 1"), std::string::npos);
}

}  // namespace
}  // namespace aer
