#include "mining/mpattern.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

namespace aer {
namespace {

std::vector<Transaction> Repeat(const Transaction& txn, int n) {
  return std::vector<Transaction>(static_cast<std::size_t>(n), txn);
}

void Append(std::vector<Transaction>& dst, const Transaction& txn, int n) {
  for (int i = 0; i < n; ++i) dst.push_back(txn);
}

TEST(MPatternTest, PerfectCoOccurrenceIsMaximalAtAnyMinp) {
  const auto txns = Repeat({1, 2, 3}, 10);
  for (double minp : {0.1, 0.5, 1.0}) {
    MPatternConfig config;
    config.minp = minp;
    const auto maximal = MPatternMiner(config).MineMaximal(txns);
    ASSERT_EQ(maximal.size(), 1u) << "minp=" << minp;
    EXPECT_EQ(maximal[0], (ItemSet{1, 2, 3}));
  }
}

TEST(MPatternTest, SupportCountsContainment) {
  std::vector<Transaction> txns;
  Append(txns, {1, 2}, 3);
  Append(txns, {1}, 2);
  Append(txns, {2, 3}, 1);
  EXPECT_EQ(MPatternMiner::Support({1}, txns), 5);
  EXPECT_EQ(MPatternMiner::Support({1, 2}, txns), 3);
  EXPECT_EQ(MPatternMiner::Support({2}, txns), 4);
  EXPECT_EQ(MPatternMiner::Support({1, 2, 3}, txns), 0);
}

TEST(MPatternTest, AsymmetricDependenceRejectedAtHighMinp) {
  // Item 2 always co-occurs with 1, but 1 appears alone often:
  // P({1,2}|2) = 1, P({1,2}|1) = 0.25.
  std::vector<Transaction> txns;
  Append(txns, {1, 2}, 5);
  Append(txns, {1}, 15);
  MPatternConfig config;
  config.minp = 0.5;
  const auto all = MPatternMiner(config).MineAll(txns);
  EXPECT_EQ(std::count(all.begin(), all.end(), ItemSet{1, 2}), 0);

  // At minp <= 0.25 the pair qualifies.
  config.minp = 0.25;
  const auto all_low = MPatternMiner(config).MineAll(txns);
  EXPECT_EQ(std::count(all_low.begin(), all_low.end(), ItemSet{1, 2}), 1);
}

TEST(MPatternTest, MinSupportFiltersRareItems) {
  std::vector<Transaction> txns;
  Append(txns, {1, 2}, 10);
  Append(txns, {9}, 1);  // a single occurrence
  MPatternConfig config;
  config.min_support = 2;
  const auto all = MPatternMiner(config).MineAll(txns);
  for (const ItemSet& p : all) {
    EXPECT_EQ(std::count(p.begin(), p.end(), 9), 0);
  }
}

TEST(MPatternTest, FindsInfrequentButCorrelatedPatterns) {
  // The signature property of m-patterns (vs frequent itemsets): a rare but
  // perfectly correlated set is found even below any reasonable support
  // threshold.
  std::vector<Transaction> txns;
  Append(txns, {1, 2}, 500);   // dominant pattern
  Append(txns, {8, 9}, 3);     // rare but perfectly mutually dependent
  MPatternConfig config;
  config.minp = 0.9;
  const auto maximal = MPatternMiner(config).MineMaximal(txns);
  EXPECT_NE(std::find(maximal.begin(), maximal.end(), ItemSet{8, 9}),
            maximal.end());
}

TEST(MPatternTest, DownwardClosure) {
  // Every subset of a mined pattern must itself be mined.
  std::vector<Transaction> txns;
  Append(txns, {1, 2, 3, 4}, 8);
  Append(txns, {1, 2}, 2);
  Append(txns, {5, 6}, 4);
  Append(txns, {5}, 1);
  MPatternConfig config;
  config.minp = 0.3;
  const auto all = MPatternMiner(config).MineAll(txns);
  const std::set<ItemSet> mined(all.begin(), all.end());
  for (const ItemSet& p : all) {
    if (p.size() < 2) continue;
    ItemSet subset(p.begin() + 1, p.end());
    for (std::size_t drop = 0; drop < p.size(); ++drop) {
      if (drop > 0) subset[drop - 1] = p[drop - 1];
      EXPECT_TRUE(mined.contains(subset));
    }
  }
}

TEST(MPatternTest, MaximalPatternsHaveNoMinedSuperset) {
  std::vector<Transaction> txns;
  Append(txns, {1, 2, 3}, 6);
  Append(txns, {4, 5}, 4);
  MPatternConfig config;
  const auto all = MPatternMiner(config).MineAll(txns);
  const auto maximal = MPatternMiner(config).MineMaximal(txns);
  for (const ItemSet& m : maximal) {
    for (const ItemSet& p : all) {
      if (p.size() <= m.size()) continue;
      EXPECT_FALSE(std::includes(p.begin(), p.end(), m.begin(), m.end()))
          << "maximal pattern has mined superset";
    }
  }
}

TEST(MPatternTest, HigherMinpMinesSubsetOfPatterns) {
  std::vector<Transaction> txns;
  Append(txns, {1, 2, 3}, 10);
  Append(txns, {1, 2}, 5);
  Append(txns, {1}, 3);
  Append(txns, {4, 5}, 7);
  Append(txns, {4}, 2);

  MPatternConfig low;
  low.minp = 0.2;
  MPatternConfig high;
  high.minp = 0.7;
  const auto all_low = MPatternMiner(low).MineAll(txns);
  const auto all_high = MPatternMiner(high).MineAll(txns);
  const std::set<ItemSet> low_set(all_low.begin(), all_low.end());
  for (const ItemSet& p : all_high) {
    EXPECT_TRUE(low_set.contains(p));
  }
  EXPECT_LE(all_high.size(), all_low.size());
}

TEST(MPatternTest, EmptyTransactionsYieldNothing) {
  MPatternConfig config;
  EXPECT_TRUE(MPatternMiner(config).MineAll({}).empty());
  EXPECT_TRUE(MPatternMiner(config).MineMaximal({}).empty());
}

TEST(MPatternTest, OverlappingClustersBothFound) {
  // Two clusters sharing item 3 — both should be mined as maximal when the
  // shared item is balanced between them at low minp.
  std::vector<Transaction> txns;
  Append(txns, {1, 2, 3}, 10);
  Append(txns, {3, 4, 5}, 10);
  MPatternConfig config;
  config.minp = 0.4;
  const auto maximal = MPatternMiner(config).MineMaximal(txns);
  EXPECT_NE(std::find(maximal.begin(), maximal.end(), ItemSet{1, 2, 3}),
            maximal.end());
  EXPECT_NE(std::find(maximal.begin(), maximal.end(), ItemSet{3, 4, 5}),
            maximal.end());
}

TEST(MPatternTest, MaxPatternSizeCapsDepth) {
  MPatternConfig config;
  config.max_pattern_size = 2;
  const auto txns = Repeat({1, 2, 3, 4}, 5);
  const auto all = MPatternMiner(config).MineAll(txns);
  for (const ItemSet& p : all) {
    EXPECT_LE(p.size(), 2u);
  }
}

// Parameterized sweep: with x% of transactions perfectly clustered and the
// rest mixed, the number of maximal patterns is stable across minp for the
// clustered part.
class MPatternSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(MPatternSweepTest, PerfectClustersSurviveAllMinp) {
  std::vector<Transaction> txns;
  Append(txns, {0, 1}, 20);
  Append(txns, {2, 3, 4}, 15);
  Append(txns, {5}, 9);
  MPatternConfig config;
  config.minp = GetParam();
  const auto maximal = MPatternMiner(config).MineMaximal(txns);
  EXPECT_NE(std::find(maximal.begin(), maximal.end(), ItemSet{0, 1}),
            maximal.end());
  EXPECT_NE(std::find(maximal.begin(), maximal.end(), ItemSet{2, 3, 4}),
            maximal.end());
  EXPECT_NE(std::find(maximal.begin(), maximal.end(), ItemSet{5}),
            maximal.end());
}

INSTANTIATE_TEST_SUITE_P(MinpSweep, MPatternSweepTest,
                         ::testing::Values(0.1, 0.2, 0.3, 0.5, 0.7, 0.9, 1.0));

}  // namespace
}  // namespace aer
