#include "mining/error_type.h"

#include <set>

#include <gtest/gtest.h>

#include "cluster/trace.h"

namespace aer {
namespace {

RecoveryProcess MakeProcess(std::vector<SymptomId> symptoms,
                            MachineId machine = 0, SimTime start = 0) {
  std::vector<SymptomEvent> events;
  SimTime t = start;
  for (SymptomId s : symptoms) events.push_back({t++, s});
  std::vector<ActionAttempt> attempts = {
      {RepairAction::kReboot, t, 100, true}};
  return RecoveryProcess(machine, std::move(events), std::move(attempts),
                         t + 100);
}

TEST(FilterNoisyProcessesTest, SplitsCleanAndNoisy) {
  std::vector<RecoveryProcess> processes;
  for (int i = 0; i < 10; ++i) processes.push_back(MakeProcess({0, 1}));
  for (int i = 0; i < 10; ++i) processes.push_back(MakeProcess({2}));
  processes.push_back(MakeProcess({0, 2}));  // spans clusters

  MPatternConfig config;
  config.minp = 0.5;
  const SymptomClustering clustering(processes, config);
  const NoiseFilterResult result =
      FilterNoisyProcesses(processes, clustering);
  EXPECT_EQ(result.clean.size(), 20u);
  EXPECT_EQ(result.noisy.size(), 1u);
  EXPECT_EQ(result.noisy[0], 20u);
  EXPECT_NEAR(result.clean_fraction, 20.0 / 21.0, 1e-12);
}

TEST(ErrorTypeCatalogTest, RanksByFrequency) {
  std::vector<RecoveryProcess> processes;
  for (int i = 0; i < 3; ++i) processes.push_back(MakeProcess({5}));
  for (int i = 0; i < 7; ++i) processes.push_back(MakeProcess({2}));
  for (int i = 0; i < 5; ++i) processes.push_back(MakeProcess({9}));

  const ErrorTypeCatalog catalog(processes, 40);
  ASSERT_EQ(catalog.num_types(), 3u);
  EXPECT_EQ(catalog.symptom_of(0), 2);
  EXPECT_EQ(catalog.symptom_of(1), 9);
  EXPECT_EQ(catalog.symptom_of(2), 5);
  EXPECT_EQ(catalog.count_of(0), 7);
  EXPECT_DOUBLE_EQ(catalog.coverage(), 1.0);
}

TEST(ErrorTypeCatalogTest, MaxTypesTruncatesAndReportsCoverage) {
  std::vector<RecoveryProcess> processes;
  for (int i = 0; i < 8; ++i) processes.push_back(MakeProcess({1}));
  for (int i = 0; i < 2; ++i) processes.push_back(MakeProcess({2}));
  const ErrorTypeCatalog catalog(processes, 1);
  ASSERT_EQ(catalog.num_types(), 1u);
  EXPECT_EQ(catalog.symptom_of(0), 1);
  EXPECT_NEAR(catalog.coverage(), 0.8, 1e-12);
  EXPECT_EQ(catalog.ClassifySymptom(2), kInvalidErrorType);
}

TEST(ErrorTypeCatalogTest, ClassifyUsesInitialSymptom) {
  std::vector<RecoveryProcess> processes;
  processes.push_back(MakeProcess({4, 7}));
  const ErrorTypeCatalog catalog(processes, 10);
  EXPECT_EQ(catalog.Classify(MakeProcess({4, 9})), 0);
  EXPECT_EQ(catalog.Classify(MakeProcess({7, 4})), kInvalidErrorType)
      << "secondary symptom as initial is a different type";
}

TEST(ErrorTypeCatalogTest, GeneratedTraceMatchesPaperShape) {
  // Section 4.1: ~100 error types post-filter, the top 40 covering ~98.7%.
  const TraceDataset dataset = GenerateTrace(TraceConfigForScale("small"));
  const auto segmented = SegmentIntoProcesses(dataset.result.log);
  MPatternConfig mining;
  const SymptomClustering clustering(segmented.processes, mining);
  const NoiseFilterResult filtered =
      FilterNoisyProcesses(segmented.processes, clustering);
  EXPECT_GT(filtered.clean_fraction, 0.93);

  std::vector<RecoveryProcess> clean;
  for (std::size_t i : filtered.clean) {
    clean.push_back(segmented.processes[i]);
  }
  const ErrorTypeCatalog catalog(clean, 40);
  EXPECT_EQ(catalog.num_types(), 40u);
  EXPECT_GT(catalog.coverage(), 0.97);

  // Counts are non-increasing in rank.
  for (std::size_t t = 1; t < catalog.num_types(); ++t) {
    EXPECT_GE(catalog.count_of(static_cast<ErrorTypeId>(t - 1)),
              catalog.count_of(static_cast<ErrorTypeId>(t)));
  }
}

TEST(ErrorTypeCatalogTest, NoisyProcessesAreMostlyGroundTruthNoisy) {
  // The mining-based filter should largely agree with the generator's own
  // noise flags (it can also flag rare types whose patterns lack support).
  TraceConfig config = TraceConfigForScale("small");
  const TraceDataset dataset = GenerateTrace(config);
  const auto segmented = SegmentIntoProcesses(dataset.result.log);
  MPatternConfig mining;
  const SymptomClustering clustering(segmented.processes, mining);
  const NoiseFilterResult filtered =
      FilterNoisyProcesses(segmented.processes, clustering);

  std::int64_t flagged_and_noisy = 0;
  std::int64_t flagged = 0;
  for (std::size_t idx : filtered.noisy) {
    ++flagged;
    if (dataset.result.ground_truth[idx].noisy) ++flagged_and_noisy;
  }
  ASSERT_GT(flagged, 0);
  EXPECT_GT(static_cast<double>(flagged_and_noisy) /
                static_cast<double>(flagged),
            0.5);

  // And the overwhelming majority of truly noisy processes are caught.
  std::int64_t truly_noisy = 0;
  std::int64_t caught = 0;
  std::set<std::size_t> noisy_set(filtered.noisy.begin(),
                                  filtered.noisy.end());
  for (std::size_t i = 0; i < segmented.processes.size(); ++i) {
    if (!dataset.result.ground_truth[i].noisy) continue;
    ++truly_noisy;
    if (noisy_set.contains(i)) ++caught;
  }
  ASSERT_GT(truly_noisy, 0);
  EXPECT_GT(static_cast<double>(caught) / static_cast<double>(truly_noisy),
            0.9);
}

}  // namespace
}  // namespace aer
