// Property test: the Apriori-style miner must agree exactly with a naive
// reference that enumerates every candidate itemset and checks the
// m-pattern definition (sup(X)/sup(i) >= minp for all i in X, support >=
// min_support) directly. Small vocabularies keep the reference tractable.
#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "mining/mpattern.h"

namespace aer {
namespace {

// All itemsets over items [0, vocab) up to `max_size`, kept if they satisfy
// the m-pattern definition over `txns`.
std::set<ItemSet> ReferenceMineAll(const std::vector<Transaction>& txns,
                                   int vocab, std::size_t max_size,
                                   double minp, std::int64_t min_support) {
  std::vector<std::int64_t> item_support(static_cast<std::size_t>(vocab), 0);
  for (const Transaction& t : txns) {
    for (SymptomId i : t) ++item_support[static_cast<std::size_t>(i)];
  }
  std::set<ItemSet> result;
  // Enumerate subsets by bitmask (vocab <= 12).
  for (unsigned mask = 1; mask < (1u << vocab); ++mask) {
    ItemSet items;
    for (int i = 0; i < vocab; ++i) {
      if (mask & (1u << i)) items.push_back(i);
    }
    if (items.size() > max_size) continue;
    const std::int64_t support = MPatternMiner::Support(items, txns);
    if (support < min_support) continue;
    bool ok = true;
    for (SymptomId i : items) {
      if (static_cast<double>(support) /
              static_cast<double>(item_support[static_cast<std::size_t>(i)]) <
          minp - 1e-12) {
        ok = false;
        break;
      }
    }
    if (ok) result.insert(items);
  }
  return result;
}

class MPatternVsReferenceTest : public ::testing::TestWithParam<double> {};

TEST_P(MPatternVsReferenceTest, MineAllMatchesDefinition) {
  const double minp = GetParam();
  Rng rng(static_cast<std::uint64_t>(minp * 1000) + 5);
  constexpr int kVocab = 8;
  for (int trial = 0; trial < 30; ++trial) {
    // Random transactions with clustered structure plus noise.
    std::vector<Transaction> txns;
    const int n = 20 + static_cast<int>(rng.NextBounded(60));
    for (int t = 0; t < n; ++t) {
      std::set<SymptomId> items;
      // A random "cluster" of 2-3 adjacent items, sometimes.
      if (rng.NextBool(0.7)) {
        const int base = static_cast<int>(rng.NextBounded(kVocab - 2));
        items.insert(base);
        items.insert(base + 1);
        if (rng.NextBool(0.5)) items.insert(base + 2);
      }
      // Random extra items.
      for (int i = 0; i < kVocab; ++i) {
        if (rng.NextBool(0.1)) items.insert(i);
      }
      if (items.empty()) items.insert(static_cast<SymptomId>(
          rng.NextBounded(kVocab)));
      txns.emplace_back(items.begin(), items.end());
    }

    MPatternConfig config;
    config.minp = minp;
    config.min_support = 2;
    config.max_pattern_size = 5;
    const auto mined = MPatternMiner(config).MineAll(txns);
    const std::set<ItemSet> mined_set(mined.begin(), mined.end());
    ASSERT_EQ(mined_set.size(), mined.size()) << "no duplicates";

    const std::set<ItemSet> expected = ReferenceMineAll(
        txns, kVocab, config.max_pattern_size, minp, config.min_support);
    ASSERT_EQ(mined_set, expected)
        << "trial " << trial << " minp " << minp << " n " << n;
  }
}

TEST_P(MPatternVsReferenceTest, MaximalAreExactlyTheMaximalOnes) {
  const double minp = GetParam();
  Rng rng(static_cast<std::uint64_t>(minp * 977) + 11);
  constexpr int kVocab = 7;
  for (int trial = 0; trial < 15; ++trial) {
    std::vector<Transaction> txns;
    const int n = 15 + static_cast<int>(rng.NextBounded(40));
    for (int t = 0; t < n; ++t) {
      std::set<SymptomId> items;
      for (int i = 0; i < kVocab; ++i) {
        if (rng.NextBool(0.3)) items.insert(i);
      }
      if (items.empty()) items.insert(0);
      txns.emplace_back(items.begin(), items.end());
    }
    MPatternConfig config;
    config.minp = minp;
    config.min_support = 2;
    config.max_pattern_size = 5;
    const auto all = MPatternMiner(config).MineAll(txns);
    const auto maximal = MPatternMiner(config).MineMaximal(txns);
    const std::set<ItemSet> all_set(all.begin(), all.end());

    std::set<ItemSet> expected_maximal;
    for (const ItemSet& p : all) {
      bool has_superset = false;
      for (const ItemSet& q : all) {
        if (q.size() > p.size() &&
            std::includes(q.begin(), q.end(), p.begin(), p.end())) {
          has_superset = true;
          break;
        }
      }
      if (!has_superset) expected_maximal.insert(p);
    }
    ASSERT_EQ(std::set<ItemSet>(maximal.begin(), maximal.end()),
              expected_maximal)
        << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(MinpGrid, MPatternVsReferenceTest,
                         ::testing::Values(0.1, 0.25, 0.4, 0.6, 0.8, 1.0));

}  // namespace
}  // namespace aer
