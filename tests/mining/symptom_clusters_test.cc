#include "mining/symptom_clusters.h"

#include <gtest/gtest.h>

#include "cluster/trace.h"

namespace aer {
namespace {

RecoveryProcess MakeProcess(std::vector<SymptomId> symptoms,
                            MachineId machine = 0, SimTime start = 0) {
  std::vector<SymptomEvent> events;
  SimTime t = start;
  for (SymptomId s : symptoms) events.push_back({t++, s});
  std::vector<ActionAttempt> attempts = {
      {RepairAction::kReboot, t, 100, true}};
  return RecoveryProcess(machine, std::move(events), std::move(attempts),
                         t + 100);
}

std::vector<RecoveryProcess> ClusteredProcesses() {
  std::vector<RecoveryProcess> out;
  for (int i = 0; i < 10; ++i) out.push_back(MakeProcess({0, 1}));
  for (int i = 0; i < 8; ++i) out.push_back(MakeProcess({2, 3, 4}));
  // Noisy: mixes the two clusters.
  out.push_back(MakeProcess({0, 3}));
  return out;
}

TEST(BuildSymptomTransactionsTest, OnePerProcess) {
  const auto processes = ClusteredProcesses();
  const auto txns = BuildSymptomTransactions(processes);
  ASSERT_EQ(txns.size(), processes.size());
  EXPECT_EQ(txns[0], (Transaction{0, 1}));
  EXPECT_EQ(txns.back(), (Transaction{0, 3}));
}

TEST(SymptomClusteringTest, FindsTheTwoClusters) {
  const auto processes = ClusteredProcesses();
  MPatternConfig config;
  config.minp = 0.5;
  const SymptomClustering clustering(processes, config);
  // {0,1} and {2,3,4} are the dominant maximal patterns.
  bool found01 = false;
  bool found234 = false;
  for (const ItemSet& c : clustering.clusters()) {
    found01 = found01 || c == ItemSet{0, 1};
    found234 = found234 || c == ItemSet{2, 3, 4};
  }
  EXPECT_TRUE(found01);
  EXPECT_TRUE(found234);
}

TEST(SymptomClusteringTest, CohesionClassification) {
  const auto processes = ClusteredProcesses();
  MPatternConfig config;
  config.minp = 0.5;
  const SymptomClustering clustering(processes, config);
  EXPECT_TRUE(clustering.IsCohesive(processes[0]));      // {0,1}
  EXPECT_TRUE(clustering.IsCohesive(processes[12]));     // {2,3,4}
  EXPECT_FALSE(clustering.IsCohesive(processes.back())); // {0,3}
}

TEST(SymptomClusteringTest, SubsetOfClusterIsCohesive) {
  std::vector<RecoveryProcess> processes;
  for (int i = 0; i < 10; ++i) processes.push_back(MakeProcess({0, 1, 2}));
  processes.push_back(MakeProcess({0, 2}));  // subset of the cluster
  MPatternConfig config;
  config.minp = 0.5;
  const SymptomClustering clustering(processes, config);
  EXPECT_TRUE(clustering.IsCohesive(processes.back()));
}

TEST(SymptomClusteringTest, CohesiveFraction) {
  const auto processes = ClusteredProcesses();
  MPatternConfig config;
  config.minp = 0.5;
  const SymptomClustering clustering(processes, config);
  EXPECT_NEAR(clustering.CohesiveFraction(processes), 18.0 / 19.0, 1e-12);
}

TEST(SymptomClusteringTest, ClusterOfPrefersLargest) {
  std::vector<RecoveryProcess> processes;
  for (int i = 0; i < 10; ++i) processes.push_back(MakeProcess({0, 1, 2}));
  MPatternConfig config;
  config.minp = 0.1;
  const SymptomClustering clustering(processes, config);
  const int c0 = clustering.ClusterOf(0);
  ASSERT_GE(c0, 0);
  EXPECT_EQ(clustering.clusters()[static_cast<std::size_t>(c0)].size(), 3u);
  EXPECT_EQ(clustering.ClusterOf(99), -1);
}

TEST(CohesiveFractionSweepTest, NonIncreasingInMinp) {
  // Build processes with probabilistic co-occurrence so cohesion degrades
  // with minp (the Figure 3 shape).
  std::vector<RecoveryProcess> processes;
  for (int i = 0; i < 30; ++i) processes.push_back(MakeProcess({0, 1}));
  for (int i = 0; i < 10; ++i) processes.push_back(MakeProcess({0}));
  for (int i = 0; i < 20; ++i) processes.push_back(MakeProcess({2, 3}));
  for (int i = 0; i < 4; ++i) processes.push_back(MakeProcess({2}));

  const std::vector<double> minps = {0.1, 0.3, 0.5, 0.7, 0.9, 1.0};
  const std::vector<double> fractions =
      CohesiveFractionSweep(processes, minps);
  ASSERT_EQ(fractions.size(), minps.size());
  for (std::size_t i = 1; i < fractions.size(); ++i) {
    EXPECT_LE(fractions[i], fractions[i - 1] + 1e-12)
        << "cohesion must not increase with minp";
  }
  EXPECT_GT(fractions.front(), 0.9);
}

TEST(CohesiveFractionSweepTest, GeneratedTraceMatchesPaperBand) {
  // Section 3.1 / Figure 3: at minp = 0.1 roughly 97% of the processes form
  // cohesive symptom sets.
  TraceConfig config = TraceConfigForScale("small");
  const TraceDataset dataset = GenerateTrace(config);
  const auto segmented = SegmentIntoProcesses(dataset.result.log);
  MPatternConfig mining;
  mining.minp = 0.1;
  const SymptomClustering clustering(segmented.processes, mining);
  const double fraction = clustering.CohesiveFraction(segmented.processes);
  EXPECT_GT(fraction, 0.93);
  EXPECT_LT(fraction, 0.995);
}

}  // namespace
}  // namespace aer
