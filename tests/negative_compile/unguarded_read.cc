// Negative-compile case: reading an AER_GUARDED_BY field without holding
// its mutex must be rejected by -Werror=thread-safety. The control variant
// (no AER_NEGATIVE) takes the lock and must compile on every compiler.
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace {

class Account {
 public:
  void Deposit(int amount) {
    aer::MutexLock lock(mu_);
    balance_ += amount;
  }

  int balance() const {
#ifndef AER_NEGATIVE
    aer::MutexLock lock(mu_);
#endif
    return balance_;  // unguarded read when AER_NEGATIVE is defined
  }

 private:
  mutable aer::Mutex mu_;
  int balance_ AER_GUARDED_BY(mu_) = 0;
};

int Use() {
  Account account;
  account.Deposit(1);
  return account.balance();
}

}  // namespace

int NegativeCompileProbe() { return Use(); }
