// Negative-compile case: writing an AER_GUARDED_BY field without holding
// its mutex must be rejected by -Werror=thread-safety.
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace {

class Counter {
 public:
  void Bump() {
#ifndef AER_NEGATIVE
    aer::MutexLock lock(mu_);
#endif
    ++count_;  // unguarded write when AER_NEGATIVE is defined
  }

  int count() const {
    aer::MutexLock lock(mu_);
    return count_;
  }

 private:
  mutable aer::Mutex mu_;
  int count_ AER_GUARDED_BY(mu_) = 0;
};

int Use() {
  Counter counter;
  counter.Bump();
  return counter.count();
}

}  // namespace

int NegativeCompileProbe() { return Use(); }
