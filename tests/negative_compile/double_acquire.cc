// Negative-compile case: acquiring a mutex already held by the same scope
// (self-deadlock with std::mutex) must be rejected.
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace {

class Gadget {
 public:
  void Poke() {
    aer::MutexLock lock(mu_);
#ifdef AER_NEGATIVE
    aer::MutexLock again(mu_);  // double acquire: deadlocks at runtime
#endif
    ++pokes_;
  }

 private:
  aer::Mutex mu_;
  int pokes_ AER_GUARDED_BY(mu_) = 0;
};

void Use() {
  Gadget gadget;
  gadget.Poke();
}

}  // namespace

void NegativeCompileProbe() { Use(); }
