// Negative-compile case: the ShardMerger's *Locked() inspection API carries
// AER_REQUIRES(mu_), so polling shard slots without holding the merger's
// mutex must be rejected by -Werror=thread-safety. The control variant
// takes the lock through mu()'s AER_RETURN_CAPABILITY and must compile
// everywhere.
#include <cstddef>

#include "common/mutex.h"
#include "fleet/shard_merge.h"

namespace {

std::size_t FilledShards(const aer::fleet::ShardMerger& merger) {
#ifndef AER_NEGATIVE
  aer::MutexLock lock(merger.mu());
#endif
  // Unguarded locked-API reads when AER_NEGATIVE is defined.
  std::size_t filled = 0;
  for (int shard = 0; shard < merger.num_shards_locked(); ++shard) {
    if (merger.shard_filled_locked(shard)) ++filled;
  }
  return filled;
}

std::size_t Use() {
  aer::fleet::ShardMerger merger(4);
  return FilledShards(merger);
}

}  // namespace

std::size_t NegativeCompileProbe() { return Use(); }
