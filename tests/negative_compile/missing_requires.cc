// Negative-compile case: a *Locked() helper that touches guarded state
// without declaring AER_REQUIRES is analyzed as an unlocked context, so the
// field access inside it must be rejected. The control variant declares the
// contract and the (lock-holding) caller satisfies it.
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace {

class Queue {
 public:
  void Push(int value) {
    aer::MutexLock lock(mu_);
    PushLocked(value);
  }

  int size() const {
    aer::MutexLock lock(mu_);
    return size_;
  }

 private:
#ifdef AER_NEGATIVE
  void PushLocked(int value) { size_ += value; }  // missing AER_REQUIRES
#else
  void PushLocked(int value) AER_REQUIRES(mu_) { size_ += value; }
#endif

  mutable aer::Mutex mu_;
  int size_ AER_GUARDED_BY(mu_) = 0;
};

int Use() {
  Queue queue;
  queue.Push(3);
  return queue.size();
}

}  // namespace

int NegativeCompileProbe() { return Use(); }
