// Negative-compile case: calling an AER_EXCLUDES(mu) function while holding
// mu (the reentry pattern that self-deadlocks) must be rejected.
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace {

class Widget {
 public:
  void Refresh() AER_EXCLUDES(mu_) {
    aer::MutexLock lock(mu_);
    ++refreshes_;
  }

  void Tick() {
#ifndef AER_NEGATIVE
    Refresh();  // legal: lock not yet held
#endif
    aer::MutexLock lock(mu_);
#ifdef AER_NEGATIVE
    Refresh();  // reentry while holding mu_: deadlocks at runtime
#endif
    ++ticks_;
  }

 private:
  aer::Mutex mu_;
  int refreshes_ AER_GUARDED_BY(mu_) = 0;
  int ticks_ AER_GUARDED_BY(mu_) = 0;
};

void Use() {
  Widget widget;
  widget.Tick();
}

}  // namespace

void NegativeCompileProbe() { Use(); }
