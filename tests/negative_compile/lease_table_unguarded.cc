// Negative-compile case: the LeaseTable's *Locked() accessors carry
// AER_REQUIRES(mu_), so batching reads without actually holding the table's
// mutex must be rejected by -Werror=thread-safety. The control variant takes
// the lock through mu()'s AER_RETURN_CAPABILITY and must compile everywhere.
#include "common/mutex.h"
#include "ctrl/lease.h"

namespace {

bool LeaderMayIssue(const aer::ctrl::LeaseTable& table, aer::SimTime now) {
#ifndef AER_NEGATIVE
  aer::MutexLock lock(table.mu());
#endif
  // Unguarded locked-API reads when AER_NEGATIVE is defined.
  return table.HoldsLeaseLocked(now) && table.LeaseExpiryLocked() > now &&
         table.holding_epoch_locked() > 0;
}

bool Use() {
  aer::ctrl::LeaseTable table(3, aer::ctrl::LeaseConfig{},
                              aer::ctrl::VoterRecord{});
  return LeaderMayIssue(table, 10);
}

}  // namespace

bool NegativeCompileProbe() { return Use(); }
