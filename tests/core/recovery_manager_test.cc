#include "core/recovery_manager.h"

#include <gtest/gtest.h>

#include "cluster/user_policy.h"
#include "log/recovery_process.h"
#include "rl/policy.h"

namespace aer {
namespace {

constexpr auto Y = RepairAction::kTryNop;
constexpr auto B = RepairAction::kReboot;
constexpr auto A = RepairAction::kRma;

TEST(RecoveryManagerTest, FullRecoveryWalkthrough) {
  UserDefinedPolicy policy;
  RecoveryManager manager(policy);

  EXPECT_FALSE(manager.HasOpenProcess(5));
  manager.OnSymptom(100, 5, "Watchdog");
  EXPECT_TRUE(manager.HasOpenProcess(5));
  manager.OnSymptom(110, 5, "EventLog");

  const auto a1 = manager.OnRecoveryNeeded(130, 5);
  ASSERT_TRUE(a1.has_value());
  EXPECT_EQ(*a1, Y);
  manager.OnActionResult(200, 5, /*healthy=*/false);

  const auto a2 = manager.OnRecoveryNeeded(210, 5);
  EXPECT_EQ(*a2, B);
  manager.OnActionResult(400, 5, /*healthy=*/true);

  EXPECT_FALSE(manager.HasOpenProcess(5));
  EXPECT_EQ(manager.stats().processes_completed, 1);
  EXPECT_EQ(manager.stats().actions_taken, 2);
  EXPECT_EQ(manager.stats().total_downtime, 300);

  // The manager's log segments back into the same process.
  const SegmentationResult segmented = SegmentIntoProcesses(manager.log());
  ASSERT_EQ(segmented.processes.size(), 1u);
  EXPECT_EQ(segmented.processes[0].downtime(), 300);
  EXPECT_EQ(segmented.processes[0].attempts().size(), 2u);
}

TEST(RecoveryManagerTest, SymptomDuringRecoveryDoesNotReopen) {
  UserDefinedPolicy policy;
  RecoveryManager manager(policy);
  manager.OnSymptom(100, 1, "s1");
  manager.OnRecoveryNeeded(120, 1);
  manager.OnSymptom(130, 1, "s2");  // mid-process symptom
  EXPECT_EQ(manager.open_process_count(), 1u);
  manager.OnActionResult(150, 1, true);
  EXPECT_EQ(manager.open_process_count(), 0u);
}

TEST(RecoveryManagerTest, NCapForcesManualRepair) {
  UserDefinedPolicy policy;
  RecoveryManagerConfig config;
  config.max_actions_per_process = 3;
  RecoveryManager manager(policy, config);
  manager.OnSymptom(0, 1, "dead");
  EXPECT_EQ(*manager.OnRecoveryNeeded(10, 1), Y);
  manager.OnActionResult(20, 1, false);
  EXPECT_EQ(*manager.OnRecoveryNeeded(30, 1), B);
  manager.OnActionResult(40, 1, false);
  // Third (= cap) action: manual repair regardless of the policy.
  EXPECT_EQ(*manager.OnRecoveryNeeded(50, 1), A);
  EXPECT_EQ(manager.stats().manual_repairs_forced, 1);
  manager.OnActionResult(100, 1, true);
  EXPECT_EQ(manager.stats().processes_completed, 1);
}

TEST(RecoveryManagerTest, NoOpenProcessReturnsNoAction) {
  UserDefinedPolicy policy;
  RecoveryManager manager(policy);
  EXPECT_FALSE(manager.OnRecoveryNeeded(10, 1).has_value());
}

TEST(RecoveryManagerTest, MachineHistoryFeedsRecurringShortcut) {
  UserDefinedPolicy policy;
  RecoveryManager manager(policy);
  // First process: full escalation from TRYNOP.
  manager.OnSymptom(0, 1, "s");
  EXPECT_EQ(*manager.OnRecoveryNeeded(10, 1), Y);
  manager.OnActionResult(1000, 1, true);
  // Second process 1 hour later: the policy sees the recent recovery and
  // skips the watch level.
  manager.OnSymptom(1000 + kHour, 1, "s");
  EXPECT_EQ(*manager.OnRecoveryNeeded(1010 + kHour, 1), B);
}

TEST(RecoveryManagerTest, IndependentMachines) {
  UserDefinedPolicy policy;
  RecoveryManager manager(policy);
  manager.OnSymptom(0, 1, "a");
  manager.OnSymptom(5, 2, "b");
  EXPECT_EQ(manager.open_process_count(), 2u);
  manager.OnRecoveryNeeded(10, 1);
  manager.OnRecoveryNeeded(12, 2);
  manager.OnActionResult(20, 2, true);
  EXPECT_TRUE(manager.HasOpenProcess(1));
  EXPECT_FALSE(manager.HasOpenProcess(2));
}

TEST(RecoveryManagerTest, TrainedPolicyDrivesDecisions) {
  TrainedPolicy trained;
  trained.AddType({"stuck", {B, B}});
  UserDefinedPolicy user;
  HybridPolicy hybrid(trained, user);
  RecoveryManager manager(hybrid);

  manager.OnSymptom(0, 1, "stuck");
  EXPECT_EQ(*manager.OnRecoveryNeeded(10, 1), B);
  manager.OnActionResult(20, 1, false);
  EXPECT_EQ(*manager.OnRecoveryNeeded(30, 1), B);
  manager.OnActionResult(40, 1, false);
  // Trained sequence exhausted -> user policy (TRYNOP still unused).
  EXPECT_EQ(*manager.OnRecoveryNeeded(50, 1), Y);
}

TEST(RecoveryManagerTest, ActionResultWithoutProcessIsIgnoredAndCounted) {
  // A result with no open process is duplicate/stale telemetry (e.g. a
  // retransmitted success after the process already closed); the manager
  // absorbs it instead of aborting.
  UserDefinedPolicy policy;
  RecoveryManager manager(policy);
  manager.OnActionResult(10, 1, true);
  EXPECT_FALSE(manager.HasOpenProcess(1));
  EXPECT_EQ(manager.stats().stale_results_ignored, 1);
  EXPECT_EQ(manager.stats().processes_completed, 0);
}

}  // namespace
}  // namespace aer
