#include "core/policy_generator.h"

#include <sstream>

#include <gtest/gtest.h>

#include "cluster/trace.h"

namespace aer {
namespace {

PolicyGeneratorConfig FastConfig() {
  PolicyGeneratorConfig config;
  config.trainer.max_sweeps = 10000;
  config.trainer.min_sweeps = 2000;
  return config;
}

class PolicyGeneratorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    TraceConfig config = TraceConfigForScale("small");
    dataset_ = new TraceDataset(GenerateTrace(config));
  }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
  }
  static TraceDataset* dataset_;
};

TraceDataset* PolicyGeneratorTest::dataset_ = nullptr;

TEST_F(PolicyGeneratorTest, GeneratesNonEmptyPolicyWithReport) {
  const PolicyGenerator generator(FastConfig());
  PolicyGenerationReport report;
  const TrainedPolicy policy = generator.Generate(dataset_->result.log,
                                                  &report);

  EXPECT_GT(policy.num_types(), 20u);
  EXPECT_LE(policy.num_types(), 40u);
  EXPECT_EQ(report.total_processes,
            report.clean_processes + report.noisy_processes);
  EXPECT_GT(report.clean_processes, 0u);
  EXPECT_GT(report.symptom_clusters, 10u);
  EXPECT_GT(report.type_coverage, 0.95);
  EXPECT_EQ(report.training.size(), report.error_types);
  // Noise filtering drops a small fraction (~3% in the paper).
  const double noise_fraction =
      static_cast<double>(report.noisy_processes) /
      static_cast<double>(report.total_processes);
  EXPECT_LT(noise_fraction, 0.08);
}

TEST_F(PolicyGeneratorTest, EverySequenceUsesOnlyRealActions) {
  const PolicyGenerator generator(FastConfig());
  const TrainedPolicy policy = generator.Generate(dataset_->result.log);
  for (const auto& entry : policy.entries()) {
    EXPECT_FALSE(entry.sequence.empty());
    EXPECT_LE(entry.sequence.size(), 20u);
    // Symptom names must exist in the log's table.
    EXPECT_NE(dataset_->result.log.symptoms().Find(entry.symptom_name),
              kInvalidSymptom);
  }
}

TEST_F(PolicyGeneratorTest, DeterministicForConfig) {
  const PolicyGenerator generator(FastConfig());
  const TrainedPolicy a = generator.Generate(dataset_->result.log);
  const TrainedPolicy b = generator.Generate(dataset_->result.log);
  ASSERT_EQ(a.num_types(), b.num_types());
  for (const auto& entry : a.entries()) {
    const auto* other = b.FindType(entry.symptom_name);
    ASSERT_NE(other, nullptr);
    EXPECT_EQ(other->sequence, entry.sequence);
  }
}

TEST_F(PolicyGeneratorTest, GeneratedPolicySurvivesSerialization) {
  const PolicyGenerator generator(FastConfig());
  const TrainedPolicy policy = generator.Generate(dataset_->result.log);
  std::stringstream ss;
  policy.Write(ss);
  TrainedPolicy parsed;
  ASSERT_TRUE(TrainedPolicy::Read(ss, parsed));
  EXPECT_EQ(parsed.num_types(), policy.num_types());
}

TEST_F(PolicyGeneratorTest, PlainTrainerAlsoWorks) {
  PolicyGeneratorConfig config = FastConfig();
  config.use_selection_tree = false;
  const PolicyGenerator generator(config);
  const TrainedPolicy policy = generator.Generate(dataset_->result.log);
  EXPECT_GT(policy.num_types(), 10u);
}

}  // namespace
}  // namespace aer
