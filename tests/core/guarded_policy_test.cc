#include "core/guarded_policy.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace aer {
namespace {

constexpr auto Y = RepairAction::kTryNop;
constexpr auto B = RepairAction::kReboot;
constexpr auto I = RepairAction::kReimage;

// Always answers `action`; counts calls.
class FixedPolicy final : public RecoveryPolicy {
 public:
  explicit FixedPolicy(RepairAction action) : action_(action) {}
  RepairAction ChooseAction(const RecoveryContext&) override {
    ++decisions;
    return action_;
  }
  std::string_view name() const override { return "fixed"; }
  int decisions = 0;

 private:
  RepairAction action_;
};

class ThrowingPolicy final : public RecoveryPolicy {
 public:
  RepairAction ChooseAction(const RecoveryContext&) override {
    throw std::runtime_error("corrupted policy state");
  }
  std::string_view name() const override { return "throwing"; }
};

class OutOfRangePolicy final : public RecoveryPolicy {
 public:
  RepairAction ChooseAction(const RecoveryContext&) override {
    return static_cast<RepairAction>(17);  // a trashed Q-table would do this
  }
  std::string_view name() const override { return "out-of-range"; }
};

RecoveryContext MakeContext(MachineId machine, SimTime start, SimTime now) {
  RecoveryContext context;
  context.machine = machine;
  context.process_start = start;
  context.now = now;
  return context;
}

// Drives one full primary-visible process to completion with the given
// downtime; uses a distinct machine so attribution always starts fresh.
void CompleteProcess(GuardedPolicy& guard, MachineId machine,
                     SimTime downtime) {
  const RecoveryContext context = MakeContext(machine, 0, downtime);
  const RepairAction action = guard.ChooseAction(context);
  guard.OnActionOutcome(context, action, downtime, /*cured=*/true);
}

TEST(GuardedPolicyTest, HealthyPrimaryPassesThrough) {
  FixedPolicy primary(I);
  FixedPolicy fallback(Y);
  GuardedPolicy guard(primary, fallback);
  EXPECT_EQ(guard.ChooseAction(MakeContext(1, 0, 0)), I);
  EXPECT_EQ(guard.stats().primary_decisions, 1);
  EXPECT_EQ(guard.stats().fallback_decisions, 0);
  EXPECT_EQ(fallback.decisions, 0);
}

TEST(GuardedPolicyTest, ThrowingPrimaryFallsBack) {
  ThrowingPolicy primary;
  FixedPolicy fallback(B);
  GuardedPolicy guard(primary, fallback);
  EXPECT_EQ(guard.ChooseAction(MakeContext(1, 0, 0)), B);
  EXPECT_EQ(guard.stats().faults_absorbed, 1);
  EXPECT_EQ(guard.stats().fallback_decisions, 1);
}

TEST(GuardedPolicyTest, OutOfRangeActionFallsBack) {
  OutOfRangePolicy primary;
  FixedPolicy fallback(B);
  GuardedPolicy guard(primary, fallback);
  EXPECT_EQ(guard.ChooseAction(MakeContext(1, 0, 0)), B);
  EXPECT_EQ(guard.stats().invalid_actions, 1);
  EXPECT_EQ(guard.stats().fallback_decisions, 1);
}

TEST(GuardedPolicyTest, BaselineLearnedFromFirstWindow) {
  FixedPolicy primary(B);
  FixedPolicy fallback(Y);
  GuardedPolicyConfig config;
  config.window = 2;
  GuardedPolicy guard(primary, fallback, config);
  EXPECT_EQ(guard.baseline_mean_downtime(), 0.0);
  CompleteProcess(guard, 1, 100);
  CompleteProcess(guard, 2, 300);
  EXPECT_EQ(guard.baseline_mean_downtime(), 200.0);
  EXPECT_FALSE(guard.using_fallback());
}

TEST(GuardedPolicyTest, BreakerTripsOnRegressionAndServesProbation) {
  FixedPolicy primary(B);
  FixedPolicy fallback(Y);
  GuardedPolicyConfig config;
  config.window = 2;
  config.regression_ratio = 1.5;
  config.baseline_mean_downtime = 100.0;  // pinned baseline
  config.probation = 2;
  GuardedPolicy guard(primary, fallback, config);

  // At baseline: no trip.
  CompleteProcess(guard, 1, 100);
  CompleteProcess(guard, 2, 100);
  EXPECT_FALSE(guard.using_fallback());

  // One regressed completion slides in: mean (100+400)/2 = 250 > 150 ->
  // trip.
  CompleteProcess(guard, 3, 400);
  EXPECT_TRUE(guard.using_fallback());
  EXPECT_EQ(guard.stats().breaker_trips, 1);

  // While open, whole new processes are fallback-driven.
  const int fallback_before = fallback.decisions;
  CompleteProcess(guard, 4, 50);
  EXPECT_GT(fallback.decisions, fallback_before);
  EXPECT_TRUE(guard.using_fallback());  // 1 of 2 probation completions

  // Second probation completion half-opens: the primary is retried.
  CompleteProcess(guard, 5, 50);
  EXPECT_FALSE(guard.using_fallback());
  const int primary_before = primary.decisions;
  CompleteProcess(guard, 6, 100);
  EXPECT_GT(primary.decisions, primary_before);
}

TEST(GuardedPolicyTest, ProcessKeepsItsPolicyAcrossATrip) {
  FixedPolicy primary(B);
  FixedPolicy fallback(Y);
  GuardedPolicyConfig config;
  config.window = 1;
  config.baseline_mean_downtime = 100.0;
  config.probation = 1;
  GuardedPolicy guard(primary, fallback, config);

  // Machine 1 opens under the primary.
  EXPECT_EQ(guard.ChooseAction(MakeContext(1, 0, 0)), B);
  // Machine 2 completes a regressed process -> breaker trips.
  CompleteProcess(guard, 2, 1000);
  EXPECT_TRUE(guard.using_fallback());
  // Machine 1's still-open process stays with the primary...
  EXPECT_EQ(guard.ChooseAction(MakeContext(1, 0, 50)), B);
  // ...while a fresh process is fallback-driven.
  EXPECT_EQ(guard.ChooseAction(MakeContext(3, 60, 60)), Y);
}

TEST(GuardedPolicyTest, HalfOpenServesExactlyProbationCompletions) {
  FixedPolicy primary(B);
  FixedPolicy fallback(Y);
  GuardedPolicyConfig config;
  config.window = 1;
  config.baseline_mean_downtime = 100.0;
  config.probation = 3;
  GuardedPolicy guard(primary, fallback, config);

  CompleteProcess(guard, 1, 1000);  // trips (window of 1)
  ASSERT_TRUE(guard.using_fallback());
  // probation - 1 completions are not enough to half-open...
  CompleteProcess(guard, 2, 50);
  CompleteProcess(guard, 3, 50);
  EXPECT_TRUE(guard.using_fallback());
  // ...the probation-th exactly is.
  CompleteProcess(guard, 4, 50);
  EXPECT_FALSE(guard.using_fallback());
}

TEST(GuardedPolicyTest, RetripsExactlyWhenFreshWindowFillsAfterHalfOpen) {
  FixedPolicy primary(B);
  FixedPolicy fallback(Y);
  GuardedPolicyConfig config;
  config.window = 2;
  config.regression_ratio = 1.5;
  config.baseline_mean_downtime = 100.0;
  config.probation = 1;
  GuardedPolicy guard(primary, fallback, config);

  CompleteProcess(guard, 1, 400);
  CompleteProcess(guard, 2, 400);
  ASSERT_TRUE(guard.using_fallback());
  ASSERT_EQ(guard.stats().breaker_trips, 1);
  CompleteProcess(guard, 3, 50);  // serves the 1-completion probation
  ASSERT_FALSE(guard.using_fallback());

  // Half-open granted the primary a *fresh* window: a regressed completion
  // inside the window (window - 1 samples) must not re-trip...
  CompleteProcess(guard, 4, 400);
  EXPECT_FALSE(guard.using_fallback());
  EXPECT_EQ(guard.stats().breaker_trips, 1);
  // ...and the completion that fills the window exactly must.
  CompleteProcess(guard, 5, 400);
  EXPECT_TRUE(guard.using_fallback());
  EXPECT_EQ(guard.stats().breaker_trips, 2);
}

TEST(GuardedPolicyTest, MeanExactlyAtRegressionBoundaryDoesNotTrip) {
  FixedPolicy primary(B);
  FixedPolicy fallback(Y);
  GuardedPolicyConfig config;
  config.window = 2;
  config.regression_ratio = 1.5;
  config.baseline_mean_downtime = 100.0;
  GuardedPolicy guard(primary, fallback, config);

  // Mean == ratio * baseline sits on the boundary: strictly-greater is the
  // trip condition, so this must stay closed.
  CompleteProcess(guard, 1, 150);
  CompleteProcess(guard, 2, 150);
  EXPECT_FALSE(guard.using_fallback());
  EXPECT_EQ(guard.stats().breaker_trips, 0);
  // One sample past the boundary slides the mean strictly above: trip.
  CompleteProcess(guard, 3, 200);
  EXPECT_TRUE(guard.using_fallback());
  EXPECT_EQ(guard.stats().breaker_trips, 1);
}

TEST(GuardedPolicyTest, OutcomeFeedbackRoutedToDecidingPolicy) {
  // An OnlinePolicy-style learner must only see outcomes of its own
  // decisions; use counting fallbacks to observe the routing.
  class CountingPolicy final : public RecoveryPolicy {
   public:
    RepairAction ChooseAction(const RecoveryContext&) override { return Y; }
    void OnActionOutcome(const RecoveryContext&, RepairAction, SimTime,
                         bool) override {
      ++outcomes;
    }
    std::string_view name() const override { return "counting"; }
    int outcomes = 0;
  };
  CountingPolicy primary;
  CountingPolicy fallback;
  GuardedPolicyConfig config;
  config.baseline_mean_downtime = 100.0;
  GuardedPolicy guard(primary, fallback, config);

  const RecoveryContext context = MakeContext(1, 0, 10);
  guard.ChooseAction(context);
  guard.OnActionOutcome(context, Y, 10, /*cured=*/true);
  EXPECT_EQ(primary.outcomes, 1);
  EXPECT_EQ(fallback.outcomes, 0);
}

}  // namespace
}  // namespace aer
