// Dirty-telemetry behavior of the RecoveryManager: out-of-order and
// duplicate events, per-action timeouts with backoff, flap quarantine, and
// bounded per-machine history. The clean-path behavior is covered by
// recovery_manager_test.cc.
#include <gtest/gtest.h>

#include "cluster/user_policy.h"
#include "core/recovery_manager.h"

namespace aer {
namespace {

constexpr auto Y = RepairAction::kTryNop;
constexpr auto B = RepairAction::kReboot;
constexpr auto A = RepairAction::kRma;

TEST(RecoveryManagerRobustnessTest, OutOfOrderSymptomIsClampedNotFatal) {
  UserDefinedPolicy policy;
  RecoveryManager manager(policy);
  manager.OnSymptom(100, 1, "s1");
  manager.OnSymptom(50, 1, "s2");  // delayed delivery: before the watermark
  EXPECT_EQ(manager.stats().out_of_order_events, 1);
  // The log stays monotonic per process (clamped, not reordered).
  ASSERT_EQ(manager.log().size(), 2u);
  EXPECT_EQ(manager.log().entries()[1].time, 100);
}

TEST(RecoveryManagerRobustnessTest, DuplicateSymptomReportIsAbsorbed) {
  UserDefinedPolicy policy;
  RecoveryManager manager(policy);
  manager.OnSymptom(100, 1, "s1");
  manager.OnSymptom(100, 1, "s1");  // monitoring delivered it twice
  EXPECT_EQ(manager.stats().duplicate_symptoms, 1);
  EXPECT_EQ(manager.log().size(), 1u);
  // A *different* symptom at the same instant is real information.
  manager.OnSymptom(100, 1, "s2");
  EXPECT_EQ(manager.log().size(), 2u);
}

TEST(RecoveryManagerRobustnessTest, DuplicateRecoveryRequestIsIdempotent) {
  UserDefinedPolicy policy;
  RecoveryManager manager(policy);
  manager.OnSymptom(0, 1, "s");
  const auto first = manager.OnRecoveryNeeded(10, 1);
  const auto second = manager.OnRecoveryNeeded(11, 1);  // retransmission
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(*first, *second);
  EXPECT_EQ(manager.stats().actions_taken, 1);  // recorded once
  EXPECT_EQ(manager.stats().duplicate_recovery_requests, 1);
}

TEST(RecoveryManagerRobustnessTest, TimeoutFailsActionAndEscalates) {
  UserDefinedPolicy policy;
  RecoveryManagerConfig config;
  config.action_timeout = 100;
  RecoveryManager manager(policy, config);
  manager.OnSymptom(0, 1, "s");
  EXPECT_EQ(*manager.OnRecoveryNeeded(10, 1), Y);

  // Before the deadline nothing is overdue.
  EXPECT_TRUE(manager.PollTimeouts(100).empty());
  // At/after the deadline the hung action is declared failed.
  const std::vector<MachineId> overdue = manager.PollTimeouts(110);
  ASSERT_EQ(overdue.size(), 1u);
  EXPECT_EQ(overdue[0], 1);
  EXPECT_EQ(manager.stats().actions_timed_out, 1);

  // The process escalates past the timed-out action.
  EXPECT_EQ(*manager.OnRecoveryNeeded(120, 1), B);
  manager.OnActionResult(130, 1, /*healthy=*/true);
  // Once closed there is nothing left to time out.
  EXPECT_TRUE(manager.PollTimeouts(500).empty());
}

TEST(RecoveryManagerRobustnessTest, TimeoutDeadlineBacksOff) {
  UserDefinedPolicy policy;
  RecoveryManagerConfig config;
  config.action_timeout = 100;
  config.timeout_backoff = 2.0;
  RecoveryManager manager(policy, config);
  manager.OnSymptom(0, 1, "s");

  manager.OnRecoveryNeeded(0, 1);
  ASSERT_EQ(manager.PollTimeouts(100).size(), 1u);  // first deadline: 100

  manager.OnRecoveryNeeded(100, 1);
  // Second action gets 100 * 2 = 200: not yet overdue at +150.
  EXPECT_TRUE(manager.PollTimeouts(250).empty());
  ASSERT_EQ(manager.PollTimeouts(300).size(), 1u);
  EXPECT_EQ(manager.stats().actions_timed_out, 2);
}

TEST(RecoveryManagerRobustnessTest, TimeoutsAdvanceTheNCap) {
  UserDefinedPolicy policy;
  RecoveryManagerConfig config;
  config.max_actions_per_process = 3;
  config.action_timeout = 100;
  config.timeout_backoff = 1.0;  // keep deadlines easy to compute
  RecoveryManager manager(policy, config);
  manager.OnSymptom(0, 1, "s");
  manager.OnRecoveryNeeded(0, 1);
  ASSERT_FALSE(manager.PollTimeouts(100).empty());
  manager.OnRecoveryNeeded(100, 1);
  ASSERT_FALSE(manager.PollTimeouts(200).empty());
  // Two hung actions burned two of the three attempts: cap forces RMA.
  EXPECT_EQ(*manager.OnRecoveryNeeded(200, 1), A);
  EXPECT_EQ(manager.stats().manual_repairs_forced, 1);
}

TEST(RecoveryManagerRobustnessTest, LateResultAfterTimeoutIsIgnored) {
  UserDefinedPolicy policy;
  RecoveryManagerConfig config;
  config.action_timeout = 100;
  RecoveryManager manager(policy, config);
  manager.OnSymptom(0, 1, "s");
  manager.OnRecoveryNeeded(0, 1);
  ASSERT_FALSE(manager.PollTimeouts(100).empty());
  // The timed-out action's real (late) failure report arrives afterwards:
  // nothing is in flight, so it must not double-count an outcome.
  const auto actions_before = manager.stats().actions_taken;
  manager.OnActionResult(150, 1, /*healthy=*/false);
  EXPECT_EQ(manager.stats().stale_results_ignored, 1);
  EXPECT_EQ(manager.stats().actions_taken, actions_before);
  EXPECT_TRUE(manager.HasOpenProcess(1));
}

TEST(RecoveryManagerRobustnessTest, LateHealthyResultStillClosesProcess) {
  // A machine that spontaneously recovers (or whose success report was
  // delayed past the timeout) should not be kept in recovery forever.
  UserDefinedPolicy policy;
  RecoveryManagerConfig config;
  config.action_timeout = 100;
  RecoveryManager manager(policy, config);
  manager.OnSymptom(0, 1, "s");
  manager.OnRecoveryNeeded(0, 1);
  ASSERT_FALSE(manager.PollTimeouts(100).empty());
  manager.OnActionResult(150, 1, /*healthy=*/true);
  EXPECT_FALSE(manager.HasOpenProcess(1));
  EXPECT_EQ(manager.stats().processes_completed, 1);
}

TEST(RecoveryManagerRobustnessTest, FlappingMachineIsQuarantined) {
  UserDefinedPolicy policy;
  RecoveryManagerConfig config;
  config.flap_threshold = 2;
  config.flap_window = kHour;
  RecoveryManager manager(policy, config);

  // Two quick open/close cycles inside the window: still below threshold.
  for (int i = 0; i < 2; ++i) {
    const SimTime t = i * 600;
    manager.OnSymptom(t, 1, "flappy");
    manager.OnRecoveryNeeded(t + 10, 1);
    manager.OnActionResult(t + 20, 1, true);
    EXPECT_FALSE(manager.IsQuarantined(1));
  }
  // Third open within the hour crosses the threshold: straight to RMA.
  manager.OnSymptom(1200, 1, "flappy");
  EXPECT_TRUE(manager.IsQuarantined(1));
  EXPECT_EQ(*manager.OnRecoveryNeeded(1210, 1), A);
  EXPECT_EQ(manager.stats().flap_quarantines, 1);
  manager.OnActionResult(1300, 1, true);

  // Far outside the window the machine gets the normal ladder again.
  manager.OnSymptom(1200 + 10 * kHour, 1, "flappy");
  EXPECT_FALSE(manager.IsQuarantined(1));
  EXPECT_EQ(*manager.OnRecoveryNeeded(1210 + 10 * kHour, 1), Y);
}

TEST(RecoveryManagerRobustnessTest, HistoryIsEvictedAfterRetention) {
  // Regression test for unbounded last-recovery-end growth: one completed
  // process per machine across a large fleet must not be retained forever.
  UserDefinedPolicy policy;
  RecoveryManagerConfig config;
  config.history_retention = kDay;
  RecoveryManager manager(policy, config);

  constexpr int kMachines = 200;
  for (int m = 0; m < kMachines; ++m) {
    const SimTime t = m * 10;
    manager.OnSymptom(t, m, "s");
    manager.OnRecoveryNeeded(t + 1, m);
    manager.OnActionResult(t + 2, m, true);
  }
  EXPECT_EQ(manager.history_size(), static_cast<std::size_t>(kMachines));

  // A trickle of new processes far in the future sweeps the stale entries.
  for (int m = 0; m < 100; ++m) {
    const SimTime t = 10 * kDay + m * 10;
    manager.OnSymptom(t, 1000 + m, "s");
    manager.OnRecoveryNeeded(t + 1, 1000 + m);
    manager.OnActionResult(t + 2, 1000 + m, true);
  }
  EXPECT_LT(manager.history_size(), static_cast<std::size_t>(kMachines));
  EXPECT_GT(manager.stats().history_evictions, 0);
}

TEST(RecoveryManagerRobustnessTest, ExportSnapshotsOpenProcessesInOrder) {
  UserDefinedPolicy policy;
  RecoveryManager manager(policy);
  for (MachineId m : {5, 2, 9}) {
    manager.OnSymptom(10, m, "s");
    manager.OnRecoveryNeeded(20, m);
  }
  // Machine 2 completes: only still-open processes are exported.
  manager.OnActionResult(30, 2, /*healthy=*/true);

  const auto snapshots = manager.ExportOpenProcesses();
  ASSERT_EQ(snapshots.size(), 2u);
  EXPECT_EQ(snapshots[0].machine, 5);
  EXPECT_EQ(snapshots[1].machine, 9);
  EXPECT_EQ(snapshots[0].symptom, "s");
  EXPECT_EQ(snapshots[0].tried, std::vector<RepairAction>{Y});
}

TEST(RecoveryManagerRobustnessTest, AdoptResumesAttemptHistory) {
  // Leader-side manager works two attempts into a process...
  UserDefinedPolicy policy_a;
  RecoveryManager leader(policy_a);
  leader.OnSymptom(0, 7, "s");
  EXPECT_EQ(*leader.OnRecoveryNeeded(10, 7), Y);
  leader.OnActionResult(20, 7, /*healthy=*/false);
  EXPECT_EQ(*leader.OnRecoveryNeeded(20, 7), B);
  leader.OnActionResult(30, 7, /*healthy=*/false);
  const auto snapshots = leader.ExportOpenProcesses();
  ASSERT_EQ(snapshots.size(), 1u);

  // ...and the takeover manager resumes at attempt 3, not attempt 1: the
  // user ladder grants reboot two tries, so the next action is the second
  // reboot — never a restarted kTryNop.
  UserDefinedPolicy policy_b;
  RecoveryManager follower(policy_b);
  EXPECT_TRUE(follower.AdoptProcess(40, snapshots[0]));
  EXPECT_EQ(follower.stats().processes_adopted, 1);
  EXPECT_EQ(follower.ActionsTried(7), 2);
  EXPECT_EQ(*follower.OnRecoveryNeeded(50, 7), B);
  follower.OnActionResult(60, 7, /*healthy=*/true);
  EXPECT_EQ(follower.stats().processes_completed, 1);
}

TEST(RecoveryManagerRobustnessTest, AdoptRefusesAnAlreadyOpenProcess) {
  UserDefinedPolicy policy;
  RecoveryManager manager(policy);
  manager.OnSymptom(0, 7, "s");
  manager.OnRecoveryNeeded(10, 7);
  const auto snapshots = manager.ExportOpenProcesses();
  ASSERT_EQ(snapshots.size(), 1u);
  EXPECT_FALSE(manager.AdoptProcess(20, snapshots[0]));
  EXPECT_EQ(manager.stats().processes_adopted, 0);
  EXPECT_EQ(manager.ActionsTried(7), 1);
}

TEST(RecoveryManagerRobustnessTest, AdoptedAttemptsCountTowardTheNCap) {
  UserDefinedPolicy policy_a;
  RecoveryManager leader(policy_a);
  leader.OnSymptom(0, 7, "s");
  leader.OnRecoveryNeeded(10, 7);
  leader.OnActionResult(20, 7, /*healthy=*/false);
  leader.OnRecoveryNeeded(20, 7);

  UserDefinedPolicy policy_b;
  RecoveryManagerConfig config;
  config.max_actions_per_process = 3;
  RecoveryManager follower(policy_b, config);
  ASSERT_TRUE(follower.AdoptProcess(30, leader.ExportOpenProcesses()[0]));
  // Two adopted attempts burned two of three: the cap forces RMA now.
  EXPECT_EQ(*follower.OnRecoveryNeeded(40, 7), A);
  EXPECT_EQ(follower.stats().manual_repairs_forced, 1);
}

TEST(RecoveryManagerRobustnessTest, AdoptResetsInFlightState) {
  // The snapshot is taken while an action is in flight on the old leader;
  // the adopter must not inherit that deadline (the result will never reach
  // it) — only its own next dispatch starts a timeout clock.
  UserDefinedPolicy policy_a;
  RecoveryManager leader(policy_a);
  leader.OnSymptom(0, 7, "s");
  leader.OnRecoveryNeeded(10, 7);  // in flight at export time

  UserDefinedPolicy policy_b;
  RecoveryManagerConfig config;
  config.action_timeout = 100;
  RecoveryManager follower(policy_b, config);
  ASSERT_TRUE(follower.AdoptProcess(20, leader.ExportOpenProcesses()[0]));
  EXPECT_TRUE(follower.PollTimeouts(100000).empty());
  EXPECT_EQ(*follower.OnRecoveryNeeded(30, 7), B);
  ASSERT_EQ(follower.PollTimeouts(130).size(), 1u);
}

TEST(RecoveryManagerRobustnessTest, AdoptCarriesQuarantineAcrossTakeover) {
  UserDefinedPolicy policy;
  RecoveryManager manager(policy);
  OpenProcessSnapshot snapshot;
  snapshot.machine = 7;
  snapshot.start = 0;
  snapshot.symptom = "flappy";
  snapshot.quarantined = true;
  ASSERT_TRUE(manager.AdoptProcess(10, snapshot));
  EXPECT_TRUE(manager.IsQuarantined(7));
  EXPECT_EQ(*manager.OnRecoveryNeeded(20, 7), A);
}

TEST(RecoveryManagerRobustnessTest, RecentHistorySurvivesEviction) {
  UserDefinedPolicy policy;
  RecoveryManagerConfig config;
  config.history_retention = 30 * kDay;
  RecoveryManager manager(policy, config);
  // Complete a process, then many unrelated ones to trigger sweeps.
  manager.OnSymptom(0, 7, "s");
  manager.OnRecoveryNeeded(1, 7);
  manager.OnActionResult(1000, 7, true);
  for (int m = 0; m < 100; ++m) {
    const SimTime t = 2000 + m * 10;
    manager.OnSymptom(t, 100 + m, "s");
    manager.OnRecoveryNeeded(t + 1, 100 + m);
    manager.OnActionResult(t + 2, 100 + m, true);
  }
  // Machine 7's history is inside retention: the recurring-failure shortcut
  // must still see last_recovery_end and skip the watch level.
  manager.OnSymptom(1000 + kHour, 7, "s");
  EXPECT_EQ(*manager.OnRecoveryNeeded(1001 + kHour, 7), B);
}

}  // namespace
}  // namespace aer
