// Concurrency hammers for the mutex-protected components whose lock
// discipline the Clang thread-safety annotations now state in the types
// (docs/STATIC_ANALYSIS.md). The annotations prove "every access holds the
// right lock" at compile time on the clang leg; these tests drive the same
// components from many threads so the TSan leg checks the complementary
// dynamic property — and so regressions fail on every compiler, not just
// under clang.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/profiler.h"
#include "core/guarded_policy.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"

namespace aer {
namespace {

constexpr int kThreads = 4;
constexpr int kIterations = 500;

TEST(LockDisciplineTest, ProfilerScopesRaceSnapshotAndReset) {
  ProfileRegistry registry;
  std::atomic<bool> stop{false};

  // Reader thread: merged snapshots must stay well-formed while every
  // worker mutates its shard structure (Enter) and counters (Exit).
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      for (const ProfileEntry& entry : registry.Snapshot()) {
        ASSERT_FALSE(entry.path.empty());
        ASSERT_GE(entry.calls, 1);
      }
    }
  });

  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&registry] {
      ProfileRegistry::Shard& shard = registry.LocalShard();
      for (int i = 0; i < kIterations; ++i) {
        shard.Enter("outer");
        shard.Enter(i % 2 == 0 ? "even" : "odd");
        shard.Exit(10);
        shard.Exit(25);
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  stop.store(true, std::memory_order_release);
  reader.join();

  // Every enter/exit pair is accounted for exactly once after the join.
  EXPECT_EQ(registry.TotalCalls(), 2 * kThreads * kIterations);

  registry.Reset();
  EXPECT_EQ(registry.TotalCalls(), 0);
}

TEST(LockDisciplineTest, GuardedPolicyConcurrentDecisionsStayConsistent) {
  class FixedPolicy final : public RecoveryPolicy {
   public:
    RepairAction ChooseAction(const RecoveryContext&) override {
      return RepairAction::kReboot;
    }
    std::string_view name() const override { return "fixed"; }
  };

  FixedPolicy primary;
  FixedPolicy fallback;
  GuardedPolicyConfig config;
  config.baseline_mean_downtime = 100.0;
  GuardedPolicy guard(primary, fallback, config);

  obs::MetricsRegistry metrics;
  guard.SetObservers(nullptr, &metrics);

  // Each thread drives its own disjoint set of machines through full
  // decide -> outcome processes; attribution entries never collide.
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&guard, t] {
      for (int i = 0; i < kIterations; ++i) {
        RecoveryContext context;
        context.machine = static_cast<MachineId>(t * kIterations + i);
        context.process_start = 0;
        context.now = 80;  // below baseline: the breaker never trips
        const RepairAction action = guard.ChooseAction(context);
        guard.OnActionOutcome(context, action, 80, /*cured=*/true);
      }
    });
  }
  for (std::thread& worker : workers) worker.join();

  const GuardedPolicy::Stats stats = guard.stats();
  const std::int64_t total = kThreads * kIterations;
  EXPECT_EQ(stats.primary_decisions + stats.fallback_decisions, total);
  EXPECT_EQ(stats.processes_observed, total);
  EXPECT_EQ(stats.faults_absorbed, 0);
  EXPECT_EQ(stats.breaker_trips, 0);
  EXPECT_FALSE(guard.using_fallback());
  // The mirrored metrics saw every decision too.
  std::int64_t mirrored = -1;
  for (const auto& [name, value] : metrics.CounterValues()) {
    if (name == "aer_guard_primary_decisions_total") mirrored = value;
  }
  EXPECT_EQ(mirrored, stats.primary_decisions);
}

TEST(LockDisciplineTest, GuardedPolicyAbsorbsConcurrentFaults) {
  class ThrowingPolicy final : public RecoveryPolicy {
   public:
    RepairAction ChooseAction(const RecoveryContext&) override {
      throw std::runtime_error("corrupted");
    }
    std::string_view name() const override { return "throwing"; }
  };
  class FixedPolicy final : public RecoveryPolicy {
   public:
    RepairAction ChooseAction(const RecoveryContext&) override {
      return RepairAction::kTryNop;
    }
    std::string_view name() const override { return "fixed"; }
  };

  ThrowingPolicy primary;
  FixedPolicy fallback;
  GuardedPolicy guard(primary, fallback);

  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&guard, t] {
      for (int i = 0; i < kIterations; ++i) {
        RecoveryContext context;
        context.machine = static_cast<MachineId>(t * kIterations + i);
        EXPECT_EQ(guard.ChooseAction(context), RepairAction::kTryNop);
      }
    });
  }
  for (std::thread& worker : workers) worker.join();

  const GuardedPolicy::Stats stats = guard.stats();
  const std::int64_t total = kThreads * kIterations;
  EXPECT_EQ(stats.faults_absorbed, total);
  EXPECT_EQ(stats.fallback_decisions, total);
  EXPECT_EQ(stats.primary_decisions, 0);
}

TEST(LockDisciplineTest, TimeSeriesRecorderRacesWritersAndReaders) {
  obs::MetricsRegistry registry;
  obs::TimeSeriesConfig config;
  config.window_width = 10;
  config.capacity = 4096;
  obs::TimeSeriesRecorder recorder(registry, config);

  obs::Counter& hits = registry.GetCounter("aer_test_hits_total");

  std::atomic<bool> stop{false};
  // Readers exercise every export path while windows open and close.
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        const auto windows = recorder.Windows();
        for (const obs::TimeSeriesWindow& w : windows) {
          ASSERT_LT(w.start, w.end);
        }
        (void)recorder.ExportText();
        (void)recorder.windows_closed();
      }
    });
  }

  // Writers bump the counter; one advancer owns the position axis
  // (positions must be monotone, so advancing is single-threaded by
  // contract — the lock protects the window state, not the axis).
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&hits] {
      for (int i = 0; i < kIterations; ++i) hits.Inc();
    });
  }
  for (std::int64_t position = 1; position <= 200; ++position) {
    recorder.AdvanceTo(position);
  }
  for (std::thread& writer : writers) writer.join();
  recorder.Finish(1000);
  stop.store(true, std::memory_order_release);
  for (std::thread& reader : readers) reader.join();

  // After Finish, every increment is in exactly one closed window.
  std::int64_t accounted = 0;
  for (const obs::TimeSeriesWindow& w : recorder.Windows()) {
    for (const auto& [name, delta] : w.counter_deltas) {
      if (name == "aer_test_hits_total") accounted += delta;
    }
  }
  EXPECT_EQ(accounted, kThreads * kIterations);
}

TEST(LockDisciplineTest, MetricsRegistryConcurrentMergeAdds) {
  obs::MetricsRegistry target;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&target] {
      obs::MetricsRegistry shard;
      obs::Counter& local = shard.GetCounter("aer_test_merged_total");
      shard.GetStat("aer_test_latency").Observe(1.5);
      for (int i = 0; i < kIterations; ++i) local.Inc();
      target.MergeFrom(shard);
    });
  }
  std::thread snapshotter([&target] {
    for (int i = 0; i < 50; ++i) (void)target.Snapshot();
  });
  for (std::thread& worker : workers) worker.join();
  snapshotter.join();

  std::int64_t merged = -1;
  for (const auto& [name, value] : target.CounterValues()) {
    if (name == "aer_test_merged_total") merged = value;
  }
  EXPECT_EQ(merged, kThreads * kIterations);
}

}  // namespace
}  // namespace aer
