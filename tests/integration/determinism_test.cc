// The determinism contract (docs/ALGORITHMS.md): the entire pipeline is a
// pure function of its seed. Two trainings with the same seed must produce
// bit-identical serialized Q tables — not merely the same greedy policy —
// because every figure in the paper reproduction is derived from those
// values, and because future parallel-training PRs must preserve exactly
// this property.
#include <sstream>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "rl/qlearning.h"
#include "rl/qtable.h"

namespace aer {
namespace {

constexpr auto Y = RepairAction::kTryNop;
constexpr auto B = RepairAction::kReboot;

RecoveryProcess MakeProcess(
    std::vector<std::pair<RepairAction, SimTime>> attempts_with_costs,
    SymptomId symptom, MachineId machine, SimTime start) {
  std::vector<SymptomEvent> symptoms = {{start, symptom}};
  std::vector<ActionAttempt> attempts;
  SimTime t = start + 50;
  for (const auto& [action, cost] : attempts_with_costs) {
    attempts.push_back({action, t, cost, false});
    t += cost;
  }
  attempts.back().cured = true;
  return RecoveryProcess(machine, std::move(symptoms), std::move(attempts),
                         t);
}

// Two error types with distinct optimal policies, enough processes that the
// trainer explores a nontrivial state set.
struct Fixture {
  SymptomTable symptoms;
  std::vector<RecoveryProcess> processes;
  ErrorTypeCatalog catalog;
  SimulationPlatform platform;

  static std::vector<RecoveryProcess> Build() {
    std::vector<RecoveryProcess> out;
    SimTime start = 0;
    MachineId m = 0;
    for (int i = 0; i < 50; ++i) {
      out.push_back(MakeProcess({{Y, 900}, {B, 2400}}, 0, m++, start));
      start += 10;
    }
    for (int i = 0; i < 40; ++i) {
      out.push_back(MakeProcess({{Y, 900}}, 1, m++, start));
      start += 10;
    }
    for (int i = 0; i < 10; ++i) {
      out.push_back(MakeProcess({{Y, 900}, {B, 2400}}, 1, m++, start));
      start += 10;
    }
    return out;
  }

  Fixture()
      : processes(Build()),
        catalog(processes, 30),
        platform(processes, catalog, symptoms, 20) {
    symptoms.Intern("stuck");
    symptoms.Intern("transient");
  }
};

TrainerConfig ConfigWithSeed(std::uint64_t seed) {
  TrainerConfig config;
  config.max_sweeps = 6000;
  config.min_sweeps = 1000;
  config.check_every = 100;
  config.stable_checks = 5;
  config.seed = seed;
  return config;
}

std::string SerializedTable(const Fixture& fx, const TrainerConfig& config,
                            ErrorTypeId type) {
  QLearningTrainer trainer(fx.platform, fx.processes, config);
  QTable table;
  trainer.TrainType(type, &table);
  std::ostringstream os;
  table.Write(os);
  return os.str();
}

TEST(DeterminismTest, SameSeedProducesBitIdenticalQTables) {
  const Fixture fx;
  const TrainerConfig config = ConfigWithSeed(1234);
  for (ErrorTypeId type = 0;
       type < static_cast<ErrorTypeId>(fx.platform.types().num_types());
       ++type) {
    const std::string first = SerializedTable(fx, config, type);
    const std::string second = SerializedTable(fx, config, type);
    EXPECT_FALSE(first.empty()) << "type " << type << " learned nothing";
    EXPECT_EQ(first, second)
        << "type " << type << ": rerun with seed " << config.seed
        << " diverged — the determinism contract is broken";
  }
}

TEST(DeterminismTest, SameSeedProducesIdenticalPoliciesAndDiagnostics) {
  const Fixture fx;
  const TrainerConfig config = ConfigWithSeed(99);
  QLearningTrainer a(fx.platform, fx.processes, config);
  QLearningTrainer b(fx.platform, fx.processes, config);
  const auto out_a = a.TrainAll();
  const auto out_b = b.TrainAll();
  ASSERT_EQ(out_a.per_type.size(), out_b.per_type.size());
  for (std::size_t i = 0; i < out_a.per_type.size(); ++i) {
    EXPECT_EQ(out_a.per_type[i].sweeps, out_b.per_type[i].sweeps);
    EXPECT_EQ(out_a.per_type[i].converged, out_b.per_type[i].converged);
    EXPECT_EQ(out_a.per_type[i].sequence, out_b.per_type[i].sequence);
  }
}

TEST(DeterminismTest, DifferentSeedsActuallyExploreDifferently) {
  // Guards against the test above passing vacuously (e.g. the seed being
  // ignored and both runs sharing hidden global state).
  const Fixture fx;
  const ErrorTypeId type = 0;
  const std::string a = SerializedTable(fx, ConfigWithSeed(1), type);
  const std::string b = SerializedTable(fx, ConfigWithSeed(2), type);
  EXPECT_NE(a, b) << "seed appears to be ignored by the trainer";
}

}  // namespace
}  // namespace aer
