// End-to-end offline pipeline: synthetic cluster trace -> mining ->
// training -> evaluation, asserting the paper's headline results hold in
// shape (Section 5).
#include <gtest/gtest.h>

#include "cluster/trace.h"
#include "core/policy_generator.h"
#include "eval/experiment.h"
#include "mining/symptom_clusters.h"

namespace aer {
namespace {

class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new TraceDataset(GenerateTrace(TraceConfigForScale("small")));
    const auto segmented = SegmentIntoProcesses(dataset_->result.log);
    MPatternConfig mining;
    const SymptomClustering clustering(segmented.processes, mining);
    const NoiseFilterResult filtered =
        FilterNoisyProcesses(segmented.processes, clustering);
    clean_ = new std::vector<RecoveryProcess>();
    for (std::size_t i : filtered.clean) {
      clean_->push_back(segmented.processes[i]);
    }
    ExperimentConfig config;
    config.trainer.max_sweeps = 15000;
    config.trainer.min_sweeps = 2500;
    runner_ = new ExperimentRunner(*clean_, dataset_->result.log.symptoms(),
                                   config);
    results_ = new std::vector<ExperimentResult>(runner_->RunAll());
  }
  static void TearDownTestSuite() {
    delete results_;
    delete runner_;
    delete clean_;
    delete dataset_;
    results_ = nullptr;
    runner_ = nullptr;
    clean_ = nullptr;
    dataset_ = nullptr;
  }

  static TraceDataset* dataset_;
  static std::vector<RecoveryProcess>* clean_;
  static ExperimentRunner* runner_;
  static std::vector<ExperimentResult>* results_;
};

TraceDataset* PipelineTest::dataset_ = nullptr;
std::vector<RecoveryProcess>* PipelineTest::clean_ = nullptr;
ExperimentRunner* PipelineTest::runner_ = nullptr;
std::vector<ExperimentResult>* PipelineTest::results_ = nullptr;

TEST_F(PipelineTest, AllFourTestsSaveDowntime) {
  // Figure 9: the trained policy saves downtime in every test split.
  ASSERT_EQ(results_->size(), 4u);
  for (const ExperimentResult& r : *results_) {
    EXPECT_LT(r.trained.overall_relative_cost, 1.0)
        << "train fraction " << r.train_fraction;
    EXPECT_GT(r.trained.overall_relative_cost, 0.5);
  }
}

TEST_F(PipelineTest, HybridMatchesTrainedOnAllTests) {
  // Figure 12 vs Figure 9: hybrid keeps the savings with full coverage.
  for (const ExperimentResult& r : *results_) {
    EXPECT_DOUBLE_EQ(r.hybrid.overall_coverage, 1.0);
    EXPECT_NEAR(r.hybrid.overall_relative_cost,
                r.trained.overall_relative_cost, 0.1);
  }
}

TEST_F(PipelineTest, CoverageAboveNinetyPercent) {
  // Figure 10's band.
  for (const ExperimentResult& r : *results_) {
    EXPECT_GT(r.trained.overall_coverage, 0.9)
        << "train fraction " << r.train_fraction;
  }
}

TEST_F(PipelineTest, PinnedStuckServiceTypeImprovesStrongly) {
  // The most frequent error type (paper's "error type 1") is the stuck
  // service: its trained policy jumps to REBOOT, roughly halving cost.
  for (const ExperimentResult& r : *results_) {
    const TypeEvalRow& row = r.trained.rows[0];
    if (row.handled < 20) continue;
    EXPECT_LT(row.relative_cost, 0.85)
        << "train fraction " << r.train_fraction;
    // And the learned sequence indeed starts stronger than TRYNOP.
    ASSERT_FALSE(r.training[0].sequence.empty());
    EXPECT_NE(r.training[0].sequence.front(), RepairAction::kTryNop);
  }
}

TEST_F(PipelineTest, TrainingTelemetryIsPlausible) {
  for (const ExperimentResult& r : *results_) {
    ASSERT_EQ(r.training.size(), runner_->types().num_types());
    for (const TypeTrainingResult& t : r.training) {
      if (t.training_processes == 0) continue;
      EXPECT_GT(t.sweeps, 0);
      EXPECT_LE(t.sweeps, 15000);
      EXPECT_LE(t.sequence.size(), 20u);
    }
  }
}

TEST_F(PipelineTest, PolicyGeneratorFacadeAgreesWithExperimentPipeline) {
  PolicyGeneratorConfig config;
  config.trainer.max_sweeps = 15000;
  config.trainer.min_sweeps = 2500;
  const PolicyGenerator generator(config);
  PolicyGenerationReport report;
  const TrainedPolicy policy =
      generator.Generate(dataset_->result.log, &report);
  // The facade runs on the full log; it should learn the strong-first rule
  // for the dominant stuck-service type too.
  const auto* entry =
      policy.FindType(dataset_->catalog.faults[0].primary_symptom);
  ASSERT_NE(entry, nullptr);
  ASSERT_FALSE(entry->sequence.empty());
  EXPECT_EQ(entry->sequence.front(), RepairAction::kReboot);
}

}  // namespace
}  // namespace aer
