// The strongest end-to-end validation, beyond the paper's replay-based
// evaluation: deploy the offline-trained policy *online* in a fresh cluster
// simulation (new seed, new incidents) and verify it beats the user-defined
// policy on real simulated downtime — and that the closed loop
// (log -> train -> deploy -> log) holds together.
#include <gtest/gtest.h>

#include "cluster/trace.h"
#include "core/policy_generator.h"
#include "core/recovery_manager.h"
#include "rl/policy.h"

namespace aer {
namespace {

PolicyGeneratorConfig FastGenerator() {
  PolicyGeneratorConfig config;
  config.trainer.max_sweeps = 15000;
  config.trainer.min_sweeps = 2500;
  return config;
}

TEST(OnlineDeploymentTest, HybridPolicyReducesRealDowntime) {
  // Phase 1: half a year of operations under the user-defined policy.
  TraceConfig config = TraceConfigForScale("small");
  const TraceDataset history = GenerateTrace(config);

  // Phase 2: learn a policy offline from that log.
  const PolicyGenerator generator(FastGenerator());
  const TrainedPolicy trained = generator.Generate(history.result.log);
  ASSERT_GT(trained.num_types(), 10u);

  // Phase 3: run the *next* period twice from identical initial conditions —
  // once under the user policy, once under the hybrid — and compare actual
  // downtime. New seed = new faults the policy has never seen.
  TraceConfig next = config;
  next.sim.seed = config.sim.seed + 1;

  ClusterSimulator sim_user(next.sim, MakeDefaultCatalog(next.catalog));
  UserDefinedPolicy user1(next.escalation);
  const SimulationResult under_user = sim_user.Run(user1);

  ClusterSimulator sim_hybrid(next.sim, MakeDefaultCatalog(next.catalog));
  UserDefinedPolicy user2(next.escalation);
  HybridPolicy hybrid(trained, user2);
  const SimulationResult under_hybrid = sim_hybrid.Run(hybrid);

  ASSERT_GT(under_user.processes_completed, 500);
  ASSERT_GT(under_hybrid.processes_completed, 500);

  // Faster recovery lets the same fleet absorb more incidents within the
  // horizon and the two runs' random streams diverge after the first
  // differing decision, so total downtime is not comparable — mean downtime
  // per completed process is.
  const double mean_user =
      static_cast<double>(under_user.total_downtime) /
      static_cast<double>(under_user.processes_completed);
  const double mean_hybrid =
      static_cast<double>(under_hybrid.total_downtime) /
      static_cast<double>(under_hybrid.processes_completed);
  const double ratio = mean_hybrid / mean_user;
  // The paper's replay-based estimate promises >10% savings; online, with
  // fresh stochasticity, we accept anything clearly better than parity.
  EXPECT_LT(ratio, 0.98) << "hybrid should reduce real mean downtime";
  EXPECT_GT(ratio, 0.5);

  // Per-fault check on the two best-sampled improvable faults: the stuck
  // service (catalog rank 0) must recover much faster under the hybrid.
  const auto mean_downtime_of_fault = [](const SimulationResult& result,
                                         int fault_index) {
    double total = 0.0;
    std::int64_t count = 0;
    for (const ProcessGroundTruth& gt : result.ground_truth) {
      if (gt.fault_index != fault_index) continue;
      total += static_cast<double>(gt.end - gt.start);
      ++count;
    }
    return count > 0 ? total / static_cast<double>(count) : 0.0;
  };
  const double stuck_user = mean_downtime_of_fault(under_user, 0);
  const double stuck_hybrid = mean_downtime_of_fault(under_hybrid, 0);
  ASSERT_GT(stuck_user, 0.0);
  ASSERT_GT(stuck_hybrid, 0.0);
  EXPECT_LT(stuck_hybrid / stuck_user, 0.85)
      << "REBOOT-first should sharply cut the stuck-service recovery time";
}

TEST(OnlineDeploymentTest, ClosedLoopRetrainsFromManagedLog) {
  // Drive a RecoveryManager by hand for a few incidents, then feed its log
  // back into the generator: the loop must produce a policy for the type it
  // observed.
  UserDefinedPolicy user;
  RecoveryManager manager(user);

  SimTime t = 0;
  for (int incident = 0; incident < 40; ++incident) {
    const MachineId m = incident % 7;
    manager.OnSymptom(t, m, "LoopSymptom");
    manager.OnSymptom(t + 5, m, "LoopSymptom-aux");
    // TRYNOP never cures; REBOOT always does.
    auto a = manager.OnRecoveryNeeded(t + 60, m);
    ASSERT_TRUE(a.has_value());
    SimTime now = t + 60;
    while (*a != RepairAction::kReboot) {
      now += 900;
      manager.OnActionResult(now, m, false);
      a = manager.OnRecoveryNeeded(now + 60, m);
      now += 60;
      ASSERT_TRUE(a.has_value());
    }
    now += 2400;
    manager.OnActionResult(now, m, true);
    t = now + 12 * kHour;  // outside the recurring window
  }
  ASSERT_EQ(manager.stats().processes_completed, 40);

  PolicyGeneratorConfig config = FastGenerator();
  config.mining.min_support = 2;
  const PolicyGenerator generator(config);
  PolicyGenerationReport report;
  const TrainedPolicy policy = generator.Generate(manager.log(), &report);
  ASSERT_EQ(policy.num_types(), 1u);
  const auto* entry = policy.FindType("LoopSymptom");
  ASSERT_NE(entry, nullptr);
  ASSERT_FALSE(entry->sequence.empty());
  EXPECT_EQ(entry->sequence.front(), RepairAction::kReboot)
      << "the loop should learn to skip the useless watch";
}

TEST(OnlineDeploymentTest, AdaptationAfterEnvironmentChange) {
  // The paper claims the approach "can adapt to the change of the
  // environment without human involvement": retrain on a log produced by a
  // *changed* catalog (the dominant fault now needs REIMAGE instead of
  // REBOOT) and check the policy follows.
  TraceConfig before = TraceConfigForScale("small");
  before.sim.num_machines = 200;
  before.sim.duration = 60 * kDay;

  TraceConfig after = before;
  after.catalog.seed = before.catalog.seed;  // same fault identities

  // Build the changed catalog: strengthen fault 0 to an OS-corruption-like
  // response (REBOOT no longer cures).
  FaultCatalog changed = MakeDefaultCatalog(after.catalog);
  changed.faults[0].responses[static_cast<std::size_t>(
      ActionIndex(RepairAction::kReboot))] = {0.05, 2400, 0.3};
  changed.faults[0].responses[static_cast<std::size_t>(
      ActionIndex(RepairAction::kTryNop))] = {0.02, 900, 0.3};
  changed.faults[0].Validate();

  ClusterSimulator sim(after.sim, changed);
  UserDefinedPolicy user(after.escalation);
  const SimulationResult result = sim.Run(user);

  const PolicyGenerator generator(FastGenerator());
  const TrainedPolicy policy = generator.Generate(result.log);
  const auto* entry = policy.FindType(changed.faults[0].primary_symptom);
  ASSERT_NE(entry, nullptr);
  ASSERT_FALSE(entry->sequence.empty());
  EXPECT_EQ(entry->sequence.front(), RepairAction::kReimage)
      << "after the environment change the policy must escalate straight to "
         "REIMAGE";
}

}  // namespace
}  // namespace aer
