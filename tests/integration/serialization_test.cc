// Serialization round trips at system scale: a full generated trace written
// to disk and re-read must drive the entire pipeline to identical results,
// and merged multi-period logs must behave like their concatenation.
#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "cluster/trace.h"
#include "core/policy_generator.h"
#include "log/log_stats.h"

namespace aer {
namespace {

TraceConfig TinyTrace(std::uint64_t seed_offset = 0) {
  TraceConfig config = TraceConfigForScale("small");
  config.sim.num_machines = 150;
  config.sim.duration = 45 * kDay;
  config.sim.seed += seed_offset;
  return config;
}

TEST(SerializationRoundTripTest, FullTraceThroughDisk) {
  const TraceDataset dataset = GenerateTrace(TinyTrace());
  const std::string path = ::testing::TempDir() + "/aer_trace_roundtrip.log";
  dataset.result.log.WriteFile(path);

  RecoveryLog reread;
  ASSERT_TRUE(RecoveryLog::ReadFile(path, reread));
  std::remove(path.c_str());

  ASSERT_EQ(reread.size(), dataset.result.log.size());
  // Symptom ids are re-interned in first-appearance order on read (the
  // simulator interned the whole catalog up-front), so compare entries up to
  // the id renaming — i.e., by rendered description.
  for (std::size_t i = 0; i < reread.size(); ++i) {
    const LogEntry& a = reread.entries()[i];
    const LogEntry& b = dataset.result.log.entries()[i];
    ASSERT_EQ(a.time, b.time) << "entry " << i;
    ASSERT_EQ(a.machine, b.machine) << "entry " << i;
    ASSERT_EQ(DescribeEntry(a, reread.symptoms()),
              DescribeEntry(b, dataset.result.log.symptoms()))
        << "entry " << i;
  }

  // Segmentation of the reread log matches exactly.
  const auto a = SegmentIntoProcesses(dataset.result.log);
  const auto b = SegmentIntoProcesses(reread);
  ASSERT_EQ(a.processes.size(), b.processes.size());
  for (std::size_t i = 0; i < a.processes.size(); ++i) {
    ASSERT_EQ(a.processes[i].downtime(), b.processes[i].downtime());
    ASSERT_EQ(a.processes[i].machine(), b.processes[i].machine());
  }
}

TEST(SerializationRoundTripTest, PolicyThroughDiskDrivesSameDecisions) {
  const TraceDataset dataset = GenerateTrace(TinyTrace());
  PolicyGeneratorConfig config;
  config.trainer.max_sweeps = 8000;
  config.trainer.min_sweeps = 2000;
  const PolicyGenerator generator(config);
  const TrainedPolicy policy = generator.Generate(dataset.result.log);

  const std::string path = ::testing::TempDir() + "/aer_policy_roundtrip.txt";
  {
    std::ofstream os(path);
    policy.Write(os);
  }
  TrainedPolicy reread;
  {
    std::ifstream is(path);
    ASSERT_TRUE(TrainedPolicy::Read(is, reread));
  }
  std::remove(path.c_str());

  ASSERT_EQ(reread.num_types(), policy.num_types());
  for (const auto& entry : policy.entries()) {
    // Identical lookups at every prefix.
    for (std::size_t len = 0; len <= entry.sequence.size(); ++len) {
      const std::span<const RepairAction> prefix(entry.sequence.data(), len);
      ASSERT_EQ(reread.Lookup(entry.symptom_name, prefix),
                policy.Lookup(entry.symptom_name, prefix));
    }
  }
}

TEST(LogMergeTest, MergedPeriodsEqualConcatenation) {
  const TraceDataset period1 = GenerateTrace(TinyTrace(0));
  const TraceDataset period2 = GenerateTrace(TinyTrace(99));

  RecoveryLog merged;
  merged.Merge(period1.result.log);
  merged.Merge(period2.result.log);
  merged.SortByTime();

  const auto seg1 = SegmentIntoProcesses(period1.result.log);
  const auto seg2 = SegmentIntoProcesses(period2.result.log);
  const auto seg_merged = SegmentIntoProcesses(merged);

  // Machines overlap across periods, so a machine healthy at the end of
  // period 1 simply accumulates both periods' processes; totals must add.
  // (Process counts add exactly because each period's log ends with all
  // machines recovered.)
  EXPECT_EQ(seg_merged.processes.size(),
            seg1.processes.size() + seg2.processes.size());
  EXPECT_EQ(TotalDowntime(seg_merged.processes),
            TotalDowntime(seg1.processes) + TotalDowntime(seg2.processes));

  // Symptom names survive the remap: every name in period 2 resolves in the
  // merged table.
  for (const LogEntry& e : period2.result.log.entries()) {
    if (e.kind != EntryKind::kSymptom) continue;
    const std::string& name =
        period2.result.log.symptoms().Name(e.symptom);
    EXPECT_NE(merged.symptoms().Find(name), kInvalidSymptom);
  }
}

TEST(LogMergeTest, RetrainingOnMergedHistoryUsesBothPeriods) {
  const TraceDataset period1 = GenerateTrace(TinyTrace(0));
  const TraceDataset period2 = GenerateTrace(TinyTrace(7));

  RecoveryLog merged;
  merged.Merge(period1.result.log);
  merged.Merge(period2.result.log);
  merged.SortByTime();

  PolicyGeneratorConfig config;
  config.trainer.max_sweeps = 6000;
  config.trainer.min_sweeps = 2000;
  const PolicyGenerator generator(config);
  PolicyGenerationReport merged_report;
  generator.Generate(merged, &merged_report);
  PolicyGenerationReport single_report;
  generator.Generate(period1.result.log, &single_report);

  EXPECT_GT(merged_report.total_processes, single_report.total_processes);
}

}  // namespace
}  // namespace aer
