// Default-scale calibration regression guard: the bands EXPERIMENTS.md
// reports are pinned here, so a change that silently shifts the reproduced
// figures out of the paper's shape fails the suite rather than the release.
// This is the only test that runs the full default-scale dataset; it is a
// single fixture shared across the assertions to keep suite time sane.
#include <gtest/gtest.h>

#include "cluster/trace.h"
#include "cluster/user_policy.h"
#include "eval/experiment.h"
#include "mining/symptom_clusters.h"
#include "sim/platform.h"

namespace aer {
namespace {

class CalibrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new TraceDataset(GenerateTrace(TraceConfigForScale("default")));
    const auto segmented = SegmentIntoProcesses(dataset_->result.log);
    all_ = new std::vector<RecoveryProcess>(segmented.processes);
    MPatternConfig mining;
    clustering_ = new SymptomClustering(*all_, mining);
    const NoiseFilterResult filtered =
        FilterNoisyProcesses(*all_, *clustering_);
    clean_fraction_ = filtered.clean_fraction;
    clean_ = new std::vector<RecoveryProcess>();
    for (std::size_t i : filtered.clean) clean_->push_back((*all_)[i]);

    ExperimentConfig config;
    config.trainer.max_sweeps = 40000;
    runner_ = new ExperimentRunner(*clean_, dataset_->result.log.symptoms(),
                                   config);
    result_ = new ExperimentResult(runner_->RunOne(0.4));
  }
  static void TearDownTestSuite() {
    delete result_;
    delete runner_;
    delete clean_;
    delete clustering_;
    delete all_;
    delete dataset_;
    result_ = nullptr;
    runner_ = nullptr;
    clean_ = nullptr;
    clustering_ = nullptr;
    all_ = nullptr;
    dataset_ = nullptr;
  }

  static TraceDataset* dataset_;
  static std::vector<RecoveryProcess>* all_;
  static SymptomClustering* clustering_;
  static double clean_fraction_;
  static std::vector<RecoveryProcess>* clean_;
  static ExperimentRunner* runner_;
  static ExperimentResult* result_;
};

TraceDataset* CalibrationTest::dataset_ = nullptr;
std::vector<RecoveryProcess>* CalibrationTest::all_ = nullptr;
SymptomClustering* CalibrationTest::clustering_ = nullptr;
double CalibrationTest::clean_fraction_ = 0.0;
std::vector<RecoveryProcess>* CalibrationTest::clean_ = nullptr;
ExperimentRunner* CalibrationTest::runner_ = nullptr;
ExperimentResult* CalibrationTest::result_ = nullptr;

TEST_F(CalibrationTest, Figure3Band) {
  // Paper: 96.67% cohesive at minp 0.1. Ours must stay in [0.95, 0.99].
  EXPECT_GT(clean_fraction_, 0.95);
  EXPECT_LT(clean_fraction_, 0.99);
}

TEST_F(CalibrationTest, Section41Bands) {
  // Paper: 97 error types, top 40 covering 98.68%.
  const ErrorTypeCatalog full(*clean_, 10000);
  EXPECT_GT(full.num_types(), 80u);
  EXPECT_LT(full.num_types(), 120u);
  const ErrorTypeCatalog top40(*clean_, 40);
  EXPECT_GT(top40.coverage(), 0.975);
}

TEST_F(CalibrationTest, Figure7Band) {
  // Paper: worst deviation < 5%, conservative.
  const ErrorTypeCatalog types(*clean_, 40);
  const SimulationPlatform platform(*clean_, types,
                                    dataset_->result.log.symptoms());
  UserDefinedPolicy user;
  double worst = 0.0;
  for (const auto& row : platform.ValidateAgainstLog(*clean_, user)) {
    if (row.process_count < 20) continue;
    EXPECT_GE(row.ratio, 0.99) << "type " << row.type;
    worst = std::max(worst, std::abs(row.ratio - 1.0));
  }
  EXPECT_LT(worst, 0.05);
}

TEST_F(CalibrationTest, HeadlineSavingsBand) {
  // Paper: trained 89.02% / hybrid 89.18% at 40% training ("more than 10%
  // savings"). Ours must save 8-20%.
  EXPECT_LT(result_->trained.overall_relative_cost, 0.92);
  EXPECT_GT(result_->trained.overall_relative_cost, 0.80);
  EXPECT_LT(result_->hybrid.overall_relative_cost, 0.92);
  EXPECT_GT(result_->hybrid.overall_relative_cost, 0.80);
  EXPECT_DOUBLE_EQ(result_->hybrid.overall_coverage, 1.0);
}

TEST_F(CalibrationTest, Figure8Shape) {
  // Most populated types near 1.0, at least three strongly improved.
  int near_one = 0;
  int improved = 0;
  int populated = 0;
  for (const TypeEvalRow& row : result_->trained.rows) {
    if (row.handled < 30) continue;
    ++populated;
    if (row.relative_cost < 0.8) ++improved;
    if (row.relative_cost > 0.92 && row.relative_cost < 1.08) ++near_one;
  }
  EXPECT_GE(populated, 25);
  EXPECT_GE(improved, 3);
  EXPECT_GT(near_one, populated / 2);
}

TEST_F(CalibrationTest, Figure10Band) {
  // Paper: coverage > 90% everywhere.
  EXPECT_GT(result_->trained.overall_coverage, 0.95);
  for (const TypeEvalRow& row : result_->trained.rows) {
    if (row.processes < 30) continue;
    EXPECT_GT(row.coverage, 0.85) << "type " << row.type;
  }
}

}  // namespace
}  // namespace aer
