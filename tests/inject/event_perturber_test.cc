#include "inject/event_perturber.h"

#include <gtest/gtest.h>

#include <sstream>

namespace aer {
namespace {

RecoveryLog MakeLog() {
  RecoveryLog log;
  const SymptomId watchdog = log.symptoms().Intern("Watchdog");
  const SymptomId disk = log.symptoms().Intern("DiskError");
  log.Append(LogEntry::Symptom(100, 1, watchdog));
  log.Append(LogEntry::Action(160, 1, RepairAction::kReboot));
  log.Append(LogEntry::Success(900, 1));
  log.Append(LogEntry::Symptom(200, 2, disk));
  log.Append(LogEntry::Action(260, 2, RepairAction::kReimage));
  log.Append(LogEntry::Success(5000, 2));
  log.SortByTime();
  return log;
}

std::string Render(const RecoveryLog& log) {
  std::ostringstream os;
  log.Write(os);
  return os.str();
}

TEST(EventPerturberTest, NoFaultsConfiguredIsIdentity) {
  const RecoveryLog log = MakeLog();
  const RecoveryLog out = PerturbLog(log, LogPerturbConfig{});
  EXPECT_EQ(Render(out), Render(log));
}

TEST(EventPerturberTest, SameSeedSamePerturbation) {
  const RecoveryLog log = MakeLog();
  LogPerturbConfig config;
  config.drop_symptom = 0.3;
  config.duplicate_entry = 0.3;
  config.delay_entry = 0.3;
  config.retry_action = 0.3;
  const RecoveryLog a = PerturbLog(log, config);
  const RecoveryLog b = PerturbLog(log, config);
  EXPECT_EQ(Render(a), Render(b));

  config.seed = 7;
  const RecoveryLog c = PerturbLog(log, config);
  EXPECT_NE(Render(c), Render(a));  // a different injection run
}

TEST(EventPerturberTest, DropOnlyRemovesSymptoms) {
  const RecoveryLog log = MakeLog();
  LogPerturbConfig config;
  config.drop_symptom = 1.0;
  LogPerturbStats stats;
  const RecoveryLog out = PerturbLog(log, config, &stats);
  EXPECT_EQ(stats.dropped, 2);
  ASSERT_EQ(out.size(), 4u);
  for (const LogEntry& entry : out.entries()) {
    EXPECT_NE(entry.kind, EntryKind::kSymptom);
  }
  // The symptom table survives total event loss: downstream consumers
  // still resolve ids by name.
  EXPECT_EQ(out.symptoms().size(), log.symptoms().size());
  EXPECT_NE(out.symptoms().Find("Watchdog"), kInvalidSymptom);
}

TEST(EventPerturberTest, DuplicatesAreCountedAndPresent) {
  const RecoveryLog log = MakeLog();
  LogPerturbConfig config;
  config.duplicate_entry = 1.0;
  LogPerturbStats stats;
  const RecoveryLog out = PerturbLog(log, config, &stats);
  EXPECT_EQ(stats.duplicated, static_cast<std::int64_t>(log.size()));
  EXPECT_EQ(out.size(), 2 * log.size());
}

TEST(EventPerturberTest, RetriesReemitActionsLater) {
  const RecoveryLog log = MakeLog();
  LogPerturbConfig config;
  config.retry_action = 1.0;
  config.retry_gap = 500;
  LogPerturbStats stats;
  const RecoveryLog out = PerturbLog(log, config, &stats);
  EXPECT_EQ(stats.retried, 2);  // one retry per action entry
  int actions = 0;
  for (const LogEntry& entry : out.entries()) {
    if (entry.kind == EntryKind::kAction) ++actions;
  }
  EXPECT_EQ(actions, 4);
}

TEST(EventPerturberTest, OutputIsTimeSorted) {
  const RecoveryLog log = MakeLog();
  LogPerturbConfig config;
  config.delay_entry = 0.8;
  config.max_delay = 10000;
  const RecoveryLog out = PerturbLog(log, config);
  for (std::size_t i = 1; i < out.size(); ++i) {
    EXPECT_LE(out.entries()[i - 1].time, out.entries()[i].time);
  }
}

}  // namespace
}  // namespace aer
