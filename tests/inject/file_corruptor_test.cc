#include "inject/file_corruptor.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace aer {
namespace {

const char kText[] =
    "100\tm1\terror:Watchdog\n"
    "160\tm1\tREBOOT\n"
    "900\tm1\tSuccess\n";

TEST(FileCorruptorTest, BitFlipPreservesLineStructure) {
  Rng rng(1);
  std::string text = kText;
  BitFlip(text, 20, rng);
  EXPECT_EQ(text.size(), sizeof(kText) - 1);
  EXPECT_NE(text, kText);
  const auto count_newlines = [](const std::string& s) {
    std::size_t n = 0;
    for (const char c : s) n += c == '\n';
    return n;
  };
  EXPECT_EQ(count_newlines(text), 3u);
}

TEST(FileCorruptorTest, BitFlipIsDeterministic) {
  std::string a = kText;
  std::string b = kText;
  Rng rng_a(42);
  Rng rng_b(42);
  BitFlip(a, 5, rng_a);
  BitFlip(b, 5, rng_b);
  EXPECT_EQ(a, b);
}

TEST(FileCorruptorTest, TruncateShortensButKeepsPrefix) {
  Rng rng(3);
  const std::string cut = TruncateRandomly(kText, rng);
  EXPECT_LT(cut.size(), sizeof(kText) - 1);
  EXPECT_GT(cut.size(), 0u);
  EXPECT_EQ(cut, std::string(kText).substr(0, cut.size()));
}

TEST(FileCorruptorTest, CorruptLinesZeroFractionIsIdentity) {
  Rng rng(4);
  EXPECT_EQ(CorruptLines(kText, 0.0, rng), kText);
}

TEST(FileCorruptorTest, CorruptLinesFullFractionDamagesEveryLine) {
  Rng rng(5);
  const std::string damaged = CorruptLines(kText, 1.0, rng);
  EXPECT_NE(damaged, kText);
  // Line count is preserved: damage is per line, not structural.
  std::size_t newlines = 0;
  for (const char c : damaged) newlines += c == '\n';
  EXPECT_EQ(newlines, 3u);
}

TEST(FileCorruptorTest, CorruptFileRewritesInPlace) {
  const std::string path =
      testing::TempDir() + "/file_corruptor_test_artifact.txt";
  {
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os << kText;
  }
  Rng rng(6);
  ASSERT_TRUE(CorruptFile(path, 1.0, /*truncate_probability=*/0.0, rng));
  std::ifstream is(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << is.rdbuf();
  EXPECT_NE(buffer.str(), kText);
  std::remove(path.c_str());
}

TEST(FileCorruptorTest, CorruptFileMissingFileFails) {
  Rng rng(7);
  EXPECT_FALSE(CorruptFile("/nonexistent/dir/nope.txt", 0.5, 0.5, rng));
}

}  // namespace
}  // namespace aer
