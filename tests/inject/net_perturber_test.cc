// NetPerturber unit contracts: scripted crash/restart and partition windows,
// symmetric vs asymmetric link semantics, probabilistic arms, and the
// no-RNG-when-disabled guarantee the ctrl determinism suite relies on.
#include "inject/net_perturber.h"

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace aer {
namespace {

TEST(NetPerturberTest, ScriptedCrashAndRestartToggleNodeLiveness) {
  NetFaultScript script;
  script.crashes.push_back({100, 1, 200});
  NetPerturber perturber(NetPerturbConfig{}, script);

  EXPECT_TRUE(perturber.NodeUp(1));
  EXPECT_TRUE(perturber.AdvanceTo(50).empty());
  const auto down = perturber.AdvanceTo(100);
  ASSERT_EQ(down.size(), 1u);
  EXPECT_EQ(down[0].kind, NetTransition::Kind::kCrash);
  EXPECT_EQ(down[0].node, 1);
  EXPECT_FALSE(perturber.NodeUp(1));

  // Messages to or from a down node are partition-dropped.
  EXPECT_FALSE(perturber.Route(150, 0, 1, 1).deliver);
  EXPECT_FALSE(perturber.Route(150, 1, 0, 1).deliver);
  EXPECT_EQ(perturber.stats().partition_drops, 2);

  const auto up = perturber.AdvanceTo(250);
  ASSERT_EQ(up.size(), 1u);
  EXPECT_EQ(up[0].kind, NetTransition::Kind::kRestart);
  EXPECT_TRUE(perturber.NodeUp(1));
  EXPECT_TRUE(perturber.Route(250, 0, 1, 1).deliver);
}

TEST(NetPerturberTest, SymmetricPartitionBlocksBothDirections) {
  NetFaultScript script;
  LinkPartition partition;
  partition.from = 10;
  partition.until = 20;
  partition.side_a = {0};
  partition.side_b = {1, 2};
  script.partitions.push_back(partition);
  NetPerturber perturber(NetPerturbConfig{}, script);

  perturber.AdvanceTo(10);
  EXPECT_FALSE(perturber.LinkOpen(0, 1));
  EXPECT_FALSE(perturber.LinkOpen(1, 0));
  EXPECT_FALSE(perturber.LinkOpen(0, 2));
  // Links within one side stay open, as does a node's self-link.
  EXPECT_TRUE(perturber.LinkOpen(1, 2));
  EXPECT_TRUE(perturber.LinkOpen(0, 0));

  perturber.AdvanceTo(20);  // heal
  EXPECT_TRUE(perturber.LinkOpen(0, 1));
  EXPECT_EQ(perturber.stats().partitions_started, 1);
  EXPECT_EQ(perturber.stats().partitions_healed, 1);
}

TEST(NetPerturberTest, AsymmetricPartitionBlocksOnlyAToB) {
  NetFaultScript script;
  LinkPartition partition;
  partition.from = 0;
  partition.until = 100;
  partition.side_a = {0};
  partition.side_b = {1};
  partition.asymmetric = true;
  script.partitions.push_back(partition);
  NetPerturber perturber(NetPerturbConfig{}, script);

  perturber.AdvanceTo(0);
  EXPECT_FALSE(perturber.LinkOpen(0, 1));  // a -> b lost
  EXPECT_TRUE(perturber.LinkOpen(1, 0));   // b -> a still flows
}

TEST(NetPerturberTest, CleanRouteAddsExactlyBaseLatency) {
  NetPerturber perturber(NetPerturbConfig{}, NetFaultScript{});
  const NetPerturber::Routing routing = perturber.Route(40, 0, 1, 3);
  EXPECT_TRUE(routing.deliver);
  EXPECT_EQ(routing.at, 43);
  EXPECT_FALSE(routing.duplicated);
}

TEST(NetPerturberTest, ProbabilisticArmsFireAndAreCounted) {
  NetPerturbConfig config;
  config.drop_message = 0.3;
  config.delay_message = 0.3;
  config.duplicate_message = 0.3;
  config.max_delay = 5;
  NetPerturber perturber(config, NetFaultScript{});
  obs::MetricsRegistry metrics;
  perturber.SetObservers(nullptr, &metrics);

  int delivered = 0;
  for (int i = 0; i < 1000; ++i) {
    const NetPerturber::Routing routing = perturber.Route(i, 0, 1, 1);
    if (!routing.deliver) continue;
    ++delivered;
    EXPECT_GE(routing.at, i + 1);
    EXPECT_LE(routing.at, i + 1 + config.max_delay);
    if (routing.duplicated) EXPECT_GT(routing.duplicate_at, routing.at);
  }
  const NetPerturber::Stats& stats = perturber.stats();
  EXPECT_GT(stats.random_drops, 0);
  EXPECT_GT(stats.delays, 0);
  EXPECT_GT(stats.duplicates, 0);
  EXPECT_EQ(delivered, 1000 - stats.random_drops);
  EXPECT_EQ(
      metrics.GetCounter("aer_inject_net_msgs_dropped_total").value(),
      stats.random_drops);
  EXPECT_EQ(
      metrics.GetCounter("aer_inject_net_msgs_delayed_total").value(),
      stats.delays);
  EXPECT_EQ(
      metrics.GetCounter("aer_inject_net_msgs_duplicated_total").value(),
      stats.duplicates);
}

TEST(NetPerturberTest, DisabledArmsConsumeNoRngAcrossTrafficVolumes) {
  // Two perturbers, same seed, very different traffic volume: with every
  // probability at 0 their (later) probabilistic draws would still agree —
  // proven here by enabling an arm afterwards via a third instance is
  // impossible, so instead assert routing is pure passthrough for both.
  NetPerturber a(NetPerturbConfig{}, NetFaultScript{});
  NetPerturber b(NetPerturbConfig{}, NetFaultScript{});
  for (int i = 0; i < 5; ++i) {
    const NetPerturber::Routing routing = a.Route(i, 0, 1, 1);
    EXPECT_TRUE(routing.deliver);
    EXPECT_EQ(routing.at, i + 1);
    EXPECT_FALSE(routing.duplicated);
  }
  for (int i = 0; i < 500; ++i) {
    const NetPerturber::Routing routing = b.Route(i, 0, 1, 1);
    EXPECT_TRUE(routing.deliver);
    EXPECT_EQ(routing.at, i + 1);
    EXPECT_FALSE(routing.duplicated);
  }
  EXPECT_EQ(a.stats().random_drops + a.stats().delays + a.stats().duplicates,
            0);
  EXPECT_EQ(b.stats().random_drops + b.stats().delays + b.stats().duplicates,
            0);
}

TEST(NetPerturberTest, TransitionsCountIntoCoordinatorMetrics) {
  NetFaultScript script;
  script.crashes.push_back({10, 0, 20});
  LinkPartition partition;
  partition.from = 30;
  partition.until = 40;
  partition.side_a = {0};
  partition.side_b = {1};
  script.partitions.push_back(partition);
  NetPerturber perturber(NetPerturbConfig{}, script);
  obs::MetricsRegistry metrics;
  perturber.SetObservers(nullptr, &metrics);

  perturber.AdvanceTo(50);
  EXPECT_EQ(
      metrics.GetCounter("aer_inject_coordinator_crashes_total").value(), 1);
  EXPECT_EQ(
      metrics.GetCounter("aer_inject_coordinator_restarts_total").value(), 1);
  EXPECT_EQ(
      metrics.GetCounter("aer_inject_partitions_started_total").value(), 1);
  EXPECT_EQ(
      metrics.GetCounter("aer_inject_partitions_healed_total").value(), 1);
}

}  // namespace
}  // namespace aer
