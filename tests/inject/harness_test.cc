// Acceptance tests for the degraded-operation ladder: every harness run at
// the default severities must terminate with every machine cured, whatever
// combination of event loss, duplication, delay, hung actions, and lying
// success reports is injected.
#include "inject/harness.h"

#include <gtest/gtest.h>

#include "cluster/user_policy.h"
#include "obs/metrics.h"

namespace aer {
namespace {

// With `distinct_machines` every incident hits its own machine (one sick
// episode each); otherwise incidents pile onto 7 machines, so overlapping
// incidents merge into fewer-but-harder episodes — good stress, but the
// cure count then undershoots the incident count by design.
std::vector<HarnessIncident> MakeIncidents(int count,
                                           bool distinct_machines = false) {
  std::vector<HarnessIncident> incidents;
  const char* symptoms[] = {"Watchdog", "DiskError", "EventLog", "NicDown"};
  for (int i = 0; i < count; ++i) {
    HarnessIncident incident;
    incident.time = 100 + i * 700;
    incident.machine = distinct_machines ? i : i % 7;
    incident.symptom = symptoms[i % 4];
    incident.cure_strength = i % kNumActions;
    incidents.push_back(incident);
  }
  return incidents;
}

RecoveryManagerConfig HardenedConfig() {
  RecoveryManagerConfig config;
  // Longer than the slowest honest action (8h RMA), so only injected hangs
  // ever hit the deadline.
  config.action_timeout = 10 * kHour;
  config.flap_threshold = 6;
  config.flap_window = 12 * kHour;
  return config;
}

TEST(InjectionHarnessTest, CleanRunCompletesEverything) {
  UserDefinedPolicy policy;
  InjectionHarness harness(policy, HardenedConfig(), HarnessConfig{});
  const HarnessResult result =
      harness.Run(MakeIncidents(20, /*distinct_machines=*/true));
  EXPECT_TRUE(result.all_completed);
  EXPECT_EQ(result.cures, 20);
  EXPECT_EQ(result.hangs_injected, 0);
  EXPECT_EQ(result.manager.actions_timed_out, 0);
}

TEST(InjectionHarnessTest, SurvivesEventLoss) {
  UserDefinedPolicy policy;
  HarnessConfig config;
  config.drop_event = 0.5;
  InjectionHarness harness(policy, HardenedConfig(), config);
  const HarnessResult result = harness.Run(MakeIncidents(20));
  EXPECT_TRUE(result.all_completed);
  EXPECT_GT(result.events_dropped, 0);
}

TEST(InjectionHarnessTest, SurvivesDuplicationAndDelay) {
  UserDefinedPolicy policy;
  HarnessConfig config;
  config.duplicate_event = 0.5;
  config.delay_event = 0.5;
  config.max_delay = 600;
  InjectionHarness harness(policy, HardenedConfig(), config);
  const HarnessResult result = harness.Run(MakeIncidents(20));
  EXPECT_TRUE(result.all_completed);
  EXPECT_GT(result.events_duplicated, 0);
  EXPECT_GT(result.events_delayed, 0);
  // The manager absorbed at least some of the duplicates.
  EXPECT_GT(result.manager.duplicate_symptoms +
                result.manager.out_of_order_events,
            0);
}

TEST(InjectionHarnessTest, SurvivesHangingActions) {
  UserDefinedPolicy policy;
  HarnessConfig config;
  config.hang_action = 0.4;
  InjectionHarness harness(policy, HardenedConfig(), config);
  const HarnessResult result = harness.Run(MakeIncidents(20));
  EXPECT_TRUE(result.all_completed);
  EXPECT_GT(result.hangs_injected, 0);
  EXPECT_EQ(result.manager.actions_timed_out, result.hangs_injected);
}

TEST(InjectionHarnessTest, SurvivesFalseSuccessReports) {
  UserDefinedPolicy policy;
  HarnessConfig config;
  config.false_success = 0.5;
  InjectionHarness harness(policy, HardenedConfig(), config);
  const HarnessResult result = harness.Run(MakeIncidents(20));
  EXPECT_TRUE(result.all_completed);
  EXPECT_GT(result.false_successes_injected, 0);
}

TEST(InjectionHarnessTest, SurvivesEverythingAtOnce) {
  // The acceptance scenario: all injection arms on simultaneously at the
  // documented default severities (docs/ROBUSTNESS.md).
  UserDefinedPolicy policy;
  HarnessConfig config;
  config.drop_event = 0.2;
  config.duplicate_event = 0.2;
  config.delay_event = 0.2;
  config.hang_action = 0.2;
  config.false_success = 0.2;
  InjectionHarness harness(policy, HardenedConfig(), config);
  const HarnessResult result = harness.Run(MakeIncidents(40));
  EXPECT_TRUE(result.all_completed);
  EXPECT_EQ(harness.manager().open_process_count(), 0u);
  // Every injected hang was recovered through the timeout path.
  EXPECT_GE(result.manager.actions_timed_out, result.hangs_injected);
}

TEST(InjectionHarnessTest, DeterministicAcrossRuns) {
  HarnessConfig config;
  config.drop_event = 0.2;
  config.duplicate_event = 0.2;
  config.delay_event = 0.2;
  config.hang_action = 0.2;
  config.false_success = 0.2;

  UserDefinedPolicy policy_a;
  InjectionHarness harness_a(policy_a, HardenedConfig(), config);
  const HarnessResult a = harness_a.Run(MakeIncidents(25));

  UserDefinedPolicy policy_b;
  InjectionHarness harness_b(policy_b, HardenedConfig(), config);
  const HarnessResult b = harness_b.Run(MakeIncidents(25));

  EXPECT_EQ(a.end_time, b.end_time);
  EXPECT_EQ(a.events_processed, b.events_processed);
  EXPECT_EQ(a.hangs_injected, b.hangs_injected);
  EXPECT_EQ(a.manager.actions_taken, b.manager.actions_taken);
  EXPECT_EQ(a.manager.total_downtime, b.manager.total_downtime);
}

TEST(InjectionHarnessTest, ReorderDepthTracksDelayedDeliveries) {
  UserDefinedPolicy policy;
  HarnessConfig config;
  config.delay_event = 1.0;  // every emission slips
  config.max_delay = 600;
  InjectionHarness harness(policy, HardenedConfig(), config);
  obs::MetricsRegistry metrics;
  harness.SetObservers(nullptr, &metrics);
  const HarnessResult result = harness.Run(MakeIncidents(20));

  EXPECT_TRUE(result.all_completed);
  ASSERT_GT(result.events_delayed, 0);
  // Delayed deliveries overtake other traffic: the depth accounting must
  // see at least one reordering, the max bounds every sample, and the
  // stat metric mirrors the same samples one-to-one.
  EXPECT_GT(result.reorder_depth_max, 0);
  EXPECT_GE(result.reorder_depth_sum, result.reorder_depth_max);
  const RunningStat stat =
      metrics.GetStat("aer_inject_reorder_depth").Snapshot();
  EXPECT_EQ(stat.count(), result.events_delayed);
  EXPECT_EQ(static_cast<std::int64_t>(stat.max()),
            result.reorder_depth_max);
  EXPECT_EQ(static_cast<std::int64_t>(stat.sum()),
            result.reorder_depth_sum);
}

TEST(InjectionHarnessTest, PerArmInjectionCountsMirrorIntoMetrics) {
  UserDefinedPolicy policy;
  HarnessConfig config;
  config.drop_event = 0.2;
  config.duplicate_event = 0.2;
  config.delay_event = 0.2;
  config.hang_action = 0.2;
  config.false_success = 0.2;
  InjectionHarness harness(policy, HardenedConfig(), config);
  obs::MetricsRegistry metrics;
  harness.SetObservers(nullptr, &metrics);
  const HarnessResult result = harness.Run(MakeIncidents(40));

  EXPECT_TRUE(result.all_completed);
  const auto counter = [&metrics](const char* name) {
    return metrics.GetCounter(name).value();
  };
  EXPECT_EQ(counter("aer_inject_incidents_total"), result.incidents);
  EXPECT_EQ(counter("aer_inject_cures_total"), result.cures);
  EXPECT_EQ(counter("aer_inject_events_dropped_total"),
            result.events_dropped);
  EXPECT_EQ(counter("aer_inject_events_duplicated_total"),
            result.events_duplicated);
  EXPECT_EQ(counter("aer_inject_events_delayed_total"),
            result.events_delayed);
  EXPECT_EQ(counter("aer_inject_hangs_total"), result.hangs_injected);
  EXPECT_EQ(counter("aer_inject_false_successes_total"),
            result.false_successes_injected);
}

TEST(InjectionHarnessTest, EventBudgetTurnsLivelockIntoAFailureReport) {
  UserDefinedPolicy policy;
  HarnessConfig config;
  config.max_events = 50;  // far too small for 20 incidents
  InjectionHarness harness(policy, HardenedConfig(), config);
  const HarnessResult result = harness.Run(MakeIncidents(20));
  EXPECT_FALSE(result.all_completed);
  EXPECT_EQ(result.events_processed, 51u);
}

}  // namespace
}  // namespace aer
