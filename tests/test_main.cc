// Shared gtest main for every aer test binary. Identical to gtest_main
// except that when AER_FLIGHT_RECORD_DIR names a directory (CI sets it), a
// flight recorder is installed, so a test that CHECK-fails or dies on a
// fatal signal leaves a crash dump the workflow uploads as an artifact.
// The dump path embeds the pid: ctest runs binaries in parallel, and death
// tests fork children that may dump independently.
#include <unistd.h>

#include <cstdlib>
#include <string>

#include "gtest/gtest.h"
#include "obs/flight_recorder.h"

int main(int argc, char** argv) {
  testing::InitGoogleTest(&argc, argv);
  if (const char* dir = std::getenv("AER_FLIGHT_RECORD_DIR");
      dir != nullptr && dir[0] != '\0') {
    aer::obs::FlightRecorder::Install(
        {.path = std::string(dir) + "/flight_" + std::to_string(getpid()) +
                 ".json"},
        nullptr, nullptr, nullptr);
  }
  return RUN_ALL_TESTS();
}
