// The paper's three hypotheses about recovery processes (Section 3.3), which
// let the offline platform infer what *would* have happened had a different
// action sequence been tried against a logged incident:
//
//  1. A successful recovery needs at least the process's "correct" repair
//     actions — the last action plus any stronger actions in the process.
//  2. A stronger action can replace a weaker one (it performs a superset of
//     the weaker action's effects).
//  3. Recovery processes of different errors are independent.
#ifndef AER_SIM_HYPOTHESES_H_
#define AER_SIM_HYPOTHESES_H_

#include <span>
#include <vector>

#include "log/recovery_process.h"

namespace aer {

// Hypothesis 1: the multiset of repair actions required to cure the
// incident behind `process` — every occurrence whose strength is at least
// the last (curing) action's strength. This covers both of the paper's
// cases: the last action itself and any stronger actions in the process,
// and it keeps repeated same-strength failures as separate requirements so
// that replaying the process's own action sequence cures exactly at its
// last step (the property Figure 7's validation relies on). Sorted by
// descending strength.
std::vector<RepairAction> CorrectActions(const RecoveryProcess& process);

// Hypothesis 2: true if the executed actions cover the required ones — an
// injective assignment where each required action is matched by a distinct
// executed action of at least its strength.
bool CoversRequirements(std::span<const RepairAction> executed,
                        std::span<const RepairAction> required);

}  // namespace aer

#endif  // AER_SIM_HYPOTHESES_H_
