#include "sim/capability.h"

#include <vector>

#include "common/check.h"

namespace aer {

const CapabilityModel& CapabilityModel::TotalOrder() {
  static const CapabilityModel model = [] {
    CapabilityModel m;
    for (int e = 0; e < kNumActions; ++e) {
      for (int r = 0; r < kNumActions; ++r) {
        m.covers_[static_cast<std::size_t>(e)][static_cast<std::size_t>(r)] =
            e >= r;
      }
    }
    m.Validate();
    return m;
  }();
  return model;
}

const CapabilityModel& CapabilityModel::IdentityOnly() {
  static const CapabilityModel model = [] {
    CapabilityModel m;
    for (int e = 0; e < kNumActions; ++e) {
      m.covers_[static_cast<std::size_t>(e)][static_cast<std::size_t>(e)] =
          true;
    }
    // Manual repair remains the top element.
    const auto rma = static_cast<std::size_t>(ActionIndex(RepairAction::kRma));
    for (int r = 0; r < kNumActions; ++r) {
      m.covers_[rma][static_cast<std::size_t>(r)] = true;
    }
    m.Validate();
    return m;
  }();
  return model;
}

CapabilityModel CapabilityModel::FromMatrix(
    const std::array<std::array<bool, kNumActions>, kNumActions>& covers) {
  CapabilityModel m;
  m.covers_ = covers;
  m.Validate();
  return m;
}

void CapabilityModel::Validate() const {
  for (int a = 0; a < kNumActions; ++a) {
    AER_CHECK(covers_[static_cast<std::size_t>(a)]
                     [static_cast<std::size_t>(a)]);  // reflexive
    AER_CHECK(covers_[static_cast<std::size_t>(ActionIndex(
        RepairAction::kRma))][static_cast<std::size_t>(a)]);
  }
}

bool CoversRequirementsUnder(std::span<const RepairAction> executed,
                             std::span<const RepairAction> required,
                             const CapabilityModel& model) {
  if (required.empty()) return true;
  if (required.size() > executed.size()) return false;

  // Augmenting-path bipartite matching: requirement i may match executed j
  // iff model.Covers(executed[j], required[i]).
  std::vector<int> match_of_executed(executed.size(), -1);
  std::vector<bool> visited;

  // Standard Kuhn's algorithm.
  struct Dfs {
    std::span<const RepairAction> executed;
    std::span<const RepairAction> required;
    const CapabilityModel& model;
    std::vector<int>& match_of_executed;
    std::vector<bool>& visited;

    bool Augment(std::size_t req) {
      for (std::size_t j = 0; j < executed.size(); ++j) {
        if (visited[j] || !model.Covers(executed[j], required[req])) continue;
        visited[j] = true;
        if (match_of_executed[j] == -1 ||
            Augment(static_cast<std::size_t>(match_of_executed[j]))) {
          match_of_executed[j] = static_cast<int>(req);
          return true;
        }
      }
      return false;
    }
  };

  for (std::size_t i = 0; i < required.size(); ++i) {
    visited.assign(executed.size(), false);
    Dfs dfs{executed, required, model, match_of_executed, visited};
    if (!dfs.Augment(i)) return false;
  }
  return true;
}

}  // namespace aer
