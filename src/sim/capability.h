// Generalized action-relationship model — the paper's future-work item
// "introducing more complicated relationships among actions" (Section 7).
//
// Hypothesis 2 assumes a total order: a stronger action can always replace a
// weaker one. Real repair actions are not always nested (a REIMAGE wipes
// the disk but does not power-cycle a wedged NIC the way a REBOOT does).
// CapabilityModel captures an arbitrary reflexive "covers" relation with
// manual repair as the universal top element; the total order remains the
// default used everywhere unless a caller opts in.
#ifndef AER_SIM_CAPABILITY_H_
#define AER_SIM_CAPABILITY_H_

#include <array>
#include <span>

#include "log/action.h"

namespace aer {

class CapabilityModel {
 public:
  // The paper's hypothesis 2: covers(a, b) <=> strength(a) >= strength(b).
  static const CapabilityModel& TotalOrder();

  // Only an action of the same kind (or manual repair) replaces an action:
  // hypothesis 2 switched off, used by the ablation bench.
  static const CapabilityModel& IdentityOnly();

  // Arbitrary relation; Validate()d: must be reflexive and RMA must cover
  // everything (manual repair fixes anything a machine action fixes).
  static CapabilityModel FromMatrix(
      const std::array<std::array<bool, kNumActions>, kNumActions>& covers);

  // True if executing `executed` satisfies a requirement for `required`.
  bool Covers(RepairAction executed, RepairAction required) const {
    return covers_[static_cast<std::size_t>(ActionIndex(executed))]
                  [static_cast<std::size_t>(ActionIndex(required))];
  }

  void Validate() const;

 private:
  CapabilityModel() = default;
  std::array<std::array<bool, kNumActions>, kNumActions> covers_ = {};
};

// Hypothesis 1+2 under an arbitrary capability model: is there an injective
// assignment of requirements to executed actions such that each requirement
// is covered? Solved by augmenting-path bipartite matching (inputs are tiny:
// at most N=20 a side). The two-argument overload in hypotheses.h is the
// total-order fast path.
bool CoversRequirementsUnder(std::span<const RepairAction> executed,
                             std::span<const RepairAction> required,
                             const CapabilityModel& model);

}  // namespace aer

#endif  // AER_SIM_CAPABILITY_H_
