#include "sim/replay.h"

#include "common/check.h"

namespace aer {

ProcessReplay::ProcessReplay(const RecoveryProcess& process, ErrorTypeId type,
                             const CostEstimator& estimator,
                             const CapabilityModel& capabilities)
    : process_(process),
      type_(type),
      estimator_(estimator),
      capabilities_(capabilities),
      required_(CorrectActions(process)) {
  for (const ActionAttempt& attempt : process.attempts()) {
    occurrence_costs_[static_cast<std::size_t>(ActionIndex(attempt.action))]
        .push_back(static_cast<double>(attempt.cost));
  }
  Reset();
}

void ProcessReplay::Reset() {
  consumed_ = {};
  executed_.clear();
  cured_ = false;
  total_cost_ = static_cast<double>(process_.detection_delay());
}

ProcessReplay::StepResult ProcessReplay::Step(RepairAction action) {
  AER_CHECK(!cured_) << "Step(" << ActionName(action)
                     << ") after the process was already cured";
  executed_.push_back(action);

  // Cure check first, so the cost estimate can be outcome-conditional.
  const bool cured =
      action == RepairAction::kRma ||
      CoversRequirementsUnder(executed_, required_, capabilities_);

  // Price the step: actual logged cost when this occurrence of the action
  // exists in the process, per-type average otherwise.
  const auto idx = static_cast<std::size_t>(ActionIndex(action));
  double cost;
  if (consumed_[idx] < occurrence_costs_[idx].size()) {
    cost = occurrence_costs_[idx][consumed_[idx]];
    ++consumed_[idx];
  } else {
    cost = estimator_.EstimateCost(type_, action, cured);
  }

  cured_ = cured;
  total_cost_ += cost;
  return {cost, cured};
}

}  // namespace aer
