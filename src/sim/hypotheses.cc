#include "sim/hypotheses.h"

#include <algorithm>

#include "common/check.h"

namespace aer {

std::vector<RepairAction> CorrectActions(const RecoveryProcess& process) {
  AER_CHECK(!process.attempts().empty());
  const RepairAction last = process.final_action();
  std::vector<RepairAction> required;
  for (const ActionAttempt& attempt : process.attempts()) {
    if (ActionStrength(attempt.action) >= ActionStrength(last)) {
      required.push_back(attempt.action);
    }
  }
  std::sort(required.begin(), required.end(),
            [](RepairAction a, RepairAction b) {
              return ActionStrength(a) > ActionStrength(b);
            });
  return required;
}

bool CoversRequirements(std::span<const RepairAction> executed,
                        std::span<const RepairAction> required) {
  if (required.size() > executed.size()) return false;
  std::vector<RepairAction> exec(executed.begin(), executed.end());
  std::vector<RepairAction> req(required.begin(), required.end());
  const auto stronger_first = [](RepairAction a, RepairAction b) {
    return ActionStrength(a) > ActionStrength(b);
  };
  std::sort(exec.begin(), exec.end(), stronger_first);
  std::sort(req.begin(), req.end(), stronger_first);
  // Greedy matching over a total order: pair the strongest requirement with
  // the strongest executed action, and so on. If any pair fails, no
  // injective assignment exists.
  for (std::size_t i = 0; i < req.size(); ++i) {
    if (!AtLeastAsStrong(exec[i], req[i])) return false;
  }
  return true;
}

}  // namespace aer
