// The simulation platform facade (Section 4.2): cost estimation plus whole-
// policy replay over logged processes, and the self-validation experiment of
// Figure 7.
//
// Holds references to the processes' symptom table and the error-type
// catalog; both must outlive the platform.
#ifndef AER_SIM_PLATFORM_H_
#define AER_SIM_PLATFORM_H_

#include <span>
#include <vector>

#include "cluster/policy.h"
#include "obs/metrics.h"
#include "sim/replay.h"

namespace aer {

class SimulationPlatform {
 public:
  // Builds the cost estimator from `processes` (typically the split the
  // policy will be evaluated on, so both compared policies are priced from
  // the same statistics).
  SimulationPlatform(std::span<const RecoveryProcess> processes,
                     const ErrorTypeCatalog& types,
                     const SymptomTable& symptoms,
                     int max_actions_per_process = 20,
                     const CapabilityModel& capabilities =
                         CapabilityModel::TotalOrder());

  const CostEstimator& estimator() const { return estimator_; }
  const ErrorTypeCatalog& types() const { return types_; }
  const SymptomTable& symptoms() const { return symptoms_; }
  int max_actions_per_process() const { return max_actions_; }
  const CapabilityModel& capabilities() const { return capabilities_; }

  struct ReplayOutcome {
    double cost = 0.0;
    int steps = 0;
    // The N-cap forced a manual repair.
    bool forced_manual = false;
  };

  // Replays `policy` against one logged incident: the policy is consulted
  // exactly as online (but without machine history), each chosen action is
  // priced by ProcessReplay, and the paper's N-cap forces RMA at the last
  // slot. `process` must classify to a valid type of the platform's catalog.
  ReplayOutcome ReplayPolicy(const RecoveryProcess& process,
                             RecoveryPolicy& policy) const;

  // Optional observability sink: each ReplayPolicy call feeds the
  // aer_replay_* counters and the cost histogram. Only commutative metric
  // updates are emitted, so parallel evaluation (any interleaving of
  // replays) yields byte-identical snapshots. The registry must outlive
  // the platform.
  void SetMetrics(obs::MetricsRegistry* metrics);

  struct ValidationRow {
    ErrorTypeId type = kInvalidErrorType;
    double actual_cost = 0.0;     // summed logged downtime
    double estimated_cost = 0.0;  // summed replayed cost
    double ratio = 0.0;           // estimated / actual
    std::int64_t process_count = 0;
  };

  // The Figure 7 experiment: replays `policy` (the user-defined policy that
  // produced the log) over `processes` and reports the per-type ratio of
  // estimated to actual total cost. Ratios near 1.0 validate the platform's
  // hypotheses; the paper's biggest deviation is below 5%.
  std::vector<ValidationRow> ValidateAgainstLog(
      std::span<const RecoveryProcess> processes,
      RecoveryPolicy& policy) const;

 private:
  // Cached handles resolved once in SetMetrics so the (const) replay path
  // never takes the registry lock. The pointed-to metrics are thread-safe.
  struct ObsMetrics {
    obs::Counter* replays = nullptr;
    obs::Counter* forced_manual = nullptr;
    obs::Histogram* cost = nullptr;
  };

  const ErrorTypeCatalog& types_;
  const SymptomTable& symptoms_;
  CostEstimator estimator_;
  int max_actions_;
  const CapabilityModel& capabilities_;
  ObsMetrics obs_;
};

}  // namespace aer

#endif  // AER_SIM_PLATFORM_H_
