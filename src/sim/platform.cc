#include "sim/platform.h"

#include "common/check.h"

namespace aer {

SimulationPlatform::SimulationPlatform(
    std::span<const RecoveryProcess> processes, const ErrorTypeCatalog& types,
    const SymptomTable& symptoms, int max_actions_per_process,
    const CapabilityModel& capabilities)
    : types_(types),
      symptoms_(symptoms),
      estimator_(processes, types),
      max_actions_(max_actions_per_process),
      capabilities_(capabilities) {
  AER_CHECK_GE(max_actions_, 1);
}

SimulationPlatform::ReplayOutcome SimulationPlatform::ReplayPolicy(
    const RecoveryProcess& process, RecoveryPolicy& policy) const {
  const ErrorTypeId type = types_.Classify(process);
  ProcessReplay replay(process, type, estimator_, capabilities_);

  std::vector<RepairAction> tried;
  ReplayOutcome outcome;
  while (!replay.cured()) {
    RepairAction action;
    if (static_cast<int>(tried.size()) >= max_actions_ - 1) {
      action = RepairAction::kRma;  // the paper's N-cap: request manual repair
      outcome.forced_manual = true;
    } else {
      RecoveryContext ctx;
      ctx.machine = process.machine();
      ctx.initial_symptom = process.initial_symptom();
      ctx.initial_symptom_name = symptoms_.Name(process.initial_symptom());
      ctx.tried = tried;
      ctx.process_start = process.start_time();
      ctx.now = process.start_time() + static_cast<SimTime>(replay.total_cost());
      ctx.last_recovery_end = -1;  // machine history is not in the log
      action = policy.ChooseAction(ctx);
    }
    replay.Step(action);
    tried.push_back(action);
  }
  outcome.cost = replay.total_cost();
  outcome.steps = replay.steps();
  if (obs_.replays != nullptr) {
    obs_.replays->Inc();
    if (outcome.forced_manual) obs_.forced_manual->Inc();
    obs_.cost->Observe(outcome.cost);
  }
  return outcome;
}

void SimulationPlatform::SetMetrics(obs::MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    obs_ = ObsMetrics{};
    return;
  }
  obs_.replays = &metrics->GetCounter("aer_replay_total");
  obs_.forced_manual = &metrics->GetCounter("aer_replay_forced_manual_total");
  obs_.cost = &metrics->GetHistogram("aer_replay_cost_seconds");
}

std::vector<SimulationPlatform::ValidationRow>
SimulationPlatform::ValidateAgainstLog(
    std::span<const RecoveryProcess> processes, RecoveryPolicy& policy) const {
  std::vector<ValidationRow> rows(types_.num_types());
  for (std::size_t t = 0; t < rows.size(); ++t) {
    rows[t].type = static_cast<ErrorTypeId>(t);
  }
  for (const RecoveryProcess& p : processes) {
    if (p.attempts().empty()) continue;  // nothing to replay
    const ErrorTypeId type = types_.Classify(p);
    if (type == kInvalidErrorType) continue;
    ValidationRow& row = rows[static_cast<std::size_t>(type)];
    row.actual_cost += static_cast<double>(p.downtime());
    row.estimated_cost += ReplayPolicy(p, policy).cost;
    ++row.process_count;
  }
  for (ValidationRow& row : rows) {
    row.ratio = row.actual_cost > 0 ? row.estimated_cost / row.actual_cost
                                    : 0.0;
  }
  return rows;
}

}  // namespace aer
