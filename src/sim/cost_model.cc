#include "sim/cost_model.h"

#include "cluster/fault_catalog.h"
#include "common/check.h"

namespace aer {

void TypeCostModel::AddProcess(const RecoveryProcess& process) {
  ++process_count_;
  detection_delay_.Add(static_cast<double>(process.detection_delay()));
  for (const ActionAttempt& attempt : process.attempts()) {
    ActionCostStats& s =
        stats_[static_cast<std::size_t>(ActionIndex(attempt.action))];
    (attempt.cured ? s.success : s.fail)
        .Add(static_cast<double>(attempt.cost));
  }
}

CostEstimator::CostEstimator(std::span<const RecoveryProcess> processes,
                             const ErrorTypeCatalog& types)
    : models_(types.num_types()) {
  for (const RecoveryProcess& p : processes) {
    const ErrorTypeId t = types.Classify(p);
    if (t != kInvalidErrorType) {
      models_[static_cast<std::size_t>(t)].AddProcess(p);
    }
    global_.AddProcess(p);
  }
  // Priors: the catalog's documented default durations. Only reached when an
  // action appears nowhere in the log at all.
  const ActionDurationDefaults d;
  priors_ = {d.trynop_s, d.reboot_s, d.reimage_s, d.rma_s};
}

const TypeCostModel& CostEstimator::type_model(ErrorTypeId type) const {
  AER_CHECK_GE(type, 0);
  AER_CHECK_LT(static_cast<std::size_t>(type), models_.size());
  return models_[static_cast<std::size_t>(type)];
}

namespace {

// Outcome-specific mean if sampled, else the combined mean, else nullopt.
double StatsMeanOr(const ActionCostStats& s, bool success, double fallback,
                   bool* found) {
  const RunningStat& preferred = success ? s.success : s.fail;
  if (preferred.count() > 0) {
    *found = true;
    return preferred.mean();
  }
  const RunningStat& other = success ? s.fail : s.success;
  if (other.count() > 0) {
    *found = true;
    return other.mean();
  }
  *found = false;
  return fallback;
}

}  // namespace

double CostEstimator::EstimateCost(ErrorTypeId type, RepairAction action,
                                   bool success) const {
  bool found = false;
  if (type >= 0 && static_cast<std::size_t>(type) < models_.size()) {
    const double v = StatsMeanOr(type_model(type).stats(action), success, 0.0,
                                 &found);
    if (found) return v;
  }
  const double v = StatsMeanOr(global_.stats(action), success, 0.0, &found);
  if (found) return v;
  return priors_[static_cast<std::size_t>(ActionIndex(action))];
}

bool CostEstimator::ObservedForType(ErrorTypeId type,
                                    RepairAction action) const {
  return type_model(type).Observed(action);
}

std::vector<RepairAction> CostEstimator::ObservedActions(
    ErrorTypeId type) const {
  std::vector<RepairAction> out;
  for (RepairAction a : kAllActions) {
    if (ObservedForType(type, a)) out.push_back(a);
  }
  return out;
}

}  // namespace aer
