// Per-error-type action cost statistics extracted from a recovery log
// (Section 3.3): for each (error type, action) the average cost of attempts
// that cured the machine and of attempts that did not. The estimator falls
// back from type-specific statistics to global ones to fixed priors, so a
// replay can always price an action.
#ifndef AER_SIM_COST_MODEL_H_
#define AER_SIM_COST_MODEL_H_

#include <array>
#include <span>
#include <vector>

#include "common/stats.h"
#include "mining/error_type.h"
#include "log/recovery_process.h"

namespace aer {

// Cost statistics of one action against one error type (or globally).
struct ActionCostStats {
  RunningStat success;  // attempts after which the machine reported healthy
  RunningStat fail;
  std::int64_t observations() const {
    return success.count() + fail.count();
  }
};

// Statistics for all actions of one error type.
class TypeCostModel {
 public:
  void AddProcess(const RecoveryProcess& process);

  const ActionCostStats& stats(RepairAction a) const {
    return stats_[static_cast<std::size_t>(ActionIndex(a))];
  }
  bool Observed(RepairAction a) const { return stats(a).observations() > 0; }
  const RunningStat& detection_delay() const { return detection_delay_; }
  std::int64_t process_count() const { return process_count_; }

 private:
  std::array<ActionCostStats, kNumActions> stats_;
  RunningStat detection_delay_;
  std::int64_t process_count_ = 0;
};

// The full estimator: per-type models plus a global model plus priors.
class CostEstimator {
 public:
  // Builds models from `processes`, classifying each via `types`; processes
  // of unknown type contribute to the global model only.
  CostEstimator(std::span<const RecoveryProcess> processes,
                const ErrorTypeCatalog& types);

  // Expected cost of `action` on error type `type` given the (simulated)
  // outcome. Falls back type -> global -> prior and, within a level, from
  // the outcome-specific average to the combined one.
  double EstimateCost(ErrorTypeId type, RepairAction action,
                      bool success) const;

  // True if the action was observed at least once for this type — the
  // paper's restriction that makes the learned policy only *locally*
  // optimal: actions never tried by the original policy have no cost data
  // and cannot be explored.
  bool ObservedForType(ErrorTypeId type, RepairAction action) const;

  // The explorable action set of a type, ascending strength.
  std::vector<RepairAction> ObservedActions(ErrorTypeId type) const;

  const TypeCostModel& type_model(ErrorTypeId type) const;
  const TypeCostModel& global_model() const { return global_; }

  std::size_t num_types() const { return models_.size(); }

 private:
  std::vector<TypeCostModel> models_;  // indexed by ErrorTypeId
  TypeCostModel global_;
  std::array<double, kNumActions> priors_;
};

}  // namespace aer

#endif  // AER_SIM_COST_MODEL_H_
