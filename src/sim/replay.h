// Replay of an alternative action sequence against one logged incident.
//
// This is the heart of the simulation platform (Section 4.2): given a
// recovery process from the log, ProcessReplay answers "what would executing
// this action next have cost, and would it have cured the machine?" under
// the three hypotheses:
//   - the incident is cured once the executed actions cover the process's
//     correct-action set (last action + stronger-in-process), with stronger
//     actions allowed to substitute weaker ones;
//   - an executed action is priced by its actual cost in the logged process
//     when the process contains an (unconsumed) occurrence of it, otherwise
//     by the per-type average success / failing cost;
//   - manual repair (RMA) always ends the process.
#ifndef AER_SIM_REPLAY_H_
#define AER_SIM_REPLAY_H_

#include <array>
#include <vector>

#include "sim/capability.h"
#include "sim/cost_model.h"
#include "sim/hypotheses.h"

namespace aer {

class ProcessReplay {
 public:
  // `type` is the error type used for average-cost lookups; pass the
  // estimator's classification of `process`. `capabilities` chooses the
  // action-substitution relation (default: the paper's hypothesis-2 total
  // order) and must outlive the replay.
  ProcessReplay(const RecoveryProcess& process, ErrorTypeId type,
                const CostEstimator& estimator,
                const CapabilityModel& capabilities =
                    CapabilityModel::TotalOrder());

  struct StepResult {
    double cost = 0.0;
    bool cured = false;
  };

  // Executes `action` as the next repair action of the simulated recovery.
  // Must not be called after the process is cured.
  StepResult Step(RepairAction action);

  bool cured() const { return cured_; }
  int steps() const { return static_cast<int>(executed_.size()); }

  // Detection delay + all step costs so far: the simulated downtime, on the
  // same footing as RecoveryProcess::downtime().
  double total_cost() const { return total_cost_; }

  const std::vector<RepairAction>& executed() const { return executed_; }

  // Restarts the replay of the same process.
  void Reset();

 private:
  const RecoveryProcess& process_;
  ErrorTypeId type_;
  const CostEstimator& estimator_;
  const CapabilityModel& capabilities_;
  std::vector<RepairAction> required_;

  // Actual costs of each action's occurrences in the logged process, in
  // order; consumed as the replay executes matching actions.
  std::array<std::vector<double>, kNumActions> occurrence_costs_;
  std::array<std::size_t, kNumActions> consumed_ = {};

  std::vector<RepairAction> executed_;
  bool cured_ = false;
  double total_cost_ = 0.0;
};

}  // namespace aer

#endif  // AER_SIM_REPLAY_H_
