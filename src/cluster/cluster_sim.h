// Discrete-event simulator of a large cluster under automatic recovery.
//
// This is the substitute for the paper's production environment: thousands
// of machines, Poisson fault arrivals drawn from the fault catalog, symptom
// emission, fault detection after a monitoring delay, and a recovery loop
// driven by a pluggable RecoveryPolicy. Every observable event is appended
// to a RecoveryLog in the paper's <time, machine, description> format; the
// ground truth (which fault actually occurred) is returned separately and is
// used only by tests and calibration, never by the learning pipeline.
//
// The simulator enforces the paper's process cap: the N-th repair action of
// a process is always manual repair (RMA), which ends the process.
#ifndef AER_CLUSTER_CLUSTER_SIM_H_
#define AER_CLUSTER_CLUSTER_SIM_H_

#include <cstdint>
#include <vector>

#include "cluster/fault_model.h"
#include "cluster/policy.h"
#include "common/rng.h"
#include "log/recovery_log.h"
#include "obs/metrics.h"

namespace aer {

struct ClusterSimConfig {
  int num_machines = 2000;
  // Faults stop arriving after this horizon; open processes drain to
  // completion so the log contains whole processes.
  SimTime duration = 180 * kDay;
  // Per-machine mean time between faults.
  double machine_mtbf_days = 20.0;

  // Monitoring/detection latency from first symptom to first action
  // (log-normal).
  double mean_detection_delay_s = 300.0;
  double detection_delay_sigma = 0.5;

  // Decision latency between observing a failed action and starting the
  // next one (uniform seconds); shows up in per-action log costs as
  // observation overhead, which the paper notes is "not that negligible".
  SimTime min_decision_gap_s = 60;
  SimTime max_decision_gap_s = 300;

  // The paper's N: a process is ended by manual repair at this many actions.
  int max_actions_per_process = 20;

  // Probability that a process also emits the primary symptom of an
  // unrelated fault (a true concurrent error). Off by default: even a few
  // such processes destroy the polluted fault's symptom cluster at high
  // minp, which is unrealistic for the paper's data; the catalog's generic
  // symptoms model the noisy ~3% instead. Enabled by the noise-ablation
  // bench and by robustness tests.
  double cross_fault_noise_probability = 0.0;

  // Probability of re-emitting a symptom after each failed repair action
  // (Table 1 shows symptoms between actions).
  double symptom_reemit_probability = 0.7;

  // Machine heterogeneity: each machine gets a repair-speed factor drawn
  // uniformly from [1 - spread, 1 + spread] that scales all its action
  // durations (old SKUs reimage slower). 0 = homogeneous fleet (default);
  // the robustness bench raises it to stress the per-type cost averages.
  double machine_speed_spread = 0.0;

  // Arrival-rate seasonality: the fleet fault rate is modulated by
  //   1 + diurnal_amplitude * sin(2π t / day),
  // approximating the load-correlated fault pattern of a production
  // cluster. 0 (default) = homogeneous Poisson. Amplitude must be < 1.
  // Implemented by thinning, so the *mean* rate is unchanged.
  double diurnal_amplitude = 0.0;

  std::uint64_t seed = 42;
};

// Ground truth for one completed recovery process.
struct ProcessGroundTruth {
  MachineId machine = 0;
  SimTime start = 0;  // primary-symptom time == process start
  SimTime end = 0;    // Success time
  int fault_index = -1;
  // Process emitted symptoms outside its fault's own set (generic machine
  // noise or a concurrent unrelated fault) — the mining stage should filter
  // most of these.
  bool noisy = false;
};

struct SimulationResult {
  RecoveryLog log;
  // Sorted by (start, machine): the same order SegmentIntoProcesses yields,
  // so ground_truth[i] describes processes[i].
  std::vector<ProcessGroundTruth> ground_truth;
  std::int64_t fault_arrivals_skipped = 0;  // whole fleet was down
  std::int64_t processes_completed = 0;
  SimTime total_downtime = 0;
};

class ClusterSimulator {
 public:
  ClusterSimulator(ClusterSimConfig config, FaultCatalog catalog);

  // Runs one full simulation. Deterministic for a given (config seed,
  // catalog, policy); the policy is invoked in deterministic event order.
  SimulationResult Run(RecoveryPolicy& policy);

  // Optional observability sink. Each Run() folds its SimulationResult into
  // aer_sim_* counters at the end of the simulation (docs/OBSERVABILITY.md);
  // the simulation itself is untouched, so instrumented and uninstrumented
  // runs produce identical logs. The registry must outlive the simulator.
  void SetMetrics(obs::MetricsRegistry* metrics) { metrics_ = metrics; }

  const FaultCatalog& catalog() const { return catalog_; }

 private:
  ClusterSimConfig config_;
  FaultCatalog catalog_;
  obs::MetricsRegistry* metrics_ = nullptr;
};

}  // namespace aer

#endif  // AER_CLUSTER_CLUSTER_SIM_H_
