#include "cluster/trace.h"

#include <cstdlib>

namespace aer {

TraceDataset GenerateTrace(const TraceConfig& config) {
  TraceDataset dataset;
  dataset.catalog = MakeDefaultCatalog(config.catalog);
  ClusterSimulator sim(config.sim, dataset.catalog);
  UserDefinedPolicy policy(config.escalation);
  dataset.result = sim.Run(policy);
  return dataset;
}

TraceConfig TraceConfigForScale(std::string_view scale) {
  TraceConfig config;
  if (scale == "small") {
    config.sim.num_machines = 400;
    config.sim.duration = 90 * kDay;
  } else if (scale == "large") {
    config.sim.num_machines = 5000;
    config.sim.duration = 180 * kDay;
  }  // "default": 2000 machines, 180 days
  return config;
}

TraceConfig TraceConfigFromEnv() {
  const char* scale = std::getenv("AER_SCALE");
  return TraceConfigForScale(scale != nullptr ? scale : "default");
}

}  // namespace aer
