// One-call generation of a complete synthetic recovery-log dataset: build
// the default fault catalog, run the cluster simulator under the
// user-defined policy, return the log plus ground truth. This is the
// stand-in for "collect half a year of logs from the production cluster".
#ifndef AER_CLUSTER_TRACE_H_
#define AER_CLUSTER_TRACE_H_

#include <string_view>

#include "cluster/cluster_sim.h"
#include "cluster/fault_catalog.h"
#include "cluster/user_policy.h"

namespace aer {

struct TraceConfig {
  CatalogConfig catalog;
  ClusterSimConfig sim;
  EscalationConfig escalation;
};

struct TraceDataset {
  FaultCatalog catalog;
  SimulationResult result;
};

TraceDataset GenerateTrace(const TraceConfig& config = {});

// Scales the simulated fleet/time: "small" for unit tests (~2k processes),
// "default" for benches (~18k), "large" for overnight runs (~45k).
TraceConfig TraceConfigForScale(std::string_view scale);

// Reads AER_SCALE from the environment ("default" if unset/unknown).
TraceConfig TraceConfigFromEnv();

}  // namespace aer

#endif  // AER_CLUSTER_TRACE_H_
