// The user-defined recovery policy of the production system (Section 4.1):
// "mainly tries the cheapest action enabled by the state".
//
// Concretely: escalate through the actions in strength order, allowing a
// bounded number of tries per level, then fall through to manual repair
// (RMA). The *online* instance additionally consults machine history — a
// machine that failed again shortly after a recovery skips the TRYNOP level,
// because watching it again is known to be futile. That history is not part
// of the recovery log, so the offline replay of this policy (used to
// validate the simulation platform, Figure 7) runs without it; the small
// divergence this causes is exactly the paper's "we could only expect an
// approximate result".
#ifndef AER_CLUSTER_USER_POLICY_H_
#define AER_CLUSTER_USER_POLICY_H_

#include <array>

#include "cluster/policy.h"

namespace aer {

struct EscalationConfig {
  // Maximum tries of each action level within one recovery process; RMA is
  // effectively unlimited (it always cures in practice).
  std::array<int, kNumActions> max_tries = {1, 2, 2, 1000};
  // A process starting within this window after the machine's previous
  // recovery skips level 0 (recurring failure; online only).
  SimTime recurring_failure_window = 6 * kHour;
};

class UserDefinedPolicy final : public RecoveryPolicy {
 public:
  explicit UserDefinedPolicy(EscalationConfig config = {});

  RepairAction ChooseAction(const RecoveryContext& context) override;

  std::string_view name() const override { return "user-defined"; }

  const EscalationConfig& config() const { return config_; }

 private:
  EscalationConfig config_;
};

}  // namespace aer

#endif  // AER_CLUSTER_USER_POLICY_H_
