#include "cluster/cluster_sim.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "common/check.h"
#include "common/profiler.h"

namespace aer {
namespace {

enum class EventKind : int {
  kFaultArrival = 0,
  kSymptom = 1,
  kChooseAction = 2,  // detection complete or decision gap elapsed
  kActionDone = 3,
};

struct Event {
  SimTime time = 0;
  std::uint64_t seq = 0;  // tie-break: strict FIFO among equal times
  EventKind kind = EventKind::kFaultArrival;
  MachineId machine = 0;
  int process_seq = 0;       // guards stale per-machine events
  SymptomId symptom = kInvalidSymptom;  // kSymptom
  RepairAction action = RepairAction::kTryNop;  // kActionDone
};

struct EventLater {
  bool operator()(const Event& a, const Event& b) const {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }
};

struct MachineState {
  bool healthy = true;
  double speed = 1.0;  // action-duration multiplier (machine heterogeneity)
  int process_seq = 0;
  int fault_index = -1;
  bool noisy = false;
  std::vector<RepairAction> tried;
  std::vector<SymptomId> emitted;  // realized symptoms (for re-emission)
  SimTime process_start = 0;
  SimTime last_action_start = 0;
  SimTime last_recovery_end = -1;
  int pool_pos = -1;  // index in the healthy pool, -1 if not in it
};

}  // namespace

ClusterSimulator::ClusterSimulator(ClusterSimConfig config,
                                   FaultCatalog catalog)
    : config_(config), catalog_(std::move(catalog)) {
  AER_CHECK_GT(config_.num_machines, 0);
  AER_CHECK_GT(config_.duration, 0);
  AER_CHECK_GT(config_.machine_mtbf_days, 0.0);
  AER_CHECK_GE(config_.max_actions_per_process, 1);
  AER_CHECK_LE(config_.min_decision_gap_s, config_.max_decision_gap_s);
  AER_CHECK_GE(config_.diurnal_amplitude, 0.0);
  AER_CHECK_LT(config_.diurnal_amplitude, 1.0);
  catalog_.Validate();
}

SimulationResult ClusterSimulator::Run(RecoveryPolicy& policy) {
  AER_PROFILE_SCOPE("sim_run");
  SimulationResult result;
  Rng rng(config_.seed);

  // Intern all catalog symptom names up-front so ids are stable regardless
  // of emission order.
  SymptomTable& symtab = result.log.symptoms();
  std::vector<SymptomId> primary(catalog_.faults.size());
  std::vector<std::vector<SymptomId>> aux(catalog_.faults.size());
  for (std::size_t f = 0; f < catalog_.faults.size(); ++f) {
    primary[f] = symtab.Intern(catalog_.faults[f].primary_symptom);
    for (const SecondarySymptom& s : catalog_.faults[f].secondary_symptoms) {
      aux[f].push_back(symtab.Intern(s.name));
    }
  }
  std::vector<SymptomId> generic(catalog_.generic_symptoms.size());
  for (std::size_t g = 0; g < catalog_.generic_symptoms.size(); ++g) {
    generic[g] = symtab.Intern(catalog_.generic_symptoms[g].name);
  }

  // Fault sampling: cumulative rates.
  std::vector<double> cum_rate;
  cum_rate.reserve(catalog_.faults.size());
  double total_rate = 0.0;
  for (const FaultType& f : catalog_.faults) {
    total_rate += f.relative_rate;
    cum_rate.push_back(total_rate);
  }

  std::vector<MachineState> machines(
      static_cast<std::size_t>(config_.num_machines));
  std::vector<MachineId> healthy_pool(
      static_cast<std::size_t>(config_.num_machines));
  for (int m = 0; m < config_.num_machines; ++m) {
    healthy_pool[static_cast<std::size_t>(m)] = m;
    machines[static_cast<std::size_t>(m)].pool_pos = m;
    if (config_.machine_speed_spread > 0.0) {
      machines[static_cast<std::size_t>(m)].speed =
          std::max(0.1, 1.0 + config_.machine_speed_spread *
                                  (2.0 * rng.NextDouble() - 1.0));
    }
  }
  // Live count of machines currently down, so fleet-down detection is an
  // O(1) comparison that stays valid even if the healthy pool is replaced
  // by a different victim-selection structure.
  int num_down = 0;
  const auto pool_remove = [&](MachineId m) {
    MachineState& st = machines[static_cast<std::size_t>(m)];
    AER_CHECK_GE(st.pool_pos, 0);
    const MachineId last = healthy_pool.back();
    healthy_pool[static_cast<std::size_t>(st.pool_pos)] = last;
    machines[static_cast<std::size_t>(last)].pool_pos = st.pool_pos;
    healthy_pool.pop_back();
    st.pool_pos = -1;
    ++num_down;
  };
  const auto pool_add = [&](MachineId m) {
    MachineState& st = machines[static_cast<std::size_t>(m)];
    AER_CHECK_EQ(st.pool_pos, -1);
    st.pool_pos = static_cast<int>(healthy_pool.size());
    healthy_pool.push_back(m);
    --num_down;
  };

  std::priority_queue<Event, std::vector<Event>, EventLater> queue;
  std::uint64_t seq = 0;
  const auto push = [&](Event e) {
    e.seq = seq++;
    queue.push(e);
  };

  // Global Poisson fault arrivals across the fleet; the optional diurnal
  // modulation is applied by thinning against the peak rate, which keeps
  // the mean rate equal to fleet_rate.
  const double fleet_rate =  // faults per second across all machines
      static_cast<double>(config_.num_machines) /
      (config_.machine_mtbf_days * static_cast<double>(kDay));
  const double peak_rate = fleet_rate * (1.0 + config_.diurnal_amplitude);
  const auto accept_arrival = [&](SimTime t) {
    if (config_.diurnal_amplitude == 0.0) return true;
    const double rate =
        fleet_rate *
        (1.0 + config_.diurnal_amplitude *
                   std::sin(2.0 * 3.14159265358979323846 *
                            static_cast<double>(t % kDay) /
                            static_cast<double>(kDay)));
    return rng.NextDouble() < rate / peak_rate;
  };
  const auto schedule_next_arrival = [&](SimTime now) {
    const SimTime dt =
        std::max<SimTime>(1, static_cast<SimTime>(
                                 rng.NextExponential(1.0 / peak_rate)));
    if (now + dt <= config_.duration) {
      push({.time = now + dt, .kind = EventKind::kFaultArrival});
    }
  };
  schedule_next_arrival(0);

  const auto sample_fault = [&]() -> std::size_t {
    const double u = rng.NextDouble() * total_rate;
    const auto it = std::lower_bound(cum_rate.begin(), cum_rate.end(), u);
    return static_cast<std::size_t>(
        std::min<std::ptrdiff_t>(it - cum_rate.begin(),
                                 static_cast<std::ptrdiff_t>(cum_rate.size()) - 1));
  };

  // Chooses and initiates the next repair action for a machine in recovery.
  const auto start_action = [&](SimTime now, MachineId m) {
    MachineState& st = machines[static_cast<std::size_t>(m)];
    const FaultType& fault =
        catalog_.faults[static_cast<std::size_t>(st.fault_index)];

    RepairAction action;
    if (static_cast<int>(st.tried.size()) >=
        config_.max_actions_per_process - 1) {
      // The paper's N cap: end the process by requesting manual repair.
      action = RepairAction::kRma;
    } else {
      RecoveryContext ctx;
      ctx.machine = m;
      ctx.initial_symptom = primary[static_cast<std::size_t>(st.fault_index)];
      ctx.initial_symptom_name = fault.primary_symptom;
      ctx.tried = st.tried;
      ctx.process_start = st.process_start;
      ctx.now = now;
      ctx.last_recovery_end = st.last_recovery_end;
      action = policy.ChooseAction(ctx);
    }

    st.tried.push_back(action);
    st.last_action_start = now;
    result.log.Append(LogEntry::Action(now, m, action));
    const ActionResponse& resp =
        fault.responses[static_cast<std::size_t>(ActionIndex(action))];
    const SimTime duration = std::max<SimTime>(
        1, static_cast<SimTime>(
               st.speed * rng.NextLogNormalWithMean(resp.mean_duration_s,
                                                    resp.duration_sigma)));
    push({.time = now + duration,
          .kind = EventKind::kActionDone,
          .machine = m,
          .process_seq = st.process_seq,
          .action = action});
  };

  while (!queue.empty()) {
    AER_PROFILE_SCOPE("sim_step");
    const Event e = queue.top();
    queue.pop();

    switch (e.kind) {
      case EventKind::kFaultArrival: {
        schedule_next_arrival(e.time);
        if (!accept_arrival(e.time)) break;  // thinned (off-peak)
        if (num_down == config_.num_machines) {  // whole fleet is down
          AER_DCHECK(healthy_pool.empty());
          ++result.fault_arrivals_skipped;
          break;
        }
        const MachineId m = healthy_pool[rng.NextBounded(healthy_pool.size())];
        pool_remove(m);
        MachineState& st = machines[static_cast<std::size_t>(m)];
        st.healthy = false;
        ++st.process_seq;
        st.fault_index = static_cast<int>(sample_fault());
        st.noisy = false;
        st.tried.clear();
        st.emitted.clear();
        st.process_start = e.time;

        const std::size_t f = static_cast<std::size_t>(st.fault_index);
        const FaultType& fault = catalog_.faults[f];

        // Primary symptom opens the process.
        result.log.Append(LogEntry::Symptom(e.time, m, primary[f]));
        st.emitted.push_back(primary[f]);

        // Detection completes after the monitoring delay; all secondary
        // symptoms land inside that window.
        const SimTime detect_delay = std::max<SimTime>(
            30, static_cast<SimTime>(rng.NextLogNormalWithMean(
                    config_.mean_detection_delay_s,
                    config_.detection_delay_sigma)));
        for (std::size_t a = 0; a < fault.secondary_symptoms.size(); ++a) {
          if (!rng.NextBool(fault.secondary_symptoms[a].probability)) continue;
          const SimTime offset = 1 + static_cast<SimTime>(rng.NextBounded(
                                         static_cast<std::uint64_t>(
                                             std::max<SimTime>(detect_delay - 1, 1))));
          push({.time = e.time + offset,
                .kind = EventKind::kSymptom,
                .machine = m,
                .process_seq = st.process_seq,
                .symptom = aux[f][a]});
          st.emitted.push_back(aux[f][a]);
        }

        // Generic machine-level noise symptoms (Section 3.1's noisy cases).
        for (std::size_t g = 0; g < generic.size(); ++g) {
          if (!rng.NextBool(catalog_.generic_symptoms[g].probability)) continue;
          st.noisy = true;
          const SimTime offset = 1 + static_cast<SimTime>(rng.NextBounded(
                                         static_cast<std::uint64_t>(
                                             std::max<SimTime>(detect_delay - 1, 1))));
          push({.time = e.time + offset,
                .kind = EventKind::kSymptom,
                .machine = m,
                .process_seq = st.process_seq,
                .symptom = generic[g]});
        }

        // Optional true cross-fault noise: symptoms of an unrelated fault
        // leak into this process (concurrent error on the same machine).
        if (rng.NextBool(config_.cross_fault_noise_probability)) {
          const std::size_t other = sample_fault();
          if (other != f) {
            st.noisy = true;
            const SimTime offset = 1 + static_cast<SimTime>(rng.NextBounded(
                                           static_cast<std::uint64_t>(
                                               std::max<SimTime>(detect_delay - 1, 1))));
            push({.time = e.time + offset,
                  .kind = EventKind::kSymptom,
                  .machine = m,
                  .process_seq = st.process_seq,
                  .symptom = primary[other]});
          }
        }

        push({.time = e.time + detect_delay,
              .kind = EventKind::kChooseAction,
              .machine = m,
              .process_seq = st.process_seq});
        break;
      }

      case EventKind::kSymptom: {
        const MachineState& st = machines[static_cast<std::size_t>(e.machine)];
        if (st.healthy || st.process_seq != e.process_seq) break;  // stale
        result.log.Append(LogEntry::Symptom(e.time, e.machine, e.symptom));
        break;
      }

      case EventKind::kChooseAction: {
        MachineState& st = machines[static_cast<std::size_t>(e.machine)];
        if (st.healthy || st.process_seq != e.process_seq) break;
        start_action(e.time, e.machine);
        break;
      }

      case EventKind::kActionDone: {
        MachineState& st = machines[static_cast<std::size_t>(e.machine)];
        if (st.healthy || st.process_seq != e.process_seq) break;
        const FaultType& fault =
            catalog_.faults[static_cast<std::size_t>(st.fault_index)];
        const double cure_p =
            fault.responses[static_cast<std::size_t>(ActionIndex(e.action))]
                .cure_probability;
        const bool cured = rng.NextBool(cure_p);

        // Result monitoring: report the outcome to the policy (the tried
        // span excludes the action whose outcome is being reported).
        {
          RecoveryContext ctx;
          ctx.machine = e.machine;
          ctx.initial_symptom =
              primary[static_cast<std::size_t>(st.fault_index)];
          ctx.initial_symptom_name = fault.primary_symptom;
          AER_CHECK(!st.tried.empty());
          ctx.tried = std::span<const RepairAction>(st.tried.data(),
                                                    st.tried.size() - 1);
          ctx.process_start = st.process_start;
          ctx.now = e.time;
          ctx.last_recovery_end = st.last_recovery_end;
          policy.OnActionOutcome(ctx, e.action,
                                 e.time - st.last_action_start, cured);
        }

        if (cured) {
          result.log.Append(LogEntry::Success(e.time, e.machine));
          result.ground_truth.push_back({.machine = e.machine,
                                         .start = st.process_start,
                                         .end = e.time,
                                         .fault_index = st.fault_index,
                                         .noisy = st.noisy});
          ++result.processes_completed;
          result.total_downtime += e.time - st.process_start;
          st.healthy = true;
          st.last_recovery_end = e.time;
          pool_add(e.machine);
          break;
        }
        // Failed: often another symptom shows up while the operators watch,
        // then the next action is chosen after a decision gap.
        if (rng.NextBool(config_.symptom_reemit_probability) &&
            !st.emitted.empty()) {
          const SymptomId s =
              st.emitted[rng.NextBounded(st.emitted.size())];
          const SimTime offset = 5 + static_cast<SimTime>(rng.NextBounded(50));
          push({.time = e.time + offset,
                .kind = EventKind::kSymptom,
                .machine = e.machine,
                .process_seq = st.process_seq,
                .symptom = s});
        }
        const SimTime gap =
            config_.min_decision_gap_s +
            static_cast<SimTime>(rng.NextBounded(static_cast<std::uint64_t>(
                config_.max_decision_gap_s - config_.min_decision_gap_s + 1)));
        push({.time = e.time + gap,
              .kind = EventKind::kChooseAction,
              .machine = e.machine,
              .process_seq = st.process_seq});
        break;
      }
    }
  }

  result.log.SortByTime();
  std::stable_sort(result.ground_truth.begin(), result.ground_truth.end(),
                   [](const ProcessGroundTruth& a, const ProcessGroundTruth& b) {
                     if (a.start != b.start) return a.start < b.start;
                     return a.machine < b.machine;
                   });

  if (metrics_ != nullptr) {
    metrics_->GetCounter("aer_sim_processes_total")
        .Inc(result.processes_completed);
    metrics_->GetCounter("aer_sim_faults_skipped_total")
        .Inc(result.fault_arrivals_skipped);
    metrics_->GetCounter("aer_sim_downtime_seconds_total")
        .Inc(result.total_downtime);
  }
  return result;
}

}  // namespace aer
