// Hierarchical timing wheel for the fleet-scale cluster simulator.
//
// The seed engine (cluster_sim.cc) drives the simulation off a binary heap:
// every push and pop costs O(log n) comparisons and a cache-hostile sift.
// At fleet scale (10^6 machines, millions of in-flight events) the scheduler
// is the hot path, so this is the classic O(1) alternative: six wheels of 64
// slots each, level l covering time deltas in [64^l, 64^(l+1)) ticks. An
// event lands in the slot addressed by its timestamp's level-l digit; when
// the clock crosses a level boundary the matching higher-level slot cascades
// down, re-bucketing its events one level lower. Popping advances a cursor
// tick by tick (jumping over provably empty spans), so schedule and pop are
// amortized O(1) regardless of how many events are pending.
//
// Determinism contract (docs/FLEET_SIM.md): events pop in strictly
// ascending (time, tie, id) order, where `tie` is a caller-supplied 64-bit
// key and `id` the schedule-order sequence number. The compat engine passes
// a global push counter as the tie — reproducing the seed heap's
// (time, push-seq) order bit for bit — and the sharded engine packs
// (machine, kind, per-machine seq) into it, giving the (time, machine, kind)
// tie-break that makes shard execution independent of thread schedule.
// Cascading never reorders: equal-time events are re-sorted by (tie, id)
// when their slot drains, so the pop order is a pure function of the
// scheduled set, not of insertion history or wheel geometry.
#ifndef AER_CLUSTER_EVENT_WHEEL_H_
#define AER_CLUSTER_EVENT_WHEEL_H_

#include <array>
#include <cstdint>
#include <unordered_set>
#include <vector>

#include "common/check.h"
#include "common/sim_time.h"
#include "log/action.h"
#include "log/log_entry.h"

namespace aer {

// The event vocabulary of the fleet simulator; mirrors the seed engine's
// private event kinds (cluster_sim.cc) so the compat mode can replay them.
enum class FleetEventKind : std::uint8_t {
  kFaultArrival = 0,
  kSymptom = 1,
  kChooseAction = 2,  // detection complete or decision gap elapsed
  kActionDone = 3,
};

inline constexpr int kNumFleetEventKinds = 4;

struct FleetEvent {
  FleetEventKind kind = FleetEventKind::kFaultArrival;
  MachineId machine = 0;
  std::uint32_t process_seq = 0;  // guards stale per-machine events
  SymptomId symptom = kInvalidSymptom;          // kSymptom
  RepairAction action = RepairAction::kTryNop;  // kActionDone
};

// Handle for Cancel/Reschedule. Ids are assigned in Schedule() order
// starting at 1; 0 never names an event.
using EventId = std::uint64_t;
inline constexpr EventId kInvalidEventId = 0;

struct ScheduledEvent {
  SimTime time = 0;
  std::uint64_t tie = 0;
  EventId id = kInvalidEventId;
  FleetEvent event;
};

class EventWheel {
 public:
  static constexpr int kSlotBits = 6;
  static constexpr std::size_t kSlots = std::size_t{1} << kSlotBits;
  static constexpr int kLevels = 6;
  // Maximum schedulable distance from now(): 64^6 ticks (~2180 years of
  // sim-seconds) — far beyond any simulated horizon, checked in Schedule().
  static constexpr SimTime kHorizon = SimTime{1} << (kSlotBits * kLevels);

  explicit EventWheel(SimTime start = 0);

  // Schedules an event at `time` (>= now()). Events at equal times pop in
  // ascending (tie, id) order. Returns the event's handle.
  EventId Schedule(SimTime time, std::uint64_t tie, const FleetEvent& event);

  // Cancels a pending event. The caller must only pass ids of events that
  // are still pending (scheduled, not yet popped or cancelled); cancelling
  // anything else corrupts the size accounting. Cancellation is lazy: the
  // entry is tombstoned and skipped when its slot drains. Returns true.
  bool Cancel(EventId id);

  // Cancel + Schedule in one step: moves a pending event to a new
  // (time, tie), re-supplying the payload. Returns the new handle.
  EventId Reschedule(EventId id, SimTime time, std::uint64_t tie,
                     const FleetEvent& event);

  // Pops the next event in (time, tie, id) order into *out, advancing the
  // wheel clock to its timestamp. Returns false when no events are pending
  // (the clock then stays at the last popped timestamp).
  bool PopNext(ScheduledEvent* out);

  SimTime now() const { return now_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  // High-water mark of pending events, for the aer_fleet_* gauges.
  std::size_t peak_size() const { return peak_size_; }

 private:
  struct Entry {
    SimTime time = 0;
    std::uint64_t tie = 0;
    EventId id = kInvalidEventId;
    FleetEvent event;
  };
  using Bucket = std::vector<Entry>;

  static int LevelFor(SimTime delta);

  // Files an entry into its wheel slot. Entries at exactly now_ go to the
  // current drain buffer when `to_drain` (public Schedule — the slot for
  // now_ has already been emptied) and to the level-0 slot during cascades
  // (the slot is loaded right after the cascade completes).
  void Insert(const Entry& entry, bool to_drain);

  // Moves the level-`level` slot under the cursor one level down.
  void Cascade(int level);

  // Advances now_ to the next tick (jumping empty spans), cascades any
  // level boundaries crossed, and loads the level-0 slot into drain_.
  void AdvanceTick();

  bool Tombstoned(EventId id);

  SimTime now_;
  std::array<std::array<Bucket, kSlots>, kLevels> wheel_;
  std::array<std::size_t, kLevels> level_count_{};  // physical entries/level

  // Entries at time == now_, sorted by (tie, id); drain_pos_ is the next to
  // pop. Same-tick Schedule() calls insert in sorted position.
  std::vector<Entry> drain_;
  std::size_t drain_pos_ = 0;

  std::size_t size_ = 0;  // live (scheduled minus popped minus cancelled)
  std::size_t peak_size_ = 0;
  EventId next_id_ = 1;
  std::unordered_set<EventId> cancelled_;  // lazy tombstones
};

}  // namespace aer

#endif  // AER_CLUSTER_EVENT_WHEEL_H_
