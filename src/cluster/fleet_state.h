// Structure-of-arrays machine state for the fleet-scale simulator.
//
// The seed engine keeps a vector<MachineState> with two heap-allocated
// vectors per machine (tried actions, emitted symptoms) — three pointer
// chases and an allocator round-trip per process at 10^6 machines. Here
// every field lives in its own flat array and the per-process sequences
// live in fixed-stride flat pools (capacity is bounded by config: at most
// max_actions_per_process actions, and at most 1 + max-secondary-symptoms
// re-emittable symptoms per process), so a shard's event handlers touch a
// handful of contiguous cache lines and never allocate.
//
// Thread-safety: a FleetState is plain data with no internal locking. The
// sharded engine gives each shard a disjoint machine-id range; writes to
// distinct elements of the same array are distinct memory locations, so
// concurrent shards are race-free by partitioning (docs/FLEET_SIM.md).
// The optional healthy-pool (compat mode only) is global state and is only
// valid single-threaded.
#ifndef AER_CLUSTER_FLEET_STATE_H_
#define AER_CLUSTER_FLEET_STATE_H_

#include <cstdint>
#include <vector>

#include "common/check.h"
#include "common/sim_time.h"
#include "log/action.h"
#include "log/log_entry.h"
#include "log/symptom.h"

namespace aer {

class FleetState {
 public:
  struct Layout {
    int num_machines = 0;
    // Per-process action capacity == ClusterSimConfig::max_actions_per_process
    // (the RMA cap guarantees the sequence never grows past it).
    int tried_capacity = 0;
    // Per-process re-emittable symptom capacity: primary + secondary
    // symptoms of the largest fault (generic/cross-fault noise is emitted
    // but never recorded for re-emission).
    int emitted_capacity = 0;
    // Compat mode keeps the seed's healthy-machine pool for its
    // rng.NextBounded(pool size) victim selection; the sharded engine does
    // not use a pool.
    bool with_healthy_pool = false;
  };

  explicit FleetState(const Layout& layout);

  int num_machines() const { return layout_.num_machines; }

  bool healthy(MachineId m) const { return healthy_[Idx(m)] != 0; }
  void set_healthy(MachineId m, bool h) {
    healthy_[Idx(m)] = h ? 1 : 0;
  }

  bool noisy(MachineId m) const { return noisy_[Idx(m)] != 0; }
  void set_noisy(MachineId m, bool n) { noisy_[Idx(m)] = n ? 1 : 0; }

  double speed(MachineId m) const { return speed_[Idx(m)]; }
  void set_speed(MachineId m, double s) { speed_[Idx(m)] = s; }

  std::uint32_t process_seq(MachineId m) const { return process_seq_[Idx(m)]; }
  void bump_process_seq(MachineId m) { ++process_seq_[Idx(m)]; }

  std::int32_t fault_index(MachineId m) const { return fault_index_[Idx(m)]; }
  void set_fault_index(MachineId m, std::int32_t f) { fault_index_[Idx(m)] = f; }

  SimTime process_start(MachineId m) const { return process_start_[Idx(m)]; }
  void set_process_start(MachineId m, SimTime t) { process_start_[Idx(m)] = t; }

  SimTime last_action_start(MachineId m) const {
    return last_action_start_[Idx(m)];
  }
  void set_last_action_start(MachineId m, SimTime t) {
    last_action_start_[Idx(m)] = t;
  }

  SimTime last_recovery_end(MachineId m) const {
    return last_recovery_end_[Idx(m)];
  }
  void set_last_recovery_end(MachineId m, SimTime t) {
    last_recovery_end_[Idx(m)] = t;
  }

  // Resets the per-process sequences (tried actions, emitted symptoms).
  void ClearProcess(MachineId m) {
    tried_count_[Idx(m)] = 0;
    emitted_count_[Idx(m)] = 0;
  }

  int tried_count(MachineId m) const { return tried_count_[Idx(m)]; }
  const RepairAction* tried_data(MachineId m) const {
    return tried_.data() + Idx(m) * static_cast<std::size_t>(layout_.tried_capacity);
  }
  void PushTried(MachineId m, RepairAction a) {
    const int n = tried_count_[Idx(m)];
    AER_CHECK_LT(n, layout_.tried_capacity);
    tried_[Idx(m) * static_cast<std::size_t>(layout_.tried_capacity) +
           static_cast<std::size_t>(n)] = a;
    ++tried_count_[Idx(m)];
  }

  int emitted_count(MachineId m) const { return emitted_count_[Idx(m)]; }
  SymptomId emitted_at(MachineId m, int i) const {
    AER_DCHECK_GE(i, 0);
    AER_DCHECK_LT(i, emitted_count_[Idx(m)]);
    return emitted_[Idx(m) * static_cast<std::size_t>(layout_.emitted_capacity) +
                    static_cast<std::size_t>(i)];
  }
  void PushEmitted(MachineId m, SymptomId s) {
    const int n = emitted_count_[Idx(m)];
    AER_CHECK_LT(n, layout_.emitted_capacity);
    emitted_[Idx(m) * static_cast<std::size_t>(layout_.emitted_capacity) +
             static_cast<std::size_t>(n)] = s;
    ++emitted_count_[Idx(m)];
  }

  // --- Healthy-machine pool (compat mode only; single-threaded) ---------
  // Mirrors the seed engine's swap-remove pool exactly: victim selection
  // indexes the pool with rng.NextBounded(pool_size()), so the pool's
  // element order is part of the byte-identity contract.

  bool has_pool() const { return layout_.with_healthy_pool; }
  std::size_t pool_size() const { return pool_.size(); }
  bool pool_empty() const { return pool_.empty(); }
  MachineId pool_at(std::size_t i) const { return pool_[i]; }
  void PoolRemove(MachineId m);
  void PoolAdd(MachineId m);

  // Machines currently down (O(1); maintained by PoolRemove/PoolAdd in
  // compat mode). Sharded shards track their own range-local counts.
  int pool_num_down() const {
    return layout_.num_machines - static_cast<int>(pool_.size());
  }

  // Approximate resident size of the state arrays, for bench reporting.
  std::size_t ApproxBytes() const;

 private:
  std::size_t Idx(MachineId m) const {
    AER_DCHECK_GE(m, 0);
    AER_DCHECK_LT(m, layout_.num_machines);
    return static_cast<std::size_t>(m);
  }

  Layout layout_;
  std::vector<std::uint8_t> healthy_;
  std::vector<std::uint8_t> noisy_;
  std::vector<double> speed_;
  std::vector<std::uint32_t> process_seq_;
  std::vector<std::int32_t> fault_index_;
  std::vector<SimTime> process_start_;
  std::vector<SimTime> last_action_start_;
  std::vector<SimTime> last_recovery_end_;
  std::vector<RepairAction> tried_;       // stride = tried_capacity
  std::vector<std::uint16_t> tried_count_;
  std::vector<SymptomId> emitted_;        // stride = emitted_capacity
  std::vector<std::uint16_t> emitted_count_;
  std::vector<MachineId> pool_;           // compat mode only
  std::vector<std::int32_t> pool_pos_;    // index in pool_, -1 if absent
};

}  // namespace aer

#endif  // AER_CLUSTER_FLEET_STATE_H_
