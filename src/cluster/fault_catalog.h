// The default synthetic fault catalog.
//
// Deterministically generated from a seed, calibrated so the resulting
// recovery log reproduces the *shape* of the paper's data set (Section 4.1):
//   - ~120 fault types with a moderately flat head and a very thin tail
//     (top 40 error types cover ~98.7% of processes, Figure 5);
//   - most processes' symptoms form one highly cohesive set; cohesion
//     decreases as the m-pattern dependence threshold rises (Figure 3);
//   - ~3% of processes are noisy (cross-fault symptoms);
//   - for most fault types the cheapest-first escalation policy is already
//     near-optimal, while a few (including the most frequent one) need a
//     strong action straight away — the paper's error types 1/35/39, whose
//     trained policy halves the recovery cost (Figure 8).
#ifndef AER_CLUSTER_FAULT_CATALOG_H_
#define AER_CLUSTER_FAULT_CATALOG_H_

#include <cstdint>

#include "cluster/fault_model.h"

namespace aer {

// Behavioural archetypes used to assign cure probabilities.
enum class FaultArchetype {
  kTransient,     // TRYNOP usually cures; cheapest-first is optimal
  kSoftwareHang,  // REBOOT cures; TRYNOP works often enough to stay optimal
  kFlaky,         // middling cure probabilities at every level
  kStuckService,  // REBOOT cures but TRYNOP is useless: watching wastes time
  kOsCorruption,  // only REIMAGE (or stronger) cures; escalation wastes hours
  kHardware,      // only manual repair (RMA) cures
};

struct CatalogConfig {
  std::size_t num_faults = 120;

  // Occurrence rates follow an offset power law 1/(rank + offset)^exponent,
  // split into a head (first `head_count` faults, `head_mass` of the total
  // probability) and a thin tail — matching Figure 5's head and the 98.68%
  // top-40 coverage.
  std::size_t head_count = 40;
  double head_mass = 0.987;
  double rate_exponent = 1.6;
  double rate_offset = 6.0;

  // Catalog ranks pinned to kOsCorruption: the paper's error types 1, 35
  // and 39 (1-based in its figures) gain ~2x from the trained policy.
  // All other head ranks draw from archetype weights that exclude
  // kOsCorruption/kHardware, keeping most frequent types near-optimal
  // under the user-defined policy.
  // (Fixed in code: ranks 0, 34 and 38.)

  // Fraction of faults whose secondary symptoms are emitted
  // deterministically; drives the high-minp end of Figure 3.
  double deterministic_aux_fraction = 0.8;

  // Per-process probability of emitting each shared "generic" symptom
  // (cross-cluster noise -> filtered processes).
  double generic_symptom_probability = 0.008;
  int num_generic_symptoms = 3;

  std::uint64_t seed = 7;
};

// Mean action durations (seconds) before per-fault jitter. Exposed for tests
// and for the cost-model documentation.
struct ActionDurationDefaults {
  double trynop_s = 900;     // 15 min watch window
  double reboot_s = 2400;    // 40 min including health re-check
  double reimage_s = 9000;   // 2.5 h OS rebuild
  double rma_s = 90000;      // ~25 h human repair turnaround
};

FaultCatalog MakeDefaultCatalog(const CatalogConfig& config = {});

// The archetype a given catalog entry was generated with (by name suffix);
// used by tests and by the experiment write-ups.
FaultArchetype ArchetypeOf(const FaultType& fault);

}  // namespace aer

#endif  // AER_CLUSTER_FAULT_CATALOG_H_
