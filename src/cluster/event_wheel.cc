#include "cluster/event_wheel.h"

#include <algorithm>

namespace aer {

EventWheel::EventWheel(SimTime start) : now_(start) {
  AER_CHECK_GE(start, 0);
}

int EventWheel::LevelFor(SimTime delta) {
  for (int l = 0; l < kLevels; ++l) {
    if ((delta >> (kSlotBits * (l + 1))) == 0) return l;
  }
  AER_CHECK(false) << "event beyond wheel horizon: delta=" << delta;
  return kLevels - 1;
}

void EventWheel::Insert(const Entry& entry, bool to_drain) {
  const SimTime delta = entry.time - now_;
  if (delta == 0 && to_drain) {
    // The level-0 slot for now_ has already been emptied; file into the
    // in-flight drain buffer at its sorted position (never before the
    // cursor: a same-tick schedule pops after everything already popped).
    const auto begin = drain_.begin() + static_cast<std::ptrdiff_t>(drain_pos_);
    const auto pos = std::upper_bound(
        begin, drain_.end(), entry, [](const Entry& a, const Entry& b) {
          if (a.tie != b.tie) return a.tie < b.tie;
          return a.id < b.id;
        });
    drain_.insert(pos, entry);
    return;
  }
  const int level = LevelFor(delta);
  const std::size_t slot =
      static_cast<std::size_t>(entry.time >> (kSlotBits * level)) &
      (kSlots - 1);
  wheel_[static_cast<std::size_t>(level)][slot].push_back(entry);
  ++level_count_[static_cast<std::size_t>(level)];
}

EventId EventWheel::Schedule(SimTime time, std::uint64_t tie,
                             const FleetEvent& event) {
  AER_CHECK_GE(time, now_);
  AER_CHECK_LT(time - now_, kHorizon);
  const EventId id = next_id_++;
  Insert(Entry{time, tie, id, event}, /*to_drain=*/true);
  ++size_;
  peak_size_ = std::max(peak_size_, size_);
  return id;
}

bool EventWheel::Cancel(EventId id) {
  AER_CHECK_NE(id, kInvalidEventId);
  AER_CHECK_LT(id, next_id_);
  const bool inserted = cancelled_.insert(id).second;
  AER_CHECK(inserted) << "event " << id << " cancelled twice";
  AER_CHECK_GT(size_, 0u);
  --size_;
  return true;
}

EventId EventWheel::Reschedule(EventId id, SimTime time, std::uint64_t tie,
                               const FleetEvent& event) {
  Cancel(id);
  return Schedule(time, tie, event);
}

bool EventWheel::Tombstoned(EventId id) {
  if (cancelled_.empty()) return false;
  const auto it = cancelled_.find(id);
  if (it == cancelled_.end()) return false;
  cancelled_.erase(it);  // each tombstone is consumed exactly once
  return true;
}

void EventWheel::Cascade(int level) {
  const std::size_t slot =
      static_cast<std::size_t>(now_ >> (kSlotBits * level)) & (kSlots - 1);
  Bucket& bucket = wheel_[static_cast<std::size_t>(level)][slot];
  if (bucket.empty()) return;
  Bucket moved;
  moved.swap(bucket);
  level_count_[static_cast<std::size_t>(level)] -= moved.size();
  for (const Entry& e : moved) {
    if (Tombstoned(e.id)) continue;
    Insert(e, /*to_drain=*/false);
  }
}

void EventWheel::AdvanceTick() {
  drain_.clear();
  drain_pos_ = 0;

  // Jump over spans that provably hold no events: with levels 0..l-1 empty,
  // nothing can fire before the next level-l boundary (a level-l slot only
  // releases its events when the cursor reaches its window).
  SimTime next = now_ + 1;
  if (level_count_[0] == 0) {
    int lowest = 1;
    while (lowest < kLevels &&
           level_count_[static_cast<std::size_t>(lowest)] == 0) {
      ++lowest;
    }
    if (lowest < kLevels) {
      const SimTime span = SimTime{1} << (kSlotBits * lowest);
      const SimTime boundary = (now_ / span + 1) * span;
      next = std::max(next, boundary);
    }
  }
  now_ = next;

  // Cascade every level boundary this tick crosses, highest level first so
  // entries re-bucket through intermediate levels correctly.
  for (int level = kLevels - 1; level >= 1; --level) {
    const SimTime span = SimTime{1} << (kSlotBits * level);
    if (now_ % span == 0) Cascade(level);
  }

  // Load the level-0 slot for the new tick and order it. Every live entry
  // in it is due exactly now; equal-time order is (tie, id) by contract.
  Bucket& bucket = wheel_[0][static_cast<std::size_t>(now_) & (kSlots - 1)];
  for (const Entry& e : bucket) {
    if (Tombstoned(e.id)) continue;
    AER_DCHECK_EQ(e.time, now_);
    drain_.push_back(e);
  }
  level_count_[0] -= bucket.size();
  bucket.clear();
  std::sort(drain_.begin(), drain_.end(), [](const Entry& a, const Entry& b) {
    if (a.tie != b.tie) return a.tie < b.tie;
    return a.id < b.id;
  });
}

bool EventWheel::PopNext(ScheduledEvent* out) {
  AER_CHECK(out != nullptr);
  for (;;) {
    while (drain_pos_ < drain_.size()) {
      const Entry& e = drain_[drain_pos_++];
      if (Tombstoned(e.id)) continue;
      out->time = e.time;
      out->tie = e.tie;
      out->id = e.id;
      out->event = e.event;
      AER_CHECK_GT(size_, 0u);
      --size_;
      return true;
    }
    if (size_ == 0) return false;
    AdvanceTick();
  }
}

}  // namespace aer
