// The recovery-policy interface shared by the online cluster simulator and
// the offline replay platform.
//
// A policy sees exactly what the paper's error-recovery component sees: the
// error type (initial symptom) of the open recovery process and the repair
// actions already tried — plus, for the *online* production policy only,
// machine history that is not reconstructible from the recovery log (the
// paper notes "we could not refer to all the information considered by the
// user-defined policy from the log"; this field is how we reproduce that
// information gap, and with it Figure 7's <5% validation deviation).
#ifndef AER_CLUSTER_POLICY_H_
#define AER_CLUSTER_POLICY_H_

#include <span>
#include <string_view>

#include "common/sim_time.h"
#include "log/log_entry.h"

namespace aer {

struct RecoveryContext {
  MachineId machine = 0;
  // Initial symptom of the open process, as an id in the *current run's*
  // symptom table plus its stable string name (policies trained on a
  // different log match by name).
  SymptomId initial_symptom = kInvalidSymptom;
  std::string_view initial_symptom_name;
  // Repair actions already tried in this process, oldest first.
  std::span<const RepairAction> tried;
  SimTime process_start = 0;
  SimTime now = 0;
  // End time of this machine's previous recovery process, or -1 if unknown.
  // Only populated by the online simulator; offline replay passes -1.
  SimTime last_recovery_end = -1;
};

class RecoveryPolicy {
 public:
  virtual ~RecoveryPolicy() = default;

  // Chooses the next repair action. Must be a pure function of the context
  // (the framework owns all state), so a policy can be replayed offline.
  virtual RepairAction ChooseAction(const RecoveryContext& context) = 0;

  // Result monitoring: the framework reports how the chosen action went.
  // `context.tried` holds the actions tried *before* `action`; `cost` is the
  // wall time from initiating the action to observing its result. Stateless
  // policies ignore this; learning policies (rl/online_policy.h) use it as
  // their reinforcement signal.
  virtual void OnActionOutcome(const RecoveryContext& context,
                               RepairAction action, SimTime cost,
                               bool cured) {
    (void)context;
    (void)action;
    (void)cost;
    (void)cured;
  }

  // Human-readable policy name for reports.
  virtual std::string_view name() const = 0;
};

}  // namespace aer

#endif  // AER_CLUSTER_POLICY_H_
