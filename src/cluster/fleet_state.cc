#include "cluster/fleet_state.h"

namespace aer {

FleetState::FleetState(const Layout& layout) : layout_(layout) {
  AER_CHECK_GT(layout_.num_machines, 0);
  AER_CHECK_GT(layout_.tried_capacity, 0);
  AER_CHECK_GT(layout_.emitted_capacity, 0);
  const std::size_t n = static_cast<std::size_t>(layout_.num_machines);
  healthy_.assign(n, 1);
  noisy_.assign(n, 0);
  speed_.assign(n, 1.0);
  process_seq_.assign(n, 0);
  fault_index_.assign(n, -1);
  process_start_.assign(n, 0);
  last_action_start_.assign(n, 0);
  last_recovery_end_.assign(n, -1);
  tried_.assign(n * static_cast<std::size_t>(layout_.tried_capacity),
                RepairAction::kTryNop);
  tried_count_.assign(n, 0);
  emitted_.assign(n * static_cast<std::size_t>(layout_.emitted_capacity),
                  kInvalidSymptom);
  emitted_count_.assign(n, 0);
  if (layout_.with_healthy_pool) {
    pool_.resize(n);
    pool_pos_.resize(n);
    for (int m = 0; m < layout_.num_machines; ++m) {
      pool_[static_cast<std::size_t>(m)] = m;
      pool_pos_[static_cast<std::size_t>(m)] = m;
    }
  }
}

void FleetState::PoolRemove(MachineId m) {
  AER_CHECK(layout_.with_healthy_pool);
  const std::int32_t pos = pool_pos_[Idx(m)];
  AER_CHECK_GE(pos, 0);
  // Seed-exact swap-remove: the pool's element order feeds the victim
  // selection draw, so the moved element must be the back, into `pos`.
  const MachineId last = pool_.back();
  pool_[static_cast<std::size_t>(pos)] = last;
  pool_pos_[Idx(last)] = pos;
  pool_.pop_back();
  pool_pos_[Idx(m)] = -1;
}

void FleetState::PoolAdd(MachineId m) {
  AER_CHECK(layout_.with_healthy_pool);
  AER_CHECK_EQ(pool_pos_[Idx(m)], -1);
  pool_pos_[Idx(m)] = static_cast<std::int32_t>(pool_.size());
  pool_.push_back(m);
}

std::size_t FleetState::ApproxBytes() const {
  return healthy_.capacity() * sizeof(healthy_[0]) +
         noisy_.capacity() * sizeof(noisy_[0]) +
         speed_.capacity() * sizeof(speed_[0]) +
         process_seq_.capacity() * sizeof(process_seq_[0]) +
         fault_index_.capacity() * sizeof(fault_index_[0]) +
         process_start_.capacity() * sizeof(process_start_[0]) +
         last_action_start_.capacity() * sizeof(last_action_start_[0]) +
         last_recovery_end_.capacity() * sizeof(last_recovery_end_[0]) +
         tried_.capacity() * sizeof(tried_[0]) +
         tried_count_.capacity() * sizeof(tried_count_[0]) +
         emitted_.capacity() * sizeof(emitted_[0]) +
         emitted_count_.capacity() * sizeof(emitted_count_[0]) +
         pool_.capacity() * sizeof(MachineId) +
         pool_pos_.capacity() * sizeof(std::int32_t);
}

}  // namespace aer
