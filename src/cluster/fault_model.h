// Ground-truth fault model for the synthetic cluster.
//
// The paper's recovery log comes from a proprietary production cluster; this
// model is the substitution documented in DESIGN.md. A FaultType describes
// one root cause: the symptoms it emits, how each repair action responds to
// it (cure probability + duration distribution), and how often it occurs.
//
// Invariants mirror the paper's hypotheses: cure probability is monotone
// non-decreasing in action strength (a stronger action does at least what a
// weaker one does), and RMA — manual human repair — always cures.
#ifndef AER_CLUSTER_FAULT_MODEL_H_
#define AER_CLUSTER_FAULT_MODEL_H_

#include <array>
#include <string>
#include <vector>

#include "log/action.h"

namespace aer {

// How one repair action behaves against one fault type.
struct ActionResponse {
  // P(this action cures the fault).
  double cure_probability = 0.0;
  // Mean wall time of executing the action and observing its effect, sec.
  double mean_duration_s = 60.0;
  // Log-normal shape parameter of the duration distribution.
  double duration_sigma = 0.3;
};

// A secondary symptom emitted alongside the fault's primary symptom.
struct SecondarySymptom {
  std::string name;
  // Per-process emission probability.
  double probability = 1.0;
};

struct FaultType {
  std::string name;
  // The first symptom this fault raises; the pipeline uses it as the error
  // type. Unique per fault in the default catalog.
  std::string primary_symptom;
  std::vector<SecondarySymptom> secondary_symptoms;
  // Indexed by ActionIndex().
  std::array<ActionResponse, kNumActions> responses;
  // Relative occurrence weight (normalized across the catalog when sampling).
  double relative_rate = 1.0;

  // Checks the model invariants; aborts on violation.
  void Validate() const;
};

// A catalog of fault types, the unit the simulator samples from.
struct FaultCatalog {
  std::vector<FaultType> faults;

  // Machine-level "generic" symptoms every process can emit with a small
  // probability regardless of its fault (event-log churn, watchdog noise,
  // co-occurring unrelated errors). They belong to no fault's symptom set,
  // so processes containing them span multiple mined clusters — the noisy
  // ~3% the paper filters out in Section 3.1.
  std::vector<SecondarySymptom> generic_symptoms;

  void Validate() const;
};

}  // namespace aer

#endif  // AER_CLUSTER_FAULT_MODEL_H_
