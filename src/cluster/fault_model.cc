#include "cluster/fault_model.h"

#include "common/check.h"

namespace aer {

void FaultType::Validate() const {
  AER_CHECK(!name.empty());
  AER_CHECK(!primary_symptom.empty());
  AER_CHECK_GT(relative_rate, 0.0);
  double prev_cure = 0.0;
  for (int i = 0; i < kNumActions; ++i) {
    const ActionResponse& r = responses[static_cast<std::size_t>(i)];
    AER_CHECK_GE(r.cure_probability, 0.0);
    AER_CHECK_LE(r.cure_probability, 1.0);
    // Hypothesis 2: a stronger action can replace a weaker one, so its cure
    // probability must not be lower.
    AER_CHECK_GE(r.cure_probability, prev_cure);
    prev_cure = r.cure_probability;
    AER_CHECK_GT(r.mean_duration_s, 0.0);
    AER_CHECK_GE(r.duration_sigma, 0.0);
  }
  // Manual repair always succeeds.
  AER_CHECK_EQ(responses[static_cast<std::size_t>(ActionIndex(RepairAction::kRma))]
                   .cure_probability,
               1.0);
  for (const SecondarySymptom& s : secondary_symptoms) {
    AER_CHECK(!s.name.empty());
    AER_CHECK_GT(s.probability, 0.0);
    AER_CHECK_LE(s.probability, 1.0);
  }
}

void FaultCatalog::Validate() const {
  AER_CHECK(!faults.empty());
  for (const FaultType& f : faults) f.Validate();
  for (const SecondarySymptom& s : generic_symptoms) {
    AER_CHECK(!s.name.empty());
    AER_CHECK_GT(s.probability, 0.0);
    AER_CHECK_LE(s.probability, 1.0);
  }
}

}  // namespace aer
