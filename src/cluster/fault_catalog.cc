#include "cluster/fault_catalog.h"

#include <array>
#include <cmath>
#include <string_view>

#include "common/check.h"
#include "common/rng.h"
#include "common/string_util.h"

namespace aer {
namespace {

struct ArchetypeSpec {
  FaultArchetype archetype;
  std::string_view tag;  // appended to the fault name; ArchetypeOf parses it
  std::array<double, kNumActions> cure;  // monotone non-decreasing
  // Duration multipliers relative to ActionDurationDefaults; os-corruption
  // wastes *longer* on weak actions (the watch/reboot cycle keeps timing out
  // against a corrupted image).
  std::array<double, kNumActions> duration_scale;
};

constexpr ArchetypeSpec kSpecs[] = {
    {FaultArchetype::kTransient,
     "transient",
     {0.72, 0.90, 0.96, 1.0},
     {1.0, 1.0, 1.0, 1.0}},
    {FaultArchetype::kSoftwareHang,
     "softhang",
     {0.30, 0.85, 0.95, 1.0},
     {1.0, 1.0, 1.0, 1.0}},
    {FaultArchetype::kFlaky,
     "flaky",
     {0.50, 0.75, 0.92, 1.0},
     {1.0, 1.0, 1.0, 1.0}},
    {FaultArchetype::kStuckService,
     "stucksvc",
     {0.02, 0.90, 0.96, 1.0},
     {1.3, 1.0, 1.0, 1.0}},
    {FaultArchetype::kOsCorruption,
     "oscorrupt",
     {0.02, 0.05, 0.95, 1.0},
     {1.3, 1.2, 1.0, 1.0}},
    {FaultArchetype::kHardware,
     "hardware",
     {0.01, 0.02, 0.05, 1.0},
     {1.1, 1.1, 1.1, 1.0}},
};

const ArchetypeSpec& SpecFor(FaultArchetype a) {
  for (const ArchetypeSpec& s : kSpecs) {
    if (s.archetype == a) return s;
  }
  AER_CHECK(false) << "no ArchetypeSpec for archetype "
                   << static_cast<int>(a);
}

// Symptom-name flavour components, echoing the paper's Table 1 entries.
constexpr std::string_view kPrimaryFlavours[] = {
    "ISNWatchdog", "EventLog",  "Heartbeat", "DiskIO",   "MemPressure",
    "NetIF",       "SvcCrash",  "FsCorrupt", "CpuStall", "KernelOops",
    "SmartCtl",    "EccScrub",  "TlsCert",   "NtpSkew",  "RaidDegraded",
};
constexpr std::string_view kAuxFlavours[] = {
    "EventLog", "PerfCounter", "SvcRestart", "PageFault", "IoRetry",
    "LinkFlap", "ThermalWarn", "QueueDepth", "LeaseLost", "ScanFail",
};

FaultArchetype SampleArchetype(std::size_t rank, Rng& rng) {
  // Pinned ranks: the paper's strongly-improvable error types 1/35/39
  // (1-based) are catalog ranks 0/34/38. Rank 0 is frequent, so its
  // improvable fault is a *cheap* one (stuck service: jump straight to
  // REBOOT) — otherwise the overall savings would far exceed the paper's
  // ~11%; the mid-frequency pins carry the expensive REIMAGE-cure story.
  if (rank == 0) return FaultArchetype::kStuckService;
  if (rank == 34 || rank == 38) {
    return FaultArchetype::kOsCorruption;
  }
  if (rank < 15) {
    // Head faults (minus the pin) are kept improvable only mildly so that
    // "for most error types, the trained policy performs almost the same as
    // the original policy" (Section 5.1).
    const double weights[] = {0.75, 0.13, 0.12};  // transient/softhang/flaky
    switch (rng.NextWeighted(weights)) {
      case 0:
        return FaultArchetype::kTransient;
      case 1:
        return FaultArchetype::kSoftwareHang;
      default:
        return FaultArchetype::kFlaky;
    }
  }
  const double weights[] = {0.62, 0.10, 0.10, 0.08, 0.10};
  switch (rng.NextWeighted(weights)) {
    case 0:
      return FaultArchetype::kTransient;
    case 1:
      return FaultArchetype::kSoftwareHang;
    case 2:
      return FaultArchetype::kFlaky;
    case 3:
      return FaultArchetype::kOsCorruption;
    default:
      return FaultArchetype::kHardware;
  }
}

}  // namespace

FaultCatalog MakeDefaultCatalog(const CatalogConfig& config) {
  AER_CHECK_GE(config.num_faults, config.head_count);
  AER_CHECK_GT(config.head_mass, 0.0);
  AER_CHECK_LE(config.head_mass, 1.0);

  Rng rng(config.seed);
  const ActionDurationDefaults durations;
  const double base_duration[kNumActions] = {durations.trynop_s,
                                             durations.reboot_s,
                                             durations.reimage_s,
                                             durations.rma_s};

  // Offset power-law weights, renormalized piecewise: head gets head_mass,
  // tail the rest, reproducing Figure 5's thin tail.
  std::vector<double> raw(config.num_faults);
  double head_sum = 0.0;
  double tail_sum = 0.0;
  for (std::size_t k = 0; k < config.num_faults; ++k) {
    raw[k] = 1.0 /
             std::pow(static_cast<double>(k) + config.rate_offset,
                      config.rate_exponent);
    (k < config.head_count ? head_sum : tail_sum) += raw[k];
  }

  FaultCatalog catalog;
  catalog.faults.reserve(config.num_faults);
  for (std::size_t k = 0; k < config.num_faults; ++k) {
    Rng fault_rng = rng.Fork();
    const FaultArchetype archetype = SampleArchetype(k, fault_rng);
    const ArchetypeSpec& spec = SpecFor(archetype);

    FaultType f;
    f.name = StrFormat("F%03zu-%s", k, std::string(spec.tag).c_str());
    const std::string_view flavour =
        kPrimaryFlavours[fault_rng.NextBounded(std::size(kPrimaryFlavours))];
    f.primary_symptom =
        StrFormat("F%03zu-%s", k, std::string(flavour).c_str());

    if (k < config.head_count) {
      f.relative_rate = raw[k] / head_sum * config.head_mass;
    } else {
      f.relative_rate =
          raw[k] / tail_sum * (1.0 - config.head_mass);
    }

    // Secondary symptoms: 0-3; deterministic for most faults so that
    // perfectly co-occurring symptom sets survive even minp = 1.0 (Fig. 3).
    const bool deterministic =
        fault_rng.NextDouble() < config.deterministic_aux_fraction;
    const int num_aux = static_cast<int>(fault_rng.NextBounded(4));
    for (int a = 0; a < num_aux; ++a) {
      SecondarySymptom s;
      const std::string_view aux_flavour =
          kAuxFlavours[fault_rng.NextBounded(std::size(kAuxFlavours))];
      s.name = StrFormat("F%03zu-%s-aux%d", k,
                         std::string(aux_flavour).c_str(), a);
      s.probability =
          deterministic ? 1.0 : 0.5 + 0.4 * fault_rng.NextDouble();
      f.secondary_symptoms.push_back(std::move(s));
    }

    for (int ai = 0; ai < kNumActions; ++ai) {
      ActionResponse& r = f.responses[static_cast<std::size_t>(ai)];
      r.cure_probability = spec.cure[static_cast<std::size_t>(ai)];
      // Per-fault duration jitter in [0.75, 1.35] on top of the archetype
      // scaling; keeps per-type cost distributions distinct.
      const double jitter = 0.75 + 0.6 * fault_rng.NextDouble();
      r.mean_duration_s = base_duration[ai] *
                          spec.duration_scale[static_cast<std::size_t>(ai)] *
                          jitter;
      r.duration_sigma = 0.25 + 0.2 * fault_rng.NextDouble();
    }
    catalog.faults.push_back(std::move(f));
  }

  constexpr std::string_view kGenericNames[] = {
      "Generic-EventLog", "Generic-WatchdogTimeout", "Generic-PerfAlert",
      "Generic-NetFlap",  "Generic-SensorGlitch",
  };
  for (int g = 0; g < config.num_generic_symptoms &&
                  g < static_cast<int>(std::size(kGenericNames));
       ++g) {
    catalog.generic_symptoms.push_back(
        {std::string(kGenericNames[static_cast<std::size_t>(g)]),
         config.generic_symptom_probability});
  }

  catalog.Validate();
  return catalog;
}

FaultArchetype ArchetypeOf(const FaultType& fault) {
  for (const ArchetypeSpec& s : kSpecs) {
    const std::string_view name = fault.name;
    const std::size_t dash = name.rfind('-');
    if (dash != std::string_view::npos && name.substr(dash + 1) == s.tag) {
      return s.archetype;
    }
  }
  AER_CHECK(false) << "fault name '" << fault.name
                   << "' carries no archetype tag";
}

}  // namespace aer
