#include "cluster/user_policy.h"

#include "common/check.h"

namespace aer {

UserDefinedPolicy::UserDefinedPolicy(EscalationConfig config)
    : config_(config) {
  for (int tries : config_.max_tries) AER_CHECK_GE(tries, 0);
  AER_CHECK_GT(config_.max_tries[kNumActions - 1], 0);
}

RepairAction UserDefinedPolicy::ChooseAction(const RecoveryContext& context) {
  // Count previous tries per level.
  std::array<int, kNumActions> tries = {};
  for (RepairAction a : context.tried) {
    ++tries[static_cast<std::size_t>(ActionIndex(a))];
  }

  // Recurring failure: the machine just came out of a recovery, so skip the
  // pure-observation level. Offline replays pass last_recovery_end = -1 and
  // never take this branch.
  int start_level = 0;
  if (context.last_recovery_end >= 0 &&
      context.process_start - context.last_recovery_end <
          config_.recurring_failure_window) {
    start_level = 1;
  }

  for (int level = start_level; level < kNumActions; ++level) {
    if (tries[static_cast<std::size_t>(level)] <
        config_.max_tries[static_cast<std::size_t>(level)]) {
      return ActionFromIndex(level);
    }
  }
  // Every level exhausted (only possible with tiny max_tries): manual repair.
  return RepairAction::kRma;
}

}  // namespace aer
