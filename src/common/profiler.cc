#include "common/profiler.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "common/string_util.h"

namespace aer {

ProfileRegistry& ProfileRegistry::Global() {
  // Leaked so shards referenced from thread_locals of detached threads stay
  // valid through process exit.
  static ProfileRegistry* registry = new ProfileRegistry();
  return *registry;
}

void ProfileRegistry::Shard::Enter(std::string_view name) {
  const Node* parent = stack_.empty() ? nullptr : stack_.back();
  Node* node;
  {
    MutexLock lock(mu_);
    const auto it = index_.find(std::make_pair(parent, std::string(name)));
    if (it != index_.end()) {
      node = it->second;
    } else {
      auto created = std::make_unique<Node>();
      created->name = std::string(name);
      created->parent = parent;
      node = created.get();
      nodes_.push_back(std::move(created));
      index_.emplace(std::make_pair(parent, std::string(name)), node);
    }
  }
  stack_.push_back(node);
}

void ProfileRegistry::Shard::Exit(std::int64_t elapsed_ns) {
  AER_DCHECK(!stack_.empty()) << "profile scope exit without matching enter";
  // The stack holds stable Node pointers, so the hot exit path never touches
  // the guarded node storage: pop (owner-thread-only) plus two relaxed
  // atomic adds.
  Node* node = stack_.back();
  stack_.pop_back();
  node->calls.fetch_add(1, std::memory_order_relaxed);
  node->total_ns.fetch_add(elapsed_ns < 0 ? 0 : elapsed_ns,
                           std::memory_order_relaxed);
}

ProfileRegistry::Shard& ProfileRegistry::LocalShard() {
  // One shard per (thread, registry). The registry keeps a shared_ptr so
  // snapshots taken after a worker thread exits still see its data.
  thread_local std::map<const ProfileRegistry*, std::shared_ptr<Shard>>
      shards;
  std::shared_ptr<Shard>& slot = shards[this];
  if (slot == nullptr) {
    slot = std::make_shared<Shard>();
    MutexLock lock(mu_);
    shards_.push_back(slot);
  }
  return *slot;
}

std::vector<ProfileEntry> ProfileRegistry::Snapshot() const {
  std::vector<std::shared_ptr<Shard>> shards;
  {
    MutexLock lock(mu_);
    shards = shards_;
  }
  std::map<std::string, ProfileEntry> merged;
  for (const std::shared_ptr<Shard>& shard : shards) {
    MutexLock lock(shard->mu_);
    // Parents are created before their children, so a single forward pass
    // can resolve every node's path from its parent's.
    std::map<const Shard::Node*, std::string> paths;
    for (const auto& owned : shard->nodes_) {
      const Shard::Node& node = *owned;
      const std::string path = node.parent == nullptr
                                   ? node.name
                                   : paths[node.parent] + "/" + node.name;
      paths[&node] = path;
      const std::int64_t calls =
          node.calls.load(std::memory_order_relaxed);
      if (calls == 0) continue;
      ProfileEntry& entry = merged[path];
      entry.path = path;
      entry.calls += calls;
      entry.total_ns += node.total_ns.load(std::memory_order_relaxed);
    }
  }
  std::vector<ProfileEntry> out;
  out.reserve(merged.size());
  for (auto& [path, entry] : merged) out.push_back(std::move(entry));
  return out;
}

void ProfileRegistry::Reset() {
  std::vector<std::shared_ptr<Shard>> shards;
  {
    MutexLock lock(mu_);
    shards = shards_;
  }
  for (const std::shared_ptr<Shard>& shard : shards) {
    MutexLock lock(shard->mu_);
    for (const auto& node : shard->nodes_) {
      node->calls.store(0, std::memory_order_relaxed);
      node->total_ns.store(0, std::memory_order_relaxed);
    }
  }
}

std::int64_t ProfileRegistry::TotalCalls() const {
  std::int64_t total = 0;
  for (const ProfileEntry& entry : Snapshot()) total += entry.calls;
  return total;
}

std::string ProfileRegistry::FormatProfile(
    const std::vector<ProfileEntry>& entries, const FormatOptions& options) {
  std::string out;
  for (const ProfileEntry& entry : entries) {
    if (options.include_wall) {
      const double total_ms = static_cast<double>(entry.total_ns) / 1e6;
      const double avg_us =
          entry.calls > 0
              ? static_cast<double>(entry.total_ns) /
                    (1e3 * static_cast<double>(entry.calls))
              : 0.0;
      out += StrFormat("profile %s calls=%lld total_ms=%.3f avg_us=%.3f\n",
                       entry.path.c_str(),
                       static_cast<long long>(entry.calls), total_ms, avg_us);
    } else {
      out += StrFormat("profile %s calls=%lld\n", entry.path.c_str(),
                       static_cast<long long>(entry.calls));
    }
  }
  return out;
}

JsonValue ProfileRegistry::ProfileToJson(
    const std::vector<ProfileEntry>& entries, const FormatOptions& options) {
  JsonValue root = JsonValue::Array();
  for (const ProfileEntry& entry : entries) {
    JsonValue value = JsonValue::Object();
    value.Set("path", JsonValue::String(entry.path));
    value.Set("calls", JsonValue::Int(entry.calls));
    if (options.include_wall) {
      value.Set("total_ns", JsonValue::Int(entry.total_ns));
    }
    root.Append(std::move(value));
  }
  return root;
}

}  // namespace aer
