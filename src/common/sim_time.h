// Simulated wall-clock time for the cluster simulator and the recovery log.
//
// All timestamps in the system are SimTime: integral seconds since the start
// of the trace. Using integers keeps logs exactly reproducible across
// platforms and makes (de)serialization lossless.
#ifndef AER_COMMON_SIM_TIME_H_
#define AER_COMMON_SIM_TIME_H_

#include <cstdint>
#include <string>

namespace aer {

// Seconds since trace start. Signed so durations (differences) are natural.
using SimTime = std::int64_t;

// Common duration constants, in seconds.
inline constexpr SimTime kSecond = 1;
inline constexpr SimTime kMinute = 60;
inline constexpr SimTime kHour = 3600;
inline constexpr SimTime kDay = 86400;

// Formats a timestamp as "d:hh:mm:ss" for human-readable log dumps.
inline std::string FormatSimTime(SimTime t) {
  const bool neg = t < 0;
  if (neg) t = -t;
  const SimTime days = t / kDay;
  const SimTime hours = (t % kDay) / kHour;
  const SimTime minutes = (t % kHour) / kMinute;
  const SimTime seconds = t % kMinute;
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%s%lld:%02lld:%02lld:%02lld",
                neg ? "-" : "", static_cast<long long>(days),
                static_cast<long long>(hours), static_cast<long long>(minutes),
                static_cast<long long>(seconds));
  return buf;
}

}  // namespace aer

#endif  // AER_COMMON_SIM_TIME_H_
