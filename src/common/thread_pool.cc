#include "common/thread_pool.h"

#include <atomic>
#include <cstdlib>

#include "common/profiler.h"
#include "common/string_util.h"

namespace aer {
namespace {

// Which worker of which pool the current thread is, so Submit() from inside
// a task lands on the submitter's own deque.
thread_local const ThreadPool* tls_pool = nullptr;
thread_local std::size_t tls_worker = 0;

}  // namespace

int ThreadPool::DefaultThreadCount() {
  if (const char* env = std::getenv("AER_THREADS")) {
    const auto parsed = ParseInt64(env);
    if (parsed.has_value() && *parsed > 0) {
      return static_cast<int>(*parsed < 512 ? *parsed : 512);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::ThreadPool(int num_threads) {
  const int n = num_threads > 0 ? num_threads : DefaultThreadCount();
  deques_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    deques_.push_back(std::make_unique<Deque>());
  }
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back(
        [this, i]() { WorkerLoop(static_cast<std::size_t>(i)); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(wake_mu_);
    shutdown_ = true;
  }
  wake_cv_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
  // The joins order every worker's writes before this read, but the lock
  // discipline is "pending_ is read under wake_mu_" with no exceptions —
  // exceptions are exactly what the static analysis exists to rule out.
  MutexLock lock(wake_mu_);
  AER_CHECK_EQ(pending_, 0u) << "worker exited with tasks still queued";
}

void ThreadPool::Enqueue(Task task) {
  // Inside a worker of this pool: push to its own deque (newest-first pop
  // keeps the chain hot). Outside: push to the shortest deque so external
  // submissions spread without a shared queue.
  std::size_t target = 0;
  if (tls_pool == this) {
    target = tls_worker;
  } else {
    std::size_t best_size = static_cast<std::size_t>(-1);
    for (std::size_t i = 0; i < deques_.size(); ++i) {
      MutexLock lock(deques_[i]->mu);
      const std::size_t size = deques_[i]->tasks.size();
      if (size < best_size) {
        best_size = size;
        target = i;
        if (size == 0) break;
      }
    }
  }
  // Account the task BEFORE publishing it: a worker spinning between tasks
  // reaches TryAcquire without ever checking pending_, so push-then-count
  // would let it pop (and decrement) before the increment lands, wrapping
  // pending_ below zero. Counting first only risks a brief benign spin in a
  // woken worker that beats the push.
  {
    MutexLock lock(wake_mu_);
    ++pending_;
  }
  {
    MutexLock lock(deques_[target]->mu);
    deques_[target]->tasks.push_back(std::move(task));
  }
  wake_cv_.NotifyOne();
}

bool ThreadPool::TryAcquire(std::size_t own, Task& out) {
  const std::size_t n = deques_.size();
  {
    MutexLock lock(deques_[own]->mu);
    if (!deques_[own]->tasks.empty()) {
      out = std::move(deques_[own]->tasks.back());
      deques_[own]->tasks.pop_back();
      MutexLock wake(wake_mu_);
      AER_DCHECK_GT(pending_, 0u);
      --pending_;
      return true;
    }
  }
  for (std::size_t step = 1; step < n; ++step) {
    const std::size_t victim = (own + step) % n;
    MutexLock lock(deques_[victim]->mu);
    if (!deques_[victim]->tasks.empty()) {
      out = std::move(deques_[victim]->tasks.front());
      deques_[victim]->tasks.pop_front();
      MutexLock wake(wake_mu_);
      AER_DCHECK_GT(pending_, 0u);
      --pending_;
      return true;
    }
  }
  return false;
}

void ThreadPool::WorkerLoop(std::size_t worker_index) {
  tls_pool = this;
  tls_worker = worker_index;
  while (true) {
    Task task;
    if (TryAcquire(worker_index, task)) {
      AER_PROFILE_SCOPE("pool_task");
      task();
      continue;
    }
    // The predicate re-test lives in the function body, not a wait lambda,
    // so the analysis sees every read of pending_/shutdown_ under the lock.
    MutexLock lock(wake_mu_);
    while (pending_ == 0 && !shutdown_) wake_cv_.Wait(wake_mu_);
    if (pending_ == 0 && shutdown_) return;
  }
}

std::size_t ThreadPool::QueuedTasks() const {
  std::size_t total = 0;
  for (const auto& deque : deques_) {
    MutexLock lock(deque->mu);
    total += deque->tasks.size();
  }
  return total;
}

void ThreadPool::ParallelFor(std::size_t n,
                             const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;

  // Shared by the caller and the helper tasks; shared_ptr-owned so helpers
  // that only get scheduled after the caller has already returned (because
  // every index was long finished) still touch live state.
  struct Control {
    // Written before the helpers are enqueued and cleared only after the
    // completion barrier below, so no lock is needed (late helpers bail on
    // the exhausted counter before dereferencing).
    const std::function<void(std::size_t)>* fn = nullptr;
    std::size_t n = 0;
    std::atomic<std::size_t> next{0};
    Mutex mu;
    CondVar done_cv;
    std::size_t completed AER_GUARDED_BY(mu) = 0;
    std::exception_ptr first_error AER_GUARDED_BY(mu);
  };
  auto control = std::make_shared<Control>();
  control->fn = &fn;
  control->n = n;

  const auto run_indices = [](const std::shared_ptr<Control>& c) {
    while (true) {
      const std::size_t i = c->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= c->n) return;
      std::exception_ptr error;
      try {
        (*c->fn)(i);
      } catch (...) {
        error = std::current_exception();
      }
      MutexLock lock(c->mu);
      if (error && !c->first_error) c->first_error = error;
      if (++c->completed == c->n) c->done_cv.NotifyAll();
    }
  };

  // One helper per worker (capped by n); the caller participates, so the
  // loop completes even if no helper ever gets a thread.
  const std::size_t helpers =
      deques_.size() < n - 1 ? deques_.size() : n - 1;
  for (std::size_t h = 0; h < helpers; ++h) {
    Enqueue([control, run_indices]() { run_indices(control); });
  }
  run_indices(control);

  std::exception_ptr first_error;
  {
    MutexLock lock(control->mu);
    while (control->completed != control->n) control->done_cv.Wait(control->mu);
    // The caller's `fn` reference outlives every *executing* index here:
    // completed == n means no helper will touch fn again (late helpers bail
    // on the exhausted counter before dereferencing it).
    control->fn = nullptr;
    first_error = control->first_error;
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace aer
