// Deterministic random number generation.
//
// The whole reproduction is seeded: the synthetic cluster trace, the RL
// exploration, and every experiment must produce identical numbers on every
// platform and across reruns. std::mt19937 would be deterministic too, but
// the std distributions (<random>) are NOT specified bit-exactly across
// standard libraries, so we implement both the engine (xoshiro256++ seeded
// via SplitMix64) and the distributions we need ourselves.
#ifndef AER_COMMON_RNG_H_
#define AER_COMMON_RNG_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/check.h"

namespace aer {

// SplitMix64: used to expand a single 64-bit seed into engine state and to
// derive independent child seeds (e.g. one RNG stream per machine).
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t Next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

// Derives the seed of an independent child stream from a master seed and a
// stable stream identifier (an ErrorTypeId, a bootstrap resample index, a
// replication number, ...). The result depends on nothing but the two
// arguments — not on how many sibling streams exist, not on the order they
// are created in, and not on which thread asks — which is what makes
// sharded training and resampling bit-identical to their serial
// counterparts (docs/PARALLELISM.md). The mapping is frozen: it is the
// golden-ratio XOR the trainers have always used, so historical trained
// artifacts and recorded bench checksums stay reproducible. Collisions
// between (master_seed, stream_id) pairs are possible in principle (XOR is
// linear) but irrelevant here: within one run the master seed is fixed and
// distinct stream ids always map to distinct seeds.
inline std::uint64_t DeriveStream(std::uint64_t master_seed,
                                  std::uint64_t stream_id) {
  return master_seed ^ (0x9e3779b97f4a7c15ULL * (stream_id + 1));
}

// xoshiro256++ 1.0 (Blackman & Vigna). Fast, high-quality, 2^256-1 period.
class Rng {
 public:
  // Satisfies UniformRandomBitGenerator so it can also drive std algorithms
  // (e.g. std::shuffle) deterministically at the engine level.
  using result_type = std::uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  explicit Rng(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.Next();
  }

  result_type operator()() { return Next(); }

  std::uint64_t Next() {
    const std::uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  // Derives an independent child generator; used to give each simulated
  // machine / each training run its own stream so adding one consumer does
  // not perturb the draws of the others.
  Rng Fork() { return Rng(Next() ^ 0xa02bdbf7bb3c0a7ULL); }

  // Uniform double in [0, 1) with 53 bits of precision.
  double NextDouble() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

  // Uniform integer in [0, bound) via Lemire's multiply-shift (unbiased).
  std::uint64_t NextBounded(std::uint64_t bound) {
    AER_CHECK_GT(bound, 0u);
    while (true) {
      const std::uint64_t x = Next();
      const __uint128_t m = static_cast<__uint128_t>(x) * bound;
      const std::uint64_t lo = static_cast<std::uint64_t>(m);
      if (lo >= bound || lo >= (-bound) % bound) {
        return static_cast<std::uint64_t>(m >> 64);
      }
    }
  }

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t NextInt(std::int64_t lo, std::int64_t hi) {
    AER_CHECK_LE(lo, hi);
    return lo + static_cast<std::int64_t>(
                    NextBounded(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  // Bernoulli trial.
  bool NextBool(double p) { return NextDouble() < p; }

  // Exponential with the given mean (inverse-CDF method).
  double NextExponential(double mean);

  // Standard normal via Box-Muller (no cached second value: determinism over
  // micro-efficiency).
  double NextGaussian();

  // Log-normal parameterized by the *target* mean and a shape sigma (of the
  // underlying normal). Used for repair-action durations, which are
  // right-skewed in real logs.
  double NextLogNormalWithMean(double mean, double sigma);

  // Samples an index from unnormalized non-negative weights.
  std::size_t NextWeighted(std::span<const double> weights);

 private:
  static std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

// Zipf-like sampler over ranks 0..n-1 with exponent `s`: P(k) ∝ 1/(k+1)^s.
// Used to give the synthetic fault catalog the long-tailed frequency
// distribution visible in the paper's Figure 5.
class ZipfDistribution {
 public:
  ZipfDistribution(std::size_t n, double s);

  std::size_t Sample(Rng& rng) const;

  // Probability mass of rank k (for tests and calibration).
  double Pmf(std::size_t k) const;

  std::size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;  // inclusive cumulative probabilities
};

}  // namespace aer

#endif  // AER_COMMON_RNG_H_
