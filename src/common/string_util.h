// String helpers used by log (de)serialization and the bench reporters.
#ifndef AER_COMMON_STRING_UTIL_H_
#define AER_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace aer {

// Splits on a single-character delimiter; keeps empty fields.
std::vector<std::string_view> Split(std::string_view s, char delim);

// Trims ASCII whitespace from both ends.
std::string_view Trim(std::string_view s);

// Joins with a separator.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep);

// Strict integer parse of the whole string; nullopt on any junk.
std::optional<std::int64_t> ParseInt64(std::string_view s);

// Strict double parse of the whole string; nullopt on any junk.
std::optional<double> ParseDouble(std::string_view s);

// Strict unsigned hexadecimal parse of the whole string (no 0x prefix);
// nullopt on any junk or overflow. Untrusted hex fields (e.g. serialized
// state keys) must come through here rather than raw strtoull.
std::optional<std::uint64_t> ParseHexU64(std::string_view s);

// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace aer

#endif  // AER_COMMON_STRING_UTIL_H_
