#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.h"

namespace aer {

void RunningStat::AddToSum(double x) {
  // Kahan: sum_comp_ carries the low-order bits the naive add would drop.
  const double y = x - sum_comp_;
  const double t = sum_ + y;
  sum_comp_ = (t - sum_) - y;
  sum_ = t;
}

void RunningStat::Add(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  AddToSum(x);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStat::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

void RunningStat::Merge(const RunningStat& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n = count_ + other.count_;
  m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                         static_cast<double>(other.count_) /
                         static_cast<double>(n);
  mean_ += delta * static_cast<double>(other.count_) / static_cast<double>(n);
  count_ = n;
  AddToSum(other.sum_);
  AddToSum(-other.sum_comp_);
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

LogHistogram::LogHistogram(double base, double growth, int bucket_count)
    : base_(base), growth_(growth) {
  AER_CHECK_GT(base, 0.0);
  AER_CHECK_GT(growth, 1.0);
  AER_CHECK_GT(bucket_count, 0);
  counts_.assign(static_cast<size_t>(bucket_count) + 1, 0);
}

double LogHistogram::bucket_lower(int i) const {
  AER_CHECK_GE(i, 0);
  if (i == 0) return 0.0;
  return base_ * std::pow(growth_, i - 1);
}

void LogHistogram::Add(double x) {
  ++total_;
  if (x < base_) {
    ++counts_[0];
    return;
  }
  const int idx =
      1 + static_cast<int>(std::floor(std::log(x / base_) / std::log(growth_)));
  const int clamped =
      std::min(idx, static_cast<int>(counts_.size()) - 1);
  ++counts_[static_cast<size_t>(clamped)];
}

void LogHistogram::Merge(const LogHistogram& other) {
  AER_CHECK(base_ == other.base_ && growth_ == other.growth_ &&
            counts_.size() == other.counts_.size())
      << "LogHistogram::Merge requires identical geometry: (" << base_ << ", "
      << growth_ << ", " << counts_.size() << ") vs (" << other.base_ << ", "
      << other.growth_ << ", " << other.counts_.size() << ")";
  for (size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  total_ += other.total_;
}

double LogHistogram::ApproxQuantile(double q) const {
  AER_CHECK_GE(q, 0.0);
  AER_CHECK_LE(q, 1.0);
  if (total_ == 0) return 0.0;
  const double target = q * static_cast<double>(total_);
  double cum = 0.0;
  for (int i = 0; i < static_cast<int>(counts_.size()); ++i) {
    const double next = cum + static_cast<double>(counts_[static_cast<size_t>(i)]);
    if (next >= target && counts_[static_cast<size_t>(i)] > 0) {
      const double lo = bucket_lower(i);
      const double hi =
          (i + 1 < static_cast<int>(counts_.size())) ? bucket_lower(i + 1) : lo * growth_;
      const double frac =
          (target - cum) / static_cast<double>(counts_[static_cast<size_t>(i)]);
      return lo + frac * (hi - lo);
    }
    cum = next;
  }
  return bucket_lower(static_cast<int>(counts_.size()) - 1);
}

std::string LogHistogram::ToString() const {
  std::ostringstream os;
  for (int i = 0; i < static_cast<int>(counts_.size()); ++i) {
    if (counts_[static_cast<size_t>(i)] == 0) continue;
    os << "[" << bucket_lower(i) << ", "
       << (i + 1 < static_cast<int>(counts_.size()) ? bucket_lower(i + 1)
                                                    : bucket_lower(i) * growth_)
       << "): " << counts_[static_cast<size_t>(i)] << "\n";
  }
  return os.str();
}

}  // namespace aer
