#include "common/csv.h"

#include <cstdlib>

namespace aer {

CsvWriter::CsvWriter(const std::string& dir, const std::string& name) {
  if (dir.empty()) return;
  out_.open(dir + "/" + name + ".csv");
}

std::string CsvWriter::Escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::WriteRow(const std::vector<std::string>& fields) {
  if (!out_.is_open()) return;
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << Escape(fields[i]);
  }
  out_ << '\n';
}

std::string CsvDirFromEnv() {
  const char* dir = std::getenv("AER_CSV_DIR");
  return dir != nullptr ? dir : "";
}

}  // namespace aer
