#include "common/string_util.h"

#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace aer {

std::vector<std::string_view> Split(std::string_view s, char delim) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(start));
      return out;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view Trim(std::string_view s) {
  const auto is_space = [](char c) {
    return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' ||
           c == '\v';
  };
  while (!s.empty() && is_space(s.front())) s.remove_prefix(1);
  while (!s.empty() && is_space(s.back())) s.remove_suffix(1);
  return s;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::optional<std::int64_t> ParseInt64(std::string_view s) {
  s = Trim(s);
  if (s.empty()) return std::nullopt;
  // strtoll needs a NUL-terminated buffer.
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(buf.c_str(), &end, 10);
  if (errno != 0 || end != buf.c_str() + buf.size()) return std::nullopt;
  return static_cast<std::int64_t>(v);
}

std::optional<double> ParseDouble(std::string_view s) {
  s = Trim(s);
  if (s.empty()) return std::nullopt;
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(buf.c_str(), &end);
  if (errno != 0 || end != buf.c_str() + buf.size()) return std::nullopt;
  return v;
}

std::optional<std::uint64_t> ParseHexU64(std::string_view s) {
  s = Trim(s);
  if (s.empty() || s.size() > 16) return std::nullopt;
  std::uint64_t v = 0;
  for (const char c : s) {
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else if (c >= 'A' && c <= 'F') {
      digit = c - 'A' + 10;
    } else {
      return std::nullopt;
    }
    v = (v << 4) | static_cast<std::uint64_t>(digit);
  }
  return v;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace aer
