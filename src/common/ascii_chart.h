// ASCII renderings of the paper's figures for the bench binaries. Each bench
// prints the exact numeric series plus a coarse bar chart so the *shape* of
// the reproduced figure is visible directly in the terminal output.
#ifndef AER_COMMON_ASCII_CHART_H_
#define AER_COMMON_ASCII_CHART_H_

#include <string>
#include <vector>

namespace aer {

// One named series of y-values over a shared x-axis of labels.
struct ChartSeries {
  std::string name;
  std::vector<double> values;
};

// Renders a horizontal bar chart: one row per x label; multiple series render
// as grouped bars with distinct glyphs. `width` is the bar area in columns.
std::string RenderBarChart(const std::vector<std::string>& labels,
                           const std::vector<ChartSeries>& series,
                           int width = 60);

// Renders a log-scale bar chart (base 10); zero/negative values show as empty.
std::string RenderLogBarChart(const std::vector<std::string>& labels,
                              const std::vector<ChartSeries>& series,
                              int width = 60);

// Renders a fixed-width numeric table (header + one row per label).
std::string RenderTable(const std::string& x_name,
                        const std::vector<std::string>& labels,
                        const std::vector<ChartSeries>& series);

}  // namespace aer

#endif  // AER_COMMON_ASCII_CHART_H_
