// Invariant-checking macros — the repo's diagnostics layer.
//
// AER_CHECK is always on (also in release builds): the library is a research
// artifact and silent state corruption would invalidate experiment results.
// Failures print the condition, the operand *values* (for the comparison
// forms), any streamed context, and the location, then abort — so a violated
// invariant is caught at the point of damage rather than in a downstream
// figure.
//
//   AER_CHECK(ok) << "machine " << id << " double-booked";
//   AER_CHECK_LT(index, actions.size()) << "while scanning " << name;
//
// AER_DCHECK* mirror the AER_CHECK* family but compile out of release
// builds (NDEBUG, unless AER_FORCE_DCHECKS is defined): use them on hot
// paths where the always-on cost is measurable. Compiled-out forms do not
// evaluate their arguments but still type-check them, so a DCHECK cannot
// bit-rot.
#ifndef AER_COMMON_CHECK_H_
#define AER_COMMON_CHECK_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <ostream>
#include <sstream>
#include <string>
#include <utility>

namespace aer {

// Last-gasp hook: called with the fully formatted failure message after it
// is printed to stderr and just before the failed AER_CHECK aborts. The
// flight recorder (obs/flight_recorder.h) installs itself here to dump
// recent spans and metrics next to the crash. The hook must be reentrancy-
// safe (a CHECK failing inside the hook must not recurse) and must return;
// the abort always happens. Pass nullptr to uninstall.
using CheckFailureHook = void (*)(const char* message);

inline std::atomic<CheckFailureHook>& CheckFailureHookSlot() {
  static std::atomic<CheckFailureHook> slot{nullptr};
  return slot;
}

inline void SetCheckFailureHook(CheckFailureHook hook) {
  CheckFailureHookSlot().store(hook, std::memory_order_release);
}

}  // namespace aer

namespace aer::internal {

// Renders one operand of a failed comparison. Anything ostream-printable is
// printed as-is; everything else gets a placeholder so AER_CHECK_EQ works on
// types without operator<< (enums classes, handles) out of the box.
template <typename T>
void PrintCheckOperand(std::ostream& os, const T& v) {
  if constexpr (requires(std::ostream& o, const T& x) { o << x; }) {
    os << v;
  } else if constexpr (requires(const T& x) { static_cast<std::int64_t>(x); }) {
    os << static_cast<std::int64_t>(v);
  } else {
    os << "<unprintable>";
  }
}

inline void PrintCheckOperand(std::ostream& os, std::nullptr_t) {
  os << "nullptr";
}

// Non-empty exactly when the comparison failed; carries the rendered
// "(lhs_value vs. rhs_value)" suffix for the failure message. Truthy on
// *failure* so the macro below reads as `while (failed) fail-stream`.
struct CheckOpResult {
  std::string failure;  // empty on success
  explicit operator bool() const { return !failure.empty(); }
};

// Swallows the stream expression so the ternary in AER_CHECK has a void
// else-arm; `&` binds looser than `<<` but tighter than `?:`.
struct Voidify {
  void operator&(std::ostream&) const {}
};

template <typename A, typename B, typename Op>
CheckOpResult CheckOp(const A& a, const B& b, Op op) {
  if (op(a, b)) [[likely]] {
    return {};
  }
  std::ostringstream os;
  os << " (";
  PrintCheckOperand(os, a);
  os << " vs. ";
  PrintCheckOperand(os, b);
  os << ")";
  return {os.str()};
}

// Accumulates the failure message; the destructor emits it and aborts. Only
// ever constructed on the (cold) failure path.
class CheckFailureStream {
 public:
  CheckFailureStream(const char* macro, const char* expr, const char* file,
                     int line) {
    stream_ << file << ":" << line << ": " << macro << " failed: " << expr;
  }

  CheckFailureStream(const CheckFailureStream&) = delete;
  CheckFailureStream& operator=(const CheckFailureStream&) = delete;

  [[noreturn]] ~CheckFailureStream() {
    const std::string message = stream_.str();
    std::fprintf(stderr, "%s\n", message.c_str());
    std::fflush(stderr);
    if (CheckFailureHook hook =
            CheckFailureHookSlot().load(std::memory_order_acquire)) {
      hook(message.c_str());
    }
    std::abort();
  }

  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace aer::internal

// Expression form (ternary + Voidify, the glog idiom): contains no `if`, so
// un-braced use inside an outer `if` cannot trip -Wdangling-else, and the
// whole macro plus streamed message is a single expression statement. The
// failure stream (and everything `<<`-ed onto it) is only evaluated when the
// condition fails; the abort happens in the stream temporary's destructor at
// the end of the full expression, after the message is complete.
#define AER_CHECK(cond)                                                   \
  (cond) ? (void)0                                                        \
         : ::aer::internal::Voidify() &                                   \
               ::aer::internal::CheckFailureStream("AER_CHECK", #cond,    \
                                                   __FILE__, __LINE__)    \
                       .stream()                                          \
                   << " "

// Comparison checks: evaluate each operand exactly once and print both
// values on failure, e.g.
//   rng.h:76: AER_CHECK_GT failed: bound > 0u (0 vs. 0)
// The `while` both scopes the result object and never loops: the body
// aborts. No `else` — see above.
#define AER_CHECK_OP_(macro, op, a, b)                                     \
  while (::aer::internal::CheckOpResult aer_internal_check_result =        \
             ::aer::internal::CheckOp(                                     \
                 (a), (b),                                                 \
                 [](const auto& x, const auto& y) { return x op y; }))     \
  ::aer::internal::CheckFailureStream(#macro, #a " " #op " " #b, __FILE__, \
                                      __LINE__)                            \
          .stream()                                                        \
      << aer_internal_check_result.failure << " "

#define AER_CHECK_EQ(a, b) AER_CHECK_OP_(AER_CHECK_EQ, ==, a, b)
#define AER_CHECK_NE(a, b) AER_CHECK_OP_(AER_CHECK_NE, !=, a, b)
#define AER_CHECK_LE(a, b) AER_CHECK_OP_(AER_CHECK_LE, <=, a, b)
#define AER_CHECK_LT(a, b) AER_CHECK_OP_(AER_CHECK_LT, <, a, b)
#define AER_CHECK_GE(a, b) AER_CHECK_OP_(AER_CHECK_GE, >=, a, b)
#define AER_CHECK_GT(a, b) AER_CHECK_OP_(AER_CHECK_GT, >, a, b)

// Debug-tier checks: on in debug builds, compiled out (arguments unevaluated
// but still type-checked) in release. Define AER_FORCE_DCHECKS to keep them
// on regardless — the sanitizer CI jobs do.
#if !defined(NDEBUG) || defined(AER_FORCE_DCHECKS)
#define AER_DCHECK_IS_ON() 1
#else
#define AER_DCHECK_IS_ON() 0
#endif

#if AER_DCHECK_IS_ON()
#define AER_DCHECK(cond) AER_CHECK(cond)
#define AER_DCHECK_EQ(a, b) AER_CHECK_EQ(a, b)
#define AER_DCHECK_NE(a, b) AER_CHECK_NE(a, b)
#define AER_DCHECK_LE(a, b) AER_CHECK_LE(a, b)
#define AER_DCHECK_LT(a, b) AER_CHECK_LT(a, b)
#define AER_DCHECK_GE(a, b) AER_CHECK_GE(a, b)
#define AER_DCHECK_GT(a, b) AER_CHECK_GT(a, b)
#else
// `while (false)` keeps the operands and any streamed message inside the
// dead statement: nothing runs, everything still compiles.
#define AER_DCHECK(cond) while (false) AER_CHECK(cond)
#define AER_DCHECK_EQ(a, b) while (false) AER_CHECK_EQ(a, b)
#define AER_DCHECK_NE(a, b) while (false) AER_CHECK_NE(a, b)
#define AER_DCHECK_LE(a, b) while (false) AER_CHECK_LE(a, b)
#define AER_DCHECK_LT(a, b) while (false) AER_CHECK_LT(a, b)
#define AER_DCHECK_GE(a, b) while (false) AER_CHECK_GE(a, b)
#define AER_DCHECK_GT(a, b) while (false) AER_CHECK_GT(a, b)
#endif

#endif  // AER_COMMON_CHECK_H_
