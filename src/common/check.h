// Lightweight invariant-checking macros.
//
// AER_CHECK is always on (also in release builds): the library is a research
// artifact and silent state corruption would invalidate experiment results.
// Failures print the condition and location and abort, so a violated invariant
// is caught at the point of damage rather than in a downstream figure.
#ifndef AER_COMMON_CHECK_H_
#define AER_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace aer::internal {

[[noreturn]] inline void CheckFailed(const char* cond, const char* file,
                                     int line) {
  std::fprintf(stderr, "AER_CHECK failed: %s at %s:%d\n", cond, file, line);
  std::abort();
}

}  // namespace aer::internal

#define AER_CHECK(cond)                                        \
  do {                                                         \
    if (!(cond)) {                                             \
      ::aer::internal::CheckFailed(#cond, __FILE__, __LINE__); \
    }                                                          \
  } while (0)

// Checks with a relation, printing both operand expressions.
#define AER_CHECK_LE(a, b) AER_CHECK((a) <= (b))
#define AER_CHECK_LT(a, b) AER_CHECK((a) < (b))
#define AER_CHECK_GE(a, b) AER_CHECK((a) >= (b))
#define AER_CHECK_GT(a, b) AER_CHECK((a) > (b))
#define AER_CHECK_EQ(a, b) AER_CHECK((a) == (b))
#define AER_CHECK_NE(a, b) AER_CHECK((a) != (b))

#endif  // AER_COMMON_CHECK_H_
