#include "common/json_writer.h"

#include <cmath>
#include <utility>

#include "common/check.h"
#include "common/string_util.h"

namespace aer {
namespace {

void AppendEscaped(std::string& out, std::string_view s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", static_cast<unsigned>(
                                          static_cast<unsigned char>(c)));
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void Indent(std::string& out, int depth) {
  out.append(static_cast<std::size_t>(depth) * 2, ' ');
}

}  // namespace

JsonValue JsonValue::String(std::string_view s) {
  JsonValue v(Kind::kString);
  v.string_ = std::string(s);
  return v;
}

JsonValue JsonValue::Number(double value) {
  AER_CHECK(std::isfinite(value)) << "JSON has no NaN/Inf";
  JsonValue v(Kind::kNumber);
  v.number_ = value;
  return v;
}

JsonValue JsonValue::Int(std::int64_t value) {
  JsonValue v(Kind::kInt);
  v.int_ = value;
  return v;
}

JsonValue JsonValue::Bool(bool value) {
  JsonValue v(Kind::kBool);
  v.bool_ = value;
  return v;
}

JsonValue JsonValue::Object() { return JsonValue(Kind::kObject); }

JsonValue JsonValue::Array() { return JsonValue(Kind::kArray); }

JsonValue& JsonValue::Set(std::string_view key, JsonValue value) {
  AER_CHECK(kind_ == Kind::kObject) << "Set() on a non-object JSON value";
  for (auto& [existing, member] : members_) {
    if (existing == key) {
      *member = std::move(value);
      return *member;
    }
  }
  members_.emplace_back(std::string(key),
                        std::make_unique<JsonValue>(std::move(value)));
  return *members_.back().second;
}

JsonValue* JsonValue::Find(std::string_view key) {
  AER_CHECK(kind_ == Kind::kObject) << "Find() on a non-object JSON value";
  for (auto& [existing, member] : members_) {
    if (existing == key) return member.get();
  }
  return nullptr;
}

JsonValue& JsonValue::Append(JsonValue value) {
  AER_CHECK(kind_ == Kind::kArray) << "Append() on a non-array JSON value";
  elements_.push_back(std::make_unique<JsonValue>(std::move(value)));
  return *elements_.back();
}

void JsonValue::Render(std::string& out, int depth) const {
  switch (kind_) {
    case Kind::kString:
      AppendEscaped(out, string_);
      break;
    case Kind::kNumber:
      out += StrFormat("%.17g", number_);
      break;
    case Kind::kInt:
      out += StrFormat("%lld", static_cast<long long>(int_));
      break;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Kind::kObject: {
      if (members_.empty()) {
        out += "{}";
        break;
      }
      out += "{\n";
      for (std::size_t i = 0; i < members_.size(); ++i) {
        Indent(out, depth + 1);
        AppendEscaped(out, members_[i].first);
        out += ": ";
        members_[i].second->Render(out, depth + 1);
        if (i + 1 < members_.size()) out += ",";
        out += "\n";
      }
      Indent(out, depth);
      out += "}";
      break;
    }
    case Kind::kArray: {
      if (elements_.empty()) {
        out += "[]";
        break;
      }
      out += "[\n";
      for (std::size_t i = 0; i < elements_.size(); ++i) {
        Indent(out, depth + 1);
        elements_[i]->Render(out, depth + 1);
        if (i + 1 < elements_.size()) out += ",";
        out += "\n";
      }
      Indent(out, depth);
      out += "]";
      break;
    }
  }
}

std::string JsonValue::ToString() const {
  std::string out;
  Render(out, 0);
  out.push_back('\n');
  return out;
}

}  // namespace aer
