// Small statistics helpers shared by the cost model, the evaluator and the
// benches: an online mean/variance accumulator (Welford) and a log-bucketed
// histogram for duration distributions.
#ifndef AER_COMMON_STATS_H_
#define AER_COMMON_STATS_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace aer {

// Online accumulator: mean / variance / min / max without storing samples.
class RunningStat {
 public:
  void Add(double x);

  std::int64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  // Kahan-compensated running sum: exact up to one rounding of the total,
  // not mean_ * count_ (which loses low-order bits for large counts).
  double sum() const { return count_ > 0 ? sum_ : 0.0; }

  // Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;

  // Merges another accumulator into this one (parallel Welford).
  void Merge(const RunningStat& other);

 private:
  void AddToSum(double x);

  std::int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double sum_comp_ = 0.0;  // Kahan compensation (lost low-order bits)
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Histogram with geometrically growing bucket bounds, suited to repair
// durations that span seconds to days.
class LogHistogram {
 public:
  // Buckets: [0, base), [base, base*growth), ... `bucket_count` buckets plus
  // an overflow bucket.
  LogHistogram(double base, double growth, int bucket_count);

  void Add(double x);

  // Adds another histogram's counts bucket-by-bucket. CHECK-fails unless
  // both histograms share the same (base, growth, bucket_count) geometry.
  void Merge(const LogHistogram& other);

  std::int64_t total_count() const { return total_; }
  int bucket_count() const { return static_cast<int>(counts_.size()); }
  std::int64_t bucket(int i) const { return counts_[static_cast<size_t>(i)]; }
  // Lower bound of bucket i (0 for the first).
  double bucket_lower(int i) const;
  double base() const { return base_; }
  double growth() const { return growth_; }

  // Approximate quantile by linear interpolation within the bucket.
  // Pinned edge behavior (see stats_test.cc): an empty histogram returns 0;
  // q=0 returns the lower edge of the first non-empty bucket; q=1 returns
  // the upper edge of the last non-empty bucket; samples in the overflow
  // bucket interpolate inside [lower, lower*growth).
  double ApproxQuantile(double q) const;

  std::string ToString() const;

 private:
  double base_;
  double growth_;
  std::vector<std::int64_t> counts_;  // last bucket = overflow
  std::int64_t total_ = 0;
};

}  // namespace aer

#endif  // AER_COMMON_STATS_H_
