#include "common/rng.h"

#include <algorithm>
#include <cmath>

namespace aer {

double Rng::NextExponential(double mean) {
  AER_CHECK_GT(mean, 0.0);
  // 1 - NextDouble() is in (0, 1], so the log is finite.
  return -mean * std::log(1.0 - NextDouble());
}

double Rng::NextGaussian() {
  const double u1 = 1.0 - NextDouble();  // (0, 1]
  const double u2 = NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * 3.14159265358979323846 * u2);
}

double Rng::NextLogNormalWithMean(double mean, double sigma) {
  AER_CHECK_GT(mean, 0.0);
  AER_CHECK_GE(sigma, 0.0);
  // If X = exp(N(mu, sigma^2)) then E[X] = exp(mu + sigma^2/2); solve for mu
  // so the sample mean matches the requested mean.
  const double mu = std::log(mean) - 0.5 * sigma * sigma;
  return std::exp(mu + sigma * NextGaussian());
}

std::size_t Rng::NextWeighted(std::span<const double> weights) {
  AER_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    // Debug tier (hot path: one check per weight per draw); the always-on
    // total check below still rejects fully-degenerate inputs in release.
    AER_DCHECK_GE(w, 0.0);
    total += w;
  }
  AER_CHECK_GT(total, 0.0) << "weights must be non-negative with positive sum";
  double x = NextDouble() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x < 0.0) return i;
  }
  return weights.size() - 1;  // numeric edge: fell off the end
}

ZipfDistribution::ZipfDistribution(std::size_t n, double s) {
  AER_CHECK_GT(n, 0u);
  cdf_.resize(n);
  double total = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf_[k] = total;
  }
  for (auto& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against rounding
}

std::size_t ZipfDistribution::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

double ZipfDistribution::Pmf(std::size_t k) const {
  AER_CHECK_LT(k, cdf_.size());
  return k == 0 ? cdf_[0] : cdf_[k] - cdf_[k - 1];
}

}  // namespace aer
