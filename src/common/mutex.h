// Capability-annotated locking primitives: the lock types annotated code
// must use (see common/thread_annotations.h and docs/STATIC_ANALYSIS.md).
//
// libstdc++'s std::mutex / std::lock_guard carry no thread-safety
// attributes, so Clang's analysis cannot see acquisitions made through
// them; a field marked AER_GUARDED_BY(std::mutex) would flag every access,
// locked or not. These thin wrappers add the attributes and nothing else:
//
//   aer::Mutex      — std::mutex with AER_CAPABILITY; Lock/Unlock/TryLock.
//   aer::MutexLock  — std::lock_guard with AER_SCOPED_CAPABILITY.
//   aer::CondVar    — std::condition_variable whose Wait() keeps the
//                     capability held from the analysis's point of view
//                     (it releases and reacquires internally, like any
//                     condition wait).
//
// The aer_lint mutex-annotation rule forbids raw std::mutex members in src/
// headers, so every mutex-protected component funnels through this header
// and stays statically checkable. Runtime behavior is byte-identical to the
// std types; TSan sees straight through the wrappers.
#ifndef AER_COMMON_MUTEX_H_
#define AER_COMMON_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace aer {

class CondVar;

// Plain exclusive mutex, annotated as a capability. Same cost and
// semantics as the std::mutex it wraps.
class AER_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() AER_ACQUIRE() { mu_.lock(); }
  void Unlock() AER_RELEASE() { mu_.unlock(); }
  bool TryLock() AER_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

// RAII lock with the scoped-capability attribute, so the analysis knows the
// mutex is held for exactly this scope (the std::lock_guard idiom).
class AER_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) AER_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() AER_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

// Condition variable for aer::Mutex. Wait() is annotated AER_REQUIRES(mu):
// the capability is held on entry and on return; the internal release
// during the block is invisible to the analysis, exactly as with
// std::condition_variable::wait. Callers therefore re-test their predicate
// in a while loop in the annotated function body — never in a lambda, which
// the analysis would treat as an unlocked context.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) AER_REQUIRES(mu) {
    // Adopt the already-held native mutex for the wait, then release the
    // unique_lock without unlocking so ownership stays with the caller.
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace aer

#endif  // AER_COMMON_MUTEX_H_
