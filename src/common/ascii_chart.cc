#include "common/ascii_chart.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.h"
#include "common/string_util.h"

namespace aer {
namespace {

constexpr char kGlyphs[] = {'#', '*', '+', 'o', 'x', '='};

double MaxValue(const std::vector<ChartSeries>& series) {
  double mx = 0.0;
  for (const auto& s : series) {
    for (double v : s.values) mx = std::max(mx, v);
  }
  return mx;
}

std::size_t MaxLabelWidth(const std::vector<std::string>& labels) {
  std::size_t w = 0;
  for (const auto& l : labels) w = std::max(w, l.size());
  return w;
}

std::string Bars(const std::vector<std::string>& labels,
                 const std::vector<ChartSeries>& series, int width,
                 bool log_scale) {
  for (const auto& s : series) {
    AER_CHECK_EQ(s.values.size(), labels.size());
  }
  std::ostringstream os;
  const double mx = MaxValue(series);
  const double log_mx = mx > 0 ? std::log10(std::max(mx, 1.0)) : 1.0;
  const std::size_t lw = MaxLabelWidth(labels);

  // Legend (only when several series share the chart).
  if (series.size() > 1) {
    for (std::size_t si = 0; si < series.size(); ++si) {
      os << "  " << kGlyphs[si % sizeof(kGlyphs)] << " = "
         << series[si].name << "\n";
    }
  }
  for (std::size_t i = 0; i < labels.size(); ++i) {
    for (std::size_t si = 0; si < series.size(); ++si) {
      const double v = series[si].values[i];
      int n = 0;
      if (mx > 0 && v > 0) {
        if (log_scale) {
          const double lv = std::log10(std::max(v, 1.0));
          n = static_cast<int>(std::lround(lv / log_mx * width));
        } else {
          n = static_cast<int>(std::lround(v / mx * width));
        }
      }
      os << "  ";
      // Print the label on the first series row only.
      if (si == 0) {
        os << labels[i] << std::string(lw - labels[i].size(), ' ');
      } else {
        os << std::string(lw, ' ');
      }
      os << " |" << std::string(static_cast<std::size_t>(n),
                                kGlyphs[si % sizeof(kGlyphs)]);
      os << " " << StrFormat("%.4g", v) << "\n";
    }
  }
  return os.str();
}

}  // namespace

std::string RenderBarChart(const std::vector<std::string>& labels,
                           const std::vector<ChartSeries>& series, int width) {
  return Bars(labels, series, width, /*log_scale=*/false);
}

std::string RenderLogBarChart(const std::vector<std::string>& labels,
                              const std::vector<ChartSeries>& series,
                              int width) {
  return Bars(labels, series, width, /*log_scale=*/true);
}

std::string RenderTable(const std::string& x_name,
                        const std::vector<std::string>& labels,
                        const std::vector<ChartSeries>& series) {
  for (const auto& s : series) {
    AER_CHECK_EQ(s.values.size(), labels.size());
  }
  std::ostringstream os;
  const std::size_t lw = std::max(x_name.size(), MaxLabelWidth(labels));
  os << "  " << x_name << std::string(lw - x_name.size(), ' ');
  for (const auto& s : series) os << "  " << StrFormat("%14s", s.name.c_str());
  os << "\n";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    os << "  " << labels[i] << std::string(lw - labels[i].size(), ' ');
    for (const auto& s : series) os << "  " << StrFormat("%14.6g", s.values[i]);
    os << "\n";
  }
  return os.str();
}

}  // namespace aer
