// Work-stealing thread pool — the repo's one concurrency primitive.
//
// Training is embarrassingly parallel across error types (one Q-table and
// one derived RNG stream per type, see docs/PARALLELISM.md), bootstrap
// resamples are independent, and figure benches replicate experiments that
// never share state. All of them funnel through this pool so the tree has a
// single, TSan-exercised scheduler instead of ad-hoc std::thread spawns.
//
// Design: one deque per worker, each guarded by its own mutex. A task
// submitted from outside the pool lands on the least-loaded deque; a task
// submitted from inside a worker lands on that worker's own deque (cheap,
// keeps related work hot). Workers pop newest-first from their own deque
// and steal oldest-first from the others, so long chains keep locality
// while idle workers drain the heaviest queues. The per-deque mutexes are
// uncontended in the common case; this is deliberately simpler than a
// lock-free Chase-Lev deque and is the variant TSan can verify exhaustively.
//
// Guarantees:
//   - Submit() never blocks (beyond the deque mutex) and returns a
//     std::future; exceptions thrown by the task propagate through it.
//   - ParallelFor() runs the closure over [0, n) with the *calling thread
//     participating*, so it completes even on a pool of paused workers and
//     never deadlocks when called from inside a pool task. The first
//     exception thrown by any index is rethrown in the caller after all
//     indices finish or are abandoned.
//   - The destructor drains: every task already submitted runs to
//     completion before the workers join ("shutdown while busy" is safe).
//
// Determinism note: the pool schedules *which thread* runs a task, never
// what the task computes. Anything that must be bit-reproducible derives
// its RNG stream from stable identifiers (DeriveStream in common/rng.h),
// not from scheduling order.
//
// Lock discipline is stated in the types (common/thread_annotations.h):
// each deque's task list is guarded by that deque's mutex, and the
// pending-task count and shutdown flag by `wake_mu_`. A Clang build with
// -Werror=thread-safety proves every access holds the right lock.
#ifndef AER_COMMON_THREAD_POOL_H_
#define AER_COMMON_THREAD_POOL_H_

#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace aer {

class ThreadPool {
 public:
  // `num_threads` <= 0 picks DefaultThreadCount().
  explicit ThreadPool(int num_threads = 0);

  // Drains every submitted task, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  // AER_THREADS environment variable if set (clamped to >= 1), otherwise
  // std::thread::hardware_concurrency() (>= 1).
  static int DefaultThreadCount();

  // Schedules `fn` and returns a future for its result. Safe to call from
  // inside a pool task.
  template <typename F>
  auto Submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    Enqueue([task]() { (*task)(); });
    return future;
  }

  // Runs fn(i) for every i in [0, n), spreading indices over the workers
  // with the calling thread participating; returns when all have finished.
  // Rethrows the first exception (in index-scheduling order of detection);
  // remaining indices still run (no cancellation — tasks are short).
  void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& fn);

  // Number of tasks currently queued (for tests and diagnostics; racy by
  // nature, exact only when the pool is idle).
  std::size_t QueuedTasks() const;

 private:
  using Task = std::function<void()>;

  struct Deque {
    mutable Mutex mu;
    std::deque<Task> tasks AER_GUARDED_BY(mu);
  };

  void Enqueue(Task task);
  void WorkerLoop(std::size_t worker_index);
  // Pops newest-first from `own`, else steals oldest-first from any other
  // deque. Returns false when every deque is empty.
  bool TryAcquire(std::size_t own, Task& out);

  // Sized in the constructor, structurally immutable afterwards; only the
  // per-deque task lists (guarded above) ever change.
  std::vector<std::unique_ptr<Deque>> deques_;
  std::vector<std::thread> workers_;

  // Wakes sleeping workers; `pending_` counts queued-but-unstarted tasks so
  // workers only sleep when there is provably nothing to steal.
  mutable Mutex wake_mu_;
  CondVar wake_cv_;
  std::size_t pending_ AER_GUARDED_BY(wake_mu_) = 0;
  bool shutdown_ AER_GUARDED_BY(wake_mu_) = false;
};

}  // namespace aer

#endif  // AER_COMMON_THREAD_POOL_H_
