// Minimal CSV emission for bench outputs. Every figure bench prints a
// human-readable table to stdout and, when AER_CSV_DIR is set, also writes a
// machine-readable CSV so the series can be re-plotted.
#ifndef AER_COMMON_CSV_H_
#define AER_COMMON_CSV_H_

#include <fstream>
#include <string>
#include <vector>

namespace aer {

class CsvWriter {
 public:
  // Opens `<dir>/<name>.csv` for writing; silently becomes a no-op writer if
  // `dir` is empty (the common case when AER_CSV_DIR is unset).
  CsvWriter(const std::string& dir, const std::string& name);

  void WriteRow(const std::vector<std::string>& fields);

  bool enabled() const { return out_.is_open(); }

 private:
  static std::string Escape(const std::string& field);

  std::ofstream out_;
};

// Reads the AER_CSV_DIR environment variable ("" if unset).
std::string CsvDirFromEnv();

}  // namespace aer

#endif  // AER_COMMON_CSV_H_
