// Minimal JSON emission for machine-readable artifacts (the BENCH_*.json
// perf records, see bench/bench_json.h). Append-only and ordered: keys are
// emitted in insertion order so two runs of the same bench produce
// textually diffable files. Writing only — the repo consumes these files
// with external tooling (bench/run_all.py), never in C++.
#ifndef AER_COMMON_JSON_WRITER_H_
#define AER_COMMON_JSON_WRITER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace aer {

class JsonValue {
 public:
  static JsonValue String(std::string_view s);
  static JsonValue Number(double v);  // emitted with %.17g (round-trip safe)
  static JsonValue Int(std::int64_t v);
  static JsonValue Bool(bool v);
  static JsonValue Object();
  static JsonValue Array();

  // Object operations (CHECK-fails on other kinds). Set() replaces the
  // value of an existing key in place, keeping its original position.
  JsonValue& Set(std::string_view key, JsonValue value);
  JsonValue* Find(std::string_view key);  // nullptr when absent

  // Array operation (CHECK-fails on other kinds).
  JsonValue& Append(JsonValue value);

  // Serializes with 2-space indentation and a trailing newline at the top
  // level, RFC 8259 string escaping.
  std::string ToString() const;

 private:
  enum class Kind { kString, kNumber, kInt, kBool, kObject, kArray };

  explicit JsonValue(Kind kind) : kind_(kind) {}

  void Render(std::string& out, int depth) const;

  Kind kind_;
  std::string string_;
  double number_ = 0.0;
  std::int64_t int_ = 0;
  bool bool_ = false;
  std::vector<std::pair<std::string, std::unique_ptr<JsonValue>>> members_;
  std::vector<std::unique_ptr<JsonValue>> elements_;
};

}  // namespace aer

#endif  // AER_COMMON_JSON_WRITER_H_
