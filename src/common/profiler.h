// Wall-clock scope profiler — the repo's only sanctioned use of wall time
// inside library code (docs/OBSERVABILITY.md has the full contract).
//
//   void QLearningTrainer::TrainType(...) {
//     AER_PROFILE_SCOPE("train_type");
//     ...
//   }
//
// AER_PROFILE_SCOPE(name) opens an RAII timer on the calling thread. Scopes
// nest: each thread keeps a stack of active scopes, and time is accumulated
// into a *hierarchical* node keyed by the path of enclosing scope names
// ("train_all/train_type/train_sweep"), so the profile reads like a flame
// graph collapsed by path. `name` must be a string literal (or otherwise
// outlive the process): nodes keep a copy, but the hot path compares by
// content, and short stable names keep that cheap.
//
// Sharding and merge: every thread owns a private shard (node tree + scope
// stack). The owner thread mutates structure under the shard mutex (only
// ever contended by a concurrent snapshot) and bumps per-node atomic
// counters lock-free on scope exit. ProfileRegistry::Snapshot() merges all
// shards into one sorted-by-path list; addition of int64 call counts and
// nanosecond totals is commutative, so the merged profile is independent of
// thread count and registration order — the same deterministic-merge recipe
// MetricsRegistry::MergeFrom uses. The *wall times* themselves are of course
// nondeterministic; deterministic consumers (golden tests, `aerctl profile`
// without --wall) format calls only.
//
// Zero-cost when compiled out: configuring with -DAER_PROFILING=OFF defines
// AER_PROFILING_DISABLED globally and AER_PROFILE_SCOPE expands to nothing —
// not a disabled branch, *nothing* — so instrumented hot loops carry no
// overhead. A TU can also #define AER_PROFILING_DISABLED before including
// this header to get the compiled-out macro in an otherwise-enabled build
// (bench_training and tests/obs/profiler_off_test.cc prove the expansion is
// empty with a constexpr static_assert).
#ifndef AER_COMMON_PROFILER_H_
#define AER_COMMON_PROFILER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/json_writer.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace aer {

// One merged profile node: the '/'-joined path of enclosing scope names,
// how often the scope was entered, and the total wall time spent inside it
// (including children — it is a scope timer, not a self-time profiler).
struct ProfileEntry {
  std::string path;
  std::int64_t calls = 0;
  std::int64_t total_ns = 0;
};

class ProfileRegistry {
 public:
  // The process-wide registry AER_PROFILE_SCOPE records into.
  static ProfileRegistry& Global();

  ProfileRegistry() = default;
  ProfileRegistry(const ProfileRegistry&) = delete;
  ProfileRegistry& operator=(const ProfileRegistry&) = delete;

  // Merged view over all thread shards: one entry per distinct path, sorted
  // by path, zero-call nodes omitted. Counts and times add across shards,
  // so the result is independent of thread interleaving.
  std::vector<ProfileEntry> Snapshot() const;

  // Zeroes every node's counters (structure and live scope stacks are
  // preserved, so this is safe while scopes are open — their exit times
  // simply land in the fresh epoch). For benches and tests.
  void Reset();

  // Total scope entries across all shards (= sum of Snapshot calls fields).
  std::int64_t TotalCalls() const;

  struct FormatOptions {
    // With wall off, only paths and call counts are printed — a pure
    // function of the control flow, byte-stable for golden tests.
    bool include_wall = true;
  };
  // "profile <path> calls=<n> [total_ms=<x> avg_us=<y>]\n" per entry.
  static std::string FormatProfile(const std::vector<ProfileEntry>& entries,
                                   const FormatOptions& options);
  static JsonValue ProfileToJson(const std::vector<ProfileEntry>& entries,
                                 const FormatOptions& options);

  // --- internal surface for ProfileScope (public for tests) ---

  class Shard {
   public:
    // Finds or creates the child node of the current stack top, pushes it,
    // and returns. Structure mutation is guarded by the shard mutex; the
    // stack is owner-thread-only.
    void Enter(std::string_view name);
    // Pops the current node, adding `elapsed_ns` and one call to it.
    // Lock-free: the popped Node* is stable (unique_ptr-owned, never freed
    // before process exit) and its counters are atomics.
    void Exit(std::int64_t elapsed_ns);

   private:
    friend class ProfileRegistry;

    struct Node {
      std::string name;
      const Node* parent = nullptr;  // nullptr for roots
      std::atomic<std::int64_t> calls{0};
      std::atomic<std::int64_t> total_ns{0};
    };

    mutable Mutex mu_;
    // Creation-ordered node storage (parents precede children) plus the
    // (parent, name) -> node lookup used by Enter. Only the structure is
    // guarded; the atomic counters inside each node are written lock-free.
    std::vector<std::unique_ptr<Node>> nodes_ AER_GUARDED_BY(mu_);
    std::map<std::pair<const Node*, std::string>, Node*, std::less<>> index_
        AER_GUARDED_BY(mu_);
    // Active-scope stack. Owner-thread-only by construction (LocalShard
    // hands each thread its own shard), so deliberately unguarded.
    std::vector<Node*> stack_;
  };

  // The calling thread's shard of this registry (created and registered on
  // first use; lives until process exit so late snapshots see all data).
  Shard& LocalShard();

 private:
  mutable Mutex mu_;
  std::vector<std::shared_ptr<Shard>> shards_ AER_GUARDED_BY(mu_);
};

// RAII timer used by AER_PROFILE_SCOPE; usable directly when the macro's
// static name restriction is inconvenient.
class ProfileScope {
 public:
  explicit ProfileScope(std::string_view name)
      : shard_(ProfileRegistry::Global().LocalShard()) {
    shard_.Enter(name);
    start_ = std::chrono::steady_clock::now();
  }
  ~ProfileScope() {
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    shard_.Exit(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count());
  }
  ProfileScope(const ProfileScope&) = delete;
  ProfileScope& operator=(const ProfileScope&) = delete;

 private:
  ProfileRegistry::Shard& shard_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace aer

// AER_PROFILING_IS_ON() is a per-TU preprocessor fact, not a linkable
// constant: a TU that defines AER_PROFILING_DISABLED sees 0 even in a build
// where the library was compiled with profiling on.
#if defined(AER_PROFILING_DISABLED)
#define AER_PROFILING_IS_ON() 0
// Expands to nothing at all — an empty statement once the caller's trailing
// semicolon lands — so disabled builds carry zero overhead by construction.
#define AER_PROFILE_SCOPE(name)
#else
#define AER_PROFILING_IS_ON() 1
#define AER_PROFILE_INTERNAL_CAT2(a, b) a##b
#define AER_PROFILE_INTERNAL_CAT(a, b) AER_PROFILE_INTERNAL_CAT2(a, b)
#define AER_PROFILE_SCOPE(name)                                        \
  ::aer::ProfileScope AER_PROFILE_INTERNAL_CAT(aer_profile_scope_,     \
                                               __LINE__) {             \
    name                                                               \
  }
#endif

#endif  // AER_COMMON_PROFILER_H_
