// Clang thread-safety capability annotations, wrapped as AER_* macros.
//
// These attach the repo's locking contracts to the type system: a field
// names the mutex that guards it (AER_GUARDED_BY), a private *Locked()
// helper states the lock it expects (AER_REQUIRES), and a Clang build with
// -Werror=thread-safety,thread-safety-beta turns any unlocked access into a
// compile error. GCC (and any compiler without the attributes) sees empty
// macros, so annotations are free everywhere and enforced where Clang runs
// — the dedicated clang-thread-safety CI leg and the negative-compile
// fixtures under tests/negative_compile/ (docs/STATIC_ANALYSIS.md).
//
// The annotations only bind to capability-annotated lock types; libstdc++'s
// std::mutex is not one, so annotated code locks through aer::Mutex /
// aer::MutexLock / aer::CondVar in common/mutex.h instead (the aer_lint
// mutex-annotation rule enforces this in src/ headers).
#ifndef AER_COMMON_THREAD_ANNOTATIONS_H_
#define AER_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__)
#define AER_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define AER_THREAD_ANNOTATION_(x)  // no-op outside Clang
#endif

// On a class: instances are capabilities (lockable). The string names the
// capability kind in diagnostics ("mutex").
#define AER_CAPABILITY(x) AER_THREAD_ANNOTATION_(capability(x))

// On an RAII class whose constructor acquires and destructor releases.
#define AER_SCOPED_CAPABILITY AER_THREAD_ANNOTATION_(scoped_lockable)

// On a data member: reads and writes require holding `x`.
#define AER_GUARDED_BY(x) AER_THREAD_ANNOTATION_(guarded_by(x))

// On a pointer member: the pointed-to data (not the pointer) is guarded.
#define AER_PT_GUARDED_BY(x) AER_THREAD_ANNOTATION_(pt_guarded_by(x))

// On a function: the caller must hold the listed capabilities (exclusively /
// shared). This is how *Locked() helpers declare their contract.
#define AER_REQUIRES(...) \
  AER_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define AER_REQUIRES_SHARED(...) \
  AER_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

// On a function: it acquires / releases the listed capabilities.
#define AER_ACQUIRE(...) \
  AER_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define AER_ACQUIRE_SHARED(...) \
  AER_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))
#define AER_RELEASE(...) \
  AER_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define AER_RELEASE_SHARED(...) \
  AER_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))

// On a function returning bool: acquires when the result equals the first
// argument.
#define AER_TRY_ACQUIRE(...) \
  AER_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

// On a function: the caller must NOT hold the listed capabilities (catches
// self-deadlock on reentry).
#define AER_EXCLUDES(...) AER_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

// On a function: asserts at runtime that the capability is held, informing
// the analysis (for call sites the analysis cannot see through).
#define AER_ASSERT_CAPABILITY(x) \
  AER_THREAD_ANNOTATION_(assert_capability(x))

// On a function returning a reference to a capability.
#define AER_RETURN_CAPABILITY(x) AER_THREAD_ANNOTATION_(lock_returned(x))

// Lock-ordering declarations (checked under -Wthread-safety-beta).
#define AER_ACQUIRED_BEFORE(...) \
  AER_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define AER_ACQUIRED_AFTER(...) \
  AER_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

// Escape hatch: disables the analysis for one function. Every use must
// carry a comment explaining why the contract holds anyway.
#define AER_NO_THREAD_SAFETY_ANALYSIS \
  AER_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // AER_COMMON_THREAD_ANNOTATIONS_H_
