// Deterministic byte-level corruption of serialized artifacts (recovery
// logs, Q-table checkpoints) — the injection layer that validates every
// parser's "corrupted input returns an error, never crashes" contract.
//
// Operates on in-memory strings so tests and benches can corrupt a
// serialization without touching the filesystem; CorruptFile wraps the same
// transforms for on-disk artifacts.
#ifndef AER_INJECT_FILE_CORRUPTOR_H_
#define AER_INJECT_FILE_CORRUPTOR_H_

#include <string>
#include <string_view>

#include "common/rng.h"

namespace aer {

// Flips `flips` random bits in-place (never in a byte of value '\n', so the
// line structure survives and the damage hits field contents — the harder
// case for a parser).
void BitFlip(std::string& text, int flips, Rng& rng);

// Returns `text` truncated at a random byte in (0, size) — models a crash
// mid-write or a partial download. The cut deliberately lands anywhere,
// including mid-line and mid-field.
std::string TruncateRandomly(std::string_view text, Rng& rng);

// Returns a copy with ~`fraction` of the non-empty lines individually
// damaged: a bit flip, a deleted field, garbage replacement, or a stray CR
// appended (each chosen per line by the rng).
std::string CorruptLines(std::string_view text, double fraction, Rng& rng);

// Applies CorruptLines (and, with probability `truncate_probability`,
// TruncateRandomly) to the file at `path`, rewriting it in place. Returns
// false if the file cannot be read or written.
bool CorruptFile(const std::string& path, double fraction,
                 double truncate_probability, Rng& rng);

}  // namespace aer

#endif  // AER_INJECT_FILE_CORRUPTOR_H_
