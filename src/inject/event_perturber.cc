#include "inject/event_perturber.h"

#include "common/check.h"
#include "common/rng.h"

namespace aer {

RecoveryLog PerturbLog(const RecoveryLog& in, const LogPerturbConfig& config,
                       LogPerturbStats* stats) {
  AER_CHECK_GE(config.drop_symptom, 0.0);
  AER_CHECK_LE(config.drop_symptom, 1.0);
  AER_CHECK_GE(config.duplicate_entry, 0.0);
  AER_CHECK_GE(config.delay_entry, 0.0);
  AER_CHECK_GE(config.retry_action, 0.0);
  AER_CHECK_GT(config.max_delay, 0);
  AER_CHECK_GT(config.retry_gap, 0);

  Rng rng(config.seed);
  LogPerturbStats local;
  RecoveryLog out;
  // Pre-intern the full symptom table so ids survive even when every entry
  // of some symptom is dropped (downstream code indexes by id).
  for (SymptomId id = 0; id < static_cast<SymptomId>(in.symptoms().size());
       ++id) {
    out.symptoms().Intern(in.symptoms().Name(id));
  }

  for (const LogEntry& entry : in.entries()) {
    if (entry.kind == EntryKind::kSymptom &&
        rng.NextBool(config.drop_symptom)) {
      ++local.dropped;
      continue;
    }
    LogEntry delivered = entry;
    if (rng.NextBool(config.delay_entry)) {
      delivered.time +=
          rng.NextInt(1, static_cast<std::int64_t>(config.max_delay));
      ++local.delayed;
    }
    out.Append(delivered);
    if (rng.NextBool(config.duplicate_entry)) {
      out.Append(delivered);
      ++local.duplicated;
    }
    if (entry.kind == EntryKind::kAction &&
        rng.NextBool(config.retry_action)) {
      LogEntry retry = delivered;
      retry.time += config.retry_gap;
      out.Append(retry);
      ++local.retried;
    }
  }
  out.SortByTime();
  if (stats != nullptr) *stats = local;
  return out;
}

}  // namespace aer
