// NetPerturber — deterministic network- and node-fault injection for a small
// set of control-plane nodes (coordinators), addressed by dense integer ids.
// It is the control-plane counterpart of the event/log perturbers: the ctrl
// layer routes every coordinator-to-coordinator message through Route(),
// and drives scripted node crashes/restarts and link partitions through
// AdvanceTo().
//
// Two fault families:
//   - Scripted (exact sim-times, declared up front): node crash/restart and
//     symmetric or asymmetric link partitions between node groups. These
//     model the scenarios the control plane must provably survive
//     (docs/CONTROL_PLANE.md failure matrix).
//   - Probabilistic (seeded): per-message drop / delay / duplication, the
//     same arms the event-level InjectionHarness applies to symptom
//     traffic, here applied to heartbeats, votes, and replication.
//
// The perturber knows nothing about message contents or the ctrl layer —
// it operates on (from, to) node-id pairs only, which is what keeps it in
// src/inject below ctrl in the layering manifest.
#ifndef AER_INJECT_NET_PERTURBER_H_
#define AER_INJECT_NET_PERTURBER_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/sim_time.h"
#include "obs/metrics.h"
#include "obs/tracer.h"

namespace aer {

// One scripted node outage: the node is down in [at, restart_at); a negative
// restart_at means it never comes back within the run.
struct NodeCrash {
  SimTime at = 0;
  int node = -1;
  SimTime restart_at = -1;
};

// One scripted partition window [from, until): messages between side_a and
// side_b are dropped. Symmetric by default; `asymmetric` blocks only the
// a -> b direction (b can still reach a), modeling one-way link loss.
struct LinkPartition {
  SimTime from = 0;
  SimTime until = 0;
  std::vector<int> side_a;
  std::vector<int> side_b;
  bool asymmetric = false;
};

struct NetFaultScript {
  std::vector<NodeCrash> crashes;
  std::vector<LinkPartition> partitions;
};

struct NetPerturbConfig {
  std::uint64_t seed = 20070625;
  // Probabilistic per-message arms (0 disables; no RNG is consumed while
  // every probability is 0, so fault-free runs stay bit-identical across
  // cluster sizes).
  double drop_message = 0.0;
  double delay_message = 0.0;
  double duplicate_message = 0.0;
  SimTime max_delay = 10;

  // Machine-network arms, applied by RouteMachineHop() to the hops between
  // the control plane and fleet machines (dispatches, results). Defaults
  // keep the machine network reliable — and consume no RNG — so enabling
  // coordinator-link chaos alone reproduces historical runs byte-for-byte.
  double drop_machine_hop = 0.0;
  double delay_machine_hop = 0.0;
  double duplicate_machine_hop = 0.0;
};

// A transition AdvanceTo() applied while catching up to `now`.
struct NetTransition {
  enum class Kind : int {
    kCrash = 0,
    kRestart = 1,
    kPartitionStart = 2,
    kPartitionHeal = 3,
  };
  Kind kind = Kind::kCrash;
  SimTime at = 0;
  int node = -1;        // kCrash / kRestart
  int partition = -1;   // index into the script's partitions
};

class NetPerturber {
 public:
  NetPerturber(NetPerturbConfig config, NetFaultScript script);

  // Attaches observability sinks (either may be null; both must outlive the
  // perturber). Injection counts mirror into aer_inject_net_* /
  // aer_inject_partitions_* / aer_inject_coordinator_* metrics and each
  // transition or probabilistic hit emits an instant "inject:*" span.
  void SetObservers(obs::Tracer* tracer, obs::MetricsRegistry* metrics);

  // Applies every scripted transition with time <= now (in time order,
  // crashes before partitions at equal times) and returns them, so the
  // caller can reset crashed nodes' volatile state. Must be called with
  // non-decreasing `now`.
  std::vector<NetTransition> AdvanceTo(SimTime now);

  // Node liveness / link state as of the last AdvanceTo().
  bool NodeUp(int node) const;
  bool LinkOpen(int from, int to) const;

  // Routing verdict for one message sent at `now` (call AdvanceTo(now)
  // first). A closed link or down endpoint drops deterministically; the
  // probabilistic arms then apply in drop -> delay -> duplicate order.
  struct Routing {
    bool deliver = false;
    SimTime at = 0;       // delivery time (>= now + base latency)
    bool duplicated = false;
    SimTime duplicate_at = 0;
  };
  Routing Route(SimTime now, int from, int to, SimTime base_latency);

  // Routing verdict for one control-plane<->machine hop. Machines are not
  // membership nodes, so liveness/partition state does not apply — only the
  // probabilistic machine-hop arms (drop -> delay -> duplicate), which
  // consume RNG only when enabled.
  Routing RouteMachineHop(SimTime now, SimTime base_latency);

  struct Stats {
    std::int64_t messages_routed = 0;
    std::int64_t machine_hops_routed = 0;
    std::int64_t machine_drops = 0;
    std::int64_t machine_delays = 0;
    std::int64_t machine_duplicates = 0;
    std::int64_t partition_drops = 0;  // closed link or down endpoint
    std::int64_t random_drops = 0;
    std::int64_t delays = 0;
    std::int64_t duplicates = 0;
    std::int64_t crashes = 0;
    std::int64_t restarts = 0;
    std::int64_t partitions_started = 0;
    std::int64_t partitions_healed = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  struct PendingTransition {
    SimTime at = 0;
    int order = 0;  // stable tie-break at equal times
    NetTransition transition;
  };

  void Apply(const NetTransition& transition);

  NetPerturbConfig config_;
  NetFaultScript script_;
  Rng rng_;
  std::vector<PendingTransition> pending_;  // ascending, consumed from front
  std::size_t next_pending_ = 0;
  std::vector<int> down_nodes_;             // currently crashed
  std::vector<int> active_partitions_;      // indices into script_.partitions
  Stats stats_;

  obs::Tracer* tracer_ = nullptr;
  struct ObsMetrics {
    obs::Counter* partition_drops = nullptr;
    obs::Counter* random_drops = nullptr;
    obs::Counter* delays = nullptr;
    obs::Counter* duplicates = nullptr;
    obs::Counter* crashes = nullptr;
    obs::Counter* restarts = nullptr;
    obs::Counter* partitions_started = nullptr;
    obs::Counter* partitions_healed = nullptr;
  };
  ObsMetrics obs_;
};

}  // namespace aer

#endif  // AER_INJECT_NET_PERTURBER_H_
