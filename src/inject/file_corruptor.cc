#include "inject/file_corruptor.h"

#include <fstream>
#include <sstream>
#include <vector>

#include "common/check.h"
#include "common/string_util.h"

namespace aer {

void BitFlip(std::string& text, int flips, Rng& rng) {
  AER_CHECK_GE(flips, 0);
  if (text.empty()) return;
  for (int i = 0; i < flips; ++i) {
    // Retry until the victim byte is not a newline; bounded so a text of
    // only newlines cannot loop forever.
    for (int attempt = 0; attempt < 64; ++attempt) {
      const std::size_t pos =
          static_cast<std::size_t>(rng.NextBounded(text.size()));
      if (text[pos] == '\n') continue;
      text[pos] = static_cast<char>(
          static_cast<unsigned char>(text[pos]) ^
          static_cast<unsigned char>(1u << rng.NextBounded(8)));
      break;
    }
  }
}

std::string TruncateRandomly(std::string_view text, Rng& rng) {
  if (text.size() <= 1) return std::string(text);
  const std::size_t cut =
      1 + static_cast<std::size_t>(rng.NextBounded(text.size() - 1));
  return std::string(text.substr(0, cut));
}

std::string CorruptLines(std::string_view text, double fraction, Rng& rng) {
  AER_CHECK_GE(fraction, 0.0);
  AER_CHECK_LE(fraction, 1.0);
  std::ostringstream out;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t nl = text.find('\n', start);
    const std::size_t end = nl == std::string_view::npos ? text.size() : nl;
    std::string line(text.substr(start, end - start));
    if (!Trim(line).empty() && rng.NextBool(fraction)) {
      switch (rng.NextBounded(4)) {
        case 0:  // field-content bit flip
          BitFlip(line, 1, rng);
          break;
        case 1: {  // delete one tab-separated field
          const auto fields = Split(line, '\t');
          if (fields.size() > 1) {
            const std::size_t victim = rng.NextBounded(fields.size());
            std::vector<std::string> kept;
            for (std::size_t i = 0; i < fields.size(); ++i) {
              if (i != victim) kept.emplace_back(fields[i]);
            }
            line = Join(kept, "\t");
          } else {
            line.clear();
          }
          break;
        }
        case 2:  // replace with garbage
          line = "\xef\xbb\xbfgarbage " +
                 std::to_string(rng.NextBounded(1u << 20));
          break;
        default:  // stray carriage return (a Windows-edited log)
          line += '\r';
          break;
      }
    }
    out << line;
    if (nl == std::string_view::npos) break;
    out << '\n';
    start = end + 1;
  }
  return out.str();
}

bool CorruptFile(const std::string& path, double fraction,
                 double truncate_probability, Rng& rng) {
  std::ifstream is(path, std::ios::binary);
  if (!is.good()) return false;
  std::ostringstream buffer;
  buffer << is.rdbuf();
  is.close();

  std::string text = CorruptLines(buffer.str(), fraction, rng);
  if (rng.NextBool(truncate_probability)) {
    text = TruncateRandomly(text, rng);
  }

  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os.good()) return false;
  os << text;
  return os.good();
}

}  // namespace aer
