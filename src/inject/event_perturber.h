// Deterministic perturbation of recovery-log event streams — the half of
// the fault-injection subsystem that attacks *telemetry* (the other half,
// file_corruptor.h, attacks *bytes*). Models what production monitoring
// does to a clean event stream: loses events, delivers them twice, delays
// them out of order, and records the retry trails of timed-out actions.
//
// All perturbations draw from an aer::Rng seeded in the config, so an
// injection run is exactly reproducible — a failing robustness test is a
// replayable artifact, not a flake.
#ifndef AER_INJECT_EVENT_PERTURBER_H_
#define AER_INJECT_EVENT_PERTURBER_H_

#include "log/recovery_log.h"

namespace aer {

struct LogPerturbConfig {
  std::uint64_t seed = 20070625;  // DSN 2007
  // Per-symptom-entry probability of being dropped (event loss). Success
  // and action entries are kept: losing them models operator-log damage,
  // which file_corruptor covers at the byte level.
  double drop_symptom = 0.0;
  // Per-entry probability of being delivered twice.
  double duplicate_entry = 0.0;
  // Per-entry probability of being delayed by up to `max_delay` (the log is
  // re-sorted afterwards, so delayed entries land out of their causal
  // order).
  double delay_entry = 0.0;
  SimTime max_delay = 120;
  // Per-action-entry probability of a timeout-and-retry trail: the action
  // is re-emitted `retry_gap` later, as a manager with per-action deadlines
  // would record it.
  double retry_action = 0.0;
  SimTime retry_gap = 1800;
};

// Counts of what PerturbLog actually did (for reports and assertions).
struct LogPerturbStats {
  std::int64_t dropped = 0;
  std::int64_t duplicated = 0;
  std::int64_t delayed = 0;
  std::int64_t retried = 0;
};

// Returns a perturbed copy of `in` (same symptom table contents, re-sorted
// by time). `stats`, when non-null, receives the injection counts.
RecoveryLog PerturbLog(const RecoveryLog& in, const LogPerturbConfig& config,
                       LogPerturbStats* stats = nullptr);

}  // namespace aer

#endif  // AER_INJECT_EVENT_PERTURBER_H_
