#include "inject/net_perturber.h"

#include <algorithm>

#include "common/check.h"
#include "common/string_util.h"

namespace aer {
namespace {

bool Contains(const std::vector<int>& nodes, int node) {
  return std::find(nodes.begin(), nodes.end(), node) != nodes.end();
}

}  // namespace

NetPerturber::NetPerturber(NetPerturbConfig config, NetFaultScript script)
    : config_(config), script_(std::move(script)), rng_(config.seed) {
  AER_CHECK_GE(config_.drop_message, 0.0);
  AER_CHECK_LE(config_.drop_message, 1.0);
  AER_CHECK_GE(config_.delay_message, 0.0);
  AER_CHECK_LE(config_.delay_message, 1.0);
  AER_CHECK_GE(config_.duplicate_message, 0.0);
  AER_CHECK_LE(config_.duplicate_message, 1.0);
  AER_CHECK_GE(config_.drop_machine_hop, 0.0);
  AER_CHECK_LE(config_.drop_machine_hop, 1.0);
  AER_CHECK_GE(config_.delay_machine_hop, 0.0);
  AER_CHECK_LE(config_.delay_machine_hop, 1.0);
  AER_CHECK_GE(config_.duplicate_machine_hop, 0.0);
  AER_CHECK_LE(config_.duplicate_machine_hop, 1.0);
  AER_CHECK_GT(config_.max_delay, 0);

  int order = 0;
  for (std::size_t i = 0; i < script_.crashes.size(); ++i) {
    const NodeCrash& crash = script_.crashes[i];
    AER_CHECK_GE(crash.node, 0);
    NetTransition down;
    down.kind = NetTransition::Kind::kCrash;
    down.at = crash.at;
    down.node = crash.node;
    pending_.push_back({crash.at, order++, down});
    if (crash.restart_at >= 0) {
      AER_CHECK_GT(crash.restart_at, crash.at);
      NetTransition up = down;
      up.kind = NetTransition::Kind::kRestart;
      up.at = crash.restart_at;
      pending_.push_back({crash.restart_at, order++, up});
    }
  }
  for (std::size_t i = 0; i < script_.partitions.size(); ++i) {
    const LinkPartition& partition = script_.partitions[i];
    AER_CHECK_GT(partition.until, partition.from);
    NetTransition start;
    start.kind = NetTransition::Kind::kPartitionStart;
    start.at = partition.from;
    start.partition = static_cast<int>(i);
    pending_.push_back({partition.from, order++, start});
    NetTransition heal = start;
    heal.kind = NetTransition::Kind::kPartitionHeal;
    heal.at = partition.until;
    pending_.push_back({partition.until, order++, heal});
  }
  std::stable_sort(pending_.begin(), pending_.end(),
                   [](const PendingTransition& a, const PendingTransition& b) {
                     if (a.at != b.at) return a.at < b.at;
                     return a.order < b.order;
                   });
}

void NetPerturber::SetObservers(obs::Tracer* tracer,
                                obs::MetricsRegistry* metrics) {
  tracer_ = tracer;
  if (metrics == nullptr) {
    obs_ = ObsMetrics{};
    return;
  }
  obs_.partition_drops =
      &metrics->GetCounter("aer_inject_net_partition_drops_total");
  obs_.random_drops = &metrics->GetCounter("aer_inject_net_msgs_dropped_total");
  obs_.delays = &metrics->GetCounter("aer_inject_net_msgs_delayed_total");
  obs_.duplicates =
      &metrics->GetCounter("aer_inject_net_msgs_duplicated_total");
  obs_.crashes = &metrics->GetCounter("aer_inject_coordinator_crashes_total");
  obs_.restarts =
      &metrics->GetCounter("aer_inject_coordinator_restarts_total");
  obs_.partitions_started =
      &metrics->GetCounter("aer_inject_partitions_started_total");
  obs_.partitions_healed =
      &metrics->GetCounter("aer_inject_partitions_healed_total");
}

void NetPerturber::Apply(const NetTransition& transition) {
  switch (transition.kind) {
    case NetTransition::Kind::kCrash:
      if (!Contains(down_nodes_, transition.node)) {
        down_nodes_.push_back(transition.node);
      }
      ++stats_.crashes;
      if (obs_.crashes) obs_.crashes->Inc();
      if (tracer_) {
        tracer_->Instant("inject:crash", transition.at,
                         StrFormat("node=%d", transition.node));
      }
      break;
    case NetTransition::Kind::kRestart:
      std::erase(down_nodes_, transition.node);
      ++stats_.restarts;
      if (obs_.restarts) obs_.restarts->Inc();
      if (tracer_) {
        tracer_->Instant("inject:restart", transition.at,
                         StrFormat("node=%d", transition.node));
      }
      break;
    case NetTransition::Kind::kPartitionStart:
      if (!Contains(active_partitions_, transition.partition)) {
        active_partitions_.push_back(transition.partition);
      }
      ++stats_.partitions_started;
      if (obs_.partitions_started) obs_.partitions_started->Inc();
      if (tracer_) {
        tracer_->Instant(
            "inject:partition", transition.at,
            script_.partitions[static_cast<std::size_t>(transition.partition)]
                    .asymmetric
                ? "asymmetric"
                : "symmetric");
      }
      break;
    case NetTransition::Kind::kPartitionHeal:
      std::erase(active_partitions_, transition.partition);
      ++stats_.partitions_healed;
      if (obs_.partitions_healed) obs_.partitions_healed->Inc();
      if (tracer_) tracer_->Instant("inject:heal", transition.at);
      break;
  }
}

std::vector<NetTransition> NetPerturber::AdvanceTo(SimTime now) {
  std::vector<NetTransition> applied;
  while (next_pending_ < pending_.size() &&
         pending_[next_pending_].at <= now) {
    const NetTransition& transition = pending_[next_pending_].transition;
    Apply(transition);
    applied.push_back(transition);
    ++next_pending_;
  }
  return applied;
}

bool NetPerturber::NodeUp(int node) const {
  return !Contains(down_nodes_, node);
}

bool NetPerturber::LinkOpen(int from, int to) const {
  for (const int index : active_partitions_) {
    const LinkPartition& partition =
        script_.partitions[static_cast<std::size_t>(index)];
    const bool a_to_b =
        Contains(partition.side_a, from) && Contains(partition.side_b, to);
    const bool b_to_a =
        Contains(partition.side_b, from) && Contains(partition.side_a, to);
    if (a_to_b || (b_to_a && !partition.asymmetric)) return false;
  }
  return true;
}

NetPerturber::Routing NetPerturber::Route(SimTime now, int from, int to,
                                          SimTime base_latency) {
  AER_CHECK_GE(base_latency, 0);
  ++stats_.messages_routed;
  Routing routing;
  if (!NodeUp(from) || !NodeUp(to) || !LinkOpen(from, to)) {
    ++stats_.partition_drops;
    if (obs_.partition_drops) obs_.partition_drops->Inc();
    return routing;  // silently lost, like a real partition
  }
  routing.deliver = true;
  routing.at = now + base_latency;
  // Consume RNG only for enabled arms: a run with every probability at 0
  // draws nothing, so scripted-fault runs stay bit-identical regardless of
  // how much traffic the cluster size generates.
  if (config_.drop_message > 0.0 && rng_.NextBool(config_.drop_message)) {
    routing.deliver = false;
    ++stats_.random_drops;
    if (obs_.random_drops) obs_.random_drops->Inc();
    if (tracer_) tracer_->Instant("inject:net_drop", now);
    return routing;
  }
  if (config_.delay_message > 0.0 && rng_.NextBool(config_.delay_message)) {
    routing.at += rng_.NextInt(1, config_.max_delay);
    ++stats_.delays;
    if (obs_.delays) obs_.delays->Inc();
    if (tracer_) tracer_->Instant("inject:net_delay", now);
  }
  if (config_.duplicate_message > 0.0 &&
      rng_.NextBool(config_.duplicate_message)) {
    routing.duplicated = true;
    routing.duplicate_at =
        routing.at + rng_.NextInt(1, config_.max_delay);
    ++stats_.duplicates;
    if (obs_.duplicates) obs_.duplicates->Inc();
    if (tracer_) tracer_->Instant("inject:net_duplicate", now);
  }
  return routing;
}

NetPerturber::Routing NetPerturber::RouteMachineHop(SimTime now,
                                                    SimTime base_latency) {
  AER_CHECK_GE(base_latency, 0);
  ++stats_.machine_hops_routed;
  Routing routing;
  routing.deliver = true;
  routing.at = now + base_latency;
  // Same RNG discipline as Route(): disabled arms draw nothing.
  if (config_.drop_machine_hop > 0.0 &&
      rng_.NextBool(config_.drop_machine_hop)) {
    routing.deliver = false;
    ++stats_.machine_drops;
    if (tracer_) tracer_->Instant("inject:machine_drop", now);
    return routing;
  }
  if (config_.delay_machine_hop > 0.0 &&
      rng_.NextBool(config_.delay_machine_hop)) {
    routing.at += rng_.NextInt(1, config_.max_delay);
    ++stats_.machine_delays;
    if (tracer_) tracer_->Instant("inject:machine_delay", now);
  }
  if (config_.duplicate_machine_hop > 0.0 &&
      rng_.NextBool(config_.duplicate_machine_hop)) {
    routing.duplicated = true;
    routing.duplicate_at = routing.at + rng_.NextInt(1, config_.max_delay);
    ++stats_.machine_duplicates;
    if (tracer_) tracer_->Instant("inject:machine_duplicate", now);
  }
  return routing;
}

}  // namespace aer
