#include "inject/harness.h"

#include <algorithm>
#include <queue>

#include "common/check.h"
#include "common/profiler.h"
#include "common/rng.h"

namespace aer {
namespace {

enum class EventKind : int {
  kIncident = 0,  // machine falls sick; starts its re-emit chain
  kDeliver = 1,   // a symptom report reaches the manager
  kReemit = 2,    // sick machine re-reports its symptom
  kActionDone = 3,  // an executed action reports its result
  kPoll = 4,        // PollTimeouts sweep
};

struct Event {
  SimTime time = 0;
  std::uint64_t seq = 0;  // tie-break: FIFO at equal times (determinism)
  EventKind kind = EventKind::kIncident;
  MachineId machine = 0;
  // kIncident payload.
  std::string symptom;
  int cure_strength = 0;
  // kActionDone payload.
  bool report_healthy = false;
  bool actually_cured = false;
  int epoch = 0;
  // kDeliver payload for delayed deliveries: events_processed at scheduling
  // time, so arrival can compute how many events overtook this one (-1 for
  // on-time deliveries).
  std::int64_t scheduled_after = -1;
};

struct EventLater {
  bool operator()(const Event& a, const Event& b) const {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }
};

}  // namespace

InjectionHarness::InjectionHarness(RecoveryPolicy& policy,
                                   RecoveryManagerConfig manager_config,
                                   HarnessConfig config)
    : config_(config), manager_(policy, manager_config) {
  AER_CHECK_GE(config_.drop_event, 0.0);
  AER_CHECK_LE(config_.drop_event, 1.0);
  AER_CHECK_GE(config_.duplicate_event, 0.0);
  AER_CHECK_GE(config_.delay_event, 0.0);
  AER_CHECK_GT(config_.max_delay, 0);
  AER_CHECK_GE(config_.hang_action, 0.0);
  AER_CHECK_LE(config_.hang_action, 1.0);
  AER_CHECK_GE(config_.false_success, 0.0);
  AER_CHECK_LE(config_.false_success, 1.0);
  AER_CHECK_GT(config_.reemit_interval, 0);
  AER_CHECK_GT(config_.poll_interval, 0);
  if (config_.hang_action > 0.0) {
    // Without a deadline a hung action is unrecoverable by construction.
    AER_CHECK_GT(manager_config.action_timeout, 0);
  }
}

void InjectionHarness::SetTimeSeries(obs::TimeSeriesRecorder* recorder) {
  timeseries_ = recorder;
}

void InjectionHarness::SetObservers(obs::Tracer* tracer,
                                    obs::MetricsRegistry* metrics) {
  tracer_ = tracer;
  manager_.SetObservers(tracer, metrics);
  if (metrics == nullptr) {
    obs_ = ObsMetrics{};
    return;
  }
  obs_.incidents = &metrics->GetCounter("aer_inject_incidents_total");
  obs_.cures = &metrics->GetCounter("aer_inject_cures_total");
  obs_.dropped = &metrics->GetCounter("aer_inject_events_dropped_total");
  obs_.duplicated =
      &metrics->GetCounter("aer_inject_events_duplicated_total");
  obs_.delayed = &metrics->GetCounter("aer_inject_events_delayed_total");
  obs_.hangs = &metrics->GetCounter("aer_inject_hangs_total");
  obs_.false_successes =
      &metrics->GetCounter("aer_inject_false_successes_total");
  obs_.reorder_depth = &metrics->GetStat("aer_inject_reorder_depth");
}

HarnessResult InjectionHarness::Run(
    const std::vector<HarnessIncident>& incidents) {
  AER_PROFILE_SCOPE("harness_run");
  Rng rng(config_.seed);
  HarnessResult result;
  result.incidents = static_cast<std::int64_t>(incidents.size());

  std::priority_queue<Event, std::vector<Event>, EventLater> queue;
  std::uint64_t seq = 0;
  bool poll_scheduled = false;

  const auto push = [&queue, &seq](Event e) {
    e.seq = seq++;
    queue.push(std::move(e));
  };

  for (const HarnessIncident& incident : incidents) {
    AER_CHECK_GE(incident.time, 0);
    AER_CHECK_GE(incident.cure_strength, 0);
    AER_CHECK_LT(incident.cure_strength, kNumActions);
    Event e;
    e.time = incident.time;
    e.kind = EventKind::kIncident;
    e.machine = incident.machine;
    e.symptom = incident.symptom;
    e.cure_strength = incident.cure_strength;
    push(std::move(e));
  }

  // Emits one symptom report through the injection layer.
  const auto emit_symptom = [&](SimTime now, MachineId machine) {
    const std::string& symptom = machines_[machine].symptom;
    if (rng.NextBool(config_.drop_event)) {
      ++result.events_dropped;
      if (obs_.dropped) obs_.dropped->Inc();
      if (tracer_) tracer_->Instant("inject:drop", now, symptom, obs::kNoSpan, machine);
      return;
    }
    Event e;
    e.kind = EventKind::kDeliver;
    e.machine = machine;
    e.time = now;
    if (rng.NextBool(config_.delay_event)) {
      e.time += rng.NextInt(1, config_.max_delay);
      e.scheduled_after =
          static_cast<std::int64_t>(result.events_processed);
      ++result.events_delayed;
      if (obs_.delayed) obs_.delayed->Inc();
      if (tracer_) tracer_->Instant("inject:delay", now, symptom, obs::kNoSpan, machine);
    }
    push(e);
    if (rng.NextBool(config_.duplicate_event)) {
      push(e);
      ++result.events_duplicated;
      if (obs_.duplicated) obs_.duplicated->Inc();
      if (tracer_) tracer_->Instant("inject:duplicate", now, symptom, obs::kNoSpan, machine);
    }
  };

  // Executes the action the manager just decided. RMA is injection-immune.
  const auto execute_action = [&](SimTime now, MachineId machine,
                                  RepairAction action) {
    MachineState& state = machines_[machine];
    state.awaiting_result = true;
    ++state.epoch;
    const bool cures =
        !state.sick || action == RepairAction::kRma ||
        ActionStrength(action) >= state.cure_strength;
    if (action != RepairAction::kRma && rng.NextBool(config_.hang_action)) {
      ++result.hangs_injected;
      if (obs_.hangs) obs_.hangs->Inc();
      if (tracer_) {
        tracer_->Instant("inject:hang", now, state.symptom, obs::kNoSpan,
                         machine);
      }
      return;  // no result event: only PollTimeouts can unstick this
    }
    Event e;
    e.time = now + config_.action_duration[static_cast<std::size_t>(
                       ActionIndex(action))];
    e.kind = EventKind::kActionDone;
    e.machine = machine;
    e.epoch = state.epoch;
    e.actually_cured = cures;
    e.report_healthy = cures;
    if (!cures && action != RepairAction::kRma &&
        rng.NextBool(config_.false_success)) {
      e.report_healthy = true;  // lies: machine is still sick
      ++result.false_successes_injected;
      if (obs_.false_successes) obs_.false_successes->Inc();
      if (tracer_) {
        tracer_->Instant("inject:false_success", e.time, state.symptom,
                         obs::kNoSpan, machine);
      }
    }
    push(e);
  };

  // Asks the manager for the next action (if a process is open and nothing
  // is in flight from the harness's point of view).
  const auto drive = [&](SimTime now, MachineId machine) {
    const MachineState& state = machines_[machine];
    if (state.awaiting_result) return;
    if (!manager_.HasOpenProcess(machine)) return;
    const std::optional<RepairAction> action =
        manager_.OnRecoveryNeeded(now, machine);
    if (action.has_value()) execute_action(now, machine, *action);
  };

  const auto schedule_poll = [&](SimTime now) {
    if (poll_scheduled || config_.hang_action <= 0.0) return;
    Event e;
    e.time = now + config_.poll_interval;
    e.kind = EventKind::kPoll;
    push(e);
    poll_scheduled = true;
  };

  while (!queue.empty()) {
    if (++result.events_processed > config_.max_events) {
      // Budget blown: report a hang instead of hanging.
      result.all_completed = false;
      result.manager = manager_.stats();
      if (timeseries_ != nullptr) timeseries_->Finish(result.end_time);
      return result;
    }
    const Event event = queue.top();
    queue.pop();
    result.end_time = event.time;
    if (timeseries_ != nullptr) timeseries_->AdvanceTo(event.time);

    switch (event.kind) {
      case EventKind::kIncident: {
        MachineState& state = machines_[event.machine];
        state.sick = true;
        state.symptom = event.symptom;
        if (obs_.incidents) obs_.incidents->Inc();
        if (tracer_) {
          tracer_->Instant("inject:incident", event.time, event.symptom,
                           obs::kNoSpan, event.machine);
        }
        // Overlapping incidents on one machine: the harder fault wins.
        state.cure_strength =
            std::max(state.cure_strength, event.cure_strength);
        Event reemit;
        reemit.time = event.time;
        reemit.kind = EventKind::kReemit;
        reemit.machine = event.machine;
        push(reemit);
        break;
      }
      case EventKind::kReemit: {
        MachineState& state = machines_[event.machine];
        if (!state.sick) break;  // cured: the chain ends
        emit_symptom(event.time, event.machine);
        Event next = event;
        next.time += config_.reemit_interval;
        push(next);
        break;
      }
      case EventKind::kDeliver: {
        MachineState& state = machines_[event.machine];
        if (event.scheduled_after >= 0) {
          // Events processed between this delayed report's emission and its
          // arrival all overtook it: the reorder depth the manager absorbed.
          const std::int64_t depth =
              static_cast<std::int64_t>(result.events_processed) -
              event.scheduled_after - 1;
          result.reorder_depth_max = std::max(result.reorder_depth_max, depth);
          result.reorder_depth_sum += depth;
          if (obs_.reorder_depth) {
            obs_.reorder_depth->Observe(static_cast<double>(depth));
          }
        }
        manager_.OnSymptom(event.time, event.machine, state.symptom);
        drive(event.time, event.machine);
        schedule_poll(event.time);
        break;
      }
      case EventKind::kActionDone: {
        MachineState& state = machines_[event.machine];
        if (event.epoch != state.epoch) break;  // superseded after a timeout
        state.awaiting_result = false;
        if (event.actually_cured && state.sick) {
          state.sick = false;
          state.cure_strength = 0;
          ++result.cures;
          if (obs_.cures) obs_.cures->Inc();
        }
        manager_.OnActionResult(event.time, event.machine,
                                event.report_healthy);
        if (!event.report_healthy) drive(event.time, event.machine);
        // On false success the process just closed while the machine is
        // still sick; its re-emit chain is alive and will reopen it.
        break;
      }
      case EventKind::kPoll: {
        poll_scheduled = false;
        const std::vector<MachineId> overdue =
            manager_.PollTimeouts(event.time);
        for (const MachineId machine : overdue) {
          machines_[machine].awaiting_result = false;
          drive(event.time, machine);
        }
        if (manager_.open_process_count() > 0 || !queue.empty()) {
          schedule_poll(event.time);
        }
        break;
      }
    }
  }

  bool any_sick = false;
  for (const auto& [machine, state] : machines_) {
    if (state.sick) any_sick = true;
  }
  result.all_completed = !any_sick && manager_.open_process_count() == 0;
  result.manager = manager_.stats();
  if (timeseries_ != nullptr) timeseries_->Finish(result.end_time);
  return result;
}

}  // namespace aer
