// InjectionHarness — drives a live RecoveryManager + policy through scripted
// incidents while injecting the faults the manager claims to survive:
// dropped / duplicated / delayed symptom events, repair actions that hang
// past their deadline, and actions that report success on a still-sick
// machine. The acceptance contract (docs/ROBUSTNESS.md) is that every run at
// default severities terminates with every incident cured and no process
// left open — enforced here by a hard event budget rather than wall-clock.
//
// Two properties make termination provable rather than hopeful:
//   - RMA is immune to injection (it neither hangs nor false-succeeds and
//     always cures), and the manager's N-cap guarantees RMA is eventually
//     chosen; and
//   - a sick machine re-emits its symptom every `reemit_interval`, so a
//     dropped event or a falsely-closed process is always re-detected.
#ifndef AER_INJECT_HARNESS_H_
#define AER_INJECT_HARNESS_H_

#include <array>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/recovery_manager.h"
#include "obs/timeseries.h"

namespace aer {

// One scripted failure: at `time`, `machine` falls sick with `symptom`, and
// stays sick until an action of index >= `cure_strength` runs (kTryNop=0 ..
// kRma=3; RMA always cures regardless).
struct HarnessIncident {
  SimTime time = 0;
  MachineId machine = 0;
  std::string symptom;
  int cure_strength = 0;
};

struct HarnessConfig {
  std::uint64_t seed = 20070625;

  // Live-event injection (applied to each symptom emission).
  double drop_event = 0.0;       // monitoring loses the report
  double duplicate_event = 0.0;  // monitoring delivers it twice
  double delay_event = 0.0;      // delivery slips by up to max_delay
  SimTime max_delay = 120;

  // Action-execution injection. Neither applies to RMA: manual repair is the
  // injection-immune floor of the degradation ladder.
  double hang_action = 0.0;    // action never reports a result
  double false_success = 0.0;  // non-curing action reports healthy anyway

  // A sick machine re-reports its symptom at this cadence until cured; this
  // is what turns event loss and false success into delays instead of
  // permanently lost machines.
  SimTime reemit_interval = 15 * 60;

  // PollTimeouts() cadence while processes are open (only used when the
  // manager config enables action timeouts).
  SimTime poll_interval = 10 * 60;

  // Wall-clock cost of executing each action (indexed by RepairAction).
  std::array<SimTime, kNumActions> action_duration = {60, 900, 2 * kHour,
                                                      8 * kHour};

  // Hard stop: a run that schedules more events than this is declared hung
  // (all_completed = false) instead of looping forever.
  std::size_t max_events = 1'000'000;
};

struct HarnessResult {
  // True iff the event queue drained naturally with every incident cured
  // and no recovery process left open.
  bool all_completed = false;
  std::int64_t incidents = 0;
  std::int64_t cures = 0;  // sick -> healthy transitions observed

  // What the harness actually injected.
  std::int64_t events_dropped = 0;
  std::int64_t events_duplicated = 0;
  std::int64_t events_delayed = 0;
  std::int64_t hangs_injected = 0;
  std::int64_t false_successes_injected = 0;

  // Reorder depth of delayed deliveries: how many other events ran between a
  // delayed report's emission and its (late) arrival — the depth of
  // out-of-order traffic the manager had to absorb. Mirrored per delivery
  // into the aer_inject_reorder_depth stat metric.
  std::int64_t reorder_depth_max = 0;
  std::int64_t reorder_depth_sum = 0;

  SimTime end_time = 0;
  std::size_t events_processed = 0;
  RecoveryManager::Stats manager;
};

class InjectionHarness {
 public:
  // `policy` must outlive the harness. `manager_config.action_timeout` must
  // be > 0 whenever `config.hang_action` is — otherwise a hung action is
  // genuinely unrecoverable and the run cannot complete.
  InjectionHarness(RecoveryPolicy& policy,
                   RecoveryManagerConfig manager_config,
                   HarnessConfig config);

  // Attaches observability sinks (either may be null; both must outlive the
  // harness) and forwards them to the wrapped RecoveryManager, so traces
  // show the injected fault (instant "inject:*" spans) alongside the
  // recovery spans it perturbs. Injection counts mirror into aer_inject_*.
  void SetObservers(obs::Tracer* tracer, obs::MetricsRegistry* metrics);

  // Attaches a time-series recorder (may be null; must outlive the
  // harness). Run() advances it to each event's sim time before processing
  // the event and finishes it at the final event time, so window deltas
  // line up with sim-time boundaries.
  void SetTimeSeries(obs::TimeSeriesRecorder* recorder);

  // Runs all incidents to quiescence (or the event budget). Callable once.
  HarnessResult Run(const std::vector<HarnessIncident>& incidents);

  const RecoveryManager& manager() const { return manager_; }

 private:
  struct MachineState {
    bool sick = false;
    int cure_strength = 0;
    std::string symptom;
    bool awaiting_result = false;  // harness-side in-flight marker
    // Result-correlation id, bumped per executed action: a completion from
    // an action the manager already timed out is discarded instead of being
    // misattributed to the action currently in flight (real executors
    // correlate results to requests the same way).
    int epoch = 0;
  };

  HarnessConfig config_;
  RecoveryManager manager_;
  std::unordered_map<MachineId, MachineState> machines_;

  obs::Tracer* tracer_ = nullptr;
  obs::TimeSeriesRecorder* timeseries_ = nullptr;
  // Cached metric handles (see RecoveryManager::SetObservers); all null
  // when no registry is attached.
  struct ObsMetrics {
    obs::Counter* incidents = nullptr;
    obs::Counter* cures = nullptr;
    obs::Counter* dropped = nullptr;
    obs::Counter* duplicated = nullptr;
    obs::Counter* delayed = nullptr;
    obs::Counter* hangs = nullptr;
    obs::Counter* false_successes = nullptr;
    obs::StatMetric* reorder_depth = nullptr;
  };
  ObsMetrics obs_;
};

}  // namespace aer

#endif  // AER_INJECT_HARNESS_H_
