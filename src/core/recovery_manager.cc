#include "core/recovery_manager.h"

#include "common/check.h"

namespace aer {

RecoveryManager::RecoveryManager(RecoveryPolicy& policy,
                                 RecoveryManagerConfig config)
    : policy_(policy), config_(config) {
  AER_CHECK_GE(config_.max_actions_per_process, 1);
}

void RecoveryManager::OnSymptom(SimTime time, MachineId machine,
                                std::string_view symptom) {
  const SymptomId id = log_.symptoms().Intern(symptom);
  log_.Append(LogEntry::Symptom(time, machine, id));
  if (!open_.contains(machine)) {
    OpenProcess process;
    process.start = time;
    process.initial_symptom = id;
    const auto it = last_recovery_end_.find(machine);
    process.last_recovery_end =
        it != last_recovery_end_.end() ? it->second : -1;
    open_.emplace(machine, std::move(process));
  }
}

std::optional<RepairAction> RecoveryManager::OnRecoveryNeeded(
    SimTime time, MachineId machine) {
  const auto it = open_.find(machine);
  if (it == open_.end()) return std::nullopt;
  OpenProcess& process = it->second;

  RepairAction action;
  if (static_cast<int>(process.tried.size()) >=
      config_.max_actions_per_process - 1) {
    action = RepairAction::kRma;
    ++stats_.manual_repairs_forced;
  } else {
    RecoveryContext ctx;
    ctx.machine = machine;
    ctx.initial_symptom = process.initial_symptom;
    ctx.initial_symptom_name = log_.symptoms().Name(process.initial_symptom);
    ctx.tried = process.tried;
    ctx.process_start = process.start;
    ctx.now = time;
    ctx.last_recovery_end = process.last_recovery_end;
    action = policy_.ChooseAction(ctx);
  }

  process.tried.push_back(action);
  process.last_action_start = time;
  log_.Append(LogEntry::Action(time, machine, action));
  ++stats_.actions_taken;
  return action;
}

void RecoveryManager::OnActionResult(SimTime time, MachineId machine,
                                     bool healthy) {
  const auto it = open_.find(machine);
  AER_CHECK(it != open_.end());
  OpenProcess& process = it->second;

  // Result monitoring: feed the outcome back to the policy.
  if (!process.tried.empty() && process.last_action_start >= 0) {
    RecoveryContext ctx;
    ctx.machine = machine;
    ctx.initial_symptom = process.initial_symptom;
    ctx.initial_symptom_name = log_.symptoms().Name(process.initial_symptom);
    ctx.tried = std::span<const RepairAction>(process.tried.data(),
                                              process.tried.size() - 1);
    ctx.process_start = process.start;
    ctx.now = time;
    ctx.last_recovery_end = process.last_recovery_end;
    policy_.OnActionOutcome(ctx, process.tried.back(),
                            time - process.last_action_start, healthy);
  }

  if (!healthy) return;  // caller drives the next OnRecoveryNeeded
  log_.Append(LogEntry::Success(time, machine));
  ++stats_.processes_completed;
  stats_.total_downtime += time - it->second.start;
  last_recovery_end_[machine] = time;
  open_.erase(it);
}

bool RecoveryManager::HasOpenProcess(MachineId machine) const {
  return open_.contains(machine);
}

}  // namespace aer
