#include "core/recovery_manager.h"

#include <algorithm>
#include <string>

#include "common/check.h"
#include "common/profiler.h"
#include "common/string_util.h"
#include "log/action.h"

namespace aer {

RecoveryManager::RecoveryManager(RecoveryPolicy& policy,
                                 RecoveryManagerConfig config)
    : policy_(policy), config_(config) {
  AER_CHECK_GE(config_.max_actions_per_process, 1);
  AER_CHECK_GE(config_.action_timeout, 0);
  AER_CHECK_GE(config_.timeout_backoff, 1.0);
  AER_CHECK_GE(config_.flap_threshold, 0);
  AER_CHECK_GT(config_.flap_window, 0);
  AER_CHECK_GT(config_.history_retention, 0);
}

void RecoveryManager::SetObservers(obs::Tracer* tracer,
                                   obs::MetricsRegistry* metrics) {
  tracer_ = tracer;
  if (metrics == nullptr) {
    obs_ = ObsMetrics{};
    return;
  }
  obs_.processes = &metrics->GetCounter("aer_recovery_processes_total");
  obs_.actions = &metrics->GetCounter("aer_recovery_actions_total");
  obs_.manual_forced =
      &metrics->GetCounter("aer_recovery_manual_forced_total");
  obs_.timeouts = &metrics->GetCounter("aer_recovery_timeouts_total");
  obs_.stale_results =
      &metrics->GetCounter("aer_recovery_stale_results_total");
  obs_.out_of_order = &metrics->GetCounter("aer_recovery_out_of_order_total");
  obs_.duplicate_symptoms =
      &metrics->GetCounter("aer_recovery_duplicate_symptoms_total");
  obs_.duplicate_requests =
      &metrics->GetCounter("aer_recovery_duplicate_requests_total");
  obs_.flap_quarantines =
      &metrics->GetCounter("aer_recovery_flap_quarantines_total");
  obs_.history_evictions =
      &metrics->GetCounter("aer_recovery_history_evictions_total");
  obs_.adopted = &metrics->GetCounter("aer_recovery_processes_adopted_total");
  obs_.downtime = &metrics->GetHistogram("aer_recovery_downtime_seconds");
  obs_.actions_per_process = &metrics->GetHistogram(
      "aer_recovery_actions_per_process", /*base=*/1.0, /*growth=*/2.0,
      /*bucket_count=*/8);
}

SimTime RecoveryManager::ClampTime(OpenProcess& process, SimTime time) {
  if (time < process.last_event_time) {
    ++stats_.out_of_order_events;
    if (obs_.out_of_order) obs_.out_of_order->Inc();
    return process.last_event_time;
  }
  process.last_event_time = time;
  return time;
}

SimTime RecoveryManager::ActionDeadline(const OpenProcess& process) const {
  // Backoff saturates instead of overflowing: past ~2^30x the base timeout
  // the distinction between deadlines is academic.
  double scale = 1.0;
  for (int i = 0; i < std::min(process.timeouts, 30); ++i) {
    scale *= config_.timeout_backoff;
  }
  return process.last_action_start +
         static_cast<SimTime>(static_cast<double>(config_.action_timeout) *
                              scale);
}

void RecoveryManager::ReportOutcome(MachineId machine, OpenProcess& process,
                                    SimTime time, bool cured) {
  if (process.tried.empty() || process.last_action_start < 0) return;
  RecoveryContext ctx;
  ctx.machine = machine;
  ctx.initial_symptom = process.initial_symptom;
  ctx.initial_symptom_name = log_.symptoms().Name(process.initial_symptom);
  ctx.tried = std::span<const RepairAction>(process.tried.data(),
                                            process.tried.size() - 1);
  ctx.process_start = process.start;
  ctx.now = time;
  ctx.last_recovery_end = process.last_recovery_end;
  policy_.OnActionOutcome(ctx, process.tried.back(),
                          time - process.last_action_start, cured);
}

void RecoveryManager::OnSymptom(SimTime time, MachineId machine,
                                std::string_view symptom,
                                obs::TraceContext trace) {
  AER_PROFILE_SCOPE("rm_on_symptom");
  const SymptomId id = log_.symptoms().Intern(symptom);
  const auto it = open_.find(machine);
  if (it != open_.end()) {
    OpenProcess& process = it->second;
    // A late-arriving context for an already-open process (e.g. the first
    // traced symptom after adoption of an untraced snapshot) still binds.
    if (process.trace == obs::kNoTrace && trace.active()) {
      process.trace = trace.trace_id;
      if (tracer_) tracer_->SetTraceId(process.span, process.trace);
    }
    const SimTime seen = ClampTime(process, time);
    // A monitoring retransmission: same symptom at the same (clamped)
    // instant adds no information — absorb it instead of bloating the log.
    if (id == process.last_symptom && seen == process.last_symptom_time) {
      ++stats_.duplicate_symptoms;
      if (obs_.duplicate_symptoms) obs_.duplicate_symptoms->Inc();
      return;
    }
    process.last_symptom = id;
    process.last_symptom_time = seen;
    log_.Append(LogEntry::Symptom(seen, machine, id));
    if (tracer_) {
      tracer_->AddEvent(process.span, seen,
                        StrFormat("symptom:%s", std::string(symptom).c_str()));
    }
    return;
  }

  OpenProcess process;
  process.start = time;
  process.last_event_time = time;
  process.initial_symptom = id;
  process.last_symptom = id;
  process.last_symptom_time = time;
  process.trace = trace.trace_id;

  MachineHistory& history = history_[machine];
  process.last_recovery_end = history.last_recovery_end;
  // Flap tracking: keep only opens inside the window, then record this one.
  std::erase_if(history.recent_opens, [&](SimTime open_time) {
    return open_time <= time - config_.flap_window;
  });
  history.recent_opens.push_back(time);
  if (config_.flap_threshold > 0 &&
      static_cast<int>(history.recent_opens.size()) > config_.flap_threshold) {
    process.quarantined = true;
    ++stats_.flap_quarantines;
    if (obs_.flap_quarantines) obs_.flap_quarantines->Inc();
  }

  if (obs_.processes) obs_.processes->Inc();
  if (tracer_) {
    process.span = tracer_->StartSpan("recovery", time);
    tracer_->SetLabel(process.span, symptom);
    tracer_->SetMachine(process.span, machine);
    if (process.trace != obs::kNoTrace) {
      tracer_->SetTraceId(process.span, process.trace);
    }
    if (process.quarantined) {
      tracer_->AddEvent(process.span, time, "flap_quarantine");
    }
  }

  log_.Append(LogEntry::Symptom(time, machine, id));
  open_.emplace(machine, std::move(process));
}

std::optional<RepairAction> RecoveryManager::OnRecoveryNeeded(
    SimTime time, MachineId machine) {
  AER_PROFILE_SCOPE("rm_on_recovery_needed");
  const auto it = open_.find(machine);
  if (it == open_.end()) return std::nullopt;
  OpenProcess& process = it->second;
  const SimTime now = ClampTime(process, time);

  if (process.action_in_flight) {
    if (config_.action_timeout > 0 && now >= ActionDeadline(process)) {
      // The pending action is overdue: declare it failed and fall through
      // to choose the next (possibly escalated) action.
      ExpireInFlightAction(machine, process);
    } else {
      // Duplicate fault-detection request while the action is still being
      // executed: repeat the standing decision instead of double-acting.
      ++stats_.duplicate_recovery_requests;
      if (obs_.duplicate_requests) obs_.duplicate_requests->Inc();
      return process.tried.back();
    }
  }

  RepairAction action;
  if (process.quarantined) {
    // Flapping machines have demonstrated that their health reports cannot
    // be trusted; stop burning repair attempts and hand them to a human.
    action = RepairAction::kRma;
    if (tracer_) tracer_->AddEvent(process.span, now, "quarantine:rma");
  } else if (static_cast<int>(process.tried.size()) >=
             config_.max_actions_per_process - 1) {
    action = RepairAction::kRma;
    ++stats_.manual_repairs_forced;
    if (obs_.manual_forced) obs_.manual_forced->Inc();
    if (tracer_) tracer_->AddEvent(process.span, now, "ncap:manual_repair");
  } else {
    RecoveryContext ctx;
    ctx.machine = machine;
    ctx.initial_symptom = process.initial_symptom;
    ctx.initial_symptom_name = log_.symptoms().Name(process.initial_symptom);
    ctx.tried = process.tried;
    ctx.process_start = process.start;
    ctx.now = now;
    ctx.last_recovery_end = process.last_recovery_end;
    action = policy_.ChooseAction(ctx);
  }

  process.tried.push_back(action);
  process.last_action_start = now;
  process.action_in_flight = true;
  log_.Append(LogEntry::Action(now, machine, action));
  ++stats_.actions_taken;
  if (obs_.actions) obs_.actions->Inc();
  if (tracer_) {
    process.action_span = tracer_->StartSpan(
        StrFormat("action:%s", std::string(ActionName(action)).c_str()), now,
        process.span);
    tracer_->SetMachine(process.action_span, machine);
    if (process.trace != obs::kNoTrace) {
      tracer_->SetTraceId(process.action_span, process.trace);
    }
  }
  return action;
}

void RecoveryManager::OnActionResult(SimTime time, MachineId machine,
                                     bool healthy) {
  AER_PROFILE_SCOPE("rm_on_action_result");
  const auto it = open_.find(machine);
  if (it == open_.end()) {
    // Result for a process that no longer exists: a duplicate delivery or a
    // report from a decommissioned flow. Dirty telemetry, not a bug.
    ++stats_.stale_results_ignored;
    if (obs_.stale_results) obs_.stale_results->Inc();
    return;
  }
  OpenProcess& process = it->second;
  const SimTime now = ClampTime(process, time);

  if (process.action_in_flight) {
    // Result monitoring: feed the outcome back to the policy.
    ReportOutcome(machine, process, now, healthy);
    process.action_in_flight = false;
    if (tracer_) {
      tracer_->AddEvent(process.action_span, now,
                        healthy ? "result:cured" : "result:failed");
      tracer_->EndSpan(process.action_span, now);
      process.action_span = obs::kNoSpan;
    }
  } else if (!healthy) {
    // Failure report with nothing pending (late arrival after a timeout, or
    // a duplicate): the process state already reflects a failure.
    ++stats_.stale_results_ignored;
    if (obs_.stale_results) obs_.stale_results->Inc();
    return;
  }
  // A healthy report with nothing pending still closes the process: the
  // machine recovered (late result or spontaneously) and holding the
  // process open would leak it.

  if (!healthy) return;  // caller drives the next OnRecoveryNeeded
  log_.Append(LogEntry::Success(now, machine));
  ++stats_.processes_completed;
  stats_.total_downtime += now - process.start;
  if (obs_.downtime) {
    obs_.downtime->Observe(static_cast<double>(now - process.start));
  }
  if (obs_.actions_per_process) {
    obs_.actions_per_process->Observe(
        static_cast<double>(process.tried.size()));
  }
  if (tracer_) tracer_->EndSpan(process.span, now);
  history_[machine].last_recovery_end = now;
  open_.erase(it);
  if (++closes_since_sweep_ >= 64) MaybeEvictHistory(now);
}

std::vector<MachineId> RecoveryManager::PollTimeouts(SimTime now) {
  AER_PROFILE_SCOPE("rm_poll_timeouts");
  std::vector<MachineId> timed_out;
  if (config_.action_timeout <= 0) return timed_out;
  for (auto& [machine, process] : open_) {
    if (process.action_in_flight && now >= ActionDeadline(process)) {
      timed_out.push_back(machine);
    }
  }
  // open_ iteration order is unspecified; sort for deterministic replay.
  std::sort(timed_out.begin(), timed_out.end());
  for (const MachineId machine : timed_out) {
    ExpireInFlightAction(machine, open_[machine]);
  }
  return timed_out;
}

void RecoveryManager::ExpireInFlightAction(MachineId machine,
                                           OpenProcess& process) {
  const SimTime deadline = ActionDeadline(process);
  ReportOutcome(machine, process, deadline, /*cured=*/false);
  if (traces_ && process.trace != obs::kNoTrace && !process.tried.empty()) {
    obs::TraceRecord record;
    record.trace_id = process.trace;
    record.time = deadline;
    record.kind = obs::TraceEventKind::kTimeout;
    record.machine = machine;
    record.attempt = static_cast<int>(process.tried.size()) - 1;
    record.action = ActionIndex(process.tried.back());
    traces_->Record(std::move(record));
  }
  process.action_in_flight = false;
  process.last_event_time = std::max(process.last_event_time, deadline);
  ++process.timeouts;
  ++stats_.actions_timed_out;
  if (obs_.timeouts) obs_.timeouts->Inc();
  if (tracer_) {
    tracer_->AddEvent(process.action_span, deadline, "timeout");
    tracer_->EndSpan(process.action_span, deadline);
    process.action_span = obs::kNoSpan;
    tracer_->AddEvent(process.span, deadline,
                      StrFormat("timeout:backoff=%d", process.timeouts));
  }
}

void RecoveryManager::MaybeEvictHistory(SimTime now) {
  closes_since_sweep_ = 0;
  const SimTime horizon = now - config_.history_retention;
  for (auto it = history_.begin(); it != history_.end();) {
    MachineHistory& history = it->second;
    std::erase_if(history.recent_opens, [&](SimTime open_time) {
      return open_time <= now - config_.flap_window;
    });
    const bool stale = history.last_recovery_end < horizon &&
                       history.recent_opens.empty() &&
                       !open_.contains(it->first);
    if (stale) {
      it = history_.erase(it);
      ++stats_.history_evictions;
      if (obs_.history_evictions) obs_.history_evictions->Inc();
    } else {
      ++it;
    }
  }
}

bool RecoveryManager::HasOpenProcess(MachineId machine) const {
  return open_.contains(machine);
}

int RecoveryManager::ActionsTried(MachineId machine) const {
  const auto it = open_.find(machine);
  return it == open_.end() ? 0 : static_cast<int>(it->second.tried.size());
}

obs::TraceId RecoveryManager::TraceOf(MachineId machine) const {
  const auto it = open_.find(machine);
  return it == open_.end() ? obs::kNoTrace : it->second.trace;
}

std::vector<OpenProcessSnapshot> RecoveryManager::ExportOpenProcesses()
    const {
  std::vector<OpenProcessSnapshot> snapshots;
  snapshots.reserve(open_.size());
  for (const auto& [machine, process] : open_) {
    OpenProcessSnapshot snapshot;
    snapshot.machine = machine;
    snapshot.start = process.start;
    snapshot.symptom = std::string(log_.symptoms().Name(process.initial_symptom));
    snapshot.tried = process.tried;
    snapshot.timeouts = process.timeouts;
    snapshot.quarantined = process.quarantined;
    snapshot.last_event_time = process.last_event_time;
    snapshot.trace_id = process.trace;
    snapshots.push_back(std::move(snapshot));
  }
  // open_ iteration order is unspecified; sort for deterministic replication.
  std::sort(snapshots.begin(), snapshots.end(),
            [](const OpenProcessSnapshot& a, const OpenProcessSnapshot& b) {
              return a.machine < b.machine;
            });
  return snapshots;
}

bool RecoveryManager::AdoptProcess(SimTime now,
                                   const OpenProcessSnapshot& snapshot) {
  if (open_.contains(snapshot.machine)) return false;
  const SymptomId id = log_.symptoms().Intern(snapshot.symptom);
  OpenProcess process;
  process.start = snapshot.start;
  process.initial_symptom = id;
  process.last_symptom = id;
  process.last_symptom_time = snapshot.last_event_time;
  process.tried = snapshot.tried;
  process.timeouts = snapshot.timeouts;
  process.quarantined = snapshot.quarantined;
  process.trace = snapshot.trace_id;
  // The adopting coordinator's clock is `now`; the snapshot's watermark may
  // be ahead of it if replication raced an event — keep the max so the
  // monotonic clamp never regresses.
  process.last_event_time = std::max(now, snapshot.last_event_time);
  // The snapshotted in-flight action (if any) is the previous leader's; its
  // result will never reach this manager, so treat it as settled and let the
  // next OnRecoveryNeeded issue the next action of the ladder.
  process.action_in_flight = false;
  process.last_recovery_end = history_[snapshot.machine].last_recovery_end;
  ++stats_.processes_adopted;
  if (obs_.adopted) obs_.adopted->Inc();
  if (tracer_) {
    process.span = tracer_->StartSpan("recovery", snapshot.start);
    tracer_->SetLabel(process.span, snapshot.symptom);
    tracer_->SetMachine(process.span, snapshot.machine);
    if (process.trace != obs::kNoTrace) {
      tracer_->SetTraceId(process.span, process.trace);
    }
    tracer_->AddEvent(process.span, now, "adopted");
  }
  open_.emplace(snapshot.machine, std::move(process));
  return true;
}

bool RecoveryManager::IsQuarantined(MachineId machine) const {
  const auto it = open_.find(machine);
  return it != open_.end() && it->second.quarantined;
}

}  // namespace aer
