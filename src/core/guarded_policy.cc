#include "core/guarded_policy.h"

#include <numeric>

#include "common/check.h"

namespace aer {

GuardedPolicy::GuardedPolicy(RecoveryPolicy& primary,
                             RecoveryPolicy& fallback,
                             GuardedPolicyConfig config)
    : primary_(primary), fallback_(fallback), config_(config) {
  AER_CHECK_GE(config_.window, 1);
  AER_CHECK_GT(config_.regression_ratio, 1.0);
  AER_CHECK_GE(config_.baseline_mean_downtime, 0.0);
  AER_CHECK_GE(config_.probation, 1);
  MutexLock lock(mu_);
  baseline_mean_ = config_.baseline_mean_downtime;
}

void GuardedPolicy::SetObservers(obs::Tracer* tracer,
                                 obs::MetricsRegistry* metrics) {
  MutexLock lock(mu_);
  tracer_ = tracer;
  if (metrics == nullptr) {
    obs_ = ObsMetrics{};
    return;
  }
  obs_.primary_decisions =
      &metrics->GetCounter("aer_guard_primary_decisions_total");
  obs_.fallback_decisions =
      &metrics->GetCounter("aer_guard_fallback_decisions_total");
  obs_.faults_absorbed =
      &metrics->GetCounter("aer_guard_faults_absorbed_total");
  obs_.invalid_actions =
      &metrics->GetCounter("aer_guard_invalid_actions_total");
  obs_.breaker_trips = &metrics->GetCounter("aer_guard_breaker_trips_total");
  obs_.breaker_open = &metrics->GetGauge("aer_guard_breaker_open");
  obs_.breaker_open->Set(fallback_remaining_ > 0 ? 1.0 : 0.0);
}

bool GuardedPolicy::ProcessUsesFallbackLocked(const RecoveryContext& context) {
  const auto it = open_process_fallback_.find(context.machine);
  if (it != open_process_fallback_.end()) return it->second;
  // First decision of this process: bind it to the current breaker state
  // so the process is driven by one policy end to end.
  const bool use_fallback = fallback_remaining_ > 0;
  open_process_fallback_.emplace(context.machine, use_fallback);
  return use_fallback;
}

RepairAction GuardedPolicy::ChooseAction(const RecoveryContext& context) {
  bool use_fallback;
  {
    MutexLock lock(mu_);
    use_fallback = ProcessUsesFallbackLocked(context);
    if (use_fallback) {
      ++stats_.fallback_decisions;
      if (obs_.fallback_decisions) obs_.fallback_decisions->Inc();
    }
  }
  if (use_fallback) return fallback_.ChooseAction(context);

  // Decision-fault containment: a throwing or corrupted primary downgrades
  // this decision to the fallback instead of taking the pipeline down. The
  // delegate runs outside the guard mutex (it may be arbitrarily slow);
  // only the accounting afterwards relocks.
  bool faulted = false;
  RepairAction action = RepairAction::kRma;
  try {
    action = primary_.ChooseAction(context);
  } catch (...) {
    faulted = true;
  }
  const bool invalid =
      !faulted && (static_cast<int>(action) < 0 ||
                   static_cast<int>(action) >= kNumActions);
  {
    MutexLock lock(mu_);
    if (faulted) {
      ++stats_.faults_absorbed;
      if (obs_.faults_absorbed) obs_.faults_absorbed->Inc();
      if (tracer_) {
        tracer_->Instant("guard:fault_absorbed", context.now,
                         context.initial_symptom_name, obs::kNoSpan,
                         context.machine);
      }
    } else if (invalid) {
      ++stats_.invalid_actions;
      if (obs_.invalid_actions) obs_.invalid_actions->Inc();
      if (tracer_) {
        tracer_->Instant("guard:invalid_action", context.now,
                         context.initial_symptom_name, obs::kNoSpan,
                         context.machine);
      }
    }
    if (faulted || invalid) {
      ++stats_.fallback_decisions;
      if (obs_.fallback_decisions) obs_.fallback_decisions->Inc();
    } else {
      ++stats_.primary_decisions;
      if (obs_.primary_decisions) obs_.primary_decisions->Inc();
    }
  }
  if (faulted || invalid) return fallback_.ChooseAction(context);
  return action;
}

void GuardedPolicy::RecordPrimaryCompletionLocked(double downtime,
                                                 SimTime now) {
  window_.push_back(downtime);
  if (static_cast<int>(window_.size()) > config_.window) window_.pop_front();
  if (static_cast<int>(window_.size()) < config_.window) return;

  const double mean =
      std::accumulate(window_.begin(), window_.end(), 0.0) /
      static_cast<double>(window_.size());
  if (baseline_mean_ <= 0.0) {
    // First full window under the primary establishes what "normal" means;
    // only later windows can regress against it.
    baseline_mean_ = mean;
    return;
  }
  if (mean > config_.regression_ratio * baseline_mean_) {
    ++stats_.breaker_trips;
    fallback_remaining_ = config_.probation;
    window_.clear();
    if (obs_.breaker_trips) obs_.breaker_trips->Inc();
    if (obs_.breaker_open) obs_.breaker_open->Set(1.0);
    if (tracer_) tracer_->Instant("breaker:trip", now);
  }
}

void GuardedPolicy::OnActionOutcome(const RecoveryContext& context,
                                    RepairAction action, SimTime cost,
                                    bool cured) {
  bool fallback_driven;
  {
    MutexLock lock(mu_);
    const auto it = open_process_fallback_.find(context.machine);
    // Outcomes for processes we never decided (e.g. the manager timed out
    // an action of a process opened before this policy was installed)
    // still belong to whoever would decide now.
    fallback_driven = it != open_process_fallback_.end()
                          ? it->second
                          : fallback_remaining_ > 0;
  }
  // Delegate outside the lock; calls about one machine's process are
  // ordered by the caller (see header), so the attribution read above
  // stays valid across this call.
  if (fallback_driven) {
    fallback_.OnActionOutcome(context, action, cost, cured);
  } else {
    primary_.OnActionOutcome(context, action, cost, cured);
  }

  if (!cured) return;
  MutexLock lock(mu_);
  ++stats_.processes_observed;
  open_process_fallback_.erase(context.machine);
  if (fallback_driven) {
    if (fallback_remaining_ > 0 && --fallback_remaining_ == 0) {
      // Half-open: probation served; the primary gets a fresh window.
      window_.clear();
      if (obs_.breaker_open) obs_.breaker_open->Set(0.0);
      if (tracer_) tracer_->Instant("breaker:half_open", context.now);
    }
    return;
  }
  RecordPrimaryCompletionLocked(
      static_cast<double>(context.now - context.process_start), context.now);
}

}  // namespace aer
