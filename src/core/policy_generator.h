// PolicyGenerator — the paper's offline policy-generation component (the
// lower half of Figure 1) as a single public entry point:
//
//   recovery log  ->  segmentation  ->  m-pattern symptom clustering
//                 ->  noise filtering  ->  error-type induction
//                 ->  Q-learning on the simulation platform
//                 ->  deployable TrainedPolicy
//
// Typical use:
//
//   aer::RecoveryLog log = ...;                 // from the monitored system
//   aer::PolicyGenerator generator;
//   aer::PolicyGenerationReport report;
//   aer::TrainedPolicy policy = generator.Generate(log, &report);
//   aer::UserDefinedPolicy fallback;
//   aer::HybridPolicy deployable(policy, fallback);   // covers every state
#ifndef AER_CORE_POLICY_GENERATOR_H_
#define AER_CORE_POLICY_GENERATOR_H_

#include "log/recovery_process.h"
#include "mining/error_type.h"
#include "rl/selection_tree.h"

namespace aer {

struct PolicyGeneratorConfig {
  // Symptom clustering / noise filtering (Section 3.1).
  MPatternConfig mining;
  // Keep the most frequent error types only (Section 4.1 keeps 40).
  std::size_t max_types = 40;
  // Q-learning (Section 3.3).
  TrainerConfig trainer;
  // Generate policies through the selection tree (Section 5.3): much faster
  // convergence for the same result, so it is the default.
  bool use_selection_tree = true;
  SelectionTreeConfig tree;
};

struct PolicyGenerationReport {
  std::size_t total_processes = 0;
  std::size_t clean_processes = 0;
  std::size_t noisy_processes = 0;
  std::size_t symptom_clusters = 0;
  std::size_t error_types = 0;
  double type_coverage = 0.0;  // processes covered by the kept types
  std::vector<TypeTrainingResult> training;
};

class PolicyGenerator {
 public:
  explicit PolicyGenerator(PolicyGeneratorConfig config = {});

  // Learns a recovery policy from the log. The log must contain completed
  // recovery processes (symptoms, actions, Success markers).
  TrainedPolicy Generate(const RecoveryLog& log,
                         PolicyGenerationReport* report = nullptr) const;

  const PolicyGeneratorConfig& config() const { return config_; }

 private:
  PolicyGeneratorConfig config_;
};

}  // namespace aer

#endif  // AER_CORE_POLICY_GENERATOR_H_
