// RecoveryManager — the online automatic-recovery framework (the upper half
// of Figure 1): event monitoring feeds symptoms in, fault detection requests
// a repair decision, error recovery consults the pluggable policy and
// enforces the N-cap, and everything observable is appended to a recovery
// log (the input of the next offline training round — this closes the
// paper's feedback loop and is what lets the system "adapt to the change of
// the environment without human involvement").
//
// The manager is deliberately transport-agnostic: callers (a production
// event bus, or the cluster simulator in the examples) push timestamped
// events and execute the returned actions.
//
// Production telemetry is dirty, so the manager tolerates it rather than
// trusting it (docs/ROBUSTNESS.md):
//   - out-of-order events are clamped to the process's last seen time;
//   - duplicate symptom reports and stale/duplicate action results are
//     absorbed and counted, never fatal;
//   - an in-flight action that outlives its (backoff-scaled) deadline is
//     treated as failed via PollTimeouts(), advancing toward the N-cap so a
//     hung repair still escalates;
//   - machines that reopen processes too often inside a window are
//     flap-quarantined: their processes go straight to manual repair
//     instead of burning retries on a machine that lies about its health;
//   - per-machine history is evicted after a retention window, so a fleet
//     of mostly-healthy machines cannot grow the manager's memory without
//     bound.
#ifndef AER_CORE_RECOVERY_MANAGER_H_
#define AER_CORE_RECOVERY_MANAGER_H_

#include <optional>
#include <unordered_map>
#include <vector>

#include "cluster/policy.h"
#include "log/recovery_log.h"
#include "obs/metrics.h"
#include "obs/trace_collector.h"
#include "obs/trace_context.h"
#include "obs/tracer.h"

namespace aer {

struct RecoveryManagerConfig {
  // The paper's N: the last permitted action of a process is manual repair.
  int max_actions_per_process = 20;

  // Per-action result deadline; 0 disables timeout handling. An in-flight
  // action whose result has not arrived within
  //   action_timeout * timeout_backoff^(timeouts already hit in process)
  // is declared failed by PollTimeouts(): the policy sees a failure outcome,
  // the action still counts toward the N-cap, and the caller should request
  // the next action (which retries or escalates per the policy).
  SimTime action_timeout = 0;
  double timeout_backoff = 2.0;

  // Flap quarantine: a machine that opens more than `flap_threshold`
  // recovery processes within `flap_window` is quarantined — subsequent
  // decisions for it bypass the policy and go straight to RMA. 0 disables.
  int flap_threshold = 0;
  SimTime flap_window = 6 * kHour;

  // Per-machine history (previous recovery end, recent process opens) is
  // dropped once it is older than this; bounds memory on large fleets.
  SimTime history_retention = 30 * kDay;
};

// Portable image of one open recovery process — what a coordinated control
// plane (src/ctrl/) replicates to follower coordinators so a leader takeover
// *resumes* in-flight recoveries instead of restarting them: the tried
// actions keep counting toward the N-cap and the policy keeps seeing the
// full attempt history.
struct OpenProcessSnapshot {
  MachineId machine = 0;
  SimTime start = 0;
  std::string symptom;  // initiating symptom, by stable name
  std::vector<RepairAction> tried;
  int timeouts = 0;
  bool quarantined = false;
  SimTime last_event_time = 0;
  // Distributed trace of the process (obs/trace_context.h); replicated so
  // the adopting leader continues the same causal trace across takeover.
  obs::TraceId trace_id = obs::kNoTrace;

  friend bool operator==(const OpenProcessSnapshot&,
                         const OpenProcessSnapshot&) = default;
};

class RecoveryManager {
 public:
  // `policy` must outlive the manager.
  RecoveryManager(RecoveryPolicy& policy, RecoveryManagerConfig config = {});

  // Attaches observability sinks (either may be null; both must outlive the
  // manager). With a tracer set, each recovery process gets a "recovery"
  // span labeled with its initiating symptom, each action attempt a child
  // "action:<name>" span, and timeout/backoff/quarantine/N-cap transitions
  // become span events. With a registry set, the Stats counters are mirrored
  // into the aer_recovery_* metrics (docs/OBSERVABILITY.md).
  void SetObservers(obs::Tracer* tracer, obs::MetricsRegistry* metrics);

  // Attaches the causal trace sink (may be null; must outlive the manager).
  // With a collector set, action timeouts emit trace records and adopted /
  // opened processes keep their distributed trace id.
  void SetTraceCollector(obs::TraceCollector* traces) { traces_ = traces; }

  // Event monitoring: a symptom was observed on a machine. Opens a recovery
  // process if none is active; records the symptom either way. Tolerates
  // out-of-order and duplicate reports (see Stats). `trace` is the symptom's
  // causal context: it binds the opened process (and its spans) to the
  // distributed trace; an inactive context leaves the process untraced.
  void OnSymptom(SimTime time, MachineId machine, std::string_view symptom,
                 obs::TraceContext trace = {});

  // Fault detection: the machine needs (another) repair action now. Returns
  // the action the caller must execute, or nullopt if no process is open.
  // Records the action and enforces the N-cap (the N-th action is RMA).
  // Re-requesting while the previous action is still in flight (and not
  // timed out) returns that action again without recording a duplicate.
  std::optional<RepairAction> OnRecoveryNeeded(SimTime time,
                                               MachineId machine);

  // Result monitoring: the outcome of the last action. `healthy` closes the
  // process (records Success); otherwise the caller should follow up with
  // OnRecoveryNeeded. A result with no matching open process or in-flight
  // action (duplicate delivery, result after timeout) is counted and
  // ignored.
  void OnActionResult(SimTime time, MachineId machine, bool healthy);

  // Declares every in-flight action whose deadline is at or before `now`
  // failed (policy outcome, timeout stats, N-cap advancement) and returns
  // the affected machines in ascending id order; the caller should invoke
  // OnRecoveryNeeded for each. No-op unless config.action_timeout > 0.
  std::vector<MachineId> PollTimeouts(SimTime now);

  bool HasOpenProcess(MachineId machine) const;
  std::size_t open_process_count() const { return open_.size(); }

  // Actions recorded so far in the machine's open process (0 if none).
  // Control-plane callers use this as the attempt index when correlating
  // dispatched actions with their results across leader changes.
  int ActionsTried(MachineId machine) const;

  // Distributed trace id of the machine's open process (kNoTrace if none or
  // untraced). Control-plane callers stamp it onto outgoing dispatches.
  obs::TraceId TraceOf(MachineId machine) const;

  // Snapshots every open process in ascending machine-id order — the
  // replication payload a leader coordinator streams to its followers.
  std::vector<OpenProcessSnapshot> ExportOpenProcesses() const;

  // Takeover resume: re-creates an open process from a replicated snapshot.
  // Returns false (and changes nothing) if the machine already has an open
  // process. The adopted attempt history counts toward the N-cap but is not
  // re-logged or re-reported to the policy — the previous leader already did
  // both; in-flight state resets so the next OnRecoveryNeeded issues the
  // *next* action. Adoption bypasses flap tracking: the reopen was a
  // coordinator handover, not machine behavior.
  bool AdoptProcess(SimTime now, const OpenProcessSnapshot& snapshot);

  // True while the machine's currently open process was opened under flap
  // quarantine (its reopen rate exceeded the threshold inside the window).
  bool IsQuarantined(MachineId machine) const;

  // Number of machines with retained history (for eviction regression
  // tests and capacity monitoring).
  std::size_t history_size() const { return history_.size(); }

  // The log of everything this manager observed and decided; feed it back
  // into PolicyGenerator to close the loop.
  const RecoveryLog& log() const { return log_; }

  struct Stats {
    std::int64_t processes_completed = 0;
    std::int64_t actions_taken = 0;
    std::int64_t manual_repairs_forced = 0;  // N-cap hits
    SimTime total_downtime = 0;
    // Dirty-telemetry counters.
    std::int64_t actions_timed_out = 0;
    std::int64_t stale_results_ignored = 0;
    std::int64_t out_of_order_events = 0;
    std::int64_t duplicate_symptoms = 0;
    std::int64_t duplicate_recovery_requests = 0;
    std::int64_t flap_quarantines = 0;  // processes opened under quarantine
    std::int64_t history_evictions = 0;
    std::int64_t processes_adopted = 0;  // takeover resumes (AdoptProcess)
  };
  const Stats& stats() const { return stats_; }

 private:
  struct OpenProcess {
    SimTime start = 0;
    SymptomId initial_symptom = kInvalidSymptom;
    std::vector<RepairAction> tried;
    SimTime last_recovery_end = -1;
    SimTime last_action_start = -1;
    SimTime last_event_time = 0;  // monotonic clamp for dirty timestamps
    SymptomId last_symptom = kInvalidSymptom;  // dedupe of retransmissions
    SimTime last_symptom_time = -1;
    bool action_in_flight = false;
    int timeouts = 0;  // timeouts hit so far (drives backoff)
    bool quarantined = false;
    obs::SpanId span = obs::kNoSpan;         // the process's "recovery" span
    obs::SpanId action_span = obs::kNoSpan;  // the in-flight action's span
    obs::TraceId trace = obs::kNoTrace;      // distributed trace id
  };

  struct MachineHistory {
    SimTime last_recovery_end = -1;
    // Recent process-open times inside the flap window, oldest first.
    std::vector<SimTime> recent_opens;
  };

  // Clamps a possibly out-of-order timestamp against the process's last
  // seen time and advances the watermark.
  SimTime ClampTime(OpenProcess& process, SimTime time);

  // Deadline of the currently in-flight action.
  SimTime ActionDeadline(const OpenProcess& process) const;

  // Reports the in-flight action of `process` as failed to the policy.
  void ReportOutcome(MachineId machine, OpenProcess& process, SimTime time,
                     bool cured);

  // Drops history entries older than config.history_retention.
  void MaybeEvictHistory(SimTime now);

  // Declares the in-flight action timed out: closes its span, reports the
  // failure to the policy, and advances the backoff/N-cap state.
  void ExpireInFlightAction(MachineId machine, OpenProcess& process);

  RecoveryPolicy& policy_;
  RecoveryManagerConfig config_;
  RecoveryLog log_;
  std::unordered_map<MachineId, OpenProcess> open_;
  std::unordered_map<MachineId, MachineHistory> history_;
  int closes_since_sweep_ = 0;
  Stats stats_;

  obs::Tracer* tracer_ = nullptr;
  obs::TraceCollector* traces_ = nullptr;
  // Cached metric handles (resolved once in SetObservers) so the hot path
  // never takes the registry lock; all null when no registry is attached.
  struct ObsMetrics {
    obs::Counter* processes = nullptr;
    obs::Counter* actions = nullptr;
    obs::Counter* manual_forced = nullptr;
    obs::Counter* timeouts = nullptr;
    obs::Counter* stale_results = nullptr;
    obs::Counter* out_of_order = nullptr;
    obs::Counter* duplicate_symptoms = nullptr;
    obs::Counter* duplicate_requests = nullptr;
    obs::Counter* flap_quarantines = nullptr;
    obs::Counter* history_evictions = nullptr;
    obs::Counter* adopted = nullptr;
    obs::Histogram* downtime = nullptr;
    obs::Histogram* actions_per_process = nullptr;
  };
  ObsMetrics obs_;
};

}  // namespace aer

#endif  // AER_CORE_RECOVERY_MANAGER_H_
