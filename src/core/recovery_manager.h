// RecoveryManager — the online automatic-recovery framework (the upper half
// of Figure 1): event monitoring feeds symptoms in, fault detection requests
// a repair decision, error recovery consults the pluggable policy and
// enforces the N-cap, and everything observable is appended to a recovery
// log (the input of the next offline training round — this closes the
// paper's feedback loop and is what lets the system "adapt to the change of
// the environment without human involvement").
//
// The manager is deliberately transport-agnostic: callers (a production
// event bus, or the cluster simulator in the examples) push timestamped
// events and execute the returned actions.
#ifndef AER_CORE_RECOVERY_MANAGER_H_
#define AER_CORE_RECOVERY_MANAGER_H_

#include <optional>
#include <unordered_map>

#include "cluster/policy.h"
#include "log/recovery_log.h"

namespace aer {

struct RecoveryManagerConfig {
  // The paper's N: the last permitted action of a process is manual repair.
  int max_actions_per_process = 20;
};

class RecoveryManager {
 public:
  // `policy` must outlive the manager.
  RecoveryManager(RecoveryPolicy& policy, RecoveryManagerConfig config = {});

  // Event monitoring: a symptom was observed on a machine. Opens a recovery
  // process if none is active; records the symptom either way.
  void OnSymptom(SimTime time, MachineId machine, std::string_view symptom);

  // Fault detection: the machine needs (another) repair action now. Returns
  // the action the caller must execute, or nullopt if no process is open.
  // Records the action and enforces the N-cap (the N-th action is RMA).
  std::optional<RepairAction> OnRecoveryNeeded(SimTime time,
                                               MachineId machine);

  // Result monitoring: the outcome of the last action. `healthy` closes the
  // process (records Success); otherwise the caller should follow up with
  // OnRecoveryNeeded.
  void OnActionResult(SimTime time, MachineId machine, bool healthy);

  bool HasOpenProcess(MachineId machine) const;
  std::size_t open_process_count() const { return open_.size(); }

  // The log of everything this manager observed and decided; feed it back
  // into PolicyGenerator to close the loop.
  const RecoveryLog& log() const { return log_; }

  struct Stats {
    std::int64_t processes_completed = 0;
    std::int64_t actions_taken = 0;
    std::int64_t manual_repairs_forced = 0;  // N-cap hits
    SimTime total_downtime = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  struct OpenProcess {
    SimTime start = 0;
    SymptomId initial_symptom = kInvalidSymptom;
    std::vector<RepairAction> tried;
    SimTime last_recovery_end = -1;
    SimTime last_action_start = -1;
  };

  RecoveryPolicy& policy_;
  RecoveryManagerConfig config_;
  RecoveryLog log_;
  std::unordered_map<MachineId, OpenProcess> open_;
  std::unordered_map<MachineId, SimTime> last_recovery_end_;
  Stats stats_;
};

}  // namespace aer

#endif  // AER_CORE_RECOVERY_MANAGER_H_
