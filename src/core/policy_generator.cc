#include "core/policy_generator.h"

#include "common/check.h"

namespace aer {

PolicyGenerator::PolicyGenerator(PolicyGeneratorConfig config)
    : config_(std::move(config)) {}

TrainedPolicy PolicyGenerator::Generate(const RecoveryLog& log,
                                        PolicyGenerationReport* report) const {
  // 1. Segment the log into recovery processes.
  const SegmentationResult segmented = SegmentIntoProcesses(log);
  AER_CHECK(!segmented.processes.empty());

  // 2. Cluster symptoms and drop noisy (multi-error) processes.
  const SymptomClustering clustering(segmented.processes, config_.mining);
  const NoiseFilterResult filtered =
      FilterNoisyProcesses(segmented.processes, clustering);
  std::vector<RecoveryProcess> clean;
  clean.reserve(filtered.clean.size());
  for (std::size_t i : filtered.clean) {
    clean.push_back(segmented.processes[i]);
  }
  AER_CHECK(!clean.empty());

  // 3. Induce error types from initial symptoms; keep the frequent ones.
  const ErrorTypeCatalog types(clean, config_.max_types);

  // 4. Train per-type policies on the simulation platform.
  const SimulationPlatform platform(clean, types, log.symptoms(),
                                    config_.trainer.max_actions);
  const QLearningTrainer trainer(platform, clean, config_.trainer);
  QLearningTrainer::TrainingOutput output;
  if (config_.use_selection_tree) {
    output = SelectionTreeTrainer(trainer, config_.tree).TrainAll();
  } else {
    output = trainer.TrainAll();
  }

  if (report != nullptr) {
    report->total_processes = segmented.processes.size();
    report->clean_processes = filtered.clean.size();
    report->noisy_processes = filtered.noisy.size();
    report->symptom_clusters = clustering.clusters().size();
    report->error_types = types.num_types();
    report->type_coverage = types.coverage();
    report->training = std::move(output.per_type);
  }
  return std::move(output.policy);
}

}  // namespace aer
