// GuardedPolicy — the runtime safety net around a deployed (usually
// trained) policy, extending the paper's hybrid fallback (Section 3.4) from
// a coverage mechanism into a fault-tolerance mechanism.
//
// The hybrid policy answers "what if the trained policy has no opinion";
// the guarded policy answers "what if the trained policy is *wrong* or
// *broken*". Two layers (docs/ROBUSTNESS.md):
//
//   1. Decision faults. If the primary policy throws, or returns an action
//      outside the repertoire (a symptom of a corrupted Q-table or policy
//      file), the decision silently comes from the fallback instead and the
//      fault is counted. A policy fault can degrade service quality, never
//      crash the recovery pipeline.
//   2. Regression circuit breaker. The realized downtime of completed
//      primary-driven processes is tracked in a sliding window; when its
//      mean regresses past `regression_ratio` times the baseline (learned
//      from the primary's own first window, or pinned by config), the
//      breaker trips and routes whole processes to the fallback for
//      `probation` completions, then half-opens and gives the primary
//      another window. This is the operational answer to a policy trained
//      on stale data: the system demotes it automatically instead of
//      waiting for a human to notice the downtime graph.
//
// Decisions are attributed per process: a process started under the
// primary stays with the primary even if the breaker trips mid-process, so
// outcome feedback and window accounting never mix the two policies.
//
// Thread safety: the breaker state is guarded by an internal mutex, so
// concurrent ChooseAction/OnActionOutcome calls (e.g. one guard shared by
// parallel harness shards) keep the counters and window consistent. The
// lock is never held across a delegate policy call; the delegates
// themselves must be thread-safe (or externally serialized) for concurrent
// use. Calls about a single machine's process must still be ordered by the
// caller, as the manager's event loop naturally does.
#ifndef AER_CORE_GUARDED_POLICY_H_
#define AER_CORE_GUARDED_POLICY_H_

#include <cstdint>
#include <deque>
#include <unordered_map>

#include "cluster/policy.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "obs/metrics.h"
#include "obs/tracer.h"

namespace aer {

struct GuardedPolicyConfig {
  // Sliding window length and the minimum samples before the breaker may
  // trip (both counted in completed primary-driven processes).
  int window = 16;
  // Trip when window mean downtime > regression_ratio * baseline mean.
  double regression_ratio = 1.5;
  // Baseline mean downtime per process. 0 = learn it from the primary's
  // first full window (during which the breaker cannot trip).
  double baseline_mean_downtime = 0.0;
  // Completed fallback-driven processes before the breaker half-opens and
  // the primary is retried.
  int probation = 32;
};

class GuardedPolicy final : public RecoveryPolicy {
 public:
  // Both referenced policies must outlive the guard.
  GuardedPolicy(RecoveryPolicy& primary, RecoveryPolicy& fallback,
                GuardedPolicyConfig config = {});

  // Attaches observability sinks (either may be null; both must outlive the
  // guard). Mirrors the Stats counters into aer_guard_* metrics, keeps the
  // aer_guard_breaker_open gauge current, and emits instant spans for
  // fault absorption and breaker trip / half-open transitions.
  void SetObservers(obs::Tracer* tracer, obs::MetricsRegistry* metrics);

  RepairAction ChooseAction(const RecoveryContext& context) override;

  void OnActionOutcome(const RecoveryContext& context, RepairAction action,
                       SimTime cost, bool cured) override;

  std::string_view name() const override { return "guarded"; }

  // True while the circuit breaker routes new processes to the fallback.
  bool using_fallback() const {
    MutexLock lock(mu_);
    return fallback_remaining_ > 0;
  }

  struct Stats {
    std::int64_t primary_decisions = 0;
    std::int64_t fallback_decisions = 0;
    std::int64_t faults_absorbed = 0;   // exceptions from the primary
    std::int64_t invalid_actions = 0;   // out-of-range actions from primary
    std::int64_t breaker_trips = 0;
    std::int64_t processes_observed = 0;
  };
  // Consistent copy of the counters (by value: the guard may keep mutating
  // while the caller inspects its snapshot).
  Stats stats() const {
    MutexLock lock(mu_);
    return stats_;
  }
  double baseline_mean_downtime() const {
    MutexLock lock(mu_);
    return baseline_mean_;
  }

 private:
  // True if this machine's open process is routed to the fallback.
  bool ProcessUsesFallbackLocked(const RecoveryContext& context)
      AER_REQUIRES(mu_);

  void RecordPrimaryCompletionLocked(double downtime, SimTime now)
      AER_REQUIRES(mu_);

  RecoveryPolicy& primary_;
  RecoveryPolicy& fallback_;
  GuardedPolicyConfig config_;

  // Guards the breaker state below. Never held across a delegate call
  // (primary_/fallback_ may be arbitrarily slow or reentrant); the sinks
  // behind tracer_/obs_ take only their own locks, so the one-way
  // guard -> sink ordering cannot deadlock.
  mutable Mutex mu_;

  // Per-machine attribution for the machines with open processes; erased on
  // process completion, so it cannot grow past the number of concurrently
  // sick machines.
  std::unordered_map<MachineId, bool> open_process_fallback_
      AER_GUARDED_BY(mu_);

  // Recent primary-driven process downtimes.
  std::deque<double> window_ AER_GUARDED_BY(mu_);
  // 0 until learned/configured.
  double baseline_mean_ AER_GUARDED_BY(mu_) = 0.0;
  // >0: breaker open, counts down probation.
  int fallback_remaining_ AER_GUARDED_BY(mu_) = 0;
  Stats stats_ AER_GUARDED_BY(mu_);

  obs::Tracer* tracer_ AER_GUARDED_BY(mu_) = nullptr;
  // Cached metric handles (see RecoveryManager::SetObservers); all null
  // when no registry is attached.
  struct ObsMetrics {
    obs::Counter* primary_decisions = nullptr;
    obs::Counter* fallback_decisions = nullptr;
    obs::Counter* faults_absorbed = nullptr;
    obs::Counter* invalid_actions = nullptr;
    obs::Counter* breaker_trips = nullptr;
    obs::Gauge* breaker_open = nullptr;
  };
  ObsMetrics obs_ AER_GUARDED_BY(mu_);
};

}  // namespace aer

#endif  // AER_CORE_GUARDED_POLICY_H_
