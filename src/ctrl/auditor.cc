#include "ctrl/auditor.h"

#include <algorithm>

#include "common/check.h"

namespace aer::ctrl {

InvariantAuditor::InvariantAuditor(int cluster_size)
    : majority_(cluster_size / 2 + 1) {
  AER_CHECK_GT(cluster_size, 0);
}

bool InvariantAuditor::HasQuorumLocked(SimTime now, NodeId candidate,
                                       Epoch epoch) const {
  const auto epoch_it = grants_.find(epoch);
  if (epoch_it == grants_.end()) return false;
  const auto cand_it = epoch_it->second.find(candidate);
  if (cand_it == epoch_it->second.end()) return false;
  int live = 0;
  for (const auto& [voter, expiry] : cand_it->second) {
    if (expiry > now) ++live;
  }
  return live >= majority_;
}

void InvariantAuditor::OnVoteGrant(SimTime now, NodeId voter,
                                   NodeId candidate, Epoch epoch,
                                   SimTime expiry) {
  MutexLock lock(mu_);
  ++report_.grants_observed;
  SimTime& slot = grants_[epoch][candidate][voter];
  slot = std::max(slot, expiry);
  if (HasQuorumLocked(now, candidate, epoch)) {
    std::set<NodeId>& holders = holders_[epoch];
    const bool inserted = holders.insert(candidate).second;
    if (inserted) {
      if (holders.size() == 1) {
        ++report_.epochs_with_holder;
      } else {
        ++report_.duplicate_leaseholders;  // invariant 1 broken
      }
    }
  }
}

void InvariantAuditor::OnActionIssued(SimTime now, NodeId issuer,
                                      Epoch epoch, MachineId machine) {
  (void)machine;
  MutexLock lock(mu_);
  ++report_.actions_issued;
  if (!HasQuorumLocked(now, issuer, epoch)) {
    ++report_.issued_without_lease;  // invariant 2 broken
  }
}

void InvariantAuditor::OnActionExecuted(SimTime now, MachineId machine,
                                        Epoch epoch) {
  (void)now;
  MutexLock lock(mu_);
  ++report_.actions_executed;
  Epoch& floor = executed_floor_[machine];
  if (epoch < floor) {
    ++report_.stale_executed;  // invariant 3 broken
  } else {
    floor = epoch;
  }
}

void InvariantAuditor::OnStaleRejected(SimTime now, MachineId machine,
                                       Epoch epoch) {
  (void)now;
  (void)machine;
  (void)epoch;
  MutexLock lock(mu_);
  ++report_.stale_rejected;
}

InvariantAuditor::Report InvariantAuditor::report() const {
  MutexLock lock(mu_);
  return report_;
}

}  // namespace aer::ctrl
