#include "ctrl/fence.h"

namespace aer::ctrl {

bool FenceRegistry::Admit(MachineId machine, Epoch epoch) {
  MutexLock lock(mu_);
  Epoch& floor = floor_[machine];
  if (epoch < floor) {
    ++rejections_;
    return false;
  }
  floor = epoch;
  return true;
}

Epoch FenceRegistry::FloorOf(MachineId machine) const {
  MutexLock lock(mu_);
  const auto it = floor_.find(machine);
  return it == floor_.end() ? 0 : it->second;
}

std::int64_t FenceRegistry::rejections() const {
  MutexLock lock(mu_);
  return rejections_;
}

}  // namespace aer::ctrl
