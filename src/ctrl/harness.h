// ControlPlaneHarness — the deterministic simulation that closes the loop
// around the distributed control plane: N coordinators (src/ctrl), a fleet
// of machines with scripted incidents, and a NetPerturber (src/inject)
// sitting on every coordinator-to-coordinator link injecting crashes,
// restarts, partitions, and message-level faults.
//
// One global event queue ordered by (sim-time, FIFO seq) drives everything;
// all randomness flows through the perturber's seeded Rng, and no RNG is
// consumed while the probabilistic arms are off — which is why a fault-free
// run produces byte-identical cure times and action sequences whether the
// cluster has 1, 3, or 5 coordinators (the takeover-determinism suite).
//
// Machine model: a machine executes at most one repair action at a time
// (concurrent dispatches are dropped as busy), checks every action's epoch
// against the highest it has executed under (fencing; stale actions are
// rejected and audited), and reports each result only to the action's
// issuer — a crashed or deposed issuer simply never hears it, and the
// manager's timeout/N-cap machinery plus the symptom re-emit chain are what
// rescue the process, exactly as in the event-level InjectionHarness.
//
// Termination is provable, not hopeful: RMA always cures, the N-cap forces
// it eventually, re-emits re-detect anything lost, leaders poll timeouts
// every tick, and a hard event budget converts any residual loop into a
// reported failure (all_completed = false) instead of a hang. Ticks shut
// down once the fleet is healthy, no work is in flight, and no open or
// replicated process remains unowned, so the queue drains on its own.
#ifndef AER_CTRL_HARNESS_H_
#define AER_CTRL_HARNESS_H_

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "ctrl/auditor.h"
#include "ctrl/coordinator.h"
#include "ctrl/fence.h"
#include "ctrl/message.h"
#include "inject/net_perturber.h"
#include "obs/trace_collector.h"
#include "obs/trace_context.h"

namespace aer::ctrl {

// One scripted fleet failure, same shape as the event-level harness's: at
// `time`, `machine` falls sick with `symptom` until an action of index
// >= `cure_strength` executes (RMA always cures).
struct ControlIncident {
  SimTime time = 0;
  MachineId machine = 0;
  std::string symptom;
  int cure_strength = 0;
};

struct ControlHarnessConfig {
  int cluster_size = 3;
  SimTime tick_interval = 5;
  // One-way latency for every hop (coordinator<->coordinator via the
  // perturber, monitoring->coordinator, coordinator->machine).
  SimTime net_latency = 1;
  SimTime reemit_interval = 15 * 60;
  std::array<SimTime, kNumActions> action_duration = {60, 900, 2 * kHour,
                                                      8 * kHour};
  std::size_t max_events = 2'000'000;
  CoordinatorConfig coordinator;
  // Message-level injection arms + seed; scripted crashes/partitions come
  // from the NetFaultScript passed to Run().
  NetPerturbConfig net;

  // Scripted dispatch delays: the dispatch_index-th dispatch of the run
  // (0-based, dispatch_log order) is delivered `delay` seconds late. This
  // is the deterministic lever for overlapping an old leader's in-flight
  // action with its successor's epoch — the scenario fencing exists for.
  struct DispatchDelay {
    std::int64_t dispatch_index = 0;
    SimTime delay = 0;
  };
  std::vector<DispatchDelay> dispatch_delays;
};

// Where and when one action actually ran — the cross-cluster-size
// determinism surface ((machine, action) only; epochs differ by design
// when faults differ).
struct ExecutedAction {
  MachineId machine = 0;
  int action = 0;  // ActionIndex
  friend bool operator==(const ExecutedAction&,
                         const ExecutedAction&) = default;
};

// Every dispatch that left a coordinator, for post-hoc assertions (e.g. "the
// isolated minority issued nothing after its lease expired").
struct DispatchRecord {
  SimTime time = 0;
  NodeId issuer = kNoNode;
  Epoch epoch = 0;
  MachineId machine = 0;
  int action = 0;
  friend bool operator==(const DispatchRecord&,
                         const DispatchRecord&) = default;
};

struct ControlHarnessResult {
  bool all_completed = false;
  std::int64_t incidents = 0;
  std::int64_t cures = 0;
  SimTime end_time = 0;
  std::size_t events_processed = 0;

  // Safety: recomputed by the independent auditor from the event stream.
  InvariantAuditor::Report audit;

  // Machine-side accounting.
  std::int64_t actions_dispatched = 0;
  std::int64_t actions_executed = 0;
  std::int64_t busy_drops = 0;
  std::int64_t stale_rejected = 0;  // fence refusals (== audit evidence)
  std::int64_t results_lost = 0;    // issuer was down at result delivery

  // Control-plane accounting, summed across every coordinator incarnation.
  Coordinator::Stats coordinators;
  std::int64_t actions_gated = 0;
  NetPerturber::Stats net;

  // Determinism surfaces (execution order).
  std::vector<ExecutedAction> executed;
  std::vector<std::pair<MachineId, SimTime>> cure_times;
  std::vector<DispatchRecord> dispatch_log;
};

class ControlPlaneHarness {
 public:
  // `policy` must outlive the harness and is shared by every coordinator's
  // manager (so a GuardedPolicy's breaker state survives takeovers, same as
  // a shared policy service would). `manager_config.action_timeout` must be
  // > 0 whenever the script crashes nodes: a lost result is otherwise
  // unrecoverable.
  ControlPlaneHarness(RecoveryPolicy& policy,
                      RecoveryManagerConfig manager_config,
                      ControlHarnessConfig config, NetFaultScript script);

  // Attaches sinks (either may be null; both must outlive the harness) to
  // the perturber and every coordinator (including ones recreated after a
  // scripted restart).
  void SetObservers(obs::Tracer* tracer, obs::MetricsRegistry* metrics);

  // Attaches the causal trace sink (may be null; must outlive the harness).
  // Each fresh incident mints a deterministic trace id from
  // (config.net.seed, machine, per-machine episode ordinal); every hop of
  // the recovery process — symptom admission, dispatch, fencing, execution,
  // result, timeout, adoption — lands in the collector as one causal DAG
  // (docs/OBSERVABILITY.md "Distributed tracing"). Null disables tracing
  // with zero behavioral difference.
  void SetTraceCollector(obs::TraceCollector* traces);

  // Runs all incidents to quiescence (or the event budget). Callable once.
  ControlHarnessResult Run(const std::vector<ControlIncident>& incidents);

  // Post-run inspection; null while the node is crashed.
  const Coordinator* coordinator(NodeId node) const {
    return coordinators_[static_cast<std::size_t>(node)].get();
  }
  const InvariantAuditor& auditor() const { return auditor_; }

 private:
  struct MachineState {
    bool sick = false;
    int cure_strength = 0;
    std::string symptom;
    bool executing = false;
    // Recovery episodes seen on this machine (fresh incidents while
    // healthy) and the trace id of the most recent one. The id survives the
    // cure so post-cure stragglers still attach to their episode.
    std::int64_t episodes = 0;
    obs::TraceId trace = obs::kNoTrace;
  };

  struct Event;

  void ApplyTransitions(SimTime now);
  bool Quiescent(SimTime now) const;

  // Recovery-related events currently scheduled (incidents, re-emits,
  // symptom deliveries, dispatches, executions, results): while any exist,
  // tick chains must stay alive. Protocol traffic (heartbeats, votes,
  // replication) deliberately does not count — a leader's own renewal round
  // is always in flight at tick time, so counting it would keep the ticks
  // alive forever; in-flight protocol messages drain harmlessly after the
  // ticks stop.
  std::int64_t work_pending_ = 0;

  const RecoveryManagerConfig manager_config_;
  const ControlHarnessConfig config_;
  RecoveryPolicy& policy_;
  NetPerturber net_;
  FenceRegistry fence_;
  InvariantAuditor auditor_;
  std::vector<std::unique_ptr<Coordinator>> coordinators_;
  std::vector<VoterRecord> durable_;  // survives each node's crashes
  std::unordered_map<MachineId, MachineState> machines_;
  // Stats of coordinator incarnations already destroyed by a crash.
  Coordinator::Stats retired_stats_;
  std::int64_t retired_gated_ = 0;

  obs::Tracer* tracer_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Counter* stale_rejected_metric_ = nullptr;
  obs::TraceCollector* traces_ = nullptr;
};

}  // namespace aer::ctrl

#endif  // AER_CTRL_HARNESS_H_
