#include "ctrl/harness.h"

#include <algorithm>
#include <queue>

#include "common/check.h"
#include "common/profiler.h"

namespace aer::ctrl {
namespace {

void AddStats(Coordinator::Stats& into, const Coordinator::Stats& from) {
  into.heartbeats_sent += from.heartbeats_sent;
  into.elections_started += from.elections_started;
  into.votes_granted += from.votes_granted;
  into.leases_acquired += from.leases_acquired;
  into.lease_renewals += from.lease_renewals;
  into.stepdowns += from.stepdowns;
  into.takeovers += from.takeovers;
  into.processes_adopted += from.processes_adopted;
  into.stale_results_dropped += from.stale_results_dropped;
}

}  // namespace

struct ControlPlaneHarness::Event {
  enum class Kind : int {
    kIncident = 0,        // a machine falls sick
    kReemit = 1,          // sick machine re-reports (ends when cured)
    kSymptomDeliver = 2,  // one symptom report reaches one coordinator
    kCoordTick = 3,       // periodic maintenance for one node
    kMsgDeliver = 4,      // coordinator-to-coordinator message arrives
    kDispatchDeliver = 5,  // a fenced action reaches its machine
    kActionDone = 6,       // the machine finished executing
    kResultDeliver = 7,    // the result reaches the issuing coordinator
  };

  SimTime time = 0;
  std::uint64_t seq = 0;  // FIFO tie-break at equal times (determinism)
  Kind kind = Kind::kIncident;
  MachineId machine = 0;
  NodeId node = kNoNode;
  std::string symptom;
  int cure_strength = 0;
  Message msg;
  ActionDispatch dispatch;
  bool healthy = false;
  // The event descends from a network-duplicated hop; trace records it
  // produces carry the flag so the critical-path analyzer never
  // double-counts stages.
  bool duplicate = false;
};

ControlPlaneHarness::ControlPlaneHarness(RecoveryPolicy& policy,
                                         RecoveryManagerConfig manager_config,
                                         ControlHarnessConfig config,
                                         NetFaultScript script)
    : manager_config_(manager_config),
      config_(config),
      policy_(policy),
      net_(config.net, script),
      auditor_(config.cluster_size) {
  AER_CHECK_GT(config_.cluster_size, 0);
  AER_CHECK_GT(config_.tick_interval, 0);
  AER_CHECK_GT(config_.net_latency, 0);
  AER_CHECK_GT(config_.reemit_interval, 0);
  if (!script.crashes.empty()) {
    // A crashed issuer never hears its in-flight results; without timeouts
    // those processes would be stuck forever.
    AER_CHECK_GT(manager_config_.action_timeout, 0);
  }
  coordinators_.resize(static_cast<std::size_t>(config_.cluster_size));
  durable_.resize(static_cast<std::size_t>(config_.cluster_size));
  for (NodeId node = 0; node < config_.cluster_size; ++node) {
    coordinators_[static_cast<std::size_t>(node)] =
        std::make_unique<Coordinator>(node, config_.cluster_size,
                                      config_.coordinator, policy_,
                                      manager_config_, VoterRecord{});
  }
}

void ControlPlaneHarness::SetObservers(obs::Tracer* tracer,
                                       obs::MetricsRegistry* metrics) {
  tracer_ = tracer;
  metrics_ = metrics;
  net_.SetObservers(tracer, metrics);
  for (auto& coordinator : coordinators_) {
    if (coordinator) coordinator->SetObservers(tracer, metrics);
  }
  stale_rejected_metric_ =
      metrics == nullptr
          ? nullptr
          : &metrics->GetCounter("aer_ctrl_stale_actions_rejected_total");
}

void ControlPlaneHarness::SetTraceCollector(obs::TraceCollector* traces) {
  traces_ = traces;
  for (auto& coordinator : coordinators_) {
    if (coordinator) coordinator->SetTraceCollector(traces);
  }
}

void ControlPlaneHarness::ApplyTransitions(SimTime now) {
  for (const NetTransition& transition : net_.AdvanceTo(now)) {
    if (transition.kind == NetTransition::Kind::kCrash) {
      auto& coordinator =
          coordinators_[static_cast<std::size_t>(transition.node)];
      if (coordinator) {
        // The voter record is the node's durable storage: it survives.
        durable_[static_cast<std::size_t>(transition.node)] =
            coordinator->durable();
        AddStats(retired_stats_, coordinator->stats());
        retired_gated_ += coordinator->service().actions_gated();
        coordinator.reset();
      }
      if (traces_) {
        obs::TraceRecord record;
        record.time = transition.at;
        record.kind = obs::TraceEventKind::kNodeCrash;
        record.node = transition.node;
        traces_->Record(std::move(record));
      }
    } else if (transition.kind == NetTransition::Kind::kRestart) {
      auto& coordinator =
          coordinators_[static_cast<std::size_t>(transition.node)];
      coordinator = std::make_unique<Coordinator>(
          transition.node, config_.cluster_size, config_.coordinator,
          policy_, manager_config_,
          durable_[static_cast<std::size_t>(transition.node)]);
      coordinator->SetObservers(tracer_, metrics_);
      coordinator->SetTraceCollector(traces_);
      if (traces_) {
        obs::TraceRecord record;
        record.time = transition.at;
        record.kind = obs::TraceEventKind::kNodeRestart;
        record.node = transition.node;
        traces_->Record(std::move(record));
      }
    }
    // Partition start/heal is routing state the perturber already applied.
  }
}

bool ControlPlaneHarness::Quiescent(SimTime now) const {
  for (const auto& [machine, state] : machines_) {
    if (state.sick || state.executing) return false;
  }
  if (work_pending_ > 0) return false;
  bool any_lease = false;
  for (const auto& coordinator : coordinators_) {
    if (!coordinator) continue;
    if (coordinator->lease().HoldsLease(now)) {
      any_lease = true;
      if (coordinator->service().manager().open_process_count() > 0) {
        return false;
      }
    }
  }
  if (!any_lease) {
    // No one may issue right now, but unowned work remains on live nodes:
    // keep ticking so an election can claim and finish it.
    for (const auto& coordinator : coordinators_) {
      if (!coordinator) continue;
      if (coordinator->service().manager().open_process_count() > 0 ||
          coordinator->service().replica_entries() > 0) {
        return false;
      }
    }
  }
  return true;
}

ControlHarnessResult ControlPlaneHarness::Run(
    const std::vector<ControlIncident>& incidents) {
  AER_PROFILE_SCOPE("ctrl_harness_run");
  ControlHarnessResult result;
  result.incidents = static_cast<std::int64_t>(incidents.size());

  const auto later = [](const Event& a, const Event& b) {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  };
  std::priority_queue<Event, std::vector<Event>, decltype(later)> queue(
      later);
  std::uint64_t seq = 0;

  const auto counts_as_work = [](Event::Kind kind) {
    return kind != Event::Kind::kCoordTick &&
           kind != Event::Kind::kMsgDeliver;
  };
  // Scheduled tick events per node: chains die at quiescence, and a later
  // incident must revive them or nobody would ever be elected to cure it.
  std::vector<std::int64_t> ticks_pending(
      static_cast<std::size_t>(config_.cluster_size), 0);
  const auto push = [this, &queue, &seq, &counts_as_work,
                     &ticks_pending](Event e) {
    e.seq = seq++;
    if (counts_as_work(e.kind)) ++work_pending_;
    if (e.kind == Event::Kind::kCoordTick) {
      ++ticks_pending[static_cast<std::size_t>(e.node)];
    }
    queue.push(std::move(e));
  };

  // Everything a coordinator produced goes back through the network (the
  // perturber decides each message's fate) or out to the fleet.
  const auto process_output = [this, &push, &result](SimTime now,
                                                     CoordinatorOutput out) {
    for (Message& message : out.messages) {
      const NetPerturber::Routing routing =
          net_.Route(now, message.from, message.to, config_.net_latency);
      if (routing.deliver) {
        Event e;
        e.kind = Event::Kind::kMsgDeliver;
        e.time = routing.at;
        e.msg = message;
        push(std::move(e));
      }
      if (routing.duplicated) {
        Event e;
        e.kind = Event::Kind::kMsgDeliver;
        e.time = routing.duplicate_at;
        e.msg = std::move(message);
        push(std::move(e));
      }
    }
    for (const ActionDispatch& dispatch : out.dispatches) {
      auditor_.OnActionIssued(now, dispatch.issuer, dispatch.epoch,
                              dispatch.machine);
      const std::int64_t index = result.actions_dispatched++;
      SimTime extra_delay = 0;
      for (const ControlHarnessConfig::DispatchDelay& scripted :
           config_.dispatch_delays) {
        if (scripted.dispatch_index == index) extra_delay = scripted.delay;
      }
      DispatchRecord record;
      record.time = now;
      record.issuer = dispatch.issuer;
      record.epoch = dispatch.epoch;
      record.machine = dispatch.machine;
      record.action = ActionIndex(dispatch.action);
      result.dispatch_log.push_back(record);
      if (traces_) {
        obs::TraceRecord trace;
        trace.trace_id = dispatch.trace;
        trace.time = now;
        trace.kind = obs::TraceEventKind::kDispatch;
        trace.machine = dispatch.machine;
        trace.node = dispatch.issuer;
        trace.attempt = dispatch.attempt;
        trace.action = ActionIndex(dispatch.action);
        trace.epoch = dispatch.epoch;
        traces_->Record(std::move(trace));
      }
      const NetPerturber::Routing routing = net_.RouteMachineHop(
          now, config_.net_latency + extra_delay);
      if (routing.deliver) {
        Event e;
        e.kind = Event::Kind::kDispatchDeliver;
        e.time = routing.at;
        e.dispatch = dispatch;
        push(std::move(e));
      } else {
        // Lost on the machine network: the issuer's timeout machinery (or
        // the re-emit chain) retries. The trace keeps the orphan edge.
        if (traces_) {
          obs::TraceRecord trace;
          trace.trace_id = dispatch.trace;
          trace.time = now;
          trace.kind = obs::TraceEventKind::kDispatchDrop;
          trace.machine = dispatch.machine;
          trace.node = dispatch.issuer;
          trace.attempt = dispatch.attempt;
          trace.action = ActionIndex(dispatch.action);
          trace.epoch = dispatch.epoch;
          trace.detail = "dropped";
          traces_->Record(std::move(trace));
        }
      }
      if (routing.duplicated) {
        Event e;
        e.kind = Event::Kind::kDispatchDeliver;
        e.time = routing.duplicate_at;
        e.dispatch = dispatch;
        e.duplicate = true;
        push(std::move(e));
      }
    }
  };

  for (NodeId node = 0; node < config_.cluster_size; ++node) {
    Event e;
    e.kind = Event::Kind::kCoordTick;
    e.time = 0;
    e.node = node;
    push(std::move(e));
  }
  for (const ControlIncident& incident : incidents) {
    AER_CHECK_GE(incident.time, 0);
    AER_CHECK_GE(incident.cure_strength, 0);
    AER_CHECK_LT(incident.cure_strength, kNumActions);
    Event e;
    e.kind = Event::Kind::kIncident;
    e.time = incident.time;
    e.machine = incident.machine;
    e.symptom = incident.symptom;
    e.cure_strength = incident.cure_strength;
    push(std::move(e));
  }

  const auto finalize = [this, &result] {
    result.coordinators = retired_stats_;
    result.actions_gated = retired_gated_;
    for (const auto& coordinator : coordinators_) {
      if (!coordinator) continue;
      AddStats(result.coordinators, coordinator->stats());
      result.actions_gated += coordinator->service().actions_gated();
    }
    result.audit = auditor_.report();
    result.net = net_.stats();
  };

  while (!queue.empty()) {
    if (++result.events_processed > config_.max_events) {
      result.all_completed = false;  // budget blown: report, don't hang
      finalize();
      return result;
    }
    const Event event = queue.top();
    queue.pop();
    if (counts_as_work(event.kind)) --work_pending_;
    if (event.kind == Event::Kind::kCoordTick) {
      --ticks_pending[static_cast<std::size_t>(event.node)];
    }
    result.end_time = event.time;
    ApplyTransitions(event.time);

    switch (event.kind) {
      case Event::Kind::kIncident: {
        MachineState& machine = machines_[event.machine];
        const bool fresh = !machine.sick;
        machine.sick = true;
        machine.symptom = event.symptom;
        // Overlapping incidents: the harder fault wins.
        machine.cure_strength =
            std::max(machine.cure_strength, event.cure_strength);
        if (fresh) {
          // A fresh incident opens a new recovery episode: mint its
          // deterministic trace id. Overlapping incidents join the episode.
          ++machine.episodes;
          machine.trace = obs::MakeTraceId(config_.net.seed, event.machine,
                                           machine.episodes);
        }
        if (traces_) {
          obs::TraceRecord trace;
          trace.trace_id = machine.trace;
          trace.time = event.time;
          trace.kind = obs::TraceEventKind::kIncident;
          trace.machine = event.machine;
          trace.duplicate = !fresh;
          trace.detail = event.symptom;
          traces_->Record(std::move(trace));
        }
        if (tracer_) {
          tracer_->Instant("inject:incident", event.time, event.symptom,
                           obs::kNoSpan, event.machine);
        }
        Event reemit;
        reemit.kind = Event::Kind::kReemit;
        reemit.time = event.time;
        reemit.machine = event.machine;
        push(std::move(reemit));
        // Revive any tick chain that shut down at an earlier quiescence:
        // without ticks there are no elections, and without elections a
        // late incident would never find a leaseholder to cure it.
        for (NodeId node = 0; node < config_.cluster_size; ++node) {
          if (ticks_pending[static_cast<std::size_t>(node)] > 0) continue;
          Event tick;
          tick.kind = Event::Kind::kCoordTick;
          tick.time = event.time;
          tick.node = node;
          push(std::move(tick));
        }
        break;
      }
      case Event::Kind::kReemit: {
        const MachineState& machine = machines_[event.machine];
        if (!machine.sick) break;  // cured: the chain ends
        // Monitoring broadcasts the symptom to every coordinator; a down
        // node simply misses this round.
        for (NodeId node = 0; node < config_.cluster_size; ++node) {
          Event deliver;
          deliver.kind = Event::Kind::kSymptomDeliver;
          deliver.time = event.time + config_.net_latency;
          deliver.machine = event.machine;
          deliver.node = node;
          push(std::move(deliver));
        }
        Event next;
        next.kind = Event::Kind::kReemit;
        next.time = event.time + config_.reemit_interval;
        next.machine = event.machine;
        push(std::move(next));
        break;
      }
      case Event::Kind::kSymptomDeliver: {
        const auto node = static_cast<std::size_t>(event.node);
        if (!net_.NodeUp(event.node) || !coordinators_[node]) break;
        MachineState& machine = machines_[event.machine];
        // Only the leaseholder's admission is a trace event: followers
        // receive the same broadcast but gate it, and recording theirs
        // would make the trace stream depend on the cluster size.
        if (traces_ && coordinators_[node]->IsLeader(event.time)) {
          obs::TraceRecord trace;
          trace.trace_id = machine.trace;
          trace.time = event.time;
          trace.kind = obs::TraceEventKind::kSymptom;
          trace.machine = event.machine;
          trace.node = event.node;
          trace.detail = machine.symptom;
          traces_->Record(std::move(trace));
        }
        process_output(event.time,
                       coordinators_[node]->OnSymptom(
                           event.time, event.machine, machine.symptom,
                           obs::TraceContext{machine.trace}));
        break;
      }
      case Event::Kind::kCoordTick: {
        const auto node = static_cast<std::size_t>(event.node);
        if (net_.NodeUp(event.node) && coordinators_[node]) {
          process_output(event.time, coordinators_[node]->Tick(event.time));
        }
        if (!Quiescent(event.time)) {
          Event next;
          next.kind = Event::Kind::kCoordTick;
          next.time = event.time + config_.tick_interval;
          next.node = event.node;
          push(std::move(next));
        }
        break;
      }
      case Event::Kind::kMsgDeliver: {
        const NodeId to = event.msg.to;
        const auto node = static_cast<std::size_t>(to);
        if (!net_.NodeUp(to) || !coordinators_[node]) break;  // lost
        if (event.msg.kind == MessageKind::kVoteGrant &&
            event.msg.candidate == to) {
          // The grant counts (for the auditor as for the candidate) from
          // the moment it is received.
          auditor_.OnVoteGrant(event.time, event.msg.from,
                               event.msg.candidate, event.msg.epoch,
                               event.msg.expiry);
        }
        process_output(event.time,
                       coordinators_[node]->Deliver(event.time, event.msg));
        break;
      }
      case Event::Kind::kDispatchDeliver: {
        const ActionDispatch& dispatch = event.dispatch;
        const auto trace_hop = [this, &event, &dispatch](
                                   obs::TraceEventKind kind,
                                   std::string detail) {
          if (!traces_) return;
          obs::TraceRecord trace;
          trace.trace_id = dispatch.trace;
          trace.time = event.time;
          trace.kind = kind;
          trace.machine = dispatch.machine;
          trace.node = dispatch.issuer;
          trace.attempt = dispatch.attempt;
          trace.action = ActionIndex(dispatch.action);
          trace.epoch = dispatch.epoch;
          trace.duplicate = event.duplicate;
          trace.detail = std::move(detail);
          traces_->Record(std::move(trace));
        };
        if (!fence_.Admit(dispatch.machine, dispatch.epoch)) {
          auditor_.OnStaleRejected(event.time, dispatch.machine,
                                   dispatch.epoch);
          ++result.stale_rejected;
          if (stale_rejected_metric_) stale_rejected_metric_->Inc();
          if (tracer_) {
            tracer_->Instant("fence:reject", event.time, "", obs::kNoSpan,
                             dispatch.machine);
          }
          trace_hop(obs::TraceEventKind::kFenceReject, "stale_epoch");
          break;
        }
        MachineState& machine = machines_[dispatch.machine];
        if (machine.executing) {
          // One action at a time; the issuer's timeout machinery (or the
          // re-emit chain) retries once the machine frees up.
          ++result.busy_drops;
          trace_hop(obs::TraceEventKind::kBusyDrop, "executing");
          break;
        }
        machine.executing = true;
        auditor_.OnActionExecuted(event.time, dispatch.machine,
                                  dispatch.epoch);
        ++result.actions_executed;
        result.executed.push_back(
            {dispatch.machine, ActionIndex(dispatch.action)});
        trace_hop(obs::TraceEventKind::kActionStart, "");
        Event done;
        done.kind = Event::Kind::kActionDone;
        done.time =
            event.time + config_.action_duration[static_cast<std::size_t>(
                             ActionIndex(dispatch.action))];
        done.dispatch = dispatch;
        done.duplicate = event.duplicate;
        push(std::move(done));
        break;
      }
      case Event::Kind::kActionDone: {
        const ActionDispatch& dispatch = event.dispatch;
        MachineState& machine = machines_[dispatch.machine];
        machine.executing = false;
        const bool cured = !machine.sick ||
                           dispatch.action == RepairAction::kRma ||
                           ActionStrength(dispatch.action) >=
                               machine.cure_strength;
        const auto trace_hop = [this, &event, &dispatch](
                                   obs::TraceEventKind kind,
                                   std::string detail) {
          if (!traces_) return;
          obs::TraceRecord trace;
          trace.trace_id = dispatch.trace;
          trace.time = event.time;
          trace.kind = kind;
          trace.machine = dispatch.machine;
          trace.node = dispatch.issuer;
          trace.attempt = dispatch.attempt;
          trace.action = ActionIndex(dispatch.action);
          trace.epoch = dispatch.epoch;
          trace.duplicate = event.duplicate;
          trace.detail = std::move(detail);
          traces_->Record(std::move(trace));
        };
        trace_hop(obs::TraceEventKind::kActionDone, cured ? "cured" : "sick");
        if (cured && machine.sick) {
          machine.sick = false;
          machine.cure_strength = 0;
          ++result.cures;
          result.cure_times.emplace_back(dispatch.machine, event.time);
          trace_hop(obs::TraceEventKind::kCure, "");
        }
        const NetPerturber::Routing routing =
            net_.RouteMachineHop(event.time, config_.net_latency);
        if (!routing.deliver) {
          // The result hop itself was lost; timeouts + re-emits rescue.
          ++result.results_lost;
          trace_hop(obs::TraceEventKind::kResultLost, "dropped");
          break;
        }
        Event report;
        report.kind = Event::Kind::kResultDeliver;
        report.time = routing.at;
        report.dispatch = dispatch;
        report.healthy = cured;
        report.duplicate = event.duplicate;
        push(std::move(report));
        if (routing.duplicated) {
          Event dup;
          dup.kind = Event::Kind::kResultDeliver;
          dup.time = routing.duplicate_at;
          dup.dispatch = dispatch;
          dup.healthy = cured;
          dup.duplicate = true;
          push(std::move(dup));
        }
        break;
      }
      case Event::Kind::kResultDeliver: {
        const NodeId issuer = event.dispatch.issuer;
        const auto node = static_cast<std::size_t>(issuer);
        const auto trace_hop = [this, &event, issuer](
                                   obs::TraceEventKind kind,
                                   std::string detail) {
          if (!traces_) return;
          obs::TraceRecord trace;
          trace.trace_id = event.dispatch.trace;
          trace.time = event.time;
          trace.kind = kind;
          trace.machine = event.dispatch.machine;
          trace.node = issuer;
          trace.attempt = event.dispatch.attempt;
          trace.action = ActionIndex(event.dispatch.action);
          trace.epoch = event.dispatch.epoch;
          trace.duplicate = event.duplicate;
          trace.detail = std::move(detail);
          traces_->Record(std::move(trace));
        };
        if (!net_.NodeUp(issuer) || !coordinators_[node]) {
          // The issuer died (or was replaced by a restart): the result is
          // lost; timeouts + re-emits rescue the process.
          ++result.results_lost;
          trace_hop(obs::TraceEventKind::kResultLost, "issuer_down");
          break;
        }
        trace_hop(obs::TraceEventKind::kResultDeliver,
                  event.healthy ? "healthy" : "sick");
        process_output(event.time,
                       coordinators_[node]->OnActionResult(
                           event.time, event.dispatch.machine, event.healthy,
                           event.dispatch.attempt));
        break;
      }
    }
  }

  bool any_open = false;
  for (const auto& [machine, state] : machines_) {
    if (state.sick || state.executing) any_open = true;
  }
  result.all_completed = !any_open;
  finalize();
  return result;
}

}  // namespace aer::ctrl
