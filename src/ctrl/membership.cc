#include "ctrl/membership.h"

#include <algorithm>

#include "common/check.h"

namespace aer::ctrl {

MembershipTable::MembershipTable(NodeId self, int cluster_size,
                                 MembershipConfig config)
    : self_(self), cluster_size_(cluster_size), config_(config) {
  AER_CHECK_GE(self, 0);
  AER_CHECK_LT(self, cluster_size);
  AER_CHECK_GT(config_.suspect_after, 0);
  AER_CHECK_GE(config_.evict_after, config_.suspect_after);
}

void MembershipTable::RecordHeartbeat(SimTime now, NodeId peer) {
  if (peer == self_) return;
  MutexLock lock(mu_);
  NoteTransitionsLocked(now);
  last_heard_[peer] = now;
  counted_[peer] = PeerState::kAlive;  // a fresh episode counts again
}

PeerState MembershipTable::StateOfLocked(SimTime now, NodeId peer) const {
  if (peer == self_) return PeerState::kAlive;
  const auto it = last_heard_.find(peer);
  const SimTime last = it == last_heard_.end() ? 0 : it->second;
  const SimTime silent = now - last;
  if (silent >= config_.evict_after) return PeerState::kEvicted;
  if (silent >= config_.suspect_after) return PeerState::kSuspect;
  return PeerState::kAlive;
}

void MembershipTable::NoteTransitionsLocked(SimTime now) const {
  for (NodeId peer = 0; peer < cluster_size_; ++peer) {
    if (peer == self_) continue;
    const PeerState state = StateOfLocked(now, peer);
    const auto it = counted_.find(peer);
    const PeerState counted =
        it == counted_.end() ? PeerState::kAlive : it->second;
    if (state == PeerState::kSuspect && counted == PeerState::kAlive) {
      ++suspicions_;
      counted_[peer] = PeerState::kSuspect;
    } else if (state == PeerState::kEvicted &&
               counted != PeerState::kEvicted) {
      if (counted == PeerState::kAlive) ++suspicions_;  // skipped straight by
      ++evictions_;
      counted_[peer] = PeerState::kEvicted;
    }
  }
}

PeerState MembershipTable::StateOf(SimTime now, NodeId peer) const {
  MutexLock lock(mu_);
  NoteTransitionsLocked(now);
  return StateOfLocked(now, peer);
}

std::vector<NodeId> MembershipTable::Alive(SimTime now) const {
  MutexLock lock(mu_);
  NoteTransitionsLocked(now);
  std::vector<NodeId> alive;
  for (NodeId peer = 0; peer < cluster_size_; ++peer) {
    if (StateOfLocked(now, peer) == PeerState::kAlive) alive.push_back(peer);
  }
  return alive;
}

bool MembershipTable::IsPreferredCandidate(SimTime now) const {
  const std::vector<NodeId> alive = Alive(now);
  return !alive.empty() && alive.front() == self_;
}

void MembershipTable::Reset() {
  MutexLock lock(mu_);
  last_heard_.clear();
  counted_.clear();
}

std::int64_t MembershipTable::suspicions() const {
  MutexLock lock(mu_);
  return suspicions_;
}

std::int64_t MembershipTable::evictions() const {
  MutexLock lock(mu_);
  return evictions_;
}

}  // namespace aer::ctrl
