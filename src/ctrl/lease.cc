#include "ctrl/lease.h"

#include <algorithm>
#include <vector>

#include "common/check.h"

namespace aer::ctrl {

LeaseTable::LeaseTable(int cluster_size, LeaseConfig config,
                       VoterRecord durable)
    : cluster_size_(cluster_size), config_(config), voter_(durable) {
  AER_CHECK_GT(cluster_size, 0);
  AER_CHECK_GT(config_.lease_duration, 0);
  max_seen_ = voter_.voted_epoch;
}

bool LeaseTable::Grant(SimTime now, Epoch epoch, NodeId candidate,
                       SimTime* expiry) {
  MutexLock lock(mu_);
  max_seen_ = std::max(max_seen_, epoch);
  if (epoch < voter_.voted_epoch) return false;  // fenced: older token
  if (candidate != voter_.voted_for && voter_.voted_for != kNoNode) {
    // A different candidate: refuse while the prior promise is still live.
    if (now < voter_.promised_until) return false;
    // Within one epoch a voter is bound to its first candidate forever —
    // two leaseholders in one epoch would break the ≤1-per-epoch invariant.
    if (epoch == voter_.voted_epoch) return false;
  }
  voter_.voted_epoch = epoch;
  voter_.voted_for = candidate;
  voter_.promised_until = now + config_.lease_duration;
  if (expiry != nullptr) *expiry = voter_.promised_until;
  return true;
}

VoterRecord LeaseTable::durable() const {
  MutexLock lock(mu_);
  return voter_;
}

void LeaseTable::StartCandidacy(Epoch epoch) {
  MutexLock lock(mu_);
  max_seen_ = std::max(max_seen_, epoch);
  if (holding_epoch_ == epoch) return;  // renewal: keep existing grants
  holding_epoch_ = epoch;
  grants_.clear();
}

void LeaseTable::RecordGrant(SimTime now, NodeId voter, Epoch epoch,
                             SimTime expiry) {
  MutexLock lock(mu_);
  max_seen_ = std::max(max_seen_, epoch);
  if (epoch != holding_epoch_) return;  // stale election's grant
  if (expiry <= now) return;
  SimTime& slot = grants_[voter];
  slot = std::max(slot, expiry);
}

void LeaseTable::ClearGrants() {
  MutexLock lock(mu_);
  grants_.clear();
  holding_epoch_ = 0;
}

Epoch LeaseTable::holding_epoch() const {
  MutexLock lock(mu_);
  return holding_epoch_;
}

bool LeaseTable::HoldsLeaseLocked(SimTime now) const {
  return LeaseExpiryLocked() > now;
}

SimTime LeaseTable::LeaseExpiryLocked() const {
  const int majority = cluster_size_ / 2 + 1;
  if (holding_epoch_ == 0 ||
      static_cast<int>(grants_.size()) < majority) {
    return 0;
  }
  // The lease lives while a majority of promises are unexpired: it lapses
  // at the majority-th largest per-voter expiry.
  std::vector<SimTime> expiries;
  expiries.reserve(grants_.size());
  for (const auto& [voter, expiry] : grants_) expiries.push_back(expiry);
  std::sort(expiries.begin(), expiries.end(), std::greater<SimTime>());
  return expiries[static_cast<std::size_t>(majority - 1)];
}

bool LeaseTable::HoldsLease(SimTime now) const {
  MutexLock lock(mu_);
  return HoldsLeaseLocked(now);
}

SimTime LeaseTable::LeaseExpiry() const {
  MutexLock lock(mu_);
  return LeaseExpiryLocked();
}

Epoch LeaseTable::max_seen_epoch() const {
  MutexLock lock(mu_);
  return max_seen_;
}

void LeaseTable::ObserveEpoch(Epoch epoch) {
  MutexLock lock(mu_);
  max_seen_ = std::max(max_seen_, epoch);
}

}  // namespace aer::ctrl
