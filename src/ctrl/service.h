// CoordinatedRecoveryService — a RecoveryManager (policy chain intact, so a
// GuardedPolicy wrapping the learned policy keeps its circuit-breaker role)
// that will only act while its coordinator holds the cluster lease. Every
// mutating entry point re-checks the LeaseTable at call time: between the
// lease lapsing and the coordinator noticing, calls are gated (counted, not
// executed), so a partitioned leader stops issuing actions *before* its
// lease expires rather than after it learns it was deposed.
//
// The service also carries the replication state that makes takeover a
// *resume*: the leader exports open-process snapshots (version-bumped on
// every publication), followers install the newest version they see, and a
// follower that wins an election adopts the replica into its own manager —
// tried actions keep counting toward the N-cap and the policy sees the full
// attempt history instead of a fresh process (docs/CONTROL_PLANE.md).
#ifndef AER_CTRL_SERVICE_H_
#define AER_CTRL_SERVICE_H_

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "core/recovery_manager.h"
#include "ctrl/lease.h"
#include "ctrl/message.h"
#include "obs/metrics.h"
#include "obs/trace_collector.h"
#include "obs/trace_context.h"
#include "obs/tracer.h"

namespace aer::ctrl {

class CoordinatedRecoveryService {
 public:
  // `policy` and `lease` must outlive the service; `lease` is the owning
  // coordinator's table, consulted on every mutating call.
  CoordinatedRecoveryService(RecoveryPolicy& policy,
                             RecoveryManagerConfig manager_config,
                             const LeaseTable& lease);

  // Forwards sinks to the wrapped manager and registers the aer_ctrl_*
  // gating/replication metrics (docs/OBSERVABILITY.md).
  void SetObservers(obs::Tracer* tracer, obs::MetricsRegistry* metrics);

  // Forwards the causal trace sink to the wrapped manager.
  void SetTraceCollector(obs::TraceCollector* traces) {
    manager_.SetTraceCollector(traces);
  }

  // ---- Lease-gated manager surface -------------------------------------
  // Each returns whether the call was admitted; a gated call leaves the
  // manager untouched and bumps actions_gated.
  bool OnSymptom(SimTime now, MachineId machine, std::string_view symptom,
                 obs::TraceContext trace = {});
  std::optional<RepairAction> OnRecoveryNeeded(SimTime now,
                                               MachineId machine);
  bool OnActionResult(SimTime now, MachineId machine, bool healthy);
  std::vector<MachineId> PollTimeouts(SimTime now);

  // ---- Replication -----------------------------------------------------
  // Leader side: the current open-process image plus a freshly bumped
  // version, for broadcast to followers. Not lease-gated (exporting is
  // read-only and harmless).
  std::uint64_t PublishSnapshot(std::vector<OpenProcessSnapshot>* out);

  // Follower side: keeps the newest version seen. Returns true if
  // installed (version advanced), false if stale.
  bool InstallReplica(std::uint64_t version,
                      std::vector<OpenProcessSnapshot> snapshot);

  // New-leader side: folds the stored replica into the manager. Processes
  // already open locally are left alone; each adoption resumes the previous
  // leader's process. Returns the adopted machines in replica order.
  std::vector<MachineId> AdoptReplica(SimTime now);

  std::uint64_t replica_version() const;
  std::size_t replica_entries() const;

  const RecoveryManager& manager() const { return manager_; }
  RecoveryManager& manager() { return manager_; }

  std::int64_t actions_gated() const;

 private:
  bool Admitted(SimTime now);

  RecoveryManager manager_;
  const LeaseTable& lease_;

  mutable Mutex mu_;
  std::uint64_t replica_version_ AER_GUARDED_BY(mu_) = 0;
  std::vector<OpenProcessSnapshot> replica_ AER_GUARDED_BY(mu_);
  std::int64_t actions_gated_ AER_GUARDED_BY(mu_) = 0;

  obs::Tracer* tracer_ = nullptr;
  struct ObsMetrics {
    obs::Counter* gated = nullptr;
    obs::Counter* snapshots_installed = nullptr;
  };
  ObsMetrics obs_;
};

}  // namespace aer::ctrl

#endif  // AER_CTRL_SERVICE_H_
