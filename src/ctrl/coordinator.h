// Coordinator — one control-plane node: a membership view, the two halves
// of the quorum lease, and a CoordinatedRecoveryService, glued together by
// two entry points the simulation drives:
//
//   Tick(now)     — heartbeat fan-out, election / renewal, step-down,
//                   snapshot replication, timeout polling;
//   Deliver(now)  — one network message (heartbeat, vote traffic, replica).
//
// Both return the messages to route and the repair actions to dispatch;
// the coordinator never touches the network or the fleet directly, which
// is what lets the injection layer sit between (docs/CONTROL_PLANE.md).
//
// Election rule (deterministic by construction): a node bids iff it is the
// lowest id among the members it believes alive and it does not observe a
// live lease. Vote requests — including the candidate's own — travel
// through the network at the same latency, so an election completes at the
// same sim-time whether the cluster has 1, 3, or 5 nodes; that is what the
// takeover-determinism suite pins down.
//
// Every action dispatched carries (epoch, attempt): the epoch is the
// fencing token machines check, the attempt index is the result
// correlation id — a result for any attempt other than the newest recorded
// one is dropped as stale instead of being misattributed.
#ifndef AER_CTRL_COORDINATOR_H_
#define AER_CTRL_COORDINATOR_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "core/recovery_manager.h"
#include "ctrl/lease.h"
#include "ctrl/membership.h"
#include "ctrl/message.h"
#include "ctrl/service.h"
#include "obs/metrics.h"
#include "obs/trace_collector.h"
#include "obs/trace_context.h"
#include "obs/tracer.h"

namespace aer::ctrl {

// One repair action leaving the control plane, fenced and correlated.
struct ActionDispatch {
  MachineId machine = 0;
  RepairAction action = RepairAction::kTryNop;
  Epoch epoch = 0;    // fencing token: machines reject anything stale
  int attempt = 0;    // index into the process's tried list (correlation)
  NodeId issuer = kNoNode;
  // Causal trace of the recovery process this action serves; carried to the
  // machine so its action spans join the same distributed trace.
  obs::TraceId trace = obs::kNoTrace;
};

// Everything one entry point produced; the caller owns routing/execution.
struct CoordinatorOutput {
  std::vector<Message> messages;
  std::vector<ActionDispatch> dispatches;
};

struct CoordinatorConfig {
  MembershipConfig membership;
  LeaseConfig lease;
  // Minimum wait between election bids, so in-flight vote traffic gets a
  // chance to land before the epoch is bumped again.
  SimTime election_retry = 10;
};

class Coordinator {
 public:
  // `policy` must outlive the coordinator. `durable` is the voter record
  // persisted across this node's crashes (default-constructed on first
  // boot); everything else a coordinator knows is volatile.
  Coordinator(NodeId self, int cluster_size, CoordinatorConfig config,
              RecoveryPolicy& policy, RecoveryManagerConfig manager_config,
              VoterRecord durable = {});

  // Attaches sinks (either may be null; both must outlive the coordinator)
  // and registers the aer_ctrl_* metrics (docs/OBSERVABILITY.md).
  void SetObservers(obs::Tracer* tracer, obs::MetricsRegistry* metrics);

  // Attaches the causal trace sink (may be null; must outlive the
  // coordinator). Leadership transitions and takeover adoptions become
  // trace records; the sink also forwards to the wrapped manager.
  void SetTraceCollector(obs::TraceCollector* traces);

  // Periodic maintenance; call at a fixed cadence per node.
  CoordinatorOutput Tick(SimTime now);

  // One message off the wire.
  CoordinatorOutput Deliver(SimTime now, const Message& message);

  // A fleet symptom reached this node (monitoring broadcasts to every
  // coordinator; only a leaseholder acts on it). `trace` is the symptom's
  // causal context, minted by the monitoring layer.
  CoordinatorOutput OnSymptom(SimTime now, MachineId machine,
                              std::string_view symptom,
                              obs::TraceContext trace = {});

  // A machine reported the outcome of a dispatched action back to its
  // issuer. `attempt` echoes the dispatch; stale echoes are dropped.
  CoordinatorOutput OnActionResult(SimTime now, MachineId machine,
                                   bool healthy, int attempt);

  bool IsLeader(SimTime now) const;
  NodeId id() const { return self_; }
  Epoch current_epoch() const { return lease_.max_seen_epoch(); }
  VoterRecord durable() const { return lease_.durable(); }

  const MembershipTable& membership() const { return membership_; }
  const LeaseTable& lease() const { return lease_; }
  const CoordinatedRecoveryService& service() const { return service_; }
  CoordinatedRecoveryService& service() { return service_; }

  struct Stats {
    std::int64_t heartbeats_sent = 0;
    std::int64_t elections_started = 0;
    std::int64_t votes_granted = 0;
    std::int64_t leases_acquired = 0;  // follower/candidate -> leader
    std::int64_t lease_renewals = 0;
    std::int64_t stepdowns = 0;        // leader -> not, lease lost
    std::int64_t takeovers = 0;        // leaderships that adopted replicas
    std::int64_t processes_adopted = 0;
    std::int64_t stale_results_dropped = 0;
  };
  Stats stats() const;

 private:
  // Leader-only: asks the service for the machine's next action and turns
  // it into a fenced dispatch. No-op when the lease gate refuses.
  void DriveLocked(SimTime now, MachineId machine, CoordinatorOutput* out)
      AER_REQUIRES(mu_);
  // Detects the not-leader -> leader edge after new grants arrived:
  // adopts the replica (takeover) and re-drives every open process.
  void CheckBecameLeaderLocked(SimTime now, CoordinatorOutput* out)
      AER_REQUIRES(mu_);
  // Detects the leader -> not edge (lease lapsed or quorum lost).
  void CheckSteppedDownLocked(SimTime now) AER_REQUIRES(mu_);
  // Mirrors membership transition counts into the aer_ctrl_* counters.
  void SyncMembershipCountersLocked() AER_REQUIRES(mu_);

  const NodeId self_;
  const int cluster_size_;
  const CoordinatorConfig config_;

  MembershipTable membership_;
  LeaseTable lease_;
  CoordinatedRecoveryService service_;

  mutable Mutex mu_;
  bool leader_ AER_GUARDED_BY(mu_) = false;
  SimTime last_bid_at_ AER_GUARDED_BY(mu_) = -1;
  Stats stats_ AER_GUARDED_BY(mu_);
  // Membership counts already mirrored to metrics.
  std::int64_t suspicions_seen_ AER_GUARDED_BY(mu_) = 0;
  std::int64_t evictions_seen_ AER_GUARDED_BY(mu_) = 0;

  obs::Tracer* tracer_ = nullptr;
  obs::TraceCollector* traces_ = nullptr;
  struct ObsMetrics {
    obs::Counter* heartbeats = nullptr;
    obs::Counter* elections = nullptr;
    obs::Counter* votes_granted = nullptr;
    obs::Counter* leases_acquired = nullptr;
    obs::Counter* renewals = nullptr;
    obs::Counter* stepdowns = nullptr;
    obs::Counter* takeovers = nullptr;
    obs::Counter* adopted = nullptr;
    obs::Counter* stale_results = nullptr;
    obs::Counter* suspected = nullptr;
    obs::Counter* evicted = nullptr;
    obs::Gauge* current_epoch = nullptr;
  };
  ObsMetrics obs_;
};

}  // namespace aer::ctrl

#endif  // AER_CTRL_COORDINATOR_H_
