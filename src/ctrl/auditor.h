// InvariantAuditor — an observer with no stake in the implementation. The
// simulation feeds it the globally ordered event stream (vote grants as
// they reach their candidate, every action issue, every machine-side
// admit/reject) and it recomputes the control plane's safety claims from
// scratch:
//
//   1. ≤ 1 leaseholder per epoch — a candidate "holds" an epoch once a
//      majority of distinct voters' unexpired promises for it have reached
//      it; no epoch may ever have two such candidates.
//   2. no action issued without a valid lease — at issue time the issuer
//      must hold a majority of unexpired promises for the action's epoch.
//   3. no stale action executed — a machine must never execute an action
//      whose epoch is below the highest it has already executed under.
//
// The auditor deliberately shares no state with Coordinator or LeaseTable;
// it re-derives lease windows from the observed grant traffic, so a bug in
// the lease bookkeeping cannot hide itself (docs/CONTROL_PLANE.md).
#ifndef AER_CTRL_AUDITOR_H_
#define AER_CTRL_AUDITOR_H_

#include <cstdint>
#include <map>
#include <set>
#include <unordered_map>

#include "common/mutex.h"
#include "common/sim_time.h"
#include "common/thread_annotations.h"
#include "core/recovery_manager.h"
#include "ctrl/message.h"

namespace aer::ctrl {

class InvariantAuditor {
 public:
  explicit InvariantAuditor(int cluster_size);

  // A VoteGrant from `voter` reached `candidate` (this is when it starts
  // counting toward the candidate's lease).
  void OnVoteGrant(SimTime now, NodeId voter, NodeId candidate, Epoch epoch,
                   SimTime expiry);

  // `issuer` dispatched an action for `machine` fenced with `epoch`.
  void OnActionIssued(SimTime now, NodeId issuer, Epoch epoch,
                      MachineId machine);

  // A machine admitted (began executing) an action fenced with `epoch`.
  void OnActionExecuted(SimTime now, MachineId machine, Epoch epoch);

  // A machine refused an action as stale (the good outcome; counted so
  // tests can assert fencing actually fired rather than never triggering).
  void OnStaleRejected(SimTime now, MachineId machine, Epoch epoch);

  struct Report {
    // Violations — all must be zero for a run to pass.
    std::int64_t duplicate_leaseholders = 0;  // epochs with a 2nd holder
    std::int64_t issued_without_lease = 0;
    std::int64_t stale_executed = 0;
    // Evidence of exercise (not violations).
    std::int64_t grants_observed = 0;
    std::int64_t actions_issued = 0;
    std::int64_t actions_executed = 0;
    std::int64_t stale_rejected = 0;
    std::int64_t epochs_with_holder = 0;

    bool Clean() const {
      return duplicate_leaseholders == 0 && issued_without_lease == 0 &&
             stale_executed == 0;
    }
  };
  Report report() const;

 private:
  // True iff `candidate` holds >= majority unexpired promises for `epoch`
  // at time `now`, per the grants observed so far.
  bool HasQuorumLocked(SimTime now, NodeId candidate, Epoch epoch) const
      AER_REQUIRES(mu_);

  const int majority_;

  mutable Mutex mu_;
  // epoch -> candidate -> voter -> latest promise expiry observed.
  std::map<Epoch, std::map<NodeId, std::map<NodeId, SimTime>>> grants_
      AER_GUARDED_BY(mu_);
  // epoch -> candidates that ever reached quorum.
  std::map<Epoch, std::set<NodeId>> holders_ AER_GUARDED_BY(mu_);
  // machine -> highest epoch it has executed under.
  std::unordered_map<MachineId, Epoch> executed_floor_ AER_GUARDED_BY(mu_);
  Report report_ AER_GUARDED_BY(mu_);
};

}  // namespace aer::ctrl

#endif  // AER_CTRL_AUDITOR_H_
