#include "ctrl/coordinator.h"

#include <string>

#include "common/check.h"

namespace aer::ctrl {

Coordinator::Coordinator(NodeId self, int cluster_size,
                         CoordinatorConfig config, RecoveryPolicy& policy,
                         RecoveryManagerConfig manager_config,
                         VoterRecord durable)
    : self_(self),
      cluster_size_(cluster_size),
      config_(config),
      membership_(self, cluster_size, config.membership),
      lease_(cluster_size, config.lease, durable),
      service_(policy, manager_config, lease_) {
  AER_CHECK_GT(config_.election_retry, 0);
}

void Coordinator::SetObservers(obs::Tracer* tracer,
                               obs::MetricsRegistry* metrics) {
  tracer_ = tracer;
  service_.SetObservers(tracer, metrics);
  if (metrics == nullptr) {
    obs_ = ObsMetrics{};
    return;
  }
  obs_.heartbeats = &metrics->GetCounter("aer_ctrl_heartbeats_sent_total");
  obs_.elections = &metrics->GetCounter("aer_ctrl_elections_started_total");
  obs_.votes_granted = &metrics->GetCounter("aer_ctrl_votes_granted_total");
  obs_.leases_acquired =
      &metrics->GetCounter("aer_ctrl_leases_acquired_total");
  obs_.renewals = &metrics->GetCounter("aer_ctrl_lease_renewals_total");
  obs_.stepdowns = &metrics->GetCounter("aer_ctrl_stepdowns_total");
  obs_.takeovers = &metrics->GetCounter("aer_ctrl_takeovers_total");
  obs_.adopted = &metrics->GetCounter("aer_ctrl_processes_adopted_total");
  obs_.stale_results =
      &metrics->GetCounter("aer_ctrl_stale_results_dropped_total");
  obs_.suspected = &metrics->GetCounter("aer_ctrl_members_suspected_total");
  obs_.evicted = &metrics->GetCounter("aer_ctrl_members_evicted_total");
  obs_.current_epoch = &metrics->GetGauge("aer_ctrl_current_epoch");
}

void Coordinator::SetTraceCollector(obs::TraceCollector* traces) {
  traces_ = traces;
  service_.SetTraceCollector(traces);
}

void Coordinator::DriveLocked(SimTime now, MachineId machine,
                              CoordinatorOutput* out) {
  const std::optional<RepairAction> action =
      service_.OnRecoveryNeeded(now, machine);
  if (!action.has_value()) return;
  ActionDispatch dispatch;
  dispatch.machine = machine;
  dispatch.action = *action;
  dispatch.epoch = lease_.holding_epoch();
  // OnRecoveryNeeded either recorded a fresh action or re-returned the
  // in-flight one; either way the newest recorded attempt is the one we
  // are dispatching.
  dispatch.attempt = service_.manager().ActionsTried(machine) - 1;
  dispatch.issuer = self_;
  dispatch.trace = service_.manager().TraceOf(machine);
  out->dispatches.push_back(dispatch);
}

void Coordinator::CheckBecameLeaderLocked(SimTime now,
                                          CoordinatorOutput* out) {
  if (leader_ || !lease_.HoldsLease(now)) return;
  leader_ = true;
  ++stats_.leases_acquired;
  if (obs_.leases_acquired) obs_.leases_acquired->Inc();
  if (tracer_) {
    tracer_->Instant("ctrl:leader", now,
                     "epoch=" + std::to_string(lease_.holding_epoch()));
  }
  if (traces_) {
    obs::TraceRecord record;
    record.time = now;
    record.kind = obs::TraceEventKind::kLeaderElected;
    record.node = self_;
    record.epoch = lease_.holding_epoch();
    traces_->Record(std::move(record));
  }
  const std::vector<MachineId> adopted = service_.AdoptReplica(now);
  if (!adopted.empty()) {
    ++stats_.takeovers;
    stats_.processes_adopted += static_cast<std::int64_t>(adopted.size());
    if (obs_.takeovers) obs_.takeovers->Inc();
    if (obs_.adopted) {
      obs_.adopted->Inc(static_cast<std::int64_t>(adopted.size()));
    }
    if (tracer_) {
      tracer_->Instant("ctrl:takeover", now, std::to_string(adopted.size()));
    }
    if (traces_) {
      for (const MachineId machine : adopted) {
        obs::TraceRecord record;
        record.trace_id = service_.manager().TraceOf(machine);
        record.time = now;
        record.kind = obs::TraceEventKind::kAdopt;
        record.machine = machine;
        record.node = self_;
        record.epoch = lease_.holding_epoch();
        traces_->Record(std::move(record));
      }
    }
  }
  // Resume: every open process (adopted or our own) gets its next action.
  for (const OpenProcessSnapshot& snapshot :
       service_.manager().ExportOpenProcesses()) {
    DriveLocked(now, snapshot.machine, out);
  }
}

void Coordinator::CheckSteppedDownLocked(SimTime now) {
  if (!leader_ || lease_.HoldsLease(now)) return;
  leader_ = false;
  lease_.ClearGrants();
  ++stats_.stepdowns;
  if (obs_.stepdowns) obs_.stepdowns->Inc();
  if (tracer_) tracer_->Instant("ctrl:stepdown", now);
  if (traces_) {
    obs::TraceRecord record;
    record.time = now;
    record.kind = obs::TraceEventKind::kLeaderLost;
    record.node = self_;
    record.epoch = lease_.max_seen_epoch();
    traces_->Record(std::move(record));
  }
}

void Coordinator::SyncMembershipCountersLocked() {
  const std::int64_t suspicions = membership_.suspicions();
  const std::int64_t evictions = membership_.evictions();
  if (obs_.suspected && suspicions > suspicions_seen_) {
    obs_.suspected->Inc(suspicions - suspicions_seen_);
  }
  if (obs_.evicted && evictions > evictions_seen_) {
    obs_.evicted->Inc(evictions - evictions_seen_);
  }
  suspicions_seen_ = suspicions;
  evictions_seen_ = evictions;
}

CoordinatorOutput Coordinator::Tick(SimTime now) {
  CoordinatorOutput out;
  MutexLock lock(mu_);
  CheckSteppedDownLocked(now);

  // Membership heartbeats to every peer.
  for (NodeId peer = 0; peer < cluster_size_; ++peer) {
    if (peer == self_) continue;
    Message hb;
    hb.kind = MessageKind::kHeartbeat;
    hb.from = self_;
    hb.to = peer;
    hb.sent_at = now;
    hb.epoch = lease_.max_seen_epoch();
    out.messages.push_back(std::move(hb));
    ++stats_.heartbeats_sent;
    if (obs_.heartbeats) obs_.heartbeats->Inc();
  }

  if (lease_.HoldsLease(now)) {
    // Renewal round: re-request our own epoch from everyone (self
    // included, through the network like any other voter); granting the
    // same (epoch, candidate) extends each promise.
    const Epoch epoch = lease_.holding_epoch();
    for (NodeId peer = 0; peer < cluster_size_; ++peer) {
      Message req;
      req.kind = MessageKind::kVoteRequest;
      req.from = self_;
      req.to = peer;
      req.sent_at = now;
      req.epoch = epoch;
      req.candidate = self_;
      out.messages.push_back(std::move(req));
    }
    ++stats_.lease_renewals;
    if (obs_.renewals) obs_.renewals->Inc();

    // Expire overdue in-flight actions and re-drive their machines.
    for (const MachineId machine : service_.PollTimeouts(now)) {
      DriveLocked(now, machine, &out);
    }

    // Replicate open-process state so a successor resumes, not restarts.
    std::vector<OpenProcessSnapshot> snapshot;
    const std::uint64_t version = service_.PublishSnapshot(&snapshot);
    for (NodeId peer = 0; peer < cluster_size_; ++peer) {
      if (peer == self_) continue;
      Message rep;
      rep.kind = MessageKind::kReplicate;
      rep.from = self_;
      rep.to = peer;
      rep.sent_at = now;
      rep.epoch = epoch;
      rep.snapshot_version = version;
      rep.snapshot = snapshot;
      out.messages.push_back(std::move(rep));
    }
  } else if (membership_.IsPreferredCandidate(now) &&
             (last_bid_at_ < 0 ||
              now - last_bid_at_ >= config_.election_retry)) {
    // Respect our own outstanding promise to another candidate: a majority
    // made the same promise, so bidding before it expires cannot win.
    const VoterRecord voter = lease_.durable();
    if (voter.voted_for == kNoNode || voter.voted_for == self_ ||
        now >= voter.promised_until) {
      const Epoch epoch = lease_.max_seen_epoch() + 1;
      lease_.StartCandidacy(epoch);
      last_bid_at_ = now;
      ++stats_.elections_started;
      if (obs_.elections) obs_.elections->Inc();
      if (tracer_) {
        tracer_->Instant("ctrl:election", now,
                         "epoch=" + std::to_string(epoch));
      }
      for (NodeId peer = 0; peer < cluster_size_; ++peer) {
        Message req;
        req.kind = MessageKind::kVoteRequest;
        req.from = self_;
        req.to = peer;
        req.sent_at = now;
        req.epoch = epoch;
        req.candidate = self_;
        out.messages.push_back(std::move(req));
      }
    }
  }

  if (obs_.current_epoch) {
    obs_.current_epoch->Set(
        static_cast<double>(lease_.max_seen_epoch()));
  }
  SyncMembershipCountersLocked();
  return out;
}

CoordinatorOutput Coordinator::Deliver(SimTime now, const Message& message) {
  CoordinatorOutput out;
  MutexLock lock(mu_);
  if (message.from != self_) {
    // Any traffic proves the sender alive; dedicated heartbeats just put a
    // floor under the cadence.
    membership_.RecordHeartbeat(now, message.from);
  }
  lease_.ObserveEpoch(message.epoch);

  switch (message.kind) {
    case MessageKind::kHeartbeat:
      break;
    case MessageKind::kVoteRequest: {
      SimTime expiry = 0;
      if (lease_.Grant(now, message.epoch, message.candidate, &expiry)) {
        ++stats_.votes_granted;
        if (obs_.votes_granted) obs_.votes_granted->Inc();
        Message grant;
        grant.kind = MessageKind::kVoteGrant;
        grant.from = self_;
        grant.to = message.from;
        grant.sent_at = now;
        grant.epoch = message.epoch;
        grant.candidate = message.candidate;
        grant.expiry = expiry;
        out.messages.push_back(std::move(grant));
      }
      break;
    }
    case MessageKind::kVoteGrant: {
      if (message.candidate == self_) {
        lease_.RecordGrant(now, message.from, message.epoch, message.expiry);
        CheckBecameLeaderLocked(now, &out);
      }
      break;
    }
    case MessageKind::kReplicate: {
      service_.InstallReplica(message.snapshot_version, message.snapshot);
      break;
    }
  }
  SyncMembershipCountersLocked();
  return out;
}

CoordinatorOutput Coordinator::OnSymptom(SimTime now, MachineId machine,
                                         std::string_view symptom,
                                         obs::TraceContext trace) {
  CoordinatorOutput out;
  MutexLock lock(mu_);
  CheckSteppedDownLocked(now);
  if (service_.OnSymptom(now, machine, symptom, trace)) {
    DriveLocked(now, machine, &out);
  }
  return out;
}

CoordinatorOutput Coordinator::OnActionResult(SimTime now, MachineId machine,
                                              bool healthy, int attempt) {
  CoordinatorOutput out;
  MutexLock lock(mu_);
  CheckSteppedDownLocked(now);
  if (service_.manager().ActionsTried(machine) != attempt + 1) {
    // An echo of some earlier attempt (result loss + retry, or a handover
    // raced the execution): correlation says it is not the newest recorded
    // action, so absorbing it would misattribute the outcome.
    ++stats_.stale_results_dropped;
    if (obs_.stale_results) obs_.stale_results->Inc();
    return out;
  }
  if (service_.OnActionResult(now, machine, healthy) && !healthy) {
    DriveLocked(now, machine, &out);
  }
  return out;
}

bool Coordinator::IsLeader(SimTime now) const {
  return lease_.HoldsLease(now);
}

Coordinator::Stats Coordinator::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

}  // namespace aer::ctrl
