// FenceRegistry — the machine-side half of the fencing-token contract.
// Every repair action a coordinator dispatches carries its lease epoch;
// each machine remembers the highest epoch it has ever executed under and
// refuses anything older. A deposed leader whose delayed actions surface
// after a takeover is therefore harmless: the machine already moved to the
// new leader's epoch and rejects the stragglers (docs/CONTROL_PLANE.md).
#ifndef AER_CTRL_FENCE_H_
#define AER_CTRL_FENCE_H_

#include <cstdint>
#include <unordered_map>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "core/recovery_manager.h"
#include "ctrl/message.h"

namespace aer::ctrl {

class FenceRegistry {
 public:
  // True iff `epoch` is >= the highest epoch `machine` has admitted;
  // admission raises the machine's floor to `epoch`. Rejections count.
  bool Admit(MachineId machine, Epoch epoch);

  // Highest epoch the machine has admitted (0 = never fenced).
  Epoch FloorOf(MachineId machine) const;

  std::int64_t rejections() const;

 private:
  mutable Mutex mu_;
  std::unordered_map<MachineId, Epoch> floor_ AER_GUARDED_BY(mu_);
  std::int64_t rejections_ AER_GUARDED_BY(mu_) = 0;
};

}  // namespace aer::ctrl

#endif  // AER_CTRL_FENCE_H_
