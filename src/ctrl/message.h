// Control-plane wire format: the messages coordinators exchange over the
// (simulated, injectable) network. Everything a coordinator knows about its
// peers arrives through these — there is no shared memory between
// coordinators, which is what makes the partition arms in
// docs/CONTROL_PLANE.md meaningful.
#ifndef AER_CTRL_MESSAGE_H_
#define AER_CTRL_MESSAGE_H_

#include <cstdint>
#include <vector>

#include "common/sim_time.h"
#include "core/recovery_manager.h"
#include "obs/trace_context.h"

namespace aer::ctrl {

// Dense coordinator id, 0..cluster_size-1. Distinct from MachineId: the
// fleet's machines are not control-plane members.
using NodeId = int;
inline constexpr NodeId kNoNode = -1;

// Lease epochs are fencing tokens: strictly monotonic per leadership change,
// carried on every repair action, checked by every machine.
using Epoch = std::uint64_t;

enum class MessageKind : int {
  kHeartbeat = 0,     // membership liveness (every node, every tick)
  kVoteRequest = 1,   // lease acquisition or renewal for (epoch, candidate)
  kVoteGrant = 2,     // one voter's time-bounded promise
  kReplicate = 3,     // leader -> follower open-process snapshot
};

struct Message {
  MessageKind kind = MessageKind::kHeartbeat;
  NodeId from = kNoNode;
  NodeId to = kNoNode;
  SimTime sent_at = 0;

  // kHeartbeat / kVoteRequest / kVoteGrant / kReplicate: the sender's view
  // of the current epoch (heartbeats gossip it so a rejoining node catches
  // up without waiting for an election to fail).
  Epoch epoch = 0;

  // kVoteRequest: candidate == from. kVoteGrant: who the grant is for.
  NodeId candidate = kNoNode;
  // kVoteGrant: the promise expires at this sim-time; the grant is the
  // voter's word that it will not vote for anyone else before then.
  SimTime expiry = 0;

  // kReplicate payload: the leader's full open-process state plus a
  // version (bumped every publication) so followers keep only the newest.
  std::uint64_t snapshot_version = 0;
  std::vector<OpenProcessSnapshot> snapshot;

  // Causal trace context of the recovery process this message serves, if
  // any (docs/OBSERVABILITY.md "Distributed tracing"). Membership traffic
  // (heartbeats, votes) is untraced; replication snapshots carry per-process
  // ids in their payload instead, so this stays kNoTrace for all four
  // current kinds unless a future kind serves exactly one process.
  obs::TraceContext trace;
};

}  // namespace aer::ctrl

#endif  // AER_CTRL_MESSAGE_H_
