// LeaseTable — both halves of quorum leasing, per coordinator:
//
//   Voter side: a time-bounded promise. Granting a vote for (epoch,
//   candidate) promises not to vote for any *other* candidate until the
//   promise expires, and never to grant an older epoch again. Re-granting
//   the same (epoch, candidate) extends the promise — that is how a leader
//   renews without bumping its fencing token.
//
//   Holder side: the grants a candidate has collected. It holds the lease
//   while a majority of the *static* cluster size has granted its epoch
//   with unexpired promises; the lease expires at the majority-th largest
//   per-voter expiry, so losing contact with voters makes the lease lapse
//   by itself — the isolated leader must stop issuing actions before any
//   peer can be granted a newer epoch (docs/CONTROL_PLANE.md).
//
// The voted-epoch/voted-for pair is the durable part of a coordinator: it
// survives crash+restart (the harness hands it back to the reborn node) so
// a rebooted voter cannot double-promise within one window.
//
// Thread safety: all state is guarded by an aer::Mutex. The *Locked()
// accessors are exposed (with the mutex) for callers that batch reads under
// one acquisition; tests/negative_compile/lease_table_unguarded.cc proves
// the analyzer rejects calling them without the lock.
#ifndef AER_CTRL_LEASE_H_
#define AER_CTRL_LEASE_H_

#include <cstdint>
#include <unordered_map>

#include "common/mutex.h"
#include "common/sim_time.h"
#include "common/thread_annotations.h"
#include "ctrl/message.h"

namespace aer::ctrl {

struct LeaseConfig {
  // One promise / one acquired lease lasts this long from grant time.
  SimTime lease_duration = 30;
};

// The durable voter record: what must survive a coordinator crash.
struct VoterRecord {
  Epoch voted_epoch = 0;
  NodeId voted_for = kNoNode;
  SimTime promised_until = 0;
  friend bool operator==(const VoterRecord&, const VoterRecord&) = default;
};

class LeaseTable {
 public:
  // `cluster_size` fixes the quorum: majority = cluster_size / 2 + 1.
  // `durable` restores the voter promise saved before a crash (empty record
  // for a first boot).
  LeaseTable(int cluster_size, LeaseConfig config, VoterRecord durable);

  // ---- Voter side ------------------------------------------------------
  // Decides a VoteRequest for (epoch, candidate). On grant, returns the
  // promise expiry through *expiry and persists the new voter record.
  bool Grant(SimTime now, Epoch epoch, NodeId candidate, SimTime* expiry);

  // The record the harness must persist across this node's crashes.
  VoterRecord durable() const;

  // ---- Holder side -----------------------------------------------------
  // Opens (or re-opens) a candidacy at `epoch`: subsequent grants for that
  // epoch accumulate toward quorum. Starting a different epoch drops all
  // collected grants.
  void StartCandidacy(Epoch epoch);

  // Records a VoteGrant received for our candidacy at `epoch`. Grants for
  // other epochs (stale elections) are ignored.
  void RecordGrant(SimTime now, NodeId voter, Epoch epoch, SimTime expiry);

  // Abandons all collected grants (on step-down or when starting a new
  // election); the voter-side promise is untouched.
  void ClearGrants();

  // The epoch our current grant set is for (0 = none).
  Epoch holding_epoch() const;

  bool HoldsLease(SimTime now) const;

  // When the currently-held lease lapses (0 when no quorum was ever
  // assembled). A leader must stop issuing strictly before this time.
  SimTime LeaseExpiry() const;

  // Largest epoch seen anywhere (requests, grants); new elections bid
  // max_seen_epoch() + 1.
  Epoch max_seen_epoch() const;
  void ObserveEpoch(Epoch epoch);

  // ---- Locked API (batch reads under one acquisition) ------------------
  Mutex& mu() const AER_RETURN_CAPABILITY(mu_) { return mu_; }
  bool HoldsLeaseLocked(SimTime now) const AER_REQUIRES(mu_);
  SimTime LeaseExpiryLocked() const AER_REQUIRES(mu_);
  Epoch holding_epoch_locked() const AER_REQUIRES(mu_) {
    return holding_epoch_;
  }

 private:
  const int cluster_size_;
  const LeaseConfig config_;

  mutable Mutex mu_;
  VoterRecord voter_ AER_GUARDED_BY(mu_);
  Epoch max_seen_ AER_GUARDED_BY(mu_) = 0;
  Epoch holding_epoch_ AER_GUARDED_BY(mu_) = 0;
  // voter id -> promise expiry, for holding_epoch_ only.
  std::unordered_map<NodeId, SimTime> grants_ AER_GUARDED_BY(mu_);
};

}  // namespace aer::ctrl

#endif  // AER_CTRL_LEASE_H_
