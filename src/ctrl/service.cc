#include "ctrl/service.h"

#include <utility>

namespace aer::ctrl {

CoordinatedRecoveryService::CoordinatedRecoveryService(
    RecoveryPolicy& policy, RecoveryManagerConfig manager_config,
    const LeaseTable& lease)
    : manager_(policy, manager_config), lease_(lease) {}

void CoordinatedRecoveryService::SetObservers(obs::Tracer* tracer,
                                              obs::MetricsRegistry* metrics) {
  tracer_ = tracer;
  manager_.SetObservers(tracer, metrics);
  if (metrics == nullptr) {
    obs_ = ObsMetrics{};
    return;
  }
  obs_.gated = &metrics->GetCounter("aer_ctrl_actions_gated_total");
  obs_.snapshots_installed =
      &metrics->GetCounter("aer_ctrl_snapshots_installed_total");
}

bool CoordinatedRecoveryService::Admitted(SimTime now) {
  if (lease_.HoldsLease(now)) return true;
  {
    MutexLock lock(mu_);
    ++actions_gated_;
  }
  if (obs_.gated) obs_.gated->Inc();
  return false;
}

bool CoordinatedRecoveryService::OnSymptom(SimTime now, MachineId machine,
                                           std::string_view symptom,
                                           obs::TraceContext trace) {
  if (!Admitted(now)) return false;
  manager_.OnSymptom(now, machine, symptom, trace);
  return true;
}

std::optional<RepairAction> CoordinatedRecoveryService::OnRecoveryNeeded(
    SimTime now, MachineId machine) {
  if (!Admitted(now)) return std::nullopt;
  return manager_.OnRecoveryNeeded(now, machine);
}

bool CoordinatedRecoveryService::OnActionResult(SimTime now,
                                                MachineId machine,
                                                bool healthy) {
  if (!Admitted(now)) return false;
  manager_.OnActionResult(now, machine, healthy);
  return true;
}

std::vector<MachineId> CoordinatedRecoveryService::PollTimeouts(SimTime now) {
  if (!Admitted(now)) return {};
  return manager_.PollTimeouts(now);
}

std::uint64_t CoordinatedRecoveryService::PublishSnapshot(
    std::vector<OpenProcessSnapshot>* out) {
  *out = manager_.ExportOpenProcesses();
  MutexLock lock(mu_);
  // The leader's own replica tracks its manager, so a later re-election of
  // the same node adopts nothing spurious.
  replica_ = *out;
  return ++replica_version_;
}

bool CoordinatedRecoveryService::InstallReplica(
    std::uint64_t version, std::vector<OpenProcessSnapshot> snapshot) {
  {
    MutexLock lock(mu_);
    if (version <= replica_version_) return false;
    replica_version_ = version;
    replica_ = std::move(snapshot);
  }
  if (obs_.snapshots_installed) obs_.snapshots_installed->Inc();
  return true;
}

std::vector<MachineId> CoordinatedRecoveryService::AdoptReplica(SimTime now) {
  std::vector<OpenProcessSnapshot> replica;
  {
    MutexLock lock(mu_);
    replica = replica_;
  }
  std::vector<MachineId> adopted;
  for (const OpenProcessSnapshot& snapshot : replica) {
    if (manager_.AdoptProcess(now, snapshot)) {
      adopted.push_back(snapshot.machine);
    }
  }
  return adopted;
}

std::uint64_t CoordinatedRecoveryService::replica_version() const {
  MutexLock lock(mu_);
  return replica_version_;
}

std::size_t CoordinatedRecoveryService::replica_entries() const {
  MutexLock lock(mu_);
  return replica_.size();
}

std::int64_t CoordinatedRecoveryService::actions_gated() const {
  MutexLock lock(mu_);
  return actions_gated_;
}

}  // namespace aer::ctrl
