// MembershipTable — one coordinator's failure-detector view of its peers,
// driven entirely by heartbeat arrival times on the simulated clock.
//
// A peer that has not been heard from for `suspect_after` is *suspected*
// (it no longer counts as alive for candidate selection); one silent for
// `evict_after` is *evicted* and stays out of the view until a fresh
// heartbeat re-admits it (a restarted coordinator rejoins by simply
// heartbeating again). Deadlines are deterministic functions of the last
// heartbeat time, so every coordinator at the same sim-time with the same
// message history computes the same view.
//
// Thread safety: all state is guarded by an internal aer::Mutex
// (docs/STATIC_ANALYSIS.md); the control plane's event loop is
// single-threaded today, but the annotations keep the -Werror=thread-safety
// leg authoritative over every new ctrl component from day one.
#ifndef AER_CTRL_MEMBERSHIP_H_
#define AER_CTRL_MEMBERSHIP_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/sim_time.h"
#include "common/thread_annotations.h"
#include "ctrl/message.h"

namespace aer::ctrl {

struct MembershipConfig {
  SimTime suspect_after = 15;  // missed ~3 default heartbeat intervals
  SimTime evict_after = 60;
};

enum class PeerState : int { kAlive = 0, kSuspect = 1, kEvicted = 2 };

class MembershipTable {
 public:
  // `self` is always alive in its own view and needs no heartbeats.
  MembershipTable(NodeId self, int cluster_size, MembershipConfig config);

  void RecordHeartbeat(SimTime now, NodeId peer);

  PeerState StateOf(SimTime now, NodeId peer) const;

  // Every node currently alive in this view (self included), ascending id.
  std::vector<NodeId> Alive(SimTime now) const;

  // True if `self` has the lowest id among the nodes it believes alive —
  // the deterministic candidate-selection rule (docs/CONTROL_PLANE.md).
  bool IsPreferredCandidate(SimTime now) const;

  // Forgets everything heard so far (coordinator restart: the failure
  // detector's memory is volatile).
  void Reset();

  std::int64_t suspicions() const;
  std::int64_t evictions() const;

 private:
  PeerState StateOfLocked(SimTime now, NodeId peer) const AER_REQUIRES(mu_);
  // Counts each peer's suspect/evict transition once per silence episode.
  void NoteTransitionsLocked(SimTime now) const AER_REQUIRES(mu_);

  const NodeId self_;
  const int cluster_size_;
  const MembershipConfig config_;

  mutable Mutex mu_;
  // Last heartbeat arrival per peer; absent = never heard from, treated as
  // last heard at time 0 (a fresh view gives every peer one suspect window
  // of grace before writing it off — deterministic at every node).
  std::unordered_map<NodeId, SimTime> last_heard_ AER_GUARDED_BY(mu_);
  // Furthest state already counted per peer, for the transition counters.
  mutable std::unordered_map<NodeId, PeerState> counted_ AER_GUARDED_BY(mu_);
  mutable std::int64_t suspicions_ AER_GUARDED_BY(mu_) = 0;
  mutable std::int64_t evictions_ AER_GUARDED_BY(mu_) = 0;
};

}  // namespace aer::ctrl

#endif  // AER_CTRL_MEMBERSHIP_H_
