#include "rl/policy.h"

#include <istream>
#include <ostream>

#include "common/check.h"
#include "common/string_util.h"

namespace aer {

void TrainedPolicy::AddType(TypeEntry entry) {
  AER_CHECK(!entry.symptom_name.empty())
      << "policy entry with empty symptom name";
  AER_CHECK(!by_name_.contains(entry.symptom_name))
      << "duplicate policy entry for symptom '" << entry.symptom_name << "'";
  by_name_.emplace(entry.symptom_name, entries_.size());
  entries_.push_back(std::move(entry));
}

const TrainedPolicy::TypeEntry* TrainedPolicy::FindType(
    std::string_view symptom_name) const {
  const auto it = by_name_.find(std::string(symptom_name));
  return it == by_name_.end() ? nullptr : &entries_[it->second];
}

std::optional<RepairAction> TrainedPolicy::Lookup(
    std::string_view symptom_name,
    std::span<const RepairAction> tried) const {
  const TypeEntry* entry = FindType(symptom_name);
  if (entry == nullptr) return std::nullopt;
  if (tried.size() >= entry->sequence.size()) return std::nullopt;
  // The tried actions must be exactly this policy's own prefix; anything
  // else means another policy has already intervened.
  for (std::size_t i = 0; i < tried.size(); ++i) {
    if (tried[i] != entry->sequence[i]) return std::nullopt;
  }
  return entry->sequence[tried.size()];
}

RepairAction TrainedPolicy::ChooseAction(const RecoveryContext& context) {
  return Lookup(context.initial_symptom_name, context.tried)
      .value_or(RepairAction::kRma);
}

void TrainedPolicy::Write(std::ostream& os) const {
  for (const TypeEntry& entry : entries_) {
    os << entry.symptom_name << '\t';
    for (std::size_t i = 0; i < entry.sequence.size(); ++i) {
      if (i > 0) os << ' ';
      os << ActionName(entry.sequence[i]);
    }
    os << '\n';
  }
}

bool TrainedPolicy::Read(std::istream& is, TrainedPolicy& out) {
  out = TrainedPolicy();
  std::string line;
  while (std::getline(is, line)) {
    if (Trim(line).empty()) continue;
    const auto fields = Split(line, '\t');
    if (fields.size() != 2) return false;
    TypeEntry entry;
    entry.symptom_name = std::string(Trim(fields[0]));
    if (entry.symptom_name.empty()) return false;
    for (std::string_view token : Split(fields[1], ' ')) {
      token = Trim(token);
      if (token.empty()) continue;
      const auto action = ParseAction(token);
      if (!action.has_value()) return false;
      entry.sequence.push_back(*action);
    }
    if (out.by_name_.contains(entry.symptom_name)) return false;
    out.AddType(std::move(entry));
  }
  return true;
}

HybridPolicy::HybridPolicy(const TrainedPolicy& trained,
                           RecoveryPolicy& fallback)
    : trained_(trained), fallback_(fallback) {}

RepairAction HybridPolicy::ChooseAction(const RecoveryContext& context) {
  const auto action =
      trained_.Lookup(context.initial_symptom_name, context.tried);
  if (action.has_value()) return *action;
  return fallback_.ChooseAction(context);
}

}  // namespace aer
