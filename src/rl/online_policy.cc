#include "rl/online_policy.h"

#include <algorithm>

#include "cluster/fault_catalog.h"
#include "common/check.h"

namespace aer {

OnlineQLearningPolicy::OnlineQLearningPolicy(OnlinePolicyConfig config)
    : config_(config), rng_(config.seed) {
  AER_CHECK_GE(config_.max_actions, 2);
  AER_CHECK_LE(static_cast<std::size_t>(config_.max_actions),
               kMaxTriedActions);
}

ErrorTypeId OnlineQLearningPolicy::TypeOf(std::string_view symptom_name) {
  const auto it = types_.find(std::string(symptom_name));
  if (it != types_.end()) return it->second;
  const ErrorTypeId id = static_cast<ErrorTypeId>(types_.size());
  AER_CHECK_LT(id, kMaxErrorTypes);
  types_.emplace(symptom_name, id);
  episodes_per_type_.push_back(0);
  return id;
}

double OnlineQLearningPolicy::QOrPrior(StateKey s, RepairAction a) const {
  if (table_.Has(s, a)) return table_.Q(s, a);
  // Optimistic one-step prior: the documented default durations.
  static const ActionDurationDefaults defaults;
  const double priors[kNumActions] = {defaults.trynop_s, defaults.reboot_s,
                                      defaults.reimage_s, defaults.rma_s};
  return priors[static_cast<std::size_t>(ActionIndex(a))];
}

RepairAction OnlineQLearningPolicy::ChooseAction(
    const RecoveryContext& context) {
  if (static_cast<int>(context.tried.size()) >= config_.max_actions - 1) {
    return RepairAction::kRma;  // the N cap applies online too
  }
  const ErrorTypeId type = TypeOf(context.initial_symptom_name);
  const StateKey s = EncodeState(type, context.tried);
  const double temperature = config_.temperature.At(
      episodes_per_type_[static_cast<std::size_t>(type)]);

  std::array<double, kNumActions> costs;
  for (RepairAction a : kAllActions) {
    costs[static_cast<std::size_t>(ActionIndex(a))] = QOrPrior(s, a);
  }
  return ActionFromIndex(
      static_cast<int>(SampleBoltzmann(costs, temperature, rng_)));
}

void OnlineQLearningPolicy::OnActionOutcome(const RecoveryContext& context,
                                            RepairAction action, SimTime cost,
                                            bool cured) {
  const ErrorTypeId type = TypeOf(context.initial_symptom_name);
  const StateKey s = EncodeState(type, context.tried);

  double future = 0.0;
  if (!cured && static_cast<int>(context.tried.size()) + 1 <
                    config_.max_actions) {
    std::vector<RepairAction> next_tried(context.tried.begin(),
                                         context.tried.end());
    next_tried.push_back(action);
    const StateKey next = EncodeState(type, next_tried);
    future = QOrPrior(next, kAllActions[0]);
    for (int i = 1; i < kNumActions; ++i) {
      future = std::min(future, QOrPrior(next, kAllActions[i]));
    }
  }
  table_.Update(s, action, static_cast<double>(cost) + future);

  if (cured) {
    ++episodes_completed_;
    ++episodes_per_type_[static_cast<std::size_t>(type)];
  }
}

}  // namespace aer
