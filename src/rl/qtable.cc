#include "rl/qtable.h"

#include <algorithm>
#include <istream>
#include <ostream>
#include <vector>

#include "common/check.h"
#include "common/string_util.h"

namespace aer {

bool QTable::Has(StateKey s, RepairAction a) const {
  const auto it = table_.find(s);
  return it != table_.end() &&
         it->second[static_cast<std::size_t>(ActionIndex(a))].visits > 0;
}

double QTable::Q(StateKey s, RepairAction a) const {
  const auto it = table_.find(s);
  AER_CHECK(it != table_.end())
      << "Q() on unexplored state 0x" << std::hex << s;
  const Entry& e = it->second[static_cast<std::size_t>(ActionIndex(a))];
  AER_CHECK_GT(e.visits, 0) << "Q() on unexplored action " << ActionName(a)
                            << " of state 0x" << std::hex << s;
  return e.q;
}

std::int64_t QTable::Visits(StateKey s, RepairAction a) const {
  const auto it = table_.find(s);
  if (it == table_.end()) return 0;
  return it->second[static_cast<std::size_t>(ActionIndex(a))].visits;
}

void QTable::Update(StateKey s, RepairAction a, double target) {
  Entry& e = table_[s][static_cast<std::size_t>(ActionIndex(a))];
  // α = 1/(1+visits): the very first update adopts the target wholesale, so
  // the table needs no meaningful initial values. (First updates also adopt
  // the target under a fixed α, for the same reason.)
  const double alpha =
      fixed_alpha_ > 0.0 && e.visits > 0
          ? fixed_alpha_
          : 1.0 / (1.0 + static_cast<double>(e.visits));
  e.q = (1.0 - alpha) * e.q + alpha * target;
  ++e.visits;
  ++total_updates_;
}

std::optional<double> QTable::MinQ(StateKey s) const {
  const auto it = table_.find(s);
  if (it == table_.end()) return std::nullopt;
  std::optional<double> best;
  for (const Entry& e : it->second) {
    if (e.visits > 0 && (!best.has_value() || e.q < *best)) best = e.q;
  }
  return best;
}

std::optional<RepairAction> QTable::BestAction(StateKey s) const {
  const auto it = table_.find(s);
  if (it == table_.end()) return std::nullopt;
  std::optional<RepairAction> best;
  double best_q = 0.0;
  for (int i = 0; i < kNumActions; ++i) {
    const Entry& e = it->second[static_cast<std::size_t>(i)];
    if (e.visits > 0 && (!best.has_value() || e.q < best_q)) {
      best = ActionFromIndex(i);
      best_q = e.q;
    }
  }
  return best;
}

std::optional<QTable::BestTwo> QTable::BestTwoActions(StateKey s) const {
  const auto it = table_.find(s);
  if (it == table_.end()) return std::nullopt;
  std::optional<BestTwo> out;
  for (int i = 0; i < kNumActions; ++i) {
    const Entry& e = it->second[static_cast<std::size_t>(i)];
    if (e.visits == 0) continue;
    if (!out.has_value()) {
      out = BestTwo{ActionFromIndex(i), e.q, std::nullopt, 0.0};
    } else if (e.q < out->best_q) {
      out->second = out->best;
      out->second_q = out->best_q;
      out->best = ActionFromIndex(i);
      out->best_q = e.q;
    } else if (!out->second.has_value() || e.q < out->second_q) {
      out->second = ActionFromIndex(i);
      out->second_q = e.q;
    }
  }
  return out;
}

void QTable::Write(std::ostream& os) const {
  std::vector<StateKey> keys;
  keys.reserve(table_.size());
  for (const auto& [key, entries] : table_) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  for (StateKey key : keys) {
    const auto it = table_.find(key);
    AER_CHECK(it != table_.end()) << "state key vanished during Write()";
    const auto& entries = it->second;
    for (int a = 0; a < kNumActions; ++a) {
      const Entry& e = entries[static_cast<std::size_t>(a)];
      if (e.visits == 0) continue;
      os << StrFormat("%016llx\t%s\t%.17g\t%lld\n",
                      static_cast<unsigned long long>(key),
                      std::string(ActionName(ActionFromIndex(a))).c_str(),
                      e.q, static_cast<long long>(e.visits));
    }
  }
}

bool QTable::Read(std::istream& is, QTable& out) {
  out = QTable();
  std::string line;
  while (std::getline(is, line)) {
    if (Trim(line).empty()) continue;
    const auto fields = Split(line, '\t');
    if (fields.size() != 4) return false;
    char* end = nullptr;
    const std::string key_text(Trim(fields[0]));
    const unsigned long long key = std::strtoull(key_text.c_str(), &end, 16);
    if (end != key_text.c_str() + key_text.size()) return false;
    const auto action = ParseAction(Trim(fields[1]));
    const auto q = ParseDouble(fields[2]);
    const auto visits = ParseInt64(fields[3]);
    if (!action.has_value() || !q.has_value() || !visits.has_value() ||
        *visits <= 0) {
      return false;
    }
    Entry& e = out.table_[key][static_cast<std::size_t>(ActionIndex(*action))];
    if (e.visits != 0) return false;  // duplicate line
    e.q = *q;
    e.visits = *visits;
    out.total_updates_ += *visits;
  }
  return true;
}

}  // namespace aer
