#include "rl/qtable.h"

#include <algorithm>
#include <cstdint>
#include <istream>
#include <ostream>
#include <sstream>
#include <string_view>
#include <vector>

#include "common/check.h"
#include "common/string_util.h"

namespace aer {

bool QTable::Has(StateKey s, RepairAction a) const {
  const auto it = table_.find(s);
  return it != table_.end() &&
         it->second[static_cast<std::size_t>(ActionIndex(a))].visits > 0;
}

double QTable::Q(StateKey s, RepairAction a) const {
  const auto it = table_.find(s);
  AER_CHECK(it != table_.end())
      << "Q() on unexplored state 0x" << std::hex << s;
  const Entry& e = it->second[static_cast<std::size_t>(ActionIndex(a))];
  AER_CHECK_GT(e.visits, 0) << "Q() on unexplored action " << ActionName(a)
                            << " of state 0x" << std::hex << s;
  return e.q;
}

std::int64_t QTable::Visits(StateKey s, RepairAction a) const {
  const auto it = table_.find(s);
  if (it == table_.end()) return 0;
  return it->second[static_cast<std::size_t>(ActionIndex(a))].visits;
}

double QTable::Update(StateKey s, RepairAction a, double target) {
  Entry& e = table_[s][static_cast<std::size_t>(ActionIndex(a))];
  // α = 1/(1+visits): the very first update adopts the target wholesale, so
  // the table needs no meaningful initial values. (First updates also adopt
  // the target under a fixed α, for the same reason.)
  const double alpha =
      fixed_alpha_ > 0.0 && e.visits > 0
          ? fixed_alpha_
          : 1.0 / (1.0 + static_cast<double>(e.visits));
  const double old_q = e.q;
  e.q = (1.0 - alpha) * e.q + alpha * target;
  ++e.visits;
  ++total_updates_;
  return e.q - old_q;
}

std::optional<double> QTable::MinQ(StateKey s) const {
  const auto it = table_.find(s);
  if (it == table_.end()) return std::nullopt;
  std::optional<double> best;
  for (const Entry& e : it->second) {
    if (e.visits > 0 && (!best.has_value() || e.q < *best)) best = e.q;
  }
  return best;
}

std::optional<RepairAction> QTable::BestAction(StateKey s) const {
  const auto it = table_.find(s);
  if (it == table_.end()) return std::nullopt;
  std::optional<RepairAction> best;
  double best_q = 0.0;
  for (int i = 0; i < kNumActions; ++i) {
    const Entry& e = it->second[static_cast<std::size_t>(i)];
    if (e.visits > 0 && (!best.has_value() || e.q < best_q)) {
      best = ActionFromIndex(i);
      best_q = e.q;
    }
  }
  return best;
}

std::optional<QTable::BestTwo> QTable::BestTwoActions(StateKey s) const {
  const auto it = table_.find(s);
  if (it == table_.end()) return std::nullopt;
  std::optional<BestTwo> out;
  for (int i = 0; i < kNumActions; ++i) {
    const Entry& e = it->second[static_cast<std::size_t>(i)];
    if (e.visits == 0) continue;
    if (!out.has_value()) {
      out = BestTwo{ActionFromIndex(i), e.q, std::nullopt, 0.0};
    } else if (e.q < out->best_q) {
      out->second = out->best;
      out->second_q = out->best_q;
      out->best = ActionFromIndex(i);
      out->best_q = e.q;
    } else if (!out->second.has_value() || e.q < out->second_q) {
      out->second = ActionFromIndex(i);
      out->second_q = e.q;
    }
  }
  return out;
}

namespace {

constexpr std::string_view kQTableMagic = "#aerq";
constexpr std::string_view kQTableVersion = "v1";

// FNV-1a 64: tiny, dependency-free, and plenty to catch bit flips and
// truncation in a text checkpoint (this is integrity, not authentication).
std::uint64_t Fnv1a64(std::string_view bytes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

void QTable::Write(std::ostream& os) const {
  std::vector<StateKey> keys;
  keys.reserve(table_.size());
  for (const auto& [key, entries] : table_) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  std::ostringstream body;
  std::int64_t entry_count = 0;
  for (StateKey key : keys) {
    const auto it = table_.find(key);
    AER_CHECK(it != table_.end()) << "state key vanished during Write()";
    const auto& entries = it->second;
    for (int a = 0; a < kNumActions; ++a) {
      const Entry& e = entries[static_cast<std::size_t>(a)];
      if (e.visits == 0) continue;
      body << StrFormat("%016llx\t%s\t%.17g\t%lld\n",
                        static_cast<unsigned long long>(key),
                        std::string(ActionName(ActionFromIndex(a))).c_str(),
                        e.q, static_cast<long long>(e.visits));
      ++entry_count;
    }
  }
  const std::string payload = body.str();
  os << kQTableMagic << '\t' << kQTableVersion << '\t' << entry_count << '\t'
     << StrFormat("%016llx",
                  static_cast<unsigned long long>(Fnv1a64(payload)))
     << '\n'
     << payload;
}

QTable::ReadResult QTable::ReadChecked(std::istream& is, QTable& out) {
  out = QTable();
  const auto fail = [&out](std::string error) {
    out = QTable();
    return ReadResult{false, std::move(error)};
  };

  std::string line;
  if (!std::getline(is, line)) return fail("empty input: missing header");
  const auto header = Split(Trim(line), '\t');
  if (header.size() != 4 || header[0] != kQTableMagic) {
    return fail("missing '#aerq' header (legacy or foreign file?)");
  }
  if (header[1] != kQTableVersion) {
    return fail(StrFormat("unsupported format version '%s' (want %s)",
                          std::string(header[1]).c_str(),
                          std::string(kQTableVersion).c_str()));
  }
  const auto declared_count = ParseInt64(header[2]);
  const auto declared_checksum = ParseHexU64(header[3]);
  if (!declared_count.has_value() || *declared_count < 0 ||
      !declared_checksum.has_value()) {
    return fail("malformed header count/checksum fields");
  }

  std::ostringstream body;
  std::int64_t entry_count = 0;
  std::size_t lineno = 1;
  while (std::getline(is, line)) {
    ++lineno;
    body << line << '\n';
    if (Trim(line).empty()) continue;
    const auto fields = Split(line, '\t');
    if (fields.size() != 4) {
      return fail(StrFormat("line %zu: expected 4 fields, got %zu", lineno,
                            fields.size()));
    }
    const auto key = ParseHexU64(fields[0]);
    const auto action = ParseAction(Trim(fields[1]));
    const auto q = ParseDouble(fields[2]);
    const auto visits = ParseInt64(fields[3]);
    if (!key.has_value() || !action.has_value() || !q.has_value() ||
        !visits.has_value() || *visits <= 0) {
      return fail(StrFormat("line %zu: malformed entry", lineno));
    }
    Entry& e = out.table_[*key][static_cast<std::size_t>(ActionIndex(*action))];
    if (e.visits != 0) {
      return fail(StrFormat("line %zu: duplicate (state, action)", lineno));
    }
    e.q = *q;
    e.visits = *visits;
    out.total_updates_ += *visits;
    ++entry_count;
  }

  if (entry_count != *declared_count) {
    return fail(StrFormat("entry count mismatch: header says %lld, body has "
                          "%lld (truncated file?)",
                          static_cast<long long>(*declared_count),
                          static_cast<long long>(entry_count)));
  }
  const std::uint64_t actual = Fnv1a64(body.str());
  if (actual != *declared_checksum) {
    return fail(StrFormat("checksum mismatch: header %016llx, body %016llx "
                          "(corrupted file?)",
                          static_cast<unsigned long long>(*declared_checksum),
                          static_cast<unsigned long long>(actual)));
  }
  return {};
}

bool QTable::Read(std::istream& is, QTable& out) {
  return ReadChecked(is, out).ok;
}

}  // namespace aer
