#include "rl/sequence.h"

#include <algorithm>
#include <limits>

#include "common/check.h"

namespace aer {

double SequenceCostOnProcess(std::span<const RepairAction> sequence,
                             const RecoveryProcess& process, ErrorTypeId type,
                             const CostEstimator& estimator, int max_actions,
                             Terminalization terminalization,
                             bool* cured_by_sequence,
                             const CapabilityModel& capabilities) {
  AER_CHECK_GE(max_actions, 1);
  ProcessReplay replay(process, type, estimator, capabilities);
  int steps = 0;
  RepairAction strongest = RepairAction::kTryNop;
  std::array<int, kNumActions> used = {};
  for (RepairAction a : sequence) {
    if (replay.cured() || steps >= max_actions - 1) break;
    replay.Step(a);
    ++steps;
    ++used[static_cast<std::size_t>(ActionIndex(a))];
    if (ActionStrength(a) > ActionStrength(strongest)) strongest = a;
  }
  if (cured_by_sequence != nullptr) *cured_by_sequence = replay.cured();

  if (!replay.cured() && terminalization == Terminalization::kEscalate) {
    // Keep escalating from the strongest level the sequence reached, with
    // each level tried up to twice overall (counting the sequence's own
    // uses of it), manual repair once.
    for (RepairAction a : estimator.ObservedActions(type)) {
      if (!AtLeastAsStrong(a, strongest)) continue;
      const int budget = a == RepairAction::kRma ? 1 : 2;
      const int tries =
          budget - used[static_cast<std::size_t>(ActionIndex(a))];
      for (int i = 0; i < tries; ++i) {
        if (replay.cured() || steps >= max_actions - 1) break;
        replay.Step(a);
        ++steps;
      }
      if (replay.cured()) break;
    }
  }
  if (!replay.cured()) {
    replay.Step(RepairAction::kRma);  // forced manual repair at the cap
  }
  return replay.total_cost();
}

SequenceEvaluation EvaluateSequence(
    std::span<const RepairAction> sequence,
    std::span<const RecoveryProcess* const> processes, ErrorTypeId type,
    const CostEstimator& estimator, int max_actions,
    Terminalization terminalization,
    const CapabilityModel& capabilities) {
  SequenceEvaluation eval;
  for (const RecoveryProcess* p : processes) {
    bool cured = false;
    eval.total_cost += SequenceCostOnProcess(sequence, *p, type, estimator,
                                             max_actions, terminalization,
                                             &cured, capabilities);
    (cured ? eval.cured_by_sequence : eval.terminalized) += 1;
    ++eval.processes;
  }
  eval.mean_cost = eval.processes > 0
                       ? eval.total_cost / static_cast<double>(eval.processes)
                       : 0.0;
  return eval;
}

namespace {

class ExactSearcher {
 public:
  ExactSearcher(std::span<const RecoveryProcess* const> processes,
                ErrorTypeId type, const CostEstimator& estimator,
                int max_actions, const ExactSearchConfig& config)
      : processes_(processes),
        type_(type),
        estimator_(estimator),
        max_actions_(max_actions),
        config_(config),
        allowed_(estimator.ObservedActions(type)) {}

  ActionSequence Run() {
    best_cost_ = std::numeric_limits<double>::infinity();
    best_cured_ = -1;
    ActionSequence prefix;
    Consider(prefix);  // the empty sequence (immediate terminalization)
    Descend(prefix);
    return best_;
  }

 private:
  // Cost of the bare prefix: no terminalization, uncured processes pay only
  // what the prefix spent on them. A lower bound for every extension.
  double PrefixLowerBound(std::span<const RepairAction> prefix,
                          bool* all_cured) const {
    double total = 0.0;
    bool cured_all = true;
    for (const RecoveryProcess* p : processes_) {
      ProcessReplay replay(*p, type_, estimator_);
      int steps = 0;
      for (RepairAction a : prefix) {
        if (replay.cured() || steps >= max_actions_ - 1) break;
        replay.Step(a);
        ++steps;
      }
      cured_all = cured_all && replay.cured();
      total += replay.total_cost();
    }
    *all_cured = cured_all;
    return total;
  }

  void Consider(std::span<const RepairAction> prefix) {
    double total = 0.0;
    std::int64_t cured = 0;
    for (const RecoveryProcess* p : processes_) {
      bool cured_by_seq = false;
      total += SequenceCostOnProcess(prefix, *p, type_, estimator_,
                                     max_actions_, config_.terminalization,
                                     &cured_by_seq);
      cured += cured_by_seq ? 1 : 0;
    }
    // Order: cost, then self-contained cures (more is better — the policy
    // should not rely on terminalization for incidents it can finish), then
    // shorter (dead tails never appear in the optimum).
    const bool better =
        total < best_cost_ - 1e-9 ||
        (total < best_cost_ + 1e-9 &&
         (cured > best_cured_ ||
          (cured == best_cured_ && prefix.size() < best_.size())));
    if (better) {
      best_cost_ = total;
      best_cured_ = cured;
      best_.assign(prefix.begin(), prefix.end());
    }
  }

  void Descend(ActionSequence& prefix) {
    if (static_cast<int>(prefix.size()) >= config_.max_length ||
        static_cast<int>(prefix.size()) >= max_actions_ - 1) {
      return;
    }
    bool all_cured = false;
    const double lower_bound = PrefixLowerBound(prefix, &all_cured);
    if (all_cured || lower_bound >= best_cost_) return;

    for (RepairAction a : allowed_) {
      prefix.push_back(a);
      Consider(prefix);
      Descend(prefix);
      prefix.pop_back();
    }
  }

  std::span<const RecoveryProcess* const> processes_;
  ErrorTypeId type_;
  const CostEstimator& estimator_;
  int max_actions_;
  ExactSearchConfig config_;
  std::vector<RepairAction> allowed_;

  double best_cost_ = 0.0;
  std::int64_t best_cured_ = -1;
  ActionSequence best_;
};

}  // namespace

ActionSequence ExactBestSequence(
    std::span<const RecoveryProcess* const> processes, ErrorTypeId type,
    const CostEstimator& estimator, int max_actions,
    const ExactSearchConfig& config) {
  AER_CHECK(!processes.empty());
  return ExactSearcher(processes, type, estimator, max_actions, config).Run();
}

}  // namespace aer
