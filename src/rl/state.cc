#include "rl/state.h"

#include <sstream>

#include "common/check.h"

namespace aer {

StateKey EncodeState(ErrorTypeId type, std::span<const RepairAction> tried) {
  AER_CHECK_GE(type, 0) << "cannot encode an invalid error type";
  AER_CHECK_LT(type, kMaxErrorTypes) << "error type exceeds state encoding";
  AER_CHECK_LE(tried.size(), kMaxTriedActions)
      << "tried-action history exceeds state encoding";
  StateKey key = static_cast<StateKey>(type);
  key |= static_cast<StateKey>(tried.size()) << 10;
  for (std::size_t i = 0; i < tried.size(); ++i) {
    key |= static_cast<StateKey>(ActionIndex(tried[i])) << (15 + 2 * i);
  }
  return key;
}

DecodedState DecodeState(StateKey key) {
  DecodedState state;
  state.type = static_cast<ErrorTypeId>(key & 0x3ff);
  const std::size_t len = (key >> 10) & 0x1f;
  state.tried.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    state.tried.push_back(
        ActionFromIndex(static_cast<int>((key >> (15 + 2 * i)) & 0x3)));
  }
  return state;
}

std::string FormatState(StateKey key) {
  const DecodedState state = DecodeState(key);
  std::ostringstream os;
  os << "T" << state.type << ":[";
  for (std::size_t i = 0; i < state.tried.size(); ++i) {
    if (i > 0) os << ' ';
    os << ActionName(state.tried[i]);
  }
  os << "]";
  return os.str();
}

}  // namespace aer
