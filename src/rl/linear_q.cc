#include "rl/linear_q.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/check.h"

namespace aer {

LinearQFunction::FeatureVector LinearQFunction::Features(
    std::span<const RepairAction> tried) {
  FeatureVector x = {};
  x[0] = 1.0;  // bias
  for (RepairAction a : tried) {
    x[1 + static_cast<std::size_t>(ActionIndex(a))] += 1.0;
  }
  x[kNumFeatures - 1] = static_cast<double>(tried.size());
  return x;
}

LinearQFunction::LinearQFunction(std::size_t num_types)
    : weights_(num_types) {
  for (auto& per_type : weights_) {
    for (auto& w : per_type) w = {};
  }
}

double LinearQFunction::Q(ErrorTypeId type, const FeatureVector& features,
                          RepairAction action) const {
  AER_CHECK_GE(type, 0);
  AER_CHECK_LT(static_cast<std::size_t>(type), weights_.size());
  const FeatureVector& w =
      weights_[static_cast<std::size_t>(type)]
              [static_cast<std::size_t>(ActionIndex(action))];
  double q = 0.0;
  for (int i = 0; i < kNumFeatures; ++i) {
    q += w[static_cast<std::size_t>(i)] * features[static_cast<std::size_t>(i)];
  }
  return q;
}

void LinearQFunction::Update(ErrorTypeId type, const FeatureVector& features,
                             RepairAction action, double target,
                             double alpha) {
  AER_CHECK_GT(alpha, 0.0);
  AER_CHECK_LE(alpha, 1.0);
  AER_CHECK(std::isfinite(target));
  FeatureVector& w = weights_[static_cast<std::size_t>(type)]
                             [static_cast<std::size_t>(ActionIndex(action))];
  double norm = 0.0;
  for (double x : features) norm += x * x;
  AER_CHECK_GT(norm, 0.0);  // bias feature guarantees this
  const double error = target - Q(type, features, action);
  const double step = alpha * error / norm;
  for (int i = 0; i < kNumFeatures; ++i) {
    w[static_cast<std::size_t>(i)] +=
        step * features[static_cast<std::size_t>(i)];
  }
  ++updates_;
}

void LinearQFunction::SetBias(ErrorTypeId type, RepairAction action,
                              double value) {
  weights_[static_cast<std::size_t>(type)]
          [static_cast<std::size_t>(ActionIndex(action))][0] = value;
}

std::size_t LinearQFunction::num_parameters() const {
  return weights_.size() * kNumActions * kNumFeatures;
}

ApproxQLearningTrainer::ApproxQLearningTrainer(
    const SimulationPlatform& platform,
    std::span<const RecoveryProcess> training, ApproxTrainerConfig config)
    : platform_(platform),
      config_(config),
      by_type_(platform.types().num_types()) {
  AER_CHECK_GE(config_.max_actions, 2);
  AER_CHECK_GT(config_.sweeps, 0);
  for (const RecoveryProcess& p : training) {
    if (p.attempts().empty()) continue;
    const ErrorTypeId t = platform.types().Classify(p);
    if (t == kInvalidErrorType) continue;
    by_type_[static_cast<std::size_t>(t)].push_back(&p);
  }
}

void ApproxQLearningTrainer::TrainType(ErrorTypeId type,
                                       LinearQFunction& q) const {
  const auto& processes = by_type_[static_cast<std::size_t>(type)];
  if (processes.empty()) return;

  const std::vector<RepairAction> allowed =
      platform_.estimator().ObservedActions(type);
  AER_CHECK(!allowed.empty());

  // Initialize each action's bias at its one-step success cost (the same
  // admissible-optimism choice as the tabular trainer).
  for (RepairAction a : kAllActions) {
    q.SetBias(type, a,
              platform_.estimator().EstimateCost(type, a, /*success=*/true));
  }

  Rng rng(DeriveStream(config_.seed, static_cast<std::uint64_t>(type)));

  struct Transition {
    LinearQFunction::FeatureVector features;
    RepairAction action;
    double cost;
    LinearQFunction::FeatureVector next_features;
    bool terminal;
  };
  std::vector<Transition> episode;
  std::vector<RepairAction> tried;
  std::vector<double> costs(allowed.size());

  // Off-policy TD with function approximation can diverge (the classic
  // deadly triad); bootstrapped values and targets are clamped to the
  // physically meaningful range — no recovery can cost less than nothing or
  // more than a full cap of manual repairs.
  const double max_plausible =
      2.0 * static_cast<double>(config_.max_actions) *
      platform_.estimator().EstimateCost(type, RepairAction::kRma,
                                         /*success=*/true);
  const auto clamp = [&](double v) {
    return std::clamp(v, 0.0, max_plausible);
  };
  const auto min_q = [&](const LinearQFunction::FeatureVector& x) {
    double best = q.Q(type, x, allowed.front());
    for (std::size_t i = 1; i < allowed.size(); ++i) {
      best = std::min(best, q.Q(type, x, allowed[i]));
    }
    return clamp(best);
  };

  for (std::int64_t sweep = 0; sweep < config_.sweeps; ++sweep) {
    const RecoveryProcess& p =
        *processes[rng.NextBounded(processes.size())];
    ProcessReplay replay(p, type, platform_.estimator(),
                         platform_.capabilities());
    const double temperature = config_.temperature.At(sweep);
    episode.clear();
    tried.clear();

    while (!replay.cured()) {
      const auto features = LinearQFunction::Features(tried);
      RepairAction a;
      if (static_cast<int>(tried.size()) >= config_.max_actions - 1) {
        a = RepairAction::kRma;
      } else {
        for (std::size_t i = 0; i < allowed.size(); ++i) {
          costs[i] = q.Q(type, features, allowed[i]);
        }
        a = allowed[SampleBoltzmann(costs, temperature, rng)];
      }
      const ProcessReplay::StepResult step = replay.Step(a);
      tried.push_back(a);
      episode.push_back({features, a, step.cost,
                         LinearQFunction::Features(tried), step.cured});
    }
    for (const Transition& t : episode) {
      const double future = t.terminal ? 0.0 : min_q(t.next_features);
      q.Update(type, t.features, t.action, clamp(t.cost + future),
               config_.learning_rate);
    }
  }
}

ActionSequence ApproxQLearningTrainer::ExtractSequence(
    ErrorTypeId type, const LinearQFunction& q) const {
  const auto& processes = by_type_[static_cast<std::size_t>(type)];
  if (processes.empty()) return {};
  const std::vector<RepairAction> allowed =
      platform_.estimator().ObservedActions(type);

  // Greedy rollout against the approximate Q...
  ActionSequence greedy;
  std::vector<RepairAction> tried;
  while (static_cast<int>(greedy.size()) < config_.max_actions) {
    const auto features = LinearQFunction::Features(tried);
    RepairAction best = allowed.front();
    double best_q = q.Q(type, features, best);
    for (std::size_t i = 1; i < allowed.size(); ++i) {
      const double value = q.Q(type, features, allowed[i]);
      if (value < best_q) {
        best_q = value;
        best = allowed[i];
      }
    }
    greedy.push_back(best);
    tried.push_back(best);
    if (best == RepairAction::kRma) break;
  }

  // ...then exact prefix pruning, as in the selection-tree scan: linear Q
  // tails can wander once every process is effectively cured.
  ActionSequence best_seq;
  double best_cost = 0.0;
  std::int64_t best_cured = -1;
  for (std::size_t len = 1; len <= greedy.size(); ++len) {
    const ActionSequence prefix(greedy.begin(),
                                greedy.begin() + static_cast<std::ptrdiff_t>(len));
    const SequenceEvaluation eval = EvaluateSequence(
        prefix, processes, type, platform_.estimator(), config_.max_actions,
        Terminalization::kEscalate, platform_.capabilities());
    const bool better =
        best_cured < 0 || eval.mean_cost < best_cost - 1e-9 ||
        (eval.mean_cost < best_cost + 1e-9 &&
         eval.cured_by_sequence > best_cured);
    if (better) {
      best_cost = eval.mean_cost;
      best_cured = eval.cured_by_sequence;
      best_seq = prefix;
    }
  }
  return best_seq;
}

ApproxQLearningTrainer::Output ApproxQLearningTrainer::Train() const {
  Output output{TrainedPolicy{},
                LinearQFunction(platform_.types().num_types()),
                {}};
  for (std::size_t t = 0; t < by_type_.size(); ++t) {
    const ErrorTypeId type = static_cast<ErrorTypeId>(t);
    TrainType(type, output.q);
    ActionSequence sequence = ExtractSequence(type, output.q);
    if (!sequence.empty()) {
      output.policy.AddType(
          {std::string(platform_.symptoms().Name(
               platform_.types().symptom_of(type))),
           sequence});
    }
    output.sequences.push_back(std::move(sequence));
  }
  return output;
}

}  // namespace aer
