#include "rl/boltzmann.h"

#include <cmath>
#include <vector>

#include "common/check.h"

namespace aer {

double TemperatureSchedule::At(std::int64_t sweep) const {
  AER_CHECK_GE(sweep, 0);
  const double t = initial * std::pow(decay, static_cast<double>(sweep));
  return t < floor ? floor : t;
}

std::size_t SampleBoltzmann(std::span<const double> costs, double temperature,
                            Rng& rng) {
  AER_CHECK(!costs.empty());
  AER_CHECK_GT(temperature, 0.0);
  double min_cost = costs[0];
  for (double c : costs) min_cost = c < min_cost ? c : min_cost;
  std::vector<double> weights(costs.size());
  for (std::size_t i = 0; i < costs.size(); ++i) {
    weights[i] = std::exp(-(costs[i] - min_cost) / temperature);
  }
  return rng.NextWeighted(weights);
}

}  // namespace aer
