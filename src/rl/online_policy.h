// Online Q-learning recovery policy — learning *in production*, the
// approach the paper argues against in Section 2.3.1 (exploration executes
// bad policies on live machines, the initial policy is arbitrary, and rare
// errors take years to accumulate observations). Implemented here so the
// argument can be measured: the online-vs-offline bench shows the downtime
// an online learner burns before it catches up, if it ever does.
//
// The policy plugs into the same frameworks as every other RecoveryPolicy
// (ClusterSimulator, RecoveryManager); it receives its reinforcement signal
// through RecoveryPolicy::OnActionOutcome. Unlike the offline trainer it is
// not restricted to actions observed in any log — it explores all four
// repair actions on the live system, which is precisely the problem.
#ifndef AER_RL_ONLINE_POLICY_H_
#define AER_RL_ONLINE_POLICY_H_

#include <string>
#include <unordered_map>

#include "cluster/policy.h"
#include "rl/boltzmann.h"
#include "rl/qtable.h"

namespace aer {

struct OnlinePolicyConfig {
  int max_actions = 20;
  // Temperature decays with *completed episodes of the same error type*, so
  // frequent types anneal quickly and rare types keep exploring — the
  // paper's "several years may be required to converge for infrequent
  // errors" in one line.
  TemperatureSchedule temperature{.initial = 2000.0,
                                  .decay = 0.995,
                                  .floor = 10.0};
  std::uint64_t seed = 777;
};

class OnlineQLearningPolicy final : public RecoveryPolicy {
 public:
  explicit OnlineQLearningPolicy(OnlinePolicyConfig config = {});

  RepairAction ChooseAction(const RecoveryContext& context) override;

  void OnActionOutcome(const RecoveryContext& context, RepairAction action,
                       SimTime cost, bool cured) override;

  std::string_view name() const override { return "online-q"; }

  const QTable& table() const { return table_; }
  std::int64_t episodes_completed() const { return episodes_completed_; }
  std::size_t types_seen() const { return types_.size(); }

 private:
  // Dynamically interns error types by initial-symptom name.
  ErrorTypeId TypeOf(std::string_view symptom_name);
  double QOrPrior(StateKey s, RepairAction a) const;

  OnlinePolicyConfig config_;
  Rng rng_;
  QTable table_;
  std::unordered_map<std::string, ErrorTypeId> types_;
  std::vector<std::int64_t> episodes_per_type_;
  std::int64_t episodes_completed_ = 0;
};

}  // namespace aer

#endif  // AER_RL_ONLINE_POLICY_H_
