#include "rl/policy_diff.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "common/string_util.h"
#include "rl/sequence.h"

namespace aer {
namespace {

std::string SequenceText(const ActionSequence& sequence) {
  if (sequence.empty()) return "(none)";
  std::string out;
  for (std::size_t i = 0; i < sequence.size(); ++i) {
    if (i > 0) out += ' ';
    out += ActionName(sequence[i]);
  }
  return out;
}

}  // namespace

PolicyDiff DiffPolicies(const TrainedPolicy& old_policy,
                        const TrainedPolicy& new_policy) {
  PolicyDiff diff;
  // Deterministic order: sort all involved type names.
  std::map<std::string, const TrainedPolicy::TypeEntry*> old_by_name;
  for (const auto& entry : old_policy.entries()) {
    old_by_name[entry.symptom_name] = &entry;
  }
  std::map<std::string, const TrainedPolicy::TypeEntry*> new_by_name;
  for (const auto& entry : new_policy.entries()) {
    new_by_name[entry.symptom_name] = &entry;
  }

  for (const auto& [name, old_entry] : old_by_name) {
    const auto it = new_by_name.find(name);
    if (it == new_by_name.end()) {
      diff.entries.push_back({PolicyDiffEntry::Kind::kRemoved, name,
                              old_entry->sequence, {}, std::nullopt,
                              std::nullopt});
    } else if (it->second->sequence != old_entry->sequence) {
      diff.entries.push_back({PolicyDiffEntry::Kind::kChanged, name,
                              old_entry->sequence, it->second->sequence,
                              std::nullopt, std::nullopt});
    } else {
      ++diff.unchanged_types;
    }
  }
  for (const auto& [name, new_entry] : new_by_name) {
    if (!old_by_name.contains(name)) {
      diff.entries.push_back({PolicyDiffEntry::Kind::kAdded, name, {},
                              new_entry->sequence, std::nullopt,
                              std::nullopt});
    }
  }
  return diff;
}

PolicyDiff DiffPolicies(const TrainedPolicy& old_policy,
                        const TrainedPolicy& new_policy,
                        const SimulationPlatform& platform,
                        std::span<const RecoveryProcess> processes) {
  PolicyDiff diff = DiffPolicies(old_policy, new_policy);

  // Group the evaluation processes by initial-symptom name.
  std::map<std::string, std::vector<const RecoveryProcess*>> by_name;
  for (const RecoveryProcess& p : processes) {
    if (p.attempts().empty()) continue;
    by_name[platform.symptoms().Name(p.initial_symptom())].push_back(&p);
  }

  for (PolicyDiffEntry& entry : diff.entries) {
    const auto it = by_name.find(entry.symptom_name);
    if (it == by_name.end()) continue;
    const SymptomId symptom =
        platform.symptoms().Find(entry.symptom_name);
    const ErrorTypeId type = platform.types().ClassifySymptom(symptom);
    if (type == kInvalidErrorType) continue;
    if (!entry.old_sequence.empty()) {
      entry.old_mean_cost =
          EvaluateSequence(entry.old_sequence, it->second, type,
                           platform.estimator(),
                           platform.max_actions_per_process(),
                           Terminalization::kEscalate,
                           platform.capabilities())
              .mean_cost;
    }
    if (!entry.new_sequence.empty()) {
      entry.new_mean_cost =
          EvaluateSequence(entry.new_sequence, it->second, type,
                           platform.estimator(),
                           platform.max_actions_per_process(),
                           Terminalization::kEscalate,
                           platform.capabilities())
              .mean_cost;
    }
  }
  return diff;
}

std::string FormatPolicyDiff(const PolicyDiff& diff) {
  std::ostringstream os;
  if (diff.entries.empty()) {
    os << StrFormat("no rule changes (%zu types unchanged)\n",
                    diff.unchanged_types);
    return os.str();
  }
  os << StrFormat("%zu rule change(s), %zu type(s) unchanged:\n",
                  diff.entries.size(), diff.unchanged_types);
  for (const PolicyDiffEntry& entry : diff.entries) {
    const char* tag = entry.kind == PolicyDiffEntry::Kind::kAdded ? "+"
                      : entry.kind == PolicyDiffEntry::Kind::kRemoved ? "-"
                                                                      : "~";
    os << StrFormat("  %s %-28s %s  ->  %s\n", tag,
                    entry.symptom_name.c_str(),
                    SequenceText(entry.old_sequence).c_str(),
                    SequenceText(entry.new_sequence).c_str());
    if (entry.old_mean_cost.has_value() && entry.new_mean_cost.has_value()) {
      os << StrFormat("      est. mean cost %.0f s -> %.0f s (%+.1f%%)\n",
                      *entry.old_mean_cost, *entry.new_mean_cost,
                      100.0 * (*entry.new_mean_cost / *entry.old_mean_cost -
                               1.0));
    }
  }
  return os.str();
}

}  // namespace aer
