#include "rl/selection_tree.h"

#include <limits>
#include <set>

#include "common/check.h"
#include "common/profiler.h"

namespace aer {
namespace {

void Enumerate(const QTable& table, ErrorTypeId type, int max_actions,
               const SelectionTreeConfig& config, ActionSequence& prefix,
               std::vector<ActionSequence>& out) {
  if (out.size() >= config.max_candidates) return;
  if (static_cast<int>(prefix.size()) >= max_actions) {
    out.push_back(prefix);
    return;
  }
  const StateKey s = EncodeState(type, prefix);
  const auto best2 = table.BestTwoActions(s);
  if (!best2.has_value()) {
    // Unexplored state: the path ends here.
    out.push_back(prefix);
    return;
  }

  // Candidate actions of this node: the best, plus the second best when its
  // expected total cost is close enough.
  RepairAction candidates[2];
  int n = 0;
  candidates[n++] = best2->best;
  if (best2->second.has_value() &&
      best2->second_q <= best2->best_q * (1.0 + config.closeness_threshold)) {
    candidates[n++] = *best2->second;
  }

  for (int i = 0; i < n; ++i) {
    prefix.push_back(candidates[i]);
    if (candidates[i] == RepairAction::kRma) {
      if (out.size() < config.max_candidates) out.push_back(prefix);
    } else {
      Enumerate(table, type, max_actions, config, prefix, out);
    }
    prefix.pop_back();
  }
}

}  // namespace

std::vector<ActionSequence> BuildCandidateSequences(
    const QTable& table, ErrorTypeId type, int max_actions,
    const SelectionTreeConfig& config) {
  std::vector<ActionSequence> out;
  ActionSequence prefix;
  Enumerate(table, type, max_actions, config, prefix, out);
  return out;
}

SelectionTreeTrainer::SelectionTreeTrainer(const QLearningTrainer& base,
                                           SelectionTreeConfig config)
    : base_(base), config_(config) {
  AER_CHECK_GE(config_.closeness_threshold, 0.0);
  AER_CHECK_GT(config_.max_candidates, 0u);
  AER_CHECK_GT(config_.stable_checks, 0);
}

TypeTrainingResult SelectionTreeTrainer::TrainType(ErrorTypeId type,
                                                   QTable* table_out) const {
  AER_PROFILE_SCOPE("train_type");
  const auto processes = base_.processes_of(type);
  const TrainerConfig& tc = base_.config();

  TypeTrainingResult result;
  result.type = type;
  result.training_processes = static_cast<std::int64_t>(processes.size());
  if (processes.empty()) return result;

  Rng rng(DeriveStream(tc.seed, static_cast<std::uint64_t>(type)));
  QTable table(tc.fixed_alpha);
  QTable table_b(tc.fixed_alpha);  // Double Q twin (unused otherwise)

  const auto scan_tree = [&]() -> ActionSequence {
    const QTable scan_table =
        tc.double_q ? MergeTablesByMean(table, table_b) : QTable();
    std::vector<ActionSequence> candidates = BuildCandidateSequences(
        tc.double_q ? scan_table : table, type, tc.max_actions, config_);
    if (config_.seed_escalation_candidates) {
      const std::vector<RepairAction> allowed =
          base_.platform().estimator().ObservedActions(type);
      for (std::size_t start = 0; start < allowed.size(); ++start) {
        // Escalate from allowed[start] upward, trying each level twice
        // (covering repeated-requirement incidents).
        ActionSequence seq;
        for (std::size_t i = start; i < allowed.size(); ++i) {
          seq.push_back(allowed[i]);
          if (allowed[i] != RepairAction::kRma) seq.push_back(allowed[i]);
        }
        candidates.push_back(std::move(seq));
      }
    }

    // Score every *prefix* of every candidate too: a path's tail may only
    // ever execute for a handful of incidents and still drag the whole
    // sequence down (e.g. wandering into the manual-repair cap for the one
    // process the prefix already failed on cheaply).
    std::set<ActionSequence> scored;
    for (const ActionSequence& candidate : candidates) {
      for (std::size_t len = 1; len <= candidate.size(); ++len) {
        scored.insert(
            ActionSequence(candidate.begin(),
                           candidate.begin() + static_cast<std::ptrdiff_t>(len)));
      }
    }

    ActionSequence best;
    double best_cost = std::numeric_limits<double>::infinity();
    std::int64_t best_cured = -1;
    for (const ActionSequence& seq : scored) {
      const SequenceEvaluation eval =
          EvaluateSequence(seq, processes, type, base_.platform().estimator(),
                           tc.max_actions);
      // Strictly better cost wins; on a near-tie prefer more self-contained
      // cures, then the shorter sequence, so dead tails (actions past the
      // point where every training process is already cured) are dropped
      // while genuinely-curing tails are kept.
      const bool better =
          eval.mean_cost < best_cost - 1e-9 ||
          (eval.mean_cost < best_cost + 1e-9 &&
           (eval.cured_by_sequence > best_cured ||
            (eval.cured_by_sequence == best_cured &&
             seq.size() < best.size())));
      if (better) {
        best_cost = eval.mean_cost;
        best_cured = eval.cured_by_sequence;
        best = seq;
      }
    }
    return best;
  };

  ActionSequence stable_sequence;
  std::int64_t stable_since = 0;
  int stable_checks = 0;

  TypeTelemetry* telemetry =
      tc.collect_telemetry ? &result.telemetry : nullptr;

  std::int64_t sweep = 0;
  for (; sweep < tc.max_sweeps; ++sweep) {
    base_.RunSweep(type, processes, sweep, table, rng,
                   tc.double_q ? &table_b : nullptr, telemetry);
    if ((sweep + 1) % tc.check_every != 0) continue;

    ActionSequence sequence = scan_tree();
    if (!sequence.empty() && sequence == stable_sequence) {
      ++stable_checks;
    } else {
      stable_sequence = std::move(sequence);
      stable_since = sweep + 1;
      stable_checks = 1;
    }
    if (stable_checks >= config_.stable_checks &&
        sweep + 1 >= tc.min_sweeps) {
      result.converged = true;
      break;
    }
  }

  result.sweeps = result.converged ? stable_since : tc.max_sweeps;
  result.episodes = sweep < tc.max_sweeps ? sweep + 1 : tc.max_sweeps;
  result.sequence = stable_sequence.empty() ? scan_tree() : stable_sequence;
  QTable final_table =
      tc.double_q ? MergeTablesByMean(table, table_b) : std::move(table);
  result.states_explored = final_table.num_states();
  if (telemetry != nullptr) base_.FillCoverage(type, final_table, *telemetry);
  if (table_out != nullptr) *table_out = std::move(final_table);
  return result;
}

QLearningTrainer::TrainingOutput SelectionTreeTrainer::TrainAll() const {
  AER_PROFILE_SCOPE("train_all");
  QLearningTrainer::TrainingOutput output;
  const SimulationPlatform& platform = base_.platform();
  for (std::size_t t = 0; t < platform.types().num_types(); ++t) {
    const ErrorTypeId type = static_cast<ErrorTypeId>(t);
    TypeTrainingResult result = TrainType(type);
    if (!result.sequence.empty()) {
      output.policy.AddType(
          {std::string(platform.symptoms().Name(
               platform.types().symptom_of(type))),
           result.sequence});
    }
    output.per_type.push_back(std::move(result));
  }
  return output;
}

}  // namespace aer
