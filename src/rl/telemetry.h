// Publishes training telemetry into a MetricsRegistry.
//
// The per-type TypeTelemetry shards (collected by QLearningTrainer /
// SelectionTreeTrainer when TrainerConfig::collect_telemetry is set) are
// folded in the order they appear in `per_type` — the catalog order for both
// the serial TrainAll() and ParallelTrainer::TrainAll() — so the published
// aer_training_* metrics are bit-identical for any thread count.
//
// Throughput (episodes/sec) is wall-clock-derived and therefore registered
// as a *volatile* gauge: deterministic snapshots exclude it
// (docs/OBSERVABILITY.md).
#ifndef AER_RL_TELEMETRY_H_
#define AER_RL_TELEMETRY_H_

#include <vector>

#include "obs/metrics.h"
#include "rl/qlearning.h"

namespace aer {

// Folds the per-type results into the aer_training_* metrics:
//   counters: aer_training_episodes_total, aer_training_q_updates_total
//   gauges:   aer_training_types, aer_training_types_converged
//   stats:    aer_training_temperature, aer_training_max_q_delta,
//             aer_training_visit_coverage, aer_training_sweeps
// Stats merge the per-type RunningStat shards in `per_type` order.
// Equivalent to PublishTypeTelemetry over the vector followed by
// PublishTrainingSummary — callers that want a TimeSeriesRecorder to see
// the counters grow between types use those two pieces directly.
void PublishTrainingTelemetry(obs::MetricsRegistry& metrics,
                              const std::vector<TypeTrainingResult>& per_type);

// Folds one type's counters and stat shards (the registry ends up
// byte-identical to a single full-vector PublishTrainingTelemetry call when
// invoked in `per_type` order). Leaves the two summary gauges alone — they
// summarize the whole vector, so incremental callers finish with
// PublishTrainingSummary. Returns false (and publishes nothing) for types
// with no training data; all metric names are still registered so the
// catalog is stable either way.
bool PublishTypeTelemetry(obs::MetricsRegistry& metrics,
                          const TypeTrainingResult& result);

// Sets the aer_training_types / aer_training_types_converged summary gauges
// from the full per-type vector — the closing step of an incremental
// PublishTypeTelemetry loop.
void PublishTrainingSummary(obs::MetricsRegistry& metrics,
                            const std::vector<TypeTrainingResult>& per_type);

// Sets the volatile aer_training_episodes_per_sec gauge. Kept separate from
// PublishTrainingTelemetry because callers that need byte-identical
// snapshots (determinism tests, golden CLI output) skip this call entirely.
void PublishTrainingThroughput(obs::MetricsRegistry& metrics,
                               double episodes_per_sec);

}  // namespace aer

#endif  // AER_RL_TELEMETRY_H_
