// MDP state for the recovery process (Section 3.2).
//
// A state is the tuple (error type, recovery result, previously tried repair
// actions). Healthy states are terminal and carry no Q values, so the
// Q-table only ever keys failure states; those are packed into a single
// 64-bit integer: 10 bits of error type, 5 bits of sequence length and 2
// bits per tried action.
#ifndef AER_RL_STATE_H_
#define AER_RL_STATE_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "mining/error_type.h"
#include "log/action.h"

namespace aer {

using StateKey = std::uint64_t;

// Hard limits implied by the packed representation.
inline constexpr ErrorTypeId kMaxErrorTypes = 1024;
inline constexpr std::size_t kMaxTriedActions = 24;

StateKey EncodeState(ErrorTypeId type, std::span<const RepairAction> tried);

struct DecodedState {
  ErrorTypeId type = kInvalidErrorType;
  std::vector<RepairAction> tried;
};

DecodedState DecodeState(StateKey key);

// "T12:[TRYNOP REBOOT]" — for reports and debugging.
std::string FormatState(StateKey key);

}  // namespace aer

#endif  // AER_RL_STATE_H_
