// Parallel per-error-type training (docs/PARALLELISM.md).
//
// The paper trains one Q-table per error type on that type's recovery
// processes only (Section 4) — types never share state, so training is
// embarrassingly parallel across types. This layer shards TrainAll() by
// ErrorTypeId over a ThreadPool: each shard runs the *serial* trainer's own
// TrainType() with the type's RNG stream derived from the master seed
// (DeriveStream in common/rng.h), and the shards are merged back in catalog
// order. Because a shard's draws depend only on (master seed, type) and the
// merge order is fixed, the output — policy, per-type telemetry, and every
// serialized Q-table byte — is identical to the serial trainer's for any
// thread count, including 1. tests/rl/parallel_trainer_test.cc enforces
// this equivalence contract across seeds and thread counts.
#ifndef AER_RL_PARALLEL_TRAINER_H_
#define AER_RL_PARALLEL_TRAINER_H_

#include "common/thread_pool.h"
#include "rl/selection_tree.h"

namespace aer {

class ParallelTrainer {
 public:
  // Shards the plain Q-learning trainer (greedy policy generation). The
  // referenced trainer and pool must outlive this object.
  ParallelTrainer(const QLearningTrainer& base, ThreadPool& pool);

  // Shards the selection-tree trainer (Section 5.3 policy generation).
  ParallelTrainer(const SelectionTreeTrainer& tree, ThreadPool& pool);

  // Drop-in parallel TrainAll(): bit-identical to the serial counterpart.
  // With `tables_out` non-null, also captures every type's final Q-table
  // (indexed by ErrorTypeId) for inspection and the equivalence tests.
  QLearningTrainer::TrainingOutput TrainAll(
      std::vector<QTable>* tables_out = nullptr) const;

  // Total episodes rolled out by the last TrainAll() call (Σ per-type
  // episodes) — the numerator of the benches' episodes/sec.
  static std::int64_t TotalEpisodes(
      const QLearningTrainer::TrainingOutput& output);

 private:
  const QLearningTrainer& base_;
  const SelectionTreeTrainer* tree_;  // null => plain greedy generation
  ThreadPool& pool_;
};

}  // namespace aer

#endif  // AER_RL_PARALLEL_TRAINER_H_
