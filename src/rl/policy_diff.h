// Policy diffing: what changed between two trained policies, and what the
// change is worth. Operators re-train periodically (the closed loop of
// Figure 1); before rolling a new policy they want to see exactly which
// error types' rules changed and the estimated downtime impact of each
// change on recent incidents. `aerctl diff` exposes this on the CLI.
#ifndef AER_RL_POLICY_DIFF_H_
#define AER_RL_POLICY_DIFF_H_

#include <optional>
#include <string>

#include "rl/policy.h"
#include "sim/platform.h"

namespace aer {

struct PolicyDiffEntry {
  enum class Kind { kAdded, kRemoved, kChanged };
  Kind kind = Kind::kChanged;
  std::string symptom_name;
  ActionSequence old_sequence;  // empty for kAdded
  ActionSequence new_sequence;  // empty for kRemoved
  // Estimated mean cost per incident under each rule, priced against the
  // evaluation processes (only set when an evaluation log was supplied and
  // has processes of this type).
  std::optional<double> old_mean_cost;
  std::optional<double> new_mean_cost;
};

struct PolicyDiff {
  std::vector<PolicyDiffEntry> entries;  // changed/added/removed types only
  std::size_t unchanged_types = 0;
};

// Structural diff of the two policies (no costs).
PolicyDiff DiffPolicies(const TrainedPolicy& old_policy,
                        const TrainedPolicy& new_policy);

// Structural diff plus per-type impact estimates: each changed rule is
// priced against `processes` (e.g. the most recent weeks of the log) via
// the platform's cost model.
PolicyDiff DiffPolicies(const TrainedPolicy& old_policy,
                        const TrainedPolicy& new_policy,
                        const SimulationPlatform& platform,
                        std::span<const RecoveryProcess> processes);

// Multi-line human-readable rendering.
std::string FormatPolicyDiff(const PolicyDiff& diff);

}  // namespace aer

#endif  // AER_RL_POLICY_DIFF_H_
