#include "rl/telemetry.h"

namespace aer {

void PublishTrainingTelemetry(
    obs::MetricsRegistry& metrics,
    const std::vector<TypeTrainingResult>& per_type) {
  obs::Counter& episodes = metrics.GetCounter("aer_training_episodes_total");
  obs::Counter& q_updates =
      metrics.GetCounter("aer_training_q_updates_total");
  obs::Gauge& types = metrics.GetGauge("aer_training_types");
  obs::Gauge& converged = metrics.GetGauge("aer_training_types_converged");
  obs::StatMetric& temperature =
      metrics.GetStat("aer_training_temperature");
  obs::StatMetric& max_q_delta =
      metrics.GetStat("aer_training_max_q_delta");
  obs::StatMetric& coverage = metrics.GetStat("aer_training_visit_coverage");
  obs::StatMetric& sweeps = metrics.GetStat("aer_training_sweeps");

  std::int64_t trained = 0;
  std::int64_t converged_count = 0;
  for (const TypeTrainingResult& result : per_type) {
    if (result.training_processes == 0) continue;
    ++trained;
    if (result.converged) ++converged_count;
    episodes.Inc(result.episodes);
    q_updates.Inc(result.telemetry.q_updates);
    temperature.MergeFrom(result.telemetry.temperature);
    max_q_delta.MergeFrom(result.telemetry.max_q_delta);
    if (result.telemetry.explorable_state_actions > 0) {
      coverage.Observe(result.telemetry.visit_coverage);
    }
    sweeps.Observe(static_cast<double>(result.sweeps));
  }
  types.Set(static_cast<double>(trained));
  converged.Set(static_cast<double>(converged_count));
}

void PublishTrainingThroughput(obs::MetricsRegistry& metrics,
                               double episodes_per_sec) {
  metrics.GetGauge("aer_training_episodes_per_sec", /*volatile_metric=*/true)
      .Set(episodes_per_sec);
}

}  // namespace aer
