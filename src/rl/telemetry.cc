#include "rl/telemetry.h"

namespace aer {
namespace {

// The full frozen aer_training_* catalog (docs/OBSERVABILITY.md). Both
// publication paths register everything up front, so the set of names never
// depends on which types had data or whether publication was incremental.
void RegisterTrainingMetrics(obs::MetricsRegistry& metrics) {
  metrics.GetCounter("aer_training_episodes_total");
  metrics.GetCounter("aer_training_q_updates_total");
  metrics.GetGauge("aer_training_types");
  metrics.GetGauge("aer_training_types_converged");
  metrics.GetStat("aer_training_temperature");
  metrics.GetStat("aer_training_max_q_delta");
  metrics.GetStat("aer_training_visit_coverage");
  metrics.GetStat("aer_training_sweeps");
}

}  // namespace

void PublishTrainingTelemetry(
    obs::MetricsRegistry& metrics,
    const std::vector<TypeTrainingResult>& per_type) {
  for (const TypeTrainingResult& result : per_type) {
    PublishTypeTelemetry(metrics, result);
  }
  PublishTrainingSummary(metrics, per_type);
}

bool PublishTypeTelemetry(obs::MetricsRegistry& metrics,
                          const TypeTrainingResult& result) {
  RegisterTrainingMetrics(metrics);
  if (result.training_processes == 0) return false;
  metrics.GetCounter("aer_training_episodes_total").Inc(result.episodes);
  metrics.GetCounter("aer_training_q_updates_total")
      .Inc(result.telemetry.q_updates);
  metrics.GetStat("aer_training_temperature")
      .MergeFrom(result.telemetry.temperature);
  metrics.GetStat("aer_training_max_q_delta")
      .MergeFrom(result.telemetry.max_q_delta);
  if (result.telemetry.explorable_state_actions > 0) {
    metrics.GetStat("aer_training_visit_coverage")
        .Observe(result.telemetry.visit_coverage);
  }
  metrics.GetStat("aer_training_sweeps")
      .Observe(static_cast<double>(result.sweeps));
  return true;
}

void PublishTrainingSummary(
    obs::MetricsRegistry& metrics,
    const std::vector<TypeTrainingResult>& per_type) {
  RegisterTrainingMetrics(metrics);
  std::int64_t trained = 0;
  std::int64_t converged_count = 0;
  for (const TypeTrainingResult& result : per_type) {
    if (result.training_processes == 0) continue;
    ++trained;
    if (result.converged) ++converged_count;
  }
  metrics.GetGauge("aer_training_types").Set(static_cast<double>(trained));
  metrics.GetGauge("aer_training_types_converged")
      .Set(static_cast<double>(converged_count));
}

void PublishTrainingThroughput(obs::MetricsRegistry& metrics,
                               double episodes_per_sec) {
  metrics.GetGauge("aer_training_episodes_per_sec", /*volatile_metric=*/true)
      .Set(episodes_per_sec);
}

}  // namespace aer
