// Action-sequence utilities.
//
// Because the only feedback during a recovery is "cured / not cured" and a
// cure ends the process, a deterministic policy for one error type is
// exactly an action *sequence* (the states reachable under the policy are
// its own prefixes). This file evaluates a sequence against logged processes
// under the simulation platform, and computes the exact cost-optimal
// sequence by branch-and-bound — the reference optimum used by the
// selection-tree experiments (Figures 13/14) and by the property tests.
#ifndef AER_RL_SEQUENCE_H_
#define AER_RL_SEQUENCE_H_

#include <span>
#include <vector>

#include "sim/replay.h"

namespace aer {

using ActionSequence = std::vector<RepairAction>;

// What happens when a sequence runs out before the process is cured.
enum class Terminalization {
  // Request manual repair immediately (the paper's N-cap semantics).
  kManualRepair,
  // Continue escalating: try each observed action at least as strong as the
  // sequence's strongest, in ascending order (twice each), then manual
  // repair at the cap. This matches what actually happens in deployment —
  // the hybrid policy falls back and keeps escalating — and what Q-learning
  // episodes experience, so it is the scoring used when *generating*
  // policies: pricing every miss at a full manual repair would push the
  // generator toward cure-everything sequences that waste time on the
  // common cases.
  kEscalate,
};

struct SequenceEvaluation {
  double mean_cost = 0.0;
  double total_cost = 0.0;
  std::int64_t processes = 0;
  // Cured by the sequence itself, before any terminalization step.
  std::int64_t cured_by_sequence = 0;
  std::int64_t terminalized = 0;
};

// Simulated downtime of executing `sequence` against one process; appends
// the terminalization steps if the sequence is exhausted uncured. Sets
// *cured_by_sequence accordingly if non-null.
double SequenceCostOnProcess(std::span<const RepairAction> sequence,
                             const RecoveryProcess& process, ErrorTypeId type,
                             const CostEstimator& estimator, int max_actions,
                             Terminalization terminalization,
                             bool* cured_by_sequence = nullptr,
                             const CapabilityModel& capabilities =
                                 CapabilityModel::TotalOrder());

// Prices `sequence` against every process (all must be of `type`).
SequenceEvaluation EvaluateSequence(
    std::span<const RepairAction> sequence,
    std::span<const RecoveryProcess* const> processes, ErrorTypeId type,
    const CostEstimator& estimator, int max_actions,
    Terminalization terminalization = Terminalization::kEscalate,
    const CapabilityModel& capabilities = CapabilityModel::TotalOrder());

struct ExactSearchConfig {
  // Longest sequence considered (before terminalization). The optimum is
  // short in practice: appending actions only pays while uncured processes
  // remain.
  int max_length = 6;
  Terminalization terminalization = Terminalization::kEscalate;
};

// Exact minimum-mean-cost sequence over the type's *observed* actions
// (the paper's local-optimality restriction), by depth-first search with
// cost-based pruning. Deterministic; exponential in max_length but heavily
// pruned, intended for tests and reference experiments, not the hot path.
ActionSequence ExactBestSequence(
    std::span<const RecoveryProcess* const> processes, ErrorTypeId type,
    const CostEstimator& estimator, int max_actions,
    const ExactSearchConfig& config = {});

}  // namespace aer

#endif  // AER_RL_SEQUENCE_H_
