// Boltzmann (softmax) exploration with an annealed temperature (equation 5):
//
//   P(a | s_t)  ∝  exp(-Q(s_t, a) / T)
//
// The temperature starts high (near-uniform exploration) and decays as more
// recovery processes are analyzed, so action selection gradually becomes
// greedy in the Q values — the paper's exploration/search split.
#ifndef AER_RL_BOLTZMANN_H_
#define AER_RL_BOLTZMANN_H_

#include <span>

#include "common/rng.h"

namespace aer {

struct TemperatureSchedule {
  // Initial temperature, in cost units (seconds of downtime): differences
  // much smaller than T are explored near-uniformly.
  double initial = 4000.0;
  // Multiplicative decay per sweep.
  double decay = 0.9995;
  // Exploration floor; keeps every action reachable so the visit-counted
  // learning rate retains its convergence guarantee.
  double floor = 20.0;

  double At(std::int64_t sweep) const;
};

// Samples an index from P(i) ∝ exp(-cost[i]/temperature). Costs are shifted
// by their minimum before exponentiation for numeric stability, so any
// finite magnitudes are safe.
std::size_t SampleBoltzmann(std::span<const double> costs, double temperature,
                            Rng& rng);

}  // namespace aer

#endif  // AER_RL_BOLTZMANN_H_
