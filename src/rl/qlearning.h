// Offline Q-learning on the recovery log — the paper's Figure 2 algorithm.
//
// For each error type: repeatedly sample a logged recovery process of that
// type, roll out an episode against the simulation platform choosing actions
// by Boltzmann exploration over the current Q values, record the transitions
// and apply the visit-counted TD(0) update along the episode. The episode is
// capped at N actions, the last slot always being manual repair, so every
// producible policy is proper and the values contract.
//
// Exploration is restricted to the actions observed in the training log for
// the type (others have no cost data) — the reason the result is a *local*
// optimum relative to the original user-defined policy.
#ifndef AER_RL_QLEARNING_H_
#define AER_RL_QLEARNING_H_

#include <span>

#include "common/stats.h"
#include "rl/boltzmann.h"
#include "rl/policy.h"
#include "rl/qtable.h"
#include "sim/platform.h"

namespace aer {

struct TrainerConfig {
  // The paper's N (Section 3.2: N = 20).
  int max_actions = 20;
  TemperatureSchedule temperature;
  // Sweep cap; Figure 13 uses 160k.
  std::int64_t max_sweeps = 160000;
  // Convergence may not be declared before this many sweeps: early in
  // training the temperature is still high and the Q values are mostly
  // noise, so apparent stability is meaningless (and the selection tree
  // would happily lock in a bad candidate set).
  std::int64_t min_sweeps = 3000;
  // Convergence detection: the greedy policy must stay unchanged for
  // `stable_checks` consecutive checks, one check every `check_every`
  // sweeps.
  std::int64_t check_every = 200;
  int stable_checks = 25;
  std::uint64_t seed = 1234;
  // 0 = the paper's α = 1/(1+visits); positive = constant learning rate
  // (ablation only, loses the convergence guarantee).
  double fixed_alpha = 0.0;
  // Discount factor. The paper sets γ = 1 so the expected cost equals MTTR
  // (Section 2.2); γ < 1 under-weights the manual-repair tail and is
  // provided for the ablation bench.
  double gamma = 1.0;
  // TD(λ): the update target for step t is the forward-view λ-return
  //   G_t^λ = (1-λ) Σ_{n≥1} λ^{n-1} G_t^{(n)}  (+ the terminal tail),
  // mixing n-step lookaheads of the episode's actual costs with the
  // bootstrapped min-Q. λ = 0 (default) is the paper's TD(0); λ = 1 is
  // Monte-Carlo (pure episode returns). Episodes are capped at N, so the
  // O(T²) per-episode computation is cheap.
  double td_lambda = 0.0;
  // Double Q-learning (van Hasselt): maintain two tables, select the
  // bootstrap action with one and value it with the other, alternating by
  // coin flip. Corrects the min-operator's systematic *underestimation* of
  // costs (the mirror image of max-Q's over-optimism). Only affects the
  // plain trainer's TD(0) path; incompatible with td_lambda > 0.
  bool double_q = false;
  // Collect per-sweep training telemetry (temperature, max |ΔQ|, visit
  // coverage) into TypeTrainingResult::telemetry. Pure observation: the
  // trained tables and policies are bit-identical either way (no extra RNG
  // draws), so flipping this cannot perturb an experiment.
  bool collect_telemetry = false;
};

// Per-type training telemetry (populated when collect_telemetry is set).
// Per-type values are independent of sibling types, so shards from parallel
// training merge deterministically in catalog order — see
// PublishTrainingTelemetry in rl/telemetry.h.
struct TypeTelemetry {
  RunningStat temperature;  // Boltzmann temperature, one sample per sweep
  RunningStat max_q_delta;  // max |ΔQ| across a sweep's updates, per sweep
  std::int64_t q_updates = 0;
  // Visit coverage of the final table: explored (state, action) pairs over
  // states_explored × the type's allowed-action repertoire.
  std::int64_t visited_state_actions = 0;
  std::int64_t explorable_state_actions = 0;
  double visit_coverage = 0.0;
};

struct TypeTrainingResult {
  ErrorTypeId type = kInvalidErrorType;
  // Sweep count at which the finally-stable policy first appeared (the
  // paper's "sweep number before convergence"), or the cap if never stable.
  std::int64_t sweeps = 0;
  // Episodes actually rolled out (= sweeps executed before the convergence
  // break or the cap) — the work unit behind the benches' episodes/sec.
  std::int64_t episodes = 0;
  bool converged = false;
  ActionSequence sequence;  // the generated policy for this type
  std::size_t states_explored = 0;
  std::int64_t training_processes = 0;
  TypeTelemetry telemetry;  // empty unless config.collect_telemetry
};

// Extracts the greedy action sequence for `type` from a Q table: follow the
// minimal-Q explored action from the root failure state until manual repair,
// an unexplored state, or the N cap.
ActionSequence GreedySequence(const QTable& table, ErrorTypeId type,
                              int max_actions);

// Entry-wise mean of two Q tables (entries present in only one are copied
// through) — the read-out view of Double Q-learning's twin tables.
QTable MergeTablesByMean(const QTable& a, const QTable& b);

class QLearningTrainer {
 public:
  // `training` must outlive the trainer. Processes that the catalog cannot
  // classify or that contain no repair actions are skipped.
  QLearningTrainer(const SimulationPlatform& platform,
                   std::span<const RecoveryProcess> training,
                   TrainerConfig config);

  // Trains one error type. If `table_out` is non-null the learned Q table is
  // copied there (for inspection and the selection-tree comparison).
  TypeTrainingResult TrainType(ErrorTypeId type,
                               QTable* table_out = nullptr) const;

  struct TrainingOutput {
    TrainedPolicy policy;
    std::vector<TypeTrainingResult> per_type;
  };

  // Trains every type of the platform's catalog into one deployable policy.
  TrainingOutput TrainAll() const;

  // The processes grouped under one type (for the selection-tree trainer and
  // the experiment harnesses).
  std::span<const RecoveryProcess* const> processes_of(ErrorTypeId type) const;

  const TrainerConfig& config() const { return config_; }
  const SimulationPlatform& platform() const { return platform_; }

 private:
  friend class SelectionTreeTrainer;

  // One episode: sample a process, roll out, update Q. `sweep` drives the
  // temperature. With `table_b` non-null, Double Q-learning: action
  // selection uses the mean of both tables and each transition updates one
  // of them (coin flip), bootstrapping through the other. A non-null
  // `telemetry` records the sweep's temperature and max |ΔQ| (observation
  // only — identical table bytes either way).
  void RunSweep(ErrorTypeId type,
                std::span<const RecoveryProcess* const> processes,
                std::int64_t sweep, QTable& table, Rng& rng,
                QTable* table_b = nullptr,
                TypeTelemetry* telemetry = nullptr) const;

  // Fills the coverage fields of `telemetry` from a finished table.
  void FillCoverage(ErrorTypeId type, const QTable& table,
                    TypeTelemetry& telemetry) const;

  const SimulationPlatform& platform_;
  TrainerConfig config_;
  std::vector<std::vector<const RecoveryProcess*>> by_type_;
};

}  // namespace aer

#endif  // AER_RL_QLEARNING_H_
