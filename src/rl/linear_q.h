// Linear Q-function approximation — the paper's future-work item "using
// generalization functions to approximate the Q-learning values"
// (Section 7).
//
// Instead of one table cell per (state, action), Q(s, a) is a per-(type,
// action) linear function of state features. Because the state is just the
// multiset of previously tried actions (plus the error type), the feature
// vector is tiny: a bias plus the per-action try counts and the total step
// count. The approximation generalizes across states the table has never
// visited — a rollout that tried [REBOOT, TRYNOP] shares parameters with
// [TRYNOP, REBOOT] — at the cost of not representing order effects.
//
// ApproxQLearningTrainer mirrors the tabular trainer's episode structure
// (same platform, same Boltzmann exploration, same N-cap), updates weights
// by normalized LMS, and extracts one action sequence per type by greedy
// rollout followed by exact prefix pruning.
#ifndef AER_RL_LINEAR_Q_H_
#define AER_RL_LINEAR_Q_H_

#include "rl/qlearning.h"

namespace aer {

class LinearQFunction {
 public:
  // bias, count(TRYNOP), count(REBOOT), count(REIMAGE), count(RMA), steps.
  static constexpr int kNumFeatures = 2 + kNumActions;
  using FeatureVector = std::array<double, kNumFeatures>;

  static FeatureVector Features(std::span<const RepairAction> tried);

  explicit LinearQFunction(std::size_t num_types);

  double Q(ErrorTypeId type, const FeatureVector& features,
           RepairAction action) const;

  // Normalized LMS step toward `target`:
  //   w += alpha * (target - Q) * x / (x . x)
  void Update(ErrorTypeId type, const FeatureVector& features,
              RepairAction action, double target, double alpha);

  // Sets the bias weight (used to initialize Q at the one-step success cost,
  // mirroring the tabular trainer's admissible initialization).
  void SetBias(ErrorTypeId type, RepairAction action, double value);

  std::size_t num_parameters() const;
  std::int64_t updates() const { return updates_; }

 private:
  std::vector<std::array<FeatureVector, kNumActions>> weights_;
  std::int64_t updates_ = 0;
};

struct ApproxTrainerConfig {
  int max_actions = 20;
  TemperatureSchedule temperature;
  // Fixed sweep budget per type (no convergence detection: with function
  // approximation the greedy policy is cheap to extract once at the end).
  std::int64_t sweeps = 20000;
  double learning_rate = 0.1;
  std::uint64_t seed = 4321;
};

class ApproxQLearningTrainer {
 public:
  ApproxQLearningTrainer(const SimulationPlatform& platform,
                         std::span<const RecoveryProcess> training,
                         ApproxTrainerConfig config);

  struct Output {
    TrainedPolicy policy;
    LinearQFunction q;
    // Per type (catalog order), the extracted sequence (possibly empty).
    std::vector<ActionSequence> sequences;
  };

  Output Train() const;

 private:
  void TrainType(ErrorTypeId type, LinearQFunction& q) const;
  ActionSequence ExtractSequence(ErrorTypeId type,
                                 const LinearQFunction& q) const;

  const SimulationPlatform& platform_;
  ApproxTrainerConfig config_;
  std::vector<std::vector<const RecoveryProcess*>> by_type_;
};

}  // namespace aer

#endif  // AER_RL_LINEAR_Q_H_
