// Selection-tree accelerated policy generation (Section 5.3).
//
// Plain Q-learning must drive the Q values of *near-tied* actions far enough
// apart for the greedy policy to stop flip-flopping — for some error types
// that takes the full 160k-sweep budget (Figure 13). The selection tree
// sidesteps the wait: when generating the policy from the Q values, keep the
// best *two* actions of a state whenever the runner-up's expected total cost
// is within a threshold of the best, build the tree of candidate action
// paths, and resolve the remaining ties by *exactly* evaluating each
// candidate sequence against the training processes. The scan is
// deterministic, so the generated policy stabilizes orders of magnitude
// earlier.
#ifndef AER_RL_SELECTION_TREE_H_
#define AER_RL_SELECTION_TREE_H_

#include "rl/qlearning.h"

namespace aer {

struct SelectionTreeConfig {
  // Branch on the second-best action when
  //   Q(second) <= Q(best) * (1 + closeness_threshold).
  double closeness_threshold = 0.2;
  // Cap on enumerated candidate sequences per scan (the tree is binary, so
  // depth d alone could yield 2^d paths).
  std::size_t max_candidates = 64;
  // Convergence: the tree-scan winner must be unchanged for this many
  // consecutive checks (checks happen every TrainerConfig::check_every
  // sweeps). The exact evaluation is deterministic given the candidate set,
  // so far fewer checks are needed than for greedy stability.
  int stable_checks = 5;
  // Also evaluate the "start the escalation at level a" sequences (one per
  // observed action) alongside the tree's Q-derived candidates. The tree can
  // only branch on actions that reach the best-two of a state's Q values;
  // when the optimal first action is much costlier than the others (e.g.
  // hardware faults where only manual repair works), the under-trained Q
  // values keep it out of the best-two far longer than the convergence
  // window. The seeds are evaluated by the same exact scan, so they only
  // ever win when they are exactly better. An implementation hardening on
  // top of the paper's algorithm; disable to get the pure method.
  bool seed_escalation_candidates = true;
};

// Enumerates the candidate action sequences of the selection tree rooted at
// `type`'s initial state, under the Q values in `table`.
std::vector<ActionSequence> BuildCandidateSequences(
    const QTable& table, ErrorTypeId type, int max_actions,
    const SelectionTreeConfig& config);

class SelectionTreeTrainer {
 public:
  // Wraps a QLearningTrainer: same sweeps, different policy generation and
  // convergence rule.
  SelectionTreeTrainer(const QLearningTrainer& base,
                       SelectionTreeConfig config);

  TypeTrainingResult TrainType(ErrorTypeId type,
                               QTable* table_out = nullptr) const;

  QLearningTrainer::TrainingOutput TrainAll() const;

  // The wrapped plain trainer (platform, process grouping, sweep config).
  const QLearningTrainer& base() const { return base_; }

 private:
  const QLearningTrainer& base_;
  SelectionTreeConfig config_;
};

}  // namespace aer

#endif  // AER_RL_SELECTION_TREE_H_
