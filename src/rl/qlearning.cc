#include "rl/qlearning.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/profiler.h"

namespace aer {

QTable MergeTablesByMean(const QTable& a, const QTable& b) {
  QTable merged;
  const auto add = [&merged](const QTable& src, const QTable& other) {
    for (const auto& [key, entries] : src.raw()) {
      for (int i = 0; i < kNumActions; ++i) {
        const RepairAction action = ActionFromIndex(i);
        if (entries[static_cast<std::size_t>(i)].visits == 0) continue;
        if (merged.Has(key, action)) continue;  // already merged from `src`
        const double qa = src.Q(key, action);
        const double value =
            other.Has(key, action) ? 0.5 * (qa + other.Q(key, action)) : qa;
        merged.Update(key, action, value);  // first update adopts the value
      }
    }
  };
  add(a, b);
  add(b, a);
  return merged;
}

ActionSequence GreedySequence(const QTable& table, ErrorTypeId type,
                              int max_actions) {
  ActionSequence sequence;
  while (static_cast<int>(sequence.size()) < max_actions) {
    const StateKey s = EncodeState(type, sequence);
    const auto best = table.BestAction(s);
    if (!best.has_value()) break;
    sequence.push_back(*best);
    if (*best == RepairAction::kRma) break;  // manual repair is absorbing
  }
  return sequence;
}

QLearningTrainer::QLearningTrainer(const SimulationPlatform& platform,
                                   std::span<const RecoveryProcess> training,
                                   TrainerConfig config)
    : platform_(platform),
      config_(config),
      by_type_(platform.types().num_types()) {
  AER_CHECK_GE(config_.max_actions, 2);
  AER_CHECK_LE(static_cast<std::size_t>(config_.max_actions),
               kMaxTriedActions);
  AER_CHECK_GT(config_.check_every, 0);
  AER_CHECK_GT(config_.stable_checks, 0);
  AER_CHECK_GT(config_.gamma, 0.0);
  AER_CHECK_LE(config_.gamma, 1.0);
  AER_CHECK_GE(config_.td_lambda, 0.0);
  AER_CHECK_LE(config_.td_lambda, 1.0);
  for (const RecoveryProcess& p : training) {
    if (p.attempts().empty()) continue;
    const ErrorTypeId t = platform.types().Classify(p);
    if (t == kInvalidErrorType) continue;
    by_type_[static_cast<std::size_t>(t)].push_back(&p);
  }
}

std::span<const RecoveryProcess* const> QLearningTrainer::processes_of(
    ErrorTypeId type) const {
  AER_CHECK_GE(type, 0);
  AER_CHECK_LT(static_cast<std::size_t>(type), by_type_.size());
  return by_type_[static_cast<std::size_t>(type)];
}

void QLearningTrainer::FillCoverage(ErrorTypeId type, const QTable& table,
                                    TypeTelemetry& telemetry) const {
  std::int64_t visited = 0;
  for (const auto& [key, entries] : table.raw()) {
    for (const auto& entry : entries) {
      if (entry.visits > 0) ++visited;
    }
  }
  const std::int64_t allowed = static_cast<std::int64_t>(
      platform_.estimator().ObservedActions(type).size());
  telemetry.visited_state_actions = visited;
  telemetry.explorable_state_actions =
      static_cast<std::int64_t>(table.num_states()) * allowed;
  telemetry.visit_coverage =
      telemetry.explorable_state_actions > 0
          ? static_cast<double>(visited) /
                static_cast<double>(telemetry.explorable_state_actions)
          : 0.0;
}

void QLearningTrainer::RunSweep(ErrorTypeId type,
                                std::span<const RecoveryProcess* const> processes,
                                std::int64_t sweep, QTable& table, Rng& rng,
                                QTable* table_b,
                                TypeTelemetry* telemetry) const {
  AER_PROFILE_SCOPE("train_sweep");
  // SelectProcess: uniform over the type's training processes.
  const RecoveryProcess& p = *processes[rng.NextBounded(processes.size())];
  ProcessReplay replay(p, type, platform_.estimator(),
                       platform_.capabilities());

  const std::vector<RepairAction> allowed =
      platform_.estimator().ObservedActions(type);
  AER_CHECK(!allowed.empty());
  const double temperature = config_.temperature.At(sweep);

  // Unexplored (s, a) pairs are priced at the action's immediate success
  // cost — the admissible optimistic bound (a cure can never cost less than
  // executing the action once). Initializing at 0 instead makes long chains
  // of cheap actions look free, and with α = 1/(1+visits) the inflated
  // optimism unwinds too slowly to ever recover.
  std::array<double, kNumActions> init_q;
  for (RepairAction a : kAllActions) {
    init_q[static_cast<std::size_t>(ActionIndex(a))] =
        platform_.estimator().EstimateCost(type, a, /*success=*/true);
  }
  const auto q_of = [&](const QTable& q, StateKey s, RepairAction a) {
    return q.Has(s, a) ? q.Q(s, a)
                       : init_q[static_cast<std::size_t>(ActionIndex(a))];
  };
  // Behaviour values: the single table, or the mean of both under Double Q.
  const auto q_or_init = [&](StateKey s, RepairAction a) {
    const double qa = q_of(table, s, a);
    return table_b == nullptr ? qa : 0.5 * (qa + q_of(*table_b, s, a));
  };
  const auto min_q_or_init = [&](StateKey s) {
    double best = q_or_init(s, allowed.front());
    for (std::size_t i = 1; i < allowed.size(); ++i) {
      best = std::min(best, q_or_init(s, allowed[i]));
    }
    return best;
  };

  struct Transition {
    StateKey state;
    RepairAction action;
    double cost;
    StateKey next;
    bool terminal;
  };
  std::vector<Transition> episode;
  std::vector<RepairAction> tried;

  // Explore different recovery actions until the simulated machine is
  // healthy; the last slot is always manual repair.
  while (!replay.cured()) {
    const StateKey s = EncodeState(type, tried);
    RepairAction a;
    if (static_cast<int>(tried.size()) >= config_.max_actions - 1) {
      a = RepairAction::kRma;
    } else {
      std::vector<double> costs(allowed.size());
      for (std::size_t i = 0; i < allowed.size(); ++i) {
        costs[i] = q_or_init(s, allowed[i]);
      }
      a = allowed[SampleBoltzmann(costs, temperature, rng)];
    }
    const ProcessReplay::StepResult step = replay.Step(a);
    tried.push_back(a);
    episode.push_back({s, a, step.cost, EncodeState(type, tried), step.cured});
  }

  // UpdateQfunction for every two successive states along the sequence
  // (forward order as in the paper's Figure 2). With td_lambda = 0 the
  // target is the paper's one-step cost + min-Q; otherwise the forward-view
  // λ-return mixes all n-step lookaheads of the episode.
  const double gamma = config_.gamma;
  const double lambda = config_.td_lambda;
  const std::size_t T = episode.size();

  // Telemetry is observation-only: it reads the deltas Update() already
  // computes and draws nothing from the RNG, so collecting it cannot change
  // the trained bytes.
  double max_delta = 0.0;
  const auto record_sweep = [&]() {
    if (telemetry == nullptr) return;
    telemetry->temperature.Add(temperature);
    telemetry->max_q_delta.Add(max_delta);
    telemetry->q_updates += static_cast<std::int64_t>(T);
  };

  if (table_b != nullptr) {
    // Double Q-learning (TD(0) only): per transition, flip which table is
    // updated; the selected bootstrap action comes from the updated table,
    // its value from the other, decoupling selection from valuation.
    AER_CHECK_EQ(lambda, 0.0);
    for (std::size_t t = 0; t < T; ++t) {
      QTable& update_table = rng.NextBool(0.5) ? table : *table_b;
      QTable& value_table = &update_table == &table ? *table_b : table;
      double future = 0.0;
      if (!episode[t].terminal) {
        RepairAction chosen = allowed.front();
        double chosen_q = q_of(update_table, episode[t].next, chosen);
        for (std::size_t i = 1; i < allowed.size(); ++i) {
          const double q = q_of(update_table, episode[t].next, allowed[i]);
          if (q < chosen_q) {
            chosen_q = q;
            chosen = allowed[i];
          }
        }
        future = q_of(value_table, episode[t].next, chosen);
      }
      const double delta =
          update_table.Update(episode[t].state, episode[t].action,
                              episode[t].cost + gamma * future);
      max_delta = std::max(max_delta, std::abs(delta));
    }
    record_sweep();
    return;
  }

  for (std::size_t t = 0; t < T; ++t) {
    double target;
    if (lambda == 0.0) {
      const double future =
          episode[t].terminal ? 0.0 : min_q_or_init(episode[t].next);
      target = episode[t].cost + gamma * future;
    } else {
      // G_t^{(n)} accumulated incrementally: costs of steps t..t+n-1 plus
      // the bootstrapped value at t+n (0 at the terminal). Weights:
      // (1-λ)·λ^{n-1} for the interior returns, λ^{T-t-1} for the final one
      // (the remaining mass, so they sum to exactly 1 — and λ = 1 cleanly
      // degenerates to the Monte-Carlo return).
      double discounted_costs = 0.0;
      double discount = 1.0;
      double lambda_pow = 1.0;  // λ^{n-1}
      target = 0.0;
      for (std::size_t n = 1; t + n <= T; ++n) {
        const Transition& step = episode[t + n - 1];
        discounted_costs += discount * step.cost;
        discount *= gamma;
        const double bootstrap =
            step.terminal ? 0.0 : min_q_or_init(step.next);
        const double g_n = discounted_costs + discount * bootstrap;
        if (t + n == T) {
          target += lambda_pow * g_n;
        } else {
          target += (1.0 - lambda) * lambda_pow * g_n;
          lambda_pow *= lambda;
        }
      }
    }
    const double delta =
        table.Update(episode[t].state, episode[t].action, target);
    max_delta = std::max(max_delta, std::abs(delta));
  }
  record_sweep();
}

TypeTrainingResult QLearningTrainer::TrainType(ErrorTypeId type,
                                               QTable* table_out) const {
  AER_PROFILE_SCOPE("train_type");
  const auto processes = processes_of(type);
  TypeTrainingResult result;
  result.type = type;
  result.training_processes = static_cast<std::int64_t>(processes.size());
  if (processes.empty()) return result;

  // One stream per (master seed, type): a type's draws depend on nothing
  // else, so types can train in any order — or on any thread — and still
  // produce the exact bytes the serial path produces.
  Rng rng(DeriveStream(config_.seed, static_cast<std::uint64_t>(type)));
  QTable table(config_.fixed_alpha);
  QTable table_b(config_.fixed_alpha);
  AER_CHECK(!config_.double_q || config_.td_lambda == 0.0);

  // Under Double Q the generated policy reads the merged (averaged) tables.
  const auto merged_view = [&]() {
    return MergeTablesByMean(table, table_b);
  };

  ActionSequence stable_sequence;
  std::int64_t stable_since = 0;  // sweep at which stable_sequence appeared
  int stable_checks = 0;

  TypeTelemetry* telemetry =
      config_.collect_telemetry ? &result.telemetry : nullptr;

  std::int64_t sweep = 0;
  for (; sweep < config_.max_sweeps; ++sweep) {
    RunSweep(type, processes, sweep, table, rng,
             config_.double_q ? &table_b : nullptr, telemetry);
    if ((sweep + 1) % config_.check_every != 0) continue;

    ActionSequence sequence =
        config_.double_q
            ? GreedySequence(merged_view(), type, config_.max_actions)
            : GreedySequence(table, type, config_.max_actions);
    if (sequence == stable_sequence) {
      ++stable_checks;
    } else {
      stable_sequence = std::move(sequence);
      stable_since = sweep + 1;
      stable_checks = 1;
    }
    if (stable_checks >= config_.stable_checks &&
        sweep + 1 >= config_.min_sweeps) {
      result.converged = true;
      break;
    }
  }

  result.sweeps = result.converged ? stable_since : config_.max_sweeps;
  result.episodes = sweep < config_.max_sweeps ? sweep + 1 : config_.max_sweeps;
  QTable final_table =
      config_.double_q ? merged_view() : std::move(table);
  result.sequence = GreedySequence(final_table, type, config_.max_actions);
  result.states_explored = final_table.num_states();
  if (telemetry != nullptr) FillCoverage(type, final_table, *telemetry);
  if (table_out != nullptr) *table_out = std::move(final_table);
  return result;
}

QLearningTrainer::TrainingOutput QLearningTrainer::TrainAll() const {
  AER_PROFILE_SCOPE("train_all");
  TrainingOutput output;
  for (std::size_t t = 0; t < by_type_.size(); ++t) {
    const ErrorTypeId type = static_cast<ErrorTypeId>(t);
    TypeTrainingResult result = TrainType(type);
    if (!result.sequence.empty()) {
      output.policy.AddType(
          {std::string(platform_.symptoms().Name(
               platform_.types().symptom_of(type))),
           result.sequence});
    }
    output.per_type.push_back(std::move(result));
  }
  return output;
}

}  // namespace aer
