// Table look-up representation of the Q-function (Section 3.3) with the
// paper's visit-count learning rate  α_n = 1 / (1 + visits(s, a)),  which
// makes the update a contraction and guarantees convergence of the Q values.
#ifndef AER_RL_QTABLE_H_
#define AER_RL_QTABLE_H_

#include <array>
#include <iosfwd>
#include <optional>
#include <unordered_map>

#include "rl/state.h"

namespace aer {

class QTable {
 public:
  struct Entry {
    double q = 0.0;
    std::int64_t visits = 0;
  };

  // Default: the paper's visit-counted learning rate. A positive
  // `fixed_alpha` switches to a constant rate instead — provided for the
  // ablation bench; fixed rates lose the convergence guarantee.
  explicit QTable(double fixed_alpha = 0.0) : fixed_alpha_(fixed_alpha) {}

  // True if (s, a) has been updated at least once.
  bool Has(StateKey s, RepairAction a) const;

  // Q value of an explored pair; CHECK-fails on unexplored ones.
  double Q(StateKey s, RepairAction a) const;

  std::int64_t Visits(StateKey s, RepairAction a) const;

  // One Q-learning update toward `target` (= step cost + min over next
  // state): q ← (1-α) q + α target with α = 1/(1+visits); increments visits.
  // Returns the signed change in q (new − old) — the trainers' telemetry
  // hook for convergence monitoring, free to compute in place.
  double Update(StateKey s, RepairAction a, double target);

  // Minimum Q over the state's explored actions; nullopt if none explored.
  std::optional<double> MinQ(StateKey s) const;

  // The explored action with minimal Q (ties: weaker action first, so the
  // generated policy deterministically prefers the cheaper side of a tie).
  std::optional<RepairAction> BestAction(StateKey s) const;

  // Best and second-best explored actions, for the selection tree.
  struct BestTwo {
    RepairAction best;
    double best_q;
    std::optional<RepairAction> second;
    double second_q = 0.0;
  };
  std::optional<BestTwo> BestTwoActions(StateKey s) const;

  std::size_t num_states() const { return table_.size(); }
  std::int64_t total_updates() const { return total_updates_; }

  // Iteration support for inspection and serialization.
  const std::unordered_map<StateKey, std::array<Entry, kNumActions>>& raw()
      const {
    return table_;
  }

  // Outcome of a checked deserialization. `ok` is false on any structural
  // damage — missing/unsupported header, malformed line, checksum or entry
  // count mismatch — with a human-readable reason; the output table is left
  // empty. Corruption is never fatal: a Q-table file is untrusted input.
  struct ReadResult {
    bool ok = true;
    std::string error;
  };

  // Text checkpointing, format v1:
  //   #aerq\tv1\t<entry count>\t<fnv1a64 of body, hex>
  //   <hex state key>\t<ACTION>\t<q>\t<visits>     (sorted for stable diffs)
  // The header's checksum covers every byte after the header line, so
  // bit flips and truncation are detected instead of silently loading.
  // Read() restores exactly (the fixed-alpha setting is the caller's).
  void Write(std::ostream& os) const;
  static ReadResult ReadChecked(std::istream& is, QTable& out);
  // Convenience wrapper: ReadChecked().ok.
  static bool Read(std::istream& is, QTable& out);

 private:
  double fixed_alpha_ = 0.0;
  std::unordered_map<StateKey, std::array<Entry, kNumActions>> table_;
  std::int64_t total_updates_ = 0;
};

}  // namespace aer

#endif  // AER_RL_QTABLE_H_
