#include "rl/parallel_trainer.h"

#include <utility>

#include "common/check.h"
#include "common/profiler.h"

namespace aer {

ParallelTrainer::ParallelTrainer(const QLearningTrainer& base,
                                 ThreadPool& pool)
    : base_(base), tree_(nullptr), pool_(pool) {}

ParallelTrainer::ParallelTrainer(const SelectionTreeTrainer& tree,
                                 ThreadPool& pool)
    : base_(tree.base()), tree_(&tree), pool_(pool) {}

QLearningTrainer::TrainingOutput ParallelTrainer::TrainAll(
    std::vector<QTable>* tables_out) const {
  AER_PROFILE_SCOPE("train_all_parallel");
  const SimulationPlatform& platform = base_.platform();
  const std::size_t num_types = platform.types().num_types();

  // Phase 1 — the shards. Every type is an independent pure function of
  // (master seed, type): TrainType() builds its own RNG, Q-table(s) and
  // episode buffers, and reads only the shared immutable platform, so the
  // pool may run them in any order on any thread.
  std::vector<TypeTrainingResult> per_type(num_types);
  std::vector<QTable> tables(num_types);
  pool_.ParallelFor(num_types, [&](std::size_t t) {
    const ErrorTypeId type = static_cast<ErrorTypeId>(t);
    per_type[t] = tree_ != nullptr ? tree_->TrainType(type, &tables[t])
                                   : base_.TrainType(type, &tables[t]);
  });

  // Phase 2 — the merge, single-threaded in catalog order: exactly the loop
  // the serial TrainAll() runs, so AddType() interns symptom names in the
  // same order and the serialized policy is byte-identical.
  QLearningTrainer::TrainingOutput output;
  for (std::size_t t = 0; t < num_types; ++t) {
    if (!per_type[t].sequence.empty()) {
      output.policy.AddType(
          {std::string(platform.symptoms().Name(
               platform.types().symptom_of(static_cast<ErrorTypeId>(t)))),
           per_type[t].sequence});
    }
    output.per_type.push_back(std::move(per_type[t]));
  }
  if (tables_out != nullptr) *tables_out = std::move(tables);
  return output;
}

std::int64_t ParallelTrainer::TotalEpisodes(
    const QLearningTrainer::TrainingOutput& output) {
  std::int64_t total = 0;
  for (const TypeTrainingResult& r : output.per_type) total += r.episodes;
  return total;
}

}  // namespace aer
