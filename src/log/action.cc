#include "log/action.h"

#include "common/check.h"

namespace aer {

RepairAction ActionFromIndex(int index) {
  AER_CHECK_GE(index, 0) << "action index underflow";
  AER_CHECK_LT(index, kNumActions) << "action index out of range";
  return static_cast<RepairAction>(index);
}

std::string_view ActionName(RepairAction a) {
  switch (a) {
    case RepairAction::kTryNop:
      return "TRYNOP";
    case RepairAction::kReboot:
      return "REBOOT";
    case RepairAction::kReimage:
      return "REIMAGE";
    case RepairAction::kRma:
      return "RMA";
  }
  AER_CHECK(false) << "unhandled RepairAction " << static_cast<int>(a);
}

std::optional<RepairAction> ParseAction(std::string_view name) {
  for (RepairAction a : kAllActions) {
    if (ActionName(a) == name) return a;
  }
  return std::nullopt;
}

}  // namespace aer
