// Human-readable summaries of a recovery log: entry/process counts,
// downtime totals, and the most expensive/most frequent error types. Used
// by the aerctl CLI and handy for operational dashboards.
#ifndef AER_LOG_LOG_REPORT_H_
#define AER_LOG_LOG_REPORT_H_

#include <string>

#include "log/log_stats.h"

namespace aer {

struct LogReport {
  std::size_t entries = 0;
  std::size_t processes = 0;
  int incomplete = 0;
  int orphan_entries = 0;
  SimTime total_downtime = 0;
  double mean_downtime_s = 0.0;
  std::size_t error_types = 0;
  // Ingestion health, populated when the log came through a lenient parse:
  // lines dropped and lines repaired on the way in (see RecoveryLog::Read).
  std::size_t ingest_skipped = 0;
  std::size_t ingest_repaired = 0;
  // Top error types by process count (rank order).
  std::vector<ErrorTypeStat> top_types;
};

LogReport BuildLogReport(const RecoveryLog& log, std::size_t top_k = 5);

// As above, but carries the parse counters of the read that produced `log`
// into the report so operators see ingestion damage alongside the totals.
LogReport BuildLogReport(const RecoveryLog& log, const LogParseResult& parse,
                         std::size_t top_k = 5);

// Multi-line text rendering; `symptoms` must be the log's own table.
std::string FormatLogReport(const LogReport& report,
                            const SymptomTable& symptoms);

}  // namespace aer

#endif  // AER_LOG_LOG_REPORT_H_
