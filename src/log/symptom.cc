#include "log/symptom.h"

#include "common/check.h"

namespace aer {

SymptomId SymptomTable::Intern(std::string_view name) {
  const auto it = ids_.find(std::string(name));
  if (it != ids_.end()) return it->second;
  const SymptomId id = static_cast<SymptomId>(names_.size());
  names_.emplace_back(name);
  ids_.emplace(names_.back(), id);
  return id;
}

SymptomId SymptomTable::Find(std::string_view name) const {
  const auto it = ids_.find(std::string(name));
  return it == ids_.end() ? kInvalidSymptom : it->second;
}

const std::string& SymptomTable::Name(SymptomId id) const {
  AER_CHECK_GE(id, 0) << "invalid symptom id";
  AER_CHECK_LT(static_cast<std::size_t>(id), names_.size())
      << "symptom id not interned in this table";
  return names_[static_cast<std::size_t>(id)];
}

}  // namespace aer
