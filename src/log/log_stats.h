// Per-error-type statistics over an ensemble of recovery processes: process
// counts and total downtime (the data behind the paper's Figures 5 and 6) and
// the top-K frequent-type selection of Section 4.1.
#ifndef AER_LOG_LOG_STATS_H_
#define AER_LOG_LOG_STATS_H_

#include <unordered_map>
#include <vector>

#include "log/recovery_process.h"

namespace aer {

// Groups process indices by error type (initial symptom).
std::unordered_map<SymptomId, std::vector<std::size_t>> GroupByErrorType(
    const std::vector<RecoveryProcess>& processes);

struct ErrorTypeStat {
  SymptomId type = kInvalidSymptom;
  std::int64_t process_count = 0;
  SimTime total_downtime = 0;
};

// One stat per error type, sorted by descending process count (ties broken
// by symptom id so the ranking is deterministic). This ordering defines the
// "error type 1..40" x-axis used throughout the paper's figures.
std::vector<ErrorTypeStat> RankErrorTypes(
    const std::vector<RecoveryProcess>& processes);

struct TopTypesSelection {
  std::vector<SymptomId> types;   // the K most frequent error types, in rank order
  double process_coverage = 0.0;  // fraction of processes they account for
};

// Selects the `k` most frequent types (Section 4.1 keeps the top 40, which
// cover 98.68% of the paper's processes).
TopTypesSelection SelectTopTypes(const std::vector<RecoveryProcess>& processes,
                                 std::size_t k);

// Sum of downtime over all processes.
SimTime TotalDowntime(const std::vector<RecoveryProcess>& processes);

}  // namespace aer

#endif  // AER_LOG_LOG_STATS_H_
