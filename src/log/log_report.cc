#include "log/log_report.h"

#include <sstream>

#include "common/string_util.h"

namespace aer {

LogReport BuildLogReport(const RecoveryLog& log, std::size_t top_k) {
  LogReport report;
  report.entries = log.size();
  const SegmentationResult segmented = SegmentIntoProcesses(log);
  report.processes = segmented.processes.size();
  report.incomplete = segmented.incomplete;
  report.orphan_entries = segmented.orphan_entries;
  report.total_downtime = TotalDowntime(segmented.processes);
  report.mean_downtime_s =
      report.processes > 0
          ? static_cast<double>(report.total_downtime) /
                static_cast<double>(report.processes)
          : 0.0;
  std::vector<ErrorTypeStat> ranked = RankErrorTypes(segmented.processes);
  report.error_types = ranked.size();
  if (ranked.size() > top_k) ranked.resize(top_k);
  report.top_types = std::move(ranked);
  return report;
}

LogReport BuildLogReport(const RecoveryLog& log, const LogParseResult& parse,
                         std::size_t top_k) {
  LogReport report = BuildLogReport(log, top_k);
  report.ingest_skipped = parse.skipped;
  report.ingest_repaired = parse.repaired;
  return report;
}

std::string FormatLogReport(const LogReport& report,
                            const SymptomTable& symptoms) {
  std::ostringstream os;
  os << StrFormat("entries:             %zu\n", report.entries);
  os << StrFormat("recovery processes:  %zu (+%d incomplete, %d orphan "
                  "entries)\n",
                  report.processes, report.incomplete,
                  report.orphan_entries);
  if (report.ingest_skipped > 0 || report.ingest_repaired > 0) {
    os << StrFormat("ingestion:           %zu line(s) skipped, %zu "
                    "repaired (lenient parse)\n",
                    report.ingest_skipped, report.ingest_repaired);
  }
  os << StrFormat("total downtime:      %.3f Msec (mean %.0f s / process)\n",
                  static_cast<double>(report.total_downtime) / 1e6,
                  report.mean_downtime_s);
  os << StrFormat("error types:         %zu; top %zu by count:\n",
                  report.error_types, report.top_types.size());
  for (const ErrorTypeStat& stat : report.top_types) {
    os << StrFormat("  %-28s %6lld processes, %8.3f Msec downtime\n",
                    symptoms.Name(stat.type).c_str(),
                    static_cast<long long>(stat.process_count),
                    static_cast<double>(stat.total_downtime) / 1e6);
  }
  return os.str();
}

}  // namespace aer
