#include "log/log_entry.h"

#include "common/check.h"

namespace aer {

std::string DescribeEntry(const LogEntry& entry, const SymptomTable& symptoms) {
  switch (entry.kind) {
    case EntryKind::kSymptom:
      return "error:" + symptoms.Name(entry.symptom);
    case EntryKind::kAction:
      return std::string(ActionName(entry.action));
    case EntryKind::kSuccess:
      return "Success";
  }
  AER_CHECK(false) << "unhandled EntryKind "
                   << static_cast<int>(entry.kind);
}

}  // namespace aer
