// Repair actions and their strength order.
//
// The paper's production system has exactly four repair actions, totally
// ordered by "strength": a stronger action performs at least everything a
// weaker one does (Section 3.3, hypothesis 2). RMA ("return to manufacturer"
// i.e. manual human repair) is the strongest and always succeeds.
#ifndef AER_LOG_ACTION_H_
#define AER_LOG_ACTION_H_

#include <array>
#include <optional>
#include <string_view>

namespace aer {

enum class RepairAction : int {
  kTryNop = 0,   // watch the machine; do nothing
  kReboot = 1,   // reboot the machine
  kReimage = 2,  // rebuild the operating system
  kRma = 3,      // hand the machine to a human technician
};

inline constexpr int kNumActions = 4;

inline constexpr std::array<RepairAction, kNumActions> kAllActions = {
    RepairAction::kTryNop, RepairAction::kReboot, RepairAction::kReimage,
    RepairAction::kRma};

// Strength is exactly the enum order; kept as a named function because call
// sites reason about "strength", not enum arithmetic.
constexpr int ActionStrength(RepairAction a) { return static_cast<int>(a); }

// True if `a` is at least as strong as `b` (hypothesis 2: a can replace b).
constexpr bool AtLeastAsStrong(RepairAction a, RepairAction b) {
  return ActionStrength(a) >= ActionStrength(b);
}

constexpr int ActionIndex(RepairAction a) { return static_cast<int>(a); }

RepairAction ActionFromIndex(int index);

std::string_view ActionName(RepairAction a);

// Parses the log-file spelling ("TRYNOP", "REBOOT", ...); nullopt otherwise.
std::optional<RepairAction> ParseAction(std::string_view name);

}  // namespace aer

#endif  // AER_LOG_ACTION_H_
