// A single recovery-log entry: <time, machine name, description>.
//
// Matches the paper's Section 4.1: the description is either an error
// symptom, a repair action, or a report of successful recovery.
#ifndef AER_LOG_LOG_ENTRY_H_
#define AER_LOG_LOG_ENTRY_H_

#include <cstdint>
#include <string>

#include "common/sim_time.h"
#include "log/action.h"
#include "log/symptom.h"

namespace aer {

using MachineId = std::int32_t;

enum class EntryKind : int {
  kSymptom = 0,  // an error symptom was observed
  kAction = 1,   // a repair action was initiated
  kSuccess = 2,  // the machine reported healthy (recovery complete)
};

struct LogEntry {
  SimTime time = 0;
  MachineId machine = 0;
  EntryKind kind = EntryKind::kSymptom;
  // Valid when kind == kSymptom.
  SymptomId symptom = kInvalidSymptom;
  // Valid when kind == kAction.
  RepairAction action = RepairAction::kTryNop;

  static LogEntry Symptom(SimTime t, MachineId m, SymptomId s) {
    LogEntry e;
    e.time = t;
    e.machine = m;
    e.kind = EntryKind::kSymptom;
    e.symptom = s;
    return e;
  }
  static LogEntry Action(SimTime t, MachineId m, RepairAction a) {
    LogEntry e;
    e.time = t;
    e.machine = m;
    e.kind = EntryKind::kAction;
    e.action = a;
    return e;
  }
  static LogEntry Success(SimTime t, MachineId m) {
    LogEntry e;
    e.time = t;
    e.machine = m;
    e.kind = EntryKind::kSuccess;
    return e;
  }

  friend bool operator==(const LogEntry&, const LogEntry&) = default;
};

// Renders the description column as it appears in the paper's Table 1
// ("error:<symptom name>", "REBOOT", "Success").
std::string DescribeEntry(const LogEntry& entry, const SymptomTable& symptoms);

}  // namespace aer

#endif  // AER_LOG_LOG_ENTRY_H_
