// Symptom identifiers and name interning.
//
// A symptom is an error event description as emitted by event monitoring
// (Table 1: "error:IFM-ISNWatchdog", "errorHardware:EventLog", ...). The
// pipeline works with dense integer ids; the SymptomTable maps ids to the
// original description strings for log round-tripping and reports.
#ifndef AER_LOG_SYMPTOM_H_
#define AER_LOG_SYMPTOM_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace aer {

using SymptomId = std::int32_t;
inline constexpr SymptomId kInvalidSymptom = -1;

// Bidirectional symptom-name intern table. Ids are dense and assigned in
// first-seen order, which keeps them stable for a given log file.
class SymptomTable {
 public:
  // Returns the id for `name`, interning it if new.
  SymptomId Intern(std::string_view name);

  // Returns the id for `name` or kInvalidSymptom if never interned.
  SymptomId Find(std::string_view name) const;

  const std::string& Name(SymptomId id) const;

  std::size_t size() const { return names_.size(); }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, SymptomId> ids_;
};

}  // namespace aer

#endif  // AER_LOG_SYMPTOM_H_
