// Segmentation of a recovery log into recovery processes.
//
// Section 4.1: "the logs can be divided into an ensemble of recovery
// processes. The processes start with the advent of a new error, experience a
// series of repair actions, and end with successful recovery."
//
// Per machine, a process opens at the first symptom observed while the
// machine is healthy and closes at the next Success entry. The cost of an
// action attempt is the wall time from its initiation to the next action (or
// to Success for the final attempt) — this includes the time spent watching
// the machine to observe the recovery effect, which the paper notes is not
// negligible even for cheap actions.
#ifndef AER_LOG_RECOVERY_PROCESS_H_
#define AER_LOG_RECOVERY_PROCESS_H_

#include <vector>

#include "common/sim_time.h"
#include "log/recovery_log.h"

namespace aer {

struct SymptomEvent {
  SimTime time = 0;
  SymptomId symptom = kInvalidSymptom;

  friend bool operator==(const SymptomEvent&, const SymptomEvent&) = default;
};

struct ActionAttempt {
  RepairAction action = RepairAction::kTryNop;
  SimTime start = 0;
  // Wall time from initiation to the next action / Success.
  SimTime cost = 0;
  // True only for the attempt after which the machine reported healthy.
  bool cured = false;

  friend bool operator==(const ActionAttempt&, const ActionAttempt&) = default;
};

class RecoveryProcess {
 public:
  RecoveryProcess(MachineId machine, std::vector<SymptomEvent> symptoms,
                  std::vector<ActionAttempt> attempts, SimTime success_time);

  MachineId machine() const { return machine_; }
  const std::vector<SymptomEvent>& symptoms() const { return symptoms_; }
  const std::vector<ActionAttempt>& attempts() const { return attempts_; }
  SimTime success_time() const { return success_time_; }

  // The process opens at its first symptom.
  SimTime start_time() const { return symptoms_.front().time; }

  // Section 3.1: the error type of a process is its initial symptom.
  SymptomId initial_symptom() const { return symptoms_.front().symptom; }

  // Machine downtime contributed by this process (the paper's cost metric).
  SimTime downtime() const { return success_time_ - start_time(); }

  // Time from first symptom to first repair action (detection + scheduling
  // latency); equals downtime for processes with no actions.
  SimTime detection_delay() const;

  // The action that closed the process, i.e. the last attempt.
  RepairAction final_action() const;

  // Distinct symptoms, sorted ascending (the "transaction" fed to m-pattern
  // mining).
  std::vector<SymptomId> DistinctSymptoms() const;

 private:
  MachineId machine_;
  std::vector<SymptomEvent> symptoms_;
  std::vector<ActionAttempt> attempts_;
  SimTime success_time_;
};

struct SegmentationResult {
  // Ordered by process start time (ties: machine id).
  std::vector<RecoveryProcess> processes;
  // Processes still open when the log ended (dropped).
  int incomplete = 0;
  // Action/Success entries with no open process (dropped).
  int orphan_entries = 0;
};

// Splits the log into recovery processes. The log need not be pre-sorted.
SegmentationResult SegmentIntoProcesses(const RecoveryLog& log);

}  // namespace aer

#endif  // AER_LOG_RECOVERY_PROCESS_H_
