#include "log/recovery_process.h"

#include <algorithm>
#include <unordered_map>

#include "common/check.h"

namespace aer {

RecoveryProcess::RecoveryProcess(MachineId machine,
                                 std::vector<SymptomEvent> symptoms,
                                 std::vector<ActionAttempt> attempts,
                                 SimTime success_time)
    : machine_(machine),
      symptoms_(std::move(symptoms)),
      attempts_(std::move(attempts)),
      success_time_(success_time) {
  AER_CHECK(!symptoms_.empty());
  AER_CHECK_GE(success_time_, symptoms_.front().time);
}

SimTime RecoveryProcess::detection_delay() const {
  if (attempts_.empty()) return downtime();
  return attempts_.front().start - start_time();
}

RepairAction RecoveryProcess::final_action() const {
  AER_CHECK(!attempts_.empty());
  return attempts_.back().action;
}

std::vector<SymptomId> RecoveryProcess::DistinctSymptoms() const {
  std::vector<SymptomId> out;
  out.reserve(symptoms_.size());
  for (const SymptomEvent& e : symptoms_) out.push_back(e.symptom);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

namespace {

// Per-machine accumulator for the currently open process.
struct OpenProcess {
  std::vector<SymptomEvent> symptoms;
  std::vector<ActionAttempt> attempts;
  bool open = false;
};

}  // namespace

SegmentationResult SegmentIntoProcesses(const RecoveryLog& log) {
  // Work on a time-sorted copy of the entry list (cheap: entries are PODs).
  std::vector<LogEntry> entries = log.entries();
  std::stable_sort(entries.begin(), entries.end(),
                   [](const LogEntry& a, const LogEntry& b) {
                     if (a.time != b.time) return a.time < b.time;
                     return a.machine < b.machine;
                   });

  SegmentationResult result;
  std::unordered_map<MachineId, OpenProcess> open;

  const auto close_attempt = [](OpenProcess& p, SimTime now) {
    if (!p.attempts.empty()) {
      ActionAttempt& last = p.attempts.back();
      last.cost = now - last.start;
    }
  };

  for (const LogEntry& e : entries) {
    OpenProcess& p = open[e.machine];
    switch (e.kind) {
      case EntryKind::kSymptom:
        if (!p.open) {
          p.open = true;
          p.symptoms.clear();
          p.attempts.clear();
        }
        p.symptoms.push_back({e.time, e.symptom});
        break;
      case EntryKind::kAction:
        if (!p.open) {
          ++result.orphan_entries;
          break;
        }
        close_attempt(p, e.time);
        p.attempts.push_back({e.action, e.time, /*cost=*/0, /*cured=*/false});
        break;
      case EntryKind::kSuccess:
        if (!p.open) {
          ++result.orphan_entries;
          break;
        }
        close_attempt(p, e.time);
        if (!p.attempts.empty()) p.attempts.back().cured = true;
        result.processes.emplace_back(e.machine, std::move(p.symptoms),
                                      std::move(p.attempts), e.time);
        p = OpenProcess{};
        break;
    }
  }

  for (const auto& [machine, p] : open) {
    if (p.open) ++result.incomplete;
  }

  std::stable_sort(result.processes.begin(), result.processes.end(),
                   [](const RecoveryProcess& a, const RecoveryProcess& b) {
                     if (a.start_time() != b.start_time()) {
                       return a.start_time() < b.start_time();
                     }
                     return a.machine() < b.machine();
                   });
  return result;
}

}  // namespace aer
