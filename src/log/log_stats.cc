#include "log/log_stats.h"

#include <algorithm>

namespace aer {

std::unordered_map<SymptomId, std::vector<std::size_t>> GroupByErrorType(
    const std::vector<RecoveryProcess>& processes) {
  std::unordered_map<SymptomId, std::vector<std::size_t>> groups;
  for (std::size_t i = 0; i < processes.size(); ++i) {
    groups[processes[i].initial_symptom()].push_back(i);
  }
  return groups;
}

std::vector<ErrorTypeStat> RankErrorTypes(
    const std::vector<RecoveryProcess>& processes) {
  std::unordered_map<SymptomId, ErrorTypeStat> stats;
  for (const RecoveryProcess& p : processes) {
    ErrorTypeStat& s = stats[p.initial_symptom()];
    s.type = p.initial_symptom();
    ++s.process_count;
    s.total_downtime += p.downtime();
  }
  std::vector<ErrorTypeStat> out;
  out.reserve(stats.size());
  for (const auto& [type, s] : stats) out.push_back(s);
  std::sort(out.begin(), out.end(),
            [](const ErrorTypeStat& a, const ErrorTypeStat& b) {
              if (a.process_count != b.process_count) {
                return a.process_count > b.process_count;
              }
              return a.type < b.type;
            });
  return out;
}

TopTypesSelection SelectTopTypes(const std::vector<RecoveryProcess>& processes,
                                 std::size_t k) {
  const std::vector<ErrorTypeStat> ranked = RankErrorTypes(processes);
  TopTypesSelection sel;
  std::int64_t covered = 0;
  for (std::size_t i = 0; i < ranked.size() && i < k; ++i) {
    sel.types.push_back(ranked[i].type);
    covered += ranked[i].process_count;
  }
  sel.process_coverage =
      processes.empty()
          ? 0.0
          : static_cast<double>(covered) / static_cast<double>(processes.size());
  return sel;
}

SimTime TotalDowntime(const std::vector<RecoveryProcess>& processes) {
  SimTime total = 0;
  for (const RecoveryProcess& p : processes) total += p.downtime();
  return total;
}

}  // namespace aer
